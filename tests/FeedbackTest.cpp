//===- tests/FeedbackTest.cpp - cost models, attribution, feedback loop ------==//
//
// Covers the telemetry-driven mapping feedback stack: the CostModel
// interface behind aggregate formation, the formation ablation knobs
// (AllowDuplication / AllowMerging / Replicate), SimTelemetry-to-aggregate
// attribution, and compileWithFeedback's boundedness / determinism /
// functional-equivalence guarantees.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "driver/Feedback.h"
#include "interp/Bits.h"
#include "ir/ASTLower.h"
#include "map/CostModel.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;

namespace {

std::unique_ptr<ir::Module> lower(const char *Src) {
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Src, Diags);
  EXPECT_NE(Unit, nullptr) << Diags.str();
  return ir::lowerProgram(*Unit, Diags);
}

profile::ProfileData routerProfile(ir::Module &M) {
  profile::Profiler P(M);
  P.interp().writeGlobal("route_hi", 0xA, 7);
  profile::Trace T;
  for (unsigned I = 0; I != 64; ++I) {
    std::vector<uint8_t> F(64, 0);
    F[12] = 0x08;
    interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
    interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, 0xA0000001);
    T.push_back({F, 0});
  }
  return P.run(T);
}

//===----------------------------------------------------------------------===//
// CostModel
//===----------------------------------------------------------------------===//

TEST(CostModel, StaticModelMatchesDefaultFormation) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  P.NumMEs = 4;
  map::MappingPlan Legacy = map::formAggregates(*M, Prof, P);
  map::StaticCostModel CM(Prof, P);
  map::MappingPlan Explicit = map::formAggregates(*M, Prof, P, CM);
  EXPECT_EQ(driver::planSignature(Legacy), driver::planSignature(Explicit));
  EXPECT_DOUBLE_EQ(Legacy.PredictedThroughput, Explicit.PredictedThroughput);
}

TEST(CostModel, MeasuredOverlayWithStaticFallback) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  map::StaticCostModel Static(Prof, P);

  ir::Function *Classify = M->findFunction("classify");
  ir::Function *Route = M->findFunction("route");
  ASSERT_NE(Classify, nullptr);
  ASSERT_NE(Route, nullptr);

  map::MeasuredCosts MC;
  MC.FuncCycles["classify"] = 321.5; // Only classify was measured.
  MC.ScratchChannelCostCycles = 77.0;
  MC.MeInstrsPerIrInstr = 2.25;
  MC.CalibPackets = 100;
  ASSERT_TRUE(MC.valid());

  map::MeasuredCostModel CM(Prof, P, MC);
  EXPECT_DOUBLE_EQ(CM.funcCycles(Classify), 321.5);
  // Unmeasured PPF: falls back to the a-priori formula.
  EXPECT_DOUBLE_EQ(CM.funcCycles(Route), Static.funcCycles(Route));
  EXPECT_DOUBLE_EQ(CM.channelCostCycles(), 77.0);
  EXPECT_DOUBLE_EQ(CM.meInstrsPerIrInstr(), 2.25);

  // The oversize-retry growth factor scales the measured expansion.
  map::MeasuredCostModel Scaled(Prof, P, MC, 1.8);
  EXPECT_DOUBLE_EQ(Scaled.meInstrsPerIrInstr(), 2.25 * 1.8);

  // Zero channel measurement falls back to the static constant.
  map::MeasuredCosts NoChan = MC;
  NoChan.ScratchChannelCostCycles = 0.0;
  map::MeasuredCostModel CM2(Prof, P, NoChan);
  EXPECT_DOUBLE_EQ(CM2.channelCostCycles(), P.ScratchChannelCostCycles);
}

TEST(CostModel, HelpersCostZeroUnderMeasuredModel) {
  // Helper (non-PPF) cycles are already folded into the measured PPF
  // numbers; pricing them again would double-count.
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  map::MeasuredCosts MC;
  MC.FuncCycles["classify"] = 100.0;
  MC.MeInstrsPerIrInstr = 2.0;
  MC.CalibPackets = 1;
  map::MeasuredCostModel CM(Prof, P, MC);
  for (const auto &F : M->functions())
    if (!F->isPpf()) {
      EXPECT_DOUBLE_EQ(CM.funcCycles(F.get()), 0.0) << F->name();
    }
}

//===----------------------------------------------------------------------===//
// Formation ablation knobs
//===----------------------------------------------------------------------===//

TEST(Aggregation, DuplicationKnobOnlyBiasesTheLog) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  P.NumMEs = 4;
  P.AllowMerging = false; // Keep two ME stages so dominance can trigger.
  P.DominanceRatio = 0.0; // Any imbalance counts as dominance.

  map::MappingPlan WithDup = map::formAggregates(*M, Prof, P);
  EXPECT_NE(WithDup.Log.find("dominating stage"), std::string::npos);

  P.AllowDuplication = false;
  map::MappingPlan NoDup = map::formAggregates(*M, Prof, P);
  EXPECT_EQ(NoDup.Log.find("dominating stage"), std::string::npos);

  // The greedy ME fill subsumes explicit duplication: disabling the knob
  // must not change the resulting plan shape.
  EXPECT_EQ(driver::planSignature(WithDup), driver::planSignature(NoDup));
}

TEST(Aggregation, ReplicateOffKeepsSingleCopies) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  P.NumMEs = 4;
  P.Replicate = false;
  map::MappingPlan Plan = map::formAggregates(*M, Prof, P);
  unsigned MeAggs = 0;
  for (const auto &A : Plan.Aggregates) {
    if (A.OnXScale)
      continue;
    ++MeAggs;
    EXPECT_EQ(A.Copies, 1u);
  }
  EXPECT_GE(MeAggs, 1u);
}

TEST(Aggregation, AggregateOfIndexesAllMembers) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  P.NumMEs = 2;
  P.AllowMerging = false;
  map::MappingPlan Plan = map::formAggregates(*M, Prof, P);
  for (unsigned I = 0; I != Plan.Aggregates.size(); ++I)
    for (const ir::Function *F : Plan.Aggregates[I].Funcs)
      EXPECT_EQ(Plan.aggregateOf(F), I);
  // A function from a different module is in no aggregate.
  auto Other = lower(sl::tests::MiniRouter);
  EXPECT_EQ(Plan.aggregateOf(Other->findFunction("classify")), ~0u);
}

//===----------------------------------------------------------------------===//
// Telemetry attribution
//===----------------------------------------------------------------------===//

TEST(Attribution, PartitionsCoresContiguously) {
  ixp::SimTelemetry T;
  T.Cycles = 1000;
  for (unsigned Core = 0; Core != 3; ++Core) {
    ixp::METelemetry ME;
    ME.Index = Core;
    ME.Cycles = 1000;
    for (unsigned Th = 0; Th != 2; ++Th) {
      ixp::ThreadTelemetry Thr;
      Thr.Busy = 100 * (Core + 1);
      Thr.MemStall = 10 * (Core + 1);
      Thr.RingWait = Core + 1;
      Thr.Idle = 5;
      Thr.Instrs = 50 * (Core + 1);
      ME.Threads.push_back(Thr);
    }
    T.MEs.push_back(std::move(ME));
  }

  std::vector<ixp::CoreGroup> Groups = {{"front", 2, false},
                                        {"back", 1, false},
                                        {"ghost", 1, false}};
  auto GT = ixp::attributeToGroups(T, Groups);
  ASSERT_EQ(GT.size(), 3u);

  EXPECT_EQ(GT[0].Name, "front");
  EXPECT_EQ(GT[0].Cores, 2u);
  EXPECT_EQ(GT[0].Cycles, 2000u);
  EXPECT_EQ(GT[0].Busy, 2u * 100 + 2u * 200);
  EXPECT_EQ(GT[0].MemStall, 2u * 10 + 2u * 20);
  EXPECT_EQ(GT[0].RingWait, 2u * 1 + 2u * 2);
  EXPECT_EQ(GT[0].Instrs, 2u * 50 + 2u * 100);

  EXPECT_EQ(GT[1].Cores, 1u);
  EXPECT_EQ(GT[1].Busy, 2u * 300);
  EXPECT_DOUBLE_EQ(GT[1].utilization(), 600.0 / 1000.0);

  // A group beyond the simulated core count yields a zeroed entry.
  EXPECT_EQ(GT[2].Cores, 0u);
  EXPECT_EQ(GT[2].Busy, 0u);
  EXPECT_DOUBLE_EQ(GT[2].utilization(), 0.0);
}

//===----------------------------------------------------------------------===//
// Feedback loop
//===----------------------------------------------------------------------===//

struct FeedbackRun {
  driver::FeedbackResult FR;
  driver::CompileOptions Opts;
};

FeedbackRun runFeedback(const apps::AppBundle &App, unsigned StoreInstrs,
                        bool Replicate = true) {
  FeedbackRun R;
  R.Opts.Level = driver::OptLevel::Swc;
  R.Opts.Map.NumMEs = 6;
  R.Opts.Map.CodeStoreInstrs = StoreInstrs;
  R.Opts.Map.Replicate = Replicate;
  R.Opts.TxMetaFields = App.TxMetaFields;
  driver::FeedbackOptions FB;
  FB.CalibCycles = 60'000;
  DiagEngine Diags;
  profile::Trace ProfTrace = App.makeTrace(0x9999, 256);
  profile::Trace Calib = App.makeTrace(0x13141516, 256);
  R.FR = driver::compileWithFeedback(App.Source, ProfTrace, Calib,
                                     App.Tables, R.Opts, FB, Diags);
  EXPECT_NE(R.FR.App, nullptr) << Diags.str();
  return R;
}

TEST(Feedback, BoundedDeterministicAndAttributed) {
  apps::AppBundle App = apps::l3switch();
  // The constrained store is the interesting regime: the static 3x
  // expansion estimate splits the pipeline, the measured ~2x re-merges it.
  FeedbackRun A = runFeedback(App, 640);
  FeedbackRun B = runFeedback(App, 640);
  ASSERT_NE(A.FR.App, nullptr);
  ASSERT_NE(B.FR.App, nullptr);

  // Bounded: at most MaxRounds simulate/remap rounds.
  EXPECT_LE(A.FR.Rounds.size(), size_t(driver::FeedbackOptions().MaxRounds));
  ASSERT_GE(A.FR.Rounds.size(), 2u) << "measured costs must trigger a remap";

  // Deterministic: same source + traces => identical round-by-round plans.
  ASSERT_EQ(A.FR.Rounds.size(), B.FR.Rounds.size());
  for (size_t I = 0; I != A.FR.Rounds.size(); ++I) {
    EXPECT_EQ(A.FR.Rounds[I].PlanSignature, B.FR.Rounds[I].PlanSignature);
    EXPECT_DOUBLE_EQ(A.FR.Rounds[I].MeasuredPktPerKCycle,
                     B.FR.Rounds[I].MeasuredPktPerKCycle);
  }
  EXPECT_EQ(A.FR.BestRound, B.FR.BestRound);
  EXPECT_EQ(A.FR.FixedPoint, B.FR.FixedPoint);
  EXPECT_EQ(driver::planSignature(A.FR.App->Plan),
            driver::planSignature(B.FR.App->Plan));

  // Attribution produced a usable overlay for round 1.
  const map::MeasuredCosts &MC = A.FR.Rounds[1].Costs;
  EXPECT_TRUE(MC.valid());
  EXPECT_GT(MC.CalibPackets, 0u);
  EXPECT_GT(MC.MeInstrsPerIrInstr, 1.0);
  EXPECT_LT(MC.MeInstrsPerIrInstr, 5.0);
  for (const auto &[Name, Cycles] : MC.FuncCycles)
    EXPECT_GE(Cycles, 0.0) << Name;

  // Round 0 is always the static baseline.
  EXPECT_EQ(A.FR.Rounds[0].Round, 0u);
  EXPECT_FALSE(A.FR.Rounds[0].Costs.valid());
}

TEST(Feedback, RemapAtMeasuredFixedPointIsStable) {
  // Re-forming aggregates twice from the same MeasuredCosts overlay must
  // reproduce the same plan (the loop's fixed-point test relies on it).
  apps::AppBundle App = apps::l3switch();
  FeedbackRun A = runFeedback(App, 640);
  ASSERT_NE(A.FR.App, nullptr);
  ASSERT_GE(A.FR.Rounds.size(), 2u);
  const map::MeasuredCosts &MC = A.FR.Rounds.back().Costs;
  ASSERT_TRUE(MC.valid());

  driver::CompileOptions O = A.Opts;
  O.Measured = MC;
  DiagEngine D1, D2;
  profile::Trace ProfTrace = App.makeTrace(0x9999, 256);
  auto C1 = driver::compile(App.Source, ProfTrace, App.Tables, O, D1);
  auto C2 = driver::compile(App.Source, ProfTrace, App.Tables, O, D2);
  ASSERT_NE(C1, nullptr) << D1.str();
  ASSERT_NE(C2, nullptr) << D2.str();
  EXPECT_EQ(driver::planSignature(C1->Plan), driver::planSignature(C2->Plan));
}

TEST(Feedback, ReplicateOffOutputBitIdentical) {
  // With Replicate=false the static and feedback-mapped binaries must
  // forward identical packets: remapping may only move work, not change it.
  apps::AppBundle App = apps::l3switch();
  driver::CompileOptions Opts;
  Opts.Level = driver::OptLevel::Swc;
  Opts.Map.NumMEs = 6;
  Opts.Map.Replicate = false;
  Opts.TxMetaFields = App.TxMetaFields;
  DiagEngine Diags;
  profile::Trace ProfTrace = App.makeTrace(0x9999, 256);
  profile::Trace Traffic = App.makeTrace(0x13141516, 256);

  auto Static = driver::compile(App.Source, ProfTrace, App.Tables, Opts,
                                Diags);
  ASSERT_NE(Static, nullptr) << Diags.str();
  FeedbackRun FB = runFeedback(App, 4096, /*Replicate=*/false);
  ASSERT_NE(FB.FR.App, nullptr);

  auto capture = [&](const driver::CompiledApp &A) {
    ixp::ChipParams Chip;
    auto Sim = driver::makeSimulator(A, Chip);
    Sim->enableCapture();
    ixp::SimPacket P;
    Sim->setTraffic([&](uint64_t I) {
      const profile::TracePacket &T = Traffic[I % Traffic.size()];
      P.Frame = T.Frame;
      P.Port = T.Port;
      return &P;
    });
    Sim->run(150'000);
    return Sim->captured();
  };

  std::vector<ixp::SimTxRecord> SOut = capture(*Static);
  std::vector<ixp::SimTxRecord> FOut = capture(*FB.FR.App);
  ASSERT_GT(SOut.size(), 0u);
  ASSERT_EQ(SOut.size(), FOut.size());
  for (size_t I = 0; I != SOut.size(); ++I) {
    EXPECT_EQ(SOut[I].Frame, FOut[I].Frame) << "frame " << I;
    EXPECT_EQ(SOut[I].Meta, FOut[I].Meta) << "meta " << I;
  }
}

} // namespace
