//===- tests/InterpTest.cpp - reference interpreter tests --------------------==//

#include "interp/Bits.h"
#include "interp/Interp.h"
#include "ir/ASTLower.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::interp;

namespace {

std::unique_ptr<ir::Module> lower(const char *Src) {
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Src, Diags);
  EXPECT_NE(Unit, nullptr) << Diags.str();
  if (!Unit)
    return nullptr;
  auto M = ir::lowerProgram(*Unit, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return M;
}

/// Builds a 64-byte ethernet frame. dst/src MACs and ethertype at the
/// standard offsets, everything else zero unless specified.
std::vector<uint8_t> etherFrame(uint64_t Dst, uint64_t Src, uint16_t Type,
                                size_t Len = 64) {
  std::vector<uint8_t> F(Len, 0);
  writeBitsBE(F.data(), 0, 48, Dst);
  writeBitsBE(F.data(), 48, 48, Src);
  writeBitsBE(F.data(), 96, 16, Type);
  return F;
}

/// Wraps an IPv4 header (20 bytes, no options) after the 14-byte ether
/// header.
void putIpv4(std::vector<uint8_t> &F, uint32_t SrcIp, uint32_t DstIp,
             uint8_t Ttl) {
  size_t Base = 14 * 8;
  writeBitsBE(F.data(), Base + 0, 4, 4);    // ver
  writeBitsBE(F.data(), Base + 4, 4, 5);    // hlen = 5 words
  writeBitsBE(F.data(), Base + 64, 8, Ttl); // ttl
  writeBitsBE(F.data(), Base + 96, 32, SrcIp);
  writeBitsBE(F.data(), Base + 128, 32, DstIp);
}

TEST(Bits, RoundTripAtOddOffsets) {
  uint8_t Buf[16] = {0};
  writeBitsBE(Buf, 3, 13, 0x1ABC & 0x1FFF);
  EXPECT_EQ(readBitsBE(Buf, 3, 13), 0x1ABCull & 0x1FFF);
  writeBitsBE(Buf, 48, 48, 0xAABBCCDDEEFFull);
  EXPECT_EQ(readBitsBE(Buf, 48, 48), 0xAABBCCDDEEFFull);
  // First write is untouched.
  EXPECT_EQ(readBitsBE(Buf, 3, 13), 0x1ABCull & 0x1FFF);
}

TEST(Bits, NetworkOrderBytes) {
  uint8_t Buf[4] = {0};
  writeBitsBE(Buf, 0, 16, 0x0800);
  EXPECT_EQ(Buf[0], 0x08);
  EXPECT_EQ(Buf[1], 0x00);
}

TEST(Interp, ForwardsAndCounts) {
  auto M = lower(sl::tests::MiniForward);
  Interpreter I(*M);

  RunResult R = I.inject(etherFrame(1, 2, 0x0800), /*RxPort=*/3);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  ASSERT_EQ(R.Tx.size(), 1u);
  // Metadata: rx_port at bit 0, outp at bit 16 (== rx_port + 1).
  EXPECT_EQ(readBitsBE(R.Tx[0].Meta.data(), 0, 16), 3u);
  EXPECT_EQ(readBitsBE(R.Tx[0].Meta.data(), 16, 16), 4u);
  EXPECT_EQ(I.readGlobal("counter", 0), 1u);

  I.inject(etherFrame(1, 2, 0x0800), 0);
  EXPECT_EQ(I.readGlobal("counter", 0), 2u);
}

TEST(Interp, RouterRoutesViaChannel) {
  auto M = lower(sl::tests::MiniRouter);
  Interpreter I(*M);
  // Route table: nibble 0xA -> hop 7.
  I.writeGlobal("route_hi", 0xA, 7);

  std::vector<uint8_t> F = etherFrame(1, 2, 0x0800);
  putIpv4(F, 0x0A000001, 0xA0000001, 64); // dst top nibble = 0xA
  RunResult R = I.inject(F, 0);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  ASSERT_EQ(R.Tx.size(), 1u);
  // nexthop metadata (bit 16, width 16) == 7.
  EXPECT_EQ(readBitsBE(R.Tx[0].Meta.data(), 16, 16), 7u);
  // The Tx frame starts at the IPv4 header (ether was decapped); TTL
  // (bits 64..71) was decremented to 63.
  EXPECT_EQ(readBitsBE(R.Tx[0].Frame.data(), 64, 8), 63u);
  EXPECT_EQ(I.readGlobal("drops", 0), 0u);
}

TEST(Interp, RouterDropsUnroutable) {
  auto M = lower(sl::tests::MiniRouter);
  Interpreter I(*M);
  std::vector<uint8_t> F = etherFrame(1, 2, 0x0800);
  putIpv4(F, 1, 0x10, 64); // dst nibble 0 -> no route
  RunResult R = I.inject(F, 0);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  EXPECT_TRUE(R.Tx.empty());
  EXPECT_EQ(I.readGlobal("drops", 0), 1u);
}

TEST(Interp, RouterDropsNonIp) {
  auto M = lower(sl::tests::MiniRouter);
  Interpreter I(*M);
  RunResult R = I.inject(etherFrame(1, 2, 0x0806), 0); // ARP
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  EXPECT_TRUE(R.Tx.empty());
  EXPECT_EQ(I.readGlobal("drops", 0), 1u);
}

TEST(Interp, ControlFlowAndLoops) {
  auto M = lower(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      u32 result;
      u32 sum_to(u32 n) {
        u32 acc = 0;
        for (u32 i = 1; i <= n; i = i + 1) {
          if (i % 2 == 0) { continue; }
          acc = acc + i;
        }
        return acc;
      }
      ppf f(e_pkt * ph) {
        result = sum_to(9);
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Interpreter I(*M);
  RunResult R = I.inject({1, 2, 3, 4}, 0);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  EXPECT_EQ(I.readGlobal("result", 0), 1u + 3 + 5 + 7 + 9);
}

TEST(Interp, ShortCircuitEvaluation) {
  auto M = lower(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      u32 calls;
      u32 result;
      bool bump() { calls = calls + 1; return true; }
      ppf f(e_pkt * ph) {
        if (false && bump()) { result = 1; }
        if (true || bump()) { result = result + 2; }
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Interpreter I(*M);
  RunResult R = I.inject({0}, 0);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  EXPECT_EQ(I.readGlobal("calls", 0), 0u) << "short circuit must skip bump()";
  EXPECT_EQ(I.readGlobal("result", 0), 2u);
}

TEST(Interp, SixtyFourBitFieldCompare) {
  auto M = lower(R"(
    protocol e { dst : 48; src : 48; type : 16; demux { 14 }; };
    module m {
      u64 mac0;
      u32 hit;
      ppf f(e_pkt * ph) {
        if (ph->dst == mac0) { hit = hit + 1; }
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Interpreter I(*M);
  I.writeGlobal("mac0", 0, 0x001122334455ull);
  RunResult R = I.inject(etherFrame(0x001122334455ull, 9, 0), 0);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  EXPECT_EQ(I.readGlobal("hit", 0), 1u);
  I.inject(etherFrame(0x001122334456ull, 9, 0), 0);
  EXPECT_EQ(I.readGlobal("hit", 0), 1u);
}

TEST(Interp, EncapPushesHeader) {
  auto M = lower(R"(
    protocol inner { a : 32; demux { 4 }; };
    protocol shim { label : 20; exp : 3; s : 1; ttl : 8; demux { 4 }; };
    module m {
      ppf f(inner_pkt * ph) {
        shim_pkt * sp = packet_encap(ph);
        sp->label = 0x12345;
        sp->ttl = 255;
        channel_put(tx, sp);
      }
      wire rx -> f;
    }
  )");
  Interpreter I(*M);
  RunResult R = I.inject({0xAA, 0xBB, 0xCC, 0xDD}, 0);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  ASSERT_EQ(R.Tx.size(), 1u);
  ASSERT_EQ(R.Tx[0].Frame.size(), 8u);
  EXPECT_EQ(readBitsBE(R.Tx[0].Frame.data(), 0, 20), 0x12345u);
  EXPECT_EQ(readBitsBE(R.Tx[0].Frame.data(), 24, 8), 255u);
  EXPECT_EQ(R.Tx[0].Frame[4], 0xAA);
}

TEST(Interp, PacketCopyIsIndependent) {
  auto M = lower(R"(
    protocol e { x : 8; y : 8; demux { 2 }; };
    module m {
      ppf f(e_pkt * ph) {
        e_pkt * dup = packet_copy(ph);
        dup->x = 0xFF;
        channel_put(tx, dup);
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Interpreter I(*M);
  RunResult R = I.inject({0x11, 0x22}, 0);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  ASSERT_EQ(R.Tx.size(), 2u);
  EXPECT_EQ(R.Tx[0].Frame[0], 0xFF); // Modified copy.
  EXPECT_EQ(R.Tx[1].Frame[0], 0x11); // Original untouched.
}

TEST(Interp, InfiniteLoopHitsStepLimit) {
  auto M = lower(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      u32 g;
      ppf f(e_pkt * ph) {
        while (true) { g = g + 1; }
      }
      wire rx -> f;
    }
  )");
  Interpreter I(*M);
  I.setStepLimit(10000);
  RunResult R = I.inject({0}, 0);
  EXPECT_TRUE(R.Error);
  EXPECT_NE(R.ErrorMsg.find("step limit"), std::string::npos);
}

TEST(Interp, CriticalSectionsExecute) {
  auto M = lower(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      u32 g;
      ppf f(e_pkt * ph) {
        critical (l) { g = g + 1; }
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Interpreter I(*M);
  RunResult R = I.inject({0}, 0);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  EXPECT_EQ(I.readGlobal("g", 0), 1u);
}

} // namespace
