//===- tests/TrafficTest.cpp - adversarial traffic generators ----------------==//
//
// The generator contract the acceptance harness leans on: byte-for-byte
// determinism under a fixed seed, the statistical shape of each arrival
// process (Zipf skew, burst trains, thrash churn), malformed-header
// coverage, and golden-trace fingerprints pinning the exact output so a
// generator change cannot silently invalidate recorded bench baselines.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "interp/Bits.h"
#include "traffic/Traffic.h"

#include <gtest/gtest.h>

#include <set>

using namespace sl;
using namespace sl::traffic;

namespace {

/// Flow id as the builders encode it: low 16 bits of the IPv4 source.
uint64_t flowOf(const profile::TracePacket &P) {
  if (P.Frame.size() < 30)
    return ~0ull;
  return interp::readBitsBE(P.Frame.data(), 26 * 8, 32) & 0xFFFF;
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(Traffic, DeterministicUnderFixedSeed) {
  for (const apps::AppBundle &App : apps::statefulApps())
    for (Profile P : allProfiles()) {
      profile::Trace A = apps::adversarialTrace(App, P, 99, 300);
      profile::Trace B = apps::adversarialTrace(App, P, 99, 300);
      ASSERT_EQ(A.size(), B.size());
      EXPECT_EQ(traceFingerprint(A), traceFingerprint(B))
          << App.Name << "/" << profileName(P);
      // And a different seed must actually change the bytes.
      profile::Trace C = apps::adversarialTrace(App, P, 100, 300);
      EXPECT_NE(traceFingerprint(A), traceFingerprint(C))
          << App.Name << "/" << profileName(P);
    }
}

//===----------------------------------------------------------------------===//
// Zipf skew statistics
//===----------------------------------------------------------------------===//

TEST(Traffic, ZipfSkewStatistics) {
  ZipfParams Z;
  Z.NumFlows = 1024;
  Z.Skew = 1.2;
  profile::Trace T = makeZipf(5, 20000, Z, apps::slbFrames());
  auto Counts = flowCounts(T, flowOf);

  // Rank 0 is the heavy hitter: a solid share of all packets, and the
  // rank ordering must decay monotonically in expectation.
  EXPECT_GT(topFlowShare(Counts), 0.10);
  EXPECT_GT(Counts[0], Counts[10]);
  EXPECT_GT(Counts[10], Counts[200]);

  // Skew 0 degenerates to uniform: no flow stands out.
  Z.Skew = 0.0;
  profile::Trace U = makeZipf(5, 20000, Z, apps::slbFrames());
  EXPECT_LT(topFlowShare(flowCounts(U, flowOf)), 0.01);
}

//===----------------------------------------------------------------------===//
// Burst shape
//===----------------------------------------------------------------------===//

TEST(Traffic, BurstShape) {
  BurstParams B;
  B.NumFlows = 64;
  B.MinBurst = 8;
  B.MaxBurst = 48;
  const unsigned N = 8000;
  profile::Trace T = makeBursty(11, N, B, apps::slbFrames());
  ASSERT_EQ(T.size(), N);

  // Count flow switches: trains of >= MinBurst mean there are at most
  // N/MinBurst switches (adjacent bursts of one flow merge runs, so this
  // is an upper bound), and MaxBurst bounds them below.
  unsigned Switches = 0;
  for (unsigned I = 1; I != N; ++I)
    Switches += flowOf(T[I]) != flowOf(T[I - 1]);
  EXPECT_LE(Switches, N / B.MinBurst);
  EXPECT_GE(Switches, N / (2 * B.MaxBurst));

  // Every run except the clipped last one is at least MinBurst long
  // (merged adjacent bursts can only lengthen runs).
  unsigned Run = 1;
  for (unsigned I = 1; I != N; ++I) {
    if (flowOf(T[I]) == flowOf(T[I - 1])) {
      ++Run;
      continue;
    }
    EXPECT_GE(Run, B.MinBurst) << "short burst ending at packet " << I;
    Run = 1;
  }
}

//===----------------------------------------------------------------------===//
// Thrash churn
//===----------------------------------------------------------------------===//

TEST(Traffic, ThrashIsPureChurn) {
  ThrashParams P;
  P.FlowUniverse = 1 << 15;
  P.PacketsPerFlow = 1;
  const unsigned N = 3000;
  profile::Trace T = makeThrash(23, N, P, apps::natFrames(0));
  ASSERT_EQ(T.size(), N);
  std::set<uint64_t> Flows;
  for (const auto &Pk : T)
    Flows.insert(flowOf(Pk));
  // The coprime stride must keep nearly every packet on a fresh flow.
  EXPECT_GE(Flows.size(), size_t(N * 95 / 100));
}

//===----------------------------------------------------------------------===//
// Malformed coverage
//===----------------------------------------------------------------------===//

TEST(Traffic, MalformedCoverage) {
  ZipfParams Z;
  Z.NumFlows = 256;
  Z.Skew = 0.0;
  const unsigned N = 4000;
  profile::Trace Clean = makeZipf(31, N, Z, apps::natFrames(0));
  MalformParams M;
  M.Fraction = 0.3;
  profile::Trace T = corruptHeaders(33, truncateFrames(32, Clean, M), M);
  ASSERT_EQ(T.size(), N);

  unsigned Truncated = 0, Corrupted = 0, Intact = 0;
  for (unsigned I = 0; I != N; ++I) {
    // The Ethernet header every PPF reads first must survive.
    ASSERT_GE(T[I].Frame.size(), M.MinBytes);
    bool Short = T[I].Frame.size() < Clean[I].Frame.size();
    bool BadVh = T[I].Frame.size() > 14 && T[I].Frame[14] != 0x45;
    Truncated += Short;
    Corrupted += BadVh;
    Intact += !Short && !BadVh;
  }
  // Both damage classes are well represented, and plenty of frames stay
  // clean so the fast path is exercised in the same run.
  EXPECT_GT(Truncated, N / 10);
  EXPECT_LT(Truncated, N / 2);
  EXPECT_GT(Corrupted, N / 10);
  EXPECT_LT(Corrupted, N / 2);
  EXPECT_GT(Intact, N / 4);
}

//===----------------------------------------------------------------------===//
// Golden-trace regression snapshots
//===----------------------------------------------------------------------===//

// Pins the exact bytes each (app, profile) pair produces for seed 42 /
// 256 packets. A deliberate generator change must update these in the
// same commit that re-records the bench baselines.
TEST(Traffic, GoldenTraceFingerprints) {
  struct Golden {
    const char *App;
    Profile P;
    uint64_t Fp;
  };
  static const Golden Table[] = {
      {"NAT", Profile::Benign, 0x8cb971d0ee381a11ull},
      {"NAT", Profile::Zipf, 0xa53e1927bdb8ebb3ull},
      {"NAT", Profile::Bursty, 0xf25729da017cdadfull},
      {"NAT", Profile::Thrash, 0x00d9211c619cb3e4ull},
      {"NAT", Profile::Malformed, 0xa04ebe846770d30full},
      {"SLB", Profile::Benign, 0x801affad7fe0061cull},
      {"SLB", Profile::Thrash, 0x3a62299e933d2f81ull},
      {"SYN-Flood", Profile::Benign, 0xfef69b4dd0a5ab50ull},
      {"SYN-Flood", Profile::Zipf, 0x662f5e43305be25eull},
      {"SYN-Flood", Profile::Malformed, 0x8fb55df508eb21c6ull},
  };
  auto bundle = [](const std::string &Name) {
    for (const apps::AppBundle &App : apps::statefulApps())
      if (App.Name == Name)
        return App;
    ADD_FAILURE() << "no app " << Name;
    return apps::AppBundle{};
  };
  for (const Golden &G : Table) {
    profile::Trace T = apps::adversarialTrace(bundle(G.App), G.P, 42, 256);
    uint64_t Fp = traceFingerprint(T);
    EXPECT_EQ(Fp, G.Fp) << G.App << "/" << profileName(G.P)
                        << " fingerprint drifted: 0x" << std::hex << Fp;
  }
}

} // namespace
