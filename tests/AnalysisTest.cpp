//===- tests/AnalysisTest.cpp - Baker safety analyses ------------------------==//
//
// Covers the packet-lifetime linearity checker and the shared-state race
// checker (src/analysis): the seeded bug corpus under examples/bad/ is
// rejected with exactly the expected reason codes, the three paper
// applications compile clean at --analyze=error, the race classification
// is the SWC legality authority (a store the optimizer deletes still
// vetoes caching), and findings are deterministic.
//
//===----------------------------------------------------------------------===//

#include "analysis/PacketLifetime.h"
#include "analysis/StateRace.h"
#include "apps/Apps.h"
#include "driver/Compiler.h"
#include "ir/ASTLower.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "obs/OptReport.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

using namespace sl;
using namespace sl::driver;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream IS(Path);
  EXPECT_TRUE(IS.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << IS.rdbuf();
  return SS.str();
}

/// Deterministic 64-byte ether frames; types alternate so both sides of
/// protocol-type branches execute during profiling.
profile::Trace corpusTrace() {
  profile::Trace T;
  for (unsigned I = 0; I != 16; ++I) {
    std::vector<uint8_t> F(64, static_cast<uint8_t>(I));
    uint16_t Type = (I & 1) ? 0x0800 : 0x0806;
    F[12] = static_cast<uint8_t>(Type >> 8);
    F[13] = static_cast<uint8_t>(Type & 0xFF);
    T.push_back({F, static_cast<uint16_t>(I & 3)});
  }
  return T;
}

std::unique_ptr<CompiledApp> compileSource(const std::string &Src,
                                           AnalyzeMode Mode,
                                           DiagEngine &Diags,
                                           obs::CompileObserver *Obs = nullptr) {
  CompileOptions Opts;
  Opts.Level = OptLevel::Swc;
  Opts.Map.NumMEs = 2;
  Opts.Analyze = Mode;
  Opts.Observer = Obs;
  return compile(Src, corpusTrace(), {}, Opts, Diags);
}

std::set<std::string> errorReasons(const CompiledApp &App) {
  std::set<std::string> R;
  for (const analysis::Finding &F : App.Findings)
    if (F.Sev == analysis::Severity::Error)
      R.insert(F.Reason);
  return R;
}

struct CorpusCase {
  const char *File;
  std::set<std::string> Expected;
};

class BadCorpus : public ::testing::TestWithParam<CorpusCase> {};

// Every corpus program compiles at --analyze=warn (findings demoted to
// warnings) with exactly the expected error-severity reason codes, and is
// rejected outright at --analyze=error with those codes in the
// diagnostics.
TEST_P(BadCorpus, ExactReasonCodes) {
  const CorpusCase &C = GetParam();
  std::string Src =
      readFile(std::string(SL_SOURCE_DIR "/examples/bad/") + C.File);
  ASSERT_FALSE(Src.empty());

  DiagEngine WarnDiags;
  auto App = compileSource(Src, AnalyzeMode::Warn, WarnDiags);
  ASSERT_NE(App, nullptr) << WarnDiags.str();
  EXPECT_EQ(errorReasons(*App), C.Expected);

  DiagEngine ErrDiags;
  auto Rejected = compileSource(Src, AnalyzeMode::Error, ErrDiags);
  EXPECT_EQ(Rejected, nullptr);
  for (const std::string &Reason : C.Expected)
    EXPECT_NE(ErrDiags.str().find(Reason), std::string::npos)
        << "missing reason '" << Reason << "' in:\n"
        << ErrDiags.str();
}

INSTANTIATE_TEST_SUITE_P(
    Seeded, BadCorpus,
    ::testing::Values(
        CorpusCase{"use_after_put.baker", {"pkt-use-after-release"}},
        CorpusCase{"use_after_drop.baker", {"pkt-use-after-release"}},
        CorpusCase{"double_drop.baker", {"pkt-double-release"}},
        CorpusCase{"put_then_drop.baker", {"pkt-double-release"}},
        CorpusCase{"leak_one_path.baker", {"pkt-leak"}},
        CorpusCase{"leak_copy.baker", {"pkt-leak"}},
        CorpusCase{"conditional_drop_use.baker",
                   {"pkt-use-after-release", "pkt-double-release"}},
        CorpusCase{"unlocked_rmw.baker", {"race-unlocked-rmw"}},
        CorpusCase{"two_locks.baker", {"race-lock-inconsistency"}},
        CorpusCase{"rmw_partial_lock.baker", {"race-unlocked-rmw"}}),
    [](const ::testing::TestParamInfo<CorpusCase> &Info) {
      std::string N = Info.param.File;
      return N.substr(0, N.find('.'));
    });

// The three paper applications carry no lifetime or race errors: they
// must compile unchanged at the strictest gate.
TEST(Analysis, AppsCompileCleanAtError) {
  for (const apps::AppBundle &A : apps::allApps()) {
    CompileOptions Opts;
    Opts.Level = OptLevel::Swc;
    Opts.Map.NumMEs = 4;
    Opts.TxMetaFields = A.TxMetaFields;
    Opts.Analyze = AnalyzeMode::Error;
    DiagEngine Diags;
    auto App = compile(A.Source, A.makeTrace(0x9999, 256), A.Tables, Opts,
                       Diags);
    ASSERT_NE(App, nullptr) << A.Name << ":\n" << Diags.str();
    EXPECT_TRUE(errorReasons(*App).empty()) << A.Name;
  }
}

// The L3 switch's `drops = drops + 1` style counters are unlocked RMWs
// whose loads never escape — tolerated, but recorded as notes.
TEST(Analysis, BenignCountersAreNotes) {
  apps::AppBundle A = apps::l3switch();
  CompileOptions Opts;
  Opts.Level = OptLevel::Swc;
  Opts.Map.NumMEs = 4;
  Opts.TxMetaFields = A.TxMetaFields;
  DiagEngine Diags;
  auto App =
      compile(A.Source, A.makeTrace(0x9999, 256), A.Tables, Opts, Diags);
  ASSERT_NE(App, nullptr) << Diags.str();
  unsigned Benign = 0;
  for (const analysis::Finding &F : App->Findings)
    if (F.Reason == "benign-counter-rmw") {
      EXPECT_EQ(F.Sev, analysis::Severity::Note);
      ++Benign;
    }
  EXPECT_GE(Benign, 1u);
}

// Findings are a deterministic function of the program: two independent
// compiles produce identical finding lists (order included).
TEST(Analysis, FindingsAreDeterministic) {
  std::string Src = readFile(
      std::string(SL_SOURCE_DIR "/examples/bad/conditional_drop_use.baker"));
  DiagEngine D1, D2;
  auto A1 = compileSource(Src, AnalyzeMode::Warn, D1);
  auto A2 = compileSource(Src, AnalyzeMode::Warn, D2);
  ASSERT_NE(A1, nullptr);
  ASSERT_NE(A2, nullptr);
  ASSERT_EQ(A1->Findings.size(), A2->Findings.size());
  for (size_t I = 0; I != A1->Findings.size(); ++I)
    EXPECT_TRUE(A1->Findings[I] == A2->Findings[I]) << "finding " << I;
}

// The checked-property test for SWC legality: the data-plane store below
// is dead (t is always 0), so the scalar ladder deletes it and SWC's own
// post-optimization scan sees a read-only table. Only the pre-ladder race
// classification knows better. With analyses off, SWC caches the table;
// with them on, it refuses with the swc-unsafe-shared remark.
TEST(Analysis, SwcConsultsRaceClassification) {
  static const char *Src = R"(
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

metadata {
  tx_port : 16;
};

module swc_trap {
  u32 route[16];

  ppf fwd(ether_pkt * ph) {
    u32 t = 0;
    if (t == 1) {
      route[0] = 1;
    }
    ph->meta.tx_port = route[ph->meta.rx_port & 15] & 3;
    channel_put(tx, ph);
  }

  wire rx -> fwd;
}
)";

  // Legacy behavior: analyses off, the dead store is gone by SWC time,
  // the table looks read-only and hot, and gets cached.
  DiagEngine OffDiags;
  auto Off = compileSource(Src, AnalyzeMode::Off, OffDiags);
  ASSERT_NE(Off, nullptr) << OffDiags.str();
  ASSERT_FALSE(Off->Races.Valid);
  ir::Global *OffRoute = Off->IR->findGlobal("route");
  ASSERT_NE(OffRoute, nullptr);
  EXPECT_TRUE(OffRoute->Cached)
      << "premise broken: SWC no longer caches the dead-store table";

  // Checked behavior: the classification (taken before the ladder) saw
  // the store and vetoes the cache.
  obs::CompileObserver Obs;
  DiagEngine WarnDiags;
  auto Warn = compileSource(Src, AnalyzeMode::Warn, WarnDiags, &Obs);
  ASSERT_NE(Warn, nullptr) << WarnDiags.str();
  ASSERT_TRUE(Warn->Races.Valid);
  const analysis::GlobalFacts *F = Warn->Races.facts("route");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->DataPlaneStores);
  EXPECT_FALSE(Warn->Races.cacheSafe("route"));
  ir::Global *WarnRoute = Warn->IR->findGlobal("route");
  ASSERT_NE(WarnRoute, nullptr);
  EXPECT_FALSE(WarnRoute->Cached);

  bool SawVeto = false;
  for (const obs::Remark &R : Obs.Remarks.remarks())
    if (R.Pass == "swc" && R.Reason == "swc-unsafe-shared")
      SawVeto = true;
  EXPECT_TRUE(SawVeto);
}

// Releasing a handle that was never produced by decap/encap/copy or a
// function argument is reported as pkt-release-uninitialized. Baker's
// Sema rejects such programs, so build the IR directly.
TEST(PacketLifetime, ReleaseOfUndefHandle) {
  ir::Function F("f", ir::Type::voidTy(), /*IsPpf=*/true);
  ir::IRBuilder B(&F);
  B.setInsertBlock(F.addBlock("entry"));
  B.createPktDrop(F.undef(ir::Type::packetTy()));
  B.createRet(nullptr);

  std::vector<analysis::Finding> Out;
  analysis::checkPacketLifetime(F, Out);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Reason, "pkt-release-uninitialized");
  EXPECT_EQ(Out[0].Sev, analysis::Severity::Error);
  EXPECT_EQ(Out[0].Function, "f");
}

// The verifier now enforces the producer invariant the lifetime checker
// relies on: packet operands must come from decap/encap/copy, phi,
// select, load, call, or a function argument.
TEST(Verifier, RejectsIllegalPacketProducer) {
  ir::Function F("f", ir::Type::voidTy(), /*IsPpf=*/true);
  ir::IRBuilder B(&F);
  B.setInsertBlock(F.addBlock("entry"));
  // A packet-typed value minted by an arithmetic op is never legal.
  ir::Instr *Bogus = B.createBin(ir::Op::Add, B.i32(1), B.i32(2));
  Bogus->setType(ir::Type::packetTy());
  B.createPktDrop(Bogus);
  B.createRet(nullptr);

  std::vector<std::string> Problems = ir::verifyFunction(F);
  bool Found = false;
  for (const std::string &P : Problems)
    if (P.find("illegal") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << "verifier accepted an arithmetic packet producer";
}

// Lock names survive lowering so race findings can name the locks
// involved instead of printing raw ids.
TEST(Analysis, LockNamesExported) {
  static const char *Src = R"(
protocol p {
  f : 32;
  demux { 4 };
};

metadata {
  m : 16;
};

module locks {
  u32 g;
  ppf f(p_pkt * ph) {
    critical (alpha) {
      g = 1;
    }
    critical (beta) {
      g = 2;
    }
    packet_drop(ph);
  }
  wire rx -> f;
}
)";
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Src, Diags);
  ASSERT_NE(Unit, nullptr) << Diags.str();
  auto M = ir::lowerProgram(*Unit, Diags);
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(M->LockNames.size(), 2u);
  EXPECT_EQ(M->LockNames[0], "alpha");
  EXPECT_EQ(M->LockNames[1], "beta");
}

} // namespace
