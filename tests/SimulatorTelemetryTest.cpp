//===- tests/SimulatorTelemetryTest.cpp - observability-layer invariants -------==//
//
// The telemetry contract: per-thread cycle buckets partition every ME's
// cycles exactly, per-unit access counts reconcile with the aggregate
// SimStats, tracing is observation-only (stats bit-identical with it on
// or off), and the negative paths of the simulator API (over-budget
// loads, zero-cycle runs, empty traffic, capture past the injection
// cutoff) behave sanely instead of asserting.
//
//===----------------------------------------------------------------------===//

#include "cg/MEIR.h"
#include "driver/Compiler.h"
#include "ixp/Simulator.h"
#include "rts/MemoryMap.h"
#include "support/Rng.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>

using namespace sl;
using namespace sl::cg;
using namespace sl::ixp;

namespace {

profile::Trace simpleTrace(uint64_t Seed, unsigned N) {
  profile::Trace T;
  Rng R(Seed);
  for (unsigned I = 0; I != N; ++I) {
    std::vector<uint8_t> F(64, 0);
    for (auto &B : F)
      B = static_cast<uint8_t>(R.next());
    T.push_back({F, static_cast<uint16_t>(R.nextBelow(4))});
  }
  return T;
}

/// Compiles MiniForward and runs \p Packets packets through a fresh
/// simulator, returning the simulator for inspection.
std::unique_ptr<Simulator> runMiniForward(const profile::Trace &T,
                                          unsigned NumMEs,
                                          unsigned ThreadsPerME,
                                          bool WithTrace = false) {
  driver::CompileOptions Opts;
  Opts.Level = driver::OptLevel::Swc;
  Opts.Map.NumMEs = NumMEs;
  DiagEngine Diags;
  auto App = driver::compile(sl::tests::MiniForward, T, {}, Opts, Diags);
  EXPECT_NE(App, nullptr) << Diags.str();
  if (!App)
    return nullptr;
  ChipParams Chip;
  Chip.ThreadsPerME = ThreadsPerME;
  auto Sim = driver::makeSimulator(*App, Chip);
  if (WithTrace)
    Sim->enableTrace();
  Sim->setMaxInjected(T.size());
  Sim->setTraffic([&T](uint64_t I) -> const SimPacket * {
    static thread_local SimPacket P;
    if (I >= T.size())
      return nullptr;
    P.Frame = T[I].Frame;
    P.Port = T[I].Port;
    return &P;
  });
  Sim->run(10'000'000);
  EXPECT_TRUE(Sim->drained());
  return Sim;
}

TEST(SimTelemetry, CycleBucketsPartitionEveryME) {
  profile::Trace T = simpleTrace(11, 48);
  auto Sim = runMiniForward(T, 2, 8);
  ASSERT_NE(Sim, nullptr);
  SimStats S = Sim->run(0);
  SimTelemetry Telem = Sim->telemetry();

  ASSERT_FALSE(Telem.MEs.empty());
  uint64_t InstrsAcrossThreads = 0;
  for (const METelemetry &ME : Telem.MEs) {
    EXPECT_EQ(ME.Cycles, Telem.Cycles);
    double Util = ME.utilization();
    EXPECT_GE(Util, 0.0);
    EXPECT_LE(Util, 1.0);
    uint64_t BusyAcross = 0;
    for (const ThreadTelemetry &Th : ME.Threads) {
      // The tentpole invariant: the four buckets cover each thread's
      // timeline exactly once.
      EXPECT_EQ(Th.Busy + Th.MemStall + Th.RingWait + Th.Idle, ME.Cycles)
          << "ME " << ME.Index;
      InstrsAcrossThreads += Th.Instrs;
      BusyAcross += Th.Busy;
      EXPECT_LE(Th.Aborts, Th.Instrs);
    }
    // One instruction issue per ME per cycle at most.
    EXPECT_LE(BusyAcross, ME.Cycles);
  }
  EXPECT_EQ(InstrsAcrossThreads, S.Instrs);
  EXPECT_EQ(Telem.Cycles, S.Cycles);
}

TEST(SimTelemetry, UnitCountersReconcileWithSimStats) {
  profile::Trace T = simpleTrace(23, 64);
  auto Sim = runMiniForward(T, 1, 4);
  ASSERT_NE(Sim, nullptr);
  SimStats S = Sim->run(0);
  SimTelemetry Telem = Sim->telemetry();

  for (unsigned Space = 0; Space != 3; ++Space) {
    uint64_t FromStats = 0;
    for (unsigned C = 0; C != 7; ++C)
      FromStats += S.Accesses[Space][C];
    EXPECT_EQ(Telem.Units[Space].Accesses, FromStats)
        << SimTelemetry::unitName(Space);

    uint64_t HistTotal = 0;
    for (uint64_t H : Telem.Units[Space].LatencyHist)
      HistTotal += H;
    EXPECT_EQ(HistTotal, Telem.Units[Space].Accesses)
        << "latency histogram must account for every access";

    // Every access waits at least zero and serves at least one cycle.
    if (Telem.Units[Space].Accesses) {
      EXPECT_GE(Telem.Units[Space].ServiceCycles,
                Telem.Units[Space].Accesses);
    }
  }
}

TEST(SimTelemetry, RingCountersBalanceWhenDrained) {
  profile::Trace T = simpleTrace(37, 40);
  auto Sim = runMiniForward(T, 2, 8);
  ASSERT_NE(Sim, nullptr);
  SimStats S = Sim->run(0);
  SimTelemetry Telem = Sim->telemetry();

  ASSERT_GE(Telem.Rings.size(), 2u);
  const RingTelemetry &Rx = Telem.Rings[rts::RxRing];
  const RingTelemetry &Tx = Telem.Rings[rts::TxRing];
  EXPECT_EQ(Rx.Enqueues, S.RxInjected);
  EXPECT_EQ(Tx.Dequeues, S.TxPackets);
  ChipParams Defaults;
  for (const RingTelemetry &R : Telem.Rings) {
    // Drained: everything enqueued was consumed.
    EXPECT_EQ(R.Enqueues, R.Dequeues);
    EXPECT_LE(R.MaxDepth, Defaults.RingCapacity);
    if (R.Enqueues) {
      EXPECT_GE(R.MaxDepth, 1u);
    }
  }
}

TEST(SimTelemetry, TracingIsObservationOnly) {
  profile::Trace T = simpleTrace(5, 32);
  auto Plain = runMiniForward(T, 2, 8, /*WithTrace=*/false);
  auto Traced = runMiniForward(T, 2, 8, /*WithTrace=*/true);
  ASSERT_NE(Plain, nullptr);
  ASSERT_NE(Traced, nullptr);

  SimStats A = Plain->run(0);
  SimStats B = Traced->run(0);
  // Tracing must not perturb simulated behavior at all: the stats structs
  // are bit-identical.
  EXPECT_EQ(0, std::memcmp(&A, &B, sizeof(SimStats)));

  // And the cycle accounting agrees too.
  SimTelemetry TA = Plain->telemetry();
  SimTelemetry TB = Traced->telemetry();
  ASSERT_EQ(TA.MEs.size(), TB.MEs.size());
  for (size_t M = 0; M != TA.MEs.size(); ++M)
    for (size_t Th = 0; Th != TA.MEs[M].Threads.size(); ++Th) {
      EXPECT_EQ(TA.MEs[M].Threads[Th].Busy, TB.MEs[M].Threads[Th].Busy);
      EXPECT_EQ(TA.MEs[M].Threads[Th].Instrs,
                TB.MEs[M].Threads[Th].Instrs);
    }

  // The traced run produced a loadable Chrome trace.
  ASSERT_NE(Traced->tracer(), nullptr);
  EXPECT_FALSE(Traced->tracer()->events().empty());
  std::ostringstream OS;
  Traced->tracer()->exportChromeTrace(OS);
  std::string Json = OS.str();
  EXPECT_EQ(Json.front(), '{');
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy (strings in the
  // trace contain no braces).
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
}

TEST(SimTelemetry, TraceBufferBoundIsRespected) {
  profile::Trace T = simpleTrace(41, 64);
  driver::CompileOptions Opts;
  Opts.Level = driver::OptLevel::Swc;
  Opts.Map.NumMEs = 1;
  DiagEngine Diags;
  auto App = driver::compile(sl::tests::MiniForward, T, {}, Opts, Diags);
  ASSERT_NE(App, nullptr) << Diags.str();
  ChipParams Chip;
  auto Sim = driver::makeSimulator(*App, Chip);
  Sim->enableTrace(/*MaxEvents=*/256);
  Sim->setMaxInjected(T.size());
  Sim->setTraffic([&T](uint64_t I) -> const SimPacket * {
    static thread_local SimPacket P;
    if (I >= T.size())
      return nullptr;
    P.Frame = T[I].Frame;
    P.Port = T[I].Port;
    return &P;
  });
  Sim->run(10'000'000);
  ASSERT_NE(Sim->tracer(), nullptr);
  EXPECT_LE(Sim->tracer()->events().size(), 256u);
  EXPECT_GT(Sim->tracer()->dropped(), 0u);
  EXPECT_EQ(Sim->telemetry().TraceEventsDropped, Sim->tracer()->dropped());
}

//===----------------------------------------------------------------------===//
// Negative paths / edge cases
//===----------------------------------------------------------------------===//

/// Tiny busy-loop program for loading without the compiler.
FlatCode spinProgram() {
  MCode C;
  C.Name = "spin";
  C.Blocks.push_back(MBlock{"entry", {}});
  MInstr Arb;
  Arb.Op = MOp::CtxArb;
  C.Blocks.back().Instrs.push_back(Arb);
  MInstr Br;
  Br.Op = MOp::Br;
  Br.Target = 0;
  C.Blocks.back().Instrs.push_back(Br);
  return flatten(C);
}

rts::MemoryMap emptyMap() {
  static ir::Module Empty;
  return rts::buildMemoryMap(Empty);
}

TEST(SimNegative, LoadAggregateRejectsOverBudget) {
  ChipParams P;
  Simulator Sim(P, emptyMap());
  FlatCode Code = spinProgram();

  // Budget is ProgrammableMEs; one copy per call.
  for (unsigned K = 0; K != P.ProgrammableMEs; ++K)
    EXPECT_TRUE(Sim.loadAggregate(Code, {}, 1));
  unsigned Loaded = Sim.threadsLoaded();
  EXPECT_EQ(Loaded, P.ProgrammableMEs * P.ThreadsPerME);

  // One over budget: rejected, nothing loaded.
  EXPECT_FALSE(Sim.loadAggregate(Code, {}, 1));
  EXPECT_EQ(Sim.threadsLoaded(), Loaded);

  // A multi-copy request that does not fit is rejected atomically.
  Simulator Sim2(P, emptyMap());
  EXPECT_FALSE(Sim2.loadAggregate(Code, {}, P.ProgrammableMEs + 1));
  EXPECT_EQ(Sim2.threadsLoaded(), 0u);

  // XScale cores live outside the ME budget.
  EXPECT_TRUE(Sim.loadAggregate(Code, {}, 1, /*OnXScale=*/true));
}

TEST(SimNegative, LoadAggregateRejectsCodeStoreOverflow) {
  ChipParams P;
  Simulator Sim(P, emptyMap());
  FlatCode Code = spinProgram();
  Code.CodeSlots = P.CodeStoreSlots + 1;
  EXPECT_FALSE(Sim.loadAggregate(Code, {}, 1));
  EXPECT_EQ(Sim.threadsLoaded(), 0u);
}

TEST(SimNegative, RunZeroCyclesIsAPureSnapshot) {
  ChipParams P;
  Simulator Sim(P, emptyMap());
  ASSERT_TRUE(Sim.loadAggregate(spinProgram(), {}, 1));
  SimStats First = Sim.run(1000);
  SimStats Again = Sim.run(0);
  SimStats Thrice = Sim.run(0);
  EXPECT_EQ(0, std::memcmp(&First, &Again, sizeof(SimStats)));
  EXPECT_EQ(0, std::memcmp(&Again, &Thrice, sizeof(SimStats)));
  EXPECT_EQ(Again.Cycles, 1000u);
  // Telemetry snapshots are stable across pure snapshots too.
  SimTelemetry T1 = Sim.telemetry();
  SimTelemetry T2 = Sim.telemetry();
  ASSERT_EQ(T1.MEs.size(), T2.MEs.size());
  EXPECT_EQ(T1.MEs[0].Threads[0].Busy, T2.MEs[0].Threads[0].Busy);
  EXPECT_EQ(T1.MEs[0].Threads[0].Idle, T2.MEs[0].Threads[0].Idle);
}

TEST(SimNegative, EmptyTrafficRunsAndDrains) {
  ChipParams P;
  Simulator Sim(P, emptyMap());
  ASSERT_TRUE(Sim.loadAggregate(spinProgram(), {}, 1));
  // A generator that never offers a packet.
  Sim.setTraffic([](uint64_t) -> const SimPacket * { return nullptr; });
  SimStats S = Sim.run(5000);
  EXPECT_EQ(S.RxInjected, 0u);
  EXPECT_EQ(S.TxPackets, 0u);
  EXPECT_EQ(S.Cycles, 5000u);
  EXPECT_TRUE(Sim.drained());
  SimTelemetry T = Sim.telemetry();
  EXPECT_EQ(T.Rings[rts::RxRing].Enqueues, 0u);
  EXPECT_EQ(T.Rings[rts::RxRing].MaxDepth, 0u);
}

TEST(SimNegative, CaptureRecordsTxAfterInjectionCutoff) {
  // Packets still in flight when Rx stops injecting must drain to Tx and
  // be captured — the capture buffer is keyed on transmission, not
  // injection.
  profile::Trace T = simpleTrace(61, 24);
  driver::CompileOptions Opts;
  Opts.Level = driver::OptLevel::Swc;
  Opts.Map.NumMEs = 1;
  DiagEngine Diags;
  auto App = driver::compile(sl::tests::MiniForward, T, {}, Opts, Diags);
  ASSERT_NE(App, nullptr) << Diags.str();
  ChipParams Chip;
  Chip.ThreadsPerME = 4;
  auto Sim = driver::makeSimulator(*App, Chip);
  Sim->enableCapture();
  Sim->setMaxInjected(T.size());
  Sim->setTraffic([&T](uint64_t I) -> const SimPacket * {
    static thread_local SimPacket P;
    P.Frame = T[I % T.size()].Frame;
    P.Port = T[I % T.size()].Port;
    return &P;
  });
  SimStats S = Sim->run(10'000'000);
  ASSERT_TRUE(Sim->drained());
  EXPECT_EQ(S.RxInjected, T.size());
  EXPECT_EQ(S.TxPackets, T.size());
  ASSERT_EQ(Sim->captured().size(), T.size());
  // Some transmissions land after the last injection (the pipeline keeps
  // draining past the cutoff); every captured record carries its cycle.
  uint64_t LastTx = 0;
  for (const SimTxRecord &R : Sim->captured())
    LastTx = std::max(LastTx, R.Cycle);
  EXPECT_GT(LastTx, 0u);
  EXPECT_LE(LastTx, S.Cycles);
}

} // namespace
