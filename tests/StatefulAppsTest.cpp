//===- tests/StatefulAppsTest.cpp - the stateful workload tier ---------------==//
//
// Per-app correctness oracles on small deterministic traces (NAT mapping
// stability, SLB consistent-hash remap bound, token-bucket refill math),
// packet conservation under every adversarial profile, the StateRace
// classification of each app's globals, and the --analyze error
// clean-compile gate.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "driver/Compiler.h"
#include "interp/Bits.h"
#include "interp/Interp.h"
#include "traffic/Traffic.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::apps;
using namespace sl::driver;

namespace {

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

TEST(StatefulApps, NatTranslationConsistency) {
  OracleResult O = natOracle(1);
  EXPECT_TRUE(O.Ok) << O.Log;
}

TEST(StatefulApps, SlbAffinityAndRemapBound) {
  OracleResult O = slbOracle(1);
  EXPECT_TRUE(O.Ok) << O.Log;
}

TEST(StatefulApps, SynfloodFpFnBounds) {
  OracleResult O = synfloodOracle(1);
  EXPECT_TRUE(O.Ok) << O.Log;
}

// Exact token-bucket arithmetic, packet by packet: cap 96 / cost 16 admits
// a burst of exactly 6, the 7th is dropped, and 32 ticks of other-source
// SYNs later (32 tokens earned, 6 banked) the source is admitted again.
TEST(StatefulApps, TokenBucketRefillMath) {
  AppInterp AI = makeAppInterp(synflood());
  ASSERT_NE(AI.I, nullptr) << AI.Error;

  auto syn = [&](uint32_t SrcLow, uint16_t Sport) {
    std::vector<uint8_t> F(64, 0);
    interp::writeBitsBE(F.data(), 96, 16, 0x0800);
    interp::writeBitsBE(F.data(), 14 * 8 + 0, 4, 4);
    interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
    interp::writeBitsBE(F.data(), 14 * 8 + 72, 8, 6); // proto TCP
    interp::writeBitsBE(F.data(), 14 * 8 + 96, 32, 0x0A000000u | SrcLow);
    interp::writeBitsBE(F.data(), 34 * 8, 16, Sport);
    interp::writeBitsBE(F.data(), 34 * 8 + 104, 8, 0x02); // SYN
    interp::RunResult R = AI.I->inject(F, 0);
    EXPECT_FALSE(R.Error) << R.ErrorMsg;
    return !R.Tx.empty();
  };

  // Back-to-back burst from one source: 96/16 = 6 admitted. Each SYN also
  // ticks the clock, refilling 1 token/SYN, but 16-token cost dominates.
  for (unsigned K = 0; K != 6; ++K)
    EXPECT_TRUE(syn(0x42, static_cast<uint16_t>(1000 + K)))
        << "burst SYN " << K << " should pass";
  EXPECT_FALSE(syn(0x42, 1006)) << "7th SYN must exceed the burst cap";

  // 32 SYNs from 32 distinct other sources tick the clock by 32: the
  // throttled source earns 32 tokens on top of its banked 6 >= cost 16.
  for (unsigned K = 0; K != 32; ++K)
    EXPECT_TRUE(syn(0x1000 + K, 2000)) << "fresh source " << K;
  EXPECT_TRUE(syn(0x42, 1007)) << "refilled source must be admitted";
}

// Thrash traffic overruns the 1024-slot NAT table by design: the app must
// survive it (no interpreter faults), keep conservation, and actually
// exercise the eviction path.
TEST(StatefulApps, NatThrashChurnsAndConserves) {
  AppBundle App = nat();
  profile::Trace T =
      adversarialTrace(App, traffic::Profile::Thrash, 7, 1500);
  OracleResult O = conservationOracle(App, T);
  EXPECT_TRUE(O.Ok) << O.Log;

  AppInterp AI = makeAppInterp(App);
  ASSERT_NE(AI.I, nullptr);
  for (const auto &P : T) {
    interp::RunResult R = AI.I->inject(P.Frame, P.Port);
    ASSERT_FALSE(R.Error) << R.ErrorMsg;
  }
  EXPECT_GT(AI.I->readGlobal("evictions", 0), 0u)
      << "32768-flow churn against 1024 slots must evict";
}

// injected == tx + sum(DropCounters) for every app under every profile,
// malformed/truncated input included.
class Conservation
    : public ::testing::TestWithParam<std::tuple<int, traffic::Profile>> {};

TEST_P(Conservation, Holds) {
  AppBundle App = statefulApps()[std::get<0>(GetParam())];
  traffic::Profile P = std::get<1>(GetParam());
  profile::Trace T = adversarialTrace(App, P, 0xC0DE, 600);
  ASSERT_EQ(T.size(), 600u);
  OracleResult O = conservationOracle(App, T);
  EXPECT_TRUE(O.Ok) << traffic::profileName(P) << ": " << O.Log;
}

std::string conservationName(
    const ::testing::TestParamInfo<std::tuple<int, traffic::Profile>>
        &Info) {
  static const char *Names[] = {"NAT", "SLB", "SynFlood"};
  return std::string(Names[std::get<0>(Info.param)]) + "_" +
         traffic::profileName(std::get<1>(Info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AppsByProfile, Conservation,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::ValuesIn(traffic::allProfiles())),
    conservationName);

//===----------------------------------------------------------------------===//
// Static safety: StateRace classification + --analyze error gate
//===----------------------------------------------------------------------===//

std::unique_ptr<CompiledApp> compileStateful(const AppBundle &App,
                                             AnalyzeMode Mode,
                                             std::string &Err) {
  CompileOptions Opts;
  Opts.Level = OptLevel::Swc;
  Opts.TxMetaFields = App.TxMetaFields;
  Opts.Analyze = Mode;
  DiagEngine Diags;
  auto C = compile(App.Source, App.makeTrace(3, 256), App.Tables, Opts,
                   Diags);
  Err = Diags.str();
  return C;
}

TEST(StatefulApps, AnalyzeErrorCleanCompile) {
  for (const AppBundle &App : statefulApps()) {
    std::string Err;
    auto C = compileStateful(App, AnalyzeMode::Error, Err);
    EXPECT_NE(C, nullptr) << App.Name << " rejected at --analyze error: "
                          << Err;
  }
}

TEST(StatefulApps, NatRaceClassification) {
  std::string Err;
  auto C = compileStateful(nat(), AnalyzeMode::Warn, Err);
  ASSERT_NE(C, nullptr) << Err;
  ASSERT_TRUE(C->Races.Valid);
  for (const auto &F : C->Findings)
    EXPECT_NE(F.Sev, analysis::Severity::Error) << F.Detail;

  // Config is read-only and cacheable; the flow tables are data-plane
  // mutable and must be vetoed for SWC.
  EXPECT_TRUE(C->Races.cacheSafe("nat_ip"));
  for (const char *G : {"fwd_key", "fwd_port", "rev_key", "next_port"}) {
    const auto *F = C->Races.facts(G);
    ASSERT_NE(F, nullptr) << G;
    EXPECT_TRUE(F->DataPlaneStores) << G;
    EXPECT_FALSE(C->Races.cacheSafe(G)) << G;
    EXPECT_FALSE(F->UnlockedRmw) << G << ": all RMWs sit under nat_lock";
    EXPECT_FALSE(F->LockInconsistent) << G;
  }
  // The allocation cursor is only ever touched inside the critical.
  EXPECT_NE(C->Races.facts("next_port")->ConsistentLock, -1);
  // Stat counters are recognized self-feeding benign increments.
  for (const char *G : {"alloc_calls", "non_ip", "malformed", "rev_miss"})
    EXPECT_TRUE(C->Races.facts(G)->BenignCounter) << G;
}

TEST(StatefulApps, SlbRaceClassification) {
  std::string Err;
  auto C = compileStateful(slb(), AnalyzeMode::Warn, Err);
  ASSERT_NE(C, nullptr) << Err;
  ASSERT_TRUE(C->Races.Valid);
  for (const auto &F : C->Findings)
    EXPECT_NE(F.Sev, analysis::Severity::Error) << F.Detail;

  // The consistent-hash ring and backend config never see data-plane
  // stores: exactly the split that keeps the hot lookup SWC-cacheable
  // while the affinity cache stays uncached.
  for (const char *G : {"vip", "ring", "be_up", "be_ip"})
    EXPECT_TRUE(C->Races.cacheSafe(G)) << G;
  for (const char *G : {"aff_key", "aff_be"}) {
    const auto *F = C->Races.facts(G);
    ASSERT_NE(F, nullptr) << G;
    EXPECT_FALSE(C->Races.cacheSafe(G)) << G;
    EXPECT_FALSE(F->UnlockedRmw) << G;
  }
  EXPECT_TRUE(C->Races.facts("be_pkts")->BenignCounter);
}

TEST(StatefulApps, SynfloodRaceClassification) {
  std::string Err;
  auto C = compileStateful(synflood(), AnalyzeMode::Warn, Err);
  ASSERT_NE(C, nullptr) << Err;
  ASSERT_TRUE(C->Races.Valid);
  for (const auto &F : C->Findings)
    EXPECT_NE(F.Sev, analysis::Severity::Error) << F.Detail;

  for (const char *G : {"syn_cost", "syn_rate", "syn_cap"})
    EXPECT_TRUE(C->Races.cacheSafe(G)) << G;
  for (const char *G : {"tb_tokens", "tb_tick", "now"}) {
    const auto *F = C->Races.facts(G);
    ASSERT_NE(F, nullptr) << G;
    EXPECT_FALSE(C->Races.cacheSafe(G)) << G;
    EXPECT_FALSE(F->UnlockedRmw) << G;
    EXPECT_FALSE(F->LockInconsistent) << G;
  }
  // The virtual clock is the classic all-accesses-one-lock global.
  EXPECT_NE(C->Races.facts("now")->ConsistentLock, -1);
  for (const char *G : {"syn_pass", "syn_drop", "non_tcp"})
    EXPECT_TRUE(C->Races.facts(G)->BenignCounter) << G;
}

} // namespace
