//===- tests/EndToEndTest.cpp - compiled ME code vs reference interpreter ------==//
//
// The strongest correctness property in the repository: for every
// optimization level of the ladder, Baker programs compiled to MEIR and
// executed on the simulated IXP2400 must produce exactly the frames the
// reference interpreter produces.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "driver/Compiler.h"
#include "interp/Bits.h"
#include "interp/Interp.h"
#include "ir/ASTLower.h"
#include "support/Rng.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::driver;

namespace {

profile::Trace routerTrace(uint64_t Seed, unsigned N) {
  profile::Trace T;
  Rng R(Seed);
  for (unsigned I = 0; I != N; ++I) {
    std::vector<uint8_t> F(64, 0);
    for (auto &B : F)
      B = static_cast<uint8_t>(R.next());
    if (R.chance(3, 4)) { // Mostly IPv4.
      F[12] = 0x08;
      F[13] = 0x00;
      interp::writeBitsBE(F.data(), 14 * 8 + 0, 4, 4);
      interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
    }
    T.push_back({F, static_cast<uint16_t>(R.nextBelow(4))});
  }
  return T;
}

std::vector<interp::TxPacket> runReference(const char *Src,
                                           const std::vector<TableInit> &Tab,
                                           const profile::Trace &T) {
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Src, Diags);
  EXPECT_NE(Unit, nullptr) << Diags.str();
  auto M = ir::lowerProgram(*Unit, Diags);
  interp::Interpreter I(*M);
  for (const TableInit &TI : Tab)
    I.writeGlobal(TI.Global, TI.Index, TI.Value);
  std::vector<interp::TxPacket> Out;
  for (const auto &P : T) {
    interp::RunResult R = I.inject(P.Frame, P.Port);
    EXPECT_FALSE(R.Error) << R.ErrorMsg;
    for (auto &Tx : R.Tx)
      Out.push_back(std::move(Tx));
  }
  return Out;
}

struct LevelCase {
  const char *Name;
  OptLevel Level;
};

class LadderEquivalence : public ::testing::TestWithParam<LevelCase> {};

void checkProgram(const char *Src, const std::vector<TableInit> &Tables,
                  const profile::Trace &Trace, OptLevel Level,
                  const std::vector<std::string> &TxMeta = {}) {
  CompileOptions Opts;
  Opts.Level = Level;
  Opts.Map.NumMEs = 1; // Deterministic ordering for the comparison.
  Opts.TxMetaFields = TxMeta;

  DiagEngine Diags;
  auto App = compile(Src, Trace, Tables, Opts, Diags);
  ASSERT_NE(App, nullptr) << Diags.str();

  ixp::ChipParams Chip;
  Chip.ThreadsPerME = 1; // FIFO pipeline => in-order with the interpreter.
  auto Sim = makeSimulator(*App, Chip);
  Sim->enableCapture();
  Sim->setMaxInjected(Trace.size());
  Sim->setTraffic([&Trace](uint64_t I) -> const ixp::SimPacket * {
    static thread_local ixp::SimPacket P;
    if (I >= Trace.size())
      return nullptr;
    P.Frame = Trace[I].Frame;
    P.Port = Trace[I].Port;
    return &P;
  });
  ixp::SimStats Stats = Sim->run(30'000'000);
  ASSERT_TRUE(Sim->drained()) << "simulation did not drain (deadlock?)";

  std::vector<interp::TxPacket> Ref = runReference(Src, Tables, Trace);
  const auto &Got = Sim->captured();
  ASSERT_EQ(Got.size(), Ref.size());
  for (size_t K = 0; K != Ref.size(); ++K) {
    ASSERT_EQ(Got[K].Frame, Ref[K].Frame) << "packet " << K;
    // Metadata: compare only fields visible outside the dataflow (PHR may
    // have localized the rest). rx_port is always extern.
    EXPECT_EQ(interp::readBitsBE(Got[K].Meta.data(), 0, 16),
              interp::readBitsBE(Ref[K].Meta.data(), 0, 16))
        << "rx_port of packet " << K;
  }
  EXPECT_EQ(Stats.TxPackets, Ref.size());
}

TEST_P(LadderEquivalence, MiniForward) {
  profile::Trace T = routerTrace(7, 64);
  checkProgram(sl::tests::MiniForward, {}, T, GetParam().Level);
}

TEST_P(LadderEquivalence, MiniRouter) {
  std::vector<TableInit> Tables;
  for (unsigned K = 0; K != 16; ++K)
    Tables.push_back({"route_hi", K, (K * 7 + 3) % 17});
  profile::Trace T = routerTrace(99, 96);
  checkProgram(sl::tests::MiniRouter, Tables, T, GetParam().Level);
}

TEST_P(LadderEquivalence, EncapDecapChain) {
  const char *Src = R"(
    protocol ether { dst:48; src:48; type:16; demux { 14 }; };
    protocol shim { label:20; exp:3; s:1; ttl:8; demux { 4 }; };
    module m {
      u32 labels[16];
      ppf f(ether_pkt * ph) {
        if (ph->type == 0x8847) {
          shim_pkt * sp = packet_decap(ph);
          u32 nl = labels[sp->label & 15];
          if (nl == 0) {
            packet_drop(sp);
            return;
          }
          sp->label = nl;
          sp->ttl = sp->ttl - 1;
          channel_put(tx, sp);
        } else {
          shim_pkt * pushed = packet_encap(ph);
          pushed->label = 99;
          pushed->s = 1;
          pushed->ttl = 64;
          channel_put(tx, pushed);
        }
      }
      wire rx -> f;
    }
  )";
  std::vector<TableInit> Tables;
  for (unsigned K = 0; K != 16; ++K)
    Tables.push_back({"labels", K, K % 3 == 0 ? 0 : 1000 + K});
  profile::Trace T;
  Rng R(5);
  for (unsigned I = 0; I != 80; ++I) {
    std::vector<uint8_t> F(64, 0);
    for (auto &B : F)
      B = static_cast<uint8_t>(R.next());
    if (R.chance(1, 2)) {
      F[12] = 0x88;
      F[13] = 0x47;
    }
    T.push_back({F, static_cast<uint16_t>(R.nextBelow(3))});
  }
  checkProgram(Src, Tables, T, GetParam().Level);
}

INSTANTIATE_TEST_SUITE_P(
    Levels, LadderEquivalence,
    ::testing::Values(LevelCase{"BASE", OptLevel::Base},
                      LevelCase{"O1", OptLevel::O1},
                      LevelCase{"O2", OptLevel::O2},
                      LevelCase{"PAC", OptLevel::Pac},
                      LevelCase{"SOAR", OptLevel::Soar},
                      LevelCase{"PHR", OptLevel::Phr},
                      LevelCase{"SWC", OptLevel::Swc}),
    [](const ::testing::TestParamInfo<LevelCase> &Info) {
      return Info.param.Name;
    });

TEST(EndToEnd, OptimizationReducesMemoryTraffic) {
  // The headline Table-1 property: the optimized build issues far fewer
  // SRAM accesses per packet than BASE.
  std::vector<TableInit> Tables;
  for (unsigned K = 0; K != 16; ++K)
    Tables.push_back({"route_hi", K, K + 1});
  profile::Trace T = routerTrace(3, 64);

  auto measure = [&](OptLevel L) {
    CompileOptions Opts;
    Opts.Level = L;
    Opts.Map.NumMEs = 1;
    DiagEngine Diags;
    auto App = compile(sl::tests::MiniRouter, T, Tables, Opts, Diags);
    EXPECT_NE(App, nullptr) << Diags.str();
    ixp::ChipParams Chip;
    Chip.ThreadsPerME = 1;
    auto Sim = makeSimulator(*App, Chip);
    Sim->setMaxInjected(T.size());
    Sim->setTraffic([&T](uint64_t I) -> const ixp::SimPacket * {
      static thread_local ixp::SimPacket P;
      if (I >= T.size())
        return nullptr;
      P.Frame = T[I].Frame;
      P.Port = T[I].Port;
      return &P;
    });
    return Sim->run(30'000'000);
  };

  ixp::SimStats Base = measure(OptLevel::Base);
  ixp::SimStats Best = measure(OptLevel::Swc);
  ASSERT_GT(Base.TxPackets, 0u);
  ASSERT_GT(Best.TxPackets, 0u);
  EXPECT_LT(Best.perPacketSpace(1), Base.perPacketSpace(1))
      << "optimizations must cut SRAM accesses per packet";
  EXPECT_LT(Best.perPacketSpace(2), Base.perPacketSpace(2) + 1e-9)
      << "optimizations must not add DRAM accesses";
  EXPECT_LT(double(Best.Instrs) / double(Best.TxPackets),
            double(Base.Instrs) / double(Base.TxPackets))
      << "optimizations must cut instructions per packet";
}

TEST(EndToEnd, L3SwitchTelemetryRegression) {
  // Telemetry-backed version of the Figure 13 / Table 1 claims for the
  // real L3-Switch app: the fully-optimized build must issue strictly
  // fewer DRAM accesses per packet than BASE, and every loaded ME must
  // actually do work (a silently-unloaded or starved aggregate shows up
  // as a 100%-idle ME long before it shows up in aggregate Gbps).
  apps::AppBundle App = apps::l3switch();
  profile::Trace T = App.makeTrace(0x5151, 256);

  struct Run {
    ixp::SimStats Stats;
    ixp::SimTelemetry Telem;
  };
  auto measure = [&](OptLevel L) {
    CompileOptions Opts;
    Opts.Level = L;
    Opts.Map.NumMEs = 2;
    Opts.TxMetaFields = App.TxMetaFields;
    DiagEngine Diags;
    profile::Trace Prof = App.makeTrace(0x9999, 256);
    auto Compiled = compile(App.Source, Prof, App.Tables, Opts, Diags);
    EXPECT_NE(Compiled, nullptr) << Diags.str();
    Run R;
    if (!Compiled)
      return R;
    ixp::ChipParams Chip;
    auto Sim = makeSimulator(*Compiled, Chip);
    Sim->setTraffic([&T](uint64_t I) -> const ixp::SimPacket * {
      static thread_local ixp::SimPacket P;
      P.Frame = T[I % T.size()].Frame;
      P.Port = T[I % T.size()].Port;
      return &P;
    });
    R.Stats = Sim->run(300'000);
    R.Telem = Sim->telemetry();
    return R;
  };

  Run Base = measure(OptLevel::Base);
  Run Best = measure(OptLevel::Swc);
  ASSERT_GT(Base.Stats.TxPackets, 0u);
  ASSERT_GT(Best.Stats.TxPackets, 0u);

  // Per-packet DRAM accesses strictly decrease (PAC's packet-access
  // combining is the paper's headline DRAM win).
  EXPECT_LT(Best.Stats.perPacketSpace(2), Base.Stats.perPacketSpace(2))
      << "optimized build must touch DRAM less per packet";

  // No loaded ME is 100% idle: every aggregate pulled its weight.
  for (const ixp::METelemetry &ME : Best.Telem.MEs) {
    uint64_t Busy = 0, Instrs = 0;
    for (const ixp::ThreadTelemetry &Th : ME.Threads) {
      Busy += Th.Busy;
      Instrs += Th.Instrs;
    }
    EXPECT_GT(Busy, 0u) << "ME " << ME.Index << " never issued";
    EXPECT_GT(Instrs, 0u) << "ME " << ME.Index << " executed nothing";
    EXPECT_GT(ME.utilization(), 0.0);
  }
}

} // namespace
