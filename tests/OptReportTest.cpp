//===- tests/OptReportTest.cpp - compiler observability tests ----------------==//
//
// Covers the observability layer end to end: the instrumented pass
// pipeline, the PAC/SOAR/PHR/SWC remark streams, the observation-only
// contract (attaching an observer changes no produced image), the JSON
// opt-report, the fixed-point-cap note, feedback-round recording, and the
// Table-1 cross-check harness on a real compiled+simulated ladder.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "baker/Frontend.h"
#include "ir/ASTLower.h"
#include "obs/CrossCheck.h"
#include "opt/Passes.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <map>
#include <sstream>

using namespace sl;
using obs::RemarkKind;

namespace {

/// Field-by-field rendering of an image, for bit-identity comparison.
/// Comments are excluded: they are listing text, not code.
std::string fingerprint(const cg::FlatCode &FC) {
  std::ostringstream OS;
  OS << FC.Name << '#' << FC.CodeSlots << '\n';
  for (const cg::MInstr &I : FC.Code)
    OS << int(I.Op) << ' ' << int(I.Cond) << ' ' << int(I.Space) << ' '
       << int(I.Class) << ' ' << I.Dst << ' ' << I.SrcA << ' ' << I.SrcB
       << ' ' << I.Imm << ' ' << I.Xfer << ' ' << I.Words << ' '
       << I.Target << ' ' << I.CamBase << ' ' << I.CamSize << ' ' << I.Ring
       << ' ' << I.LmFast << ' ' << I.StackSlot << ' ' << I.SlotWord << ' '
       << I.ThreadStack << '\n';
  return OS.str();
}

std::string fingerprint(const driver::CompiledApp &App) {
  std::ostringstream OS;
  for (const driver::AggregateBinary &B : App.Images)
    OS << fingerprint(B.Code) << "copies=" << B.Copies
       << " xscale=" << B.OnXScale << '\n';
  return OS.str();
}

TEST(OptReport, L3SwitchSwcReportIsComplete) {
  obs::CompileObserver Obs;
  apps::AppBundle App = apps::l3switch();
  auto Compiled =
      bench::compileApp(App, driver::OptLevel::Swc, /*NumMEs=*/4, true, &Obs);
  ASSERT_NE(Compiled, nullptr);

  // All four packet optimizations fired somewhere on L3-Switch at -Oswc.
  EXPECT_GT(Obs.Remarks.count("pac", RemarkKind::Fired), 0u);
  EXPECT_GT(Obs.Remarks.count("soar", RemarkKind::Fired), 0u);
  EXPECT_GT(Obs.Remarks.count("phr", RemarkKind::Fired), 0u);
  EXPECT_GT(Obs.Remarks.count("swc", RemarkKind::Fired), 0u);

  // At least one missed remark, and every remark carries a concrete
  // machine-readable reason code.
  unsigned Missed = 0;
  for (const obs::Remark &R : Obs.Remarks.remarks()) {
    EXPECT_FALSE(R.Reason.empty()) << "remark without reason in " << R.Pass;
    Missed += R.Kind == RemarkKind::Missed;
  }
  EXPECT_GE(Missed, 1u);

  // The pipeline phases were all recorded, in order, under attempt 0.
  const char *Expected[] = {"parse",  "ir-lower", "profile",
                            "aggregate-formation", "inline", "pkt-lifetime",
                            "state-race", "o1", "o2",
                            "phr",    "phr-cleanup", "pac", "soar", "swc",
                            "verify", "memory-map", "codegen"};
  std::vector<std::string> Names;
  for (const obs::PassRecord &P : Obs.passes())
    Names.push_back(P.Name);
  for (const char *E : Expected)
    EXPECT_NE(std::find(Names.begin(), Names.end(), E), Names.end())
        << "missing pass record: " << E;

  // Pass wall times sum to the total within slack (the driver records a
  // flat sequence covering nearly the whole compile).
  EXPECT_GT(Obs.totalUs(), 0u);
  EXPECT_LE(Obs.sumPassUs(), Obs.totalUs());
  EXPECT_GE(Obs.sumPassUs() * 2, Obs.totalUs())
      << "pass records cover too little of the compile";

  // The o1 phase ran its fixed point at least once.
  for (const obs::PassRecord &P : Obs.passes()) {
    if (P.Name == "o1") {
      EXPECT_GE(P.FixpointRounds, 1u);
    }
  }

  // The JSON report carries the schema headline fields and the remark
  // streams.
  std::ostringstream OS;
  Obs.writeJson(OS);
  std::string J = OS.str();
  for (const char *Needle :
       {"\"optReportVersion\"", "\"app\": \"L3-Switch\"", "\"level\": \"+SWC\"",
        "\"passes\"", "\"remarks\"", "\"remarkCounts\"", "\"pac\"",
        "\"soar\"", "\"phr\"", "\"swc\"", "\"totalUs\""})
    EXPECT_NE(J.find(Needle), std::string::npos) << "missing: " << Needle;

  // Chrome trace is well-formed enough to have one event per pass.
  std::ostringstream TS;
  Obs.exportChromeTrace(TS);
  std::string T = TS.str();
  size_t Events = 0;
  for (size_t P = T.find("\"ph\""); P != std::string::npos;
       P = T.find("\"ph\"", P + 1))
    ++Events;
  EXPECT_GE(Events, Obs.passes().size());
}

TEST(OptReport, AnalysisSectionSchema) {
  obs::CompileObserver Obs;
  apps::AppBundle App = apps::l3switch();
  auto Compiled =
      bench::compileApp(App, driver::OptLevel::Swc, /*NumMEs=*/4, true, &Obs);
  ASSERT_NE(Compiled, nullptr);

  // The observer captured the analysis run: default mode, one global
  // record per module global, benign counters among the findings.
  const obs::AnalysisReport &A = Obs.analysisReport();
  ASSERT_TRUE(A.Present);
  EXPECT_EQ(A.Mode, "warn");
  size_t NumGlobals = 0;
  for (const auto &G : Compiled->IR->globals()) {
    (void)G;
    ++NumGlobals;
  }
  EXPECT_EQ(A.Globals.size(), NumGlobals);
  for (const obs::AnalysisGlobalRecord &G : A.Globals) {
    EXPECT_FALSE(G.Name.empty());
    EXPECT_FALSE(G.Scope.empty());
    // The exported SWC legality bit is exactly the negation of a
    // data-plane store having been seen.
    EXPECT_EQ(G.CacheSafe, !G.DataPlaneStores);
  }
  bool SawBenign = false;
  for (const obs::AnalysisFinding &F : A.Findings) {
    EXPECT_FALSE(F.Analysis.empty());
    EXPECT_FALSE(F.Reason.empty());
    SawBenign |= F.Reason == "benign-counter-rmw";
  }
  EXPECT_TRUE(SawBenign) << "L3-Switch counters should be noted";

  // The JSON rendering carries the section with its schema fields.
  std::ostringstream OS;
  Obs.writeJson(OS);
  std::string J = OS.str();
  for (const char *Needle :
       {"\"analysis\"", "\"mode\": \"warn\"", "\"findings\"", "\"globals\"",
        "\"scope\"", "\"dataPlaneStores\"", "\"cacheSafe\"",
        "\"benignCounter\"", "\"consistentLock\"", "benign-counter-rmw"})
    EXPECT_NE(J.find(Needle), std::string::npos) << "missing: " << Needle;

  // The analysis remark stream mirrors the findings.
  EXPECT_GE(Obs.Remarks.count("analysis", RemarkKind::Note),
            A.Findings.size());
}

TEST(OptReport, AnalyzeWarnKeepsImagesIdentical) {
  // Running the analyses must not perturb codegen on a clean app: the
  // fig13-style +SWC build is bit-identical with --analyze=off and the
  // default warn mode (the race classification and SWC's own scan agree
  // on every L3-Switch global).
  apps::AppBundle App = apps::l3switch();
  auto Off = bench::compileApp(App, driver::OptLevel::Swc, /*NumMEs=*/4,
                               true, nullptr, true, 0,
                               driver::AnalyzeMode::Off);
  auto Warn = bench::compileApp(App, driver::OptLevel::Swc, /*NumMEs=*/4,
                                true, nullptr, true, 0,
                                driver::AnalyzeMode::Warn);
  ASSERT_NE(Off, nullptr);
  ASSERT_NE(Warn, nullptr);
  EXPECT_FALSE(Off->Races.Valid);
  EXPECT_TRUE(Warn->Races.Valid);
  EXPECT_EQ(fingerprint(*Off), fingerprint(*Warn));
}

TEST(OptReport, ObserverIsObservationOnly) {
  apps::AppBundle App = apps::l3switch();
  auto Plain =
      bench::compileApp(App, driver::OptLevel::Swc, /*NumMEs=*/2, true);
  obs::CompileObserver Obs;
  auto Observed =
      bench::compileApp(App, driver::OptLevel::Swc, /*NumMEs=*/2, true, &Obs);
  ASSERT_NE(Plain, nullptr);
  ASSERT_NE(Observed, nullptr);
  ASSERT_EQ(Plain->Images.size(), Observed->Images.size());
  EXPECT_EQ(fingerprint(*Plain), fingerprint(*Observed));
  // ...and the observer did record something, so the comparison is not
  // vacuous.
  EXPECT_FALSE(Obs.passes().empty());
  EXPECT_FALSE(Obs.Remarks.remarks().empty());
}

TEST(OptReport, PipelineCapRemark) {
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(tests::MiniRouter, Diags);
  ASSERT_NE(Unit, nullptr) << Diags.str();
  auto M = ir::lowerProgram(*Unit, Diags);
  ASSERT_NE(M, nullptr);

  // Freshly lowered IR always changes in round 1 (mem2reg alone), so a
  // one-round cap cuts the fixed point off and must say so.
  obs::RemarkEmitter Rem;
  bool Noted = false;
  for (const auto &F : M->functions()) {
    unsigned Rounds = opt::runScalarPipeline(*F, &Rem, /*MaxRounds=*/1);
    EXPECT_LE(Rounds, 1u);
  }
  for (const obs::Remark &R : Rem.remarks())
    if (R.Pass == "pipeline" && R.Kind == RemarkKind::Note &&
        R.Reason == "fixed-point-cap-hit") {
      Noted = true;
      EXPECT_FALSE(R.Function.empty());
      EXPECT_EQ(R.argNum("rounds"), 1.0);
    }
  EXPECT_TRUE(Noted);

  // With the default cap the same functions reach a fixed point and no
  // cap note appears.
  auto Unit2 = baker::parseAndAnalyze(tests::MiniRouter, Diags);
  ASSERT_NE(Unit2, nullptr);
  auto M2 = ir::lowerProgram(*Unit2, Diags);
  obs::RemarkEmitter Rem2;
  opt::runO1(*M2, &Rem2);
  EXPECT_EQ(Rem2.count("pipeline", RemarkKind::Note), 0u);
}

TEST(OptReport, FeedbackRoundsRecorded) {
  apps::AppBundle App = apps::l3switch();
  driver::CompileOptions Opts;
  Opts.Level = driver::OptLevel::Swc;
  Opts.Map.NumMEs = 2;
  Opts.TxMetaFields = App.TxMetaFields;
  obs::CompileObserver Obs;
  Opts.Observer = &Obs;
  driver::FeedbackOptions FB;
  FB.MaxRounds = 2;
  FB.CalibCycles = 40'000;
  DiagEngine Diags;
  profile::Trace ProfTrace = App.makeTrace(0x9999, 128);
  profile::Trace Calib = App.makeTrace(0x1234, 128);
  driver::FeedbackResult R = driver::compileWithFeedback(
      App.Source, ProfTrace, Calib, App.Tables, Opts, FB, Diags);
  ASSERT_NE(R.App, nullptr) << Diags.str();

  ASSERT_FALSE(Obs.feedbackRounds().empty());
  ASSERT_EQ(Obs.feedbackRounds().size(), R.Rounds.size());
  for (size_t I = 0; I != R.Rounds.size(); ++I) {
    const obs::FeedbackRoundRecord &O = Obs.feedbackRounds()[I];
    EXPECT_EQ(O.Round, R.Rounds[I].Round);
    EXPECT_EQ(O.MeasuredPktPerKCycle, R.Rounds[I].MeasuredPktPerKCycle);
    EXPECT_EQ(O.PlanSignature, R.Rounds[I].PlanSignature);
  }
  // Calibration rounds show up as instrumented "calibrate" phases, and
  // the report serializes the rounds.
  bool SawCalibrate = false;
  for (const obs::PassRecord &P : Obs.passes())
    SawCalibrate |= P.Name == "calibrate";
  EXPECT_TRUE(SawCalibrate);
  std::ostringstream OS;
  Obs.writeJson(OS);
  EXPECT_NE(OS.str().find("\"feedbackRounds\""), std::string::npos);
}

TEST(OptReport, CrossCheckL3SwitchLadder) {
  // Real compiles + short simulations at the four ladder levels Table 1's
  // cross-check reconciles; this is the bench harness in miniature.
  apps::AppBundle App = apps::l3switch();
  profile::Trace Traffic = App.makeTrace(0x717171, 256);
  struct Row {
    const char *Name;
    driver::OptLevel Level;
  };
  const Row Rows[] = {{"+ -O1", driver::OptLevel::O1},
                      {"+ PAC", driver::OptLevel::Pac},
                      {"+ PHR", driver::OptLevel::Phr},
                      {"+ SWC", driver::OptLevel::Swc}};
  std::map<std::string, obs::LevelObs> Levels;
  for (const Row &R : Rows) {
    obs::CompileObserver Observer;
    auto Compiled =
        bench::compileApp(App, R.Level, /*NumMEs=*/2, true, &Observer);
    ASSERT_NE(Compiled, nullptr) << R.Name;
    bench::ForwardResult F =
        bench::runForwarding(*Compiled, Traffic, 120'000);
    const ixp::SimStats &S = F.Stats;
    obs::LevelObs L;
    L.Level = R.Name;
    L.PktAccessesPerPkt = S.perPacket(0, cg::MemClass::PktRing) +
                          S.perPacket(1, cg::MemClass::PktMeta) +
                          S.perPacket(1, cg::MemClass::PktRing) +
                          S.perPacket(2, cg::MemClass::PktData);
    L.AppSramPerPkt = S.perPacket(1, cg::MemClass::App) +
                      S.perPacket(1, cg::MemClass::AppCache) +
                      S.perPacket(1, cg::MemClass::Stack);
    obs::summarizeRemarks(Observer.Remarks, L);
    Levels[R.Name] = L;
  }

  // PAC and SWC both claim to fire on L3-Switch; the summaries must have
  // picked those claims up from the remark streams.
  EXPECT_GT(Levels["+ PAC"].PacFired, 0u);
  EXPECT_GT(Levels["+ SWC"].SwcCached, 0u);

  obs::CrossCheckResult CC = obs::crossCheckTable1(
      Levels["+ -O1"], Levels["+ PAC"], Levels["+ PHR"], Levels["+ SWC"]);
  EXPECT_FALSE(CC.Findings.empty());
  for (const obs::CrossCheckFinding &F : CC.Findings)
    EXPECT_TRUE(F.Ok) << F.Check << ' ' << F.Levels << ": " << F.Detail;

  // The harness itself flags the inconsistency it exists for: a fired
  // claim whose measured rate went up instead of down.
  obs::LevelObs BadO1 = Levels["+ -O1"], BadPac = Levels["+ PAC"];
  BadPac.PktAccessesPerPkt = BadO1.PktAccessesPerPkt * 1.5;
  obs::CrossCheckResult Bad = obs::crossCheckTable1(
      BadO1, BadPac, Levels["+ PHR"], Levels["+ SWC"]);
  EXPECT_FALSE(Bad.ok());
}

} // namespace
