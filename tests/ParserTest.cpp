//===- tests/ParserTest.cpp - Baker parser unit tests ------------------------==//

#include "baker/Lexer.h"
#include "baker/Parser.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::baker;

namespace {

std::unique_ptr<Program> parse(const std::string &Src, bool ExpectOk = true) {
  DiagEngine Diags;
  Lexer L(Src, Diags);
  Parser P(L.lexAll(), Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  if (ExpectOk)
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  else
    EXPECT_TRUE(Diags.hasErrors());
  return Prog;
}

TEST(Parser, ProtocolDecl) {
  auto P = parse("protocol ether { dst : 48; src : 48; type : 16; "
                 "demux { 14 }; };");
  ASSERT_EQ(P->Protocols.size(), 1u);
  const ProtocolDecl &D = *P->Protocols[0];
  EXPECT_EQ(D.Name, "ether");
  ASSERT_EQ(D.Fields.size(), 3u);
  EXPECT_EQ(D.Fields[0].Name, "dst");
  EXPECT_EQ(D.Fields[0].Bits, 48u);
  EXPECT_NE(D.Demux, nullptr);
}

TEST(Parser, ProtocolRequiresDemux) {
  parse("protocol p { a : 8; };", /*ExpectOk=*/false);
}

TEST(Parser, MetadataDecl) {
  auto P = parse("metadata { flow : 32; color : 2; };");
  ASSERT_NE(P->Metadata, nullptr);
  ASSERT_EQ(P->Metadata->Fields.size(), 2u);
  EXPECT_EQ(P->Metadata->Fields[1].Name, "color");
  EXPECT_EQ(P->Metadata->Fields[1].Bits, 2u);
}

TEST(Parser, ModuleWithGlobalsAndChannel) {
  auto P = parse(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      u32 table[64] = { 1, 2, 3 };
      u16 scalar = 7;
      channel c : e;
      ppf f(e_pkt * ph) { channel_put(c, ph); }
      wire rx -> f;
      wire c -> f;
    }
  )");
  ASSERT_EQ(P->Globals.size(), 2u);
  EXPECT_TRUE(P->Globals[0]->IsArray);
  EXPECT_EQ(P->Globals[0]->Count, 64u);
  ASSERT_EQ(P->Globals[0]->Init.size(), 3u);
  EXPECT_EQ(P->Channels.size(), 1u);
  EXPECT_EQ(P->Wires.size(), 2u);
  ASSERT_EQ(P->Funcs.size(), 1u);
  EXPECT_TRUE(P->Funcs[0]->IsPpf);
}

TEST(Parser, PacketHandleDecl) {
  auto P = parse(R"(
    protocol a { x : 8; demux { 1 }; };
    protocol b { y : 8; demux { 1 }; };
    module m {
      ppf f(a_pkt * ph) {
        b_pkt * inner = packet_decap(ph);
        channel_put(tx, inner);
      }
      wire rx -> f;
    }
  )");
  const auto *Body = cast<BlockStmt>(P->Funcs[0]->Body.get());
  ASSERT_GE(Body->Body.size(), 1u);
  const auto *Decl = dyn_cast<VarDeclStmt>(Body->Body[0].get());
  ASSERT_NE(Decl, nullptr);
  EXPECT_TRUE(Decl->DeclTy.isPacket());
  EXPECT_EQ(Decl->DeclTy.protocol(), "b");
}

TEST(Parser, OperatorPrecedence) {
  auto P = parse(R"(
    module m { u32 g;
      u32 f(u32 a, u32 b) { return a + b * 2 == a << 1 | b ? 1 : 0; }
    }
  )");
  ASSERT_EQ(P->Funcs.size(), 1u);
  const auto *Body = cast<BlockStmt>(P->Funcs[0]->Body.get());
  const auto *Ret = dyn_cast<ReturnStmt>(Body->Body[0].get());
  ASSERT_NE(Ret, nullptr);
  EXPECT_EQ(Ret->Value->kind(), Expr::Kind::Cond);
}

TEST(Parser, CompoundAssignDesugars) {
  auto P = parse("module m { u32 g; u32 f() { g += 3; return g; } }");
  const auto *Body = cast<BlockStmt>(P->Funcs[0]->Body.get());
  const auto *ES = dyn_cast<ExprStmt>(Body->Body[0].get());
  ASSERT_NE(ES, nullptr);
  const auto *Assign = dyn_cast<AssignExpr>(ES->E.get());
  ASSERT_NE(Assign, nullptr);
  const auto *Sum = dyn_cast<BinaryExpr>(Assign->RHS.get());
  ASSERT_NE(Sum, nullptr);
  EXPECT_EQ(Sum->Op, BinOp::Add);
}

TEST(Parser, ControlFlowStatements) {
  auto P = parse(R"(
    module m {
      u32 f(u32 n) {
        u32 acc = 0;
        for (u32 i = 0; i < n; i = i + 1) {
          if (i == 3) { continue; }
          acc = acc + i;
          while (acc > 100) { acc = acc - 7; break; }
        }
        return acc;
      }
    }
  )");
  EXPECT_EQ(P->Funcs.size(), 1u);
}

TEST(Parser, CriticalSection) {
  auto P = parse(R"(
    module m {
      u32 g;
      u32 f() { critical (glock) { g = g + 1; } return g; }
    }
  )");
  const auto *Body = cast<BlockStmt>(P->Funcs[0]->Body.get());
  const auto *C = dyn_cast<CriticalStmt>(Body->Body[0].get());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->LockName, "glock");
}

TEST(Parser, MetaFieldAccess) {
  auto P = parse(R"(
    protocol e { x : 8; demux { 1 }; };
    metadata { color : 4; };
    module m {
      ppf f(e_pkt * ph) { ph->meta.color = 3; channel_put(tx, ph); }
      wire rx -> f;
    }
  )");
  const auto *Body = cast<BlockStmt>(P->Funcs[0]->Body.get());
  const auto *ES = cast<ExprStmt>(Body->Body[0].get());
  const auto *Assign = cast<AssignExpr>(ES->E.get());
  EXPECT_EQ(Assign->LHS->kind(), Expr::Kind::MetaField);
}

TEST(Parser, ErrorOnGarbage) { parse("protocol ;;;", /*ExpectOk=*/false); }

TEST(Parser, ErrorOnMissingSemicolon) {
  parse("module m { u32 f() { return 1 } }", /*ExpectOk=*/false);
}

TEST(Parser, FullPrograms) {
  parse(sl::tests::MiniForward);
  parse(sl::tests::MiniRouter);
}

} // namespace
