//===- tests/PktOptTest.cpp - SOAR / PAC / PHR / SWC tests --------------------==//

#include "interp/Bits.h"
#include "interp/Interp.h"
#include "ir/ASTLower.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "pktopt/Pac.h"
#include "pktopt/Phr.h"
#include "pktopt/Soar.h"
#include "pktopt/Swc.h"
#include "profile/Profiler.h"
#include "support/Rng.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::ir;

namespace {

const char *PacLoadsSrc = R"(
  protocol ether { dst:48; src:48; type:16; demux { 14 }; };
  module m {
    u64 sum;
    ppf f(ether_pkt * ph) {
      sum = ph->dst + ph->src + ph->type;
      channel_put(tx, ph);
    }
    wire rx -> f;
  }
)";

std::unique_ptr<Module> lower(const char *Src, bool O2 = true) {
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Src, Diags);
  EXPECT_NE(Unit, nullptr) << Diags.str();
  if (!Unit)
    return nullptr;
  auto M = lowerProgram(*Unit, Diags);
  if (O2)
    opt::runO2(*M);
  return M;
}

void expectVerifies(Module &M) {
  std::vector<std::string> Problems = verifyModule(M);
  std::string Joined;
  for (const auto &P : Problems)
    Joined += P + "\n";
  EXPECT_TRUE(Problems.empty()) << Joined;
}

size_t countOps(const Function &F, Op O) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instrs())
      N += I->op() == O;
  return N;
}

std::vector<Instr *> findOps(Function &F, Op O) {
  std::vector<Instr *> Out;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instrs())
      if (I->op() == O)
        Out.push_back(I.get());
  return Out;
}

/// Frame-level equivalence (ignores metadata, which PHR may localize).
void expectFrameEquivalent(Module &MA, Module &MB, uint64_t Seed,
                           unsigned NumPackets = 96) {
  interp::Interpreter IA(MA);
  interp::Interpreter IB(MB);
  Rng R(Seed);
  for (unsigned P = 0; P != NumPackets; ++P) {
    size_t Len = 34 + R.nextBelow(31);
    std::vector<uint8_t> Frame(Len);
    for (auto &Byte : Frame)
      Byte = static_cast<uint8_t>(R.next());
    if (R.chance(1, 2)) {
      Frame[12] = 0x08;
      Frame[13] = 0x00;
    }
    auto RA = IA.inject(Frame, static_cast<uint16_t>(R.nextBelow(4)));
    auto RB = IB.inject(Frame, static_cast<uint16_t>(R.nextBelow(4)));
    ASSERT_EQ(RA.Error, RB.Error) << RA.ErrorMsg << " / " << RB.ErrorMsg;
    ASSERT_EQ(RA.Tx.size(), RB.Tx.size()) << "packet " << P;
    for (size_t T = 0; T != RA.Tx.size(); ++T)
      EXPECT_EQ(RA.Tx[T].Frame, RB.Tx[T].Frame) << "packet " << P;
  }
  for (const auto &G : MA.globals())
    for (uint64_t I = 0; I != G->count(); ++I)
      EXPECT_EQ(IA.readGlobal(G->name(), I), IB.readGlobal(G->name(), I));
}

//===----------------------------------------------------------------------===//
// SOAR
//===----------------------------------------------------------------------===//

TEST(Soar, EntryHandleHasOffsetZero) {
  auto M = lower(PacLoadsSrc);
  pktopt::SoarResult R = pktopt::runSoar(*M);
  Function *F = M->findFunction("f");
  std::vector<Instr *> Loads = findOps(*F, Op::PktLoad);
  ASSERT_FALSE(Loads.empty());
  for (Instr *I : Loads) {
    EXPECT_EQ(I->StaticHdrOff, 0);
    EXPECT_EQ(I->StaticAlign, 8u);
  }
  EXPECT_GT(R.TotalAccesses, 0u);
  EXPECT_EQ(R.ResolvedAccesses, R.TotalAccesses);
}

TEST(Soar, OffsetFlowsThroughDecapAndChannel) {
  auto M = lower(sl::tests::MiniRouter);
  pktopt::runSoar(*M);
  // In `route`, the handle arrived over ip_cc after an ether decap:
  // offset 14, alignment gcd(8, 14) = 2.
  Function *Route = M->findFunction("route");
  ASSERT_NE(Route, nullptr);
  std::vector<Instr *> Loads = findOps(*Route, Op::PktLoad);
  ASSERT_FALSE(Loads.empty());
  for (Instr *I : Loads) {
    EXPECT_EQ(I->StaticHdrOff, 14);
    EXPECT_EQ(I->StaticAlign, 2u);
  }
}

TEST(Soar, VariableDecapGoesUnknownButKeepsAlignment) {
  auto M = lower(R"(
    protocol ether { dst:48; src:48; type:16; demux { 14 }; };
    protocol ipv4 { ver:4; hlen:4; tos:8; total_len:16; id:16; fl:16;
                    ttl:8; proto:8; checksum:16; src:32; dst:32;
                    demux { hlen << 2 }; };
    protocol tcp { sport:16; dport:16; seq:32; demux { 8 }; };
    module m {
      u32 g;
      ppf f(ether_pkt * ph) {
        ipv4_pkt * ip = packet_decap(ph);
        tcp_pkt * t = packet_decap(ip);
        g = t->sport;
        channel_put(tx, t);
      }
      wire rx -> f;
    }
  )");
  pktopt::runSoar(*M);
  Function *F = M->findFunction("f");
  bool SawUnknown = false;
  for (Instr *I : findOps(*F, Op::PktLoad)) {
    if (I->FieldName == "sport") {
      EXPECT_EQ(I->StaticHdrOff, Instr::UnknownOff);
      // ether(14) + ipv4(hlen<<2): 14 is 2-aligned, hlen<<2 is 4-aligned.
      EXPECT_EQ(I->StaticAlign, 2u);
      SawUnknown = true;
    }
  }
  EXPECT_TRUE(SawUnknown);
}

TEST(Soar, EncapYieldsNegativeOffset) {
  auto M = lower(R"(
    protocol inner { a : 32; demux { 4 }; };
    protocol shim { label : 32; demux { 4 }; };
    module m {
      ppf f(inner_pkt * ph) {
        shim_pkt * sp = packet_encap(ph);
        sp->label = 1;
        channel_put(tx, sp);
      }
      wire rx -> f;
    }
  )");
  pktopt::runSoar(*M);
  Function *F = M->findFunction("f");
  std::vector<Instr *> Stores = findOps(*F, Op::PktStore);
  ASSERT_EQ(Stores.size(), 1u);
  EXPECT_EQ(Stores[0]->StaticHdrOff, -4);
  std::vector<Instr *> Encaps = findOps(*F, Op::PktEncap);
  ASSERT_EQ(Encaps.size(), 1u);
  EXPECT_EQ(Encaps[0]->StaticInOff, 0);
  EXPECT_EQ(Encaps[0]->StaticHdrOff, -4);
}

TEST(Soar, ConflictingChannelOffsetsMeetToUnknown) {
  auto M = lower(R"(
    protocol a { x : 32; demux { 4 }; };
    protocol b { y : 64; demux { 8 }; };
    module m {
      channel c : a;
      u32 g;
      ppf entry(a_pkt * ph) {
        if (ph->x == 0) {
          channel_put(c, ph);           // offset 0
        } else {
          b_pkt * inner = packet_decap(ph);
          a_pkt * deeper = packet_decap(inner);
          channel_put(c, deeper);       // offset 12
        }
      }
      ppf sink(a_pkt * ph) {
        g = ph->x;
        channel_put(tx, ph);
      }
      wire rx -> entry;
      wire c -> sink;
    }
  )");
  ASSERT_NE(M, nullptr);
  pktopt::runSoar(*M);
  Function *Sink = M->findFunction("sink");
  std::vector<Instr *> Loads = findOps(*Sink, Op::PktLoad);
  ASSERT_FALSE(Loads.empty());
  EXPECT_EQ(Loads[0]->StaticHdrOff, Instr::UnknownOff);
}

//===----------------------------------------------------------------------===//
// PAC
//===----------------------------------------------------------------------===//

TEST(Pac, CombinesAdjacentLoads) {
  auto M = lower(PacLoadsSrc);
  Function *F = M->findFunction("f");
  EXPECT_EQ(countOps(*F, Op::PktLoad), 3u);
  pktopt::PacResult R = pktopt::runPac(*M);
  EXPECT_EQ(R.CombinedLoads, 3u);
  EXPECT_EQ(R.WideLoads, 1u);
  EXPECT_EQ(countOps(*F, Op::PktLoad), 0u);
  EXPECT_EQ(countOps(*F, Op::PktLoadWide), 1u);
  EXPECT_EQ(countOps(*F, Op::WideExtract), 3u);
  std::vector<Instr *> Wide = findOps(*F, Op::PktLoadWide);
  EXPECT_EQ(Wide[0]->ByteOff, 0u);
  EXPECT_EQ(Wide[0]->Words, 4u); // 112 bits -> 4 words.
  expectVerifies(*M);
}

TEST(Pac, CombinedLoadsPreserveBehavior) {
  auto MA = lower(PacLoadsSrc);
  auto MB = lower(PacLoadsSrc);
  pktopt::runPac(*MB);
  expectVerifies(*MB);
  expectFrameEquivalent(*MA, *MB, 99);
}

TEST(Pac, CombinesStoresFullCoverage) {
  const char *Src = R"(
    protocol ether { dst:48; src:48; type:16; demux { 14 }; };
    module m {
      u64 newmac;
      ppf f(ether_pkt * ph) {
        ph->dst = newmac;
        ph->src = 0x112233445566;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )";
  auto M = lower(Src);
  Function *F = M->findFunction("f");
  pktopt::PacResult R = pktopt::runPac(*M);
  EXPECT_EQ(R.CombinedStores, 2u);
  EXPECT_EQ(countOps(*F, Op::PktStore), 0u);
  EXPECT_EQ(countOps(*F, Op::PktStoreWide), 1u);
  // dst+src cover 96 bits exactly: full coverage, no RMW load.
  EXPECT_EQ(countOps(*F, Op::PktLoadWide), 0u);
  EXPECT_EQ(countOps(*F, Op::WideZero), 1u);
  expectVerifies(*M);

  auto MA = lower(Src);
  expectFrameEquivalent(*MA, *M, 5);
}

TEST(Pac, PartialStoreGroupUsesRmw) {
  const char *Src = R"(
    protocol ipv4 { ver:4; hlen:4; tos:8; total_len:16; id:16; fl:16;
                    ttl:8; proto:8; checksum:16; src:32; dst:32;
                    demux { hlen << 2 }; };
    module m {
      ppf f(ipv4_pkt * ph) {
        ph->ttl = ph->ttl - 1;
        ph->checksum = ph->checksum + 1;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )";
  auto M = lower(Src);
  Function *F = M->findFunction("f");
  pktopt::runPac(*M);
  // ttl(8) + checksum(16) do not cover the word (proto untouched): RMW.
  EXPECT_EQ(countOps(*F, Op::PktStoreWide), 1u);
  EXPECT_GE(countOps(*F, Op::PktLoadWide), 1u);
  EXPECT_EQ(countOps(*F, Op::WideZero), 0u);
  expectVerifies(*M);

  auto MA = lower(Src);
  expectFrameEquivalent(*MA, *M, 17);
}

TEST(Pac, DoesNotCombineAcrossConflictingStore) {
  auto M = lower(R"(
    protocol e { a:32; b:32; demux { 8 }; };
    module m {
      u32 g;
      ppf f(e_pkt * ph) {
        u32 x = ph->a;
        ph->b = 7;
        u32 y = ph->b;
        g = x + y;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Function *F = M->findFunction("f");
  pktopt::PacResult R = pktopt::runPac(*M);
  // The store between the loads is a barrier; nothing combines.
  EXPECT_EQ(R.WideLoads, 0u);
  EXPECT_EQ(countOps(*F, Op::PktLoad), 2u);
}

TEST(Pac, RespectsWidthLimit) {
  // Two accesses 128 bytes apart cannot merge into one DRAM access.
  auto M = lower(R"(
    protocol big { f0:32;
      p0:64; p1:64; p2:64; p3:64; p4:64; p5:64; p6:64; p7:64;
      p8:64; p9:64; pa:64; pb:64; pc:64; pd:64; pe:64; pf:64;
      f1:32; demux { 136 }; };
    module m {
      u32 g;
      ppf f(big_pkt * ph) {
        g = ph->f0 + ph->f1;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Function *F = M->findFunction("f");
  pktopt::PacResult R = pktopt::runPac(*M);
  EXPECT_EQ(R.WideLoads, 0u);
  EXPECT_EQ(countOps(*F, Op::PktLoad), 2u);
}

TEST(Pac, CombinesMetadataAccesses) {
  auto M = lower(R"(
    protocol e { x:8; demux { 1 }; };
    metadata { a : 16; b : 16; c : 32; };
    module m {
      u32 g;
      ppf f(e_pkt * ph) {
        ph->meta.a = 1;
        ph->meta.b = 2;
        ph->meta.c = 3;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Function *F = M->findFunction("f");
  pktopt::PacResult R = pktopt::runPac(*M);
  EXPECT_EQ(R.CombinedStores, 3u);
  std::vector<Instr *> Wide = findOps(*F, Op::PktStoreWide);
  ASSERT_EQ(Wide.size(), 1u);
  EXPECT_EQ(Wide[0]->Space, WideSpace::Meta);
  expectVerifies(*M);
}

TEST(Pac, RandomizedEquivalenceOnRouter) {
  auto MA = lower(sl::tests::MiniRouter);
  auto MB = lower(sl::tests::MiniRouter);
  pktopt::runPac(*MB);
  expectVerifies(*MB);
  interp::Interpreter Seed(*MA);
  expectFrameEquivalent(*MA, *MB, 2024, 128);
}

//===----------------------------------------------------------------------===//
// PHR (metadata localization)
//===----------------------------------------------------------------------===//

TEST(Phr, LocalizesSingleFunctionField) {
  auto M = lower(R"(
    protocol e { x:8; demux { 1 }; };
    metadata { scratchpad : 32; };
    module m {
      u32 g;
      ppf f(e_pkt * ph) {
        ph->meta.scratchpad = ph->x * 2;
        g = ph->meta.scratchpad + 1;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Function *F = M->findFunction("f");
  EXPECT_EQ(countOps(*F, Op::MetaStore), 1u);
  EXPECT_EQ(countOps(*F, Op::MetaLoad), 1u);
  unsigned N = pktopt::localizeMetadata(*M);
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(countOps(*F, Op::MetaStore), 0u);
  EXPECT_EQ(countOps(*F, Op::MetaLoad), 0u);
  opt::runScalarPipeline(*F);
  expectVerifies(*M);
}

TEST(Phr, KeepsExternAndCrossFunctionFields) {
  auto M = lower(R"(
    protocol e { x:8; demux { 1 }; };
    metadata { flow : 32; };
    module m {
      channel c : e;
      u32 g;
      ppf a(e_pkt * ph) {
        ph->meta.flow = ph->x;     // Written here...
        channel_put(c, ph);
      }
      ppf b(e_pkt * ph) {
        g = ph->meta.flow;          // ...read in another aggregate.
        g = g + ph->meta.rx_port;   // rx_port is extern (written by Rx).
        channel_put(tx, ph);
      }
      wire rx -> a;
      wire c -> b;
    }
  )");
  unsigned N = pktopt::localizeMetadata(*M);
  EXPECT_EQ(N, 0u);
  Function *A = M->findFunction("a");
  Function *B = M->findFunction("b");
  EXPECT_EQ(countOps(*A, Op::MetaStore), 1u);
  EXPECT_EQ(countOps(*B, Op::MetaLoad), 2u);
}

TEST(Phr, LocalizationPreservesFrames) {
  const char *Src = R"(
    protocol e { x:8; y:8; demux { 2 }; };
    metadata { tmp : 16; };
    module m {
      u32 g;
      ppf f(e_pkt * ph) {
        ph->meta.tmp = ph->x + 1;
        if (ph->meta.tmp > 10) { ph->y = 0xFF; }
        g = g + ph->meta.tmp;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )";
  auto MA = lower(Src);
  auto MB = lower(Src);
  EXPECT_EQ(pktopt::localizeMetadata(*MB), 1u);
  opt::runO1(*MB);
  expectVerifies(*MB);
  expectFrameEquivalent(*MA, *MB, 31);
}

//===----------------------------------------------------------------------===//
// SWC
//===----------------------------------------------------------------------===//

TEST(Swc, SelectsHotReadMostlyGlobal) {
  auto M = lower(sl::tests::MiniRouter);
  profile::Profiler P(*M);
  P.interp().writeGlobal("route_hi", 0xA, 7);
  P.interp().writeGlobal("route_hi", 0x5, 3);

  profile::Trace T;
  Rng R(3);
  for (unsigned I = 0; I != 200; ++I) {
    std::vector<uint8_t> F(64, 0);
    F[12] = 0x08;
    interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
    uint32_t Dst = R.chance(1, 2) ? 0xA1234567 : 0x51234567;
    interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, Dst);
    T.push_back({F, 0});
  }
  profile::ProfileData Prof = P.run(T);

  pktopt::SwcResult SR = pktopt::runSwc(*M, Prof);
  ASSERT_EQ(SR.Cached.size(), 1u);
  EXPECT_EQ(SR.Cached[0]->name(), "route_hi");
  EXPECT_TRUE(SR.Cached[0]->Cached);
  // No stores in the trace: the check interval takes its maximum.
  EXPECT_EQ(SR.Cached[0]->CacheCheckInterval, 4096u);
}

TEST(Swc, RejectsWriteHeavyGlobal) {
  // `drops` is written per packet (a counter) and must not be cached.
  auto M = lower(sl::tests::MiniRouter);
  profile::Profiler P(*M);
  profile::Trace T;
  for (unsigned I = 0; I != 50; ++I) {
    std::vector<uint8_t> F(64, 0); // Non-IP -> drop path increments drops.
    T.push_back({F, 0});
  }
  profile::ProfileData Prof = P.run(T);
  pktopt::SwcResult SR = pktopt::runSwc(*M, Prof);
  for (ir::Global *G : SR.Cached)
    EXPECT_NE(G->name(), "drops");
}

TEST(Swc, CheckIntervalFollowsEquationTwo) {
  auto M = lower(R"(
    protocol e { x:8; demux { 1 }; };
    module m {
      u32 table[4];
      u32 g;
      ppf f(e_pkt * ph) {
        g = table[ph->x & 3];
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  profile::Profiler P(*M);
  profile::Trace T;
  for (unsigned I = 0; I != 1000; ++I)
    T.push_back({{static_cast<uint8_t>(I & 3)}, 0});
  profile::ProfileData Prof = P.run(T);

  // The table is only written from the control plane; Equation 2 uses the
  // operator's expected store rate. r_store = 0.1, r_load = 1.0,
  // r_error = 1e-3 -> check rate 100/packet -> interval clamps to 1.
  pktopt::SwcParams Params;
  Params.ErrorRate = 1e-3;
  Params.ControlPlaneStoreRate = 0.1;
  pktopt::SwcResult SR = pktopt::runSwc(*M, Prof, Params);
  bool Found = false;
  for (ir::Global *G : SR.Cached) {
    if (G->name() != "table")
      continue;
    Found = true;
    EXPECT_EQ(G->CacheCheckInterval, 1u);
  }
  EXPECT_TRUE(Found);

  // A gentler store estimate lengthens the interval per the formula:
  // 0.0001 * 1.0 / 1e-3 = 0.1/packet -> every 10 packets.
  for (const auto &G : M->globals())
    G->Cached = false;
  Params.ControlPlaneStoreRate = 0.0001;
  pktopt::SwcResult SR2 = pktopt::runSwc(*M, Prof, Params);
  ASSERT_EQ(SR2.Cached.size(), 1u);
  EXPECT_EQ(SR2.Cached[0]->CacheCheckInterval, 10u);
}

TEST(Swc, RefusesDataPlaneWrittenTables) {
  // A table the PPF itself writes must never be cached: the writing ME's
  // own delayed-update cache would serve stale data it just overwrote.
  auto M = lower(R"(
    protocol e { x:8; demux { 1 }; };
    module m {
      u32 table[4];
      u32 g;
      ppf f(e_pkt * ph) {
        g = table[ph->x & 3];
        if (ph->x == 0) { table[1] = g + 1; }
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  profile::Profiler P(*M);
  profile::Trace T;
  for (unsigned I = 0; I != 200; ++I)
    T.push_back({{static_cast<uint8_t>(I & 3)}, 0});
  profile::ProfileData Prof = P.run(T);
  pktopt::SwcParams Params;
  Params.MaxStoresPerPacket = 1.0; // Even with a permissive rate limit...
  pktopt::SwcResult SR = pktopt::runSwc(*M, Prof, Params);
  for (ir::Global *G : SR.Cached)
    EXPECT_NE(G->name(), "table") << "...the structural check must veto";
}

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

TEST(Profiler, CountsCallsInstrsAndChannels) {
  auto M = lower(sl::tests::MiniRouter, /*O2=*/false);
  profile::Profiler P(*M);
  P.interp().writeGlobal("route_hi", 0xA, 7);

  profile::Trace T;
  for (unsigned I = 0; I != 10; ++I) {
    std::vector<uint8_t> F(64, 0);
    F[12] = 0x08;
    interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
    interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, 0xA0000001);
    T.push_back({F, 0});
  }
  // Plus 5 ARP packets that are dropped in classify.
  for (unsigned I = 0; I != 5; ++I)
    T.push_back({std::vector<uint8_t>(64, 0), 0});

  profile::ProfileData Prof = P.run(T);
  EXPECT_EQ(Prof.Packets, 15u);

  Function *Classify = M->findFunction("classify");
  Function *Route = M->findFunction("route");
  EXPECT_DOUBLE_EQ(Prof.callFrequency(Classify), 1.0);
  EXPECT_DOUBLE_EQ(Prof.callFrequency(Route), 10.0 / 15.0);
  EXPECT_GT(Prof.instrsPerPacket(Classify), 0.0);
  EXPECT_GT(Prof.memPerPacket(Route), 0.0);
  // ip_cc (id 1) saw the 10 IP packets; tx (id 0) the 10 forwarded.
  EXPECT_EQ(Prof.ChannelPuts.at(1), 10u);
  EXPECT_EQ(Prof.ChannelPuts.at(0), 10u);
}

TEST(Profiler, EstimatesHitRate) {
  auto M = lower(R"(
    protocol e { x:8; demux { 1 }; };
    module m {
      u32 t[256];
      u32 g;
      ppf f(e_pkt * ph) { g = t[ph->x]; channel_put(tx, ph); }
      wire rx -> f;
    }
  )");
  profile::Profiler P(*M);
  profile::Trace Hot, Cold;
  Rng R(11);
  for (unsigned I = 0; I != 400; ++I) {
    Hot.push_back({{static_cast<uint8_t>(R.nextBelow(4))}, 0});
    Cold.push_back({{static_cast<uint8_t>(R.nextBelow(256))}, 0});
  }
  profile::ProfileData ProfHot = P.run(Hot);
  ir::Global *G = M->findGlobal("t");
  EXPECT_GT(ProfHot.Globals.at(G).EstHitRate, 0.9);

  profile::Profiler P2(*M);
  profile::ProfileData ProfCold = P2.run(Cold);
  EXPECT_LT(ProfCold.Globals.at(G).EstHitRate, 0.3);
}

} // namespace
