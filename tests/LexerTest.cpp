//===- tests/LexerTest.cpp - Baker lexer unit tests -------------------------==//

#include "baker/Lexer.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::baker;

namespace {

std::vector<Token> lex(const std::string &Src) {
  DiagEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Toks;
}

TEST(Lexer, EmptyInput) {
  std::vector<Token> T = lex("");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].is(TokKind::Eof));
}

TEST(Lexer, Keywords) {
  std::vector<Token> T = lex("protocol module ppf channel wire demux");
  ASSERT_EQ(T.size(), 7u);
  EXPECT_TRUE(T[0].is(TokKind::KwProtocol));
  EXPECT_TRUE(T[1].is(TokKind::KwModule));
  EXPECT_TRUE(T[2].is(TokKind::KwPpf));
  EXPECT_TRUE(T[3].is(TokKind::KwChannel));
  EXPECT_TRUE(T[4].is(TokKind::KwWire));
  EXPECT_TRUE(T[5].is(TokKind::KwDemux));
}

TEST(Lexer, Identifiers) {
  std::vector<Token> T = lex("foo _bar x42 ether_pkt");
  ASSERT_EQ(T.size(), 5u);
  EXPECT_EQ(T[0].Text, "foo");
  EXPECT_EQ(T[1].Text, "_bar");
  EXPECT_EQ(T[2].Text, "x42");
  EXPECT_EQ(T[3].Text, "ether_pkt");
}

TEST(Lexer, DecimalLiterals) {
  std::vector<Token> T = lex("0 7 4294967295 18446744073709551615");
  ASSERT_EQ(T.size(), 5u);
  EXPECT_EQ(T[0].IntVal, 0u);
  EXPECT_EQ(T[1].IntVal, 7u);
  EXPECT_EQ(T[2].IntVal, 4294967295u);
  EXPECT_EQ(T[3].IntVal, 18446744073709551615ull);
}

TEST(Lexer, HexLiterals) {
  std::vector<Token> T = lex("0x0 0x0800 0xDEADbeef");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].IntVal, 0u);
  EXPECT_EQ(T[1].IntVal, 0x800u);
  EXPECT_EQ(T[2].IntVal, 0xDEADBEEFu);
}

TEST(Lexer, OperatorsMultiChar) {
  std::vector<Token> T = lex("-> << >> <= >= == != && || += -=");
  ASSERT_EQ(T.size(), 12u);
  EXPECT_TRUE(T[0].is(TokKind::Arrow));
  EXPECT_TRUE(T[1].is(TokKind::Shl));
  EXPECT_TRUE(T[2].is(TokKind::Shr));
  EXPECT_TRUE(T[3].is(TokKind::Le));
  EXPECT_TRUE(T[4].is(TokKind::Ge));
  EXPECT_TRUE(T[5].is(TokKind::EqEq));
  EXPECT_TRUE(T[6].is(TokKind::NotEq));
  EXPECT_TRUE(T[7].is(TokKind::AmpAmp));
  EXPECT_TRUE(T[8].is(TokKind::PipePipe));
  EXPECT_TRUE(T[9].is(TokKind::PlusAssign));
  EXPECT_TRUE(T[10].is(TokKind::MinusAssign));
}

TEST(Lexer, OperatorAdjacency) {
  // '<<' must win over '<' '<'; '->' over '-' '>'.
  std::vector<Token> T = lex("a<<b a<b a->b a-b");
  ASSERT_EQ(T.size(), 13u);
  EXPECT_TRUE(T[1].is(TokKind::Shl));
  EXPECT_TRUE(T[4].is(TokKind::Lt));
  EXPECT_TRUE(T[7].is(TokKind::Arrow));
  EXPECT_TRUE(T[10].is(TokKind::Minus));
}

TEST(Lexer, LineComments) {
  std::vector<Token> T = lex("a // comment to end\nb");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[1].Loc.Line, 2u);
}

TEST(Lexer, BlockComments) {
  std::vector<Token> T = lex("a /* x\ny */ b");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[1].Text, "b");
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  DiagEngine Diags;
  Lexer L("a /* never closed", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnexpectedCharacterIsError) {
  DiagEngine Diags;
  Lexer L("a @ b", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, SourceLocations) {
  std::vector<Token> T = lex("ab\n  cd");
  ASSERT_GE(T.size(), 2u);
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Col, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Col, 3u);
}

} // namespace
