//===- tests/MapRtsTest.cpp - aggregation and runtime-layout unit tests ------==//

#include "interp/Bits.h"
#include "ir/ASTLower.h"
#include "ir/Clone.h"
#include "ir/Printer.h"
#include "map/Aggregation.h"
#include "profile/Profiler.h"
#include "rts/MemoryMap.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;

namespace {

std::unique_ptr<ir::Module> lower(const char *Src) {
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Src, Diags);
  EXPECT_NE(Unit, nullptr) << Diags.str();
  return ir::lowerProgram(*Unit, Diags);
}

profile::ProfileData routerProfile(ir::Module &M) {
  profile::Profiler P(M);
  P.interp().writeGlobal("route_hi", 0xA, 7);
  profile::Trace T;
  for (unsigned I = 0; I != 64; ++I) {
    std::vector<uint8_t> F(64, 0);
    F[12] = 0x08;
    interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
    interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, 0xA0000001);
    T.push_back({F, 0});
  }
  return P.run(T);
}

//===----------------------------------------------------------------------===//
// Aggregation
//===----------------------------------------------------------------------===//

TEST(Aggregation, MergesHotChannelAndReplicates) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  P.NumMEs = 4;
  map::MappingPlan Plan = map::formAggregates(*M, Prof, P);

  // classify and route end up together (ip_cc is hot), replicated 4x.
  unsigned MeAggs = 0;
  for (const auto &A : Plan.Aggregates) {
    if (A.OnXScale)
      continue;
    ++MeAggs;
    EXPECT_EQ(A.Copies, 4u);
    EXPECT_EQ(A.Funcs.size(), 2u);
  }
  EXPECT_EQ(MeAggs, 1u);
  EXPECT_GT(Plan.PredictedThroughput, 0.0);
}

TEST(Aggregation, ApplyPlanConvertsInternalPuts) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  P.NumMEs = 2;
  map::MappingPlan Plan = map::formAggregates(*M, Prof, P);
  unsigned Converted = map::applyPlan(*M, Plan);
  EXPECT_EQ(Converted, 1u); // The ip_cc put became a call.
  // The call's callee is `route`.
  ir::Function *Classify = M->findFunction("classify");
  bool SawCall = false;
  for (const auto &BB : Classify->blocks())
    for (const auto &I : BB->instrs())
      if (I->op() == ir::Op::Call)
        SawCall = (I->Callee->name() == "route");
  EXPECT_TRUE(SawCall);
}

TEST(Aggregation, NoMergeFlagKeepsPipeline) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  P.NumMEs = 4;
  P.AllowMerging = false;
  map::MappingPlan Plan = map::formAggregates(*M, Prof, P);
  unsigned MeAggs = 0;
  for (const auto &A : Plan.Aggregates)
    if (!A.OnXScale)
      ++MeAggs;
  EXPECT_EQ(MeAggs, 2u) << "forced pipeline keeps both stages";
}

TEST(Aggregation, GreedyFillFavorsTheBottleneck) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  P.NumMEs = 5;
  P.AllowMerging = false;
  map::MappingPlan Plan = map::formAggregates(*M, Prof, P);
  // 5 MEs over 2 stages: the costlier stage gets the extra MEs.
  unsigned Total = 0;
  const map::Aggregate *Costly = nullptr;
  for (const auto &A : Plan.Aggregates) {
    if (A.OnXScale)
      continue;
    Total += A.Copies;
    if (!Costly || A.CostPerPacket > Costly->CostPerPacket)
      Costly = &A;
  }
  EXPECT_EQ(Total, 5u);
  ASSERT_NE(Costly, nullptr);
  EXPECT_GE(Costly->Copies, 3u);
}

TEST(Aggregation, InputChannelsComputed) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;
  P.NumMEs = 2;
  P.AllowMerging = false;
  map::MappingPlan Plan = map::formAggregates(*M, Prof, P);
  bool SawRx = false, SawChan = false;
  for (const auto &A : Plan.Aggregates)
    for (unsigned C : A.InputChans) {
      SawRx |= (C == map::RxChanId);
      SawChan |= (C == 1);
    }
  EXPECT_TRUE(SawRx);
  EXPECT_TRUE(SawChan);
}

//===----------------------------------------------------------------------===//
// Memory map
//===----------------------------------------------------------------------===//

TEST(MemoryMap, LayoutIsDisjointAndAligned) {
  auto M = lower(sl::tests::MiniRouter);
  rts::MemoryMap Map = rts::buildMemoryMap(*M);

  // Globals: non-overlapping, word-aligned, below the metadata pool.
  struct Range {
    uint32_t Lo, Hi;
  };
  std::vector<Range> Rs;
  for (const auto &[G, Base] : Map.GlobalBase) {
    EXPECT_EQ(Base % 4, 0u);
    uint32_t Size =
        static_cast<uint32_t>(G->count() * rts::MemoryMap::elemWords(G) * 4);
    EXPECT_LE(Base + Size, Map.MetaPoolBase);
    Rs.push_back({Base, Base + Size});
  }
  for (size_t A = 0; A != Rs.size(); ++A)
    for (size_t B = A + 1; B != Rs.size(); ++B)
      EXPECT_TRUE(Rs[A].Hi <= Rs[B].Lo || Rs[B].Hi <= Rs[A].Lo)
          << "global ranges overlap";

  EXPECT_GT(Map.MetaBlockBytes, 12u);
  EXPECT_GT(Map.NumRings, 2u); // rx, tx, ip_cc.
  EXPECT_GT(Map.StackSramBase,
            Map.MetaPoolBase + Map.NumPktHandles * Map.MetaBlockBytes - 1);
}

TEST(MemoryMap, CachePartitionsShareTheCam) {
  auto M = lower(sl::tests::MiniRouter);
  // Mark two globals cached.
  M->findGlobal("route_hi")->Cached = true;
  M->findGlobal("route_hi")->CacheCheckInterval = 64;
  M->findGlobal("drops")->Cached = true;
  rts::MemoryMap Map = rts::buildMemoryMap(*M);
  ASSERT_EQ(Map.Caches.size(), 2u);
  EXPECT_EQ(Map.Caches[0].CamEntries, 8u);
  EXPECT_EQ(Map.Caches[1].CamEntries, 8u);
  EXPECT_EQ(Map.Caches[0].CamBase, 0u);
  EXPECT_EQ(Map.Caches[1].CamBase, 8u);
  EXPECT_NE(Map.Caches[0].VersionAddr, Map.Caches[1].VersionAddr);
  // Lines live above the per-thread stacks.
  EXPECT_GE(Map.Caches[0].LmBase, Map.LmCacheBase);
}

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

TEST(Clone, FunctionCloneIsBehaviorallyIdentical) {
  auto M = lower(sl::tests::MiniForward);
  ir::Function *F = M->findFunction("fwd");
  ir::Function *Copy = ir::cloneFunction(*M, *F, "fwd.copy");
  EXPECT_EQ(Copy->numArgs(), F->numArgs());
  EXPECT_EQ(Copy->instrCount(), F->instrCount());
  EXPECT_EQ(Copy->numBlocks(), F->numBlocks());
  // Printed bodies match modulo names.
  std::string A = ir::printFunction(*F);
  std::string B = ir::printFunction(*Copy);
  EXPECT_EQ(A.size(), B.size() - std::string(".copy").size());
}

} // namespace
