//===- tests/OptTest.cpp - scalar optimization pass tests --------------------==//

#include "interp/Bits.h"
#include "interp/Interp.h"
#include "ir/ASTLower.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "support/Rng.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::ir;

namespace {

std::unique_ptr<Module> lower(const char *Src) {
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Src, Diags);
  EXPECT_NE(Unit, nullptr) << Diags.str();
  if (!Unit)
    return nullptr;
  return lowerProgram(*Unit, Diags);
}

void expectVerifies(Module &M) {
  std::vector<std::string> Problems = verifyModule(M);
  std::string Joined;
  for (const auto &P : Problems)
    Joined += P + "\n";
  EXPECT_TRUE(Problems.empty()) << Joined;
}

size_t countOps(const Function &F, Op O) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instrs())
      N += I->op() == O;
  return N;
}

/// Runs the same random frame batch through two modules and compares all
/// observable outputs (tx frames + metadata + globals).
void expectEquivalent(Module &MA, Module &MB, uint64_t Seed,
                      unsigned NumPackets = 64) {
  interp::Interpreter IA(MA);
  interp::Interpreter IB(MB);
  Rng R(Seed);
  for (unsigned P = 0; P != NumPackets; ++P) {
    size_t Len = 34 + R.nextBelow(31);
    std::vector<uint8_t> Frame(Len);
    for (auto &Byte : Frame)
      Byte = static_cast<uint8_t>(R.next());
    // Keep ethertype sometimes-IP so both router paths get traffic.
    if (R.chance(1, 2)) {
      Frame[12] = 0x08;
      Frame[13] = 0x00;
    }
    uint16_t Port = static_cast<uint16_t>(R.nextBelow(4));
    interp::RunResult RA = IA.inject(Frame, Port);
    interp::RunResult RB = IB.inject(Frame, Port);
    ASSERT_EQ(RA.Error, RB.Error) << RA.ErrorMsg << " vs " << RB.ErrorMsg;
    ASSERT_EQ(RA.Tx.size(), RB.Tx.size()) << "packet " << P;
    for (size_t T = 0; T != RA.Tx.size(); ++T) {
      EXPECT_EQ(RA.Tx[T].Frame, RB.Tx[T].Frame) << "packet " << P;
      EXPECT_EQ(RA.Tx[T].Meta, RB.Tx[T].Meta) << "packet " << P;
    }
  }
  for (const auto &G : MA.globals())
    for (uint64_t I = 0; I != G->count(); ++I)
      EXPECT_EQ(IA.readGlobal(G->name(), I), IB.readGlobal(G->name(), I))
          << G->name() << "[" << I << "]";
}

TEST(Opt, Mem2RegRemovesAllAllocas) {
  auto M = lower(sl::tests::MiniRouter);
  for (const auto &F : M->functions()) {
    opt::simplifyCfg(*F);
    opt::mem2reg(*F);
    EXPECT_EQ(countOps(*F, Op::Alloca), 0u) << F->name();
    EXPECT_EQ(countOps(*F, Op::Load), 0u) << F->name();
    EXPECT_EQ(countOps(*F, Op::Store), 0u) << F->name();
  }
  expectVerifies(*M);
}

TEST(Opt, Mem2RegPreservesBehavior) {
  auto MA = lower(sl::tests::MiniRouter);
  auto MB = lower(sl::tests::MiniRouter);
  interp::Interpreter Pre(*MA); // Set identical tables in both.
  for (const auto &F : MB->functions()) {
    opt::simplifyCfg(*F);
    opt::mem2reg(*F);
  }
  expectVerifies(*MB);
  interp::Interpreter IA(*MA);
  interp::Interpreter IB(*MB);
  IA.writeGlobal("route_hi", 0xA, 3);
  IB.writeGlobal("route_hi", 0xA, 3);
  std::vector<uint8_t> F(64, 0);
  F[12] = 0x08; // ethertype ipv4
  interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);       // hlen
  interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, 0xA0000000); // dst
  auto RA = IA.inject(F, 0);
  auto RB = IB.inject(F, 0);
  ASSERT_FALSE(RA.Error) << RA.ErrorMsg;
  ASSERT_FALSE(RB.Error) << RB.ErrorMsg;
  ASSERT_EQ(RA.Tx.size(), 1u);
  ASSERT_EQ(RB.Tx.size(), 1u);
  EXPECT_EQ(RA.Tx[0].Frame, RB.Tx[0].Frame);
}

TEST(Opt, ConstantFoldFoldsArithmetic) {
  auto M = lower(R"(
    module m {
      u32 g;
      u32 f() { return (3 + 4) * 2 - (10 / 5); }
    }
  )");
  Function *F = M->findFunction("f");
  opt::runScalarPipeline(*F);
  // The function body should be a single `ret 12`.
  ASSERT_EQ(F->numBlocks(), 1u);
  Instr *T = F->entry()->terminator();
  ASSERT_NE(T, nullptr);
  ASSERT_EQ(T->op(), Op::Ret);
  const auto *C = dyn_cast<ConstInt>(T->operand(0));
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->value(), 12u);
}

TEST(Opt, ConstantFoldDoesNotFoldDivByZero) {
  auto M = lower(R"(
    module m {
      u32 g;
      u32 f(u32 x) { return 7 / (x - x); }
    }
  )");
  Function *F = M->findFunction("f");
  opt::runScalarPipeline(*F);
  // x - x folds to 0, but 7/0 must survive as a (trapping) udiv.
  EXPECT_EQ(countOps(*F, Op::UDiv), 1u);
}

TEST(Opt, IdentitySimplifications) {
  auto M = lower(R"(
    module m {
      u32 f(u32 x) { return ((x + 0) * 1 | 0) ^ 0; }
    }
  )");
  Function *F = M->findFunction("f");
  opt::runScalarPipeline(*F);
  // Everything reduces to `ret x`.
  ASSERT_EQ(F->numBlocks(), 1u);
  Instr *T = F->entry()->terminator();
  ASSERT_EQ(T->op(), Op::Ret);
  EXPECT_EQ(T->operand(0), F->arg(0));
}

TEST(Opt, LocalCSECollapsesRepeatedPktLoads) {
  auto M = lower(R"(
    protocol e { a : 16; b : 16; demux { 4 }; };
    module m {
      u32 g;
      ppf f(e_pkt * ph) {
        g = ph->a + ph->a + ph->a;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Function *F = M->findFunction("f");
  opt::simplifyCfg(*F);
  opt::mem2reg(*F);
  size_t Before = countOps(*F, Op::PktLoad);
  EXPECT_EQ(Before, 3u);
  opt::localCSE(*F);
  opt::deadCodeElim(*F);
  EXPECT_EQ(countOps(*F, Op::PktLoad), 1u);
  expectVerifies(*M);
}

TEST(Opt, CSEDoesNotCrossStores) {
  auto M = lower(R"(
    protocol e { a : 16; b : 16; demux { 4 }; };
    module m {
      u32 g;
      ppf f(e_pkt * ph) {
        u32 x = ph->a;
        ph->a = 5;
        u32 y = ph->a;
        g = x + y;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  Function *F = M->findFunction("f");
  opt::simplifyCfg(*F);
  opt::mem2reg(*F);
  opt::localCSE(*F);
  opt::deadCodeElim(*F);
  // Both loads must remain: the store in between invalidates.
  EXPECT_EQ(countOps(*F, Op::PktLoad), 2u);
}

TEST(Opt, DCERemovesDeadComputation) {
  auto M = lower(R"(
    module m {
      u32 f(u32 x) {
        u32 dead = x * 12345;
        u32 dead2 = dead + 99;
        return x;
      }
    }
  )");
  Function *F = M->findFunction("f");
  opt::runScalarPipeline(*F);
  EXPECT_EQ(countOps(*F, Op::Mul), 0u);
  EXPECT_EQ(countOps(*F, Op::Add), 0u);
}

TEST(Opt, InlinerExpandsHelpers) {
  auto M = lower(R"(
    protocol e { a : 16; b : 16; demux { 4 }; };
    module m {
      u32 g;
      u32 twice(u32 x) { return x + x; }
      u32 quad(u32 x) { return twice(twice(x)); }
      ppf f(e_pkt * ph) {
        g = quad(ph->a);
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )");
  opt::inlineCalls(*M);
  Function *F = M->findFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(countOps(*F, Op::Call), 0u);
  // Fully inlined helpers are removed from the module.
  EXPECT_EQ(M->findFunction("twice"), nullptr);
  EXPECT_EQ(M->findFunction("quad"), nullptr);
  expectVerifies(*M);
}

TEST(Opt, InlinerPreservesBehavior) {
  const char *Src = R"(
    protocol e { a : 16; b : 16; demux { 4 }; };
    module m {
      u32 g;
      u32 clamp(u32 x, u32 hi) { if (x > hi) { return hi; } return x; }
      ppf f(e_pkt * ph) {
        g = clamp(ph->a, 1000) + clamp(ph->b, 50);
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )";
  auto MA = lower(Src);
  auto MB = lower(Src);
  opt::runO2(*MB);
  expectVerifies(*MB);
  expectEquivalent(*MA, *MB, /*Seed=*/42);
}

struct EquivCase {
  const char *Name;
  const char *Src;
};

class PipelineEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(PipelineEquivalence, O1MatchesBase) {
  auto MA = lower(GetParam().Src);
  auto MB = lower(GetParam().Src);
  ASSERT_NE(MA, nullptr);
  ASSERT_NE(MB, nullptr);
  opt::runO1(*MB);
  expectVerifies(*MB);
  expectEquivalent(*MA, *MB, 7);
}

TEST_P(PipelineEquivalence, O2MatchesBase) {
  auto MA = lower(GetParam().Src);
  auto MB = lower(GetParam().Src);
  opt::runO2(*MB);
  expectVerifies(*MB);
  expectEquivalent(*MA, *MB, 1234);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, PipelineEquivalence,
    ::testing::Values(EquivCase{"forward", sl::tests::MiniForward},
                      EquivCase{"router", sl::tests::MiniRouter}),
    [](const ::testing::TestParamInfo<EquivCase> &Info) {
      return Info.param.Name;
    });

} // namespace
