//===- tests/CgTest.cpp - code generator unit tests ---------------------------==//

#include "cg/Lowering.h"
#include "cg/MEIR.h"
#include "cg/RegAlloc.h"
#include "cg/StackLayout.h"
#include "ir/ASTLower.h"
#include "map/Aggregation.h"
#include "opt/Passes.h"
#include "pktopt/Soar.h"
#include "support/Rng.h"

#include <gtest/gtest.h>
#include <set>

using namespace sl;
using namespace sl::cg;

namespace {

//===----------------------------------------------------------------------===//
// MEIR basics
//===----------------------------------------------------------------------===//

TEST(MEIR, SlotAccounting) {
  MInstr Small;
  Small.Op = MOp::MovImm;
  Small.Imm = 100;
  EXPECT_EQ(Small.slots(), 1u);

  MInstr Big;
  Big.Op = MOp::MovImm;
  Big.Imm = 0x12345678;
  EXPECT_EQ(Big.slots(), 2u);

  MInstr AluBig;
  AluBig.Op = MOp::Add;
  AluBig.SrcA = 0;
  AluBig.SrcB = -1;
  AluBig.Imm = 1 << 20;
  EXPECT_EQ(AluBig.slots(), 2u);

  MInstr Mem;
  Mem.Op = MOp::MemRead;
  Mem.Imm = 0x123456; // Address displacement is not an ALU immediate.
  EXPECT_EQ(Mem.slots(), 1u);
}

TEST(MEIR, FlattenResolvesTargets) {
  MCode C;
  C.Name = "t";
  MBlock B0{"b0", {}}, B1{"b1", {}}, B2{"b2", {}};
  MInstr Br;
  Br.Op = MOp::BrCond;
  Br.Cond = MCond::Eq;
  Br.SrcA = 0;
  Br.SrcB = -1;
  Br.Target = 2;
  B0.Instrs.push_back(Br);
  MInstr B;
  B.Op = MOp::Br;
  B.Target = 0;
  B1.Instrs.push_back(B);
  MInstr H;
  H.Op = MOp::Halt;
  B2.Instrs.push_back(H);
  C.Blocks = {B0, B1, B2};

  FlatCode F = flatten(C);
  ASSERT_EQ(F.Code.size(), 3u);
  EXPECT_EQ(F.Code[0].Target, 2); // B2 starts at index 2.
  EXPECT_EQ(F.Code[1].Target, 0);
  EXPECT_EQ(F.CodeSlots, 3u);
}

TEST(MEIR, PrinterShowsStructure) {
  MCode C;
  C.Name = "demo";
  MBlock B{"entry", {}};
  MInstr I;
  I.Op = MOp::Add;
  I.Dst = 3;
  I.SrcA = 17; // Bank B register 1.
  I.SrcB = 2;
  B.Instrs.push_back(I);
  C.Blocks = {B};
  std::string S = printMCode(C);
  EXPECT_NE(S.find("demo"), std::string::npos);
  EXPECT_NE(S.find("add"), std::string::npos);
  EXPECT_NE(S.find("b1"), std::string::npos); // Physical name.
}

//===----------------------------------------------------------------------===//
// Register allocation properties
//===----------------------------------------------------------------------===//

/// Builds a random straight-line MEIR program with many live values and
/// checks the allocator's postconditions.
LoweredAggregate randomProgram(uint64_t Seed, unsigned NumOps) {
  Rng R(Seed);
  LoweredAggregate Agg;
  MCode &C = Agg.Code;
  C.Name = "rand";
  MBlock B{"entry", {}};
  std::vector<int> Defined;
  int Next = 0;
  auto def = [&]() {
    Defined.push_back(Next);
    return Next++;
  };
  // Seed values.
  for (int K = 0; K != 6; ++K) {
    MInstr I;
    I.Op = MOp::MovImm;
    I.Dst = def();
    I.Imm = static_cast<int64_t>(R.nextBelow(1000));
    B.Instrs.push_back(I);
  }
  for (unsigned K = 0; K != NumOps; ++K) {
    MInstr I;
    I.Op = R.chance(1, 4) ? MOp::Xor : MOp::Add;
    I.SrcA = Defined[R.nextBelow(Defined.size())];
    if (R.chance(2, 3)) {
      I.SrcB = Defined[R.nextBelow(Defined.size())];
    } else {
      I.SrcB = -1;
      I.Imm = static_cast<int64_t>(R.nextBelow(100));
    }
    I.Dst = def();
    B.Instrs.push_back(I);
  }
  // Keep a random subset alive until the end.
  for (unsigned K = 0; K != 8; ++K) {
    MInstr I;
    I.Op = MOp::GprToXfer;
    I.Xfer = K;
    I.SrcA = Defined[R.nextBelow(Defined.size())];
    B.Instrs.push_back(I);
  }
  MInstr H;
  H.Op = MOp::Halt;
  B.Instrs.push_back(H);
  C.Blocks = {B};
  C.NumVRegs = static_cast<unsigned>(Next);
  return Agg;
}

class RegAllocProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegAllocProperty, PhysicalAndBankLegal) {
  LoweredAggregate Agg = randomProgram(GetParam(), 120);
  allocateRegisters(Agg);
  for (const MBlock &B : Agg.Code.Blocks) {
    for (const MInstr &I : B.Instrs) {
      if (I.Dst >= 0) {
        EXPECT_LT(I.Dst, 32);
      }
      if (I.SrcA >= 0) {
        EXPECT_LT(I.SrcA, 32);
      }
      if (I.SrcB >= 0) {
        EXPECT_LT(I.SrcB, 32);
      }
      // The dual-bank rule: two register sources in different banks.
      bool TwoRegSources = I.SrcA >= 0 && I.SrcB >= 0;
      bool IsAlu = I.Op == MOp::Add || I.Op == MOp::Xor;
      if (TwoRegSources && IsAlu) {
        EXPECT_NE(I.SrcA / 16, I.SrcB / 16)
            << "bank conflict: " << I.SrcA << " vs " << I.SrcB;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegAllocProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(RegAlloc, SpillsWhenPressureExceedsFile) {
  // 48 simultaneously-live values cannot fit 32 registers.
  Rng R(7);
  LoweredAggregate Agg;
  MCode &C = Agg.Code;
  MBlock B{"entry", {}};
  int Next = 0;
  for (int K = 0; K != 48; ++K) {
    MInstr I;
    I.Op = MOp::MovImm;
    I.Dst = Next++;
    I.Imm = K;
    B.Instrs.push_back(I);
  }
  for (int K = 0; K != 48; ++K) {
    MInstr I;
    I.Op = MOp::GprToXfer;
    I.Xfer = static_cast<unsigned>(K % 16);
    I.SrcA = K;
    B.Instrs.push_back(I);
  }
  MInstr H;
  H.Op = MOp::Halt;
  B.Instrs.push_back(H);
  C.Blocks = {B};
  C.NumVRegs = static_cast<unsigned>(Next);

  RegAllocStats S = allocateRegisters(Agg);
  EXPECT_GT(S.SpilledRegs, 0u);
  // Spills became stack slots.
  EXPECT_GE(Agg.Slots.size(), S.SpilledRegs);
}

//===----------------------------------------------------------------------===//
// Stack layout
//===----------------------------------------------------------------------===//

TEST(StackLayout, PackedFitsLocalMemory) {
  LoweredAggregate Agg;
  MBlock B{"entry", {}};
  for (int K = 0; K != 10; ++K) {
    Agg.Slots.push_back({1, static_cast<unsigned>(K % 3), false});
    MInstr W;
    W.Op = MOp::LmWrite;
    W.Class = MemClass::Stack;
    W.SrcA = 0;
    W.StackSlot = K;
    B.Instrs.push_back(W);
  }
  MInstr H;
  H.Op = MOp::Halt;
  B.Instrs.push_back(H);
  Agg.Code.Blocks = {B};

  ir::Module Empty;
  rts::MemoryMap Map = rts::buildMemoryMap(Empty);
  StackLayoutStats S = layoutStack(Agg, Map, /*StackOpt=*/true);
  EXPECT_EQ(S.TotalWords, 10u);
  EXPECT_EQ(S.SramWords, 0u);
  EXPECT_EQ(S.SramAccesses, 0u);
  // All accesses rewritten to thread-relative local memory.
  for (const MInstr &I : Agg.Code.Blocks[0].Instrs)
    if (I.Op == MOp::LmWrite) {
      EXPECT_TRUE(I.ThreadStack);
      EXPECT_LT(I.Imm, 48);
      EXPECT_EQ(I.StackSlot, -1);
    }
}

TEST(StackLayout, MinFrameModeOverflowsToSram) {
  LoweredAggregate Agg;
  MBlock B{"entry", {}};
  // 5 frames x 2 slots: packed = 10 words; 16-word frames = 80 words.
  for (int K = 0; K != 10; ++K) {
    Agg.Slots.push_back({1, static_cast<unsigned>(K / 2), false});
    MInstr W;
    W.Op = MOp::LmRead;
    W.Class = MemClass::Stack;
    W.Dst = 0;
    W.StackSlot = K;
    B.Instrs.push_back(W);
  }
  MInstr H;
  H.Op = MOp::Halt;
  B.Instrs.push_back(H);
  Agg.Code.Blocks = {B};

  ir::Module Empty;
  rts::MemoryMap Map = rts::buildMemoryMap(Empty);
  StackLayoutStats S = layoutStack(Agg, Map, /*StackOpt=*/false);
  EXPECT_EQ(S.TotalWords, 80u);
  EXPECT_GT(S.SramWords, 0u);
  EXPECT_GT(S.SramAccesses, 0u);
  // Overflow accesses became SRAM memory operations.
  bool SawSram = false;
  for (const MInstr &I : Agg.Code.Blocks[0].Instrs)
    SawSram |= (I.Op == MOp::MemRead && I.Space == MSpace::Sram &&
                I.Class == MemClass::Stack);
  EXPECT_TRUE(SawSram);
}

//===----------------------------------------------------------------------===//
// Lowering invariants
//===----------------------------------------------------------------------===//

TEST(Lowering, CodeSizeLadderShrinks) {
  // Optimized expansions must be substantially smaller than BASE.
  const char *Src = R"(
    protocol ether { dst:48; src:48; type:16; demux { 14 }; };
    module m {
      u32 g;
      ppf f(ether_pkt * ph) {
        g = ph->dst ^ ph->src ^ ph->type;
        ph->type = 0x0800;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )";
  auto sizeAt = [&](bool Inline, bool Soar, bool Phr) {
    DiagEngine D;
    auto Unit = baker::parseAndAnalyze(Src, D);
    auto M = ir::lowerProgram(*Unit, D);
    opt::runO2(*M);
    if (Soar)
      pktopt::runSoar(*M);
    rts::MemoryMap Map = rts::buildMemoryMap(*M);
    CgConfig Cfg;
    Cfg.InlineExpansion = Inline;
    Cfg.UseSoar = Soar;
    Cfg.Phr = Phr;
    std::vector<RootInput> Roots{{M->EntryPpf, rts::RxRing}};
    LoweredAggregate Low = lowerAggregate(*M, Map, Cfg, Roots, "f");
    allocateRegisters(Low);
    layoutStack(Low, Map, true);
    return flatten(Low.Code).CodeSlots;
  };

  unsigned Base = sizeAt(false, false, false);
  unsigned O2 = sizeAt(true, false, false);
  unsigned SoarSz = sizeAt(true, true, false);
  unsigned PhrSz = sizeAt(true, true, true);
  EXPECT_LT(O2, Base) << "inline expansion must beat the generic routine";
  EXPECT_LT(SoarSz, O2) << "static offsets must shorten access code";
  EXPECT_LE(PhrSz, SoarSz + 8) << "PHR must not bloat the code";
}

TEST(Lowering, EveryBlockTerminates) {
  DiagEngine D;
  auto Unit = baker::parseAndAnalyze(R"(
    protocol e { a:32; b:32; demux { 8 }; };
    module m {
      u32 g;
      ppf f(e_pkt * ph) {
        u32 x = ph->a / (ph->b + 1);
        g = x % 7;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )",
                                      D);
  ASSERT_NE(Unit, nullptr) << D.str();
  auto M = ir::lowerProgram(*Unit, D);
  opt::runO2(*M);
  rts::MemoryMap Map = rts::buildMemoryMap(*M);
  CgConfig Cfg;
  Cfg.InlineExpansion = true;
  std::vector<RootInput> Roots{{M->EntryPpf, rts::RxRing}};
  LoweredAggregate Low = lowerAggregate(*M, Map, Cfg, Roots, "f");
  for (const MBlock &B : Low.Code.Blocks) {
    ASSERT_FALSE(B.Instrs.empty()) << B.Name;
    MOp Last = B.Instrs.back().Op;
    EXPECT_TRUE(Last == MOp::Br || Last == MOp::Halt) << B.Name;
  }
}

} // namespace
