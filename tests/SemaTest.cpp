//===- tests/SemaTest.cpp - Baker semantic analysis tests --------------------==//

#include "baker/Frontend.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::baker;

namespace {

std::unique_ptr<CompiledUnit> analyzeOk(const std::string &Src) {
  DiagEngine Diags;
  auto Unit = parseAndAnalyze(Src, Diags);
  EXPECT_NE(Unit, nullptr) << Diags.str();
  return Unit;
}

void analyzeErr(const std::string &Src, const std::string &Needle) {
  DiagEngine Diags;
  auto Unit = parseAndAnalyze(Src, Diags);
  EXPECT_EQ(Unit, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  if (!Needle.empty()) {
    EXPECT_NE(Diags.str().find(Needle), std::string::npos) << Diags.str();
  }
}

TEST(Sema, ProtocolFieldOffsets) {
  auto U = analyzeOk(sl::tests::MiniForward);
  const ProtocolDecl *E = U->Sema.Protocols.at("ether");
  EXPECT_EQ(E->Fields[0].BitOff, 0u);
  EXPECT_EQ(E->Fields[1].BitOff, 48u);
  EXPECT_EQ(E->Fields[2].BitOff, 96u);
  EXPECT_EQ(E->HeaderBits, 112u);
  EXPECT_TRUE(E->DemuxIsConst);
  EXPECT_EQ(E->DemuxConstBytes, 14u);
}

TEST(Sema, VariableDemuxIsNotConst) {
  auto U = analyzeOk(sl::tests::MiniRouter);
  const ProtocolDecl *V4 = U->Sema.Protocols.at("ipv4");
  EXPECT_FALSE(V4->DemuxIsConst);
  EXPECT_EQ(V4->HeaderBits, 160u);
}

TEST(Sema, MetadataLayoutIncludesRxPort) {
  auto U = analyzeOk(sl::tests::MiniForward);
  ASSERT_EQ(U->Sema.MetaFields.size(), 2u);
  EXPECT_EQ(U->Sema.MetaFields[0].Name, "rx_port");
  EXPECT_EQ(U->Sema.MetaFields[0].BitOff, 0u);
  EXPECT_EQ(U->Sema.MetaFields[1].Name, "outp");
  EXPECT_EQ(U->Sema.MetaFields[1].BitOff, 16u);
  EXPECT_EQ(U->Sema.MetaBits, 32u);
}

TEST(Sema, WiringResolved) {
  auto U = analyzeOk(sl::tests::MiniRouter);
  ASSERT_NE(U->Sema.EntryPpf, nullptr);
  EXPECT_EQ(U->Sema.EntryPpf->Name, "classify");
  ASSERT_EQ(U->Sema.Channels.size(), 1u);
  EXPECT_EQ(U->Sema.Channels[0]->Name, "ip_cc");
  EXPECT_EQ(U->Sema.Channels[0]->DestPpf, "route");
  EXPECT_EQ(U->Sema.Channels[0]->Id, 1u);
}

TEST(Sema, PktFieldTypesAndOffsets) {
  auto U = analyzeOk(sl::tests::MiniForward);
  // counter = counter + 1 type-checks as u32; field offsets were filled.
  const FuncDecl *F = U->Sema.Funcs.at("fwd");
  EXPECT_TRUE(F->IsPpf);
}

TEST(Sema, ErrorUndeclaredVariable) {
  analyzeErr(R"(
    module m { u32 f() { return nope; } }
  )",
             "undeclared identifier");
}

TEST(Sema, ErrorUnknownChannel) {
  analyzeErr(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      ppf f(e_pkt * ph) { channel_put(ghost, ph); }
      wire rx -> f;
    }
  )",
             "unknown channel");
}

TEST(Sema, ErrorChannelProtocolMismatch) {
  analyzeErr(R"(
    protocol a { x : 8; demux { 1 }; };
    protocol b { y : 8; demux { 1 }; };
    module m {
      channel c : a;
      ppf f(b_pkt * ph) { channel_put(tx, ph); }
      wire rx -> f;
      wire c -> f;
    }
  )",
             "expects");
}

TEST(Sema, ErrorWireToMissingPpf) {
  analyzeErr(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      ppf f(e_pkt * ph) { channel_put(tx, ph); }
      wire rx -> nothere;
    }
  )",
             "not a PPF");
}

TEST(Sema, ErrorMissingRxWire) {
  analyzeErr(R"(
    protocol e { x : 8; demux { 1 }; };
    module m { ppf f(e_pkt * ph) { channel_put(tx, ph); } }
  )",
             "wire rx");
}

TEST(Sema, ErrorUnknownProtocolField) {
  analyzeErr(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      ppf f(e_pkt * ph) { ph->ghost = 1; channel_put(tx, ph); }
      wire rx -> f;
    }
  )",
             "no field");
}

TEST(Sema, ErrorPpfReturnsValue) {
  analyzeErr(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      ppf f(e_pkt * ph) { return 3; }
      wire rx -> f;
    }
  )",
             "");
}

TEST(Sema, ErrorBreakOutsideLoop) {
  analyzeErr("module m { u32 f() { break; return 0; } }", "outside");
}

TEST(Sema, ErrorEncapVariableSizeProtocol) {
  analyzeErr(R"(
    protocol v { len : 8; demux { len }; };
    protocol e { x : 8; demux { 1 }; };
    module m {
      ppf f(e_pkt * ph) {
        v_pkt * outer = packet_encap(ph);
        channel_put(tx, outer);
      }
      wire rx -> f;
    }
  )",
             "constant-size");
}

TEST(Sema, ErrorPacketHandleWithoutInit) {
  analyzeErr(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      ppf f(e_pkt * ph) {
        e_pkt * other = 5;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )",
             "");
}

TEST(Sema, ErrorCallPpfDirectly) {
  analyzeErr(R"(
    protocol e { x : 8; demux { 1 }; };
    module m {
      ppf g(e_pkt * ph) { channel_put(tx, ph); }
      ppf f(e_pkt * ph) { g(ph); }
      wire rx -> f;
    }
  )",
             "cannot be called");
}

TEST(Sema, LocksGetStableIds) {
  auto U = analyzeOk(R"(
    module m {
      u32 a; u32 b;
      u32 f() {
        critical (l1) { a = a + 1; }
        critical (l2) { b = b + 1; }
        critical (l1) { a = a + 2; }
        return a + b;
      }
    }
  )");
  EXPECT_EQ(U->Sema.Locks.size(), 2u);
  EXPECT_EQ(U->Sema.Locks.at("l1"), 0u);
  EXPECT_EQ(U->Sema.Locks.at("l2"), 1u);
}

TEST(Sema, FullProgramsAnalyze) {
  analyzeOk(sl::tests::MiniForward);
  analyzeOk(sl::tests::MiniRouter);
}

} // namespace
