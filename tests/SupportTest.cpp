//===- tests/SupportTest.cpp - support library unit tests --------------------==//

#include "support/BitUtils.h"
#include "support/Diagnostics.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>
#include <set>
#include <sstream>

using namespace sl;

namespace {

TEST(BitUtils, MaskLow) {
  EXPECT_EQ(maskLow(0), 0u);
  EXPECT_EQ(maskLow(1), 1u);
  EXPECT_EQ(maskLow(16), 0xFFFFu);
  EXPECT_EQ(maskLow(64), ~uint64_t(0));
}

TEST(BitUtils, AlignTo) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(9, 4), 12u);
  EXPECT_TRUE(isAligned(64, 64));
  EXPECT_FALSE(isAligned(65, 2));
}

TEST(BitUtils, AlignmentOf) {
  EXPECT_EQ(alignmentOf(0), 8u);
  EXPECT_EQ(alignmentOf(14), 2u);
  EXPECT_EQ(alignmentOf(12), 4u);
  EXPECT_EQ(alignmentOf(16), 8u);
  EXPECT_EQ(alignmentOf(7), 1u);
}

TEST(BitUtils, DivideCeil) {
  EXPECT_EQ(divideCeil(0, 4), 0u);
  EXPECT_EQ(divideCeil(1, 4), 1u);
  EXPECT_EQ(divideCeil(4, 4), 1u);
  EXPECT_EQ(divideCeil(5, 4), 2u);
}

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatString("empty"), "empty");
  // Long output exceeds any small internal buffer.
  std::string Long = formatString("%0200d", 5);
  EXPECT_EQ(Long.size(), 200u);
}

TEST(StringUtils, SplitTrimJoin) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(trimString("  x y \t"), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(joinStrings({"a", "b"}, "::"), "a::b");
  EXPECT_TRUE(startsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(startsWith("pre", "prefix"));
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(1, 2), "careful with %s", "this");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 4), "bad %d", 42);
  D.note(SourceLoc(3, 5), "see here");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  std::string S = D.str();
  EXPECT_NE(S.find("1:2: warning: careful with this"), std::string::npos);
  EXPECT_NE(S.find("3:4: error: bad 42"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
}

TEST(Json, EscapeQuotesAndBackslash) {
  EXPECT_EQ(support::jsonEscape("plain"), "plain");
  EXPECT_EQ(support::jsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(support::jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(support::jsonEscape("C:\\path\\\"q\""), "C:\\\\path\\\\\\\"q\\\"");
}

TEST(Json, EscapeControlChars) {
  EXPECT_EQ(support::jsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(support::jsonEscape("cr\rtab\t"), "cr\\rtab\\t");
  // Other control characters become \u00XX escapes.
  EXPECT_EQ(support::jsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(support::jsonEscape(std::string_view("\x1f", 1)), "\\u001f");
  std::string WithNul("a\0b", 3);
  EXPECT_EQ(support::jsonEscape(WithNul), "a\\u0000b");
}

TEST(Json, NonAsciiPassesThrough) {
  // UTF-8 multibyte sequences are emitted verbatim (valid JSON as long
  // as the stream is UTF-8, which ours is).
  std::string Utf8 = "caf\xc3\xa9 \xe2\x82\xac";
  EXPECT_EQ(support::jsonEscape(Utf8), Utf8);
  // High bytes are not mistaken for control characters.
  std::string High("\x80\xff", 2);
  EXPECT_EQ(support::jsonEscape(High), High);
}

TEST(Json, WriterEscapesStringsInPlace) {
  std::ostringstream OS;
  {
    support::JsonWriter W(OS, /*Pretty=*/false);
    W.beginObject();
    W.field("name", "a\"b\nc");
    W.key("list");
    W.beginArray();
    W.value("x\ty");
    W.value(uint64_t(7));
    W.endArray();
    W.endObject();
  }
  std::string S = OS.str();
  EXPECT_NE(S.find("\"a\\\"b\\nc\""), std::string::npos);
  EXPECT_NE(S.find("\"x\\ty\""), std::string::npos);
  EXPECT_NE(S.find("7"), std::string::npos);
  // The raw control characters must not leak into the output.
  EXPECT_EQ(S.find('\n'), std::string::npos);
  EXPECT_EQ(S.find('\t'), std::string::npos);
}

TEST(Rng, DeterministicAndUniformish) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  for (int I = 0; I != 10; ++I)
    Differs |= (B.next() != C.next());
  EXPECT_TRUE(Differs);

  Rng R(7);
  std::set<uint64_t> Seen;
  unsigned Counts[8] = {};
  for (int I = 0; I != 8000; ++I)
    ++Counts[R.nextBelow(8)];
  for (unsigned K = 0; K != 8; ++K)
    EXPECT_NEAR(double(Counts[K]), 1000.0, 250.0);

  for (int I = 0; I != 100; ++I) {
    uint64_t V = R.nextInRange(10, 20);
    EXPECT_GE(V, 10u);
    EXPECT_LE(V, 20u);
  }
}

} // namespace
