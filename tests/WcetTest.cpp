//===- tests/WcetTest.cpp - worst-case execution time analysis ---------------==//

#include "apps/Apps.h"
#include "cg/Wcet.h"
#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::cg;

namespace {

std::unique_ptr<driver::CompiledApp> compileApp(const apps::AppBundle &App,
                                                driver::OptLevel L) {
  driver::CompileOptions Opts;
  Opts.Level = L;
  Opts.Map.NumMEs = 2;
  Opts.TxMetaFields = App.TxMetaFields;
  DiagEngine Diags;
  profile::Trace T = App.makeTrace(1, 128);
  auto C = driver::compile(App.Source, T, App.Tables, Opts, Diags);
  EXPECT_NE(C, nullptr) << Diags.str();
  return C;
}

TEST(Wcet, BoundsAreFiniteAndPositive) {
  for (const apps::AppBundle &App : apps::allApps()) {
    auto C = compileApp(App, driver::OptLevel::Swc);
    ASSERT_NE(C, nullptr);
    for (const auto &Bin : C->Images) {
      if (Bin.OnXScale)
        continue;
      EXPECT_GT(Bin.Wcet.CyclesPerPacket, 0.0) << App.Name;
      EXPECT_LT(Bin.Wcet.CyclesPerPacket, 1e7) << App.Name;
    }
  }
}

TEST(Wcet, OptimizationTightensTheBound) {
  // The whole point of the ladder: the worst case must improve too
  // (guaranteed line rate, not just average throughput).
  apps::AppBundle App = apps::l3switch();
  auto Base = compileApp(App, driver::OptLevel::Base);
  auto Best = compileApp(App, driver::OptLevel::Swc);
  ASSERT_NE(Base, nullptr);
  ASSERT_NE(Best, nullptr);
  double WBase = 0, WBest = 0;
  for (const auto &Bin : Base->Images)
    if (!Bin.OnXScale)
      WBase = std::max(WBase, Bin.Wcet.CyclesPerPacket);
  for (const auto &Bin : Best->Images)
    if (!Bin.OnXScale)
      WBest = std::max(WBest, Bin.Wcet.CyclesPerPacket);
  EXPECT_LT(WBest, WBase);
}

TEST(Wcet, BoundDominatesObservedLatency) {
  // Run the simulator and verify the WCET bound is not violated by the
  // observed average (a weak but meaningful soundness check: the bound
  // must sit above the per-packet average cost with headroom).
  apps::AppBundle App = apps::mpls();
  auto C = compileApp(App, driver::OptLevel::Swc);
  ASSERT_NE(C, nullptr);
  ixp::ChipParams Chip;
  auto Sim = driver::makeSimulator(*C, Chip);
  profile::Trace Traffic = App.makeTrace(3, 256);
  Sim->setTraffic([&Traffic](uint64_t I) -> const ixp::SimPacket * {
    static thread_local ixp::SimPacket P;
    P.Frame = Traffic[I % Traffic.size()].Frame;
    P.Port = Traffic[I % Traffic.size()].Port;
    return &P;
  });
  ixp::SimStats S = Sim->run(300'000);
  ASSERT_GT(S.TxPackets, 0u);
  double AvgInstr = double(S.Instrs) / double(S.RxInjected);
  double Wcet = 0;
  for (const auto &Bin : C->Images)
    if (!Bin.OnXScale)
      Wcet = std::max(Wcet, Bin.Wcet.CyclesPerPacket);
  EXPECT_GT(Wcet, AvgInstr) << "worst case must exceed the average";
}

TEST(Wcet, LoopBoundScalesTheBound) {
  // A program with a loop: doubling the assumed bound must increase WCET.
  const char *Src = R"(
    protocol e { x:8; demux { 1 }; };
    module m {
      u32 t[64];
      u32 g;
      ppf f(e_pkt * ph) {
        u32 s = 0;
        for (u32 i = 0; i < 64; i = i + 1) { s = s + t[i]; }
        g = s;
        channel_put(tx, ph);
      }
      wire rx -> f;
    }
  )";
  driver::CompileOptions Opts;
  Opts.Level = driver::OptLevel::O2;
  Opts.Map.NumMEs = 1;
  DiagEngine Diags;
  profile::Trace T;
  for (unsigned I = 0; I != 8; ++I)
    T.push_back({{1}, 0});
  auto C = driver::compile(Src, T, {}, Opts, Diags);
  ASSERT_NE(C, nullptr) << Diags.str();

  ixp::ChipParams Chip;
  WcetParams P8, P64;
  P8.DefaultLoopBound = 8;
  P64.DefaultLoopBound = 64;
  WcetResult R8 = analyzeWcet(C->Images[0].Code, Chip, P8);
  WcetResult R64 = analyzeWcet(C->Images[0].Code, Chip, P64);
  EXPECT_GT(R8.Loops, 0u);
  EXPECT_GT(R64.CyclesPerPacket, R8.CyclesPerPacket * 4);
}

} // namespace
