//===- tests/ChannelTest.cpp - channel specialization unit tests --------------==//
//
// Covers the next-neighbor ring path end to end: simulator-level NN ring
// semantics (backpressure, drain, no scratch-controller traffic),
// configureRing's adjacency validation, the placement pass's channel
// decisions (lowering, downgrade reasons, determinism), and the per-kind
// channel costs derived from ChipParams.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "apps/Apps.h"
#include "cg/MEIR.h"
#include "driver/Feedback.h"
#include "interp/Bits.h"
#include "ir/ASTLower.h"
#include "ixp/Simulator.h"
#include "map/CostModel.h"
#include "map/Placement.h"
#include "rts/MemoryMap.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::cg;
using namespace sl::ixp;

namespace {

/// Hand-assembler (same shape as SimulatorTest's).
struct Asm {
  MCode C;
  MBlock *Cur = nullptr;

  Asm() { C.Name = "test"; }
  int block(const std::string &N) {
    C.Blocks.push_back(MBlock{N, {}});
    Cur = &C.Blocks.back();
    return static_cast<int>(C.Blocks.size() - 1);
  }
  MInstr &emit(MOp Op) {
    Cur->Instrs.push_back(MInstr{});
    Cur->Instrs.back().Op = Op;
    return Cur->Instrs.back();
  }
  MInstr &movi(int Dst, int64_t V) {
    MInstr &I = emit(MOp::MovImm);
    I.Dst = Dst;
    I.Imm = V;
    return I;
  }
  MInstr &halt() { return emit(MOp::Halt); }
};

rts::MemoryMap channelMap() {
  static ir::Module Empty;
  rts::MemoryMap Map = rts::buildMemoryMap(Empty);
  Map.NumRings = 3; // rx, tx, one channel ring (index 2).
  return Map;
}

/// Producer ME program: put \p Count copies of the value 7 into ring 2,
/// then halt.
cg::FlatCode producer(int64_t Count) {
  Asm A;
  A.block("entry");
  A.movi(0, 7);
  A.movi(1, Count);
  A.block("loop");
  {
    MInstr &I = A.emit(MOp::RingPut);
    I.Class = MemClass::PktRing;
    I.SrcA = 0;
    I.Ring = 2;
  }
  {
    MInstr &I = A.emit(MOp::Add);
    I.Dst = 1;
    I.SrcA = 1;
    I.SrcB = -1;
    I.Imm = -1;
  }
  {
    MInstr &I = A.emit(MOp::BrCond);
    I.Cond = MCond::Ne;
    I.SrcA = 1;
    I.SrcB = -1;
    I.Target = 1;
  }
  A.halt();
  return flatten(A.C);
}

/// Consumer ME program: spin-get until \p Count values arrived from
/// ring 2, then halt.
cg::FlatCode consumer(int64_t Count) {
  Asm A;
  A.block("entry");
  A.movi(1, Count);
  A.block("get");
  {
    MInstr &I = A.emit(MOp::RingGet);
    I.Class = MemClass::PktRing;
    I.Dst = 2;
    I.Ring = 2;
  }
  {
    MInstr &I = A.emit(MOp::BrCond); // Empty get: poll again.
    I.Cond = MCond::Eq;
    I.SrcA = 2;
    I.SrcB = -1;
    I.Target = 1;
  }
  {
    MInstr &I = A.emit(MOp::Add);
    I.Dst = 1;
    I.SrcA = 1;
    I.SrcB = -1;
    I.Imm = -1;
  }
  {
    MInstr &I = A.emit(MOp::BrCond);
    I.Cond = MCond::Ne;
    I.SrcA = 1;
    I.SrcB = -1;
    I.Target = 1;
  }
  A.halt();
  return flatten(A.C);
}

RingConfig nnConfig(int ProducerME, int ConsumerME, unsigned Capacity = 0) {
  RingConfig C;
  C.Impl = RingImpl::NextNeighbor;
  C.Capacity = Capacity;
  C.Name = "nn_test";
  C.ProducerME = ProducerME;
  C.ConsumerME = ConsumerME;
  return C;
}

//===----------------------------------------------------------------------===//
// Simulator: NN ring semantics
//===----------------------------------------------------------------------===//

TEST(NNRing, BackpressureFillsToNNCapacity) {
  // Put more than the NN register file holds with nobody consuming: the
  // ring fills to exactly NNRingWords and the excess is counted as
  // full-ring backpressure.
  ChipParams P;
  P.ThreadsPerME = 1;
  rts::MemoryMap Map = channelMap();
  Simulator Sim(P, Map);
  ASSERT_TRUE(Sim.loadAggregate(producer(int64_t(P.NNRingWords) + 12), {}, 1));
  ASSERT_TRUE(Sim.configureRing(2, nnConfig(0, 1)));
  Sim.run(20'000);

  SimTelemetry T = Sim.telemetry();
  ASSERT_GT(T.Rings.size(), 2u);
  const RingTelemetry &R = T.Rings[2];
  EXPECT_EQ(R.Impl, RingImpl::NextNeighbor);
  EXPECT_EQ(R.Capacity, uint64_t(P.NNRingWords));
  EXPECT_EQ(R.Name, "nn_test");
  EXPECT_EQ(R.Enqueues, uint64_t(P.NNRingWords));
  EXPECT_EQ(R.MaxDepth, uint64_t(P.NNRingWords));
  EXPECT_EQ(R.FullStalls, 12u);
  EXPECT_EQ(R.Dequeues, 0u);
  EXPECT_FALSE(Sim.drained()) << "a full NN ring is not quiescent";
}

TEST(NNRing, TransferDrainsWithoutScratchTraffic) {
  // Producer and consumer in lockstep: every value arrives, the NN ring
  // drains back to empty, and — the point of the NN path — the scratch
  // controller never sees a single access.
  ChipParams P;
  P.ThreadsPerME = 1;
  rts::MemoryMap Map = channelMap();
  Simulator Sim(P, Map);
  ASSERT_TRUE(Sim.loadAggregate(producer(100), {}, 1));
  ASSERT_TRUE(Sim.loadAggregate(consumer(100), {}, 1));
  ASSERT_TRUE(Sim.configureRing(2, nnConfig(0, 1)));
  Sim.run(20'000);

  SimTelemetry T = Sim.telemetry();
  const RingTelemetry &R = T.Rings[2];
  EXPECT_EQ(R.Enqueues, 100u);
  EXPECT_EQ(R.Dequeues, 100u);
  EXPECT_EQ(R.FullStalls, 0u);
  EXPECT_GT(R.WaitCycles, 0u) << "NN ops still cost their access latency";
  EXPECT_TRUE(Sim.drained()) << "a drained NN ring is quiescent";
  EXPECT_EQ(T.Units[0].Accesses, 0u)
      << "NN ring ops must never touch the scratch controller";
}

TEST(NNRing, ConfigureRingValidatesAdjacency) {
  ChipParams P;
  rts::MemoryMap Map = channelMap();
  Simulator Sim(P, Map);

  EXPECT_TRUE(Sim.configureRing(2, nnConfig(0, 1)));
  // NN registers only reach the physically next ME.
  EXPECT_FALSE(Sim.configureRing(2, nnConfig(0, 2)));
  EXPECT_FALSE(Sim.configureRing(2, nnConfig(1, 0)));
  EXPECT_FALSE(Sim.configureRing(2, nnConfig(-1, 0)));
  EXPECT_FALSE(Sim.configureRing(2, nnConfig(int(P.ProgrammableMEs) - 1,
                                             int(P.ProgrammableMEs))));
  // Capacity is bounded by the NN register file.
  EXPECT_FALSE(Sim.configureRing(2, nnConfig(0, 1, P.NNRingWords + 1)));
  EXPECT_TRUE(Sim.configureRing(2, nnConfig(0, 1, P.NNRingWords)));
  // Out-of-range ring index.
  EXPECT_FALSE(Sim.configureRing(99, nnConfig(0, 1)));
  // Scratch rings carry no adjacency requirement.
  RingConfig SC;
  SC.Impl = RingImpl::Scratch;
  EXPECT_TRUE(Sim.configureRing(2, SC));
}

//===----------------------------------------------------------------------===//
// Mapper: placement + channel decisions
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> lower(const char *Src) {
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Src, Diags);
  EXPECT_NE(Unit, nullptr) << Diags.str();
  return ir::lowerProgram(*Unit, Diags);
}

profile::ProfileData routerProfile(ir::Module &M) {
  profile::Profiler P(M);
  P.interp().writeGlobal("route_hi", 0xA, 7);
  profile::Trace T;
  for (unsigned I = 0; I != 64; ++I) {
    std::vector<uint8_t> F(64, 0);
    F[12] = 0x08;
    interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
    interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, 0xA0000001);
    T.push_back({F, 0});
  }
  return P.run(T);
}

map::MappingPlan placedPlan(ir::Module &M, const map::MapParams &P) {
  profile::ProfileData Prof = routerProfile(M);
  map::StaticCostModel CM(Prof, P);
  map::MappingPlan Plan = map::formAggregates(M, Prof, P, CM);
  map::placeAggregates(M, Prof, P, CM, Plan);
  return Plan;
}

TEST(Placement, PipelinedSingleCopyStagesGetNNChannels) {
  auto M = lower(sl::tests::MiniRouter);
  map::MapParams P;
  P.NumMEs = 4;
  P.AllowMerging = false; // Force a pipeline of single-copy stages.
  P.Replicate = false;
  map::MappingPlan Plan = placedPlan(*M, P);

  ASSERT_FALSE(Plan.Channels.empty());
  unsigned NN = 0;
  for (const map::ChannelDecision &D : Plan.Channels) {
    if (D.Kind != map::ChannelKind::NextNeighbor) {
      EXPECT_EQ(D.Reason.rfind("nn-", 0), 0u)
          << "scratch fallback must carry an nn-missed reason, got "
          << D.Reason;
      continue;
    }
    ++NN;
    EXPECT_EQ(D.Reason, "channel-lowered-nn");
    EXPECT_EQ(D.Capacity, P.NNRingWords);
    ASSERT_NE(D.Producer, ~0u);
    ASSERT_NE(D.Consumer, ~0u);
    const map::Aggregate &Prod = Plan.Aggregates[D.Producer];
    const map::Aggregate &Cons = Plan.Aggregates[D.Consumer];
    EXPECT_EQ(Cons.Slot, Prod.Slot + 1)
        << "NN channels require physically adjacent MEs";
    EXPECT_EQ(Prod.Copies, 1u);
    EXPECT_EQ(Cons.Copies, 1u);
  }
  EXPECT_GE(NN, 1u) << "an adjacent single-copy pipeline must lower at "
                       "least one NN channel";
  // Placement is plan state: every ME aggregate got a physical slot.
  for (const map::Aggregate &A : Plan.Aggregates) {
    if (!A.OnXScale) {
      EXPECT_NE(A.Slot, ~0u);
    }
  }
}

TEST(Placement, ReplicatedStagesDowngradeToScratch) {
  // With replication on, stages get multiple copies and NN channels are
  // impossible; the mapper must downgrade with a reason, not assert.
  auto M = lower(sl::tests::MiniRouter);
  map::MapParams P;
  P.NumMEs = 4;
  P.AllowMerging = false;
  P.Replicate = true;
  map::MappingPlan Plan = placedPlan(*M, P);

  bool AnyCopies = false;
  for (const map::Aggregate &A : Plan.Aggregates)
    AnyCopies |= !A.OnXScale && A.Copies > 1;
  if (!AnyCopies)
    GTEST_SKIP() << "replication did not produce multi-copy stages";
  for (const map::ChannelDecision &D : Plan.Channels) {
    if (D.Consumer == ~0u || D.Producer == ~0u)
      continue;
    if (Plan.Aggregates[D.Producer].Copies > 1 ||
        Plan.Aggregates[D.Consumer].Copies > 1) {
      EXPECT_EQ(D.Kind, map::ChannelKind::Scratch);
      EXPECT_TRUE(D.Reason == "nn-missed-multi-producer" ||
                  D.Reason == "nn-missed-multi-consumer")
          << D.Reason;
    }
  }
}

TEST(Placement, DisabledNNKeepsEveryChannelOnScratch) {
  auto M = lower(sl::tests::MiniRouter);
  map::MapParams P;
  P.NumMEs = 4;
  P.AllowMerging = false;
  P.Replicate = false;
  P.EnableNN = false;
  map::MappingPlan Plan = placedPlan(*M, P);

  ASSERT_FALSE(Plan.Channels.empty());
  for (const map::ChannelDecision &D : Plan.Channels) {
    EXPECT_EQ(D.Kind, map::ChannelKind::Scratch);
    EXPECT_EQ(D.Reason, "nn-disabled");
  }
}

TEST(Placement, DeterministicAcrossRuns) {
  // Same module + options -> same slots, same signature, same channel
  // decisions (the mapper ties placement into the plan signature, so the
  // feedback loop's fixed-point detection depends on this).
  auto M1 = lower(sl::tests::MiniRouter);
  auto M2 = lower(sl::tests::MiniRouter);
  map::MapParams P;
  P.NumMEs = 4;
  P.AllowMerging = false;
  P.Replicate = false;
  map::MappingPlan A = placedPlan(*M1, P);
  map::MappingPlan B = placedPlan(*M2, P);

  EXPECT_EQ(driver::planSignature(A), driver::planSignature(B));
  ASSERT_EQ(A.Channels.size(), B.Channels.size());
  for (size_t I = 0; I != A.Channels.size(); ++I) {
    EXPECT_EQ(A.Channels[I].ChanId, B.Channels[I].ChanId);
    EXPECT_EQ(A.Channels[I].Kind, B.Channels[I].Kind);
    EXPECT_EQ(A.Channels[I].Reason, B.Channels[I].Reason);
    EXPECT_EQ(A.Channels[I].Capacity, B.Channels[I].Capacity);
  }
}

TEST(Placement, SignatureEncodesSlots) {
  // The "@slot" marker must appear for placed ME aggregates so that two
  // plans differing only in physical placement do not collide.
  auto M = lower(sl::tests::MiniRouter);
  map::MapParams P;
  P.NumMEs = 4;
  P.AllowMerging = false;
  P.Replicate = false;
  map::MappingPlan Plan = placedPlan(*M, P);
  std::string Sig = driver::planSignature(Plan);
  EXPECT_NE(Sig.find("@"), std::string::npos);
}

TEST(Placement, RemarksReachTheObserver) {
  // The constrained pipelined config that lowers an NN channel (same as
  // bench/abl_channel_specialization) must surface the decision as a
  // fired "channel-lowered-nn" remark; with NN disabled every channel
  // reports "nn-disabled" instead.
  apps::AppBundle App = apps::l3switch();
  obs::CompileObserver On;
  auto WithNN = bench::compileApp(App, driver::OptLevel::Swc, /*NumMEs=*/3,
                                  /*StackOpt=*/true, &On, /*EnableNN=*/true,
                                  /*CodeStoreInstrs=*/512);
  ASSERT_NE(WithNN, nullptr);
  EXPECT_GT(On.Remarks.count("placement", obs::RemarkKind::Fired), 0u);
  bool SawLowered = false;
  for (const obs::Remark &R : On.Remarks.remarks())
    if (R.Pass == "placement" && R.Reason == "channel-lowered-nn")
      SawLowered = true;
  EXPECT_TRUE(SawLowered);

  obs::CompileObserver Off;
  auto NoNN = bench::compileApp(App, driver::OptLevel::Swc, /*NumMEs=*/3,
                                /*StackOpt=*/true, &Off, /*EnableNN=*/false,
                                /*CodeStoreInstrs=*/512);
  ASSERT_NE(NoNN, nullptr);
  EXPECT_EQ(Off.Remarks.count("placement", obs::RemarkKind::Fired), 0u);
  for (const obs::Remark &R : Off.Remarks.remarks()) {
    if (R.Pass == "placement") {
      EXPECT_EQ(R.Reason, "nn-disabled");
    }
  }
}

//===----------------------------------------------------------------------===//
// Per-kind channel costs
//===----------------------------------------------------------------------===//

TEST(ChannelCosts, DerivedFromChipParamsMatchDefaults) {
  // MapParams' documented defaults are exactly what deriveChannelCosts
  // computes from a default chip; the scratch cost reproduces the
  // historical 120-cycle constant (2x the scratch latency).
  map::MapParams P;
  map::MapParams Derived;
  map::deriveChannelCosts(Derived, ixp::ChipParams{});
  EXPECT_DOUBLE_EQ(Derived.ScratchChannelCostCycles,
                   P.ScratchChannelCostCycles);
  EXPECT_DOUBLE_EQ(Derived.NNChannelCostCycles, P.NNChannelCostCycles);
  EXPECT_EQ(Derived.NNRingWords, P.NNRingWords);
  EXPECT_DOUBLE_EQ(P.ScratchChannelCostCycles, 120.0);

  ixp::ChipParams Chip;
  EXPECT_DOUBLE_EQ(Derived.ScratchChannelCostCycles,
                   2.0 * Chip.Scratch.LatencyCycles);
  EXPECT_DOUBLE_EQ(Derived.NNChannelCostCycles,
                   2.0 * Chip.NNRingAccessCycles);
}

TEST(ChannelCosts, MeasuredModelFallsBackPerKind) {
  auto M = lower(sl::tests::MiniRouter);
  profile::ProfileData Prof = routerProfile(*M);
  map::MapParams P;

  map::MeasuredCosts MC;
  MC.FuncCycles["classify"] = 50.0;
  MC.MeInstrsPerIrInstr = 2.0;
  MC.CalibPackets = 10;
  MC.ScratchChannelCostCycles = 88.0;
  MC.NNChannelCostCycles = 0.0; // No NN ring ran during calibration.
  map::MeasuredCostModel CM(Prof, P, MC);
  EXPECT_DOUBLE_EQ(CM.channelCostCycles(), 88.0);
  EXPECT_DOUBLE_EQ(CM.nnChannelCostCycles(), P.NNChannelCostCycles);

  MC.NNChannelCostCycles = 4.5;
  MC.ScratchChannelCostCycles = 0.0;
  map::MeasuredCostModel CM2(Prof, P, MC);
  EXPECT_DOUBLE_EQ(CM2.channelCostCycles(), P.ScratchChannelCostCycles);
  EXPECT_DOUBLE_EQ(CM2.nnChannelCostCycles(), 4.5);

  map::StaticCostModel Static(Prof, P);
  EXPECT_DOUBLE_EQ(Static.nnChannelCostCycles(), P.NNChannelCostCycles);
}

} // namespace
