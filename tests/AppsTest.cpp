//===- tests/AppsTest.cpp - the three paper applications ---------------------==//

#include "apps/Apps.h"
#include "driver/Compiler.h"
#include "interp/Bits.h"
#include "interp/Interp.h"
#include "ir/ASTLower.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::apps;
using namespace sl::driver;

namespace {

std::unique_ptr<interp::Interpreter> makeInterp(const AppBundle &App,
                                                std::unique_ptr<ir::Module> &M,
                                                baker::CompiledUnit *&UnitOut) {
  static std::vector<std::unique_ptr<baker::CompiledUnit>> Units;
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(App.Source, Diags);
  EXPECT_NE(Unit, nullptr) << App.Name << ": " << Diags.str();
  if (!Unit)
    return nullptr;
  M = ir::lowerProgram(*Unit, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  UnitOut = Unit.get();
  Units.push_back(std::move(Unit));
  auto I = std::make_unique<interp::Interpreter>(*M);
  for (const TableInit &T : App.Tables)
    I->writeGlobal(T.Global, T.Index, T.Value);
  return I;
}

uint64_t metaOf(const baker::CompiledUnit *Unit,
                const std::vector<uint8_t> &Meta, const char *Field) {
  for (const baker::BitField &F : Unit->Sema.MetaFields)
    if (F.Name == Field)
      return interp::readBitsBE(Meta.data(), F.BitOff, F.Bits);
  ADD_FAILURE() << "no metadata field " << Field;
  return 0;
}

//===----------------------------------------------------------------------===//
// Functional behaviour (reference interpreter)
//===----------------------------------------------------------------------===//

TEST(L3Switch, RoutesToNextHop) {
  AppBundle App = l3switch();
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  auto I = makeInterp(App, M, Unit);

  // Destination 10.0+37K.x.x hits a /16 leaf with nh = 1 + K%64; K=0.
  std::vector<uint8_t> F(64, 0);
  interp::writeBitsBE(F.data(), 0, 48, 0x00AA00000000ull + 2); // port 2 MAC
  interp::writeBitsBE(F.data(), 96, 16, 0x0800);
  interp::writeBitsBE(F.data(), 14 * 8 + 0, 4, 4);
  interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
  interp::writeBitsBE(F.data(), 14 * 8 + 64, 8, 33); // ttl
  interp::writeBitsBE(F.data(), 14 * 8 + 80, 16, 0x1000);
  interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, 0x0A00'0001u | 0x123);

  interp::RunResult R = I->inject(F, 2);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  ASSERT_EQ(R.Tx.size(), 1u);
  // Rewritten ether header: dst is next-hop 1's MAC.
  EXPECT_EQ(interp::readBitsBE(R.Tx[0].Frame.data(), 0, 48),
            0x00BB00000000ull + 1);
  EXPECT_EQ(metaOf(Unit, R.Tx[0].Meta, "tx_port"), 1u & 3u);
  // TTL decremented.
  EXPECT_EQ(interp::readBitsBE(R.Tx[0].Frame.data(), 14 * 8 + 64, 8), 32u);
  EXPECT_EQ(I->readGlobal("drops", 0), 0u);
}

TEST(L3Switch, BridgesKnownMacAndDropsUnknown) {
  AppBundle App = l3switch();
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  auto I = makeInterp(App, M, Unit);

  std::vector<uint8_t> F(64, 0);
  interp::writeBitsBE(F.data(), 0, 48, 0x00CC00000000ull + 7); // host 7
  interp::writeBitsBE(F.data(), 96, 16, 0x0800);
  interp::RunResult R = I->inject(F, 0);
  ASSERT_FALSE(R.Error) << R.ErrorMsg;
  ASSERT_EQ(R.Tx.size(), 1u);
  EXPECT_EQ(metaOf(Unit, R.Tx[0].Meta, "tx_port"), 7u & 3u);

  // Unknown MAC: dropped and counted.
  std::vector<uint8_t> F2(64, 0);
  interp::writeBitsBE(F2.data(), 0, 48, 0x00DD000000FFull);
  interp::writeBitsBE(F2.data(), 96, 16, 0x0800);
  interp::RunResult R2 = I->inject(F2, 0);
  EXPECT_TRUE(R2.Tx.empty());
  EXPECT_EQ(I->readGlobal("drops", 0), 1u);
}

TEST(L3Switch, ArpGoesToControlPath) {
  AppBundle App = l3switch();
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  auto I = makeInterp(App, M, Unit);
  std::vector<uint8_t> F(64, 0);
  interp::writeBitsBE(F.data(), 96, 16, 0x0806);
  interp::RunResult R = I->inject(F, 1);
  EXPECT_TRUE(R.Tx.empty());
  EXPECT_EQ(I->readGlobal("arp_count", 0), 1u);
}

TEST(L3Switch, TtlExpiryDrops) {
  AppBundle App = l3switch();
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  auto I = makeInterp(App, M, Unit);
  std::vector<uint8_t> F(64, 0);
  interp::writeBitsBE(F.data(), 0, 48, 0x00AA00000000ull);
  interp::writeBitsBE(F.data(), 96, 16, 0x0800);
  interp::writeBitsBE(F.data(), 14 * 8 + 0, 4, 4);
  interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
  interp::writeBitsBE(F.data(), 14 * 8 + 64, 8, 1); // ttl = 1
  interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, 0x0A000001);
  interp::RunResult R = I->inject(F, 0);
  EXPECT_TRUE(R.Tx.empty());
  EXPECT_EQ(I->readGlobal("drops", 0), 1u);
}

TEST(Firewall, AllowsWebDeniesTelnet) {
  AppBundle App = firewall();
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  auto I = makeInterp(App, M, Unit);

  auto mkPkt = [](uint32_t Sa, uint32_t Da, uint16_t Sp, uint16_t Dp,
                  uint8_t Proto) {
    std::vector<uint8_t> F(64, 0);
    interp::writeBitsBE(F.data(), 96, 16, 0x0800);
    interp::writeBitsBE(F.data(), 14 * 8 + 0, 4, 4);
    interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
    interp::writeBitsBE(F.data(), 14 * 8 + 72, 8, Proto);
    interp::writeBitsBE(F.data(), 14 * 8 + 96, 32, Sa);
    interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, Da);
    interp::writeBitsBE(F.data(), 34 * 8, 16, Sp);
    interp::writeBitsBE(F.data(), 34 * 8 + 16, 16, Dp);
    return F;
  };

  // Web from 10.0/16 to 172.16 -> allowed by the first web rule.
  auto R1 = I->inject(mkPkt(0x0A000005, 0xAC100001, 5555, 80, 6), 0);
  ASSERT_EQ(R1.Tx.size(), 1u);
  EXPECT_EQ(metaOf(Unit, R1.Tx[0].Meta, "flow_id"), 1u);
  EXPECT_EQ(metaOf(Unit, R1.Tx[0].Meta, "tx_port"), 1u);
  // The whole ether frame passes through unmodified.
  EXPECT_EQ(R1.Tx[0].Frame.size(), 64u);

  // Telnet to the blocked service range -> denied.
  auto R2 = I->inject(mkPkt(0x0A000005, 0xAC100001, 30000, 23, 6), 0);
  EXPECT_TRUE(R2.Tx.empty());
  EXPECT_EQ(I->readGlobal("denied", 0), 1u);

  // Noisy subnet -> denied regardless of ports.
  auto R3 = I->inject(mkPkt(0x0A050001, 0x01020304, 2000, 2000, 6), 1);
  EXPECT_TRUE(R3.Tx.empty());
  EXPECT_EQ(I->readGlobal("denied", 0), 2u);
}

TEST(Firewall, OptionsGoToSlowPath) {
  AppBundle App = firewall();
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  auto I = makeInterp(App, M, Unit);
  std::vector<uint8_t> F(64, 0);
  interp::writeBitsBE(F.data(), 96, 16, 0x0800);
  interp::writeBitsBE(F.data(), 14 * 8 + 0, 4, 4);
  interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 6); // hlen 6: options.
  auto R = I->inject(F, 0);
  EXPECT_TRUE(R.Tx.empty());
  EXPECT_EQ(I->readGlobal("slow_count", 0), 1u);
}

TEST(Firewall, NonIpPassesThrough) {
  AppBundle App = firewall();
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  auto I = makeInterp(App, M, Unit);
  std::vector<uint8_t> F(64, 0);
  interp::writeBitsBE(F.data(), 96, 16, 0x86DD);
  auto R = I->inject(F, 1);
  ASSERT_EQ(R.Tx.size(), 1u);
  EXPECT_EQ(metaOf(Unit, R.Tx[0].Meta, "tx_port"), 0u); // 1 ^ 1.
}

TEST(Mpls, SwapPushPopBehave) {
  AppBundle App = mpls();
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  auto I = makeInterp(App, M, Unit);

  auto mkLabeled = [](uint32_t Label, bool Bottom, uint8_t Ttl,
                      unsigned Depth2Label = 0) {
    std::vector<uint8_t> F(64, 0);
    interp::writeBitsBE(F.data(), 96, 16, 0x8847);
    interp::writeBitsBE(F.data(), 14 * 8, 20, Label);
    interp::writeBitsBE(F.data(), 14 * 8 + 23, 1, Bottom ? 1 : 0);
    interp::writeBitsBE(F.data(), 14 * 8 + 24, 8, Ttl);
    if (Depth2Label) {
      interp::writeBitsBE(F.data(), 18 * 8, 20, Depth2Label);
      interp::writeBitsBE(F.data(), 18 * 8 + 23, 1, 1);
      interp::writeBitsBE(F.data(), 18 * 8 + 24, 8, Ttl);
    }
    return F;
  };

  // Label 16: op = 1 + 16%3 = 2 (swap+push): out frame has two labels.
  auto R1 = I->inject(mkLabeled(16, true, 40), 0);
  ASSERT_EQ(R1.Tx.size(), 1u);
  EXPECT_EQ(interp::readBitsBE(R1.Tx[0].Frame.data(), 96, 16), 0x8847u);
  uint64_t Outer = interp::readBitsBE(R1.Tx[0].Frame.data(), 14 * 8, 20);
  uint64_t Inner = interp::readBitsBE(R1.Tx[0].Frame.data(), 18 * 8, 20);
  EXPECT_EQ(Outer, 2040u + (16 * 13) % 1000);
  EXPECT_EQ(Inner, 1040u + (16 * 7) % 1000);
  // Frame grew by 4 bytes (pushed label).
  EXPECT_EQ(R1.Tx[0].Frame.size(), 68u);

  // Label 18: op = 1 (swap in place): same size, swapped label.
  auto R2 = I->inject(mkLabeled(18, true, 40), 0);
  ASSERT_EQ(R2.Tx.size(), 1u);
  EXPECT_EQ(R2.Tx[0].Frame.size(), 64u);
  EXPECT_EQ(interp::readBitsBE(R2.Tx[0].Frame.data(), 14 * 8, 20),
            1040u + (18 * 7) % 1000);

  // Label 17: op = 3 (pop), bottom-of-stack: becomes IP, shrinks 4B.
  auto R3 = I->inject(mkLabeled(17, true, 40), 0);
  ASSERT_EQ(R3.Tx.size(), 1u);
  EXPECT_EQ(interp::readBitsBE(R3.Tx[0].Frame.data(), 96, 16), 0x0800u);
  EXPECT_EQ(R3.Tx[0].Frame.size(), 60u);

  // Label 17 with a second label below: pop keeps it MPLS.
  auto R4 = I->inject(mkLabeled(17, false, 40, /*Depth2=*/20), 0);
  ASSERT_EQ(R4.Tx.size(), 1u);
  EXPECT_EQ(interp::readBitsBE(R4.Tx[0].Frame.data(), 96, 16), 0x8847u);
  EXPECT_EQ(interp::readBitsBE(R4.Tx[0].Frame.data(), 14 * 8, 20), 20u);
}

TEST(Mpls, IngressPushesLabel) {
  AppBundle App = mpls();
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  auto I = makeInterp(App, M, Unit);
  std::vector<uint8_t> F(64, 0);
  interp::writeBitsBE(F.data(), 96, 16, 0x0800);
  interp::writeBitsBE(F.data(), 14 * 8 + 0, 4, 4);
  interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
  interp::writeBitsBE(F.data(), 14 * 8 + 64, 8, 64);
  interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, 0x0B000001u); // FEC K=0.
  auto R = I->inject(F, 0);
  ASSERT_EQ(R.Tx.size(), 1u);
  EXPECT_EQ(interp::readBitsBE(R.Tx[0].Frame.data(), 96, 16), 0x8847u);
  EXPECT_EQ(interp::readBitsBE(R.Tx[0].Frame.data(), 14 * 8, 20), 16u);
  EXPECT_EQ(R.Tx[0].Frame.size(), 68u);
}

//===----------------------------------------------------------------------===//
// Compiled-versus-interpreter equivalence on the real applications
//===----------------------------------------------------------------------===//

void appLadderCheck(const AppBundle &App, OptLevel Level, unsigned NumMEs) {
  profile::Trace Trace = App.makeTrace(0xABCDE, 96);

  CompileOptions Opts;
  Opts.Level = Level;
  Opts.Map.NumMEs = NumMEs;
  Opts.TxMetaFields = App.TxMetaFields;
  // Single copy of every stage: with one thread per ME the pipeline stays
  // FIFO and the transmit order matches the interpreter exactly.
  Opts.Map.Replicate = false;
  Opts.Map.AllowDuplication = false;
  DiagEngine Diags;
  auto Compiled = compile(App.Source, Trace, App.Tables, Opts, Diags);
  ASSERT_NE(Compiled, nullptr) << App.Name << ": " << Diags.str();

  ixp::ChipParams Chip;
  Chip.ThreadsPerME = 1;
  auto Sim = makeSimulator(*Compiled, Chip);
  Sim->enableCapture();
  Sim->setMaxInjected(Trace.size());
  Sim->setTraffic([&Trace](uint64_t I) -> const ixp::SimPacket * {
    static thread_local ixp::SimPacket P;
    if (I >= Trace.size())
      return nullptr;
    P.Frame = Trace[I].Frame;
    P.Port = Trace[I].Port;
    return &P;
  });
  Sim->run(80'000'000);
  ASSERT_TRUE(Sim->drained()) << App.Name << " did not drain";

  // Reference.
  std::unique_ptr<ir::Module> M;
  baker::CompiledUnit *Unit = nullptr;
  AppBundle Fresh = App;
  auto I = makeInterp(Fresh, M, Unit);
  std::vector<interp::TxPacket> Ref;
  for (const auto &P : Trace) {
    auto R = I->inject(P.Frame, P.Port);
    ASSERT_FALSE(R.Error) << R.ErrorMsg;
    for (auto &Tx : R.Tx)
      Ref.push_back(std::move(Tx));
  }

  const auto &Got = Sim->captured();
  ASSERT_EQ(Got.size(), Ref.size()) << App.Name;
  for (size_t K = 0; K != Ref.size(); ++K)
    ASSERT_EQ(Got[K].Frame, Ref[K].Frame) << App.Name << " packet " << K;
}

struct AppLevel {
  const char *App;
  const char *LevelName;
  OptLevel Level;
};

class AppEquivalence : public ::testing::TestWithParam<AppLevel> {};

TEST_P(AppEquivalence, CompiledMatchesReference) {
  AppBundle App = GetParam().App == std::string("l3switch") ? l3switch()
                  : GetParam().App == std::string("firewall") ? firewall()
                                                              : mpls();
  appLadderCheck(App, GetParam().Level, /*NumMEs=*/3);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, AppEquivalence,
    ::testing::Values(AppLevel{"l3switch", "BASE", OptLevel::Base},
                      AppLevel{"l3switch", "PAC", OptLevel::Pac},
                      AppLevel{"l3switch", "SWC", OptLevel::Swc},
                      AppLevel{"firewall", "BASE", OptLevel::Base},
                      AppLevel{"firewall", "PAC", OptLevel::Pac},
                      AppLevel{"firewall", "SWC", OptLevel::Swc},
                      AppLevel{"mpls", "BASE", OptLevel::Base},
                      AppLevel{"mpls", "PAC", OptLevel::Pac},
                      AppLevel{"mpls", "SWC", OptLevel::Swc}),
    [](const ::testing::TestParamInfo<AppLevel> &Info) {
      return std::string(Info.param.App) + "_" + Info.param.LevelName;
    });

} // namespace
