//===- tests/SimulatorTest.cpp - IXP simulator unit tests ---------------------==//

#include "cg/MEIR.h"
#include "ir/Module.h"
#include "ixp/Simulator.h"
#include "rts/MemoryMap.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::cg;
using namespace sl::ixp;

namespace {

/// Helper to assemble small hand-written programs.
struct Asm {
  MCode C;
  MBlock *Cur = nullptr;

  Asm() { C.Name = "test"; }
  int block(const std::string &N) {
    C.Blocks.push_back(MBlock{N, {}});
    Cur = &C.Blocks.back();
    return static_cast<int>(C.Blocks.size() - 1);
  }
  MInstr &emit(MOp Op) {
    Cur->Instrs.push_back(MInstr{});
    Cur->Instrs.back().Op = Op;
    return Cur->Instrs.back();
  }
  MInstr &movi(int Dst, int64_t V) {
    MInstr &I = emit(MOp::MovImm);
    I.Dst = Dst;
    I.Imm = V;
    return I;
  }
  MInstr &halt() { return emit(MOp::Halt); }
};

rts::MemoryMap emptyMap() {
  static ir::Module Empty;
  return rts::buildMemoryMap(Empty);
}

TEST(Simulator, AluAndBranchSemantics) {
  Asm A;
  A.block("entry");
  A.movi(0, 7);
  A.movi(16, 5); // Bank B.
  {
    MInstr &I = A.emit(MOp::Add); // r1 = r0 + r16 = 12
    I.Dst = 1;
    I.SrcA = 0;
    I.SrcB = 16;
  }
  {
    MInstr &I = A.emit(MOp::Shl); // r2 = r1 << 2 = 48
    I.Dst = 2;
    I.SrcA = 1;
    I.SrcB = -1;
    I.Imm = 2;
  }
  {
    MInstr &I = A.emit(MOp::Set); // r3 = (r2 == 48)
    I.Dst = 3;
    I.Cond = MCond::Eq;
    I.SrcA = 2;
    I.SrcB = -1;
    I.Imm = 48;
  }
  {
    // Publish r2 and r3 via scratch so the test can observe them.
    MInstr &I = A.emit(MOp::GprToXfer);
    I.Xfer = 0;
    I.SrcA = 2;
  }
  {
    MInstr &I = A.emit(MOp::MemWrite);
    I.Space = MSpace::Scratch;
    I.SrcA = -1;
    I.Imm = 0x200;
    I.Xfer = 0;
    I.Words = 1;
  }
  A.halt();

  rts::MemoryMap Map = emptyMap();
  ChipParams P;
  P.ThreadsPerME = 1;
  Simulator Sim(P, Map);
  Sim.loadAggregate(flatten(A.C), {}, 1);
  Sim.run(5000);
  // Read back through a second program? Simpler: globals API needs an
  // ir::Global; instead verify via stats that the write happened.
  SimStats S = Sim.run(0);
  EXPECT_EQ(S.Accesses[0][static_cast<unsigned>(MemClass::App)], 1u);
}

TEST(Simulator, ShiftEdgeCases) {
  // shl/shr by >= 32 produce 0 (relied on by the realignment code).
  Asm A;
  A.block("entry");
  A.movi(0, 0xFFFF);
  {
    MInstr &I = A.emit(MOp::Shr);
    I.Dst = 1;
    I.SrcA = 0;
    I.SrcB = -1;
    I.Imm = 32;
  }
  {
    MInstr &I = A.emit(MOp::BrCond); // Must take the branch: r1 == 0.
    I.Cond = MCond::Eq;
    I.SrcA = 1;
    I.SrcB = -1;
    I.Imm = 0;
    I.Target = 1;
  }
  A.halt(); // Reached only on failure.
  A.block("ok");
  {
    MInstr &I = A.emit(MOp::GprToXfer);
    I.Xfer = 0;
    I.SrcA = 1;
  }
  {
    MInstr &I = A.emit(MOp::MemWrite);
    I.Space = MSpace::Scratch;
    I.SrcA = -1;
    I.Imm = 0x100;
    I.Xfer = 0;
    I.Words = 1;
  }
  A.halt();

  ChipParams P;
  P.ThreadsPerME = 1;
  rts::MemoryMap Map = emptyMap();
  Simulator Sim(P, Map);
  Sim.loadAggregate(flatten(A.C), {}, 1);
  SimStats S = Sim.run(5000);
  EXPECT_EQ(S.Accesses[0][static_cast<unsigned>(MemClass::App)], 1u)
      << "branch on shr-by-32 == 0 must be taken";
}

TEST(Simulator, MemoryRoundTripBigEndian) {
  Asm A;
  A.block("entry");
  A.movi(0, 0x11223344);
  {
    MInstr &I = A.emit(MOp::GprToXfer);
    I.Xfer = 0;
    I.SrcA = 0;
  }
  {
    MInstr &I = A.emit(MOp::MemWrite);
    I.Space = MSpace::Sram;
    I.SrcA = -1;
    I.Imm = 0x40;
    I.Xfer = 0;
    I.Words = 1;
  }
  {
    MInstr &I = A.emit(MOp::MemRead);
    I.Space = MSpace::Sram;
    I.SrcA = -1;
    I.Imm = 0x40;
    I.Xfer = 2;
    I.Words = 1;
  }
  {
    MInstr &I = A.emit(MOp::XferToGpr);
    I.Dst = 1;
    I.Xfer = 2;
  }
  {
    MInstr &I = A.emit(MOp::BrCond);
    I.Cond = MCond::Eq;
    I.SrcA = 1;
    I.SrcB = 0;
    I.Target = 1;
  }
  A.halt();
  A.block("match");
  {
    MInstr &I = A.emit(MOp::GprToXfer);
    I.Xfer = 0;
    I.SrcA = 1;
  }
  {
    MInstr &I = A.emit(MOp::MemWrite);
    I.Space = MSpace::Scratch;
    I.SrcA = -1;
    I.Imm = 0x80;
    I.Xfer = 0;
    I.Words = 1;
  }
  A.halt();

  ChipParams P;
  P.ThreadsPerME = 1;
  rts::MemoryMap Map = emptyMap();
  Simulator Sim(P, Map);
  Sim.loadAggregate(flatten(A.C), {}, 1);
  SimStats S = Sim.run(5000);
  EXPECT_EQ(S.Accesses[0][static_cast<unsigned>(MemClass::App)], 1u);
}

TEST(Simulator, CamLruAndPartitions) {
  // Fill a 4-entry partition, then touch a 5th key: the LRU entry must be
  // the victim; the other partition is untouched.
  Asm A;
  A.block("entry");
  // Keys 1..4 inserted in order into partition [0,4).
  for (int K = 1; K <= 4; ++K) {
    A.movi(0, K);
    {
      MInstr &I = A.emit(MOp::CamLookup);
      I.Dst = 1;
      I.SrcA = 0;
      I.CamBase = 0;
      I.CamSize = 4;
    }
    { // Insert at the returned victim entry.
      MInstr &E = A.emit(MOp::And);
      E.Dst = 2;
      E.SrcA = 1;
      E.SrcB = -1;
      E.Imm = 0xFF;
    }
    {
      MInstr &I = A.emit(MOp::CamWrite);
      I.SrcA = 0;
      I.SrcB = 2;
      I.CamBase = 0;
      I.CamSize = 4;
    }
  }
  // Re-touch key 2 (making key 1 the LRU), then look up key 9: miss.
  A.movi(0, 2);
  {
    MInstr &I = A.emit(MOp::CamLookup);
    I.Dst = 3;
    I.SrcA = 0;
    I.CamBase = 0;
    I.CamSize = 4;
  }
  A.movi(0, 9);
  {
    MInstr &I = A.emit(MOp::CamLookup);
    I.Dst = 4;
    I.SrcA = 0;
    I.CamBase = 0;
    I.CamSize = 4;
  }
  // r3 must be a hit ((1<<8)|entry); r4 must be a miss whose victim is
  // key 1's entry (entry 0).
  {
    MInstr &I = A.emit(MOp::BrCond);
    I.Cond = MCond::Uge;
    I.SrcA = 3;
    I.SrcB = -1;
    I.Imm = 256;
    I.Target = 1;
  }
  A.halt();
  A.block("hit");
  {
    MInstr &I = A.emit(MOp::BrCond);
    I.Cond = MCond::Eq;
    I.SrcA = 4;
    I.SrcB = -1;
    I.Imm = 0; // Miss result: no hit bit, victim entry 0.
    I.Target = 2;
  }
  A.halt();
  A.block("ok");
  {
    MInstr &I = A.emit(MOp::GprToXfer);
    I.Xfer = 0;
    I.SrcA = 3;
  }
  {
    MInstr &I = A.emit(MOp::MemWrite);
    I.Space = MSpace::Scratch;
    I.SrcA = -1;
    I.Imm = 0x80;
    I.Xfer = 0;
    I.Words = 1;
  }
  A.halt();

  ChipParams P;
  P.ThreadsPerME = 1;
  rts::MemoryMap Map = emptyMap();
  Simulator Sim(P, Map);
  Sim.loadAggregate(flatten(A.C), {}, 1);
  SimStats S = Sim.run(5000);
  EXPECT_EQ(S.Accesses[0][static_cast<unsigned>(MemClass::App)], 1u)
      << "CAM hit/miss/LRU sequence must reach the success store";
}

TEST(Simulator, BankedControllersScaleBandwidth) {
  // Same access count, one fixed address vs spread addresses: the spread
  // case must finish (deliver packets) faster thanks to bank parallelism.
  auto measure = [&](bool Spread) {
    Asm A;
    A.block("entry");
    A.movi(0, 0);
    {
      MInstr &I = A.emit(MOp::Br);
      I.Target = 1;
    }
    A.block("dispatch");
    {
      MInstr &I = A.emit(MOp::RingGet);
      I.Class = MemClass::PktRing;
      I.Dst = 1;
      I.Ring = rts::RxRing;
    }
    {
      MInstr &I = A.emit(MOp::BrCond);
      I.Cond = MCond::Ne;
      I.SrcA = 1;
      I.SrcB = -1;
      I.Target = 2;
    }
    {
      MInstr &I = A.emit(MOp::CtxArb);
      (void)I;
    }
    {
      MInstr &I = A.emit(MOp::Br);
      I.Target = 1;
    }
    A.block("got");
    for (int K = 0; K != 4; ++K) {
      // Address register: 0 (fixed) or rotating by packet handle.
      MInstr &I = A.emit(MOp::MemRead);
      I.Space = MSpace::Dram;
      I.Class = MemClass::PktData;
      I.SrcA = Spread ? 1 : 0; // Handle values differ per packet.
      I.Imm = Spread ? 0 : 64;
      I.Xfer = 0;
      I.Words = 2;
    }
    {
      MInstr &I = A.emit(MOp::RingPut);
      I.Class = MemClass::PktRing;
      I.SrcA = 1;
      I.Ring = rts::TxRing;
    }
    {
      MInstr &I = A.emit(MOp::Br);
      I.Target = 1;
    }

    ChipParams P;
    rts::MemoryMap Map = emptyMap();
    Simulator Sim(P, Map);
    Sim.loadAggregate(flatten(A.C), {}, P.ProgrammableMEs);
    SimPacket Pkt;
    Pkt.Frame.assign(64, 1);
    Sim.setTraffic([&Pkt](uint64_t) { return &Pkt; });
    SimStats S = Sim.run(100'000);
    return S.TxPackets;
  };

  uint64_t Fixed = measure(false);
  uint64_t Spread = measure(true);
  EXPECT_GT(Spread, Fixed * 2) << "bank spreading must raise throughput";
}

TEST(Simulator, RxBackpressureAndDrain) {
  // A program that never consumes: Rx must stop injecting when the ring
  // and buffer pool fill, and drained() must report false.
  Asm A;
  A.block("entry");
  A.emit(MOp::CtxArb);
  {
    MInstr &I = A.emit(MOp::Br);
    I.Target = 0;
  }

  ChipParams P;
  P.ThreadsPerME = 1;
  rts::MemoryMap Map = emptyMap();
  Simulator Sim(P, Map);
  Sim.loadAggregate(flatten(A.C), {}, 1);
  SimPacket Pkt;
  Pkt.Frame.assign(64, 0);
  Sim.setTraffic([&Pkt](uint64_t) { return &Pkt; });
  SimStats S = Sim.run(20'000);
  EXPECT_LE(S.RxInjected, P.RingCapacity);
  EXPECT_EQ(S.TxPackets, 0u);
  EXPECT_FALSE(Sim.drained());
}

TEST(Simulator, LockExclusionUnderContention) {
  // 8 threads increment a scratch counter 100 times each inside a lock;
  // the final value must be exactly 800 (atomicity) — without the lock
  // this would race.
  Asm A;
  A.block("entry");
  A.movi(2, 0); // Loop counter.
  {
    MInstr &I = A.emit(MOp::Br);
    I.Target = 1;
  }
  A.block("loop");
  {
    MInstr &I = A.emit(MOp::BrCond);
    I.Cond = MCond::Uge;
    I.SrcA = 2;
    I.SrcB = -1;
    I.Imm = 100;
    I.Target = 5; // done
  }
  {
    MInstr &I = A.emit(MOp::Br);
    I.Target = 2;
  }
  A.block("spin");
  {
    MInstr &I = A.emit(MOp::AtomicTestSet);
    I.Class = MemClass::Lock;
    I.Dst = 3;
    I.Imm = 0x40;
  }
  {
    MInstr &I = A.emit(MOp::BrCond);
    I.Cond = MCond::Eq;
    I.SrcA = 3;
    I.SrcB = -1;
    I.Imm = 0;
    I.Target = 3; // got it
  }
  A.emit(MOp::CtxArb);
  {
    MInstr &I = A.emit(MOp::Br);
    I.Target = 2;
  }
  A.block("crit");
  {
    MInstr &I = A.emit(MOp::MemRead);
    I.Space = MSpace::Scratch;
    I.Class = MemClass::App;
    I.SrcA = -1;
    I.Imm = 0x100;
    I.Xfer = 0;
    I.Words = 1;
  }
  {
    MInstr &I = A.emit(MOp::XferToGpr);
    I.Dst = 4;
    I.Xfer = 0;
  }
  {
    MInstr &I = A.emit(MOp::Add);
    I.Dst = 4;
    I.SrcA = 4;
    I.SrcB = -1;
    I.Imm = 1;
  }
  {
    MInstr &I = A.emit(MOp::GprToXfer);
    I.Xfer = 0;
    I.SrcA = 4;
  }
  {
    MInstr &I = A.emit(MOp::MemWrite);
    I.Space = MSpace::Scratch;
    I.Class = MemClass::App;
    I.SrcA = -1;
    I.Imm = 0x100;
    I.Xfer = 0;
    I.Words = 1;
  }
  {
    MInstr &I = A.emit(MOp::AtomicClear);
    I.Class = MemClass::Lock;
    I.Imm = 0x40;
  }
  {
    MInstr &I = A.emit(MOp::Br);
    I.Target = 4;
  }
  A.block("next");
  {
    MInstr &I = A.emit(MOp::Add);
    I.Dst = 2;
    I.SrcA = 2;
    I.SrcB = -1;
    I.Imm = 1;
  }
  {
    MInstr &I = A.emit(MOp::Br);
    I.Target = 1;
  }
  A.block("done");
  // Publish: write 1 to scratch 0x104 once done (per thread; any count).
  A.emit(MOp::Halt);

  ChipParams P;
  P.ThreadsPerME = 8;
  rts::MemoryMap Map = emptyMap();
  Simulator Sim(P, Map);
  Sim.loadAggregate(flatten(A.C), {}, 1);
  Sim.run(3'000'000);

  // Inspect the counter through a tiny reader program? The simulator's
  // byte arrays are private; read it with another run is overkill — use
  // the access counts to confirm all 800 critical sections ran, and a
  // final probe program to check exclusion via a second simulator would
  // duplicate semantics. Instead, expose the value via readGlobal on a
  // synthetic module in a dedicated test below.
  SimStats S = Sim.run(0);
  uint64_t CritReads =
      S.Accesses[0][static_cast<unsigned>(MemClass::App)];
  EXPECT_EQ(CritReads, 2 * 800u) << "each increment: one read + one write";
}

} // namespace
