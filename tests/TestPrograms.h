//===- tests/TestPrograms.h - shared Baker snippets for tests --------------==//

#ifndef SL_TESTS_TESTPROGRAMS_H
#define SL_TESTS_TESTPROGRAMS_H

namespace sl::tests {

/// A minimal forwarding program: bumps a counter, stamps an output port in
/// metadata, forwards every packet to tx.
inline const char *MiniForward = R"(
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

metadata {
  outp : 16;
};

module m {
  u32 counter;

  ppf fwd(ether_pkt * ph) {
    ph->meta.outp = ph->meta.rx_port + 1;
    counter = counter + 1;
    channel_put(tx, ph);
  }

  wire rx -> fwd;
}
)";

/// Exercises decap with a variable-size header (ipv4 via its length field),
/// table lookup, loops and a second PPF via a channel.
inline const char *MiniRouter = R"(
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

protocol ipv4 {
  ver : 4;
  hlen : 4;
  tos : 8;
  total_len : 16;
  id : 16;
  flags : 3;
  frag : 13;
  ttl : 8;
  proto : 8;
  checksum : 16;
  src : 32;
  dst : 32;
  demux { hlen << 2 };
};

metadata {
  nexthop : 16;
};

module r {
  u32 route_hi[16];
  u32 drops;
  channel ip_cc : ipv4;

  ppf classify(ether_pkt * ph) {
    if (ph->type == 0x0800) {
      ipv4_pkt * iph = packet_decap(ph);
      channel_put(ip_cc, iph);
    } else {
      packet_drop(ph);
      drops = drops + 1;
    }
  }

  ppf route(ipv4_pkt * iph) {
    u32 key = iph->dst >> 28;
    u32 hop = route_hi[key];
    if (hop == 0) {
      packet_drop(iph);
      drops = drops + 1;
      return;
    }
    iph->meta.nexthop = hop;
    iph->ttl = iph->ttl - 1;
    channel_put(tx, iph);
  }

  wire rx -> classify;
  wire ip_cc -> route;
}
)";

} // namespace sl::tests

#endif // SL_TESTS_TESTPROGRAMS_H
