//===- tests/IRCoreTest.cpp - IR structures, verifier, dominators ------------==//

#include "ir/ASTLower.h"
#include "ir/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::ir;

namespace {

std::string support_join(const std::vector<std::string> &V) {
  std::string Out;
  for (const std::string &S : V)
    Out += S + "\n";
  return Out;
}

std::unique_ptr<Module> lower(const char *Src) {
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Src, Diags);
  EXPECT_NE(Unit, nullptr) << Diags.str();
  if (!Unit)
    return nullptr;
  auto M = lowerProgram(*Unit, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return M;
}

TEST(IRCore, UseListsTrackOperands) {
  Function F("f", Type::voidTy(), false);
  IRBuilder B(&F);
  B.setInsertBlock(F.addBlock("entry"));
  ConstInt *C1 = B.i32(1);
  ConstInt *C2 = B.i32(2);
  Instr *Add = B.createBin(Op::Add, C1, C2);
  Instr *Mul = B.createBin(Op::Mul, Add, Add);
  EXPECT_EQ(Add->numUses(), 2u);
  B.createRet(nullptr);

  // RAUW moves uses.
  Add->replaceAllUsesWith(C1);
  EXPECT_EQ(Add->numUses(), 0u);
  EXPECT_EQ(Mul->operand(0), C1);
  EXPECT_EQ(Mul->operand(1), C1);
}

TEST(IRCore, ConstantsAreUniqued) {
  Function F("f", Type::voidTy(), false);
  EXPECT_EQ(F.constInt(Type::intTy(32), 5), F.constInt(Type::intTy(32), 5));
  EXPECT_NE(F.constInt(Type::intTy(32), 5), F.constInt(Type::intTy(64), 5));
  // Values are masked to the type width before uniquing.
  EXPECT_EQ(F.constInt(Type::intTy(8), 0x1FF),
            F.constInt(Type::intTy(8), 0xFF));
}

TEST(IRCore, VerifierAcceptsLoweredPrograms) {
  auto M = lower(sl::tests::MiniForward);
  ASSERT_NE(M, nullptr);
  std::vector<std::string> Problems = verifyModule(*M);
  EXPECT_TRUE(Problems.empty())
      << support_join(Problems);
}

TEST(IRCore, VerifierAcceptsRouter) {
  auto M = lower(sl::tests::MiniRouter);
  ASSERT_NE(M, nullptr);
  std::vector<std::string> Problems = verifyModule(*M);
  EXPECT_TRUE(Problems.empty()) << support_join(Problems);
}

TEST(IRCore, VerifierCatchesMissingTerminator) {
  Function F("f", Type::voidTy(), false);
  IRBuilder B(&F);
  B.setInsertBlock(F.addBlock("entry"));
  B.createBin(Op::Add, B.i32(1), B.i32(2));
  // No terminator.
  std::vector<std::string> Problems = verifyFunction(F);
  EXPECT_FALSE(Problems.empty());
}

TEST(IRCore, VerifierCatchesTypeMismatch) {
  Function F("f", Type::voidTy(), false);
  IRBuilder B(&F);
  B.setInsertBlock(F.addBlock("entry"));
  Instr *Add = B.createBin(Op::Add, B.i32(1), B.i32(2));
  B.createRet(nullptr);
  // Corrupt the type after the fact.
  Add->setType(Type::intTy(64));
  std::vector<std::string> Problems = verifyFunction(F);
  EXPECT_FALSE(Problems.empty());
}

TEST(IRCore, DominatorsOnDiamond) {
  Function F("f", Type::voidTy(), false);
  IRBuilder B(&F);
  BasicBlock *Entry = F.addBlock("entry");
  BasicBlock *Left = F.addBlock("left");
  BasicBlock *Right = F.addBlock("right");
  BasicBlock *Join = F.addBlock("join");
  B.setInsertBlock(Entry);
  B.createCondBr(F.constInt(Type::boolTy(), 1), Left, Right);
  B.setInsertBlock(Left);
  B.createBr(Join);
  B.setInsertBlock(Right);
  B.createBr(Join);
  B.setInsertBlock(Join);
  B.createRet(nullptr);

  DomTree DT(F);
  EXPECT_EQ(DT.idom(Join), Entry);
  EXPECT_EQ(DT.idom(Left), Entry);
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(Left, Join));
  // Left and Right each have Join in their dominance frontier.
  const auto &DF = DT.frontier(Left);
  ASSERT_EQ(DF.size(), 1u);
  EXPECT_EQ(DF[0], Join);
}

TEST(IRCore, DominatorsInstructionOrder) {
  Function F("f", Type::voidTy(), false);
  IRBuilder B(&F);
  B.setInsertBlock(F.addBlock("entry"));
  Instr *A = B.createBin(Op::Add, B.i32(1), B.i32(2));
  Instr *C = B.createBin(Op::Add, A, A);
  B.createRet(nullptr);
  DomTree DT(F);
  EXPECT_TRUE(DT.dominates(A, C));
  EXPECT_FALSE(DT.dominates(C, A));
}

TEST(IRCore, PrinterProducesText) {
  auto M = lower(sl::tests::MiniRouter);
  std::string Text = printModule(*M);
  EXPECT_NE(Text.find("ppf @classify"), std::string::npos);
  EXPECT_NE(Text.find("pkt.decap"), std::string::npos);
  EXPECT_NE(Text.find("chan.put"), std::string::npos);
  EXPECT_NE(Text.find("global $route_hi"), std::string::npos);
}

TEST(IRCore, LoweredChannelsAndEntry) {
  auto M = lower(sl::tests::MiniRouter);
  ASSERT_NE(M->EntryPpf, nullptr);
  EXPECT_EQ(M->EntryPpf->name(), "classify");
  ASSERT_EQ(M->Channels.size(), 2u);
  EXPECT_EQ(M->Channels[0].Name, "tx");
  EXPECT_EQ(M->Channels[1].Name, "ip_cc");
  ASSERT_NE(M->Channels[1].Dest, nullptr);
  EXPECT_EQ(M->Channels[1].Dest->name(), "route");
}

} // namespace
