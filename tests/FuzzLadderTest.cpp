//===- tests/FuzzLadderTest.cpp - randomized differential testing ------------==//
//
// Generates random (but always well-formed) Baker programs — random
// protocol layouts, random packet/metadata/global accesses, arithmetic,
// branches, bounded loops, decap/encap chains — and checks that the code
// compiled at the top of the optimization ladder and executed on the
// simulated IXP2400 emits byte-identical frames to the reference
// interpreter.
//
//===----------------------------------------------------------------------===//

#include "analysis/PacketLifetime.h"
#include "analysis/StateRace.h"
#include "apps/Apps.h"
#include "driver/Compiler.h"
#include "interp/Interp.h"
#include "ir/ASTLower.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace sl;
using namespace sl::driver;

namespace {

/// Generates one random program plus the description of its protocols.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    // Outer protocol: random byte-aligned layout, 8..24 bytes.
    unsigned OuterBytes = 8 + static_cast<unsigned>(R.nextBelow(3)) * 8;
    std::string Src = protocolDecl("outer", OuterBytes);
    // Inner protocol: fixed-size too (so encap is legal).
    unsigned InnerBytes = 4 + static_cast<unsigned>(R.nextBelow(2)) * 4;
    Src += protocolDecl("inner", InnerBytes);

    Src += "metadata { m0 : 16; m1 : 32; };\n";
    Src += "module fuzz {\n";
    Src += "  u32 tab[16];\n  u32 acc;\n  u64 wide;\n";
    Src += "  ppf f(outer_pkt * ph) {\n";
    Src += "    u32 a = 1;\n    u32 b = 2;\n";
    Depth = 0;
    for (unsigned K = 0, N = 6 + static_cast<unsigned>(R.nextBelow(8));
         K != N; ++K)
      Src += stmt("ph", "outer");
    Src += "    channel_put(tx, ph);\n";
    Src += "  }\n  wire rx -> f;\n}\n";
    return Src;
  }

  unsigned OuterFieldCount = 0;

private:
  std::string protocolDecl(const std::string &Name, unsigned Bytes) {
    std::string S = "protocol " + Name + " {\n";
    unsigned Bits = Bytes * 8;
    unsigned I = 0;
    Fields[Name].clear();
    while (Bits > 0) {
      static const unsigned Widths[] = {4, 8, 12, 16, 20, 24, 32, 48};
      unsigned W = Widths[R.nextBelow(8)];
      if (W > Bits)
        W = Bits;
      std::string F = formatString("%s_f%u", Name.c_str(), I++);
      S += "  " + F + " : " + std::to_string(W) + ";\n";
      Fields[Name].push_back(F);
      Bits -= W;
    }
    S += "  demux { " + std::to_string(Bytes) + " };\n};\n";
    return S;
  }

  std::string field(const std::string &Proto) {
    const auto &V = Fields[Proto];
    return V[R.nextBelow(V.size())];
  }

  std::string expr(const std::string &H, const std::string &Proto,
                   unsigned Depth2 = 0) {
    switch (R.nextBelow(Depth2 > 2 ? 4 : 7)) {
    case 0:
      return std::to_string(R.nextBelow(1000));
    case 1:
      return "a";
    case 2:
      return "b";
    case 3:
      return "acc";
    case 4:
      return H + "->" + field(Proto);
    case 5:
      return "tab[(" + expr(H, Proto, Depth2 + 1) + ") & 15]";
    default: {
      static const char *Ops[] = {"+", "-", "^", "&", "|"};
      return "(" + expr(H, Proto, Depth2 + 1) + " " +
             Ops[R.nextBelow(5)] + " " + expr(H, Proto, Depth2 + 1) + ")";
    }
    }
  }

  std::string cond(const std::string &H, const std::string &Proto) {
    static const char *Rel[] = {"<", "<=", "==", "!=", ">", ">="};
    return expr(H, Proto, 1) + " " + Rel[R.nextBelow(6)] + " " +
           expr(H, Proto, 1);
  }

  std::string stmt(const std::string &H, const std::string &Proto) {
    ++Depth;
    std::string S;
    switch (R.nextBelow(Depth > 2 ? 6 : 9)) {
    case 0:
      S = "    a = " + expr(H, Proto) + ";\n";
      break;
    case 1:
      S = "    b = " + expr(H, Proto) + ";\n";
      break;
    case 2:
      S = "    acc = acc + (" + expr(H, Proto) + ");\n";
      break;
    case 3:
      S = "    " + H + "->" + field(Proto) + " = " + expr(H, Proto) +
          ";\n";
      break;
    case 4:
      S = "    " + H + "->meta.m1 = " + expr(H, Proto) + ";\n";
      break;
    case 5:
      S = "    tab[(" + expr(H, Proto) + ") & 15] = " + expr(H, Proto) +
          ";\n";
      break;
    case 6: {
      S = "    if (" + cond(H, Proto) + ") {\n  " + stmt(H, Proto) +
          "  } else {\n  " + stmt(H, Proto) + "  }\n";
      break;
    }
    case 7: {
      // Bounded loop.
      std::string V = formatString("i%u", LoopId++);
      S = "    for (u32 " + V + " = 0; " + V + " < " +
          std::to_string(1 + R.nextBelow(5)) + "; " + V + " = " + V +
          " + 1) {\n  " + stmt(H, Proto) + "  }\n";
      break;
    }
    default: {
      // Decap to inner, poke a field, encap back (paired; PHR fodder).
      std::string Hi = formatString("p%u", LoopId++);
      std::string Ho = formatString("q%u", LoopId++);
      S = "    {\n";
      S = "    inner_pkt * " + Hi + " = packet_decap(" + H + ");\n";
      S += "    " + Hi + "->" + field("inner") + " = " +
           expr(Hi, "inner") + ";\n";
      S += "    outer_pkt * " + Ho + " = packet_encap(" + Hi + ");\n";
      S += "    " + Ho + "->" + field(Proto) + " = " + expr(Ho, Proto) +
           ";\n";
      break;
    }
    }
    --Depth;
    return S;
  }

  Rng R;
  std::map<std::string, std::vector<std::string>> Fields;
  unsigned LoopId = 0;
  unsigned Depth = 0;
};

class FuzzLadder : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzLadder, SimMatchesInterpreter) {
  ProgramGen Gen(GetParam());
  std::string Src = Gen.generate();
  SCOPED_TRACE(Src);

  // Traffic: random frames, always big enough for outer+inner headers.
  Rng R(GetParam() ^ 0xF00D);
  profile::Trace Trace;
  for (unsigned I = 0; I != 48; ++I) {
    std::vector<uint8_t> F(64);
    for (auto &Byte : F)
      Byte = static_cast<uint8_t>(R.next());
    Trace.push_back({F, static_cast<uint16_t>(R.nextBelow(4))});
  }

  // Reference.
  DiagEngine D;
  auto Unit = baker::parseAndAnalyze(Src, D);
  ASSERT_NE(Unit, nullptr) << D.str();
  auto RefM = ir::lowerProgram(*Unit, D);
  interp::Interpreter RefI(*RefM);
  std::vector<interp::TxPacket> Ref;
  for (const auto &P : Trace) {
    auto Res = RefI.inject(P.Frame, P.Port);
    ASSERT_FALSE(Res.Error) << Res.ErrorMsg;
    for (auto &T : Res.Tx)
      Ref.push_back(std::move(T));
  }

  for (OptLevel L : {OptLevel::O2, OptLevel::Soar, OptLevel::Swc}) {
    CompileOptions Opts;
    Opts.Level = L;
    Opts.Map.NumMEs = 1;
    Opts.Map.Replicate = false;
    DiagEngine Diags;
    auto App = compile(Src, Trace, {}, Opts, Diags);
    ASSERT_NE(App, nullptr) << Diags.str();

    // The safety analyses must digest the surviving IR at every ladder
    // stage without crashing, and twice over the same module must yield
    // identical findings (order included) — they are pure functions of
    // the program.
    std::vector<analysis::Finding> F1, F2;
    analysis::checkPacketLifetime(*App->IR, F1);
    analysis::checkStateRace(*App->IR, App->Plan, F1);
    analysis::checkPacketLifetime(*App->IR, F2);
    analysis::checkStateRace(*App->IR, App->Plan, F2);
    ASSERT_EQ(F1.size(), F2.size()) << optLevelName(L);
    for (size_t K = 0; K != F1.size(); ++K)
      ASSERT_TRUE(F1[K] == F2[K]) << optLevelName(L) << " finding " << K;

    ixp::ChipParams Chip;
    Chip.ThreadsPerME = 1;
    auto Sim = makeSimulator(*App, Chip);
    Sim->enableCapture();
    Sim->setMaxInjected(Trace.size());
    Sim->setTraffic([&Trace](uint64_t I) -> const ixp::SimPacket * {
      static thread_local ixp::SimPacket P;
      if (I >= Trace.size())
        return nullptr;
      P.Frame = Trace[I].Frame;
      P.Port = Trace[I].Port;
      return &P;
    });
    Sim->run(40'000'000);
    ASSERT_TRUE(Sim->drained()) << "did not drain at "
                                << optLevelName(L);
    const auto &Got = Sim->captured();
    ASSERT_EQ(Got.size(), Ref.size()) << optLevelName(L);
    for (size_t K = 0; K != Ref.size(); ++K)
      ASSERT_EQ(Got[K].Frame, Ref[K].Frame)
          << optLevelName(L) << " packet " << K;
    // Interpreter-level table state must match too.
    ir::Global *Tab = App->IR->findGlobal("tab");
    ir::Global *Acc = App->IR->findGlobal("acc");
    for (unsigned K = 0; K != 16; ++K)
      EXPECT_EQ(Sim->readGlobal(Tab, K), RefI.readGlobal("tab", K))
          << optLevelName(L) << " tab[" << K << "]";
    EXPECT_EQ(Sim->readGlobal(Acc, 0), RefI.readGlobal("acc", 0))
        << optLevelName(L);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLadder,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Stateful app at every ladder stage
//===----------------------------------------------------------------------===//

// The random programs above have no critical sections: NAT brings the
// lock-guarded RMW pattern through the same every-stage differential.
class StatefulLadder : public ::testing::TestWithParam<OptLevel> {};

TEST_P(StatefulLadder, NatMatchesInterpreter) {
  apps::AppBundle App = apps::nat();
  profile::Trace Trace = App.makeTrace(0x57A7E, 48);

  // Reference.
  DiagEngine D;
  auto Unit = baker::parseAndAnalyze(App.Source, D);
  ASSERT_NE(Unit, nullptr) << D.str();
  auto RefM = ir::lowerProgram(*Unit, D);
  interp::Interpreter RefI(*RefM);
  for (const auto &T : App.Tables)
    RefI.writeGlobal(T.Global, T.Index, T.Value);
  std::vector<interp::TxPacket> Ref;
  for (const auto &P : Trace) {
    auto Res = RefI.inject(P.Frame, P.Port);
    ASSERT_FALSE(Res.Error) << Res.ErrorMsg;
    for (auto &T : Res.Tx)
      Ref.push_back(std::move(T));
  }

  CompileOptions Opts;
  Opts.Level = GetParam();
  Opts.TxMetaFields = App.TxMetaFields;
  Opts.Map.NumMEs = 3;
  Opts.Map.Replicate = false;
  Opts.Map.AllowDuplication = false;
  DiagEngine Diags;
  auto Compiled = compile(App.Source, Trace, App.Tables, Opts, Diags);
  ASSERT_NE(Compiled, nullptr) << Diags.str();

  // The safety analyses must be deterministic over the surviving IR.
  std::vector<analysis::Finding> F1, F2;
  analysis::checkPacketLifetime(*Compiled->IR, F1);
  analysis::checkStateRace(*Compiled->IR, Compiled->Plan, F1);
  analysis::checkPacketLifetime(*Compiled->IR, F2);
  analysis::checkStateRace(*Compiled->IR, Compiled->Plan, F2);
  ASSERT_EQ(F1.size(), F2.size());
  for (size_t K = 0; K != F1.size(); ++K)
    ASSERT_TRUE(F1[K] == F2[K]) << "finding " << K;

  ixp::ChipParams Chip;
  Chip.ThreadsPerME = 1;
  auto Sim = makeSimulator(*Compiled, Chip);
  Sim->enableCapture();
  Sim->setMaxInjected(Trace.size());
  Sim->setTraffic([&Trace](uint64_t I) -> const ixp::SimPacket * {
    static thread_local ixp::SimPacket P;
    if (I >= Trace.size())
      return nullptr;
    P.Frame = Trace[I].Frame;
    P.Port = Trace[I].Port;
    return &P;
  });
  Sim->run(80'000'000);
  ASSERT_TRUE(Sim->drained());
  const auto &Got = Sim->captured();
  ASSERT_EQ(Got.size(), Ref.size());
  for (size_t K = 0; K != Ref.size(); ++K)
    ASSERT_EQ(Got[K].Frame, Ref[K].Frame) << "packet " << K;

  // Shared-table state must match the reference exactly too: the NAT
  // binding tables are the whole point of the app.
  ir::Global *Fwd = Compiled->IR->findGlobal("fwd_port");
  ASSERT_NE(Fwd, nullptr);
  for (unsigned K = 0; K != 1024; ++K)
    ASSERT_EQ(Sim->readGlobal(Fwd, K), RefI.readGlobal("fwd_port", K))
        << "fwd_port[" << K << "]";
  ir::Global *Np = Compiled->IR->findGlobal("next_port");
  EXPECT_EQ(Sim->readGlobal(Np, 0), RefI.readGlobal("next_port", 0));
}

INSTANTIATE_TEST_SUITE_P(
    Ladder, StatefulLadder,
    ::testing::Values(OptLevel::Base, OptLevel::O1, OptLevel::O2,
                      OptLevel::Pac, OptLevel::Soar, OptLevel::Phr,
                      OptLevel::Swc),
    [](const auto &Info) {
      std::string N = optLevelName(Info.param);
      std::string Out;
      for (char C : N)
        if (std::isalnum(static_cast<unsigned char>(C)))
          Out += C;
      return Out;
    });

} // namespace
