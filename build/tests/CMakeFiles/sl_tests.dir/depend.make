# Empty dependencies file for sl_tests.
# This may be replaced when dependencies are built.
