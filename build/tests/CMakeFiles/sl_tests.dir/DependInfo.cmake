
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AppsTest.cpp" "tests/CMakeFiles/sl_tests.dir/AppsTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/AppsTest.cpp.o.d"
  "/root/repo/tests/CgTest.cpp" "tests/CMakeFiles/sl_tests.dir/CgTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/CgTest.cpp.o.d"
  "/root/repo/tests/EndToEndTest.cpp" "tests/CMakeFiles/sl_tests.dir/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/EndToEndTest.cpp.o.d"
  "/root/repo/tests/FuzzLadderTest.cpp" "tests/CMakeFiles/sl_tests.dir/FuzzLadderTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/FuzzLadderTest.cpp.o.d"
  "/root/repo/tests/IRCoreTest.cpp" "tests/CMakeFiles/sl_tests.dir/IRCoreTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/IRCoreTest.cpp.o.d"
  "/root/repo/tests/InterpTest.cpp" "tests/CMakeFiles/sl_tests.dir/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/InterpTest.cpp.o.d"
  "/root/repo/tests/LexerTest.cpp" "tests/CMakeFiles/sl_tests.dir/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/MapRtsTest.cpp" "tests/CMakeFiles/sl_tests.dir/MapRtsTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/MapRtsTest.cpp.o.d"
  "/root/repo/tests/OptTest.cpp" "tests/CMakeFiles/sl_tests.dir/OptTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/OptTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/sl_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PktOptTest.cpp" "tests/CMakeFiles/sl_tests.dir/PktOptTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/PktOptTest.cpp.o.d"
  "/root/repo/tests/SemaTest.cpp" "tests/CMakeFiles/sl_tests.dir/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/SemaTest.cpp.o.d"
  "/root/repo/tests/SimulatorTest.cpp" "tests/CMakeFiles/sl_tests.dir/SimulatorTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/SimulatorTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/sl_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/WcetTest.cpp" "tests/CMakeFiles/sl_tests.dir/WcetTest.cpp.o" "gcc" "tests/CMakeFiles/sl_tests.dir/WcetTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sl_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/sl_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/ixp/CMakeFiles/sl_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/cg/CMakeFiles/sl_cg.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/sl_map.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/sl_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/pktopt/CMakeFiles/sl_pktopt.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sl_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/sl_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sl_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/baker/CMakeFiles/sl_baker.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
