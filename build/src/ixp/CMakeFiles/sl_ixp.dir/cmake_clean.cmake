file(REMOVE_RECURSE
  "CMakeFiles/sl_ixp.dir/Simulator.cpp.o"
  "CMakeFiles/sl_ixp.dir/Simulator.cpp.o.d"
  "libsl_ixp.a"
  "libsl_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
