file(REMOVE_RECURSE
  "libsl_ixp.a"
)
