# Empty compiler generated dependencies file for sl_ixp.
# This may be replaced when dependencies are built.
