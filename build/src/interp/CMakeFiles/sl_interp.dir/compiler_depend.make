# Empty compiler generated dependencies file for sl_interp.
# This may be replaced when dependencies are built.
