file(REMOVE_RECURSE
  "CMakeFiles/sl_interp.dir/Interp.cpp.o"
  "CMakeFiles/sl_interp.dir/Interp.cpp.o.d"
  "libsl_interp.a"
  "libsl_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
