file(REMOVE_RECURSE
  "libsl_interp.a"
)
