file(REMOVE_RECURSE
  "CMakeFiles/sl_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/sl_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/sl_support.dir/StringUtils.cpp.o"
  "CMakeFiles/sl_support.dir/StringUtils.cpp.o.d"
  "libsl_support.a"
  "libsl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
