# Empty dependencies file for sl_support.
# This may be replaced when dependencies are built.
