file(REMOVE_RECURSE
  "libsl_support.a"
)
