file(REMOVE_RECURSE
  "CMakeFiles/sl_map.dir/Aggregation.cpp.o"
  "CMakeFiles/sl_map.dir/Aggregation.cpp.o.d"
  "libsl_map.a"
  "libsl_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
