# Empty compiler generated dependencies file for sl_map.
# This may be replaced when dependencies are built.
