file(REMOVE_RECURSE
  "libsl_map.a"
)
