file(REMOVE_RECURSE
  "libsl_ir.a"
)
