# Empty dependencies file for sl_ir.
# This may be replaced when dependencies are built.
