file(REMOVE_RECURSE
  "CMakeFiles/sl_ir.dir/ASTLower.cpp.o"
  "CMakeFiles/sl_ir.dir/ASTLower.cpp.o.d"
  "CMakeFiles/sl_ir.dir/Clone.cpp.o"
  "CMakeFiles/sl_ir.dir/Clone.cpp.o.d"
  "CMakeFiles/sl_ir.dir/Dominators.cpp.o"
  "CMakeFiles/sl_ir.dir/Dominators.cpp.o.d"
  "CMakeFiles/sl_ir.dir/Instr.cpp.o"
  "CMakeFiles/sl_ir.dir/Instr.cpp.o.d"
  "CMakeFiles/sl_ir.dir/Printer.cpp.o"
  "CMakeFiles/sl_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/sl_ir.dir/Verifier.cpp.o"
  "CMakeFiles/sl_ir.dir/Verifier.cpp.o.d"
  "libsl_ir.a"
  "libsl_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
