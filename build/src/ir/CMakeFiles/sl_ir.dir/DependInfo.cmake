
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/ASTLower.cpp" "src/ir/CMakeFiles/sl_ir.dir/ASTLower.cpp.o" "gcc" "src/ir/CMakeFiles/sl_ir.dir/ASTLower.cpp.o.d"
  "/root/repo/src/ir/Clone.cpp" "src/ir/CMakeFiles/sl_ir.dir/Clone.cpp.o" "gcc" "src/ir/CMakeFiles/sl_ir.dir/Clone.cpp.o.d"
  "/root/repo/src/ir/Dominators.cpp" "src/ir/CMakeFiles/sl_ir.dir/Dominators.cpp.o" "gcc" "src/ir/CMakeFiles/sl_ir.dir/Dominators.cpp.o.d"
  "/root/repo/src/ir/Instr.cpp" "src/ir/CMakeFiles/sl_ir.dir/Instr.cpp.o" "gcc" "src/ir/CMakeFiles/sl_ir.dir/Instr.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/ir/CMakeFiles/sl_ir.dir/Printer.cpp.o" "gcc" "src/ir/CMakeFiles/sl_ir.dir/Printer.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/sl_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/sl_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baker/CMakeFiles/sl_baker.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
