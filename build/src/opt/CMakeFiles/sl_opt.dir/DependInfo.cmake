
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/ConstFold.cpp" "src/opt/CMakeFiles/sl_opt.dir/ConstFold.cpp.o" "gcc" "src/opt/CMakeFiles/sl_opt.dir/ConstFold.cpp.o.d"
  "/root/repo/src/opt/DCE.cpp" "src/opt/CMakeFiles/sl_opt.dir/DCE.cpp.o" "gcc" "src/opt/CMakeFiles/sl_opt.dir/DCE.cpp.o.d"
  "/root/repo/src/opt/Inliner.cpp" "src/opt/CMakeFiles/sl_opt.dir/Inliner.cpp.o" "gcc" "src/opt/CMakeFiles/sl_opt.dir/Inliner.cpp.o.d"
  "/root/repo/src/opt/LocalCSE.cpp" "src/opt/CMakeFiles/sl_opt.dir/LocalCSE.cpp.o" "gcc" "src/opt/CMakeFiles/sl_opt.dir/LocalCSE.cpp.o.d"
  "/root/repo/src/opt/Mem2Reg.cpp" "src/opt/CMakeFiles/sl_opt.dir/Mem2Reg.cpp.o" "gcc" "src/opt/CMakeFiles/sl_opt.dir/Mem2Reg.cpp.o.d"
  "/root/repo/src/opt/Pipeline.cpp" "src/opt/CMakeFiles/sl_opt.dir/Pipeline.cpp.o" "gcc" "src/opt/CMakeFiles/sl_opt.dir/Pipeline.cpp.o.d"
  "/root/repo/src/opt/SimplifyCFG.cpp" "src/opt/CMakeFiles/sl_opt.dir/SimplifyCFG.cpp.o" "gcc" "src/opt/CMakeFiles/sl_opt.dir/SimplifyCFG.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/baker/CMakeFiles/sl_baker.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
