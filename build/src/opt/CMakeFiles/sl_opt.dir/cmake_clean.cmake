file(REMOVE_RECURSE
  "CMakeFiles/sl_opt.dir/ConstFold.cpp.o"
  "CMakeFiles/sl_opt.dir/ConstFold.cpp.o.d"
  "CMakeFiles/sl_opt.dir/DCE.cpp.o"
  "CMakeFiles/sl_opt.dir/DCE.cpp.o.d"
  "CMakeFiles/sl_opt.dir/Inliner.cpp.o"
  "CMakeFiles/sl_opt.dir/Inliner.cpp.o.d"
  "CMakeFiles/sl_opt.dir/LocalCSE.cpp.o"
  "CMakeFiles/sl_opt.dir/LocalCSE.cpp.o.d"
  "CMakeFiles/sl_opt.dir/Mem2Reg.cpp.o"
  "CMakeFiles/sl_opt.dir/Mem2Reg.cpp.o.d"
  "CMakeFiles/sl_opt.dir/Pipeline.cpp.o"
  "CMakeFiles/sl_opt.dir/Pipeline.cpp.o.d"
  "CMakeFiles/sl_opt.dir/SimplifyCFG.cpp.o"
  "CMakeFiles/sl_opt.dir/SimplifyCFG.cpp.o.d"
  "libsl_opt.a"
  "libsl_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
