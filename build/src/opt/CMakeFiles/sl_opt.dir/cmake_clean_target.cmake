file(REMOVE_RECURSE
  "libsl_opt.a"
)
