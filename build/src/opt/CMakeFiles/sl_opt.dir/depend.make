# Empty dependencies file for sl_opt.
# This may be replaced when dependencies are built.
