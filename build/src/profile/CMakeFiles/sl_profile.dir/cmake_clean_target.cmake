file(REMOVE_RECURSE
  "libsl_profile.a"
)
