
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/Profiler.cpp" "src/profile/CMakeFiles/sl_profile.dir/Profiler.cpp.o" "gcc" "src/profile/CMakeFiles/sl_profile.dir/Profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/sl_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/baker/CMakeFiles/sl_baker.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
