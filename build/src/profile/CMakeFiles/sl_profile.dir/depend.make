# Empty dependencies file for sl_profile.
# This may be replaced when dependencies are built.
