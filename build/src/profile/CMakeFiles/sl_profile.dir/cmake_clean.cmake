file(REMOVE_RECURSE
  "CMakeFiles/sl_profile.dir/Profiler.cpp.o"
  "CMakeFiles/sl_profile.dir/Profiler.cpp.o.d"
  "libsl_profile.a"
  "libsl_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
