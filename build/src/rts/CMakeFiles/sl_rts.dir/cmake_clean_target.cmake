file(REMOVE_RECURSE
  "libsl_rts.a"
)
