# Empty dependencies file for sl_rts.
# This may be replaced when dependencies are built.
