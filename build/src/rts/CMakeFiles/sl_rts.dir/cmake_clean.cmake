file(REMOVE_RECURSE
  "CMakeFiles/sl_rts.dir/MemoryMap.cpp.o"
  "CMakeFiles/sl_rts.dir/MemoryMap.cpp.o.d"
  "libsl_rts.a"
  "libsl_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
