file(REMOVE_RECURSE
  "CMakeFiles/sl_baker.dir/Frontend.cpp.o"
  "CMakeFiles/sl_baker.dir/Frontend.cpp.o.d"
  "CMakeFiles/sl_baker.dir/Lexer.cpp.o"
  "CMakeFiles/sl_baker.dir/Lexer.cpp.o.d"
  "CMakeFiles/sl_baker.dir/Parser.cpp.o"
  "CMakeFiles/sl_baker.dir/Parser.cpp.o.d"
  "CMakeFiles/sl_baker.dir/Sema.cpp.o"
  "CMakeFiles/sl_baker.dir/Sema.cpp.o.d"
  "libsl_baker.a"
  "libsl_baker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_baker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
