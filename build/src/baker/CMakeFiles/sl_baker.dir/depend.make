# Empty dependencies file for sl_baker.
# This may be replaced when dependencies are built.
