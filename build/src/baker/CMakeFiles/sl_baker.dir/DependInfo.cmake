
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baker/Frontend.cpp" "src/baker/CMakeFiles/sl_baker.dir/Frontend.cpp.o" "gcc" "src/baker/CMakeFiles/sl_baker.dir/Frontend.cpp.o.d"
  "/root/repo/src/baker/Lexer.cpp" "src/baker/CMakeFiles/sl_baker.dir/Lexer.cpp.o" "gcc" "src/baker/CMakeFiles/sl_baker.dir/Lexer.cpp.o.d"
  "/root/repo/src/baker/Parser.cpp" "src/baker/CMakeFiles/sl_baker.dir/Parser.cpp.o" "gcc" "src/baker/CMakeFiles/sl_baker.dir/Parser.cpp.o.d"
  "/root/repo/src/baker/Sema.cpp" "src/baker/CMakeFiles/sl_baker.dir/Sema.cpp.o" "gcc" "src/baker/CMakeFiles/sl_baker.dir/Sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
