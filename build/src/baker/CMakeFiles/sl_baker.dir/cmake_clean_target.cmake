file(REMOVE_RECURSE
  "libsl_baker.a"
)
