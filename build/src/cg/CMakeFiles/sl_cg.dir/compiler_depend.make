# Empty compiler generated dependencies file for sl_cg.
# This may be replaced when dependencies are built.
