file(REMOVE_RECURSE
  "CMakeFiles/sl_cg.dir/Lowering.cpp.o"
  "CMakeFiles/sl_cg.dir/Lowering.cpp.o.d"
  "CMakeFiles/sl_cg.dir/MEIR.cpp.o"
  "CMakeFiles/sl_cg.dir/MEIR.cpp.o.d"
  "CMakeFiles/sl_cg.dir/RegAlloc.cpp.o"
  "CMakeFiles/sl_cg.dir/RegAlloc.cpp.o.d"
  "CMakeFiles/sl_cg.dir/StackLayout.cpp.o"
  "CMakeFiles/sl_cg.dir/StackLayout.cpp.o.d"
  "CMakeFiles/sl_cg.dir/Wcet.cpp.o"
  "CMakeFiles/sl_cg.dir/Wcet.cpp.o.d"
  "libsl_cg.a"
  "libsl_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
