file(REMOVE_RECURSE
  "libsl_cg.a"
)
