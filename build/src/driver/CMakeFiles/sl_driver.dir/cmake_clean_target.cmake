file(REMOVE_RECURSE
  "libsl_driver.a"
)
