file(REMOVE_RECURSE
  "CMakeFiles/sl_driver.dir/Compiler.cpp.o"
  "CMakeFiles/sl_driver.dir/Compiler.cpp.o.d"
  "libsl_driver.a"
  "libsl_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
