# Empty compiler generated dependencies file for sl_driver.
# This may be replaced when dependencies are built.
