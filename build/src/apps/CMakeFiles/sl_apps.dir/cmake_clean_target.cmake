file(REMOVE_RECURSE
  "libsl_apps.a"
)
