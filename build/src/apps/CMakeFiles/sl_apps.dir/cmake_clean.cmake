file(REMOVE_RECURSE
  "CMakeFiles/sl_apps.dir/Apps.cpp.o"
  "CMakeFiles/sl_apps.dir/Apps.cpp.o.d"
  "libsl_apps.a"
  "libsl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
