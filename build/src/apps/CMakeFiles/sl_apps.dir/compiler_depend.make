# Empty compiler generated dependencies file for sl_apps.
# This may be replaced when dependencies are built.
