file(REMOVE_RECURSE
  "CMakeFiles/sl_pktopt.dir/Pac.cpp.o"
  "CMakeFiles/sl_pktopt.dir/Pac.cpp.o.d"
  "CMakeFiles/sl_pktopt.dir/Phr.cpp.o"
  "CMakeFiles/sl_pktopt.dir/Phr.cpp.o.d"
  "CMakeFiles/sl_pktopt.dir/Soar.cpp.o"
  "CMakeFiles/sl_pktopt.dir/Soar.cpp.o.d"
  "CMakeFiles/sl_pktopt.dir/Swc.cpp.o"
  "CMakeFiles/sl_pktopt.dir/Swc.cpp.o.d"
  "libsl_pktopt.a"
  "libsl_pktopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_pktopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
