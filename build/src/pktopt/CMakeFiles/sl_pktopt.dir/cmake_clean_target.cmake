file(REMOVE_RECURSE
  "libsl_pktopt.a"
)
