# Empty compiler generated dependencies file for sl_pktopt.
# This may be replaced when dependencies are built.
