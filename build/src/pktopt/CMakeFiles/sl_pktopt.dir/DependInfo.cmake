
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pktopt/Pac.cpp" "src/pktopt/CMakeFiles/sl_pktopt.dir/Pac.cpp.o" "gcc" "src/pktopt/CMakeFiles/sl_pktopt.dir/Pac.cpp.o.d"
  "/root/repo/src/pktopt/Phr.cpp" "src/pktopt/CMakeFiles/sl_pktopt.dir/Phr.cpp.o" "gcc" "src/pktopt/CMakeFiles/sl_pktopt.dir/Phr.cpp.o.d"
  "/root/repo/src/pktopt/Soar.cpp" "src/pktopt/CMakeFiles/sl_pktopt.dir/Soar.cpp.o" "gcc" "src/pktopt/CMakeFiles/sl_pktopt.dir/Soar.cpp.o.d"
  "/root/repo/src/pktopt/Swc.cpp" "src/pktopt/CMakeFiles/sl_pktopt.dir/Swc.cpp.o" "gcc" "src/pktopt/CMakeFiles/sl_pktopt.dir/Swc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/sl_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sl_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/baker/CMakeFiles/sl_baker.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
