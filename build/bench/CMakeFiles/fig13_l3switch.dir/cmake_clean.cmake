file(REMOVE_RECURSE
  "CMakeFiles/fig13_l3switch.dir/fig13_l3switch.cpp.o"
  "CMakeFiles/fig13_l3switch.dir/fig13_l3switch.cpp.o.d"
  "fig13_l3switch"
  "fig13_l3switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_l3switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
