# Empty dependencies file for fig13_l3switch.
# This may be replaced when dependencies are built.
