file(REMOVE_RECURSE
  "CMakeFiles/abl_stack_layout.dir/abl_stack_layout.cpp.o"
  "CMakeFiles/abl_stack_layout.dir/abl_stack_layout.cpp.o.d"
  "abl_stack_layout"
  "abl_stack_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_stack_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
