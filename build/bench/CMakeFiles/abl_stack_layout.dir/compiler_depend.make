# Empty compiler generated dependencies file for abl_stack_layout.
# This may be replaced when dependencies are built.
