file(REMOVE_RECURSE
  "CMakeFiles/table1_mem_accesses.dir/table1_mem_accesses.cpp.o"
  "CMakeFiles/table1_mem_accesses.dir/table1_mem_accesses.cpp.o.d"
  "table1_mem_accesses"
  "table1_mem_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mem_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
