# Empty dependencies file for table1_mem_accesses.
# This may be replaced when dependencies are built.
