# Empty compiler generated dependencies file for abl_swc_checkrate.
# This may be replaced when dependencies are built.
