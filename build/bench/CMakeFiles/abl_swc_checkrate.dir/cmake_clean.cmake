file(REMOVE_RECURSE
  "CMakeFiles/abl_swc_checkrate.dir/abl_swc_checkrate.cpp.o"
  "CMakeFiles/abl_swc_checkrate.dir/abl_swc_checkrate.cpp.o.d"
  "abl_swc_checkrate"
  "abl_swc_checkrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_swc_checkrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
