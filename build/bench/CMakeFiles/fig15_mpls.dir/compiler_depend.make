# Empty compiler generated dependencies file for fig15_mpls.
# This may be replaced when dependencies are built.
