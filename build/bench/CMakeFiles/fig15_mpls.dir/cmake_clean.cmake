file(REMOVE_RECURSE
  "CMakeFiles/fig15_mpls.dir/fig15_mpls.cpp.o"
  "CMakeFiles/fig15_mpls.dir/fig15_mpls.cpp.o.d"
  "fig15_mpls"
  "fig15_mpls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_mpls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
