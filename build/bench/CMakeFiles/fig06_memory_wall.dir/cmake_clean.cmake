file(REMOVE_RECURSE
  "CMakeFiles/fig06_memory_wall.dir/fig06_memory_wall.cpp.o"
  "CMakeFiles/fig06_memory_wall.dir/fig06_memory_wall.cpp.o.d"
  "fig06_memory_wall"
  "fig06_memory_wall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_memory_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
