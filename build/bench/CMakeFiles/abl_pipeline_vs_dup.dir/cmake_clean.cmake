file(REMOVE_RECURSE
  "CMakeFiles/abl_pipeline_vs_dup.dir/abl_pipeline_vs_dup.cpp.o"
  "CMakeFiles/abl_pipeline_vs_dup.dir/abl_pipeline_vs_dup.cpp.o.d"
  "abl_pipeline_vs_dup"
  "abl_pipeline_vs_dup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pipeline_vs_dup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
