# Empty dependencies file for abl_pipeline_vs_dup.
# This may be replaced when dependencies are built.
