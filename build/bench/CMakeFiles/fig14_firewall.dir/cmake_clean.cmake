file(REMOVE_RECURSE
  "CMakeFiles/fig14_firewall.dir/fig14_firewall.cpp.o"
  "CMakeFiles/fig14_firewall.dir/fig14_firewall.cpp.o.d"
  "fig14_firewall"
  "fig14_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
