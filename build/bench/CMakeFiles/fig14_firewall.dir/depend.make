# Empty dependencies file for fig14_firewall.
# This may be replaced when dependencies are built.
