file(REMOVE_RECURSE
  "CMakeFiles/baker_explorer.dir/baker_explorer.cpp.o"
  "CMakeFiles/baker_explorer.dir/baker_explorer.cpp.o.d"
  "baker_explorer"
  "baker_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baker_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
