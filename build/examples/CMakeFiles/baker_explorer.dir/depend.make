# Empty dependencies file for baker_explorer.
# This may be replaced when dependencies are built.
