# Empty compiler generated dependencies file for l3switch_demo.
# This may be replaced when dependencies are built.
