file(REMOVE_RECURSE
  "CMakeFiles/l3switch_demo.dir/l3switch_demo.cpp.o"
  "CMakeFiles/l3switch_demo.dir/l3switch_demo.cpp.o.d"
  "l3switch_demo"
  "l3switch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l3switch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
