file(REMOVE_RECURSE
  "CMakeFiles/mpls_demo.dir/mpls_demo.cpp.o"
  "CMakeFiles/mpls_demo.dir/mpls_demo.cpp.o.d"
  "mpls_demo"
  "mpls_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpls_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
