
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mpls_demo.cpp" "examples/CMakeFiles/mpls_demo.dir/mpls_demo.cpp.o" "gcc" "examples/CMakeFiles/mpls_demo.dir/mpls_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sl_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/sl_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/ixp/CMakeFiles/sl_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/cg/CMakeFiles/sl_cg.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/sl_map.dir/DependInfo.cmake"
  "/root/repo/build/src/pktopt/CMakeFiles/sl_pktopt.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sl_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/sl_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sl_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/sl_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/baker/CMakeFiles/sl_baker.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
