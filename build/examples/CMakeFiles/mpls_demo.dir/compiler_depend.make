# Empty compiler generated dependencies file for mpls_demo.
# This may be replaced when dependencies are built.
