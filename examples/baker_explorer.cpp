//===- examples/baker_explorer.cpp - compiler explorer for Baker ---------------==//
//
// Reads a Baker source file (or uses a built-in sample) and dumps each
// compilation stage: the IR after lowering, after the scalar pipeline,
// after PAC+SOAR (with !soar annotations), and finally the MEIR listing
// with register allocation applied. Useful for studying what each paper
// optimization does to real code.
//
// Usage: baker_explorer [file.bk] [--base|--o1|--o2|--pac|--soar|--phr|--swc]
//                       [--opt-report[=]<file>] [--compile-trace[=]<file>]
//                       [--print-ir-after[=]<pass>]
//
// --opt-report writes the machine-readable JSON opt-report (per-pass wall
// time, IR deltas, PAC/SOAR/PHR/SWC remarks); --compile-trace writes a
// Chrome-trace view of compile time; --print-ir-after dumps the IR after
// the named phase (o1, o2, phr, pac, soar, ... or "*" for all).
//
//===----------------------------------------------------------------------===//

#include "cg/Lowering.h"
#include "cg/RegAlloc.h"
#include "cg/StackLayout.h"
#include "ir/ASTLower.h"
#include "ir/Printer.h"
#include "map/Aggregation.h"
#include "obs/OptReport.h"
#include "opt/Passes.h"
#include "pktopt/Pac.h"
#include "pktopt/Phr.h"
#include "pktopt/Soar.h"
#include "pktopt/Swc.h"
#include "profile/Profiler.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

using namespace sl;

static const char *Sample = R"(
protocol ether { dst : 48; src : 48; type : 16; demux { 14 }; };
protocol ipv4 {
  ver : 4; hlen : 4; tos : 8; total_len : 16; id : 16; fl : 16;
  ttl : 8; proto : 8; checksum : 16; saddr : 32; daddr : 32;
  demux { hlen << 2 };
};
metadata { tx_port : 16; };

module sample {
  u32 nexthop[256];
  u32 drops;

  ppf fwd(ether_pkt * ph) {
    if (ph->type != 0x0800) {
      drops = drops + 1;
      packet_drop(ph);
      return;
    }
    ipv4_pkt * iph = packet_decap(ph);
    u32 nh = nexthop[iph->daddr & 255];
    if (nh == 0 || iph->ttl <= 1) {
      drops = drops + 1;
      packet_drop(iph);
      return;
    }
    iph->ttl = iph->ttl - 1;
    iph->meta.tx_port = nh;
    ether_pkt * out = packet_encap(iph);
    channel_put(tx, out);
  }

  wire rx -> fwd;
}
)";

/// "--flag value" or "--flag=value"; consumes the value argv slot too.
static const char *flagValue(int argc, char **argv, int &I,
                             const char *Flag) {
  size_t N = std::strlen(Flag);
  if (std::strcmp(argv[I], Flag) == 0 && I + 1 < argc)
    return argv[++I];
  if (std::strncmp(argv[I], Flag, N) == 0 && argv[I][N] == '=')
    return argv[I] + N + 1;
  return nullptr;
}

int main(int argc, char **argv) {
  std::string Source = Sample;
  bool DoO1 = true, DoO2 = true, DoPac = true, DoSoar = true, DoPhr = true,
       DoSwc = true;
  const char *ReportPath = nullptr, *TracePath = nullptr,
             *PrintAfter = nullptr;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--base")
      DoO1 = DoO2 = DoPac = DoSoar = DoPhr = DoSwc = false;
    else if (Arg == "--o1")
      DoO2 = DoPac = DoSoar = DoPhr = DoSwc = false;
    else if (Arg == "--o2")
      DoPac = DoSoar = DoPhr = DoSwc = false;
    else if (Arg == "--pac")
      DoSoar = DoPhr = DoSwc = false;
    else if (Arg == "--soar")
      DoPhr = DoSwc = false;
    else if (Arg == "--phr")
      DoSwc = false;
    else if (Arg == "--swc")
      ; // Everything on.
    else if (const char *V = flagValue(argc, argv, I, "--opt-report"))
      ReportPath = V;
    else if (const char *V = flagValue(argc, argv, I, "--compile-trace"))
      TracePath = V;
    else if (const char *V = flagValue(argc, argv, I, "--print-ir-after"))
      PrintAfter = V;
    else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "cannot open %s\n", Arg.c_str());
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Source = SS.str();
    }
  }

  std::unique_ptr<obs::CompileObserver> Obs;
  if (ReportPath || TracePath)
    Obs = std::make_unique<obs::CompileObserver>();
  obs::RemarkEmitter *Rem = Obs ? &Obs->Remarks : nullptr;

  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Source, Diags);
  if (!Unit) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  auto M = ir::lowerProgram(*Unit, Diags);

  std::printf("=== IR after lowering ===\n%s\n",
              ir::printModule(*M).c_str());

  // A tiny synthetic profile (uniform) so aggregation has data.
  profile::Profiler Prof(*M);
  profile::Trace T;
  for (unsigned I = 0; I != 32; ++I) {
    std::vector<uint8_t> F(64, 0);
    F[12] = 0x08;
    T.push_back({F, 0});
  }
  profile::ProfileData PD = Prof.run(T);

  map::MapParams MP;
  map::MappingPlan Plan = map::formAggregates(*M, PD, MP);
  map::applyPlan(*M, Plan);
  opt::inlineCalls(*M);
  std::printf("=== aggregation ===\n%s\n", Plan.Log.empty()
                                               ? "(single aggregate)\n"
                                               : Plan.Log.c_str());

  auto dumpAfter = [&](const char *Phase) {
    if (PrintAfter && (std::strcmp(PrintAfter, "*") == 0 ||
                       std::strcmp(PrintAfter, Phase) == 0))
      std::printf("=== IR after %s ===\n%s\n", Phase,
                  ir::printModule(*M).c_str());
  };
  auto beginP = [&](const char *Name) {
    return Obs ? Obs->beginPass(Name, M.get()) : size_t(0);
  };
  auto endP = [&](size_t Tok, unsigned Rounds = 0) {
    if (Obs)
      Obs->endPass(Tok, M.get(), Rounds);
  };

  if (DoO1) {
    size_t Tok = beginP("o1");
    endP(Tok, opt::runO1(*M, Rem));
    dumpAfter("o1");
  }
  if (DoO2) {
    size_t Tok = beginP("o2");
    endP(Tok, opt::runO2(*M, Rem));
    dumpAfter("o2");
  }
  if (DoPhr) {
    size_t Tok = beginP("phr");
    pktopt::localizeMetadata(*M, Rem);
    endP(Tok);
    dumpAfter("phr");
    Tok = beginP("phr-cleanup");
    endP(Tok, opt::runO1(*M, Rem));
    dumpAfter("phr-cleanup");
  }
  if (DoPac) {
    size_t Tok = beginP("pac");
    pktopt::PacResult PR = pktopt::runPac(*M, Rem);
    endP(Tok);
    std::printf("=== PAC: combined %u loads into %u wide loads, "
                "%u stores into %u wide stores ===\n",
                PR.CombinedLoads, PR.WideLoads, PR.CombinedStores,
                PR.WideStores);
    dumpAfter("pac");
  }
  if (DoSoar) {
    size_t Tok = beginP("soar");
    pktopt::SoarResult SR = pktopt::runSoar(*M, Rem);
    endP(Tok);
    std::printf("=== SOAR: %u of %u packet accesses statically "
                "resolved ===\n",
                SR.ResolvedAccesses, SR.TotalAccesses);
    dumpAfter("soar");
  }
  if (DoSwc) {
    size_t Tok = beginP("swc");
    pktopt::SwcResult SR =
        pktopt::runSwc(*M, PD, pktopt::SwcParams(), Rem);
    endP(Tok);
    std::printf("=== SWC: %zu table(s) selected for software-controlled "
                "caching ===\n",
                SR.Cached.size());
    dumpAfter("swc");
  }
  std::printf("\n=== IR after optimization ===\n%s\n",
              ir::printModule(*M).c_str());

  // Lower the entry aggregate to MEIR.
  rts::MemoryMap Map = rts::buildMemoryMap(*M);
  cg::CgConfig Cfg;
  Cfg.InlineExpansion = DoO2;
  Cfg.UseSoar = DoSoar;
  Cfg.Phr = DoPhr;
  Cfg.Swc = DoSwc;
  Cfg.Rem = Rem;
  std::vector<cg::RootInput> Roots{{M->EntryPpf, rts::RxRing}};
  cg::LoweredAggregate Low =
      cg::lowerAggregate(*M, Map, Cfg, Roots, M->EntryPpf->name());
  cg::RegAllocStats RA = cg::allocateRegisters(Low);
  cg::StackLayoutStats SL = cg::layoutStack(Low, Map, true);

  std::printf("=== MEIR (%u slots; RA: %u bank copies, %u spills; stack: "
              "%u words) ===\n%s",
              Low.Code.codeSlots(), RA.BankCopies, RA.SpilledRegs,
              SL.TotalWords, cg::printMCode(Low.Code).c_str());

  if (Obs) {
    Obs->finalize();
    if (ReportPath) {
      std::ofstream OS(ReportPath);
      if (!OS) {
        std::fprintf(stderr, "cannot open %s for writing\n", ReportPath);
        return 1;
      }
      Obs->writeJson(OS);
      std::fprintf(stderr, "opt-report (%zu passes, %zu remarks) -> %s\n",
                   Obs->passes().size(), Obs->Remarks.remarks().size(),
                   ReportPath);
    }
    if (TracePath) {
      std::ofstream OS(TracePath);
      if (!OS) {
        std::fprintf(stderr, "cannot open %s for writing\n", TracePath);
        return 1;
      }
      Obs->exportChromeTrace(OS);
      std::fprintf(stderr, "compile-trace -> %s\n", TracePath);
    }
  }
  return 0;
}
