//===- examples/baker_explorer.cpp - compiler explorer for Baker ---------------==//
//
// Reads a Baker source file (or uses a built-in sample) and dumps each
// compilation stage: the IR after lowering, after the scalar pipeline,
// after PAC+SOAR (with !soar annotations), and finally the MEIR listing
// with register allocation applied. Useful for studying what each paper
// optimization does to real code.
//
// Usage: baker_explorer [file.bk] [--base|--o1|--o2|--pac|--soar|--phr|--swc]
//
//===----------------------------------------------------------------------===//

#include "cg/Lowering.h"
#include "cg/RegAlloc.h"
#include "cg/StackLayout.h"
#include "ir/ASTLower.h"
#include "ir/Printer.h"
#include "map/Aggregation.h"
#include "opt/Passes.h"
#include "pktopt/Pac.h"
#include "pktopt/Phr.h"
#include "pktopt/Soar.h"
#include "profile/Profiler.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace sl;

static const char *Sample = R"(
protocol ether { dst : 48; src : 48; type : 16; demux { 14 }; };
protocol ipv4 {
  ver : 4; hlen : 4; tos : 8; total_len : 16; id : 16; fl : 16;
  ttl : 8; proto : 8; checksum : 16; saddr : 32; daddr : 32;
  demux { hlen << 2 };
};
metadata { tx_port : 16; };

module sample {
  u32 nexthop[256];
  u32 drops;

  ppf fwd(ether_pkt * ph) {
    if (ph->type != 0x0800) {
      drops = drops + 1;
      packet_drop(ph);
      return;
    }
    ipv4_pkt * iph = packet_decap(ph);
    u32 nh = nexthop[iph->daddr & 255];
    if (nh == 0 || iph->ttl <= 1) {
      drops = drops + 1;
      packet_drop(iph);
      return;
    }
    iph->ttl = iph->ttl - 1;
    iph->meta.tx_port = nh;
    ether_pkt * out = packet_encap(iph);
    channel_put(tx, out);
  }

  wire rx -> fwd;
}
)";

int main(int argc, char **argv) {
  std::string Source = Sample;
  bool DoO1 = true, DoO2 = true, DoPac = true, DoSoar = true, DoPhr = true;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--base")
      DoO1 = DoO2 = DoPac = DoSoar = DoPhr = false;
    else if (Arg == "--o1")
      DoO2 = DoPac = DoSoar = DoPhr = false;
    else if (Arg == "--o2")
      DoPac = DoSoar = DoPhr = false;
    else if (Arg == "--pac")
      DoSoar = DoPhr = false;
    else if (Arg == "--soar")
      DoPhr = false;
    else if (Arg == "--phr" || Arg == "--swc")
      ; // Everything on.
    else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "cannot open %s\n", Arg.c_str());
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Source = SS.str();
    }
  }

  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(Source, Diags);
  if (!Unit) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  auto M = ir::lowerProgram(*Unit, Diags);

  std::printf("=== IR after lowering ===\n%s\n",
              ir::printModule(*M).c_str());

  // A tiny synthetic profile (uniform) so aggregation has data.
  profile::Profiler Prof(*M);
  profile::Trace T;
  for (unsigned I = 0; I != 32; ++I) {
    std::vector<uint8_t> F(64, 0);
    F[12] = 0x08;
    T.push_back({F, 0});
  }
  profile::ProfileData PD = Prof.run(T);

  map::MapParams MP;
  map::MappingPlan Plan = map::formAggregates(*M, PD, MP);
  map::applyPlan(*M, Plan);
  opt::inlineCalls(*M);
  std::printf("=== aggregation ===\n%s\n", Plan.Log.empty()
                                               ? "(single aggregate)\n"
                                               : Plan.Log.c_str());

  if (DoO1)
    opt::runO1(*M);
  if (DoO2)
    opt::runO2(*M);
  if (DoPhr) {
    pktopt::localizeMetadata(*M);
    opt::runO1(*M);
  }
  if (DoPac) {
    pktopt::PacResult PR = pktopt::runPac(*M);
    std::printf("=== PAC: combined %u loads into %u wide loads, "
                "%u stores into %u wide stores ===\n",
                PR.CombinedLoads, PR.WideLoads, PR.CombinedStores,
                PR.WideStores);
  }
  if (DoSoar) {
    pktopt::SoarResult SR = pktopt::runSoar(*M);
    std::printf("=== SOAR: %u of %u packet accesses statically "
                "resolved ===\n",
                SR.ResolvedAccesses, SR.TotalAccesses);
  }
  std::printf("\n=== IR after optimization ===\n%s\n",
              ir::printModule(*M).c_str());

  // Lower the entry aggregate to MEIR.
  rts::MemoryMap Map = rts::buildMemoryMap(*M);
  cg::CgConfig Cfg;
  Cfg.InlineExpansion = DoO2;
  Cfg.UseSoar = DoSoar;
  Cfg.Phr = DoPhr;
  std::vector<cg::RootInput> Roots{{M->EntryPpf, rts::RxRing}};
  cg::LoweredAggregate Low =
      cg::lowerAggregate(*M, Map, Cfg, Roots, M->EntryPpf->name());
  cg::RegAllocStats RA = cg::allocateRegisters(Low);
  cg::StackLayoutStats SL = cg::layoutStack(Low, Map, true);

  std::printf("=== MEIR (%u slots; RA: %u bank copies, %u spills; stack: "
              "%u words) ===\n%s",
              Low.Code.codeSlots(), RA.BankCopies, RA.SpilledRegs,
              SL.TotalWords, cg::printMCode(Low.Code).c_str());
  return 0;
}
