//===- examples/mpls_demo.cpp - the paper's MPLS forwarder, end to end ---------==//
//
// Walks one packet through each label operation (ingress push, swap,
// swap+push, pop) on the compiled simulator and shows why MPLS is the
// paper's poster child for SOAR: label stacks make header offsets
// data-dependent (Figure 9), so static resolution only goes so deep.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "bench/BenchCommon.h"
#include "interp/Bits.h"

#include <cstdio>

using namespace sl;
using namespace sl::bench;

namespace {

void showFrame(const char *What, const std::vector<uint8_t> &F) {
  uint64_t Type = interp::readBitsBE(F.data(), 96, 16);
  std::printf("  %-28s %zuB, ethertype %04llX", What, F.size(),
              (unsigned long long)Type);
  if (Type == 0x8847) {
    size_t Off = 14;
    std::printf(", labels:");
    while (Off + 4 <= F.size()) {
      uint64_t Label = interp::readBitsBE(F.data(), Off * 8, 20);
      uint64_t S = interp::readBitsBE(F.data(), Off * 8 + 23, 1);
      std::printf(" %llu", (unsigned long long)Label);
      Off += 4;
      if (S)
        break;
    }
  }
  std::printf("\n");
}

} // namespace

int main() {
  apps::AppBundle App = apps::mpls();
  auto Compiled = compileApp(App, driver::OptLevel::Swc, 1);
  if (!Compiled)
    return 1;

  auto sendOne = [&](std::vector<uint8_t> Frame) {
    ixp::ChipParams Chip;
    Chip.ThreadsPerME = 1;
    auto Sim = driver::makeSimulator(*Compiled, Chip);
    Sim->enableCapture();
    Sim->setMaxInjected(1);
    ixp::SimPacket P{std::move(Frame), 0};
    Sim->setTraffic([&P](uint64_t I) { return I == 0 ? &P : nullptr; });
    Sim->run(1'000'000);
    return Sim->captured().empty() ? std::vector<uint8_t>()
                                   : Sim->captured()[0].Frame;
  };

  auto labeled = [](uint32_t Label, bool Bottom) {
    std::vector<uint8_t> F(64, 0);
    interp::writeBitsBE(F.data(), 96, 16, 0x8847);
    interp::writeBitsBE(F.data(), 14 * 8, 20, Label);
    interp::writeBitsBE(F.data(), 14 * 8 + 23, 1, Bottom ? 1 : 0);
    interp::writeBitsBE(F.data(), 14 * 8 + 24, 8, 40);
    if (!Bottom) { // Second (bottom) label underneath.
      interp::writeBitsBE(F.data(), 18 * 8, 20, 777);
      interp::writeBitsBE(F.data(), 18 * 8 + 23, 1, 1);
      interp::writeBitsBE(F.data(), 18 * 8 + 24, 8, 40);
    }
    return F;
  };

  std::printf("MPLS label operations on the simulated IXP2400:\n\n");

  // Ingress: IP packet gets a label pushed.
  std::vector<uint8_t> Ip(64, 0);
  interp::writeBitsBE(Ip.data(), 96, 16, 0x0800);
  interp::writeBitsBE(Ip.data(), 14 * 8 + 0, 4, 4);
  interp::writeBitsBE(Ip.data(), 14 * 8 + 4, 4, 5);
  interp::writeBitsBE(Ip.data(), 14 * 8 + 64, 8, 64);
  interp::writeBitsBE(Ip.data(), 14 * 8 + 128, 32, 0x0B000001);
  showFrame("ingress in (IPv4)", Ip);
  showFrame("ingress out", sendOne(Ip));
  std::printf("\n");

  showFrame("swap in (label 18)", labeled(18, true));
  showFrame("swap out", sendOne(labeled(18, true)));
  std::printf("\n");

  showFrame("swap+push in (label 16)", labeled(16, true));
  showFrame("swap+push out", sendOne(labeled(16, true)));
  std::printf("\n");

  showFrame("pop in (label 17 over 777)", labeled(17, false));
  showFrame("pop out", sendOne(labeled(17, false)));

  // Performance at the ladder's ends (the paper: MPLS reaches 3 Gbps).
  std::printf("\nforwarding under load (6 MEs):\n");
  profile::Trace Traffic = App.makeTrace(5, 512);
  for (driver::OptLevel L :
       {driver::OptLevel::Base, driver::OptLevel::Pac, driver::OptLevel::Swc}) {
    auto C = compileApp(App, L, 6);
    if (!C)
      return 1;
    ForwardResult R = runForwarding(*C, Traffic, 400'000);
    std::printf("  %-6s: %5.2f Gbps\n", driver::optLevelName(L), R.Gbps);
  }
  return 0;
}
