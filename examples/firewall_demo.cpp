//===- examples/firewall_demo.cpp - the paper's Firewall, end to end -----------==//
//
// Shows the ordered-rule classifier in action: compiles the Firewall,
// replays a labeled mix of traffic, and reports allow/deny decisions and
// the cost of classification before and after the software-controlled
// cache (SWC) kicks in.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "bench/BenchCommon.h"
#include "interp/Bits.h"
#include "interp/Interp.h"
#include "ir/ASTLower.h"

#include <cstdio>

using namespace sl;
using namespace sl::bench;

int main() {
  apps::AppBundle App = apps::firewall();

  // Functional walkthrough on the reference interpreter.
  DiagEngine Diags;
  auto Unit = baker::parseAndAnalyze(App.Source, Diags);
  auto M = ir::lowerProgram(*Unit, Diags);
  interp::Interpreter I(*M);
  for (const auto &T : App.Tables)
    I.writeGlobal(T.Global, T.Index, T.Value);

  auto classify = [&](const char *What, uint32_t Sa, uint32_t Da,
                      uint16_t Sp, uint16_t Dp, uint8_t Proto) {
    std::vector<uint8_t> F(64, 0);
    interp::writeBitsBE(F.data(), 96, 16, 0x0800);
    interp::writeBitsBE(F.data(), 14 * 8 + 0, 4, 4);
    interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
    interp::writeBitsBE(F.data(), 14 * 8 + 72, 8, Proto);
    interp::writeBitsBE(F.data(), 14 * 8 + 96, 32, Sa);
    interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, Da);
    interp::writeBitsBE(F.data(), 34 * 8, 16, Sp);
    interp::writeBitsBE(F.data(), 34 * 8 + 16, 16, Dp);
    auto R = I.inject(F, 0);
    if (R.Tx.empty()) {
      std::printf("  %-34s -> DENY\n", What);
    } else {
      uint64_t Flow = interp::readBitsBE(R.Tx[0].Meta.data(), 32, 16);
      std::printf("  %-34s -> ALLOW (flow/rule %llu)\n", What,
                  (unsigned long long)Flow);
    }
  };

  std::printf("firewall decisions (%llu-rule ordered classifier):\n",
              (unsigned long long)I.readGlobal("num_rules", 0));
  classify("web 10.2.x -> 172.16, dport 82", 0x0A020001, 0xAC100005, 4000,
           82, 6);
  classify("dns 10.9.x -> 172.16.0, udp 53", 0x0A090001, 0xAC100101, 4000,
           53, 17);
  classify("telnet probe -> 172.16.0.x", 0x0A070001, 0xAC100004, 31000, 23,
           6);
  classify("noisy subnet 10.5.x anywhere", 0x0A050009, 0x08080808, 5353,
           5353, 17);
  classify("internal 172.16 -> outside", 0xAC100042, 0xD0000001, 5000, 443,
           6);
  classify("peer-to-peer high ports", 0xC0000001, 0xD0000001, 40000, 41000,
           6);
  std::printf("  denied so far: %llu, slow path: %llu\n\n",
              (unsigned long long)I.readGlobal("denied", 0),
              (unsigned long long)I.readGlobal("slow_count", 0));

  // Compiled performance, with and without SWC.
  profile::Trace Traffic = App.makeTrace(7, 512);
  for (driver::OptLevel L : {driver::OptLevel::Phr, driver::OptLevel::Swc}) {
    auto Compiled = compileApp(App, L, /*NumMEs=*/6);
    if (!Compiled)
      return 1;
    ForwardResult R = runForwarding(*Compiled, Traffic, 400'000);
    std::printf("%-6s: %5.2f Gbps, %.1f application SRAM accesses/packet\n",
                driver::optLevelName(L), R.Gbps,
                R.Stats.perPacket(1, cg::MemClass::App) +
                    R.Stats.perPacket(1, cg::MemClass::AppCache));
  }
  return 0;
}
