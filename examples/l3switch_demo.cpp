//===- examples/l3switch_demo.cpp - the paper's L3-Switch, end to end ----------==//
//
// Compiles the L3-Switch application (trie route lookup, MAC bridging, TTL
// and checksum update, ether re-encapsulation) at two optimization levels
// and compares the generated code and achieved forwarding rates — a
// miniature of the paper's Figure 13 experiment, with a functional
// walkthrough of one routed packet.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "bench/BenchCommon.h"
#include "interp/Bits.h"

#include <cstdio>

using namespace sl;
using namespace sl::bench;

int main() {
  apps::AppBundle App = apps::l3switch();
  profile::Trace Traffic = App.makeTrace(2024, 512);

  std::printf("L3-Switch: %zu control-plane table entries, trace of %zu "
              "frames\n\n",
              App.Tables.size(), Traffic.size());

  for (driver::OptLevel L : {driver::OptLevel::Base, driver::OptLevel::Swc}) {
    auto Compiled = compileApp(App, L, /*NumMEs=*/6);
    if (!Compiled)
      return 1;
    ForwardResult R = runForwarding(*Compiled, Traffic, 400'000);
    unsigned Slots = 0;
    for (const auto &Bin : Compiled->Images)
      if (!Bin.OnXScale)
        Slots = std::max(Slots, Bin.Code.CodeSlots);
    std::printf("%-6s: %4u max slots/ME, %5.2f Gbps, "
                "%.1f sram + %.1f dram accesses/packet, %.0f instrs/packet\n",
                driver::optLevelName(L), Slots, R.Gbps,
                R.Stats.perPacketSpace(1), R.Stats.perPacketSpace(2),
                double(R.Stats.Instrs) / double(R.Stats.RxInjected));
  }

  // Functional walkthrough: route one packet and show the rewrite.
  auto Compiled = compileApp(App, driver::OptLevel::Swc, 1);
  ixp::ChipParams Chip;
  Chip.ThreadsPerME = 1;
  auto Sim = driver::makeSimulator(*Compiled, Chip);
  Sim->enableCapture();
  Sim->setMaxInjected(1);

  std::vector<uint8_t> F(64, 0);
  interp::writeBitsBE(F.data(), 0, 48, 0x00AA00000000ull); // to router MAC
  interp::writeBitsBE(F.data(), 96, 16, 0x0800);
  interp::writeBitsBE(F.data(), 14 * 8 + 0, 4, 4);
  interp::writeBitsBE(F.data(), 14 * 8 + 4, 4, 5);
  interp::writeBitsBE(F.data(), 14 * 8 + 64, 8, 61); // TTL
  interp::writeBitsBE(F.data(), 14 * 8 + 128, 32, 0x0A000000u | 7);
  ixp::SimPacket P{F, 0};
  Sim->setTraffic([&P](uint64_t I) { return I == 0 ? &P : nullptr; });
  Sim->run(1'000'000);

  if (Sim->captured().size() == 1) {
    const auto &Out = Sim->captured()[0];
    std::printf("\nrouted one packet to 10.0.0.7:\n");
    std::printf("  dst MAC  : %012llX (next-hop rewrite)\n",
                (unsigned long long)interp::readBitsBE(Out.Frame.data(), 0,
                                                       48));
    std::printf("  TTL      : %llu (decremented from 61)\n",
                (unsigned long long)interp::readBitsBE(Out.Frame.data(),
                                                       14 * 8 + 64, 8));
    std::printf("  tx_port  : %llu (from metadata)\n",
                (unsigned long long)interp::readBitsBE(Out.Meta.data(), 0 + 16,
                                                       16));
  }
  return 0;
}
