//===- examples/quickstart.cpp - 60-second tour of Shangri-La -----------------==//
//
// Compiles a tiny Baker program through the full pipeline (profile ->
// aggregate -> optimize -> MEIR -> register allocation), runs it on the
// simulated IXP2400, and prints what happened. Start here.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "interp/Bits.h"

#include <cstdio>

using namespace sl;
using namespace sl::driver;

// A two-PPF program: classify IPv4 vs everything else, count and stamp an
// output port, forward.
static const char *Source = R"(
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

metadata {
  tx_port : 16;
};

module quickstart {
  u32 seen_ip;
  u32 seen_other;

  ppf classify(ether_pkt * ph) {
    if (ph->type == 0x0800) {
      // Statistics counters are left unprotected on purpose: network code
      // tolerates approximate counters, and a critical section here would
      // serialize every thread on every ME (the paper's error-tolerance
      // argument, Sec. 5.2). Wrap in `critical (stats) { ... }` to see the
      // cost of exactness.
      seen_ip = seen_ip + 1;
      ph->meta.tx_port = ph->meta.rx_port ^ 1;
    } else {
      seen_other = seen_other + 1;
      ph->meta.tx_port = 0;
    }
    channel_put(tx, ph);
  }

  wire rx -> classify;
}
)";

int main() {
  // 1. A profiling trace (the Functional Profiler interprets the program
  //    over it to learn PPF and table access frequencies).
  profile::Trace Trace;
  for (unsigned I = 0; I != 64; ++I) {
    std::vector<uint8_t> F(64, 0);
    if (I % 3 != 0) {
      F[12] = 0x08; // ethertype IPv4
      F[13] = 0x00;
    }
    Trace.push_back({F, static_cast<uint16_t>(I % 4)});
  }

  // 2. Compile at the most optimized level of the paper's ladder.
  CompileOptions Opts;
  Opts.Level = OptLevel::Swc;
  Opts.Map.NumMEs = 2; // Keep lock contention on the stats counters sane.
  Opts.TxMetaFields = {"tx_port"};
  DiagEngine Diags;
  auto App = compile(Source, Trace, {}, Opts, Diags);
  if (!App) {
    std::fprintf(stderr, "compile failed:\n%s", Diags.str().c_str());
    return 1;
  }

  std::printf("== compiled '%s' ==\n", optLevelName(Opts.Level));
  for (const AggregateBinary &Bin : App->Images)
    std::printf("aggregate %-12s %4u instruction-store slots, %u ME(s)%s\n",
                Bin.Code.Name.c_str(), Bin.Code.CodeSlots, Bin.Copies,
                Bin.OnXScale ? " [XScale]" : "");
  std::printf("%s", App->Plan.Log.c_str());

  // 3. Run on the simulated IXP2400 under infinite offered load.
  ixp::ChipParams Chip;
  auto Sim = makeSimulator(*App, Chip);
  Sim->setTraffic([&Trace](uint64_t I) -> const ixp::SimPacket * {
    static ixp::SimPacket P;
    const auto &T = Trace[I % Trace.size()];
    P.Frame = T.Frame;
    P.Port = T.Port;
    return &P;
  });
  ixp::SimStats Stats = Sim->run(400'000);

  std::printf("\n== simulation (%llu cycles @ %.1f GHz, %u MEs) ==\n",
              (unsigned long long)Stats.Cycles, Chip.ClockGHz, Opts.Map.NumMEs);
  std::printf("forwarded       %llu packets (%.2f Gbps on 64B frames)\n",
              (unsigned long long)Stats.TxPackets,
              Stats.forwardingGbps(Chip.ClockGHz));
  std::printf("per packet      %.1f instructions, %.1f scratch / %.1f sram "
              "/ %.1f dram accesses\n",
              double(Stats.Instrs) / double(Stats.RxInjected),
              Stats.perPacketSpace(0), Stats.perPacketSpace(1),
              Stats.perPacketSpace(2));
  ir::Global *SeenIp = App->IR->findGlobal("seen_ip");
  ir::Global *SeenOther = App->IR->findGlobal("seen_other");
  std::printf("counters        seen_ip=%llu seen_other=%llu "
              "(approximate: unprotected increments race by design)\n",
              (unsigned long long)Sim->readGlobal(SeenIp, 0),
              (unsigned long long)Sim->readGlobal(SeenOther, 0));
  return 0;
}
