#!/usr/bin/env bash
# Runs the paper's forwarding benchmarks (Figures 13/14/15), the
# feedback-mapping and channel-specialization ablations, and the
# stateful-tier acceptance benches (NAT / SLB / SYN-flood), each with
# --stats-json, and consolidates the per-bench outputs into one
# BENCH_results.json:
#
#   gbps                  per app, per optimization level, per ME count
#   feedback              static vs feedback pkts/kcycle per app and code store
#   channelSpecialization NN vs scratch-only rings on constrained configs
#   stateful              per-app acceptance: oracle + conservation + SWC
#                         veto reasons + per-profile throughput vs floor
#
# The stateful benches are acceptance tests: any oracle, conservation,
# SWC-legality, floor, or feedback failure exits nonzero both in the
# bench itself (run() aborts via set -e) and in the consolidation below.
#
# Usage: bench/run_benches.sh [--quick] [BUILD_DIR [OUT_DIR]]
#   --quick    shorter simulations (CI mode), forwarded to every bench
#   BUILD_DIR  cmake build tree (default: build)
#   OUT_DIR    where per-bench JSON and BENCH_results.json land
#              (default: BUILD_DIR/bench_results)

set -euo pipefail

QUICK=""
if [[ "${1:-}" == "--quick" ]]; then
  QUICK="--quick"
  shift
fi
BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR/bench_results}"
BENCH_DIR="$BUILD_DIR/bench"

if [[ ! -d "$BENCH_DIR" ]]; then
  echo "error: $BENCH_DIR not found (build the project first)" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

run() {
  local name="$1"
  echo "== $name $QUICK" >&2
  "$BENCH_DIR/$name" $QUICK --stats-json "$OUT_DIR/$name.json"
}

run fig13_l3switch
run fig14_firewall
run fig15_mpls
run abl_feedback_mapping
run abl_channel_specialization
run fig_nat
run fig_slb
run fig_synflood

python3 - "$OUT_DIR" <<'EOF'
import json, os, sys

out_dir = sys.argv[1]

def load(name):
    with open(os.path.join(out_dir, name + ".json")) as f:
        return json.load(f)

results = {"benchmarks": {}, "feedback": {}}

# Figures 13/14/15: packets-per-second proxy (Gbps on 64B frames) per
# app, per ladder level, per ME count.
for fig in ("fig13_l3switch", "fig14_firewall", "fig15_mpls"):
    d = load(fig)
    app = d["app"]
    levels = {}
    for cell in d["cells"]:
        levels.setdefault(cell["level"], {})[str(cell["mes"])] = cell["gbps"]
    results["benchmarks"][app] = {
        "figure": d["figure"],
        "measuredCycles": d["measuredCycles"],
        "gbpsByLevel": levels,
    }

# Feedback ablation: static vs feedback mapping at +SWC.
fb = load("abl_feedback_mapping")
results["feedback"] = {
    "level": fb["level"],
    "mes": fb["mes"],
    "measuredCycles": fb["measuredCycles"],
    "feedbackAtLeastStatic": fb["feedbackAtLeastStatic"],
    "configs": [
        {
            "app": c["app"],
            "codeStoreInstrs": c["codeStoreInstrs"],
            "staticPktPerKCycle": c["static"]["pktPerKCycle"],
            "feedbackPktPerKCycle": c["feedback"]["pktPerKCycle"],
            "gainPct": c["feedback"]["gainPct"],
            "rounds": len(c["feedback"]["rounds"]),
            "bestRound": c["feedback"]["bestRound"],
            "fixedPoint": c["feedback"]["fixedPoint"],
        }
        for c in fb["configs"]
    ],
}

# Channel-specialization ablation: NN rings vs scratch-only on the
# code-store-constrained configs, with a per-channel kind summary.
cs = load("abl_channel_specialization")
by_config = {}
for c in cs["configs"]:
    key = (c["app"], c["mes"])
    by_config.setdefault(key, {})[c["mode"]] = c
results["channelSpecialization"] = {
    "codeStoreInstrs": cs["codeStoreInstrs"],
    "measuredCycles": cs["measuredCycles"],
    "anyNN": cs["anyNN"],
    "bestGain": cs["bestGain"],
    "configs": [
        {
            "app": app,
            "mes": mes,
            "scratchPktPerKCycle": pair["scratch"]["pktPerKCycle"],
            "nnPktPerKCycle": pair["nn"]["pktPerKCycle"],
            "nnChannels": pair["nn"]["nnChannels"],
            "channelKinds": {
                ch["name"]: ch["kind"] for ch in pair["nn"]["channels"]
            },
        }
        for (app, mes), pair in sorted(by_config.items())
        if "scratch" in pair and "nn" in pair
    ],
}

# Stateful acceptance tier: per-app oracle verdicts, conservation under
# every adversarial profile, SWC veto reasons for mutable state, and
# per-profile throughput against the committed floors.
results["stateful"] = {}
stateful_fail = []
for fig in ("fig_nat", "fig_slb", "fig_synflood"):
    d = load(fig)
    results["stateful"][d["app"]] = {
        "bench": d["bench"],
        "level": d["level"],
        "mes": d["mes"],
        "measuredCycles": d["measuredCycles"],
        "oracle": d["oracle"],
        "conservation": {
            c["profile"]: c["ok"] for c in d["conservation"]
        },
        "swcVetoed": d["swc"]["vetoed"],
        "swcCached": d["swc"]["cached"],
        "profiles": {
            p["profile"]: {
                "pktPerKCycle": p["pktPerKCycle"],
                "gbps": p["gbps"],
                "floor": p["floor"],
                "pass": p["pass"],
            }
            for p in d["profiles"]
        },
        "feedback": d["feedback"],
        "acceptance": d["acceptance"],
    }
    a = d["acceptance"]
    for gate in ("oracleOk", "conservationOk", "swcOk", "floorsOk",
                 "feedbackOk"):
        if not a[gate]:
            stateful_fail.append(f"{d['bench']}: {gate} failed")

path = os.path.join(out_dir, "BENCH_results.json")
with open(path, "w") as f:
    json.dump(results, f, indent=2)
    f.write("\n")
print(f"consolidated -> {path}")

if not fb["feedbackAtLeastStatic"]:
    print("FAIL: feedback mapping regressed below static", file=sys.stderr)
    sys.exit(1)
if not cs["anyNN"]:
    print("FAIL: no NN channel lowered on any constrained config",
          file=sys.stderr)
    sys.exit(1)
if stateful_fail:
    for msg in stateful_fail:
        print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)
EOF
