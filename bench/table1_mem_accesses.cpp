//===- bench/table1_mem_accesses.cpp - paper Table 1 --------------------------==//
//
// Dynamic memory accesses per packet for each application as the relevant
// optimizations are enabled (-O2 and SOAR only change instruction counts,
// so the paper's table lists BASE, +O1, +PAC, +PHR, +SWC). "Packet"
// accesses cover handle movement (Scratch rings), metadata (SRAM) and
// packet data (DRAM); "Application" accesses cover the program's own
// tables (plus stack and lock traffic).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace sl;
using namespace sl::bench;
using cg::MemClass;

namespace {

struct Row {
  const char *Name;
  driver::OptLevel Level;
};

void runApp(const apps::AppBundle &App, uint64_t Cycles,
            support::JsonWriter *W) {
  const Row Rows[] = {
      {"+ SWC", driver::OptLevel::Swc}, {"+ PHR", driver::OptLevel::Phr},
      {"+ PAC", driver::OptLevel::Pac}, {"+ -O1", driver::OptLevel::O1},
      {"BASE", driver::OptLevel::Base},
  };

  std::printf("%s\n", App.Name.c_str());
  std::printf("  %-8s %10s %8s %8s | %10s %8s | %8s  (instrs/pkt)\n", "",
              "PktScratch", "PktSRAM", "PktDRAM", "AppScratch", "AppSRAM",
              "Total");

  profile::Trace Traffic = App.makeTrace(0x717171, 512);
  for (const Row &R : Rows) {
    auto Compiled = compileApp(App, R.Level, /*NumMEs=*/2);
    if (!Compiled)
      continue;
    ForwardResult F = runForwarding(*Compiled, Traffic, Cycles);
    const ixp::SimStats &S = F.Stats;

    auto PP = [&](unsigned Space, MemClass C) {
      return S.perPacket(Space, C);
    };
    double PktScr = PP(0, MemClass::PktRing);
    double PktSram = PP(1, MemClass::PktMeta) + PP(1, MemClass::PktRing);
    double PktDram = PP(2, MemClass::PktData);
    double AppScr = PP(0, MemClass::App) + PP(0, MemClass::AppCache) +
                    PP(0, MemClass::Lock);
    double AppSram = PP(1, MemClass::App) + PP(1, MemClass::AppCache) +
                     PP(1, MemClass::Stack);
    double Total = PktScr + PktSram + PktDram + AppScr + AppSram;
    double Ipp =
        S.RxInjected ? double(S.Instrs) / double(S.RxInjected) : 0.0;

    std::printf("  %-8s %10.1f %8.1f %8.1f | %10.1f %8.1f | %8.1f  (%.0f)\n",
                R.Name, PktScr, PktSram, PktDram, AppScr, AppSram, Total,
                Ipp);
    if (W) {
      W->beginObject();
      W->field("app", App.Name);
      W->field("level", R.Name);
      W->field("pktScratchPerPkt", PktScr);
      W->field("pktSramPerPkt", PktSram);
      W->field("pktDramPerPkt", PktDram);
      W->field("appScratchPerPkt", AppScr);
      W->field("appSramPerPkt", AppSram);
      W->field("instrsPerPkt", Ipp);
      W->key("telemetry");
      ixp::writeTelemetry(*W, S, F.Telem);
      W->endObject();
    }
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Cycles = quickMode(argc, argv) ? 150'000 : 600'000;
  const char *StatsPath = argValue(argc, argv, "--stats-json");
  std::printf("Table 1: dynamic memory accesses per packet\n");
  std::printf("(paper shape: PAC slashes packet SRAM/DRAM; PHR removes "
              "head_ptr/metadata traffic; SWC cuts application SRAM)\n\n");

  std::ofstream StatsOS;
  std::unique_ptr<support::JsonWriter> W;
  if (StatsPath) {
    StatsOS.open(StatsPath);
    if (!StatsOS) {
      std::fprintf(stderr, "cannot open %s for writing\n", StatsPath);
      return 1;
    }
    W = std::make_unique<support::JsonWriter>(StatsOS);
    W->beginObject();
    W->field("table", "Table 1: dynamic memory accesses per packet");
    W->field("measuredCycles", Cycles);
    W->key("rows");
    W->beginArray();
  }

  for (const apps::AppBundle &App : apps::allApps())
    runApp(App, Cycles, W.get());

  if (W) {
    W->endArray();
    W->endObject();
    StatsOS << '\n';
    std::fprintf(stderr, "stats -> %s\n", StatsPath);
  }
  return 0;
}
