//===- bench/table1_mem_accesses.cpp - paper Table 1 --------------------------==//
//
// Dynamic memory accesses per packet for each application as the relevant
// optimizations are enabled (-O2 and SOAR only change instruction counts,
// so the paper's table lists BASE, +O1, +PAC, +PHR, +SWC). "Packet"
// accesses cover handle movement (Scratch rings), metadata (SRAM) and
// packet data (DRAM); "Application" accesses cover the program's own
// tables (plus stack and lock traffic).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "obs/CrossCheck.h"

#include <map>
#include <utility>

using namespace sl;
using namespace sl::bench;
using cg::MemClass;

namespace {

struct Row {
  const char *Name;
  driver::OptLevel Level;
};

/// Per-app findings, tagged with the app name for the JSON section.
using FindingList =
    std::vector<std::pair<std::string, obs::CrossCheckFinding>>;

bool runApp(const apps::AppBundle &App, uint64_t Cycles,
            support::JsonWriter *W, FindingList &AllFindings) {
  const Row Rows[] = {
      {"+ SWC", driver::OptLevel::Swc}, {"+ PHR", driver::OptLevel::Phr},
      {"+ PAC", driver::OptLevel::Pac}, {"+ -O1", driver::OptLevel::O1},
      {"BASE", driver::OptLevel::Base},
  };

  std::printf("%s\n", App.Name.c_str());
  std::printf("  %-8s %10s %8s %8s | %10s %8s | %8s  (instrs/pkt)\n", "",
              "PktScratch", "PktSRAM", "PktDRAM", "AppScratch", "AppSRAM",
              "Total");

  profile::Trace Traffic = App.makeTrace(0x717171, 512);
  std::map<std::string, obs::LevelObs> Levels;
  for (const Row &R : Rows) {
    obs::CompileObserver Observer;
    auto Compiled = compileApp(App, R.Level, /*NumMEs=*/2, true, &Observer);
    if (!Compiled)
      continue;
    ForwardResult F = runForwarding(*Compiled, Traffic, Cycles);
    const ixp::SimStats &S = F.Stats;

    auto PP = [&](unsigned Space, MemClass C) {
      return S.perPacket(Space, C);
    };
    double PktScr = PP(0, MemClass::PktRing);
    double PktSram = PP(1, MemClass::PktMeta) + PP(1, MemClass::PktRing);
    double PktDram = PP(2, MemClass::PktData);
    double AppScr = PP(0, MemClass::App) + PP(0, MemClass::AppCache) +
                    PP(0, MemClass::Lock);
    double AppSram = PP(1, MemClass::App) + PP(1, MemClass::AppCache) +
                     PP(1, MemClass::Stack);
    double Total = PktScr + PktSram + PktDram + AppScr + AppSram;
    double Ipp =
        S.RxInjected ? double(S.Instrs) / double(S.RxInjected) : 0.0;

    std::printf("  %-8s %10.1f %8.1f %8.1f | %10.1f %8.1f | %8.1f  (%.0f)\n",
                R.Name, PktScr, PktSram, PktDram, AppScr, AppSram, Total,
                Ipp);

    // Static side (compiler remarks) + measured side, one LevelObs each:
    // the cross-check harness reconciles them after the ladder finishes.
    obs::LevelObs L;
    L.Level = R.Name;
    L.PktAccessesPerPkt = PktScr + PktSram + PktDram;
    L.AppSramPerPkt = AppSram;
    obs::summarizeRemarks(Observer.Remarks, L);
    Levels[R.Name] = L;
    if (W) {
      W->beginObject();
      W->field("app", App.Name);
      W->field("level", R.Name);
      W->field("pktScratchPerPkt", PktScr);
      W->field("pktSramPerPkt", PktSram);
      W->field("pktDramPerPkt", PktDram);
      W->field("appScratchPerPkt", AppScr);
      W->field("appSramPerPkt", AppSram);
      W->field("instrsPerPkt", Ipp);
      W->key("telemetry");
      ixp::writeTelemetry(*W, S, F.Telem);
      W->endObject();
    }
  }

  bool Ok = true;
  if (Levels.count("+ -O1") && Levels.count("+ PAC") &&
      Levels.count("+ PHR") && Levels.count("+ SWC")) {
    obs::CrossCheckResult CC =
        obs::crossCheckTable1(Levels["+ -O1"], Levels["+ PAC"],
                              Levels["+ PHR"], Levels["+ SWC"]);
    for (const obs::CrossCheckFinding &F : CC.Findings) {
      std::printf("  [%s] %-13s %-18s %s\n", F.Ok ? "ok" : "FAIL",
                  F.Check.c_str(), F.Levels.c_str(), F.Detail.c_str());
      AllFindings.push_back({App.Name, F});
    }
    Ok = CC.ok();
  }
  std::printf("\n");
  return Ok;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Cycles = quickMode(argc, argv) ? 150'000 : 600'000;
  const char *StatsPath = argValue(argc, argv, "--stats-json");
  std::printf("Table 1: dynamic memory accesses per packet\n");
  std::printf("(paper shape: PAC slashes packet SRAM/DRAM; PHR removes "
              "head_ptr/metadata traffic; SWC cuts application SRAM)\n\n");

  std::ofstream StatsOS;
  std::unique_ptr<support::JsonWriter> W;
  if (StatsPath) {
    StatsOS.open(StatsPath);
    if (!StatsOS) {
      std::fprintf(stderr, "cannot open %s for writing\n", StatsPath);
      return 1;
    }
    W = std::make_unique<support::JsonWriter>(StatsOS);
    W->beginObject();
    W->field("table", "Table 1: dynamic memory accesses per packet");
    W->field("measuredCycles", Cycles);
    W->key("rows");
    W->beginArray();
  }

  FindingList Findings;
  bool AllOk = true;
  for (const apps::AppBundle &App : apps::allApps())
    AllOk &= runApp(App, Cycles, W.get(), Findings);

  if (W) {
    W->endArray();
    W->key("crosscheck");
    W->beginArray();
    for (const auto &[AppName, F] : Findings) {
      W->beginObject();
      W->field("app", AppName);
      W->field("check", F.Check);
      W->field("levels", F.Levels);
      W->field("ok", F.Ok);
      W->field("detail", F.Detail);
      W->endObject();
    }
    W->endArray();
    W->field("crosscheckOk", AllOk);
    W->endObject();
    StatsOS << '\n';
    std::fprintf(stderr, "stats -> %s\n", StatsPath);
  }
  if (!AllOk) {
    std::fprintf(stderr, "cross-check FAILED: a fired optimization's "
                         "measured effect contradicts its remarks\n");
    return 1;
  }
  return 0;
}
