//===- bench/abl_channel_specialization.cpp - NN-ring ablation ----------------==//
//
// Channel specialization ablation. Under a constrained code store the
// mapper must pipeline instead of duplicating, and adjacent single-copy
// stages qualify for next-neighbor rings: register-file transfers that
// skip the scratch controller entirely. This ablation compares
// NN-enabled against scratch-only compiles of the paper's three
// applications on that constrained configuration.
//
// Options:
//   --stats-json <file>  per-config rates, channel decisions (kind +
//                        reason), and the full telemetry snapshot
//                        (per-ring kind/wait/full-stall counters).
//   --quick              shorter runs for CI.
//
// Exit status is nonzero when channel specialization stops paying off:
// either no NN channel is lowered on any constrained config, or the best
// measured gain over scratch-only drops below the acceptance threshold.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include <algorithm>
#include <cstdlib>

using namespace sl;
using namespace sl::bench;

namespace {

unsigned nnChannels(const driver::CompiledApp &App) {
  unsigned N = 0;
  for (const map::ChannelDecision &D : App.Plan.Channels)
    if (D.Kind == map::ChannelKind::NextNeighbor)
      ++N;
  return N;
}

unsigned meStages(const driver::CompiledApp &App) {
  unsigned N = 0;
  for (const map::Aggregate &A : App.Plan.Aggregates)
    if (!A.OnXScale)
      ++N;
  return N;
}

void writeChannels(support::JsonWriter &W, const map::MappingPlan &Plan) {
  W.beginArray();
  for (const map::ChannelDecision &D : Plan.Channels) {
    W.beginObject();
    W.field("chan", D.ChanId);
    W.field("name", D.Name);
    W.field("kind",
            D.Kind == map::ChannelKind::NextNeighbor ? "nn" : "scratch");
    W.field("reason", D.Reason);
    if (D.Producer != ~0u)
      W.field("producerSlot", uint64_t(Plan.Aggregates[D.Producer].Slot));
    if (D.Consumer != ~0u)
      W.field("consumerSlot", uint64_t(Plan.Aggregates[D.Consumer].Slot));
    W.field("capacity", uint64_t(D.Capacity));
    W.field("freq", D.Freq);
    W.endObject();
  }
  W.endArray();
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = quickMode(argc, argv);
  const char *StatsPath = argValue(argc, argv, "--stats-json");
  uint64_t Cycles = Quick ? 150'000 : 600'000;
  const char *StoreArg = argValue(argc, argv, "--store");
  // Small enough to force pipelined plans (hot path split over MEs).
  const unsigned Store = StoreArg ? unsigned(std::atoi(StoreArg)) : 512;
  const double MinGain = 0.005; // Acceptance: best gain >= 0.5%.

  // Few MEs keeps every pipeline stage at one copy — the single-producer/
  // single-consumer shape NN rings require. More MEs let replication kick
  // in and the mapper correctly falls back to scratch rings.
  const unsigned MECounts[] = {2, 3, 4, 6};

  std::printf("Channel specialization: NN rings vs scratch-only "
              "(+SWC, %u-instr store)\n\n", Store);
  std::printf("%-12s %4s %-10s %7s %5s %10s %7s %8s\n", "app", "MEs",
              "channels", "stages", "nn", "pkts/kcyc", "Gbps", "gain");

  std::ofstream StatsOS;
  std::unique_ptr<support::JsonWriter> W;
  if (StatsPath) {
    StatsOS.open(StatsPath);
    if (!StatsOS) {
      std::fprintf(stderr, "cannot open %s for writing\n", StatsPath);
      return 1;
    }
    W = std::make_unique<support::JsonWriter>(StatsOS);
    W->beginObject();
    W->field("bench", "abl_channel_specialization");
    W->field("codeStoreInstrs", Store);
    W->field("measuredCycles", Cycles);
    W->key("configs");
    W->beginArray();
  }

  bool AnyNN = false;
  double BestGain = -1.0;
  for (const apps::AppBundle &App : apps::allApps()) {
    profile::Trace Traffic = App.makeTrace(0xC0FFEE, 512);
    for (unsigned NumMEs : MECounts) {
      auto Scratch = compileApp(App, driver::OptLevel::Swc, NumMEs,
                                /*StackOpt=*/true, /*Observer=*/nullptr,
                                /*EnableNN=*/false, Store);
      auto NN = compileApp(App, driver::OptLevel::Swc, NumMEs,
                           /*StackOpt=*/true, /*Observer=*/nullptr,
                           /*EnableNN=*/true, Store);
      if (!Scratch || !NN) {
        std::printf("%-12s %4u %-10s\n", App.Name.c_str(), NumMEs,
                    "(no fit)");
        continue;
      }
      ForwardResult RS = runForwarding(*Scratch, Traffic, Cycles);
      ForwardResult RN = runForwarding(*NN, Traffic, Cycles);
      unsigned NNCh = nnChannels(*NN);
      double Gain = RS.PktPerKCycle > 0.0
                        ? RN.PktPerKCycle / RS.PktPerKCycle - 1.0
                        : 0.0;
      std::printf("%-12s %4u %-10s %7u %5s %10.2f %7.2f %8s\n",
                  App.Name.c_str(), NumMEs, "scratch", meStages(*Scratch),
                  "-", RS.PktPerKCycle, RS.Gbps, "-");
      std::printf("%-12s %4u %-10s %7u %5u %10.2f %7.2f %+7.1f%%\n",
                  App.Name.c_str(), NumMEs, "nn", meStages(*NN), NNCh,
                  RN.PktPerKCycle, RN.Gbps, Gain * 100.0);
      if (NNCh) {
        AnyNN = true;
        BestGain = std::max(BestGain, Gain);
      }
      if (W) {
        for (int Mode = 0; Mode != 2; ++Mode) {
          const driver::CompiledApp &A = Mode ? *NN : *Scratch;
          const ForwardResult &R = Mode ? RN : RS;
          W->beginObject();
          W->field("app", App.Name);
          W->field("mes", NumMEs);
          W->field("mode", Mode ? "nn" : "scratch");
          W->field("stages", uint64_t(meStages(A)));
          W->field("nnChannels", uint64_t(nnChannels(A)));
          W->field("pktPerKCycle", R.PktPerKCycle);
          W->field("gbps", R.Gbps);
          W->key("channels");
          writeChannels(*W, A.Plan);
          W->key("telemetry");
          ixp::writeTelemetry(*W, R.Stats, R.Telem);
          W->endObject();
        }
      }
    }
  }

  if (W) {
    W->endArray();
    W->field("anyNN", AnyNN);
    W->field("bestGain", BestGain);
    W->endObject();
    StatsOS << '\n';
    std::fprintf(stderr, "stats -> %s\n", StatsPath);
  }

  if (!AnyNN) {
    std::fprintf(stderr, "\nFAIL: no next-neighbor channel was lowered on "
                         "any constrained config\n");
    return 1;
  }
  if (BestGain < MinGain) {
    std::fprintf(stderr,
                 "\nFAIL: best NN gain %.2f%% below the %.2f%% acceptance "
                 "threshold\n",
                 BestGain * 100.0, MinGain * 100.0);
    return 1;
  }
  std::printf("\n(NN rings skip the scratch controller; best gain %+.1f%%)\n",
              BestGain * 100.0);
  return 0;
}
