//===- bench/fig06_memory_wall.cpp - paper Figure 6 ---------------------------==//
//
// Reproduces the memory-access experiment of Sec. 5: all six programmable
// MEs run a tight loop that only issues memory accesses (1..128 per 64-byte
// packet) against one memory level at one access width, and we report the
// achieved forwarding rate. The paper's headline: 2.5 Gbps is sustainable
// with at most ~2 DRAM, ~8 SRAM, or ~64 Scratch accesses per packet, with
// fractionally lower rates at the widest access sizes.
//
//===----------------------------------------------------------------------===//

#include "cg/MEIR.h"
#include "ir/Module.h"
#include "ixp/Simulator.h"
#include "rts/MemoryMap.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace sl;
using namespace sl::cg;

namespace {

/// Builds the access-only loop by hand (physical registers, no compiler).
FlatCode buildLoop(MSpace Space, unsigned Words, unsigned Accesses) {
  MCode C;
  C.Name = "memloop";

  MBlock Entry{"entry", {}};
  {
    MInstr I; // r1 = a safe, aligned address in the target space.
    I.Op = MOp::MovImm;
    I.Dst = 1;
    I.Imm = 0x80;
    Entry.Instrs.push_back(I);
  }
  {
    MInstr I;
    I.Op = MOp::Br;
    I.Target = 1;
    Entry.Instrs.push_back(I);
  }

  MBlock Dispatch{"dispatch", {}};
  {
    MInstr I;
    I.Op = MOp::RingGet;
    I.Class = MemClass::PktRing;
    I.Dst = 0;
    I.Ring = rts::RxRing;
    Dispatch.Instrs.push_back(I);
  }
  {
    MInstr I;
    I.Op = MOp::BrCond;
    I.Cond = MCond::Ne;
    I.SrcA = 0;
    I.SrcB = -1;
    I.Imm = 0;
    I.Target = 3; // got
    Dispatch.Instrs.push_back(I);
  }
  {
    MInstr I;
    I.Op = MOp::CtxArb;
    Dispatch.Instrs.push_back(I);
  }
  {
    MInstr I;
    I.Op = MOp::Br;
    I.Target = 1;
    Dispatch.Instrs.push_back(I);
  }

  MBlock Idle{"idle", {}}; // Unused filler to keep ids simple.
  {
    MInstr I;
    I.Op = MOp::Br;
    I.Target = 1;
    Idle.Instrs.push_back(I);
  }

  MBlock Got{"got", {}};
  for (unsigned A = 0; A != Accesses; ++A) {
    MInstr I;
    I.Op = MOp::MemRead;
    I.Space = Space;
    I.Class = MemClass::App;
    I.SrcA = 1;
    I.Imm = 0;
    I.Xfer = 0;
    I.Words = Words;
    Got.Instrs.push_back(I);
  }
  {
    MInstr I;
    I.Op = MOp::RingPut;
    I.Class = MemClass::PktRing;
    I.SrcA = 0;
    I.Ring = rts::TxRing;
    Got.Instrs.push_back(I);
  }
  {
    MInstr I;
    I.Op = MOp::Br;
    I.Target = 1;
    Got.Instrs.push_back(I);
  }

  C.Blocks = {Entry, Dispatch, Idle, Got};
  return flatten(C);
}

double measure(MSpace Space, unsigned Words, unsigned Accesses,
               uint64_t Cycles) {
  ir::Module Empty;
  rts::MemoryMap Map = rts::buildMemoryMap(Empty);
  ixp::ChipParams Chip;
  ixp::Simulator Sim(Chip, Map);

  FlatCode Code = buildLoop(Space, Words, Accesses);
  Sim.loadAggregate(Code, {rts::RxRing}, Chip.ProgrammableMEs);

  ixp::SimPacket Pkt;
  Pkt.Frame.assign(64, 0xAB);
  Sim.setTraffic([&Pkt](uint64_t) { return &Pkt; });

  Sim.run(Cycles / 5); // Warm up.
  ixp::SimStats Before = Sim.run(0);
  ixp::SimStats After = Sim.run(Cycles);
  uint64_t DBytes = After.TxBytes - Before.TxBytes;
  uint64_t DCycles = After.Cycles - Before.Cycles;
  return double(DBytes) * 8.0 * Chip.ClockGHz / double(DCycles);
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  uint64_t Cycles = Quick ? 60'000 : 400'000;

  struct Series {
    const char *Name;
    MSpace Space;
    unsigned Words;
  };
  const Series AllSeries[] = {
      {"Scratch (4B)", MSpace::Scratch, 1},
      {"Scratch (32B)", MSpace::Scratch, 8},
      {"SRAM (4B)", MSpace::Sram, 1},
      {"SRAM (32B)", MSpace::Sram, 8},
      {"DRAM (8B)", MSpace::Dram, 2},
      {"DRAM (64B)", MSpace::Dram, 16},
  };
  const unsigned Counts[] = {1, 2, 4, 8, 16, 32, 64, 128};

  std::printf("Figure 6: forwarding rate (Gbps) vs memory accesses per "
              "64B packet\n");
  std::printf("(6 MEs, access-only loop; paper: 2.5 Gbps needs <=2 DRAM, "
              "<=8 SRAM, or <=64 Scratch accesses)\n\n");
  std::printf("%-14s", "accesses/pkt");
  for (unsigned N : Counts)
    std::printf("%8u", N);
  std::printf("\n");

  for (const Series &S : AllSeries) {
    std::printf("%-14s", S.Name);
    for (unsigned N : Counts) {
      double Gbps = measure(S.Space, S.Words, N, Cycles);
      std::printf("%8.2f", Gbps);
    }
    std::printf("\n");
  }

  std::printf("\nreference points: DRAM(8B) x2 = %.2f Gbps, "
              "SRAM(4B) x8 = %.2f Gbps, Scratch(4B) x64 = %.2f Gbps\n",
              measure(MSpace::Dram, 2, 2, Cycles),
              measure(MSpace::Sram, 1, 8, Cycles),
              measure(MSpace::Scratch, 1, 64, Cycles));
  return 0;
}
