//===- bench/abl_stack_layout.cpp - Sec. 5.4 stack layout ablation -------------==//
//
// The paper reports that the initial stack implementation (16-word minimum
// aligned frames) pushed L3-Switch's stack into SRAM — over 100 dynamic
// SRAM accesses per packet — and that packed frames ($pSP/$vSP) plus
// aggressive inlining bring the whole stack back into Local Memory.
//
// This ablation compiles the applications at BASE (no mem2reg: every local
// lives in a stack slot, the worst case for the layout) with the
// optimization on and off and reports stack placement, the dynamic stack
// SRAM traffic, and the forwarding rate.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace sl;
using namespace sl::bench;

int main(int argc, char **argv) {
  uint64_t Cycles = quickMode(argc, argv) ? 150'000 : 500'000;

  std::printf("Stack layout ablation (BASE code: every local is a stack "
              "slot)\n");
  std::printf("(paper: without the optimization L3-Switch made >100 SRAM "
              "stack accesses per packet)\n\n");
  std::printf("%-12s %-14s %10s %10s %14s %10s\n", "app", "frames",
              "LM words", "SRAM words", "stackSRAM/pkt", "Gbps");

  for (const apps::AppBundle &App : apps::allApps()) {
    profile::Trace Traffic = App.makeTrace(0x57AC, 512);
    for (bool StackOpt : {true, false}) {
      auto Compiled = compileApp(App, driver::OptLevel::Base, /*NumMEs=*/4,
                                 StackOpt);
      if (!Compiled)
        continue;
      unsigned Lm = 0, Sram = 0;
      for (const auto &Bin : Compiled->Images) {
        Lm = std::max(Lm, Bin.Stack.LmWords);
        Sram = std::max(Sram, Bin.Stack.SramWords);
      }
      ForwardResult R = runForwarding(*Compiled, Traffic, Cycles);
      double StackPerPkt = R.Stats.perPacket(1, cg::MemClass::Stack);
      std::printf("%-12s %-14s %10u %10u %14.1f %10.2f\n",
                  App.Name.c_str(),
                  StackOpt ? "packed ($pSP)" : "16-word min", Lm, Sram,
                  StackPerPkt, R.Gbps);
    }
  }
  return 0;
}
