//===- bench/abl_feedback_mapping.cpp - telemetry-driven mapping ablation ------==//
//
// Closed-loop mapping (driver::compileWithFeedback) versus the static
// cost estimates of Sec. 5.1, for the paper's three applications at +SWC.
//
// Aggregate formation prices its duplicate/merge/offload decisions with
// three constants: cycles per memory access, cycles per channel crossing,
// and the IR->ME lowering expansion. The feedback loop replaces all three
// with values measured from a short calibration simulation and re-forms
// the plan (bounded rounds, best measured candidate wins).
//
// Two code-store configurations are swept:
//   - the default 4096-instruction store, where all three apps fully
//     merge under either model (feedback confirms the static plan — the
//     interesting result is that it does NOT regress), and
//   - a constrained 640-instruction store, where the static 3.0x
//     expansion guess forces a pipeline split that the measured ~2x
//     expansion shows to be unnecessary: feedback re-merges and wins.
//
// Exit status is the acceptance check: nonzero if the feedback plan's
// measured forwarding rate falls below static for any configuration.
//
// Options: --quick (shorter runs), --stats-json <file> (per-round
// predicted vs measured throughput, decision log, measured costs and
// per-aggregate telemetry groups).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace sl;
using namespace sl::bench;

namespace {

void writeCosts(support::JsonWriter &W, const map::MeasuredCosts &MC) {
  W.beginObject();
  W.field("valid", MC.valid());
  W.field("scratchChannelCostCycles", MC.ScratchChannelCostCycles);
  W.field("nnChannelCostCycles", MC.NNChannelCostCycles);
  W.field("meInstrsPerIrInstr", MC.MeInstrsPerIrInstr);
  W.field("memAccessCycles", MC.MemAccessCycles);
  W.field("calibPackets", MC.CalibPackets);
  W.key("funcCycles");
  W.beginObject();
  for (const auto &[Name, Cycles] : MC.FuncCycles)
    W.field(Name, Cycles);
  W.endObject();
  W.endObject();
}

void writeRounds(support::JsonWriter &W, const driver::FeedbackResult &R) {
  W.beginArray();
  for (const driver::FeedbackRound &FR : R.Rounds) {
    W.beginObject();
    W.field("round", FR.Round);
    W.field("predictedThroughput", FR.PredictedThroughput);
    W.field("measuredPktPerKCycle", FR.MeasuredPktPerKCycle);
    W.field("planSignature", FR.PlanSignature);
    W.field("mapLog", FR.MapLog);
    W.key("costs");
    writeCosts(W, FR.Costs);
    W.key("groups");
    W.beginArray();
    for (const ixp::GroupTelemetry &G : FR.Groups) {
      W.beginObject();
      W.field("name", G.Name);
      W.field("onXScale", G.OnXScale);
      W.field("cores", uint64_t(G.Cores));
      W.field("busy", G.Busy);
      W.field("memStall", G.MemStall);
      W.field("ringWait", G.RingWait);
      W.field("idle", G.Idle);
      W.field("instrs", G.Instrs);
      W.field("utilization", G.utilization());
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
}

std::string planBrief(const map::MappingPlan &Plan) {
  unsigned MEAggs = 0, Copies = 0;
  bool XScale = false;
  for (const map::Aggregate &A : Plan.Aggregates) {
    if (A.OnXScale) {
      XScale = true;
      continue;
    }
    ++MEAggs;
    Copies += A.Copies;
  }
  std::string S = std::to_string(MEAggs) + " stage" + (MEAggs == 1 ? "" : "s");
  S += " / " + std::to_string(Copies) + " ME";
  if (XScale)
    S += " +XS";
  return S;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = quickMode(argc, argv);
  const char *StatsPath = argValue(argc, argv, "--stats-json");
  uint64_t Cycles = Quick ? 150'000 : 600'000;
  const unsigned NumMEs = 6;
  const unsigned Stores[] = {4096, 640};

  std::printf("Telemetry-driven feedback mapping vs static cost estimates "
              "(+SWC, %u MEs)\n", NumMEs);
  std::printf("(static model: %.0f cyc/mem, %.0f cyc/crossing, %.1fx "
              "lowering expansion)\n\n",
              map::MapParams().MemAccessCycles,
              map::MapParams().ScratchChannelCostCycles,
              map::MapParams().MeInstrsPerIrInstr);
  std::printf("%-10s %6s %-10s %-18s %10s %7s %7s %6s %6s\n", "app", "store",
              "mapping", "plan", "pkts/kcyc", "Gbps", "gain", "rounds",
              "fixed");

  std::ofstream StatsOS;
  std::unique_ptr<support::JsonWriter> W;
  if (StatsPath) {
    StatsOS.open(StatsPath);
    if (!StatsOS) {
      std::fprintf(stderr, "cannot open %s for writing\n", StatsPath);
      return 1;
    }
    W = std::make_unique<support::JsonWriter>(StatsOS);
    W->beginObject();
    W->field("bench", "abl_feedback_mapping");
    W->field("level", "+SWC");
    W->field("mes", NumMEs);
    W->field("measuredCycles", Cycles);
    W->key("configs");
    W->beginArray();
  }

  bool AcceptOk = true;
  for (const apps::AppBundle &App : apps::allApps()) {
    profile::Trace ProfTrace = App.makeTrace(0x9999, 256);
    profile::Trace Traffic = App.makeTrace(0x13141516, 512);

    for (unsigned Store : Stores) {
      driver::CompileOptions Opts;
      Opts.Level = driver::OptLevel::Swc;
      Opts.Map.NumMEs = NumMEs;
      Opts.Map.CodeStoreInstrs = Store;
      Opts.TxMetaFields = App.TxMetaFields;

      DiagEngine Diags;
      auto Static =
          driver::compile(App.Source, ProfTrace, App.Tables, Opts, Diags);
      if (!Static) {
        std::fprintf(stderr, "static compile failed (%s, store %u):\n%s\n",
                     App.Name.c_str(), Store, Diags.str().c_str());
        return 1;
      }
      ForwardResult SR = runForwarding(*Static, Traffic, Cycles);

      driver::FeedbackOptions FB;
      DiagEngine FbDiags;
      driver::FeedbackResult FR = driver::compileWithFeedback(
          App.Source, ProfTrace, Traffic, App.Tables, Opts, FB, FbDiags);
      if (!FR.App) {
        std::fprintf(stderr, "feedback compile failed (%s, store %u):\n%s\n",
                     App.Name.c_str(), Store, FbDiags.str().c_str());
        return 1;
      }
      ForwardResult MR = runForwarding(*FR.App, Traffic, Cycles);

      double Gain = SR.PktPerKCycle > 0.0
                        ? 100.0 * (MR.PktPerKCycle - SR.PktPerKCycle) /
                              SR.PktPerKCycle
                        : 0.0;
      // Identical plans lower to identical images and the simulator is
      // deterministic, so "no change" means exactly equal numbers; any
      // true regression trips the acceptance check.
      bool Ok = MR.PktPerKCycle >= SR.PktPerKCycle * (1.0 - 1e-9);
      AcceptOk = AcceptOk && Ok;

      std::printf("%-10s %6u %-10s %-18s %10.3f %7.2f %6.1f%% %6zu %6s\n",
                  App.Name.c_str(), Store, "static",
                  planBrief(Static->Plan).c_str(), SR.PktPerKCycle, SR.Gbps,
                  0.0, size_t(1), "-");
      std::printf("%-10s %6u %-10s %-18s %10.3f %7.2f %6.1f%% %6zu %6s%s\n",
                  App.Name.c_str(), Store, "feedback",
                  planBrief(FR.App->Plan).c_str(), MR.PktPerKCycle, MR.Gbps,
                  Gain, FR.Rounds.size(), FR.FixedPoint ? "yes" : "no",
                  Ok ? "" : "  << REGRESSION");

      if (W) {
        W->beginObject();
        W->field("app", App.Name);
        W->field("codeStoreInstrs", Store);
        W->key("static");
        W->beginObject();
        W->field("pktPerKCycle", SR.PktPerKCycle);
        W->field("gbps", SR.Gbps);
        W->field("plan", planBrief(Static->Plan));
        W->field("planSignature", driver::planSignature(Static->Plan));
        W->endObject();
        W->key("feedback");
        W->beginObject();
        W->field("pktPerKCycle", MR.PktPerKCycle);
        W->field("gbps", MR.Gbps);
        W->field("plan", planBrief(FR.App->Plan));
        W->field("planSignature", driver::planSignature(FR.App->Plan));
        W->field("gainPct", Gain);
        W->field("bestRound", FR.BestRound);
        W->field("fixedPoint", FR.FixedPoint);
        W->key("rounds");
        writeRounds(*W, FR);
        W->endObject();
        W->endObject();
      }
    }
  }

  if (W) {
    W->endArray();
    W->field("feedbackAtLeastStatic", AcceptOk);
    W->endObject();
    StatsOS << '\n';
    std::fprintf(stderr, "stats -> %s\n", StatsPath);
  }

  std::printf("\n(expected: identical plans and rates at the ample store; "
              "at 640 the measured\n expansion re-merges the pipeline the "
              "static model split — a strict win)\n");
  if (!AcceptOk) {
    std::fprintf(stderr,
                 "FAIL: feedback mapping regressed below static mapping\n");
    return 1;
  }
  return 0;
}
