//===- bench/abl_pipeline_vs_dup.cpp - Sec. 5.1 mapping ablation ----------------==//
//
// The paper's throughput model "biases against pipelining and favors
// duplication": merging PPFs into one aggregate and replicating it beats
// spreading the stages over MEs, because pipelining pays ring crossings
// and rarely balances. This ablation forces each strategy on the three
// applications and compares predicted and measured throughput.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace sl;
using namespace sl::bench;

int main(int argc, char **argv) {
  uint64_t Cycles = quickMode(argc, argv) ? 150'000 : 600'000;

  std::printf("Pipelining vs duplication (6 MEs, +PHR code)\n\n");
  std::printf("%-12s %-22s %10s %12s %10s\n", "app", "mapping", "stages",
              "pred (rel)", "Gbps");

  for (const apps::AppBundle &App : apps::allApps()) {
    profile::Trace Traffic = App.makeTrace(0xD0D0, 512);
    for (bool AllowMerge : {true, false}) {
      driver::CompileOptions Opts;
      Opts.Level = driver::OptLevel::Phr;
      Opts.Map.NumMEs = 6;
      Opts.TxMetaFields = App.TxMetaFields;
      Opts.Map.AllowMerging = AllowMerge;
      DiagEngine Diags;
      profile::Trace ProfTrace = App.makeTrace(0x9999, 256);
      auto Compiled =
          driver::compile(App.Source, ProfTrace, App.Tables, Opts, Diags);
      if (!Compiled) {
        std::printf("%-12s %-22s %10s\n", App.Name.c_str(),
                    AllowMerge ? "merge + duplicate" : "forced pipeline",
                    "(no fit)");
        continue;
      }
      unsigned Stages = 0;
      for (const auto &A : Compiled->Plan.Aggregates)
        if (!A.OnXScale)
          ++Stages;
      ForwardResult R = runForwarding(*Compiled, Traffic, Cycles);
      std::printf("%-12s %-22s %10u %12.4f %10.2f\n", App.Name.c_str(),
                  AllowMerge ? "merge + duplicate" : "forced pipeline",
                  Stages, Compiled->Plan.PredictedThroughput * 1000.0,
                  R.Gbps);
    }
  }
  std::printf("\n(expected: duplication wins — the paper's model biases "
              "exactly this way)\n");
  return 0;
}
