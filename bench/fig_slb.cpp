//===- bench/fig_slb.cpp - stateful load balancer acceptance bench -----------==//
//
// Consistent-hash load balancer under the adversarial profile sweep. The
// interesting split for SWC: the ring/backend config is read-only and
// must cache, while the affinity table takes data-plane stores and must
// be vetoed. Thrash defeats the affinity cache by design (every packet a
// fresh flow walks the ring and inserts), which is exactly the regime the
// thrash floor guards.
//
//===----------------------------------------------------------------------===//

#include "bench/StatefulBench.h"

using namespace sl;
using namespace sl::bench;

int main(int argc, char **argv) {
  StatefulFig Fig;
  Fig.Bench = "fig_slb";
  Fig.App = apps::slb();
  Fig.Oracle = apps::slbOracle;
  // benign, zipf, bursty, thrash, malformed — ~half the slower of the
  // measured quick/full rates (quick: 0.91/6.06/10.35/0.57/2.40, full:
  // 7.93/8.23/10.32/0.58/6.49 pkts/kcycle).
  Fig.Floors[0] = 0.40;
  Fig.Floors[1] = 2.80;
  Fig.Floors[2] = 4.80;
  Fig.Floors[3] = 0.25;
  Fig.Floors[4] = 1.10;
  Fig.MustVeto = {"aff_key", "aff_be"};
  Fig.MustCache = {"vip"};
  return runStatefulFig(argc, argv, Fig);
}
