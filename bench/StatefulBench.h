//===- bench/StatefulBench.h - per-app acceptance harness ---------------------==//
//
// Shared driver for the stateful-tier acceptance benches (fig_nat,
// fig_slb, fig_synflood). Each bench is one app swept over every
// adversarial traffic profile, with exit status as the acceptance check.
// A run passes only if ALL of:
//
//   1. the app compiles at +SWC (under whatever --analyze mode is given;
//      CI uses `error` so any safety-analysis finding fails the build),
//   2. the app's correctness oracle holds on the reference interpreter
//      (translation consistency / flow affinity / FP-FN bounds),
//   3. packet conservation (injected == tx + drop counters) holds under
//      every profile, malformed input included,
//   4. SWC vetoed every data-plane-mutable table with a reason code and
//      cached the app's hot read-only config,
//   5. measured forwarding stays above the per-profile pkts/kcycle
//      floor, and
//   6. feedback mapping does not regress below the static plan.
//
// Options: --quick (shorter sweeps), --stats-json <file>, --analyze
// <off|warn|error>, plus the shared observability flags (--opt-report,
// --compile-trace, --print-ir-after).
//
//===----------------------------------------------------------------------===//

#ifndef SL_BENCH_STATEFULBENCH_H
#define SL_BENCH_STATEFULBENCH_H

#include "bench/BenchCommon.h"
#include "obs/OptReport.h"

#include <map>
#include <set>

namespace sl::bench {

struct StatefulFig {
  const char *Bench = nullptr; ///< e.g. "fig_nat".
  apps::AppBundle App;
  apps::OracleResult (*Oracle)(uint64_t) = nullptr;
  /// Minimum pkts/kcycle per profile, in traffic::allProfiles() order.
  /// Calibrated to ~60% of the measured rate on the reference machine so
  /// real regressions trip while scheduling noise does not.
  double Floors[5] = {0, 0, 0, 0, 0};
  /// Data-plane-mutable tables SWC must refuse to cache (reason-coded).
  std::vector<std::string> MustVeto;
  /// Hot read-only config SWC must cache.
  std::vector<std::string> MustCache;
};

inline int runStatefulFig(int argc, char **argv, const StatefulFig &Fig) {
  bool Quick = quickMode(argc, argv);
  const char *StatsPath = argValue(argc, argv, "--stats-json");
  driver::AnalyzeMode Analyze = analyzeModeFromArgs(argc, argv);
  const unsigned NumMEs = 4;
  const uint64_t Cycles = Quick ? 200'000 : 800'000;
  const unsigned TraceLen = Quick ? 256 : 1024;
  const uint64_t TraceSeed = 0xBE7C4;

  handleObsFlags(argc, argv, Fig.App);

  std::printf("%s: %s acceptance under adversarial traffic (+SWC, %u MEs, "
              "analyze=%s)\n\n",
              Fig.Bench, Fig.App.Name.c_str(), NumMEs,
              driver::analyzeModeName(Analyze));

  // 1. Compile with remarks.
  obs::CompileObserver Obs;
  auto App = compileApp(Fig.App, driver::OptLevel::Swc, NumMEs,
                        /*StackOpt=*/true, &Obs, /*EnableNN=*/true,
                        /*CodeStoreInstrs=*/0, Analyze);
  if (!App)
    return 1;

  // 2. Correctness oracle (reference interpreter).
  apps::OracleResult Oracle = Fig.Oracle(1);
  std::printf("oracle: %s\n  %s\n", Oracle.Ok ? "PASS" : "FAIL",
              Oracle.Log.c_str());

  // 3. Conservation per profile (on a short interpreter-run prefix).
  struct ConsRow {
    traffic::Profile P;
    apps::OracleResult R;
  };
  std::vector<ConsRow> Cons;
  bool ConsOk = true;
  for (traffic::Profile P : traffic::allProfiles()) {
    profile::Trace T = apps::adversarialTrace(
        Fig.App, P, TraceSeed, std::min(TraceLen, 400u));
    apps::OracleResult R = apps::conservationOracle(Fig.App, T);
    ConsOk = ConsOk && R.Ok;
    Cons.push_back({P, R});
    std::printf("conservation %-9s %s  (%s)\n", traffic::profileName(P),
                R.Ok ? "PASS" : "FAIL", R.Log.c_str());
  }

  // 4. SWC legality: every mutable table vetoed, hot config cached.
  std::map<std::string, std::string> Vetoed;
  std::set<std::string> Cached;
  for (const obs::Remark &R : Obs.Remarks.remarks()) {
    if (R.Pass != "swc")
      continue;
    std::string G;
    for (const obs::RemarkArg &A : R.Args)
      if (A.Key == "global")
        G = A.Str;
    if (G.empty())
      continue;
    if (R.Kind == obs::RemarkKind::Fired && R.Reason == "cached")
      Cached.insert(G);
    else if (R.Kind == obs::RemarkKind::Missed &&
             (R.Reason == "written-by-data-plane" ||
              R.Reason == "swc-unsafe-shared"))
      Vetoed[G] = R.Reason;
  }
  bool SwcOk = true;
  for (const std::string &G : Fig.MustVeto) {
    auto It = Vetoed.find(G);
    bool Ok = It != Vetoed.end();
    SwcOk = SwcOk && Ok;
    std::printf("swc veto     %-12s %s%s%s\n", G.c_str(),
                Ok ? "PASS" : "FAIL", Ok ? "  reason=" : "",
                Ok ? It->second.c_str() : "");
  }
  for (const std::string &G : Fig.MustCache) {
    bool Ok = Cached.count(G) != 0;
    SwcOk = SwcOk && Ok;
    std::printf("swc cache    %-12s %s\n", G.c_str(), Ok ? "PASS" : "FAIL");
  }

  // 5. Throughput floors per adversarial profile.
  std::printf("\n%-10s %10s %7s %9s %7s  %s\n", "profile", "pkts/kcyc",
              "Gbps", "floor", "txPkts", "verdict");
  struct ProfRow {
    traffic::Profile P;
    ForwardResult R;
    double Floor;
    bool Pass;
  };
  std::vector<ProfRow> Rows;
  bool FloorsOk = true;
  auto Profiles = traffic::allProfiles();
  for (size_t K = 0; K != Profiles.size(); ++K) {
    profile::Trace T =
        apps::adversarialTrace(Fig.App, Profiles[K], TraceSeed, TraceLen);
    ForwardResult R = runForwarding(*App, T, Cycles);
    double Floor = Fig.Floors[K];
    bool Pass = R.PktPerKCycle >= Floor;
    FloorsOk = FloorsOk && Pass;
    Rows.push_back({Profiles[K], R, Floor, Pass});
    std::printf("%-10s %10.3f %7.2f %9.3f %7llu  %s\n",
                traffic::profileName(Profiles[K]), R.PktPerKCycle, R.Gbps,
                Floor,
                static_cast<unsigned long long>(R.Stats.TxPackets),
                Pass ? "PASS" : "FAIL << below floor");
  }

  // 6. Feedback mapping must not regress below the static plan (benign
  // profile traffic drives calibration and measurement).
  profile::Trace Benign = apps::adversarialTrace(
      Fig.App, traffic::Profile::Benign, TraceSeed, TraceLen);
  ForwardResult StaticR = runForwarding(*App, Benign, Cycles);
  driver::CompileOptions FbOpts;
  FbOpts.Level = driver::OptLevel::Swc;
  FbOpts.Map.NumMEs = NumMEs;
  FbOpts.TxMetaFields = Fig.App.TxMetaFields;
  FbOpts.Analyze = Analyze;
  driver::FeedbackOptions FB;
  DiagEngine FbDiags;
  driver::FeedbackResult FR = driver::compileWithFeedback(
      Fig.App.Source, Fig.App.makeTrace(0x9999, 256), Benign,
      Fig.App.Tables, FbOpts, FB, FbDiags);
  bool FeedbackOk = FR.App != nullptr;
  double FbPkc = 0.0;
  if (FR.App) {
    ForwardResult FbR = runForwarding(*FR.App, Benign, Cycles);
    FbPkc = FbR.PktPerKCycle;
    FeedbackOk = FbPkc >= StaticR.PktPerKCycle * (1.0 - 1e-9);
  } else {
    std::fprintf(stderr, "feedback compile failed:\n%s\n",
                 FbDiags.str().c_str());
  }
  std::printf("\nfeedback: static %.3f vs feedback %.3f pkts/kcyc  %s\n",
              StaticR.PktPerKCycle, FbPkc,
              FeedbackOk ? "PASS" : "FAIL << regression");

  bool AllOk =
      Oracle.Ok && ConsOk && SwcOk && FloorsOk && FeedbackOk;
  std::printf("\n%s: %s\n", Fig.Bench, AllOk ? "ACCEPT" : "REJECT");

  if (StatsPath) {
    std::ofstream OS(StatsPath);
    if (!OS) {
      std::fprintf(stderr, "cannot open %s for writing\n", StatsPath);
      return 1;
    }
    support::JsonWriter W(OS);
    W.beginObject();
    W.field("bench", Fig.Bench);
    W.field("app", Fig.App.Name);
    W.field("level", "+SWC");
    W.field("mes", NumMEs);
    W.field("measuredCycles", Cycles);
    W.field("traceLen", TraceLen);
    W.field("analyze", driver::analyzeModeName(Analyze));
    W.key("oracle");
    W.beginObject();
    W.field("ok", Oracle.Ok);
    W.field("log", Oracle.Log);
    W.endObject();
    W.key("conservation");
    W.beginArray();
    for (const ConsRow &C : Cons) {
      W.beginObject();
      W.field("profile", traffic::profileName(C.P));
      W.field("ok", C.R.Ok);
      W.field("log", C.R.Log);
      W.endObject();
    }
    W.endArray();
    W.key("swc");
    W.beginObject();
    W.key("vetoed");
    W.beginObject();
    for (const auto &[G, Reason] : Vetoed)
      W.field(G, Reason);
    W.endObject();
    W.key("cached");
    W.beginArray();
    for (const std::string &G : Cached)
      W.value(G);
    W.endArray();
    W.field("ok", SwcOk);
    W.endObject();
    W.key("profiles");
    W.beginArray();
    for (const ProfRow &R : Rows) {
      W.beginObject();
      W.field("profile", traffic::profileName(R.P));
      W.field("pktPerKCycle", R.R.PktPerKCycle);
      W.field("gbps", R.R.Gbps);
      W.field("txPackets", R.R.Stats.TxPackets);
      W.field("floor", R.Floor);
      W.field("pass", R.Pass);
      W.endObject();
    }
    W.endArray();
    W.key("feedback");
    W.beginObject();
    W.field("staticPktPerKCycle", StaticR.PktPerKCycle);
    W.field("feedbackPktPerKCycle", FbPkc);
    W.field("rounds", FR.App ? FR.Rounds.size() : size_t(0));
    W.field("ok", FeedbackOk);
    W.endObject();
    W.key("acceptance");
    W.beginObject();
    W.field("oracleOk", Oracle.Ok);
    W.field("conservationOk", ConsOk);
    W.field("swcOk", SwcOk);
    W.field("floorsOk", FloorsOk);
    W.field("feedbackOk", FeedbackOk);
    W.field("allOk", AllOk);
    W.endObject();
    W.endObject();
    OS << '\n';
    std::fprintf(stderr, "stats -> %s\n", StatsPath);
  }

  return AllOk ? 0 : 1;
}

} // namespace sl::bench

#endif // SL_BENCH_STATEFULBENCH_H
