//===- bench/fig13_l3switch.cpp - paper Figure 13 ------------------------------==//
#include "apps/Apps.h"
#define FIG_APP() sl::apps::l3switch()
#define FIG_TITLE "Figure 13 (L3-Switch)"
#include "bench/fig_forwarding.inc"
