//===- bench/abl_swc_checkrate.cpp - Equation 2 ablation ------------------------==//
//
// The delayed-update software cache (Sec. 5.2) trades coherency-check
// traffic against stale packet deliveries: Equation 2 sets the per-packet
// check rate from the store rate, load rate, and tolerated error rate.
//
// Here a table value flips periodically from the control plane while
// packets stamp the value they observed into their metadata; sweeping the
// check interval shows the measured delivery-error rate rising as checks
// get rarer, while check traffic falls.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "interp/Bits.h"

using namespace sl;
using namespace sl::bench;

namespace {

const char *Source = R"(
protocol e { x : 8; pad : 56; demux { 8 }; };
metadata { tag : 16; };

module swcdemo {
  u32 table[16];

  ppf f(e_pkt * ph) {
    ph->meta.tag = table[ph->x & 15];
    channel_put(tx, ph);
  }
  wire rx -> f;
}
)";

} // namespace

int main(int argc, char **argv) {
  bool Quick = quickMode(argc, argv);
  uint64_t Cycles = Quick ? 400'000 : 1'500'000;
  const uint64_t FlipPeriod = 60'000; // Control-plane store cadence.

  std::printf("Delayed-update check-rate ablation (Equation 2)\n");
  std::printf("(a control-plane write flips table[] every %llu cycles; "
              "packets carry the value they saw)\n\n",
              (unsigned long long)FlipPeriod);
  std::printf("(the interval is per THREAD: 16 threads share the load, so"
              " an interval of N checks roughly every 16N packets)\n");
  std::printf("%12s %14s %16s %12s\n", "interval", "checks/pkt",
              "stale deliveries", "error rate");

  for (unsigned Interval : {1u, 4u, 16u, 64u, 256u}) {
    driver::CompileOptions Opts;
    Opts.Level = driver::OptLevel::Swc;
    Opts.Map.NumMEs = 2;
    Opts.TxMetaFields = {"tag"};
    Opts.Swc.MinLoadsPerPacket = 0.5;
    Opts.Swc.MaxCheckInterval = Interval; // The sweep knob.
    DiagEngine Diags;

    profile::Trace Trace;
    for (unsigned I = 0; I != 256; ++I)
      Trace.push_back({{static_cast<uint8_t>(I & 15), 0, 0, 0, 0, 0, 0, 0},
                       0});
    std::vector<driver::TableInit> Tables;
    for (unsigned K = 0; K != 16; ++K)
      Tables.push_back({"table", K, 100 + K});

    auto App = driver::compile(Source, Trace, Tables, Opts, Diags);
    if (!App) {
      std::fprintf(stderr, "compile failed: %s\n", Diags.str().c_str());
      return 1;
    }
    ir::Global *Table = App->IR->findGlobal("table");

    ixp::ChipParams Chip;
    auto Sim = driver::makeSimulator(*App, Chip);
    Sim->enableCapture();
    ixp::SimPacket P;
    P.Frame.assign(64, 0);
    Sim->setTraffic([&P](uint64_t I) {
      P.Frame[0] = static_cast<uint8_t>(I & 15);
      return &P;
    });

    // Run in slices; flip table[] between slices and remember the epochs.
    std::vector<std::pair<uint64_t, uint64_t>> Epochs; // (cycle, value).
    uint64_t Value = 100;
    Epochs.push_back({0, Value});
    ixp::SimStats Stats;
    for (uint64_t T = 0; T < Cycles; T += FlipPeriod) {
      Stats = Sim->run(FlipPeriod);
      Value += 1000;
      for (unsigned K = 0; K != 16; ++K)
        Sim->writeGlobal(Table, K, Value + K);
      Epochs.push_back({Stats.Cycles, Value});
    }

    // A transmitted tag is stale if it does not match the epoch value in
    // force at its transmit time (with the previous epoch allowed for
    // packets already in flight across the flip).
    uint64_t Stale = 0, Counted = 0;
    for (const auto &Rec : Sim->captured()) {
      uint64_t Tag = interp::readBitsBE(Rec.Meta.data(), 16, 16);
      // Find the epoch at Rec.Cycle.
      size_t E = 0;
      while (E + 1 < Epochs.size() && Epochs[E + 1].first <= Rec.Cycle)
        ++E;
      uint8_t Idx = Rec.Frame[0] & 15;
      uint64_t Want = (Epochs[E].second + Idx) & 0xFFFF;
      uint64_t Prev =
          E ? (Epochs[E - 1].second + Idx) & 0xFFFF : Want;
      // Grace window right after a flip: in-flight packets are not stale.
      bool InGrace = Rec.Cycle - Epochs[E].first < 2000;
      if (Tag == Want || (InGrace && Tag == Prev))
        continue;
      ++Stale;
      ++Counted;
    }
    Counted = Sim->captured().size();

    double ChecksPerPkt =
        Stats.RxInjected
            ? double(Stats.Accesses[0][static_cast<unsigned>(
                  cg::MemClass::AppCache)]) /
                  double(Stats.RxInjected)
            : 0.0;
    std::printf("%12u %14.3f %16llu %12.5f\n", Interval, ChecksPerPkt,
                (unsigned long long)Stale,
                Counted ? double(Stale) / double(Counted) : 0.0);
  }
  std::printf("\n(expected: error rate grows with the interval; check "
              "traffic shrinks — Equation 2's trade)\n");
  return 0;
}
