//===- bench/fig_nat.cpp - NAT acceptance bench ------------------------------==//
//
// NAT with per-flow port allocation under the adversarial profile sweep.
// Thrash deliberately overruns the 1024-slot binding table (evictions are
// the app's documented behaviour, not a failure), so its floor sits well
// below the benign one: every packet takes the locked allocation path.
//
//===----------------------------------------------------------------------===//

#include "bench/StatefulBench.h"

using namespace sl;
using namespace sl::bench;

int main(int argc, char **argv) {
  StatefulFig Fig;
  Fig.Bench = "fig_nat";
  Fig.App = apps::nat();
  Fig.Oracle = apps::natOracle;
  // benign, zipf, bursty, thrash, malformed — ~half the slower of the
  // measured quick/full rates (quick: 0.67/3.97/7.71/0.48/1.90, full:
  // 5.70/6.37/8.29/0.49/4.90 pkts/kcycle).
  Fig.Floors[0] = 0.30;
  Fig.Floors[1] = 1.80;
  Fig.Floors[2] = 3.50;
  Fig.Floors[3] = 0.22;
  Fig.Floors[4] = 0.90;
  Fig.MustVeto = {"fwd_key", "fwd_port", "rev_key", "next_port"};
  Fig.MustCache = {"nat_ip"};
  return runStatefulFig(argc, argv, Fig);
}
