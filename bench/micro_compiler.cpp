//===- bench/micro_compiler.cpp - compiler-phase microbenchmarks ----------------==//
//
// google-benchmark timings of the compiler itself (frontend, scalar
// pipeline, the specialized passes, lowering, and a whole-app build) on
// the L3-Switch application. Useful for keeping the compiler fast as it
// grows; not a paper experiment.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "baker/Lexer.h"
#include "cg/Lowering.h"
#include "cg/RegAlloc.h"
#include "cg/StackLayout.h"
#include "driver/Compiler.h"
#include "ir/ASTLower.h"
#include "map/Aggregation.h"
#include "opt/Passes.h"
#include "pktopt/Pac.h"
#include "pktopt/Soar.h"
#include "profile/Profiler.h"

#include <benchmark/benchmark.h>

using namespace sl;

namespace {

const apps::AppBundle &app() {
  static apps::AppBundle App = apps::l3switch();
  return App;
}

void BM_Lex(benchmark::State &State) {
  std::string Src = app().Source;
  for (auto _ : State) {
    DiagEngine D;
    baker::Lexer L(Src, D);
    benchmark::DoNotOptimize(L.lexAll());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Src.size());
}
BENCHMARK(BM_Lex);

void BM_ParseAndAnalyze(benchmark::State &State) {
  std::string Src = app().Source;
  for (auto _ : State) {
    DiagEngine D;
    benchmark::DoNotOptimize(baker::parseAndAnalyze(Src, D));
  }
}
BENCHMARK(BM_ParseAndAnalyze);

void BM_LowerToIR(benchmark::State &State) {
  DiagEngine D;
  auto Unit = baker::parseAndAnalyze(app().Source, D);
  for (auto _ : State)
    benchmark::DoNotOptimize(ir::lowerProgram(*Unit, D));
}
BENCHMARK(BM_LowerToIR);

void BM_ScalarPipelineO2(benchmark::State &State) {
  DiagEngine D;
  auto Unit = baker::parseAndAnalyze(app().Source, D);
  for (auto _ : State) {
    State.PauseTiming();
    auto M = ir::lowerProgram(*Unit, D);
    State.ResumeTiming();
    opt::runO2(*M);
  }
}
BENCHMARK(BM_ScalarPipelineO2);

void BM_PacAndSoar(benchmark::State &State) {
  DiagEngine D;
  auto Unit = baker::parseAndAnalyze(app().Source, D);
  for (auto _ : State) {
    State.PauseTiming();
    auto M = ir::lowerProgram(*Unit, D);
    opt::runO2(*M);
    State.ResumeTiming();
    pktopt::runPac(*M);
    pktopt::runSoar(*M);
  }
}
BENCHMARK(BM_PacAndSoar);

void BM_FunctionalProfiler(benchmark::State &State) {
  DiagEngine D;
  auto Unit = baker::parseAndAnalyze(app().Source, D);
  auto M = ir::lowerProgram(*Unit, D);
  profile::Profiler P(*M);
  for (const auto &T : app().Tables)
    P.interp().writeGlobal(T.Global, T.Index, T.Value);
  profile::Trace Trace = app().makeTrace(1, 128);
  for (auto _ : State)
    benchmark::DoNotOptimize(P.run(Trace));
  State.SetItemsProcessed(int64_t(State.iterations()) * Trace.size());
}
BENCHMARK(BM_FunctionalProfiler);

void BM_FullCompileSwc(benchmark::State &State) {
  profile::Trace Trace = app().makeTrace(1, 128);
  for (auto _ : State) {
    driver::CompileOptions Opts;
    Opts.Level = driver::OptLevel::Swc;
    Opts.Map.NumMEs = 6;
    Opts.TxMetaFields = app().TxMetaFields;
    DiagEngine D;
    benchmark::DoNotOptimize(
        driver::compile(app().Source, Trace, app().Tables, Opts, D));
  }
}
BENCHMARK(BM_FullCompileSwc);

void BM_SimulatorThroughput(benchmark::State &State) {
  profile::Trace Trace = app().makeTrace(1, 128);
  driver::CompileOptions Opts;
  Opts.Level = driver::OptLevel::Swc;
  Opts.Map.NumMEs = 6;
  Opts.TxMetaFields = app().TxMetaFields;
  DiagEngine D;
  auto App = driver::compile(app().Source, Trace, app().Tables, Opts, D);
  profile::Trace Traffic = app().makeTrace(2, 256);
  uint64_t Cycles = 0;
  for (auto _ : State) {
    ixp::ChipParams Chip;
    auto Sim = driver::makeSimulator(*App, Chip);
    Sim->setTraffic([&Traffic](uint64_t I) -> const ixp::SimPacket * {
      static thread_local ixp::SimPacket P;
      P.Frame = Traffic[I % Traffic.size()].Frame;
      P.Port = Traffic[I % Traffic.size()].Port;
      return &P;
    });
    benchmark::DoNotOptimize(Sim->run(50'000));
    Cycles += 50'000;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Cycles));
}
BENCHMARK(BM_SimulatorThroughput);

} // namespace

BENCHMARK_MAIN();
