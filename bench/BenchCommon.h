//===- bench/BenchCommon.h - shared harness for the paper's experiments ------==//

#ifndef SL_BENCH_BENCHCOMMON_H
#define SL_BENCH_BENCHCOMMON_H

#include "apps/Apps.h"
#include "driver/Compiler.h"
#include "driver/Feedback.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace sl::bench {

/// Measures steady-state forwarding of a compiled app under infinite
/// offered load.
struct ForwardResult {
  double Gbps = 0.0;
  double PktPerKCycle = 0.0; ///< Forwarded packets per 1000 cycles.
  ixp::SimStats Stats;
  ixp::SimTelemetry Telem; ///< Snapshot at the end of the measured run.
};

inline ForwardResult runForwarding(const driver::CompiledApp &App,
                                   const profile::Trace &Traffic,
                                   uint64_t Cycles,
                                   unsigned ThreadsPerME = 8,
                                   ixp::Simulator *Prebuilt = nullptr) {
  // An empty trace would make the modulo below undefined behaviour and
  // can only mean a broken generator upstream: fail loudly instead.
  if (Traffic.empty()) {
    std::fprintf(stderr,
                 "runForwarding: empty traffic trace (generator produced "
                 "no packets)\n");
    std::exit(2);
  }
  ixp::ChipParams Chip;
  Chip.ThreadsPerME = ThreadsPerME;
  std::unique_ptr<ixp::Simulator> Owned;
  ixp::Simulator *Sim = Prebuilt;
  if (!Sim) {
    Owned = driver::makeSimulator(App, Chip);
    Sim = Owned.get();
  }
  Sim->setTraffic([&Traffic](uint64_t I) -> const ixp::SimPacket * {
    static thread_local ixp::SimPacket P;
    const auto &T = Traffic[I % Traffic.size()];
    P.Frame = T.Frame;
    P.Port = T.Port;
    return &P;
  });
  // Warm up (fills rings, caches), then measure.
  Sim->run(Cycles / 5);
  ixp::SimStats Before = Sim->run(0);
  ixp::SimStats After = Sim->run(Cycles);
  ForwardResult R;
  R.Stats = After;
  R.Telem = Sim->telemetry();
  uint64_t DBytes = After.TxBytes - Before.TxBytes;
  uint64_t DCycles = After.Cycles - Before.Cycles;
  R.Gbps = DCycles ? double(DBytes) * 8.0 * Chip.ClockGHz / double(DCycles)
                   : 0.0;
  R.PktPerKCycle =
      DCycles ? 1000.0 * double(After.TxPackets - Before.TxPackets) /
                    double(DCycles)
              : 0.0;
  // Per-packet stats reported over the whole run (incl. warmup) — the
  // ratios converge quickly.
  return R;
}

/// Compiles one app bundle at a ladder level for a given ME count.
/// \p Observer (optional) receives pass timings and remarks; attaching it
/// is observation-only.
inline std::unique_ptr<driver::CompiledApp>
compileApp(const apps::AppBundle &App, driver::OptLevel Level,
           unsigned NumMEs, bool StackOpt = true,
           obs::CompileObserver *Observer = nullptr, bool EnableNN = true,
           unsigned CodeStoreInstrs = 0,
           driver::AnalyzeMode Analyze = driver::AnalyzeMode::Warn) {
  driver::CompileOptions Opts;
  Opts.Level = Level;
  Opts.Map.NumMEs = NumMEs;
  Opts.Map.EnableNN = EnableNN;
  if (CodeStoreInstrs)
    Opts.Map.CodeStoreInstrs = CodeStoreInstrs;
  Opts.StackOpt = StackOpt;
  Opts.Analyze = Analyze;
  Opts.TxMetaFields = App.TxMetaFields;
  Opts.Observer = Observer;
  if (Observer)
    Observer->setContext(App.Name, driver::optLevelName(Level));
  DiagEngine Diags;
  profile::Trace ProfTrace = App.makeTrace(0x9999, 256);
  auto Compiled =
      driver::compile(App.Source, ProfTrace, App.Tables, Opts, Diags);
  if (!Compiled)
    std::fprintf(stderr, "compile failed (%s @ %s, %u MEs):\n%s\n",
                 App.Name.c_str(), driver::optLevelName(Level), NumMEs,
                 Diags.str().c_str());
  return Compiled;
}

/// True when \p Flag appears verbatim in argv.
inline bool flagPresent(int argc, char **argv, const char *Flag) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], Flag) == 0)
      return true;
  return false;
}

/// True when "--quick" appears in argv (shorter sweeps for CI).
inline bool quickMode(int argc, char **argv) {
  return flagPresent(argc, argv, "--quick");
}


/// Value of a "--flag <value>" pair or "--flag=value" in argv, or null
/// when absent.
inline const char *argValue(int argc, char **argv, const char *Flag) {
  size_t N = std::strlen(Flag);
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], Flag) == 0 && I + 1 < argc)
      return argv[I + 1];
    if (std::strncmp(argv[I], Flag, N) == 0 && argv[I][N] == '=')
      return argv[I] + N + 1;
  }
  return nullptr;
}

/// Value of the "--analyze <off|warn|error>" safety-analysis gate flag.
/// Unknown values and an absent flag both give the compiler default
/// (Warn) so every bench accepts the flag without extra plumbing.
inline driver::AnalyzeMode analyzeModeFromArgs(int argc, char **argv) {
  const char *V = argValue(argc, argv, "--analyze");
  if (V && std::strcmp(V, "off") == 0)
    return driver::AnalyzeMode::Off;
  if (V && std::strcmp(V, "error") == 0)
    return driver::AnalyzeMode::Error;
  return driver::AnalyzeMode::Warn;
}

/// Handles the shared compiler-observability flags:
///
///   --opt-report <file>      machine-readable JSON opt-report
///   --compile-trace <file>   Chrome-trace view of compile time
///   --print-ir-after <pass>  dump IR to stderr after the named phase
///   --analyze <mode>         safety-analysis gate (off|warn|error)
///
/// When any is present, runs one instrumented compile of \p App at
/// \p Level and writes the requested artifacts. Returns true when a flag
/// was handled (the caller's normal run proceeds either way — the
/// instrumented compile is a separate, observation-only build).
inline bool handleObsFlags(int argc, char **argv, const apps::AppBundle &App,
                           driver::OptLevel Level = driver::OptLevel::Swc,
                           unsigned NumMEs = 4) {
  const char *ReportPath = argValue(argc, argv, "--opt-report");
  const char *TracePath = argValue(argc, argv, "--compile-trace");
  const char *PrintAfter = argValue(argc, argv, "--print-ir-after");
  if (!ReportPath && !TracePath && !PrintAfter)
    return false;

  obs::CompileObserver Obs;
  Obs.setContext(App.Name, driver::optLevelName(Level));
  driver::CompileOptions Opts;
  Opts.Level = Level;
  Opts.Map.NumMEs = NumMEs;
  Opts.TxMetaFields = App.TxMetaFields;
  Opts.Observer = &Obs;
  Opts.Analyze = analyzeModeFromArgs(argc, argv);
  if (PrintAfter)
    Opts.PrintIrAfter = PrintAfter;
  DiagEngine Diags;
  profile::Trace ProfTrace = App.makeTrace(0x9999, 256);
  auto Compiled =
      driver::compile(App.Source, ProfTrace, App.Tables, Opts, Diags);
  if (!Compiled) {
    std::fprintf(stderr, "opt-report compile failed (%s):\n%s\n",
                 App.Name.c_str(), Diags.str().c_str());
    return true;
  }
  if (ReportPath) {
    std::ofstream OS(ReportPath);
    if (!OS) {
      std::fprintf(stderr, "cannot open %s for writing\n", ReportPath);
    } else {
      Obs.writeJson(OS);
      std::fprintf(stderr, "opt-report (%zu passes, %zu remarks) -> %s\n",
                   Obs.passes().size(), Obs.Remarks.remarks().size(),
                   ReportPath);
    }
  }
  if (TracePath) {
    std::ofstream OS(TracePath);
    if (!OS) {
      std::fprintf(stderr, "cannot open %s for writing\n", TracePath);
    } else {
      Obs.exportChromeTrace(OS);
      std::fprintf(stderr, "compile-trace (%zu passes) -> %s\n",
                   Obs.passes().size(), TracePath);
    }
  }
  return true;
}

/// Runs one traced simulation of \p App and writes the Chrome-trace JSON
/// to \p Path (loadable in chrome://tracing or Perfetto).
inline bool exportTrace(const driver::CompiledApp &App,
                        const profile::Trace &Traffic, uint64_t Cycles,
                        const char *Path) {
  ixp::ChipParams Chip;
  auto Sim = driver::makeSimulator(App, Chip);
  Sim->enableTrace();
  runForwarding(App, Traffic, Cycles, Chip.ThreadsPerME, Sim.get());
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "cannot open %s for writing\n", Path);
    return false;
  }
  Sim->tracer()->exportChromeTrace(OS);
  std::fprintf(stderr, "trace (%zu events, %llu dropped) -> %s\n",
               Sim->tracer()->events().size(),
               static_cast<unsigned long long>(Sim->tracer()->dropped()),
               Path);
  return true;
}

} // namespace sl::bench

#endif // SL_BENCH_BENCHCOMMON_H
