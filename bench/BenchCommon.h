//===- bench/BenchCommon.h - shared harness for the paper's experiments ------==//

#ifndef SL_BENCH_BENCHCOMMON_H
#define SL_BENCH_BENCHCOMMON_H

#include "apps/Apps.h"
#include "driver/Compiler.h"
#include "driver/Feedback.h"
#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace sl::bench {

/// Measures steady-state forwarding of a compiled app under infinite
/// offered load.
struct ForwardResult {
  double Gbps = 0.0;
  double PktPerKCycle = 0.0; ///< Forwarded packets per 1000 cycles.
  ixp::SimStats Stats;
  ixp::SimTelemetry Telem; ///< Snapshot at the end of the measured run.
};

inline ForwardResult runForwarding(const driver::CompiledApp &App,
                                   const profile::Trace &Traffic,
                                   uint64_t Cycles,
                                   unsigned ThreadsPerME = 8,
                                   ixp::Simulator *Prebuilt = nullptr) {
  ixp::ChipParams Chip;
  Chip.ThreadsPerME = ThreadsPerME;
  std::unique_ptr<ixp::Simulator> Owned;
  ixp::Simulator *Sim = Prebuilt;
  if (!Sim) {
    Owned = driver::makeSimulator(App, Chip);
    Sim = Owned.get();
  }
  Sim->setTraffic([&Traffic](uint64_t I) -> const ixp::SimPacket * {
    static thread_local ixp::SimPacket P;
    const auto &T = Traffic[I % Traffic.size()];
    P.Frame = T.Frame;
    P.Port = T.Port;
    return &P;
  });
  // Warm up (fills rings, caches), then measure.
  Sim->run(Cycles / 5);
  ixp::SimStats Before = Sim->run(0);
  ixp::SimStats After = Sim->run(Cycles);
  ForwardResult R;
  R.Stats = After;
  R.Telem = Sim->telemetry();
  uint64_t DBytes = After.TxBytes - Before.TxBytes;
  uint64_t DCycles = After.Cycles - Before.Cycles;
  R.Gbps = DCycles ? double(DBytes) * 8.0 * Chip.ClockGHz / double(DCycles)
                   : 0.0;
  R.PktPerKCycle =
      DCycles ? 1000.0 * double(After.TxPackets - Before.TxPackets) /
                    double(DCycles)
              : 0.0;
  // Per-packet stats reported over the whole run (incl. warmup) — the
  // ratios converge quickly.
  return R;
}

/// Compiles one app bundle at a ladder level for a given ME count.
inline std::unique_ptr<driver::CompiledApp>
compileApp(const apps::AppBundle &App, driver::OptLevel Level,
           unsigned NumMEs, bool StackOpt = true) {
  driver::CompileOptions Opts;
  Opts.Level = Level;
  Opts.Map.NumMEs = NumMEs;
  Opts.StackOpt = StackOpt;
  Opts.TxMetaFields = App.TxMetaFields;
  DiagEngine Diags;
  profile::Trace ProfTrace = App.makeTrace(0x9999, 256);
  auto Compiled =
      driver::compile(App.Source, ProfTrace, App.Tables, Opts, Diags);
  if (!Compiled)
    std::fprintf(stderr, "compile failed (%s @ %s, %u MEs):\n%s\n",
                 App.Name.c_str(), driver::optLevelName(Level), NumMEs,
                 Diags.str().c_str());
  return Compiled;
}

/// True when "--quick" appears in argv (shorter sweeps for CI).
inline bool quickMode(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--quick") == 0)
      return true;
  return false;
}

/// Value of a "--flag <value>" pair in argv, or null when absent.
inline const char *argValue(int argc, char **argv, const char *Flag) {
  for (int I = 1; I + 1 < argc; ++I)
    if (std::strcmp(argv[I], Flag) == 0)
      return argv[I + 1];
  return nullptr;
}

/// Runs one traced simulation of \p App and writes the Chrome-trace JSON
/// to \p Path (loadable in chrome://tracing or Perfetto).
inline bool exportTrace(const driver::CompiledApp &App,
                        const profile::Trace &Traffic, uint64_t Cycles,
                        const char *Path) {
  ixp::ChipParams Chip;
  auto Sim = driver::makeSimulator(App, Chip);
  Sim->enableTrace();
  runForwarding(App, Traffic, Cycles, Chip.ThreadsPerME, Sim.get());
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "cannot open %s for writing\n", Path);
    return false;
  }
  Sim->tracer()->exportChromeTrace(OS);
  std::fprintf(stderr, "trace (%zu events, %llu dropped) -> %s\n",
               Sim->tracer()->events().size(),
               static_cast<unsigned long long>(Sim->tracer()->dropped()),
               Path);
  return true;
}

} // namespace sl::bench

#endif // SL_BENCH_BENCHCOMMON_H
