//===- bench/fig14_firewall.cpp - paper Figure 14 ------------------------------==//
#include "apps/Apps.h"
#define FIG_APP() sl::apps::firewall()
#define FIG_TITLE "Figure 14 (Firewall)"
#include "bench/fig_forwarding.inc"
