//===- bench/fig_synflood.cpp - SYN-flood mitigator acceptance bench ---------==//
//
// Per-source token-bucket SYN gate under the adversarial profile sweep.
// The oracle bounds both error directions (attackers throttled to the
// bucket rate, benign sources and established-flow ACKs untouched); the
// bench adds the SWC veto guard for the bucket state and the virtual
// clock, both of which live under one lock.
//
//===----------------------------------------------------------------------===//

#include "bench/StatefulBench.h"

using namespace sl;
using namespace sl::bench;

int main(int argc, char **argv) {
  StatefulFig Fig;
  Fig.Bench = "fig_synflood";
  Fig.App = apps::synflood();
  Fig.Oracle = apps::synfloodOracle;
  // benign, zipf, bursty, thrash, malformed — ~half the slower of the
  // measured quick/full rates (quick: 1.67/1.11/3.13/1.11/1.80, full:
  // 4.27/1.22/4.23/1.11/4.05 pkts/kcycle).
  Fig.Floors[0] = 0.75;
  Fig.Floors[1] = 0.50;
  Fig.Floors[2] = 1.40;
  Fig.Floors[3] = 0.50;
  Fig.Floors[4] = 0.80;
  Fig.MustVeto = {"tb_tokens", "tb_tick", "now"};
  Fig.MustCache = {};
  return runStatefulFig(argc, argv, Fig);
}
