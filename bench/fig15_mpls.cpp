//===- bench/fig15_mpls.cpp - paper Figure 15 ----------------------------------==//
#include "apps/Apps.h"
#define FIG_APP() sl::apps::mpls()
#define FIG_TITLE "Figure 15 (MPLS)"
#include "bench/fig_forwarding.inc"
