//===- pktopt/Pac.cpp ----------------------------------------------------------==//

#include "pktopt/Pac.h"

#include "ir/Dominators.h"
#include "obs/Remark.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <vector>

using namespace sl;
using namespace sl::pktopt;
using ir::BasicBlock;
using ir::Instr;
using ir::Op;
using ir::Type;
using ir::Value;
using ir::WideSpace;

namespace {

/// Widest combinable access, in 32-bit words (DRAM moves up to 64B per
/// instruction; SRAM metadata up to 32B).
unsigned maxWordsFor(WideSpace Space) {
  return Space == WideSpace::PktData ? 16 : 8;
}

/// Maximum dead space allowed between two combined accesses (paper: even
/// accesses separated by 32 or 64 bits benefit from combining).
constexpr unsigned MaxGapBits = 64;

/// Ops that unconditionally end all open combining groups.
bool isHardBarrier(Op O) {
  switch (O) {
  case Op::PktDecap:
  case Op::PktEncap:
  case Op::PktCopy:
  case Op::PktDrop:
  case Op::ChannelPut:
  case Op::Call:
  case Op::LockAcquire:
  case Op::LockRelease:
    return true;
  default:
    return false;
  }
}

/// Memory-space class of a packet/meta access op (-1 if not an access).
int spaceClassOf(const Instr *I) {
  switch (I->op()) {
  case Op::PktLoad:
  case Op::PktStore:
    return 0;
  case Op::MetaLoad:
  case Op::MetaStore:
    return 1;
  case Op::PktLoadWide:
  case Op::PktStoreWide:
    return I->Space == WideSpace::PktData ? 0 : 1;
  default:
    return -1;
  }
}

bool isLoadAccess(Op O) {
  return O == Op::PktLoad || O == Op::MetaLoad || O == Op::PktLoadWide;
}

/// Bit range touched by an access instruction (within its space).
std::pair<unsigned, unsigned> bitRangeOf(const Instr *I) {
  if (I->op() == Op::PktLoadWide || I->op() == Op::PktStoreWide)
    return {I->ByteOff * 8, I->Words * 32};
  return {I->BitOff, I->BitWidth};
}

struct Access {
  Instr *I;
  unsigned BitOff;
  unsigned BitWidth;
};

struct Group {
  Value *Handle = nullptr;
  std::vector<Access> Members;
  unsigned MinBit = 0, MaxBit = 0;
  /// Ranges stored to (same handle/space) since the group opened. A later
  /// load must not join if its bits were redefined — the combined wide
  /// load executes at the FIRST member\'s position and would read stale
  /// data.
  std::vector<std::pair<unsigned, unsigned>> StoresSeen;
  /// Why the leader could not join an earlier group (remark reason code);
  /// null when no same-handle group existed to join.
  const char *OpenReason = nullptr;
};

const char *spaceName(WideSpace Space) {
  return Space == WideSpace::PktData ? "dram" : "sram";
}

/// Missed remark for an access that stayed narrow: the leader of every
/// group that never reached two members.
void emitMissed(obs::RemarkEmitter *Rem, const char *What, const Group &G,
                WideSpace Space) {
  if (!Rem || G.Members.size() >= 2)
    return;
  const Access &A = G.Members.front();
  ir::Function *F = A.I->parent()->parent();
  Rem->remark("pac", obs::RemarkKind::Missed,
              G.OpenReason ? G.OpenReason : "no-combinable-partner",
              F ? F->name() : std::string(), A.I->Loc)
      .arg("access", What)
      .arg("space", spaceName(Space))
      .arg("bitOff", A.BitOff)
      .arg("bitWidth", A.BitWidth);
}

/// Builds maximal same-handle groups of accesses of \p AccessOp in \p BB.
/// Groups close at hard barriers and — per the paper's dependence rules —
/// at accesses of the opposite kind whose ranges may overlap the group
/// (precisely when the handle matches, conservatively otherwise).
std::vector<Group> collectGroups(BasicBlock &BB, Op AccessOp, bool ForLoads,
                                 unsigned MaxWords, int SpaceClass,
                                 WideSpace Space,
                                 obs::RemarkEmitter *Rem) {
  const char *What = ForLoads ? "load" : "store";
  std::vector<Group> Done;
  std::vector<Group> Open;
  auto closeGroup = [&](size_t GIdx) {
    if (Open[GIdx].Members.size() >= 2)
      Done.push_back(std::move(Open[GIdx]));
    else
      emitMissed(Rem, What, Open[GIdx], Space);
    Open.erase(Open.begin() + static_cast<ptrdiff_t>(GIdx));
  };
  auto flushAll = [&] {
    for (Group &G : Open) {
      if (G.Members.size() >= 2)
        Done.push_back(std::move(G));
      else
        emitMissed(Rem, What, G, Space);
    }
    Open.clear();
  };

  for (size_t Idx = 0; Idx != BB.size(); ++Idx) {
    Instr *I = BB.instr(Idx);
    if (I->op() == AccessOp) {
      Value *H = I->operand(0);
      unsigned Off = I->BitOff, W = I->BitWidth;
      // Accesses via a different handle may alias this packet at another
      // offset (handles created by decap/encap earlier in the block);
      // close foreign-handle groups before grouping this access.
      for (size_t G = Open.size(); G-- > 0;)
        if (Open[G].Handle != H)
          closeGroup(G);
      bool Placed = false;
      const char *RejectReason = nullptr;
      for (Group &G : Open) {
        if (G.Handle != H)
          continue;
        bool Redefined = false;
        for (auto [SLo, SW] : G.StoresSeen)
          Redefined |= (SLo < Off + W && Off < SLo + SW);
        if (Redefined) {
          RejectReason = "bits-redefined";
          continue;
        }
        unsigned NewMin = std::min(G.MinBit, Off);
        unsigned NewMax = std::max(G.MaxBit, Off + W);
        unsigned StartByte = (NewMin / 8) & ~3u;
        unsigned Span = NewMax - StartByte * 8;
        if (Span > MaxWords * 32) {
          RejectReason = "span-exceeds-max-width";
          continue;
        }
        // Gap rule: do not bridge more than MaxGapBits of dead space.
        unsigned Gap = 0;
        if (Off > G.MaxBit)
          Gap = Off - G.MaxBit;
        else if (Off + W < G.MinBit)
          Gap = G.MinBit - (Off + W);
        if (Gap > MaxGapBits) {
          RejectReason = "gap-too-large";
          continue;
        }
        G.Members.push_back({I, Off, W});
        G.MinBit = NewMin;
        G.MaxBit = NewMax;
        Placed = true;
        break;
      }
      if (!Placed) {
        Group G;
        G.Handle = H;
        G.Members.push_back({I, Off, W});
        G.MinBit = Off;
        G.MaxBit = Off + W;
        G.OpenReason = RejectReason;
        Open.push_back(std::move(G));
      }
      continue;
    }
    if (isHardBarrier(I->op())) {
      flushAll();
      continue;
    }
    int Cls = spaceClassOf(I);
    if (Cls != SpaceClass)
      continue; // Accesses in another space never interfere.
    bool OtherIsLoad = isLoadAccess(I->op());
    if (OtherIsLoad == ForLoads)
      continue; // Loads never conflict with load groups, stores w/ stores.
    auto [OBit, OWidth] = bitRangeOf(I);
    for (size_t G = Open.size(); G-- > 0;) {
      if (Open[G].Handle != I->operand(0)) {
        // Distinct handles may alias the same packet; be conservative.
        closeGroup(G);
        continue;
      }
      bool Overlap = false;
      for (const Access &A : Open[G].Members)
        Overlap |= (OBit < A.BitOff + A.BitWidth && A.BitOff < OBit + OWidth);
      if (Overlap) {
        closeGroup(G);
        continue;
      }
      if (!ForLoads)
        continue;
      // A store that misses every current member still poisons those bits
      // for future members of this load group.
      Open[G].StoresSeen.push_back({OBit, OWidth});
    }
  }
  flushAll();
  return Done;
}

/// Fired remark for a group that was rewritten into one wide access.
void emitFired(obs::RemarkEmitter *Rem, const char *Reason, const Group &G,
               WideSpace Space, unsigned Words, Instr *Anchor) {
  if (!Rem)
    return;
  ir::Function *F = Anchor->parent()->parent();
  Rem->remark("pac", obs::RemarkKind::Fired, Reason,
              F ? F->name() : std::string(), Anchor->Loc)
      .arg("members", static_cast<uint64_t>(G.Members.size()))
      .arg("words", Words)
      .arg("space", spaceName(Space))
      .arg("savedAccesses", static_cast<uint64_t>(G.Members.size() - 1));
}

/// Rewrites one group of loads into PktLoadWide + WideExtracts. Members
/// may live in different blocks; the first member (the leader) dominates
/// all of them.
void rewriteLoadGroup(const Group &G, WideSpace Space, PacResult &Stats,
                      obs::RemarkEmitter *Rem) {
  unsigned ByteOff = (G.MinBit / 8) & ~3u;
  unsigned Words = (G.MaxBit - ByteOff * 8 + 31) / 32;
  assert(Words >= 1 && "empty group");

  Instr *First = G.Members.front().I;
  emitFired(Rem, "combined-loads", G, Space, Words, First);
  BasicBlock &BB = *First->parent();
  size_t Pos = BB.indexOf(First);
  auto *WideLoad = new Instr(Op::PktLoadWide, Type::wideTy(Words));
  WideLoad->addOperand(G.Handle);
  WideLoad->ByteOff = ByteOff;
  WideLoad->Words = Words;
  WideLoad->Space = Space;
  WideLoad->StaticHdrOff = First->StaticHdrOff;
  WideLoad->StaticAlign = First->StaticAlign;
  WideLoad->Loc = First->Loc;
  BB.insertAt(Pos, std::unique_ptr<Instr>(WideLoad));

  for (const Access &A : G.Members) {
    Instr *L = A.I;
    BasicBlock &LBB = *L->parent();
    size_t LPos = LBB.indexOf(L);
    auto *Ext = new Instr(Op::WideExtract, L->type());
    Ext->addOperand(WideLoad);
    Ext->BitOff = A.BitOff - ByteOff * 8;
    Ext->BitWidth = A.BitWidth;
    Ext->ProtoName = L->ProtoName;
    Ext->FieldName = L->FieldName;
    Ext->Loc = L->Loc;
    LBB.insertAt(LPos, std::unique_ptr<Instr>(Ext));
    L->replaceAllUsesWith(Ext);
    L->dropOperands();
    LBB.erase(L);
    ++Stats.CombinedLoads;
  }
  ++Stats.WideLoads;
}

/// Rewrites one group of stores into (RMW load +) inserts + wide store.
void rewriteStoreGroup(BasicBlock &BB, const Group &G, WideSpace Space,
                       PacResult &Stats, obs::RemarkEmitter *Rem) {
  unsigned ByteOff = (G.MinBit / 8) & ~3u;
  unsigned Words = (G.MaxBit - ByteOff * 8 + 31) / 32;
  emitFired(Rem, "combined-stores", G, Space, Words, G.Members.back().I);

  // Coverage: when every bit of the region is written we can skip the
  // read-modify-write load.
  std::vector<bool> Covered(Words * 32, false);
  for (const Access &A : G.Members)
    for (unsigned B = 0; B != A.BitWidth; ++B)
      Covered[A.BitOff - ByteOff * 8 + B] = true;
  bool Full = std::all_of(Covered.begin(), Covered.end(),
                          [](bool B) { return B; });

  Instr *Last = G.Members.back().I;
  size_t Pos = BB.indexOf(Last);

  Instr *Base;
  if (Full) {
    Base = new Instr(Op::WideZero, Type::wideTy(Words));
    Base->Words = Words;
  } else {
    Base = new Instr(Op::PktLoadWide, Type::wideTy(Words));
    Base->addOperand(G.Handle);
    Base->ByteOff = ByteOff;
    Base->Words = Words;
    Base->Space = Space;
    Base->StaticHdrOff = Last->StaticHdrOff;
    Base->StaticAlign = Last->StaticAlign;
  }
  Base->Loc = Last->Loc;
  BB.insertAt(Pos++, std::unique_ptr<Instr>(Base));

  Value *Cur = Base;
  for (const Access &A : G.Members) {
    auto *Ins = new Instr(Op::WideInsert, Type::wideTy(Words));
    Ins->addOperand(Cur);
    Ins->addOperand(A.I->operand(1));
    Ins->BitOff = A.BitOff - ByteOff * 8;
    Ins->BitWidth = A.BitWidth;
    Ins->FieldName = A.I->FieldName;
    Ins->Loc = A.I->Loc;
    BB.insertAt(Pos++, std::unique_ptr<Instr>(Ins));
    Cur = Ins;
  }

  auto *WideStore = new Instr(Op::PktStoreWide, Type::voidTy());
  WideStore->addOperand(G.Handle);
  WideStore->addOperand(Cur);
  WideStore->ByteOff = ByteOff;
  WideStore->Words = Words;
  WideStore->Space = Space;
  WideStore->StaticHdrOff = Last->StaticHdrOff;
  WideStore->StaticAlign = Last->StaticAlign;
  WideStore->Loc = Last->Loc;
  BB.insertAt(Pos, std::unique_ptr<Instr>(WideStore));

  for (const Access &A : G.Members) {
    A.I->dropOperands();
    BB.erase(A.I);
    ++Stats.CombinedStores;
  }
  ++Stats.WideStores;
}

/// Whole-function, dominance-based load combining (the paper's four-step
/// algorithm of Sec. 5.3.1): candidate loads on the same handle combine
/// when the leader dominates the member and no conflicting access lies on
/// any path between them.
class GlobalLoadCombiner {
public:
  GlobalLoadCombiner(ir::Function &F, Op LoadOp, WideSpace Space,
                     PacResult &Stats, obs::RemarkEmitter *Rem)
      : F(F), LoadOp(LoadOp), Space(Space), Stats(Stats), Rem(Rem), DT(F),
        Preds(F.predecessors()) {}

  void run() {
    int SpaceClass = Space == WideSpace::PktData ? 0 : 1;
    unsigned MaxWords = maxWordsFor(Space);

    // Collect candidate loads in RPO.
    std::vector<Instr *> Loads;
    for (BasicBlock *BB : DT.rpo())
      for (const auto &I : BB->instrs())
        if (I->op() == LoadOp)
          Loads.push_back(I.get());

    std::vector<Group> Groups;
    for (Instr *L : Loads) {
      bool Placed = false;
      const char *RejectReason = nullptr;
      for (Group &G : Groups) {
        if (G.Handle != L->operand(0))
          continue;
        unsigned NewMin = std::min(G.MinBit, L->BitOff);
        unsigned NewMax = std::max(G.MaxBit, L->BitOff + L->BitWidth);
        unsigned StartByte = (NewMin / 8) & ~3u;
        if (NewMax - StartByte * 8 > MaxWords * 32) {
          RejectReason = "span-exceeds-max-width";
          continue;
        }
        unsigned Gap = 0;
        if (L->BitOff > G.MaxBit)
          Gap = L->BitOff - G.MaxBit;
        else if (L->BitOff + L->BitWidth < G.MinBit)
          Gap = G.MinBit - (L->BitOff + L->BitWidth);
        if (Gap > MaxGapBits) {
          RejectReason = "gap-too-large";
          continue;
        }
        Instr *Leader = G.Members.front().I;
        if (Leader != L && !DT.dominates(Leader, L)) {
          RejectReason = "not-dominated";
          continue;
        }
        if (!pathClean(Leader, L, L->BitOff, L->BitWidth, SpaceClass)) {
          RejectReason = "conflict-on-path";
          continue;
        }
        G.Members.push_back({L, L->BitOff, L->BitWidth});
        G.MinBit = NewMin;
        G.MaxBit = NewMax;
        Placed = true;
        break;
      }
      if (!Placed) {
        Group G;
        G.Handle = L->operand(0);
        G.Members.push_back({L, L->BitOff, L->BitWidth});
        G.MinBit = L->BitOff;
        G.MaxBit = L->BitOff + L->BitWidth;
        G.OpenReason = RejectReason;
        Groups.push_back(std::move(G));
      }
    }

    for (const Group &G : Groups) {
      if (G.Members.size() >= 2)
        rewriteLoadGroup(G, Space, Stats, Rem);
      else
        emitMissed(Rem, "load", G, Space);
    }
  }

private:
  /// Does instruction \p I invalidate an early read of \p Handle bits
  /// [BitOff, BitOff+W)?
  bool conflicts(const Instr *I, const ir::Value *Handle, unsigned BitOff,
                 unsigned W, int SpaceClass) const {
    if (isHardBarrier(I->op()))
      return true;
    if (spaceClassOf(I) != SpaceClass)
      return false;
    if (isLoadAccess(I->op()))
      return false;
    if (I->operand(0) != Handle)
      return true; // Possible alias at another offset: conservative.
    auto [SLo, SW] = bitRangeOf(I);
    return SLo < BitOff + W && BitOff < SLo + SW;
  }

  /// No conflicting access on any path from \p A (exclusive) to \p B
  /// (exclusive) for the member bits.
  bool pathClean(Instr *A, Instr *B, unsigned BitOff, unsigned W,
                 int SpaceClass) {
    const ir::Value *Handle = A->operand(0);
    BasicBlock *D = A->parent();
    BasicBlock *E = B->parent();
    if (D == E) {
      size_t From = D->indexOf(A) + 1;
      size_t To = D->indexOf(B);
      for (size_t K = From; K < To; ++K)
        if (conflicts(D->instr(K), Handle, BitOff, W, SpaceClass))
          return false;
      return true;
    }
    // Blocks on some D->E path: reachable from D and reaching E.
    std::set<BasicBlock *> Fwd;
    std::vector<BasicBlock *> Work{D};
    Fwd.insert(D);
    while (!Work.empty()) {
      BasicBlock *X = Work.back();
      Work.pop_back();
      for (BasicBlock *S : X->successors())
        if (Fwd.insert(S).second)
          Work.push_back(S);
    }
    std::set<BasicBlock *> Bwd;
    Work.push_back(E);
    Bwd.insert(E);
    while (!Work.empty()) {
      BasicBlock *X = Work.back();
      Work.pop_back();
      auto It = Preds.find(X);
      if (It == Preds.end())
        continue;
      for (BasicBlock *Pd : It->second)
        if (Bwd.insert(Pd).second)
          Work.push_back(Pd);
    }
    for (BasicBlock *X : Fwd) {
      if (!Bwd.count(X))
        continue;
      size_t From = 0, To = X->size();
      if (X == D)
        From = X->indexOf(A) + 1;
      if (X == E)
        To = X->indexOf(B);
      if (X == D && X != E)
        To = X->size();
      for (size_t K = From; K < To; ++K)
        if (conflicts(X->instr(K), Handle, BitOff, W, SpaceClass))
          return false;
    }
    return true;
  }

  ir::Function &F;
  Op LoadOp;
  WideSpace Space;
  PacResult &Stats;
  obs::RemarkEmitter *Rem;
  ir::DomTree DT;
  std::map<BasicBlock *, std::vector<BasicBlock *>> Preds;
};

void runStoresOnBlock(BasicBlock &BB, Op LoadOp, Op StoreOp,
                      WideSpace Space, PacResult &Stats,
                      obs::RemarkEmitter *Rem) {
  unsigned MaxWords = maxWordsFor(Space);
  int SpaceClass = Space == WideSpace::PktData ? 0 : 1;
  (void)LoadOp;
  for (const Group &G : collectGroups(BB, StoreOp, /*ForLoads=*/false,
                                      MaxWords, SpaceClass, Space, Rem))
    rewriteStoreGroup(BB, G, Space, Stats, Rem);
}

} // namespace

PacResult sl::pktopt::runPac(ir::Function &F, obs::RemarkEmitter *Rem) {
  PacResult Stats;
  if (F.numBlocks() == 0)
    return Stats;
  // Loads combine across blocks under dominance; stores stay block-local
  // (a combined store must not move across paths that bypass a member).
  GlobalLoadCombiner(F, Op::PktLoad, WideSpace::PktData, Stats, Rem).run();
  GlobalLoadCombiner(F, Op::MetaLoad, WideSpace::Meta, Stats, Rem).run();
  for (const auto &BB : F.blocks()) {
    runStoresOnBlock(*BB, Op::PktLoad, Op::PktStore, WideSpace::PktData,
                     Stats, Rem);
    runStoresOnBlock(*BB, Op::MetaLoad, Op::MetaStore, WideSpace::Meta,
                     Stats, Rem);
  }
  return Stats;
}

PacResult sl::pktopt::runPac(ir::Module &M, obs::RemarkEmitter *Rem) {
  PacResult Total;
  for (const auto &F : M.functions()) {
    PacResult R = runPac(*F, Rem);
    Total.CombinedLoads += R.CombinedLoads;
    Total.CombinedStores += R.CombinedStores;
    Total.WideLoads += R.WideLoads;
    Total.WideStores += R.WideStores;
  }
  return Total;
}
