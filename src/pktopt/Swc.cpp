//===- pktopt/Swc.cpp ----------------------------------------------------------==//

#include "pktopt/Swc.h"

#include "analysis/Analysis.h"
#include "obs/Remark.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace sl;
using namespace sl::pktopt;

SwcResult sl::pktopt::runSwc(ir::Module &M, const profile::ProfileData &Prof,
                             const SwcParams &P, obs::RemarkEmitter *Rem,
                             const analysis::GlobalClassification *Cls) {
  SwcResult R;
  if (Prof.Packets == 0) {
    if (Rem)
      Rem->remark("swc", obs::RemarkKind::Note, "no-profile-data");
    return R;
  }

  auto missed = [&](const ir::Global *G, const char *Reason, double LoadRate,
                    double StoreRate, double HitRate) {
    if (!Rem)
      return;
    Rem->remark("swc", obs::RemarkKind::Missed, Reason)
        .arg("global", G->name())
        .arg("loadRate", LoadRate)
        .arg("storeRate", StoreRate)
        .arg("hitRate", HitRate);
  };

  struct Candidate {
    ir::Global *G;
    double LoadRate;
    double StoreRate;
    double HitRate;
  };
  std::vector<Candidate> Cands;

  // Structural safety: a global written by the packet-processing code
  // itself can never be delayed-update cached — the writing ME's own
  // cache would go stale against its just-written home location. Only
  // tables maintained from the control plane qualify (paper Sec. 5.2:
  // "frequently read by the packet processing cores, but infrequently
  // written by maintenance, control or initialization code").
  std::set<const ir::Global *> StoredByDataPlane;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instrs())
        if (I->op() == ir::Op::GStore)
          StoredByDataPlane.insert(I->GlobalRef);

  for (const auto &GPtr : M.globals()) {
    ir::Global *G = GPtr.get();
    if (StoredByDataPlane.count(G)) {
      missed(G, "written-by-data-plane", 0, 0, 0);
      continue;
    }
    // The race checker classified this global before the scalar ladder
    // ran; if it saw a data-plane store that the optimizer has since
    // deleted, the scan above is blind to it and only the classification
    // can veto. Distinct reason code: this rejection is the analysis
    // overriding an otherwise-cacheable candidate.
    if (Cls && Cls->Valid && !Cls->cacheSafe(G->name())) {
      missed(G, "swc-unsafe-shared", 0, 0, 0);
      continue;
    }
    auto It = Prof.Globals.find(G);
    if (It == Prof.Globals.end()) {
      // Never touched in the profiling trace: definitionally cold.
      missed(G, "cold", 0, 0, 0);
      continue;
    }
    const profile::GlobalStats &S = It->second;
    double LoadRate = double(S.Loads) / double(Prof.Packets);
    double StoreRate = double(S.Stores) / double(Prof.Packets);
    if (LoadRate < P.MinLoadsPerPacket) {
      missed(G, "cold", LoadRate, StoreRate, S.EstHitRate);
      continue;
    }
    if (StoreRate > P.MaxStoresPerPacket) {
      missed(G, "store-rate-too-high", LoadRate, StoreRate, S.EstHitRate);
      continue;
    }
    if (S.EstHitRate < P.MinHitRate) {
      missed(G, "hit-rate-too-low", LoadRate, StoreRate, S.EstHitRate);
      continue;
    }
    Cands.push_back({G, LoadRate, StoreRate, S.EstHitRate});
  }

  // Hottest first; ties broken toward smaller tables (cheaper to cache).
  std::sort(Cands.begin(), Cands.end(), [](const Candidate &A,
                                           const Candidate &B) {
    if (A.LoadRate != B.LoadRate)
      return A.LoadRate > B.LoadRate;
    return A.G->sizeBytes() < B.G->sizeBytes();
  });
  if (Cands.size() > P.MaxCachedGlobals) {
    for (size_t K = P.MaxCachedGlobals; K != Cands.size(); ++K)
      missed(Cands[K].G, "cam-budget-exceeded", Cands[K].LoadRate,
             Cands[K].StoreRate, Cands[K].HitRate);
    Cands.resize(P.MaxCachedGlobals);
  }

  for (const Candidate &C : Cands) {
    C.G->Cached = true;
    // Equation 2. A zero observed store rate still gets a finite (maximal)
    // interval: the control plane may write at runtime even if the trace
    // never did.
    double StoreRate = std::max(C.StoreRate, P.ControlPlaneStoreRate);
    double LoadCheckRate = StoreRate * C.LoadRate / P.ErrorRate;
    unsigned Interval;
    if (LoadCheckRate <= 0.0) {
      Interval = P.MaxCheckInterval;
    } else {
      double Raw = 1.0 / LoadCheckRate;
      Interval = static_cast<unsigned>(
          std::clamp(Raw, 1.0, double(P.MaxCheckInterval)));
    }
    C.G->CacheCheckInterval = Interval;
    R.Cached.push_back(C.G);
    if (Rem)
      Rem->remark("swc", obs::RemarkKind::Fired, "cached")
          .arg("global", C.G->name())
          .arg("loadRate", C.LoadRate)
          .arg("storeRate", C.StoreRate)
          .arg("hitRate", C.HitRate)
          .arg("interval", Interval);
  }
  return R;
}
