//===- pktopt/Soar.cpp ---------------------------------------------------------==//

#include "pktopt/Soar.h"

#include "obs/Remark.h"
#include "support/BitUtils.h"
#include "support/Casting.h"

#include <cassert>
#include <climits>

using namespace sl;
using namespace sl::pktopt;
using ir::Op;

namespace {

constexpr int64_t UnknownOff = ir::Instr::UnknownOff;

bool isConst(const HandleFact &F) { return F.Off >= 0 || F.Off <= -3; }
// Encoding: Off == -2 top, -1 bottom, anything else is the constant value.
// Negative constants (encap before the Rx header) are encoded shifted:
// we store value v as v if v >= 0, else v - 2 (so -1 -> -3, -2 -> -4 ...).

int64_t encodeOff(int64_t V) { return V >= 0 ? V : V - 2; }
int64_t decodeOff(int64_t E) { return E >= 0 ? E : E + 2; }

HandleFact meet(const HandleFact &A, const HandleFact &B) {
  HandleFact R;
  if (A.Off == -2)
    R.Off = B.Off;
  else if (B.Off == -2)
    R.Off = A.Off;
  else if (A.Off == B.Off)
    R.Off = A.Off;
  else
    R.Off = -1;

  if (A.Align == 0)
    R.Align = B.Align;
  else if (B.Align == 0)
    R.Align = A.Align;
  else
    R.Align = std::min(A.Align, B.Align);
  return R;
}

bool factEq(const HandleFact &A, const HandleFact &B) {
  return A.Off == B.Off && A.Align == B.Align;
}

/// Guaranteed power-of-two alignment (bytes) of a dynamic i32 size value.
/// `x << 2` (the ipv4 header-length idiom) is 4-byte aligned, etc.
unsigned alignOfSize(const ir::Value *V) {
  if (const auto *C = dyn_cast<ir::ConstInt>(V))
    return static_cast<unsigned>(alignmentOf(C->value(), 8));
  if (const auto *I = dyn_cast<ir::Instr>(V)) {
    if (I->op() == Op::Shl) {
      if (const auto *Sh = dyn_cast<ir::ConstInt>(I->operand(1))) {
        uint64_t K = Sh->value();
        if (K >= 3)
          return 8;
        return 1u << K;
      }
    }
    if (I->op() == Op::Mul) {
      if (const auto *C = dyn_cast<ir::ConstInt>(I->operand(1)))
        return static_cast<unsigned>(alignmentOf(C->value(), 8));
    }
  }
  return 1;
}

/// Why did this handle's offset stay unresolved? Classified from the
/// handle's defining value — the proximate cause, not the full dataflow
/// provenance, which is what a programmer acting on the remark needs.
const char *missReason(const ir::Value *H) {
  if (isa<ir::Argument>(H))
    return "unresolved-at-entry";
  const auto *D = dyn_cast<ir::Instr>(H);
  if (!D)
    return "unresolved-upstream";
  switch (D->op()) {
  case Op::PktDecap:
    if (!isa<ir::ConstInt>(D->operand(1)))
      return "variable-length-header";
    return "unresolved-upstream";
  case Op::PktEncap:
    return "unresolved-upstream";
  case Op::Phi:
  case Op::Select:
    return "merge-conflict";
  case Op::Load:
    return "handle-through-stack-slot";
  case Op::PktCopy:
    return "copy-of-unresolved";
  default:
    return "unresolved-upstream";
  }
}

class SoarAnalysis {
public:
  SoarAnalysis(ir::Module &M, obs::RemarkEmitter *Rem) : M(M), Rem(Rem) {}

  SoarResult run();

private:
  HandleFact factOf(const ir::Value *V) {
    auto It = R.Facts.find(V);
    return It == R.Facts.end() ? HandleFact::top() : It->second;
  }
  bool update(const ir::Value *V, const HandleFact &New) {
    HandleFact Old = factOf(V);
    HandleFact Met = meet(Old, New);
    if (factEq(Old, Met))
      return false;
    R.Facts[V] = Met;
    return true;
  }

  bool transferFunction(ir::Function &F);
  void annotate();

  ir::Module &M;
  obs::RemarkEmitter *Rem;
  SoarResult R;
};

bool SoarAnalysis::transferFunction(ir::Function &F) {
  bool Changed = false;

  // Seed argument facts.
  for (unsigned A = 0; A != F.numArgs(); ++A) {
    ir::Argument *Arg = F.arg(A);
    if (!Arg->type().isPacket())
      continue;
    HandleFact In = HandleFact::top();
    if (&F == M.EntryPpf && A == 0)
      In = meet(In, HandleFact::entry());
    for (const ir::Channel &C : M.Channels)
      if (C.Dest == &F) {
        auto It = R.ChannelIn.find(C.Id);
        if (It != R.ChannelIn.end())
          In = meet(In, It->second);
      }
    // Helper-function call sites feed packet parameters too.
    for (const auto &Other : M.functions())
      for (const auto &BB : Other->blocks())
        for (const auto &I : BB->instrs())
          if (I->op() == Op::Call && I->Callee == &F)
            In = meet(In, factOf(I->operand(A)));
    Changed |= update(Arg, In);
  }

  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instrs()) {
      switch (I->op()) {
      case Op::PktDecap: {
        HandleFact In = factOf(I->operand(0));
        HandleFact Out;
        const auto *Size = dyn_cast<ir::ConstInt>(I->operand(1));
        if (In.Off == -2) {
          Out.Off = -2; // Not yet reached.
        } else if (isConst(In) && Size) {
          Out.Off = encodeOff(decodeOff(In.Off) +
                              static_cast<int64_t>(Size->value()));
        } else {
          Out.Off = -1;
        }
        unsigned SizeAlign =
            Size ? static_cast<unsigned>(alignmentOf(Size->value(), 8))
                 : alignOfSize(I->operand(1));
        Out.Align = In.Align == 0 ? 0 : std::min(In.Align, SizeAlign);
        Changed |= update(I.get(), Out);
        break;
      }
      case Op::PktEncap: {
        HandleFact In = factOf(I->operand(0));
        HandleFact Out;
        if (In.Off == -2)
          Out.Off = -2;
        else if (isConst(In))
          Out.Off = encodeOff(decodeOff(In.Off) -
                              static_cast<int64_t>(I->SizeBytes));
        else
          Out.Off = -1;
        unsigned SizeAlign = static_cast<unsigned>(
            alignmentOf(I->SizeBytes, 8));
        Out.Align = In.Align == 0 ? 0 : std::min(In.Align, SizeAlign);
        Changed |= update(I.get(), Out);
        break;
      }
      case Op::PktCopy:
        Changed |= update(I.get(), factOf(I->operand(0)));
        break;
      case Op::Phi:
        if (I->type().isPacket()) {
          HandleFact Acc = HandleFact::top();
          for (unsigned K = 0; K != I->numOperands(); ++K)
            Acc = meet(Acc, factOf(I->operand(K)));
          Changed |= update(I.get(), Acc);
        }
        break;
      case Op::Select:
        if (I->type().isPacket()) {
          HandleFact Acc =
              meet(factOf(I->operand(1)), factOf(I->operand(2)));
          Changed |= update(I.get(), Acc);
        }
        break;
      case Op::ChannelPut: {
        HandleFact In = factOf(I->operand(0));
        auto It = R.ChannelIn.find(I->ChanId);
        HandleFact Old =
            It == R.ChannelIn.end() ? HandleFact::top() : It->second;
        HandleFact Met = meet(Old, In);
        if (!factEq(Old, Met)) {
          R.ChannelIn[I->ChanId] = Met;
          Changed = true;
        }
        break;
      }
      case Op::Load:
        // Unpromoted packet locals (BASE builds): handle flows through a
        // stack slot; treat the loaded value as unknown-offset.
        if (I->type().isPacket())
          Changed |= update(I.get(), HandleFact{-1, 1});
        break;
      default:
        break;
      }
    }
  }
  return Changed;
}

void SoarAnalysis::annotate() {
  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instrs()) {
        switch (I->op()) {
        case Op::PktLoad:
        case Op::PktStore:
        case Op::PktLoadWide:
        case Op::PktStoreWide: {
          if (I->op() != Op::PktLoad && I->op() != Op::PktStore &&
              I->Space != ir::WideSpace::PktData)
            break; // Metadata block accesses have absolute offsets already.
          HandleFact In = factOf(I->operand(0));
          ++R.TotalAccesses;
          if (isConst(In)) {
            I->StaticHdrOff = decodeOff(In.Off);
            ++R.ResolvedAccesses;
            if (Rem)
              Rem->remark("soar", obs::RemarkKind::Fired, "offset-resolved",
                          F->name(), I->Loc)
                  .arg("off", I->StaticHdrOff)
                  .arg("align", In.Align);
          } else {
            I->StaticHdrOff = UnknownOff;
            if (Rem)
              Rem->remark("soar", obs::RemarkKind::Missed,
                          missReason(I->operand(0)), F->name(), I->Loc)
                  .arg("align", In.Align);
          }
          I->StaticAlign = In.Align;
          break;
        }
        case Op::PktDecap:
        case Op::PktEncap: {
          HandleFact In = factOf(I->operand(0));
          HandleFact Out = factOf(I.get());
          I->StaticInOff = isConst(In) ? decodeOff(In.Off) : UnknownOff;
          I->StaticHdrOff = isConst(Out) ? decodeOff(Out.Off) : UnknownOff;
          I->StaticAlign = Out.Align;
          break;
        }
        case Op::ChannelPut:
        case Op::PktDrop:
        case Op::PktCopy:
        case Op::PktLength: {
          // Code generation wants the handle's offset at boundary sites
          // (head_ptr materialization before rings, copies, length).
          HandleFact In = factOf(I->operand(0));
          I->StaticHdrOff = isConst(In) ? decodeOff(In.Off) : UnknownOff;
          I->StaticAlign = In.Align;
          break;
        }
        default:
          break;
        }
      }
    }
  }
}

SoarResult SoarAnalysis::run() {
  // Monotone descent: iterate to fixpoint (bounded by lattice height x
  // number of handle values; the cap is a safety net).
  for (unsigned Round = 0; Round != 64; ++Round) {
    bool Changed = false;
    for (const auto &F : M.functions())
      Changed |= transferFunction(*F);
    if (!Changed)
      break;
  }
  annotate();
  return std::move(R);
}

} // namespace

SoarResult sl::pktopt::runSoar(ir::Module &M, obs::RemarkEmitter *Rem) {
  SoarAnalysis A(M, Rem);
  return A.run();
}
