//===- pktopt/Swc.h - delayed-update software-controlled caching --------------==//
//
// Paper Sec. 5.2: picks read-mostly, high-hit-rate global tables from the
// Functional Profiler's statistics and marks them for software caching.
// The generated code (cg) then caches elements in Local Memory with the
// 16-entry CAM as the tag store, and checks the home location only every
// i-th packet. The check interval follows Equation 2:
//
//     r_load_check = r_store * r_load / r_error
//
// where all rates are per packet and r_error is the user's tolerated
// packet-delivery error rate (network protocols tolerate delivery errors;
// TCP retransmits, QoS and firewalls drop by design).
//
//===----------------------------------------------------------------------===//

#ifndef SL_PKTOPT_SWC_H
#define SL_PKTOPT_SWC_H

#include "ir/Module.h"
#include "profile/Profiler.h"

#include <vector>

namespace sl::obs {
class RemarkEmitter;
}
namespace sl::analysis {
struct GlobalClassification;
}

namespace sl::pktopt {

struct SwcParams {
  double MinLoadsPerPacket = 0.5; ///< Must be hot on the fast path.
  double MaxStoresPerPacket = 0.05; ///< Read-mostly requirement.
  double MinHitRate = 0.6;        ///< Estimated CAM-LRU hit rate.
  unsigned MaxCachedGlobals = 2;  ///< CAM entries are shared per ME.
  double ErrorRate = 1e-3;        ///< Tolerated delivery error per packet.
  /// Expected control-plane store rate (per packet) used for Equation 2
  /// when the profiling trace contains no stores; route updates etc.
  /// arrive outside the data plane, so this is a user estimate just like
  /// the error budget.
  double ControlPlaneStoreRate = 0.0;
  unsigned MaxCheckInterval = 4096;
};

struct SwcResult {
  std::vector<ir::Global *> Cached;
};

/// Selects cache candidates and annotates them (Global::Cached /
/// Global::CacheCheckInterval).
///
/// With \p Rem attached each global emits an "swc" remark: fired with
/// reason "cached" (args: global, loadRate, storeRate, hitRate, interval)
/// when selected, missed otherwise with the rejection reason
/// (written-by-data-plane, swc-unsafe-shared, cold, store-rate-too-high,
/// hit-rate-too-low, cam-budget-exceeded); an empty profile emits a
/// single note "no-profile-data". Observation-only.
///
/// \p Cls is the race checker's per-global classification (driver
/// Analyze != Off). When present it is the legality authority: SWC's own
/// IR scan runs after the scalar ladder, so a data-plane store the
/// optimizer deleted is invisible to it — the pre-optimization
/// classification still vetoes such globals (reason swc-unsafe-shared).
/// Null preserves the scan-only legacy behavior.
SwcResult runSwc(ir::Module &M, const profile::ProfileData &Prof,
                 const SwcParams &P = SwcParams(),
                 obs::RemarkEmitter *Rem = nullptr,
                 const analysis::GlobalClassification *Cls = nullptr);

} // namespace sl::pktopt

#endif // SL_PKTOPT_SWC_H
