//===- pktopt/Soar.h - static offset and alignment resolution ---------------==//
//
// Paper Sec. 5.3.2: a whole-program dataflow analysis over packet handles
// that determines, per packet access / encapsulation site, the byte offset
// of the current header relative to the start of packet data (the initial
// head_ptr) and its guaranteed alignment. The offset lattice is
// top / constant-n / bottom (Fig. 10); the alignment lattice is
// top / {8,4,2,1} / bottom with MIN_ALIGNMENT as the meet (Fig. 11).
//
// Handles flow through PPF arguments (fed by Rx or channels), decap/encap,
// copies, phis, calls, and channel_put sites; the analysis iterates across
// functions until the per-channel meets stabilize.
//
//===----------------------------------------------------------------------===//

#ifndef SL_PKTOPT_SOAR_H
#define SL_PKTOPT_SOAR_H

#include "ir/Module.h"

#include <cstdint>
#include <map>

namespace sl::obs {
class RemarkEmitter;
}

namespace sl::pktopt {

/// Lattice element for the offset/alignment pair of one handle value.
struct HandleFact {
  // Offset: -2 = top (unvisited), -1 = bottom (unknown), >=0 constant.
  int64_t Off = -2;
  // Alignment (bytes): 0 = top, 1 = bottom-ish (no guarantee beyond byte),
  // {2,4,8} = known power-of-two alignment. Meet is min.
  unsigned Align = 0;

  static HandleFact top() { return HandleFact{-2, 0}; }
  static HandleFact entry() { return HandleFact{0, 8}; } // Rx: quadword.
  bool isTop() const { return Off == -2 && Align == 0; }
};

/// Results indexed by SSA value (handles) and the per-channel meets.
struct SoarResult {
  std::map<const ir::Value *, HandleFact> Facts;
  std::map<unsigned, HandleFact> ChannelIn; ///< What each channel carries.
  unsigned ResolvedAccesses = 0;            ///< Accesses with const offset.
  unsigned TotalAccesses = 0;
};

/// Runs the analysis and annotates packet-access instructions
/// (StaticHdrOff / StaticInOff / StaticAlign).
///
/// With \p Rem attached each DRAM packet access emits a "soar" remark:
/// fired with reason "offset-resolved" (args: off, align) when the header
/// offset is a lattice constant, missed otherwise with a reason derived
/// from the handle's defining instruction (variable-length-header,
/// merge-conflict, handle-through-stack-slot, unresolved-at-entry,
/// copy-of-unresolved, unresolved-upstream). Observation-only.
SoarResult runSoar(ir::Module &M, obs::RemarkEmitter *Rem = nullptr);

} // namespace sl::pktopt

#endif // SL_PKTOPT_SOAR_H
