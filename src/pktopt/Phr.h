//===- pktopt/Phr.h - packet handling removal ---------------------------------==//
//
// Paper Sec. 5.3.3. PHR has two halves in this implementation:
//
//  1. Metadata localization (here): a metadata field accessed by exactly
//     one function (aggregate), and not visible to Rx/Tx, never needs its
//     SRAM backing — accesses become ordinary locals and are promoted to
//     registers by mem2reg.
//
//  2. head_ptr maintenance removal (in code generation): when PHR is
//     enabled the generated dispatch keeps buf_addr/head_ptr in registers
//     for the lifetime of a packet inside an aggregate and only
//     synchronizes the SRAM metadata at channel boundaries; paired and
//     statically resolved (SOAR) encap/decap sites then emit no memory
//     traffic at all. Without PHR every primitive does its own SRAM
//     read/modify/write, which is the paper's BASE behaviour.
//
//===----------------------------------------------------------------------===//

#ifndef SL_PKTOPT_PHR_H
#define SL_PKTOPT_PHR_H

#include "ir/Module.h"

namespace sl::obs {
class RemarkEmitter;
}

namespace sl::pktopt {

/// Rewrites single-function, non-external metadata fields into stack
/// locals (run mem2reg afterwards to finish the job). Returns the number
/// of fields localized.
///
/// With \p Rem attached each candidate range emits a "phr" remark: fired
/// with reason "localized" (args: field, accesses) when rewritten, missed
/// otherwise with the rejection reason (multi-function-use,
/// packet-copy-alias, extern-visible, overlaps-wide-access,
/// overlapping-ranges, type-mismatch). PHR part 2 (head_ptr maintenance
/// removal) reports from code generation: CgConfig::Rem makes elided
/// decap/encap SRAM read-modify-writes emit "phr" fired remarks with
/// reason "head-update-in-register". Observation-only.
unsigned localizeMetadata(ir::Module &M, obs::RemarkEmitter *Rem = nullptr);

} // namespace sl::pktopt

#endif // SL_PKTOPT_PHR_H
