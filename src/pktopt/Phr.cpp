//===- pktopt/Phr.cpp ----------------------------------------------------------==//

#include "pktopt/Phr.h"

#include "obs/Remark.h"
#include "support/Casting.h"

#include <map>
#include <set>
#include <vector>

using namespace sl;
using namespace sl::pktopt;
using ir::BasicBlock;
using ir::Function;
using ir::Instr;
using ir::Op;
using ir::Type;

namespace {

struct RangeKey {
  unsigned BitOff;
  unsigned BitWidth;
  bool operator<(const RangeKey &O) const {
    return BitOff != O.BitOff ? BitOff < O.BitOff : BitWidth < O.BitWidth;
  }
};

struct RangeUse {
  std::set<Function *> Funcs;
  std::vector<Instr *> Accesses;
  bool ExactOnly = true; ///< All accesses have identical (off, width).
};

} // namespace

unsigned sl::pktopt::localizeMetadata(ir::Module &M,
                                      obs::RemarkEmitter *Rem) {
  // Gather all metadata accesses, grouped by exact bit range; any wide
  // (already PAC-combined) metadata access disables localization for the
  // bits it covers.
  std::map<RangeKey, RangeUse> Uses;
  std::vector<std::pair<unsigned, unsigned>> WideRanges;
  std::set<Function *> FuncsWithCopy;

  for (const auto &F : M.functions()) {
    for (const auto &BB : F->blocks()) {
      for (const auto &I : BB->instrs()) {
        if (I->op() == Op::MetaLoad || I->op() == Op::MetaStore) {
          RangeKey K{I->BitOff, I->BitWidth};
          RangeUse &U = Uses[K];
          U.Funcs.insert(F.get());
          U.Accesses.push_back(I.get());
        } else if ((I->op() == Op::PktLoadWide ||
                    I->op() == Op::PktStoreWide) &&
                   I->Space == ir::WideSpace::Meta) {
          WideRanges.push_back({I->ByteOff * 8, I->Words * 32});
        } else if (I->op() == Op::PktCopy) {
          FuncsWithCopy.insert(F.get());
        }
      }
    }
  }

  // Overlapping distinct ranges also disqualify each other.
  auto overlaps = [](unsigned ALo, unsigned AW, unsigned BLo, unsigned BW) {
    return ALo < BLo + BW && BLo < ALo + AW;
  };

  // Remark plumbing: every candidate range reports either a fired
  // "localized" or the concrete rejection that kept it in SRAM.
  auto missed = [&](const RangeKey &Key, const RangeUse &Use,
                    const char *Reason) {
    if (!Rem)
      return;
    Instr *A = Use.Accesses.front();
    Rem->remark("phr", obs::RemarkKind::Missed, Reason,
                Use.Funcs.size() == 1 ? (*Use.Funcs.begin())->name()
                                      : std::string(),
                A->Loc)
        .arg("field", A->FieldName)
        .arg("bitOff", Key.BitOff)
        .arg("bitWidth", Key.BitWidth)
        .arg("funcs", static_cast<uint64_t>(Use.Funcs.size()));
  };

  unsigned Localized = 0;
  for (auto &[Key, Use] : Uses) {
    if (Use.Funcs.size() != 1) {
      missed(Key, Use, "multi-function-use");
      continue;
    }
    Function *F = *Use.Funcs.begin();
    if (FuncsWithCopy.count(F)) {
      // Two live packets could alias one shadow local.
      missed(Key, Use, "packet-copy-alias");
      continue;
    }
    if (M.isExternMeta(Key.BitOff, Key.BitWidth)) {
      missed(Key, Use, "extern-visible");
      continue;
    }
    bool WideClash = false;
    for (const auto &[WLo, WW] : WideRanges)
      WideClash |= overlaps(Key.BitOff, Key.BitWidth, WLo, WW);
    if (WideClash) {
      missed(Key, Use, "overlaps-wide-access");
      continue;
    }
    bool RangeClash = false;
    for (const auto &[OtherKey, OtherUse] : Uses)
      if (!(OtherKey.BitOff == Key.BitOff &&
            OtherKey.BitWidth == Key.BitWidth))
        RangeClash |= overlaps(Key.BitOff, Key.BitWidth, OtherKey.BitOff,
                               OtherKey.BitWidth);
    if (RangeClash) {
      missed(Key, Use, "overlapping-ranges");
      continue;
    }

    // All accesses must share one storage type (they do by construction —
    // same field, same lowering — but verify before rewriting).
    Instr *FirstAcc = Use.Accesses.front();
    Type StoreTy = FirstAcc->op() == Op::MetaLoad
                       ? FirstAcc->type()
                       : FirstAcc->operand(1)->type();
    bool TypesAgree = true;
    for (Instr *A : Use.Accesses) {
      Type T = A->op() == Op::MetaLoad ? A->type() : A->operand(1)->type();
      TypesAgree &= (T == StoreTy);
    }
    if (!TypesAgree) {
      missed(Key, Use, "type-mismatch");
      continue;
    }

    if (Rem)
      Rem->remark("phr", obs::RemarkKind::Fired, "localized", F->name(),
                  FirstAcc->Loc)
          .arg("field", FirstAcc->FieldName)
          .arg("accesses", static_cast<uint64_t>(Use.Accesses.size()))
          .arg("bitOff", Key.BitOff)
          .arg("bitWidth", Key.BitWidth);

    // Shadow local, zero-initialized like the metadata block itself.
    BasicBlock *Entry = F->entry();
    auto *Slot = new Instr(Op::Alloca, Type::intTy(32));
    Slot->AllocTy = StoreTy;
    Slot->setName("meta." + FirstAcc->FieldName);
    Entry->insertAt(0, std::unique_ptr<Instr>(Slot));
    auto *Init = new Instr(Op::Store, Type::voidTy());
    Init->addOperand(Slot);
    Init->addOperand(F->constInt(StoreTy, 0));
    Entry->insertAt(1, std::unique_ptr<Instr>(Init));

    for (Instr *A : Use.Accesses) {
      BasicBlock *BB = A->parent();
      size_t Pos = BB->indexOf(A);
      if (A->op() == Op::MetaLoad) {
        auto *L = new Instr(Op::Load, StoreTy);
        L->addOperand(Slot);
        L->FieldName = A->FieldName;
        L->MetaLocalized = true;
        BB->insertAt(Pos, std::unique_ptr<Instr>(L));
        A->replaceAllUsesWith(L);
        A->dropOperands();
        BB->erase(A);
      } else {
        auto *S = new Instr(Op::Store, Type::voidTy());
        S->addOperand(Slot);
        S->addOperand(A->operand(1));
        S->FieldName = A->FieldName;
        S->MetaLocalized = true;
        BB->insertAt(Pos, std::unique_ptr<Instr>(S));
        A->dropOperands();
        BB->erase(A);
      }
    }
    ++Localized;
  }
  return Localized;
}
