//===- pktopt/Pac.h - packet access combining --------------------------------==//
//
// Paper Sec. 5.3.1: combines multiple protocol-field (DRAM) and metadata
// (SRAM) accesses into single wide accesses. Candidates must use the same
// packet handle, fall within the width one memory instruction can move,
// satisfy dominance, and have no intervening conflicting access. Combined
// loads become PktLoadWide + WideExtract; combined stores become
// (optional RMW PktLoadWide) + WideInsert chain + PktStoreWide.
//
//===----------------------------------------------------------------------===//

#ifndef SL_PKTOPT_PAC_H
#define SL_PKTOPT_PAC_H

#include "ir/Module.h"

namespace sl::obs {
class RemarkEmitter;
}

namespace sl::pktopt {

struct PacResult {
  unsigned CombinedLoads = 0;  ///< Original loads folded into wide loads.
  unsigned CombinedStores = 0; ///< Original stores folded into wide stores.
  unsigned WideLoads = 0;
  unsigned WideStores = 0;
};

/// Runs PAC over one function. Combining is performed within basic blocks
/// (after -O2 inlining the hot paths are long extended blocks, which is
/// where the paper's combining opportunities live).
///
/// With \p Rem attached each formed wide access emits a "pac" fired
/// remark (reason "combined-loads" / "combined-stores"; args: members,
/// words, space, savedAccesses) and each access left uncombined emits a
/// missed remark whose reason records what blocked combining
/// (span-exceeds-max-width, gap-too-large, not-dominated,
/// conflict-on-path, bits-redefined, no-combinable-partner). Remarks are
/// observation-only: decisions are identical with Rem null.
PacResult runPac(ir::Function &F, obs::RemarkEmitter *Rem = nullptr);

/// Runs PAC over every function of \p M.
PacResult runPac(ir::Module &M, obs::RemarkEmitter *Rem = nullptr);

} // namespace sl::pktopt

#endif // SL_PKTOPT_PAC_H
