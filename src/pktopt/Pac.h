//===- pktopt/Pac.h - packet access combining --------------------------------==//
//
// Paper Sec. 5.3.1: combines multiple protocol-field (DRAM) and metadata
// (SRAM) accesses into single wide accesses. Candidates must use the same
// packet handle, fall within the width one memory instruction can move,
// satisfy dominance, and have no intervening conflicting access. Combined
// loads become PktLoadWide + WideExtract; combined stores become
// (optional RMW PktLoadWide) + WideInsert chain + PktStoreWide.
//
//===----------------------------------------------------------------------===//

#ifndef SL_PKTOPT_PAC_H
#define SL_PKTOPT_PAC_H

#include "ir/Module.h"

namespace sl::pktopt {

struct PacResult {
  unsigned CombinedLoads = 0;  ///< Original loads folded into wide loads.
  unsigned CombinedStores = 0; ///< Original stores folded into wide stores.
  unsigned WideLoads = 0;
  unsigned WideStores = 0;
};

/// Runs PAC over one function. Combining is performed within basic blocks
/// (after -O2 inlining the hot paths are long extended blocks, which is
/// where the paper's combining opportunities live).
PacResult runPac(ir::Function &F);

/// Runs PAC over every function of \p M.
PacResult runPac(ir::Module &M);

} // namespace sl::pktopt

#endif // SL_PKTOPT_PAC_H
