//===- traffic/Traffic.cpp ----------------------------------------------------==//

#include "traffic/Traffic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace sl;
using namespace sl::traffic;

//===----------------------------------------------------------------------===//
// Zipf
//===----------------------------------------------------------------------===//

ZipfSampler::ZipfSampler(unsigned NumFlows, double Skew) {
  assert(NumFlows > 0 && "empty flow universe");
  Cdf.resize(NumFlows);
  double Acc = 0.0;
  for (unsigned K = 0; K != NumFlows; ++K) {
    Acc += 1.0 / std::pow(double(K + 1), Skew);
    Cdf[K] = Acc;
  }
  // Normalize so the last entry is exactly 1.0 regardless of rounding.
  for (double &C : Cdf)
    C /= Acc;
  Cdf.back() = 1.0;
}

uint64_t ZipfSampler::sample(Rng &R) const {
  // 53-bit uniform in [0, 1): plenty of resolution for any realistic
  // flow count, and bit-stable across platforms.
  double U = double(R.next() >> 11) * 0x1p-53;
  auto It = std::upper_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    --It;
  return static_cast<uint64_t>(It - Cdf.begin());
}

profile::Trace traffic::makeZipf(uint64_t Seed, unsigned N,
                                 const ZipfParams &P,
                                 const FrameBuilder &Build) {
  Rng R(Seed ^ 0x21BF1ECAFE5EEDull);
  ZipfSampler Z(P.NumFlows, P.Skew);
  std::map<uint64_t, uint64_t> Seq;
  profile::Trace T;
  T.reserve(N);
  for (unsigned I = 0; I != N; ++I) {
    uint64_t Flow = Z.sample(R);
    T.push_back(Build(Flow, Seq[Flow]++, R));
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Bursty
//===----------------------------------------------------------------------===//

profile::Trace traffic::makeBursty(uint64_t Seed, unsigned N,
                                   const BurstParams &P,
                                   const FrameBuilder &Build) {
  assert(P.NumFlows > 0 && P.MinBurst > 0 && P.MinBurst <= P.MaxBurst);
  Rng R(Seed ^ 0xB0857B0857B085ull);
  std::map<uint64_t, uint64_t> Seq;
  profile::Trace T;
  T.reserve(N);
  while (T.size() < N) {
    uint64_t Flow = R.nextBelow(P.NumFlows);
    uint64_t Len = R.nextInRange(P.MinBurst, P.MaxBurst);
    for (uint64_t K = 0; K != Len && T.size() < N; ++K)
      T.push_back(Build(Flow, Seq[Flow]++, R));
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Thrash
//===----------------------------------------------------------------------===//

profile::Trace traffic::makeThrash(uint64_t Seed, unsigned N,
                                   const ThrashParams &P,
                                   const FrameBuilder &Build) {
  assert(P.FlowUniverse > 0 && P.PacketsPerFlow > 0);
  Rng R(Seed ^ 0x7412A5421412A54ull);
  // A large odd stride is coprime with any power-of-two universe (and
  // with high probability otherwise), so consecutive flows land far
  // apart in any power-of-two hash table.
  uint64_t Stride = (R.next() | 1) % P.FlowUniverse;
  if (Stride == 0)
    Stride = 1;
  uint64_t Flow = R.nextBelow(P.FlowUniverse);
  profile::Trace T;
  T.reserve(N);
  while (T.size() < N) {
    for (unsigned K = 0; K != P.PacketsPerFlow && T.size() < N; ++K)
      T.push_back(Build(Flow, K, R));
    Flow = (Flow + Stride) % P.FlowUniverse;
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Malformed mutators
//===----------------------------------------------------------------------===//

profile::Trace traffic::truncateFrames(uint64_t Seed, const profile::Trace &T,
                                       const MalformParams &P) {
  Rng R(Seed ^ 0x7254CA7E7254CAull);
  profile::Trace Out = T;
  auto Num = static_cast<uint64_t>(P.Fraction * 4096.0);
  for (auto &Pkt : Out) {
    if (!R.chance(Num, 4096) || Pkt.Frame.size() <= P.MinBytes)
      continue;
    size_t NewLen =
        P.MinBytes + R.nextBelow(Pkt.Frame.size() - P.MinBytes);
    Pkt.Frame.resize(NewLen);
  }
  return Out;
}

profile::Trace traffic::corruptHeaders(uint64_t Seed, const profile::Trace &T,
                                       const MalformParams &P) {
  Rng R(Seed ^ 0xC0B2FD7C0B2FDull);
  profile::Trace Out = T;
  auto Num = static_cast<uint64_t>(P.Fraction * 4096.0);
  for (auto &Pkt : Out) {
    if (Pkt.Frame.size() < 15 || !R.chance(Num, 4096))
      continue;
    // Only meaningful on IPv4 frames (ethertype 0x0800).
    if (Pkt.Frame[12] != 0x08 || Pkt.Frame[13] != 0x00)
      continue;
    // Half get a bad version nibble, half an options-bearing hlen; either
    // way the fast-path "ver == 4 && hlen == 5" check must reject them.
    if (R.chance(1, 2))
      Pkt.Frame[14] = 0x65; // Version 6.
    else
      Pkt.Frame[14] = 0x4F; // Version 4, hlen 15 (60-byte header).
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Profiles
//===----------------------------------------------------------------------===//

const char *traffic::profileName(Profile P) {
  switch (P) {
  case Profile::Benign:
    return "benign";
  case Profile::Zipf:
    return "zipf";
  case Profile::Bursty:
    return "bursty";
  case Profile::Thrash:
    return "thrash";
  case Profile::Malformed:
    return "malformed";
  }
  return "unknown";
}

std::vector<Profile> traffic::allProfiles() {
  return {Profile::Benign, Profile::Zipf, Profile::Bursty, Profile::Thrash,
          Profile::Malformed};
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

std::map<uint64_t, uint64_t> traffic::flowCounts(
    const profile::Trace &T,
    const std::function<uint64_t(const profile::TracePacket &)> &FlowOf) {
  std::map<uint64_t, uint64_t> Counts;
  for (const auto &P : T)
    ++Counts[FlowOf(P)];
  return Counts;
}

double traffic::topFlowShare(const std::map<uint64_t, uint64_t> &Counts) {
  uint64_t Total = 0, Top = 0;
  for (const auto &[Flow, C] : Counts) {
    Total += C;
    Top = std::max(Top, C);
  }
  return Total ? double(Top) / double(Total) : 0.0;
}

uint64_t traffic::traceFingerprint(const profile::Trace &T) {
  uint64_t H = 0xCBF29CE484222325ull;
  auto mix = [&H](uint8_t B) {
    H ^= B;
    H *= 0x100000001B3ull;
  };
  for (const auto &P : T) {
    for (unsigned Shift = 0; Shift != 64; Shift += 8)
      mix(static_cast<uint8_t>(uint64_t(P.Frame.size()) >> Shift));
    mix(static_cast<uint8_t>(P.Port));
    mix(static_cast<uint8_t>(P.Port >> 8));
    for (uint8_t B : P.Frame)
      mix(B);
  }
  return H;
}
