//===- traffic/Traffic.h - adversarial trace generators ----------------------==//
//
// Deterministic, seeded generators for the hostile traffic the stateful
// workload tier runs against. The paper's three applications are
// header-rewrite pipelines over benign traces; the stateful apps (NAT,
// load balancer, SYN-flood mitigator) live and die by *which flow sends
// the next packet*, so every generator here separates two concerns:
//
//   * an arrival process deciding the flow sequence (Zipf heavy-hitter
//     skew, bursty on/off trains, flow-table-thrashing strides), and
//   * an app-supplied FrameBuilder turning (flow, seq) into the actual
//     frame bytes for that application's protocol stack.
//
// All randomness comes from the explicit xorshift64* Rng (support/Rng.h),
// so a (seed, params) pair reproduces the exact same profile::Trace on
// every platform — the property TrafficTest's golden snapshots pin down.
//
// Mutators (truncateFrames, corruptHeaders) take an existing trace and
// damage a deterministic subset of it, for the malformed-input paths.
//
//===----------------------------------------------------------------------===//

#ifndef SL_TRAFFIC_TRAFFIC_H
#define SL_TRAFFIC_TRAFFIC_H

#include "profile/Profiler.h"
#include "support/Rng.h"

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace sl::traffic {

/// Builds one frame for packet number \p Seq of flow \p Flow. \p R is for
/// per-packet jitter (payload bytes, ports within the flow's range, ...);
/// everything identifying the flow must derive from \p Flow alone so the
/// arrival process fully controls state churn.
using FrameBuilder =
    std::function<profile::TracePacket(uint64_t Flow, uint64_t Seq, Rng &R)>;

//===----------------------------------------------------------------------===//
// Zipf heavy-hitter skew
//===----------------------------------------------------------------------===//

/// Draws flow ranks 0..NumFlows-1 with P(rank k) proportional to
/// 1/(k+1)^Skew — the classic heavy-hitter distribution of real traffic
/// mixes. Deterministic: a precomputed CDF plus binary search, no
/// <random>.
class ZipfSampler {
public:
  ZipfSampler(unsigned NumFlows, double Skew);

  /// Next rank in [0, NumFlows).
  uint64_t sample(Rng &R) const;

  unsigned numFlows() const { return static_cast<unsigned>(Cdf.size()); }

private:
  std::vector<double> Cdf; ///< Inclusive cumulative mass per rank.
};

struct ZipfParams {
  unsigned NumFlows = 256;
  double Skew = 1.1;      ///< 0 = uniform; >1 = strong heavy hitters.
};

/// \p N packets whose flows follow a Zipf law. Flow ids are the ranks, so
/// flow 0 is the heaviest hitter.
profile::Trace makeZipf(uint64_t Seed, unsigned N, const ZipfParams &P,
                        const FrameBuilder &Build);

//===----------------------------------------------------------------------===//
// Bursty arrivals
//===----------------------------------------------------------------------===//

struct BurstParams {
  unsigned NumFlows = 64;
  unsigned MinBurst = 4;  ///< Shortest back-to-back train from one flow.
  unsigned MaxBurst = 32; ///< Longest.
};

/// On/off arrival trains: pick a flow uniformly, emit a burst of
/// MinBurst..MaxBurst consecutive packets from it, repeat until \p N
/// packets exist (the final burst is clipped). Stresses lock convoys and
/// per-flow state hot spots.
profile::Trace makeBursty(uint64_t Seed, unsigned N, const BurstParams &P,
                          const FrameBuilder &Build);

//===----------------------------------------------------------------------===//
// Flow-table thrashing
//===----------------------------------------------------------------------===//

struct ThrashParams {
  /// Size of the flow universe swept through. Choose well above the
  /// app's flow-table capacity so nearly every packet misses and
  /// allocates.
  uint64_t FlowUniverse = 1 << 16;
  /// Packets per flow before moving on (1 = pure churn: every packet a
  /// brand-new flow).
  unsigned PacketsPerFlow = 1;
};

/// Marches through a large flow universe with a coprime stride so
/// successive flows never share hash neighborhoods: worst-case table
/// churn for NAT port allocation and LB affinity caches.
profile::Trace makeThrash(uint64_t Seed, unsigned N, const ThrashParams &P,
                          const FrameBuilder &Build);

//===----------------------------------------------------------------------===//
// Malformed / truncated input mutators
//===----------------------------------------------------------------------===//

struct MalformParams {
  /// Fraction of packets damaged, in [0, 1].
  double Fraction = 0.25;
  /// Truncation keeps at least this many bytes so the Ethernet header
  /// (14B) every PPF reads first stays addressable. Apps must
  /// packet_length-guard anything deeper.
  unsigned MinBytes = 16;
};

/// Truncates a deterministic ~Fraction of \p T to random short lengths in
/// [MinBytes, original). Frames already at MinBytes are left alone.
profile::Trace truncateFrames(uint64_t Seed, const profile::Trace &T,
                              const MalformParams &P);

/// Corrupts the IPv4 version/hlen byte (offset 14) of ~Fraction of the
/// IPv4 frames in \p T: wrong version nibble or an options-bearing hlen,
/// both of which must bounce to the app's malformed/slow path.
profile::Trace corruptHeaders(uint64_t Seed, const profile::Trace &T,
                              const MalformParams &P);

//===----------------------------------------------------------------------===//
// Profile registry (benches / acceptance harness)
//===----------------------------------------------------------------------===//

/// The adversarial profiles every stateful acceptance bench sweeps.
enum class Profile : uint8_t {
  Benign,    ///< The app's own representative trace.
  Zipf,      ///< Heavy-hitter skew (hot flows hammer shared slots).
  Bursty,    ///< On/off trains (lock convoys).
  Thrash,    ///< Flow-table churn (allocation path saturated).
  Malformed, ///< Truncated + corrupted headers over a benign mix.
};

const char *profileName(Profile P);

/// All profiles, in the order benches report them.
std::vector<Profile> allProfiles();

//===----------------------------------------------------------------------===//
// Trace statistics (tests + acceptance checks)
//===----------------------------------------------------------------------===//

/// Packets per flow id, as recovered by \p FlowOf from each frame.
std::map<uint64_t, uint64_t>
flowCounts(const profile::Trace &T,
           const std::function<uint64_t(const profile::TracePacket &)> &FlowOf);

/// Share of packets belonging to the single heaviest flow in \p Counts.
double topFlowShare(const std::map<uint64_t, uint64_t> &Counts);

/// FNV-1a over every frame's bytes, port, and length — the golden-trace
/// fingerprint TrafficTest snapshots.
uint64_t traceFingerprint(const profile::Trace &T);

} // namespace sl::traffic

#endif // SL_TRAFFIC_TRAFFIC_H
