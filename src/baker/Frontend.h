//===- baker/Frontend.h - one-call Baker frontend -------------------------==//

#ifndef SL_BAKER_FRONTEND_H
#define SL_BAKER_FRONTEND_H

#include "baker/AST.h"
#include "baker/Sema.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace sl::baker {

/// A fully analyzed Baker program: the AST plus Sema's tables.
struct CompiledUnit {
  std::unique_ptr<Program> AST;
  SemaResult Sema;
};

/// Lexes, parses and analyzes \p Source. Returns null on error (details in
/// \p Diags).
std::unique_ptr<CompiledUnit> parseAndAnalyze(const std::string &Source,
                                              DiagEngine &Diags);

} // namespace sl::baker

#endif // SL_BAKER_FRONTEND_H
