//===- baker/Sema.cpp -----------------------------------------------------==//

#include "baker/Sema.h"

#include "support/BitUtils.h"
#include "support/Casting.h"

#include <cassert>
#include <functional>

using namespace sl;
using namespace sl::baker;

namespace {

/// Rounds a bit width up to the narrowest scalar type that holds it.
unsigned storageBitsFor(unsigned Bits) {
  if (Bits <= 8)
    return 8;
  if (Bits <= 16)
    return 16;
  if (Bits <= 32)
    return 32;
  return 64;
}

class Sema {
public:
  Sema(Program &P, DiagEngine &Diags) : P(P), Diags(Diags) {}

  SemaResult run();

private:
  // Layout / table construction.
  void buildProtocols();
  void buildMetadata();
  void buildGlobals();
  void buildFuncs();
  void buildWiring();

  // Demux checking: the demux expression may reference protocol fields.
  void checkDemux(ProtocolDecl &Proto);
  bool foldDemux(const Expr *E, const ProtocolDecl &Proto, uint64_t &Out);

  // Statement / expression checking.
  void checkFunction(FuncDecl &F);
  void checkStmt(Stmt *S);
  void checkVarDecl(VarDeclStmt *D);
  Type checkExpr(Expr *E);
  Type checkCall(CallExpr *E, const Type *ExpectedPacket);
  Type checkPacketInit(VarDeclStmt *D, CallExpr *CE);
  bool isLValue(const Expr *E) const;
  void requireScalar(const Expr *E, const char *Ctx);
  bool convertible(const Type &From, const Type &To) const;

  // Scope management.
  struct ScopeEntry {
    std::string Name;
    VarDeclStmt *Local = nullptr;
    ParamDecl *Param = nullptr;
  };
  void pushScope() { ScopeMarks.push_back(Scopes.size()); }
  void popScope() {
    Scopes.resize(ScopeMarks.back());
    ScopeMarks.pop_back();
  }
  ScopeEntry *lookupLocal(const std::string &Name) {
    for (size_t I = Scopes.size(); I != 0; --I)
      if (Scopes[I - 1].Name == Name)
        return &Scopes[I - 1];
    return nullptr;
  }

  Program &P;
  DiagEngine &Diags;
  SemaResult R;

  std::vector<ScopeEntry> Scopes;
  std::vector<size_t> ScopeMarks;
  FuncDecl *CurFunc = nullptr;
  unsigned LoopDepth = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Tables
//===----------------------------------------------------------------------===//

void Sema::buildProtocols() {
  for (auto &ProtoPtr : P.Protocols) {
    ProtocolDecl &Proto = *ProtoPtr;
    if (R.Protocols.count(Proto.Name)) {
      Diags.error(Proto.Loc, "duplicate protocol '%s'", Proto.Name.c_str());
      continue;
    }
    unsigned Off = 0;
    for (BitField &F : Proto.Fields) {
      if (F.Bits == 0 || F.Bits > 64) {
        Diags.error(F.Loc, "field '%s' width must be 1..64 bits",
                    F.Name.c_str());
        continue;
      }
      F.BitOff = Off;
      Off += F.Bits;
    }
    Proto.HeaderBits = Off;
    if (Off % 8 != 0)
      Diags.warning(Proto.Loc,
                    "protocol '%s' header is %u bits, not a whole number "
                    "of bytes",
                    Proto.Name.c_str(), Off);
    R.Protocols[Proto.Name] = &Proto;
  }
  for (auto &ProtoPtr : P.Protocols)
    checkDemux(*ProtoPtr);
}

bool Sema::foldDemux(const Expr *E, const ProtocolDecl &Proto, uint64_t &Out) {
  if (const auto *I = dyn_cast<IntLitExpr>(E)) {
    Out = I->Value;
    return true;
  }
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    uint64_t L, Rv;
    if (!foldDemux(B->LHS.get(), Proto, L) ||
        !foldDemux(B->RHS.get(), Proto, Rv))
      return false;
    switch (B->Op) {
    case BinOp::Add:
      Out = L + Rv;
      return true;
    case BinOp::Sub:
      Out = L - Rv;
      return true;
    case BinOp::Mul:
      Out = L * Rv;
      return true;
    case BinOp::Shl:
      Out = L << (Rv & 63);
      return true;
    case BinOp::Shr:
      Out = L >> (Rv & 63);
      return true;
    default:
      return false;
    }
  }
  return false; // Field references are not compile-time constant.
}

void Sema::checkDemux(ProtocolDecl &Proto) {
  if (!Proto.Demux)
    return;

  // Validate that any VarRefs inside demux name fields of this protocol.
  // (A small recursive walk; demux grammar is arithmetic over fields/ints.)
  std::function<void(Expr *)> Walk = [&](Expr *E) {
    if (auto *V = dyn_cast<VarRefExpr>(E)) {
      for (const BitField &F : Proto.Fields)
        if (F.Name == V->Name)
          return;
      Diags.error(V->Loc, "demux of protocol '%s' references unknown "
                          "field '%s'",
                  Proto.Name.c_str(), V->Name.c_str());
      return;
    }
    if (auto *B = dyn_cast<BinaryExpr>(E)) {
      Walk(B->LHS.get());
      Walk(B->RHS.get());
      return;
    }
    if (isa<IntLitExpr>(E))
      return;
    Diags.error(E->Loc, "unsupported construct in demux expression");
  };
  Walk(Proto.Demux.get());

  uint64_t Const = 0;
  if (foldDemux(Proto.Demux.get(), Proto, Const)) {
    Proto.DemuxIsConst = true;
    Proto.DemuxConstBytes = Const;
    if (Const * 8 != Proto.HeaderBits)
      Diags.warning(Proto.Loc,
                    "protocol '%s' demux (%llu bytes) does not match the "
                    "declared field total (%u bits)",
                    Proto.Name.c_str(),
                    static_cast<unsigned long long>(Const), Proto.HeaderBits);
  }
}

void Sema::buildMetadata() {
  // Builtin rx_port comes first.
  BitField RxPort;
  RxPort.Name = "rx_port";
  RxPort.Bits = 16;
  RxPort.BitOff = 0;
  R.MetaFields.push_back(RxPort);
  unsigned Off = 16;

  if (P.Metadata) {
    for (BitField &F : P.Metadata->Fields) {
      if (F.Bits == 0 || F.Bits > 32) {
        Diags.error(F.Loc, "metadata field '%s' width must be 1..32 bits",
                    F.Name.c_str());
        continue;
      }
      for (const BitField &Prev : R.MetaFields)
        if (Prev.Name == F.Name)
          Diags.error(F.Loc, "duplicate metadata field '%s'", F.Name.c_str());
      F.BitOff = Off;
      Off += F.Bits;
      R.MetaFields.push_back(F);
    }
  }
  R.MetaBits = Off;
}

void Sema::buildGlobals() {
  for (auto &G : P.Globals) {
    if (R.Globals.count(G->Name)) {
      Diags.error(G->Loc, "duplicate global '%s'", G->Name.c_str());
      continue;
    }
    if (G->ElemTy.isPacket()) {
      Diags.error(G->Loc, "globals cannot be packet handles");
      continue;
    }
    R.Globals[G->Name] = G.get();
  }
}

void Sema::buildFuncs() {
  for (auto &F : P.Funcs) {
    if (R.Funcs.count(F->Name)) {
      Diags.error(F->Loc, "duplicate function '%s'", F->Name.c_str());
      continue;
    }
    if (F->IsPpf) {
      if (F->Params.size() != 1 || !F->Params[0].Ty.isPacket()) {
        Diags.error(F->Loc, "PPF '%s' must take exactly one packet parameter",
                    F->Name.c_str());
        continue;
      }
      if (!F->RetTy.isVoid()) {
        Diags.error(F->Loc, "PPF '%s' must return void", F->Name.c_str());
        continue;
      }
    }
    for (const ParamDecl &Param : F->Params) {
      if (Param.Ty.isPacket() && !R.Protocols.count(Param.Ty.protocol()))
        Diags.error(Param.Loc, "unknown protocol '%s'",
                    Param.Ty.protocol().c_str());
    }
    R.Funcs[F->Name] = F.get();
  }
}

void Sema::buildWiring() {
  unsigned NextId = 1;
  for (auto &C : P.Channels) {
    if (C->Name == "rx" || C->Name == "tx") {
      Diags.error(C->Loc, "channel name '%s' is reserved", C->Name.c_str());
      continue;
    }
    for (ChannelDecl *Prev : R.Channels)
      if (Prev->Name == C->Name)
        Diags.error(C->Loc, "duplicate channel '%s'", C->Name.c_str());
    if (!R.Protocols.count(C->Proto)) {
      Diags.error(C->Loc, "channel '%s' has unknown protocol '%s'",
                  C->Name.c_str(), C->Proto.c_str());
      continue;
    }
    C->Id = NextId++;
    R.Channels.push_back(C.get());
  }

  for (auto &W : P.Wires) {
    auto FIt = R.Funcs.find(W->To);
    if (FIt == R.Funcs.end() || !FIt->second->IsPpf) {
      Diags.error(W->Loc, "wire target '%s' is not a PPF", W->To.c_str());
      continue;
    }
    FuncDecl *Target = FIt->second;
    if (W->From == "rx") {
      if (R.EntryPpf) {
        Diags.error(W->Loc, "multiple 'wire rx' declarations");
        continue;
      }
      R.EntryPpf = Target;
      R.EntryProto = Target->Params[0].Ty.protocol();
      continue;
    }
    ChannelDecl *Chan = nullptr;
    for (ChannelDecl *C : R.Channels)
      if (C->Name == W->From)
        Chan = C;
    if (!Chan) {
      Diags.error(W->Loc, "wire source '%s' is not a channel",
                  W->From.c_str());
      continue;
    }
    if (!Chan->DestPpf.empty()) {
      Diags.error(W->Loc, "channel '%s' is already wired to '%s'",
                  Chan->Name.c_str(), Chan->DestPpf.c_str());
      continue;
    }
    if (Target->Params[0].Ty.protocol() != Chan->Proto) {
      Diags.error(W->Loc,
                  "channel '%s' carries '%s' packets but PPF '%s' expects "
                  "'%s'",
                  Chan->Name.c_str(), Chan->Proto.c_str(), Target->Name.c_str(),
                  Target->Params[0].Ty.protocol().c_str());
      continue;
    }
    Chan->DestPpf = Target->Name;
    R.PpfInputs[Target->Name].push_back(Chan->Id);
  }

  for (ChannelDecl *C : R.Channels)
    if (C->DestPpf.empty())
      Diags.error(C->Loc, "channel '%s' is not wired to any PPF",
                  C->Name.c_str());
  bool HasPpf = false;
  for (const auto &F : P.Funcs)
    HasPpf |= F->IsPpf;
  if (!R.EntryPpf && HasPpf) {
    SourceLoc Loc;
    if (!P.Funcs.empty())
      Loc = P.Funcs.front()->Loc;
    Diags.error(Loc, "program has no 'wire rx -> <ppf>' declaration");
  }
}

//===----------------------------------------------------------------------===//
// Expression / statement checking
//===----------------------------------------------------------------------===//

bool Sema::convertible(const Type &From, const Type &To) const {
  if (From == To)
    return true;
  if (From.isScalar() && To.isScalar())
    return true; // Implicit widen/narrow with masking, C-style.
  return false;
}

void Sema::requireScalar(const Expr *E, const char *Ctx) {
  if (!E->Ty.isScalar() && !E->Ty.isVoid())
    Diags.error(E->Loc, "%s requires a scalar value, got '%s'", Ctx,
                E->Ty.str().c_str());
}

bool Sema::isLValue(const Expr *E) const {
  switch (E->kind()) {
  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRefExpr>(E);
    // Packet handles and whole arrays are not assignable.
    if (V->Ty.isPacket())
      return false;
    if (V->Global && V->Global->IsArray)
      return false;
    return true;
  }
  case Expr::Kind::Index:
  case Expr::Kind::PktField:
  case Expr::Kind::MetaField:
    return true;
  default:
    return false;
  }
}

Type Sema::checkExpr(Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit: {
    auto *I = cast<IntLitExpr>(E);
    E->Ty = Type::makeInt(I->Value > 0xFFFFFFFFull ? 64 : 32, false);
    return E->Ty;
  }
  case Expr::Kind::BoolLit:
    E->Ty = Type::makeBool();
    return E->Ty;

  case Expr::Kind::VarRef: {
    auto *V = cast<VarRefExpr>(E);
    if (ScopeEntry *SE = lookupLocal(V->Name)) {
      if (SE->Local) {
        V->LocalDecl = SE->Local;
        E->Ty = SE->Local->DeclTy;
      } else {
        V->Param = SE->Param;
        E->Ty = SE->Param->Ty;
      }
      return E->Ty;
    }
    auto GIt = R.Globals.find(V->Name);
    if (GIt != R.Globals.end()) {
      V->Global = GIt->second;
      E->Ty = GIt->second->ElemTy; // Scalar global; arrays via IndexExpr.
      return E->Ty;
    }
    Diags.error(E->Loc, "use of undeclared identifier '%s'", V->Name.c_str());
    E->Ty = Type::makeInt(32, false);
    return E->Ty;
  }

  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    Type SubTy = checkExpr(U->Sub.get());
    switch (U->Op) {
    case UnOp::Not:
      if (!SubTy.isScalar())
        Diags.error(E->Loc, "'!' requires a scalar operand");
      E->Ty = Type::makeBool();
      return E->Ty;
    case UnOp::Neg:
    case UnOp::BitNot:
      requireScalar(U->Sub.get(), "unary operator");
      E->Ty = SubTy.isInt() ? SubTy : Type::makeInt(32, false);
      return E->Ty;
    }
    break;
  }

  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    Type L = checkExpr(B->LHS.get());
    Type Rt = checkExpr(B->RHS.get());
    switch (B->Op) {
    case BinOp::LogAnd:
    case BinOp::LogOr:
      requireScalar(B->LHS.get(), "logical operator");
      requireScalar(B->RHS.get(), "logical operator");
      E->Ty = Type::makeBool();
      return E->Ty;
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      if (L.isPacket() || Rt.isPacket())
        Diags.error(E->Loc, "packet handles cannot be compared");
      E->Ty = Type::makeBool();
      return E->Ty;
    default: {
      requireScalar(B->LHS.get(), "arithmetic");
      requireScalar(B->RHS.get(), "arithmetic");
      unsigned Bits = 32;
      bool Signed = false;
      if (L.isInt() && Rt.isInt()) {
        Bits = std::max(L.bits(), Rt.bits());
        Signed = L.isSigned() && Rt.isSigned();
      } else if (L.isInt()) {
        Bits = L.bits();
        Signed = L.isSigned();
      } else if (Rt.isInt()) {
        Bits = Rt.bits();
        Signed = Rt.isSigned();
      }
      E->Ty = Type::makeInt(Bits, Signed);
      return E->Ty;
    }
    }
  }

  case Expr::Kind::Cond: {
    auto *C = cast<CondExpr>(E);
    checkExpr(C->Cond.get());
    requireScalar(C->Cond.get(), "conditional");
    Type T = checkExpr(C->TrueE.get());
    Type F = checkExpr(C->FalseE.get());
    if (!convertible(F, T))
      Diags.error(E->Loc, "conditional arms have incompatible types "
                          "('%s' vs '%s')",
                  T.str().c_str(), F.str().c_str());
    E->Ty = T;
    return E->Ty;
  }

  case Expr::Kind::Assign: {
    auto *A = cast<AssignExpr>(E);
    Type L = checkExpr(A->LHS.get());
    Type Rt = checkExpr(A->RHS.get());
    if (!isLValue(A->LHS.get()))
      Diags.error(A->LHS->Loc, "expression is not assignable");
    else if (!convertible(Rt, L))
      Diags.error(E->Loc, "cannot assign '%s' to '%s'", Rt.str().c_str(),
                  L.str().c_str());
    E->Ty = L;
    return E->Ty;
  }

  case Expr::Kind::Call:
    return checkCall(cast<CallExpr>(E), nullptr);

  case Expr::Kind::Index: {
    auto *I = cast<IndexExpr>(E);
    auto *Base = dyn_cast<VarRefExpr>(I->Base.get());
    if (!Base) {
      Diags.error(E->Loc, "only global arrays can be indexed");
      E->Ty = Type::makeInt(32, false);
      return E->Ty;
    }
    checkExpr(Base);
    if (!Base->Global || !Base->Global->IsArray) {
      Diags.error(E->Loc, "'%s' is not a global array", Base->Name.c_str());
      E->Ty = Type::makeInt(32, false);
      return E->Ty;
    }
    checkExpr(I->Index.get());
    requireScalar(I->Index.get(), "array index");
    E->Ty = Base->Global->ElemTy;
    return E->Ty;
  }

  case Expr::Kind::PktField: {
    auto *PF = cast<PktFieldExpr>(E);
    Type HTy = checkExpr(PF->Handle.get());
    if (!HTy.isPacket()) {
      Diags.error(E->Loc, "'->' requires a packet handle");
      E->Ty = Type::makeInt(32, false);
      return E->Ty;
    }
    auto PIt = R.Protocols.find(HTy.protocol());
    if (PIt == R.Protocols.end()) {
      Diags.error(E->Loc, "unknown protocol '%s'", HTy.protocol().c_str());
      E->Ty = Type::makeInt(32, false);
      return E->Ty;
    }
    for (const BitField &F : PIt->second->Fields) {
      if (F.Name == PF->Field) {
        PF->BitOff = F.BitOff;
        PF->BitWidth = F.Bits;
        E->Ty = Type::makeInt(storageBitsFor(F.Bits), false);
        return E->Ty;
      }
    }
    Diags.error(E->Loc, "protocol '%s' has no field '%s'",
                HTy.protocol().c_str(), PF->Field.c_str());
    E->Ty = Type::makeInt(32, false);
    return E->Ty;
  }

  case Expr::Kind::MetaField: {
    auto *MF = cast<MetaFieldExpr>(E);
    Type HTy = checkExpr(MF->Handle.get());
    if (!HTy.isPacket())
      Diags.error(E->Loc, "'->meta' requires a packet handle");
    for (const BitField &F : R.MetaFields) {
      if (F.Name == MF->Field) {
        MF->BitOff = F.BitOff;
        MF->BitWidth = F.Bits;
        E->Ty = Type::makeInt(storageBitsFor(F.Bits), false);
        return E->Ty;
      }
    }
    Diags.error(E->Loc, "no metadata field named '%s'", MF->Field.c_str());
    E->Ty = Type::makeInt(32, false);
    return E->Ty;
  }
  }
  assert(false && "unhandled expression kind");
  return Type::makeVoid();
}

Type Sema::checkCall(CallExpr *E, const Type *ExpectedPacket) {
  const std::string &Name = E->Callee;

  auto checkHandleArg = [&](unsigned Idx) -> Type {
    if (Idx >= E->Args.size())
      return Type::makeVoid();
    Type T = checkExpr(E->Args[Idx].get());
    if (!T.isPacket())
      Diags.error(E->Args[Idx]->Loc, "'%s' requires a packet handle",
                  Name.c_str());
    return T;
  };

  if (Name == "packet_decap" || Name == "packet_encap" ||
      Name == "packet_copy") {
    E->BI = Name == "packet_decap"  ? Builtin::Decap
            : Name == "packet_encap" ? Builtin::Encap
                                     : Builtin::Copy;
    if (E->Args.size() != 1) {
      Diags.error(E->Loc, "'%s' takes exactly one argument", Name.c_str());
      E->Ty = Type::makeVoid();
      return E->Ty;
    }
    Type ArgTy = checkHandleArg(0);
    if (!ExpectedPacket) {
      Diags.error(E->Loc, "'%s' result must initialize a packet handle "
                          "declaration",
                  Name.c_str());
      E->Ty = ArgTy;
      return E->Ty;
    }
    if (E->BI == Builtin::Copy && ArgTy.isPacket() &&
        ExpectedPacket->isPacket() &&
        ArgTy.protocol() != ExpectedPacket->protocol())
      Diags.error(E->Loc, "packet_copy cannot change the protocol "
                          "('%s' -> '%s')",
                  ArgTy.protocol().c_str(), ExpectedPacket->protocol().c_str());
    if (E->BI == Builtin::Encap && ExpectedPacket->isPacket()) {
      E->EncapProto = ExpectedPacket->protocol();
      auto It = R.Protocols.find(E->EncapProto);
      if (It != R.Protocols.end() && !It->second->DemuxIsConst)
        Diags.error(E->Loc, "packet_encap target protocol '%s' must have a "
                            "constant-size header",
                    E->EncapProto.c_str());
    }
    if (E->BI == Builtin::Decap && ExpectedPacket->isPacket())
      E->EncapProto = ExpectedPacket->protocol(); // Inner protocol.
    E->Ty = *ExpectedPacket;
    return E->Ty;
  }

  if (Name == "packet_drop") {
    E->BI = Builtin::Drop;
    if (E->Args.size() != 1)
      Diags.error(E->Loc, "'packet_drop' takes exactly one argument");
    else
      checkHandleArg(0);
    E->Ty = Type::makeVoid();
    return E->Ty;
  }

  if (Name == "packet_length") {
    E->BI = Builtin::PktLength;
    if (E->Args.size() != 1)
      Diags.error(E->Loc, "'packet_length' takes exactly one argument");
    else
      checkHandleArg(0);
    E->Ty = Type::makeInt(32, false);
    return E->Ty;
  }

  if (Name == "channel_put") {
    E->BI = Builtin::ChannelPut;
    if (E->Args.size() != 2) {
      Diags.error(E->Loc, "'channel_put' takes (channel, handle)");
      E->Ty = Type::makeVoid();
      return E->Ty;
    }
    auto *ChanRef = dyn_cast<VarRefExpr>(E->Args[0].get());
    if (!ChanRef) {
      Diags.error(E->Args[0]->Loc, "first argument of channel_put must name "
                                   "a channel");
      E->Ty = Type::makeVoid();
      return E->Ty;
    }
    Type HandleTy = checkHandleArg(1);
    if (ChanRef->Name == "tx") {
      E->ChannelId = TxChannelId;
    } else {
      ChannelDecl *Chan = nullptr;
      for (ChannelDecl *C : R.Channels)
        if (C->Name == ChanRef->Name)
          Chan = C;
      if (!Chan) {
        Diags.error(ChanRef->Loc, "unknown channel '%s'",
                    ChanRef->Name.c_str());
        E->Ty = Type::makeVoid();
        return E->Ty;
      }
      if (HandleTy.isPacket() && HandleTy.protocol() != Chan->Proto)
        Diags.error(E->Loc,
                    "channel '%s' carries '%s' packets, cannot put '%s'",
                    Chan->Name.c_str(), Chan->Proto.c_str(),
                    HandleTy.protocol().c_str());
      E->ChannelId = Chan->Id;
    }
    // Mark the channel name as resolved so lowering skips it.
    ChanRef->Ty = Type::makeVoid();
    E->Ty = Type::makeVoid();
    return E->Ty;
  }

  // Ordinary user function call.
  auto FIt = R.Funcs.find(Name);
  if (FIt == R.Funcs.end()) {
    Diags.error(E->Loc, "call to undeclared function '%s'", Name.c_str());
    E->Ty = Type::makeInt(32, false);
    return E->Ty;
  }
  FuncDecl *Callee = FIt->second;
  if (Callee->IsPpf)
    Diags.error(E->Loc, "PPF '%s' cannot be called directly; use channels",
                Name.c_str());
  E->CalleeDecl = Callee;
  if (E->Args.size() != Callee->Params.size()) {
    Diags.error(E->Loc, "'%s' expects %zu arguments, got %zu", Name.c_str(),
                Callee->Params.size(), E->Args.size());
  } else {
    for (size_t I = 0; I != E->Args.size(); ++I) {
      Type ArgTy = checkExpr(E->Args[I].get());
      const Type &ParamTy = Callee->Params[I].Ty;
      if (!convertible(ArgTy, ParamTy))
        Diags.error(E->Args[I]->Loc,
                    "argument %zu of '%s': cannot convert '%s' to '%s'",
                    I + 1, Name.c_str(), ArgTy.str().c_str(),
                    ParamTy.str().c_str());
    }
  }
  E->Ty = Callee->RetTy;
  return E->Ty;
}

void Sema::checkVarDecl(VarDeclStmt *D) {
  if (lookupLocal(D->Name))
    Diags.error(D->Loc, "redeclaration of '%s'", D->Name.c_str());

  if (D->DeclTy.isPacket()) {
    if (!R.Protocols.count(D->DeclTy.protocol()))
      Diags.error(D->Loc, "unknown protocol '%s'",
                  D->DeclTy.protocol().c_str());
    auto *CE = dyn_cast_or_null<CallExpr>(D->Init.get());
    if (!CE) {
      Diags.error(D->Loc, "packet handle '%s' must be initialized with "
                          "packet_decap/packet_encap/packet_copy",
                  D->Name.c_str());
    } else {
      checkCall(CE, &D->DeclTy);
      if (CE->BI != Builtin::Decap && CE->BI != Builtin::Encap &&
          CE->BI != Builtin::Copy)
        Diags.error(D->Loc, "packet handle '%s' must be initialized with "
                            "packet_decap/packet_encap/packet_copy",
                    D->Name.c_str());
    }
  } else if (D->Init) {
    Type InitTy = checkExpr(D->Init.get());
    if (!convertible(InitTy, D->DeclTy))
      Diags.error(D->Loc, "cannot initialize '%s' with '%s'",
                  D->DeclTy.str().c_str(), InitTy.str().c_str());
  }

  ScopeEntry SE;
  SE.Name = D->Name;
  SE.Local = D;
  Scopes.push_back(std::move(SE));
}

void Sema::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    auto *B = cast<BlockStmt>(S);
    pushScope();
    for (StmtPtr &Child : B->Body)
      checkStmt(Child.get());
    popScope();
    return;
  }
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    checkExpr(I->Cond.get());
    requireScalar(I->Cond.get(), "if condition");
    checkStmt(I->Then.get());
    if (I->Else)
      checkStmt(I->Else.get());
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    checkExpr(W->Cond.get());
    requireScalar(W->Cond.get(), "while condition");
    ++LoopDepth;
    checkStmt(W->Body.get());
    --LoopDepth;
    return;
  }
  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    pushScope();
    if (F->Init)
      checkStmt(F->Init.get());
    if (F->Cond) {
      checkExpr(F->Cond.get());
      requireScalar(F->Cond.get(), "for condition");
    }
    if (F->Step)
      checkExpr(F->Step.get());
    ++LoopDepth;
    checkStmt(F->Body.get());
    --LoopDepth;
    popScope();
    return;
  }
  case Stmt::Kind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    assert(CurFunc && "return outside function");
    if (Ret->Value) {
      Type T = checkExpr(Ret->Value.get());
      if (CurFunc->RetTy.isVoid())
        Diags.error(S->Loc, "void function '%s' cannot return a value",
                    CurFunc->Name.c_str());
      else if (!convertible(T, CurFunc->RetTy))
        Diags.error(S->Loc, "cannot return '%s' from function returning '%s'",
                    T.str().c_str(), CurFunc->RetTy.str().c_str());
    } else if (!CurFunc->RetTy.isVoid()) {
      Diags.error(S->Loc, "non-void function '%s' must return a value",
                  CurFunc->Name.c_str());
    }
    return;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    if (LoopDepth == 0)
      Diags.error(S->Loc, "break/continue outside of a loop");
    return;
  case Stmt::Kind::VarDecl:
    checkVarDecl(cast<VarDeclStmt>(S));
    return;
  case Stmt::Kind::Expr:
    checkExpr(cast<ExprStmt>(S)->E.get());
    return;
  case Stmt::Kind::Critical: {
    auto *C = cast<CriticalStmt>(S);
    auto It = R.Locks.find(C->LockName);
    if (It == R.Locks.end()) {
      unsigned Id = static_cast<unsigned>(R.Locks.size());
      It = R.Locks.emplace(C->LockName, Id).first;
    }
    C->LockId = It->second;
    checkStmt(C->Body.get());
    return;
  }
  }
  assert(false && "unhandled statement kind");
}

void Sema::checkFunction(FuncDecl &F) {
  CurFunc = &F;
  pushScope();
  for (ParamDecl &Param : F.Params) {
    ScopeEntry SE;
    SE.Name = Param.Name;
    SE.Param = &Param;
    Scopes.push_back(std::move(SE));
  }
  checkStmt(F.Body.get());
  popScope();
  CurFunc = nullptr;
}

SemaResult Sema::run() {
  buildProtocols();
  buildMetadata();
  buildGlobals();
  buildFuncs();
  buildWiring();
  // Function bodies are checked even when wiring had errors so users see
  // as many independent diagnostics as possible in one run.
  for (auto &F : P.Funcs)
    checkFunction(*F);
  return std::move(R);
}

SemaResult sl::baker::analyze(Program &P, DiagEngine &Diags) {
  Sema S(P, Diags);
  return S.run();
}
