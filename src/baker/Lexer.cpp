//===- baker/Lexer.cpp ----------------------------------------------------==//

#include "baker/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace sl;
using namespace sl::baker;

const char *sl::baker::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::KwProtocol:
    return "'protocol'";
  case TokKind::KwMetadata:
    return "'metadata'";
  case TokKind::KwModule:
    return "'module'";
  case TokKind::KwChannel:
    return "'channel'";
  case TokKind::KwWire:
    return "'wire'";
  case TokKind::KwDemux:
    return "'demux'";
  case TokKind::KwPpf:
    return "'ppf'";
  case TokKind::KwCritical:
    return "'critical'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwBool:
    return "'bool'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwU8:
    return "'u8'";
  case TokKind::KwU16:
    return "'u16'";
  case TokKind::KwU32:
    return "'u32'";
  case TokKind::KwU64:
    return "'u64'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Colon:
    return "':'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Arrow:
  case TokKind::WireArrow:
    return "'->'";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Question:
    return "'?'";
  }
  return "<unknown token>";
}

Lexer::Lexer(std::string Source, DiagEngine &Diags)
    : Src(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::lexNumber() {
  Token T;
  T.Kind = TokKind::IntLiteral;
  T.Loc = here();
  uint64_t Val = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    bool Any = false;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char C = advance();
      unsigned Digit = std::isdigit(static_cast<unsigned char>(C))
                           ? unsigned(C - '0')
                           : unsigned(std::tolower(C) - 'a') + 10;
      Val = Val * 16 + Digit;
      Any = true;
    }
    if (!Any)
      Diags.error(T.Loc, "hexadecimal literal has no digits");
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Val = Val * 10 + unsigned(advance() - '0');
  }
  T.IntVal = Val;
  return T;
}

Token Lexer::lexIdentifier() {
  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"protocol", TokKind::KwProtocol}, {"metadata", TokKind::KwMetadata},
      {"module", TokKind::KwModule},     {"channel", TokKind::KwChannel},
      {"wire", TokKind::KwWire},         {"demux", TokKind::KwDemux},
      {"ppf", TokKind::KwPpf},           {"critical", TokKind::KwCritical},
      {"if", TokKind::KwIf},             {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},       {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},     {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},       {"void", TokKind::KwVoid},
      {"bool", TokKind::KwBool},         {"int", TokKind::KwInt},
      {"u8", TokKind::KwU8},             {"u16", TokKind::KwU16},
      {"u32", TokKind::KwU32},           {"u64", TokKind::KwU64},
  };

  Token T;
  T.Loc = here();
  std::string Text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text += advance();
  auto It = Keywords.find(Text);
  if (It != Keywords.end()) {
    T.Kind = It->second;
  } else {
    T.Kind = TokKind::Identifier;
    T.Text = std::move(Text);
  }
  return T;
}

Token Lexer::next() {
  skipTrivia();
  Token T;
  T.Loc = here();
  if (atEnd()) {
    T.Kind = TokKind::Eof;
    return T;
  }
  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier();

  advance();
  auto two = [&](char Next, TokKind Both, TokKind One) {
    if (peek() == Next) {
      advance();
      T.Kind = Both;
    } else {
      T.Kind = One;
    }
    return T;
  };

  switch (C) {
  case '{':
    T.Kind = TokKind::LBrace;
    return T;
  case '}':
    T.Kind = TokKind::RBrace;
    return T;
  case '(':
    T.Kind = TokKind::LParen;
    return T;
  case ')':
    T.Kind = TokKind::RParen;
    return T;
  case '[':
    T.Kind = TokKind::LBracket;
    return T;
  case ']':
    T.Kind = TokKind::RBracket;
    return T;
  case ';':
    T.Kind = TokKind::Semi;
    return T;
  case ',':
    T.Kind = TokKind::Comma;
    return T;
  case ':':
    T.Kind = TokKind::Colon;
    return T;
  case '.':
    T.Kind = TokKind::Dot;
    return T;
  case '?':
    T.Kind = TokKind::Question;
    return T;
  case '~':
    T.Kind = TokKind::Tilde;
    return T;
  case '+':
    return two('=', TokKind::PlusAssign, TokKind::Plus);
  case '-':
    if (peek() == '>') {
      advance();
      T.Kind = TokKind::Arrow;
      return T;
    }
    return two('=', TokKind::MinusAssign, TokKind::Minus);
  case '*':
    T.Kind = TokKind::Star;
    return T;
  case '/':
    T.Kind = TokKind::Slash;
    return T;
  case '%':
    T.Kind = TokKind::Percent;
    return T;
  case '^':
    T.Kind = TokKind::Caret;
    return T;
  case '&':
    return two('&', TokKind::AmpAmp, TokKind::Amp);
  case '|':
    return two('|', TokKind::PipePipe, TokKind::Pipe);
  case '!':
    return two('=', TokKind::NotEq, TokKind::Bang);
  case '=':
    return two('=', TokKind::EqEq, TokKind::Assign);
  case '<':
    if (peek() == '<') {
      advance();
      T.Kind = TokKind::Shl;
      return T;
    }
    return two('=', TokKind::Le, TokKind::Lt);
  case '>':
    if (peek() == '>') {
      advance();
      T.Kind = TokKind::Shr;
      return T;
    }
    return two('=', TokKind::Ge, TokKind::Gt);
  default:
    Diags.error(T.Loc, "unexpected character '%c'", C);
    T.Kind = TokKind::Eof;
    return T;
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Toks;
  while (true) {
    Token T = next();
    bool Done = T.is(TokKind::Eof);
    Toks.push_back(std::move(T));
    if (Done || Diags.hasErrors())
      break;
  }
  if (!Toks.back().is(TokKind::Eof)) {
    Token T;
    T.Kind = TokKind::Eof;
    Toks.push_back(T);
  }
  return Toks;
}
