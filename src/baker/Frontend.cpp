//===- baker/Frontend.cpp -------------------------------------------------==//

#include "baker/Frontend.h"

#include "baker/Lexer.h"
#include "baker/Parser.h"

using namespace sl;
using namespace sl::baker;

std::unique_ptr<CompiledUnit>
sl::baker::parseAndAnalyze(const std::string &Source, DiagEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Toks = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;

  Parser P(std::move(Toks), Diags);
  std::unique_ptr<Program> AST = P.parseProgram();
  if (Diags.hasErrors() || !AST)
    return nullptr;

  auto Unit = std::make_unique<CompiledUnit>();
  Unit->Sema = analyze(*AST, Diags);
  Unit->AST = std::move(AST);
  if (Diags.hasErrors())
    return nullptr;
  return Unit;
}
