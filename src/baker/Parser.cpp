//===- baker/Parser.cpp ---------------------------------------------------==//

#include "baker/Parser.h"

#include <cassert>

using namespace sl;
using namespace sl::baker;

Parser::Parser(std::vector<Token> Toks, DiagEngine &Diags)
    : Toks(std::move(Toks)), Diags(Diags) {
  assert(!this->Toks.empty() && this->Toks.back().is(TokKind::Eof) &&
         "token stream must end with Eof");
}

Token Parser::take() {
  Token T = Toks[Pos];
  if (!T.is(TokKind::Eof))
    ++Pos;
  return T;
}

bool Parser::accept(TokKind K) {
  if (!cur().is(K))
    return false;
  take();
  return true;
}

bool Parser::expect(TokKind K, const char *Ctx) {
  if (accept(K))
    return true;
  Diags.error(cur().Loc, "expected %s %s, found %s", tokKindName(K), Ctx,
              tokKindName(cur().Kind));
  return false;
}

/// After an error, skip to the next ';' or '}' so parsing can continue.
void Parser::skipToRecovery() {
  while (!cur().is(TokKind::Eof)) {
    TokKind K = take().Kind;
    if (K == TokKind::Semi || K == TokKind::RBrace)
      return;
  }
}

bool Parser::isTypeToken(TokKind K) const {
  switch (K) {
  case TokKind::KwVoid:
  case TokKind::KwBool:
  case TokKind::KwInt:
  case TokKind::KwU8:
  case TokKind::KwU16:
  case TokKind::KwU32:
  case TokKind::KwU64:
    return true;
  default:
    return false;
  }
}

Type Parser::parseScalarType() {
  Token T = take();
  switch (T.Kind) {
  case TokKind::KwVoid:
    return Type::makeVoid();
  case TokKind::KwBool:
    return Type::makeBool();
  case TokKind::KwInt:
    return Type::makeInt(32, /*IsSigned=*/true);
  case TokKind::KwU8:
    return Type::makeInt(8, false);
  case TokKind::KwU16:
    return Type::makeInt(16, false);
  case TokKind::KwU32:
    return Type::makeInt(32, false);
  case TokKind::KwU64:
    return Type::makeInt(64, false);
  default:
    Diags.error(T.Loc, "expected a type, found %s", tokKindName(T.Kind));
    return Type::makeInt(32, false);
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  auto P = std::make_unique<Program>();
  while (!cur().is(TokKind::Eof) && !Diags.hasErrors())
    parseTopLevel(*P);
  return P;
}

void Parser::parseTopLevel(Program &P) {
  switch (cur().Kind) {
  case TokKind::KwProtocol:
    if (auto D = parseProtocol())
      P.Protocols.push_back(std::move(D));
    return;
  case TokKind::KwMetadata: {
    auto M = parseMetadata();
    if (!M)
      return;
    if (P.Metadata) {
      Diags.error(M->Loc, "duplicate metadata declaration");
      return;
    }
    P.Metadata = std::move(M);
    return;
  }
  case TokKind::KwModule:
    parseModule(P);
    return;
  case TokKind::KwPpf: {
    if (auto F = parsePpf(""))
      P.Funcs.push_back(std::move(F));
    return;
  }
  default:
    if (isTypeToken(cur().Kind)) {
      parseGlobalOrFunc(P, "");
      return;
    }
    Diags.error(cur().Loc, "expected a top-level declaration, found %s",
                tokKindName(cur().Kind));
    skipToRecovery();
  }
}

std::unique_ptr<ProtocolDecl> Parser::parseProtocol() {
  auto D = std::make_unique<ProtocolDecl>();
  D->Loc = cur().Loc;
  take(); // 'protocol'
  if (!cur().is(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected protocol name");
    skipToRecovery();
    return nullptr;
  }
  D->Name = take().Text;
  if (!expect(TokKind::LBrace, "after protocol name"))
    return nullptr;

  while (!cur().is(TokKind::RBrace) && !cur().is(TokKind::Eof)) {
    if (cur().is(TokKind::KwDemux)) {
      SourceLoc DLoc = take().Loc;
      if (!expect(TokKind::LBrace, "after 'demux'"))
        return nullptr;
      D->Demux = parseExpr();
      if (!D->Demux)
        return nullptr;
      D->Demux->Loc = DLoc;
      if (!expect(TokKind::RBrace, "after demux expression") ||
          !expect(TokKind::Semi, "after demux clause"))
        return nullptr;
      continue;
    }
    BitField F;
    F.Loc = cur().Loc;
    if (!cur().is(TokKind::Identifier)) {
      Diags.error(cur().Loc, "expected field name in protocol '%s'",
                  D->Name.c_str());
      skipToRecovery();
      return nullptr;
    }
    F.Name = take().Text;
    if (!expect(TokKind::Colon, "after field name"))
      return nullptr;
    if (!cur().is(TokKind::IntLiteral)) {
      Diags.error(cur().Loc, "expected field bit width");
      return nullptr;
    }
    F.Bits = static_cast<unsigned>(take().IntVal);
    if (!expect(TokKind::Semi, "after field width"))
      return nullptr;
    D->Fields.push_back(std::move(F));
  }
  if (!expect(TokKind::RBrace, "to close protocol"))
    return nullptr;
  accept(TokKind::Semi);
  if (!D->Demux)
    Diags.error(D->Loc, "protocol '%s' is missing a demux clause",
                D->Name.c_str());
  return D;
}

std::unique_ptr<MetadataDecl> Parser::parseMetadata() {
  auto D = std::make_unique<MetadataDecl>();
  D->Loc = cur().Loc;
  take(); // 'metadata'
  if (!expect(TokKind::LBrace, "after 'metadata'"))
    return nullptr;
  while (!cur().is(TokKind::RBrace) && !cur().is(TokKind::Eof)) {
    BitField F;
    F.Loc = cur().Loc;
    if (!cur().is(TokKind::Identifier)) {
      Diags.error(cur().Loc, "expected metadata field name");
      skipToRecovery();
      return nullptr;
    }
    F.Name = take().Text;
    if (!expect(TokKind::Colon, "after metadata field name"))
      return nullptr;
    if (!cur().is(TokKind::IntLiteral)) {
      Diags.error(cur().Loc, "expected metadata field bit width");
      return nullptr;
    }
    F.Bits = static_cast<unsigned>(take().IntVal);
    if (!expect(TokKind::Semi, "after metadata field"))
      return nullptr;
    D->Fields.push_back(std::move(F));
  }
  if (!expect(TokKind::RBrace, "to close metadata"))
    return nullptr;
  accept(TokKind::Semi);
  return D;
}

void Parser::parseModule(Program &P) {
  auto M = std::make_unique<ModuleDecl>();
  M->Loc = cur().Loc;
  take(); // 'module'
  if (!cur().is(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected module name");
    skipToRecovery();
    return;
  }
  M->Name = take().Text;
  if (!expect(TokKind::LBrace, "after module name"))
    return;
  std::string ModName = M->Name;
  P.Modules.push_back(std::move(M));
  while (!cur().is(TokKind::RBrace) && !cur().is(TokKind::Eof) &&
         !Diags.hasErrors())
    parseModuleItem(P, ModName);
  expect(TokKind::RBrace, "to close module");
  accept(TokKind::Semi);
}

void Parser::parseModuleItem(Program &P, const std::string &ModName) {
  switch (cur().Kind) {
  case TokKind::KwChannel:
    if (auto C = parseChannel())
      P.Channels.push_back(std::move(C));
    return;
  case TokKind::KwWire:
    if (auto W = parseWire())
      P.Wires.push_back(std::move(W));
    return;
  case TokKind::KwPpf:
    if (auto F = parsePpf(ModName))
      P.Funcs.push_back(std::move(F));
    return;
  default:
    if (isTypeToken(cur().Kind)) {
      parseGlobalOrFunc(P, ModName);
      return;
    }
    Diags.error(cur().Loc, "expected a module item, found %s",
                tokKindName(cur().Kind));
    skipToRecovery();
  }
}

std::unique_ptr<ChannelDecl> Parser::parseChannel() {
  auto C = std::make_unique<ChannelDecl>();
  C->Loc = cur().Loc;
  take(); // 'channel'
  if (!cur().is(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected channel name");
    skipToRecovery();
    return nullptr;
  }
  C->Name = take().Text;
  if (!expect(TokKind::Colon, "after channel name"))
    return nullptr;
  if (!cur().is(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected protocol name after ':'");
    return nullptr;
  }
  C->Proto = take().Text;
  if (!expect(TokKind::Semi, "after channel declaration"))
    return nullptr;
  return C;
}

std::unique_ptr<WireDecl> Parser::parseWire() {
  auto W = std::make_unique<WireDecl>();
  W->Loc = cur().Loc;
  take(); // 'wire'
  if (!cur().is(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected channel name after 'wire'");
    skipToRecovery();
    return nullptr;
  }
  W->From = take().Text;
  if (!expect(TokKind::Arrow, "in wire declaration"))
    return nullptr;
  if (!cur().is(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected PPF name after '->'");
    return nullptr;
  }
  W->To = take().Text;
  if (!expect(TokKind::Semi, "after wire declaration"))
    return nullptr;
  return W;
}

std::unique_ptr<FuncDecl> Parser::parsePpf(const std::string &ModName) {
  auto F = std::make_unique<FuncDecl>();
  F->Loc = cur().Loc;
  F->IsPpf = true;
  F->RetTy = Type::makeVoid();
  F->ModuleName = ModName;
  take(); // 'ppf'
  if (!cur().is(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected PPF name");
    skipToRecovery();
    return nullptr;
  }
  F->Name = take().Text;
  if (!expect(TokKind::LParen, "after PPF name"))
    return nullptr;
  F->Params = parseParamList();
  if (!expect(TokKind::RParen, "after PPF parameter"))
    return nullptr;
  if (!cur().is(TokKind::LBrace)) {
    Diags.error(cur().Loc, "expected PPF body");
    return nullptr;
  }
  F->Body = parseBlock();
  return F->Body ? std::move(F) : nullptr;
}

void Parser::parseGlobalOrFunc(Program &P, const std::string &ModName) {
  SourceLoc Loc = cur().Loc;
  Type Ty = parseScalarType();
  if (!cur().is(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected a name after type");
    skipToRecovery();
    return;
  }
  std::string Name = take().Text;

  if (cur().is(TokKind::LParen)) {
    // Helper function.
    take();
    auto F = std::make_unique<FuncDecl>();
    F->Loc = Loc;
    F->RetTy = Ty;
    F->Name = std::move(Name);
    F->ModuleName = ModName;
    F->Params = parseParamList();
    if (!expect(TokKind::RParen, "after parameter list"))
      return;
    if (!cur().is(TokKind::LBrace)) {
      Diags.error(cur().Loc, "expected function body");
      return;
    }
    F->Body = parseBlock();
    if (F->Body)
      P.Funcs.push_back(std::move(F));
    return;
  }

  // Global variable or array.
  auto G = std::make_unique<GlobalDecl>();
  G->Loc = Loc;
  G->ElemTy = Ty;
  G->Name = std::move(Name);
  G->ModuleName = ModName;
  if (Ty.isVoid()) {
    Diags.error(Loc, "global '%s' cannot have type void", G->Name.c_str());
    skipToRecovery();
    return;
  }
  if (accept(TokKind::LBracket)) {
    if (!cur().is(TokKind::IntLiteral)) {
      Diags.error(cur().Loc, "expected array size");
      skipToRecovery();
      return;
    }
    G->Count = take().IntVal;
    G->IsArray = true;
    if (!expect(TokKind::RBracket, "after array size"))
      return;
    if (G->Count == 0) {
      Diags.error(Loc, "array '%s' has zero size", G->Name.c_str());
      return;
    }
  }
  if (accept(TokKind::Assign)) {
    if (accept(TokKind::LBrace)) {
      while (!cur().is(TokKind::RBrace)) {
        if (!cur().is(TokKind::IntLiteral)) {
          Diags.error(cur().Loc, "expected integer initializer");
          skipToRecovery();
          return;
        }
        G->Init.push_back(take().IntVal);
        if (!accept(TokKind::Comma))
          break;
      }
      if (!expect(TokKind::RBrace, "to close initializer list"))
        return;
    } else if (cur().is(TokKind::IntLiteral)) {
      G->Init.push_back(take().IntVal);
    } else {
      Diags.error(cur().Loc, "expected constant initializer");
      skipToRecovery();
      return;
    }
  }
  if (!expect(TokKind::Semi, "after global declaration"))
    return;
  if (G->Init.size() > G->Count) {
    Diags.error(G->Loc, "too many initializers for '%s'", G->Name.c_str());
    return;
  }
  P.Globals.push_back(std::move(G));
}

std::vector<ParamDecl> Parser::parseParamList() {
  std::vector<ParamDecl> Params;
  if (cur().is(TokKind::RParen) || cur().is(TokKind::KwVoid)) {
    accept(TokKind::KwVoid);
    return Params;
  }
  while (true) {
    ParamDecl D;
    D.Loc = cur().Loc;
    if (cur().is(TokKind::Identifier)) {
      // Packet parameter: `<proto>_pkt * name`.
      std::string TyName = take().Text;
      const std::string Suffix = "_pkt";
      if (TyName.size() <= Suffix.size() ||
          TyName.compare(TyName.size() - Suffix.size(), Suffix.size(),
                         Suffix) != 0) {
        Diags.error(D.Loc, "unknown parameter type '%s' (packet parameters "
                           "are written '<proto>_pkt * name')",
                    TyName.c_str());
        return Params;
      }
      std::string Proto = TyName.substr(0, TyName.size() - Suffix.size());
      if (!expect(TokKind::Star, "in packet parameter"))
        return Params;
      D.Ty = Type::makePacket(Proto);
    } else {
      D.Ty = parseScalarType();
    }
    if (!cur().is(TokKind::Identifier)) {
      Diags.error(cur().Loc, "expected parameter name");
      return Params;
    }
    D.Name = take().Text;
    Params.push_back(std::move(D));
    if (!accept(TokKind::Comma))
      return Params;
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = cur().Loc;
  if (!expect(TokKind::LBrace, "to open block"))
    return nullptr;
  std::vector<StmtPtr> Body;
  while (!cur().is(TokKind::RBrace) && !cur().is(TokKind::Eof) &&
         !Diags.hasErrors()) {
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    Body.push_back(std::move(S));
  }
  if (!expect(TokKind::RBrace, "to close block"))
    return nullptr;
  return std::make_unique<BlockStmt>(std::move(Body), Loc);
}

StmtPtr Parser::parseStmt() {
  switch (cur().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwCritical:
    return parseCritical();
  case TokKind::KwReturn: {
    SourceLoc Loc = take().Loc;
    ExprPtr V;
    if (!cur().is(TokKind::Semi)) {
      V = parseExpr();
      if (!V)
        return nullptr;
    }
    if (!expect(TokKind::Semi, "after return"))
      return nullptr;
    return std::make_unique<ReturnStmt>(std::move(V), Loc);
  }
  case TokKind::KwBreak: {
    SourceLoc Loc = take().Loc;
    if (!expect(TokKind::Semi, "after break"))
      return nullptr;
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokKind::KwContinue: {
    SourceLoc Loc = take().Loc;
    if (!expect(TokKind::Semi, "after continue"))
      return nullptr;
    return std::make_unique<ContinueStmt>(Loc);
  }
  default:
    return parseVarDeclOrExprStmt(/*ConsumeSemi=*/true);
  }
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = take().Loc; // 'if'
  if (!expect(TokKind::LParen, "after 'if'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "after if condition"))
    return nullptr;
  StmtPtr Then = parseStmt();
  if (!Then)
    return nullptr;
  StmtPtr Else;
  if (accept(TokKind::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = take().Loc; // 'while'
  if (!expect(TokKind::LParen, "after 'while'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "after while condition"))
    return nullptr;
  StmtPtr Body = parseStmt();
  if (!Body)
    return nullptr;
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = take().Loc; // 'for'
  if (!expect(TokKind::LParen, "after 'for'"))
    return nullptr;
  StmtPtr Init;
  if (!accept(TokKind::Semi)) {
    Init = parseVarDeclOrExprStmt(/*ConsumeSemi=*/true);
    if (!Init)
      return nullptr;
  }
  ExprPtr Cond;
  if (!cur().is(TokKind::Semi)) {
    Cond = parseExpr();
    if (!Cond)
      return nullptr;
  }
  if (!expect(TokKind::Semi, "after for condition"))
    return nullptr;
  ExprPtr Step;
  if (!cur().is(TokKind::RParen)) {
    Step = parseExpr();
    if (!Step)
      return nullptr;
  }
  if (!expect(TokKind::RParen, "after for clauses"))
    return nullptr;
  StmtPtr Body = parseStmt();
  if (!Body)
    return nullptr;
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Step), std::move(Body), Loc);
}

StmtPtr Parser::parseCritical() {
  SourceLoc Loc = take().Loc; // 'critical'
  if (!expect(TokKind::LParen, "after 'critical'"))
    return nullptr;
  if (!cur().is(TokKind::Identifier)) {
    Diags.error(cur().Loc, "expected lock name");
    return nullptr;
  }
  std::string Lock = take().Text;
  if (!expect(TokKind::RParen, "after lock name"))
    return nullptr;
  StmtPtr Body = parseBlock();
  if (!Body)
    return nullptr;
  return std::make_unique<CriticalStmt>(std::move(Lock), std::move(Body), Loc);
}

StmtPtr Parser::parseVarDeclOrExprStmt(bool ConsumeSemi) {
  SourceLoc Loc = cur().Loc;

  // Scalar declaration: starts with a type keyword.
  if (isTypeToken(cur().Kind)) {
    Type Ty = parseScalarType();
    if (!cur().is(TokKind::Identifier)) {
      Diags.error(cur().Loc, "expected variable name");
      return nullptr;
    }
    std::string Name = take().Text;
    ExprPtr Init;
    if (accept(TokKind::Assign)) {
      Init = parseExpr();
      if (!Init)
        return nullptr;
    }
    if (ConsumeSemi && !expect(TokKind::Semi, "after declaration"))
      return nullptr;
    return std::make_unique<VarDeclStmt>(Ty, std::move(Name), std::move(Init),
                                         Loc);
  }

  // Packet handle declaration: `<proto>_pkt * name = expr;`.
  if (cur().is(TokKind::Identifier) && peek(1).is(TokKind::Star) &&
      peek(2).is(TokKind::Identifier)) {
    std::string TyName = take().Text;
    const std::string Suffix = "_pkt";
    if (TyName.size() <= Suffix.size() ||
        TyName.compare(TyName.size() - Suffix.size(), Suffix.size(),
                       Suffix) != 0) {
      Diags.error(Loc, "unknown handle type '%s'", TyName.c_str());
      return nullptr;
    }
    take(); // '*'
    std::string Name = take().Text;
    if (!expect(TokKind::Assign, "packet handles must be initialized"))
      return nullptr;
    ExprPtr Init = parseExpr();
    if (!Init)
      return nullptr;
    if (ConsumeSemi && !expect(TokKind::Semi, "after declaration"))
      return nullptr;
    Type Ty = Type::makePacket(TyName.substr(0, TyName.size() - Suffix.size()));
    return std::make_unique<VarDeclStmt>(Ty, std::move(Name), std::move(Init),
                                         Loc);
  }

  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (ConsumeSemi && !expect(TokKind::Semi, "after expression"))
    return nullptr;
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseAssign(); }

/// Deep-copies an lvalue expression so `a += b` can desugar to `a = a + b`.
ExprPtr Parser::cloneLValue(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::VarRef: {
    const auto *V = cast<VarRefExpr>(E);
    return std::make_unique<VarRefExpr>(V->Name, V->Loc);
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    ExprPtr Base = cloneLValue(I->Base.get());
    ExprPtr Idx = cloneLValue(I->Index.get());
    if (!Base || !Idx)
      return nullptr;
    return std::make_unique<IndexExpr>(std::move(Base), std::move(Idx),
                                       I->Loc);
  }
  case Expr::Kind::PktField: {
    const auto *P = cast<PktFieldExpr>(E);
    ExprPtr H = cloneLValue(P->Handle.get());
    if (!H)
      return nullptr;
    return std::make_unique<PktFieldExpr>(std::move(H), P->Field, P->Loc);
  }
  case Expr::Kind::MetaField: {
    const auto *M = cast<MetaFieldExpr>(E);
    ExprPtr H = cloneLValue(M->Handle.get());
    if (!H)
      return nullptr;
    return std::make_unique<MetaFieldExpr>(std::move(H), M->Field, M->Loc);
  }
  case Expr::Kind::IntLit: {
    const auto *I = cast<IntLitExpr>(E);
    return std::make_unique<IntLitExpr>(I->Value, I->Loc);
  }
  default:
    Diags.error(E->Loc, "expression is too complex for compound assignment");
    return nullptr;
  }
}

ExprPtr Parser::parseAssign() {
  ExprPtr LHS = parseCond();
  if (!LHS)
    return nullptr;
  SourceLoc Loc = cur().Loc;
  if (accept(TokKind::Assign)) {
    ExprPtr RHS = parseAssign();
    if (!RHS)
      return nullptr;
    return std::make_unique<AssignExpr>(std::move(LHS), std::move(RHS), Loc);
  }
  if (cur().is(TokKind::PlusAssign) || cur().is(TokKind::MinusAssign)) {
    BinOp Op = cur().is(TokKind::PlusAssign) ? BinOp::Add : BinOp::Sub;
    take();
    ExprPtr RHS = parseAssign();
    if (!RHS)
      return nullptr;
    ExprPtr LHSCopy = cloneLValue(LHS.get());
    if (!LHSCopy)
      return nullptr;
    auto Sum = std::make_unique<BinaryExpr>(Op, std::move(LHSCopy),
                                            std::move(RHS), Loc);
    return std::make_unique<AssignExpr>(std::move(LHS), std::move(Sum), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseCond() {
  ExprPtr C = parseBinary(0);
  if (!C)
    return nullptr;
  if (!cur().is(TokKind::Question))
    return C;
  SourceLoc Loc = take().Loc;
  ExprPtr T = parseExpr();
  if (!T || !expect(TokKind::Colon, "in conditional expression"))
    return nullptr;
  ExprPtr F = parseCond();
  if (!F)
    return nullptr;
  return std::make_unique<CondExpr>(std::move(C), std::move(T), std::move(F),
                                    Loc);
}

namespace {
/// Binary operator precedence; higher binds tighter. -1 means "not binary".
int binPrec(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::Pipe:
    return 3;
  case TokKind::Caret:
    return 4;
  case TokKind::Amp:
    return 5;
  case TokKind::EqEq:
  case TokKind::NotEq:
    return 6;
  case TokKind::Lt:
  case TokKind::Le:
  case TokKind::Gt:
  case TokKind::Ge:
    return 7;
  case TokKind::Shl:
  case TokKind::Shr:
    return 8;
  case TokKind::Plus:
  case TokKind::Minus:
    return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 10;
  default:
    return -1;
  }
}

BinOp binOpFor(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return BinOp::LogOr;
  case TokKind::AmpAmp:
    return BinOp::LogAnd;
  case TokKind::Pipe:
    return BinOp::Or;
  case TokKind::Caret:
    return BinOp::Xor;
  case TokKind::Amp:
    return BinOp::And;
  case TokKind::EqEq:
    return BinOp::Eq;
  case TokKind::NotEq:
    return BinOp::Ne;
  case TokKind::Lt:
    return BinOp::Lt;
  case TokKind::Le:
    return BinOp::Le;
  case TokKind::Gt:
    return BinOp::Gt;
  case TokKind::Ge:
    return BinOp::Ge;
  case TokKind::Shl:
    return BinOp::Shl;
  case TokKind::Shr:
    return BinOp::Shr;
  case TokKind::Plus:
    return BinOp::Add;
  case TokKind::Minus:
    return BinOp::Sub;
  case TokKind::Star:
    return BinOp::Mul;
  case TokKind::Slash:
    return BinOp::Div;
  case TokKind::Percent:
    return BinOp::Rem;
  default:
    assert(false && "not a binary operator token");
    return BinOp::Add;
  }
}
} // namespace

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr LHS = parseUnary();
  if (!LHS)
    return nullptr;
  while (true) {
    int Prec = binPrec(cur().Kind);
    if (Prec < 0 || Prec < MinPrec)
      return LHS;
    Token OpTok = take();
    ExprPtr RHS = parseBinary(Prec + 1);
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(binOpFor(OpTok.Kind), std::move(LHS),
                                       std::move(RHS), OpTok.Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = cur().Loc;
  if (accept(TokKind::Minus)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnOp::Neg, std::move(Sub), Loc);
  }
  if (accept(TokKind::Bang)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnOp::Not, std::move(Sub), Loc);
  }
  if (accept(TokKind::Tilde)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnOp::BitNot, std::move(Sub), Loc);
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    if (cur().is(TokKind::Arrow)) {
      SourceLoc Loc = take().Loc;
      if (!cur().is(TokKind::Identifier)) {
        Diags.error(cur().Loc, "expected field name after '->'");
        return nullptr;
      }
      std::string Field = take().Text;
      if (Field == "meta") {
        if (!expect(TokKind::Dot, "after 'meta'"))
          return nullptr;
        if (!cur().is(TokKind::Identifier)) {
          Diags.error(cur().Loc, "expected metadata field name");
          return nullptr;
        }
        std::string MetaField = take().Text;
        E = std::make_unique<MetaFieldExpr>(std::move(E), std::move(MetaField),
                                            Loc);
      } else {
        E = std::make_unique<PktFieldExpr>(std::move(E), std::move(Field),
                                           Loc);
      }
      continue;
    }
    if (cur().is(TokKind::LBracket)) {
      SourceLoc Loc = take().Loc;
      ExprPtr Index = parseExpr();
      if (!Index || !expect(TokKind::RBracket, "after index"))
        return nullptr;
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), Loc);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokKind::IntLiteral: {
    Token T = take();
    return std::make_unique<IntLitExpr>(T.IntVal, Loc);
  }
  case TokKind::KwTrue:
    take();
    return std::make_unique<BoolLitExpr>(true, Loc);
  case TokKind::KwFalse:
    take();
    return std::make_unique<BoolLitExpr>(false, Loc);
  case TokKind::LParen: {
    take();
    ExprPtr E = parseExpr();
    if (!E || !expect(TokKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  case TokKind::Identifier: {
    std::string Name = take().Text;
    if (cur().is(TokKind::LParen)) {
      take();
      std::vector<ExprPtr> Args;
      if (!cur().is(TokKind::RParen)) {
        while (true) {
          ExprPtr A = parseExpr();
          if (!A)
            return nullptr;
          Args.push_back(std::move(A));
          if (!accept(TokKind::Comma))
            break;
        }
      }
      if (!expect(TokKind::RParen, "to close call"))
        return nullptr;
      return std::make_unique<CallExpr>(std::move(Name), std::move(Args), Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }
  default:
    Diags.error(Loc, "expected an expression, found %s",
                tokKindName(cur().Kind));
    return nullptr;
  }
}
