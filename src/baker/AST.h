//===- baker/AST.h - Baker abstract syntax tree ---------------------------==//
//
// The AST produced by the parser and annotated by Sema. Ownership is by
// unique_ptr along the tree; cross references installed by Sema are raw
// pointers into the same tree.
//
//===----------------------------------------------------------------------===//

#ifndef SL_BAKER_AST_H
#define SL_BAKER_AST_H

#include "baker/Type.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sl::baker {

class Expr;
class Stmt;
class FuncDecl;
class GlobalDecl;
class VarDeclStmt;
class ParamDecl;

using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all Baker expressions. After Sema runs, every expression
/// carries its computed type in Ty.
class Expr {
public:
  enum class Kind {
    IntLit,
    BoolLit,
    VarRef,
    Unary,
    Binary,
    Cond,
    Assign,
    Call,
    Index,
    PktField,
    MetaField,
  };

  virtual ~Expr() = default;

  Kind kind() const { return K; }
  SourceLoc Loc;
  Type Ty; ///< Filled in by Sema.

protected:
  explicit Expr(Kind K, SourceLoc Loc) : Loc(Loc), K(K) {}

private:
  Kind K;
};

/// An integer literal, e.g. `0x0800`.
class IntLitExpr : public Expr {
public:
  IntLitExpr(uint64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

  uint64_t Value;
};

/// `true` or `false`.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(Kind::BoolLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::BoolLit; }

  bool Value;
};

/// A reference to a local variable, parameter, or module global.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

  std::string Name;

  // Exactly one of these is set by Sema.
  VarDeclStmt *LocalDecl = nullptr;
  ParamDecl *Param = nullptr;
  GlobalDecl *Global = nullptr;
};

/// Unary operators.
enum class UnOp { Neg, Not, BitNot };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnOp Op, ExprPtr Sub, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

  UnOp Op;
  ExprPtr Sub;
};

/// Binary operators (no assignment; see AssignExpr).
enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LogAnd,
  LogOr,
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

  BinOp Op;
  ExprPtr LHS, RHS;
};

/// The ternary conditional `c ? a : b`.
class CondExpr : public Expr {
public:
  CondExpr(ExprPtr C, ExprPtr T, ExprPtr F, SourceLoc Loc)
      : Expr(Kind::Cond, Loc), Cond(std::move(C)), TrueE(std::move(T)),
        FalseE(std::move(F)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Cond; }

  ExprPtr Cond, TrueE, FalseE;
};

/// Assignment `lhs = rhs` (also +=, -= desugared by the parser). The LHS
/// must be a variable, array element, packet field, or metadata field.
class AssignExpr : public Expr {
public:
  AssignExpr(ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(Kind::Assign, Loc), LHS(std::move(LHS)), RHS(std::move(RHS)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Assign; }

  ExprPtr LHS, RHS;
};

/// The packet-primitive builtins recognized by Sema.
enum class Builtin {
  None,       ///< Ordinary user function call.
  Decap,      ///< packet_decap(ph)
  Encap,      ///< packet_encap(ph)
  Copy,       ///< packet_copy(ph)
  Drop,       ///< packet_drop(ph)
  ChannelPut, ///< channel_put(cc, ph)
  PktLength,  ///< packet_length(ph)
};

/// A function call: either a user helper function or a builtin primitive.
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

  std::string Callee;
  std::vector<ExprPtr> Args;

  Builtin BI = Builtin::None; ///< Set by Sema.
  FuncDecl *CalleeDecl = nullptr;
  unsigned ChannelId = 0;   ///< For ChannelPut, set by Sema.
  std::string EncapProto;   ///< For Encap/Decap: target protocol.
};

/// Array indexing on a module global: `table[i]`.
class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Base, ExprPtr Index, SourceLoc Loc)
      : Expr(Kind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

  ExprPtr Base, Index;
};

/// Protocol field access `ph->field`.
class PktFieldExpr : public Expr {
public:
  PktFieldExpr(ExprPtr Handle, std::string Field, SourceLoc Loc)
      : Expr(Kind::PktField, Loc), Handle(std::move(Handle)),
        Field(std::move(Field)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::PktField; }

  ExprPtr Handle;
  std::string Field;
  unsigned BitOff = 0;   ///< Offset within header; set by Sema.
  unsigned BitWidth = 0; ///< Field width; set by Sema.
};

/// Metadata access `ph->meta.field`.
class MetaFieldExpr : public Expr {
public:
  MetaFieldExpr(ExprPtr Handle, std::string Field, SourceLoc Loc)
      : Expr(Kind::MetaField, Loc), Handle(std::move(Handle)),
        Field(std::move(Field)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::MetaField; }

  ExprPtr Handle;
  std::string Field;
  unsigned BitOff = 0;   ///< Offset within metadata block; set by Sema.
  unsigned BitWidth = 0; ///< Field width; set by Sema.
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Block,
    If,
    While,
    For,
    Return,
    Break,
    Continue,
    VarDecl,
    Expr,
    Critical,
  };

  virtual ~Stmt() = default;
  Kind kind() const { return K; }
  SourceLoc Loc;

protected:
  explicit Stmt(Kind K, SourceLoc Loc) : Loc(Loc), K(K) {}

private:
  Kind K;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Body, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

  std::vector<StmtPtr> Body;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

  ExprPtr Cond;
  StmtPtr Then, Else; ///< Else may be null.
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

  ExprPtr Cond;
  StmtPtr Body;
};

class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Step, StmtPtr Body,
          SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

  StmtPtr Init; ///< May be null; a VarDecl or Expr statement.
  ExprPtr Cond; ///< May be null (infinite loop).
  ExprPtr Step; ///< May be null.
  StmtPtr Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

  ExprPtr Value; ///< May be null for `return;`.
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

/// A local variable declaration, scalar or packet handle.
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(Type Ty, std::string Name, ExprPtr Init, SourceLoc Loc)
      : Stmt(Kind::VarDecl, Loc), DeclTy(Ty), Name(std::move(Name)),
        Init(std::move(Init)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::VarDecl; }

  Type DeclTy;
  std::string Name;
  ExprPtr Init; ///< May be null for scalars; required for packet handles.
};

class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc) : Stmt(Kind::Expr, Loc), E(std::move(E)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Expr; }

  ExprPtr E;
};

/// `critical (lockname) { ... }` — a named critical section.
class CriticalStmt : public Stmt {
public:
  CriticalStmt(std::string LockName, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::Critical, Loc), LockName(std::move(LockName)),
        Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Critical; }

  std::string LockName;
  StmtPtr Body;
  unsigned LockId = 0; ///< Set by Sema.
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// One named bit-field in a protocol or the metadata block.
struct BitField {
  std::string Name;
  unsigned Bits = 0;
  unsigned BitOff = 0; ///< Computed by Sema.
  SourceLoc Loc;
};

/// `protocol NAME { fields...; demux { expr }; };`
struct ProtocolDecl {
  std::string Name;
  std::vector<BitField> Fields;
  ExprPtr Demux; ///< Header size in bytes; may reference field names.
  SourceLoc Loc;

  unsigned HeaderBits = 0;      ///< Sum of field widths; set by Sema.
  bool DemuxIsConst = false;    ///< Set by Sema.
  uint64_t DemuxConstBytes = 0; ///< Valid when DemuxIsConst.
};

/// `metadata { fields...; };` — the per-packet user metadata layout. The
/// builtin field `rx_port : 16` is prepended implicitly.
struct MetadataDecl {
  std::vector<BitField> Fields;
  SourceLoc Loc;
};

/// A module-scope global scalar or array.
struct GlobalDecl {
  Type ElemTy;
  std::string Name;
  uint64_t Count = 1;          ///< 1 for scalars.
  bool IsArray = false;
  std::vector<uint64_t> Init;  ///< Element initializers (may be empty).
  SourceLoc Loc;
  std::string ModuleName;
};

/// A function parameter.
struct ParamDecl {
  Type Ty;
  std::string Name;
  SourceLoc Loc;
};

/// A helper function or a PPF. PPFs have exactly one packet parameter and
/// return void.
struct FuncDecl {
  Type RetTy;
  std::string Name;
  std::vector<ParamDecl> Params;
  StmtPtr Body;
  bool IsPpf = false;
  SourceLoc Loc;
  std::string ModuleName;
};

/// `channel NAME : PROTO;`
struct ChannelDecl {
  std::string Name;
  std::string Proto;
  SourceLoc Loc;
  unsigned Id = 0;           ///< Set by Sema; 0 is the tx channel.
  std::string DestPpf;       ///< Set from wiring.
};

/// `wire CHANNEL -> PPF;` — the channel named `rx` is the system input.
struct WireDecl {
  std::string From; ///< Channel name or `rx`.
  std::string To;   ///< PPF name.
  SourceLoc Loc;
};

/// A `module NAME { ... }` container.
struct ModuleDecl {
  std::string Name;
  SourceLoc Loc;
};

/// The whole parsed program.
struct Program {
  std::vector<std::unique_ptr<ProtocolDecl>> Protocols;
  std::unique_ptr<MetadataDecl> Metadata; ///< May be null.
  std::vector<std::unique_ptr<ModuleDecl>> Modules;
  std::vector<std::unique_ptr<GlobalDecl>> Globals;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;
  std::vector<std::unique_ptr<ChannelDecl>> Channels;
  std::vector<std::unique_ptr<WireDecl>> Wires;
};

} // namespace sl::baker

#endif // SL_BAKER_AST_H
