//===- baker/Lexer.h - Baker lexer ----------------------------------------==//

#ifndef SL_BAKER_LEXER_H
#define SL_BAKER_LEXER_H

#include "baker/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace sl::baker {

/// Converts Baker source text into a token stream. Supports //- and /*-style
/// comments, decimal and hexadecimal integer literals, and reports malformed
/// input through the DiagEngine.
class Lexer {
public:
  Lexer(std::string Source, DiagEngine &Diags);

  /// Lexes the whole buffer. Always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Src.size(); }
  SourceLoc here() const { return SourceLoc(Line, Col); }
  void skipTrivia();
  Token lexNumber();
  Token lexIdentifier();

  std::string Src;
  DiagEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace sl::baker

#endif // SL_BAKER_LEXER_H
