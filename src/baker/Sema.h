//===- baker/Sema.h - Baker semantic analysis -----------------------------==//
//
// Sema resolves names, checks types, computes protocol/metadata bit layouts,
// assigns channel and lock ids, and determines the dataflow wiring (which
// PPF each channel feeds, and which PPF receives packets from Rx).
//
//===----------------------------------------------------------------------===//

#ifndef SL_BAKER_SEMA_H
#define SL_BAKER_SEMA_H

#include "baker/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace sl::baker {

/// Channel ids: 0 is the implicit `tx` output channel; user channels get
/// 1..N in declaration order.
inline constexpr unsigned TxChannelId = 0;

/// Results of semantic analysis, layered over the (now annotated) AST.
struct SemaResult {
  /// Protocol name -> declaration (field offsets computed).
  std::map<std::string, ProtocolDecl *> Protocols;

  /// Flattened metadata layout including the builtin rx_port field.
  std::vector<BitField> MetaFields;
  unsigned MetaBits = 0;

  /// All user channels plus entry info. Channels[i] has Id == i + 1.
  std::vector<ChannelDecl *> Channels;
  FuncDecl *EntryPpf = nullptr;  ///< Target of `wire rx -> ...`.
  std::string EntryProto;        ///< Protocol of packets delivered by Rx.

  std::map<std::string, FuncDecl *> Funcs;
  std::map<std::string, GlobalDecl *> Globals;

  /// Lock name -> id, for critical sections.
  std::map<std::string, unsigned> Locks;

  /// PPF name -> ids of channels that feed it (empty for the entry PPF
  /// unless channels also target it).
  std::map<std::string, std::vector<unsigned>> PpfInputs;
};

/// Runs semantic analysis over \p P. Returns the analysis result; check
/// \p Diags for errors before trusting it.
SemaResult analyze(Program &P, DiagEngine &Diags);

} // namespace sl::baker

#endif // SL_BAKER_SEMA_H
