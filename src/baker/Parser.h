//===- baker/Parser.h - Baker recursive-descent parser --------------------==//

#ifndef SL_BAKER_PARSER_H
#define SL_BAKER_PARSER_H

#include "baker/AST.h"
#include "baker/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <vector>

namespace sl::baker {

/// Recursive-descent parser for Baker. On error it reports via the
/// DiagEngine and returns a partial Program; callers must check
/// DiagEngine::hasErrors() before using the result.
class Parser {
public:
  Parser(std::vector<Token> Toks, DiagEngine &Diags);

  /// Parses a whole translation unit.
  std::unique_ptr<Program> parseProgram();

private:
  // Token stream helpers.
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(unsigned Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  Token take();
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Ctx);
  void skipToRecovery();

  bool isTypeToken(TokKind K) const;
  Type parseScalarType();

  // Declarations.
  void parseTopLevel(Program &P);
  std::unique_ptr<ProtocolDecl> parseProtocol();
  std::unique_ptr<MetadataDecl> parseMetadata();
  void parseModule(Program &P);
  void parseModuleItem(Program &P, const std::string &ModName);
  std::unique_ptr<ChannelDecl> parseChannel();
  std::unique_ptr<WireDecl> parseWire();
  std::unique_ptr<FuncDecl> parsePpf(const std::string &ModName);
  void parseGlobalOrFunc(Program &P, const std::string &ModName);
  std::vector<ParamDecl> parseParamList();

  // Statements.
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseCritical();
  StmtPtr parseVarDeclOrExprStmt(bool ConsumeSemi);

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseAssign();
  ExprPtr parseCond();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  ExprPtr cloneLValue(const Expr *E);

  std::vector<Token> Toks;
  DiagEngine &Diags;
  size_t Pos = 0;
};

} // namespace sl::baker

#endif // SL_BAKER_PARSER_H
