//===- baker/Token.h - Baker token definitions ----------------------------==//

#ifndef SL_BAKER_TOKEN_H
#define SL_BAKER_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace sl::baker {

/// Kinds of Baker tokens. Keywords are explicit kinds; identifiers carry
/// their text.
enum class TokKind {
  Eof,
  Identifier,
  IntLiteral,

  // Keywords.
  KwProtocol,
  KwMetadata,
  KwModule,
  KwChannel,
  KwWire,
  KwDemux,
  KwPpf,
  KwCritical,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwTrue,
  KwFalse,
  KwVoid,
  KwBool,
  KwInt,
  KwU8,
  KwU16,
  KwU32,
  KwU64,

  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Dot,
  Arrow,      // ->
  WireArrow,  // -> reused; parser context decides
  Assign,     // =
  PlusAssign, // +=
  MinusAssign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl, // <<
  Shr, // >>
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
  Question,
};

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;    ///< Identifier spelling.
  uint64_t IntVal = 0; ///< Value for IntLiteral.

  bool is(TokKind K) const { return Kind == K; }
};

/// Human-readable name of a token kind, for diagnostics.
const char *tokKindName(TokKind Kind);

} // namespace sl::baker

#endif // SL_BAKER_TOKEN_H
