//===- baker/Type.h - Baker source-level types ----------------------------==//

#ifndef SL_BAKER_TYPE_H
#define SL_BAKER_TYPE_H

#include <cassert>
#include <string>

namespace sl::baker {

/// A Baker value type. Kept as a small value class: scalars (bool and the
/// fixed-width unsigned/signed integers) plus packet handles, which carry the
/// name of the protocol their header currently points at.
class Type {
public:
  enum class Kind { Void, Bool, Int, Packet };

  Type() : K(Kind::Void) {}

  static Type makeVoid() { return Type(); }
  static Type makeBool() {
    Type T;
    T.K = Kind::Bool;
    T.Bits = 1;
    return T;
  }
  /// \p Bits in {8,16,32,64}; \p IsSigned selects 'int' semantics.
  static Type makeInt(unsigned Bits, bool IsSigned) {
    assert((Bits == 8 || Bits == 16 || Bits == 32 || Bits == 64) &&
           "unsupported integer width");
    Type T;
    T.K = Kind::Int;
    T.Bits = Bits;
    T.Signed = IsSigned;
    return T;
  }
  static Type makePacket(std::string Proto) {
    Type T;
    T.K = Kind::Packet;
    T.Proto = std::move(Proto);
    return T;
  }

  Kind kind() const { return K; }
  bool isVoid() const { return K == Kind::Void; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isPacket() const { return K == Kind::Packet; }
  bool isScalar() const { return isBool() || isInt(); }

  unsigned bits() const { return Bits; }
  bool isSigned() const { return Signed; }
  const std::string &protocol() const {
    assert(isPacket() && "not a packet type");
    return Proto;
  }

  bool operator==(const Type &RHS) const {
    if (K != RHS.K)
      return false;
    if (K == Kind::Int)
      return Bits == RHS.Bits && Signed == RHS.Signed;
    if (K == Kind::Packet)
      return Proto == RHS.Proto;
    return true;
  }
  bool operator!=(const Type &RHS) const { return !(*this == RHS); }

  /// Render for diagnostics, e.g. "u32" or "ipv4_pkt *".
  std::string str() const {
    switch (K) {
    case Kind::Void:
      return "void";
    case Kind::Bool:
      return "bool";
    case Kind::Int: {
      if (Signed)
        return "int";
      // Built up in place: `"u" + std::to_string(...)` selects
      // operator+(const char*, string&&), which GCC 12's -Wrestrict
      // misanalyzes into a spurious overlap error under -Werror.
      std::string S = "u";
      S += std::to_string(Bits);
      return S;
    }
    case Kind::Packet:
      return Proto + "_pkt *";
    }
    return "<invalid>";
  }

private:
  Kind K;
  unsigned Bits = 0;
  bool Signed = false;
  std::string Proto;
};

} // namespace sl::baker

#endif // SL_BAKER_TYPE_H
