//===- profile/Profiler.h - the Functional Profiler -------------------------==//
//
// Paper Sec. 4.1: right after lowering, the Functional Profiler interprets
// the program over a user-supplied packet trace and collects
//   - relative PPF execution times (instruction and memory-access counts),
//   - communication-channel utilizations,
//   - global data structure access frequencies and estimated hit rates.
// The results drive aggregate formation (Sec. 5.1), Scratch promotion, and
// software-cache candidate selection (Sec. 5.2).
//
//===----------------------------------------------------------------------===//

#ifndef SL_PROFILE_PROFILER_H
#define SL_PROFILE_PROFILER_H

#include "interp/Interp.h"
#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <vector>

namespace sl::profile {

/// One packet of a profiling trace.
struct TracePacket {
  std::vector<uint8_t> Frame;
  uint16_t Port = 0;
};

using Trace = std::vector<TracePacket>;

/// Per-function profile counters.
struct FuncStats {
  uint64_t Calls = 0;
  uint64_t Instrs = 0;      ///< IR instructions executed inside the function.
  uint64_t MemAccesses = 0; ///< Packet/meta/global accesses executed.
};

/// Per-global profile counters.
struct GlobalStats {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  /// Estimated hit rate of a 16-entry LRU cache over accessed elements
  /// (the IXP CAM has 16 entries). In [0, 1].
  double EstHitRate = 0.0;
};

/// Aggregated results over a whole trace.
struct ProfileData {
  uint64_t Packets = 0;
  std::map<const ir::Function *, FuncStats> Funcs;
  std::map<unsigned, uint64_t> ChannelPuts; ///< Channel id -> puts.
  std::map<const ir::Global *, GlobalStats> Globals;

  /// Average executed IR instructions per injected packet for \p F.
  double instrsPerPacket(const ir::Function *F) const {
    auto It = Funcs.find(F);
    if (It == Funcs.end() || Packets == 0)
      return 0.0;
    return double(It->second.Instrs) / double(Packets);
  }

  /// Average memory accesses per injected packet for \p F.
  double memPerPacket(const ir::Function *F) const {
    auto It = Funcs.find(F);
    if (It == Funcs.end() || Packets == 0)
      return 0.0;
    return double(It->second.MemAccesses) / double(Packets);
  }

  /// Relative work weight of \p F: instruction work plus memory work
  /// priced at \p MemCycles per access. The feedback mapper uses this to
  /// split a measured per-aggregate cycle cost back onto the member
  /// functions in proportion to their profiled share of the work.
  double workWeight(const ir::Function *F, double MemCycles) const {
    return instrsPerPacket(F) + memPerPacket(F) * MemCycles;
  }

  /// Fraction of packets that traverse \p F.
  double callFrequency(const ir::Function *F) const {
    auto It = Funcs.find(F);
    if (It == Funcs.end() || Packets == 0)
      return 0.0;
    return double(It->second.Calls) / double(Packets);
  }
};

/// Runs the functional profiler. Use interp() to install table contents
/// (routes, rules, labels) before calling run().
class Profiler {
public:
  explicit Profiler(ir::Module &M);

  interp::Interpreter &interp() { return I; }

  /// Interprets every trace packet and returns the collected statistics.
  ProfileData run(const Trace &T);

private:
  ir::Module &M;
  interp::Interpreter I;
};

} // namespace sl::profile

#endif // SL_PROFILE_PROFILER_H
