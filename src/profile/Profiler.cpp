//===- profile/Profiler.cpp ---------------------------------------------------==//

#include "profile/Profiler.h"

#include <algorithm>

using namespace sl;
using namespace sl::profile;
using ir::Op;

namespace {

bool isMemAccessOp(Op O) {
  switch (O) {
  case Op::PktLoad:
  case Op::PktStore:
  case Op::MetaLoad:
  case Op::MetaStore:
  case Op::GLoad:
  case Op::GStore:
  case Op::PktLoadWide:
  case Op::PktStoreWide:
    return true;
  default:
    return false;
  }
}

/// Collects raw counters during interpretation.
class Collector : public interp::Listener {
public:
  explicit Collector(ProfileData &Data) : Data(Data) {}

  void onFuncEnter(const ir::Function *F) override {
    ++Data.Funcs[F].Calls;
    Stack.push_back(F);
  }

  void onInstr(const ir::Instr *I) override {
    // The interpreter has no explicit func-exit hook; attribute the
    // instruction to the function that owns its parent block, which is
    // exact and cheaper than tracking returns.
    const ir::Function *F = I->parent()->parent();
    FuncStats &S = Data.Funcs[F];
    ++S.Instrs;
    if (isMemAccessOp(I->op()))
      ++S.MemAccesses;
  }

  void onChannelPut(unsigned ChanId) override { ++Data.ChannelPuts[ChanId]; }

  void onGlobalAccess(const ir::Global *G, uint64_t Index,
                      bool IsStore) override {
    GlobalStats &S = Data.Globals[G];
    if (IsStore) {
      ++S.Stores;
      return;
    }
    ++S.Loads;
    // 16-entry LRU simulation over accessed element indices (models the
    // IXP CAM used by the software cache).
    auto &Lru = LruSets[G];
    auto It = std::find(Lru.begin(), Lru.end(), Index);
    if (It != Lru.end()) {
      Lru.erase(It);
      Lru.push_back(Index);
      ++Hits[G];
    } else {
      if (Lru.size() >= 16)
        Lru.erase(Lru.begin());
      Lru.push_back(Index);
    }
  }

  void finalize() {
    for (auto &[G, S] : Data.Globals)
      if (S.Loads)
        S.EstHitRate = double(Hits[G]) / double(S.Loads);
  }

private:
  ProfileData &Data;
  std::vector<const ir::Function *> Stack;
  std::map<const ir::Global *, std::vector<uint64_t>> LruSets;
  std::map<const ir::Global *, uint64_t> Hits;
};

} // namespace

Profiler::Profiler(ir::Module &M) : M(M), I(M) {}

ProfileData Profiler::run(const Trace &T) {
  ProfileData Data;
  Collector C(Data);
  I.setListener(&C);
  for (const TracePacket &P : T) {
    interp::RunResult R = I.inject(P.Frame, P.Port);
    (void)R; // Errors surface through tests; profiling tolerates drops.
    ++Data.Packets;
  }
  I.setListener(nullptr);
  C.finalize();
  return Data;
}
