//===- interp/PacketModel.h - functional packet store ----------------------==//
//
// The functional model of packets used by the interpreter / profiler: a
// packet is a byte buffer (with headroom for encapsulation) plus a metadata
// block and the current header offset. Handles are dense integers.
//
//===----------------------------------------------------------------------===//

#ifndef SL_INTERP_PACKETMODEL_H
#define SL_INTERP_PACKETMODEL_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sl::interp {

/// Headroom reserved in front of every received frame so that
/// packet_encap() can prepend headers (MPLS label pushes etc.).
inline constexpr unsigned PacketHeadroom = 64;

/// One live packet.
struct Packet {
  std::vector<uint8_t> Data;  ///< Headroom + frame bytes.
  uint32_t HeadOff = 0;       ///< Current header byte offset into Data.
  std::vector<uint8_t> Meta;  ///< User metadata block (bit-packed).
  bool Alive = false;
};

/// Owns all packets of one run; handles index into the store.
class PacketStore {
public:
  explicit PacketStore(unsigned MetaBits) : MetaBytes((MetaBits + 7) / 8) {}

  /// Creates a packet from \p Frame, placing the frame after the headroom.
  /// The metadata block is zeroed.
  uint64_t create(const std::vector<uint8_t> &Frame) {
    Packet P;
    P.Data.resize(PacketHeadroom + Frame.size());
    for (size_t I = 0; I != Frame.size(); ++I)
      P.Data[PacketHeadroom + I] = Frame[I];
    P.HeadOff = PacketHeadroom;
    P.Meta.assign(MetaBytes, 0);
    P.Alive = true;
    Pkts.push_back(std::move(P));
    return Pkts.size() - 1;
  }

  /// Clones packet \p H (packet_copy).
  uint64_t clone(uint64_t H) {
    Packet P = get(H); // Copy.
    Pkts.push_back(std::move(P));
    return Pkts.size() - 1;
  }

  Packet &get(uint64_t H) { return Pkts.at(H); }
  const Packet &get(uint64_t H) const { return Pkts.at(H); }
  size_t size() const { return Pkts.size(); }

  void drop(uint64_t H) { get(H).Alive = false; }

  /// Frame bytes from the current header to the end.
  std::vector<uint8_t> payloadFrom(uint64_t H) const {
    const Packet &P = get(H);
    return std::vector<uint8_t>(P.Data.begin() + P.HeadOff, P.Data.end());
  }

private:
  unsigned MetaBytes;
  std::vector<Packet> Pkts;
};

} // namespace sl::interp

#endif // SL_INTERP_PACKETMODEL_H
