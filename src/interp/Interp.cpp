//===- interp/Interp.cpp ----------------------------------------------------==//

#include "interp/Interp.h"

#include "interp/Bits.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstdarg>

using namespace sl;
using namespace sl::interp;
using ir::Op;

namespace {

uint64_t maskTo(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return V;
  return V & ((uint64_t(1) << Bits) - 1);
}

int64_t signExtend(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t Sign = uint64_t(1) << (Bits - 1);
  return static_cast<int64_t>(((V & ((Sign << 1) - 1)) ^ Sign) - Sign);
}

} // namespace

/// One function activation.
struct Interpreter::Frame {
  ir::Function *F = nullptr;
  std::map<const ir::Value *, IVal> Env;
  std::map<const ir::Instr *, IVal> Slots; ///< Alloca storage.
};

Interpreter::Interpreter(ir::Module &M) : M(M), Pkts(M.MetaBits) {
  for (const auto &G : M.globals()) {
    std::vector<uint64_t> State(G->count(), 0);
    const auto &Init = G->init();
    for (size_t I = 0; I != Init.size() && I != State.size(); ++I)
      State[I] = maskTo(Init[I], G->elemBits());
    Globals[G.get()] = std::move(State);
  }
}

void Interpreter::writeGlobal(const std::string &Name, uint64_t Index,
                              uint64_t Value) {
  ir::Global *G = M.findGlobal(Name);
  assert(G && "unknown global");
  auto &State = Globals[G];
  assert(Index < State.size() && "global index out of range");
  State[Index] = maskTo(Value, G->elemBits());
}

uint64_t Interpreter::readGlobal(const std::string &Name,
                                 uint64_t Index) const {
  ir::Global *G = M.findGlobal(Name);
  assert(G && "unknown global");
  const auto &State = Globals.at(G);
  assert(Index < State.size() && "global index out of range");
  return State[Index];
}

void Interpreter::fail(const char *Fmt, ...) {
  if (!Cur || Cur->Error)
    return;
  va_list Args;
  va_start(Args, Fmt);
  Cur->ErrorMsg = formatStringV(Fmt, Args);
  va_end(Args);
  Cur->Error = true;
}

Interpreter::IVal Interpreter::operandVal(Frame &FR, ir::Value *V) {
  if (auto *C = dyn_cast<ir::ConstInt>(V)) {
    IVal R;
    R.Scalar = C->value();
    return R;
  }
  auto It = FR.Env.find(V);
  if (It == FR.Env.end()) {
    fail("use of undefined value '%s'", V->name().c_str());
    return IVal();
  }
  return It->second;
}

RunResult Interpreter::inject(const std::vector<uint8_t> &Frame,
                              uint16_t RxPort) {
  RunResult Result;
  Cur = &Result;
  Queue.clear();

  if (!M.EntryPpf) {
    fail("module has no entry PPF");
    Cur = nullptr;
    return Result;
  }

  uint64_t H = Pkts.create(Frame);
  // rx_port is always the first metadata field (bit 0, width 16).
  writeBitsBE(Pkts.get(H).Meta.data(), 0, 16, RxPort);

  Queue.push_back({~0u, H}); // Entry marker.
  while (!Queue.empty() && !Result.Error) {
    auto [ChanId, Handle] = Queue.front();
    Queue.erase(Queue.begin());
    ir::Function *Target = nullptr;
    if (ChanId == ~0u) {
      Target = M.EntryPpf;
    } else {
      const ir::Channel *C = M.findChannel(ChanId);
      assert(C && "unknown channel");
      Target = C->Dest;
    }
    assert(Target && "channel without destination");
    if (!Pkts.get(Handle).Alive) {
      fail("packet delivered on a dead handle");
      break;
    }
    std::vector<IVal> Args(1);
    Args[0].Scalar = Handle;
    callFunction(Target, std::move(Args));
  }
  Cur = nullptr;
  return Result;
}

Interpreter::IVal Interpreter::callFunction(ir::Function *F,
                                            std::vector<IVal> Args) {
  if (CallDepth > 64) {
    fail("call depth limit exceeded in '%s'", F->name().c_str());
    return IVal();
  }
  ++CallDepth;
  if (Hooks)
    Hooks->onFuncEnter(F);

  Frame FR;
  FR.F = F;
  assert(Args.size() == F->numArgs() && "argument count mismatch");
  for (unsigned I = 0; I != F->numArgs(); ++I)
    FR.Env[F->arg(I)] = Args[I];

  ir::BasicBlock *BB = F->entry();
  ir::BasicBlock *Prev = nullptr;
  IVal RetVal;

  while (BB && !Cur->Error) {
    // Evaluate phis simultaneously against the edge we arrived on.
    std::vector<std::pair<ir::Instr *, IVal>> PhiVals;
    size_t Idx = 0;
    for (; Idx != BB->size(); ++Idx) {
      ir::Instr *I = BB->instr(Idx);
      if (I->op() != Op::Phi)
        break;
      bool Found = false;
      for (unsigned K = 0; K != I->numOperands(); ++K) {
        if (I->phiBlocks()[K] == Prev) {
          PhiVals.push_back({I, operandVal(FR, I->operand(K))});
          Found = true;
          break;
        }
      }
      if (!Found) {
        fail("phi in '%s' has no incoming for predecessor", F->name().c_str());
        break;
      }
    }
    for (auto &[I, V] : PhiVals)
      FR.Env[I] = V;

    ir::BasicBlock *Next = nullptr;
    for (; Idx != BB->size() && !Cur->Error; ++Idx) {
      ir::Instr *I = BB->instr(Idx);
      ++Cur->Steps;
      if (Cur->Steps > StepLimit) {
        fail("step limit exceeded (infinite loop?)");
        break;
      }
      if (Hooks)
        Hooks->onInstr(I);

      switch (I->op()) {
      case Op::Br:
        Next = I->succ(0);
        break;
      case Op::CondBr:
        Next = operandVal(FR, I->operand(0)).Scalar ? I->succ(0) : I->succ(1);
        break;
      case Op::Ret:
        if (I->numOperands())
          RetVal = operandVal(FR, I->operand(0));
        --CallDepth;
        return RetVal;
      default:
        FR.Env[I] = evalInstr(FR, I);
        break;
      }
    }
    Prev = BB;
    BB = Next;
  }
  --CallDepth;
  return RetVal;
}

Interpreter::IVal Interpreter::evalInstr(Frame &FR, ir::Instr *I) {
  IVal R;
  auto scalar = [&](unsigned K) { return operandVal(FR, I->operand(K)).Scalar; };
  unsigned Bits = I->type().isInt() ? I->type().bits() : 64;

  switch (I->op()) {
  // Arithmetic --------------------------------------------------------------
  case Op::Add:
    R.Scalar = maskTo(scalar(0) + scalar(1), Bits);
    return R;
  case Op::Sub:
    R.Scalar = maskTo(scalar(0) - scalar(1), Bits);
    return R;
  case Op::Mul:
    R.Scalar = maskTo(scalar(0) * scalar(1), Bits);
    return R;
  case Op::UDiv: {
    uint64_t D = scalar(1);
    if (D == 0) {
      fail("division by zero");
      return R;
    }
    R.Scalar = maskTo(scalar(0) / D, Bits);
    return R;
  }
  case Op::SDiv: {
    int64_t D = signExtend(scalar(1), Bits);
    if (D == 0) {
      fail("division by zero");
      return R;
    }
    R.Scalar = maskTo(static_cast<uint64_t>(signExtend(scalar(0), Bits) / D),
                      Bits);
    return R;
  }
  case Op::URem: {
    uint64_t D = scalar(1);
    if (D == 0) {
      fail("remainder by zero");
      return R;
    }
    R.Scalar = maskTo(scalar(0) % D, Bits);
    return R;
  }
  case Op::SRem: {
    int64_t D = signExtend(scalar(1), Bits);
    if (D == 0) {
      fail("remainder by zero");
      return R;
    }
    R.Scalar = maskTo(static_cast<uint64_t>(signExtend(scalar(0), Bits) % D),
                      Bits);
    return R;
  }
  case Op::And:
    R.Scalar = scalar(0) & scalar(1);
    return R;
  case Op::Or:
    R.Scalar = scalar(0) | scalar(1);
    return R;
  case Op::Xor:
    R.Scalar = maskTo(scalar(0) ^ scalar(1), Bits);
    return R;
  case Op::Shl:
    R.Scalar = maskTo(scalar(0) << (scalar(1) & 63), Bits);
    return R;
  case Op::LShr:
    R.Scalar = scalar(0) >> (scalar(1) & 63);
    return R;
  case Op::AShr: {
    unsigned W = I->operand(0)->type().bits();
    R.Scalar =
        maskTo(static_cast<uint64_t>(signExtend(scalar(0), W) >>
                                     (scalar(1) & 63)),
               Bits);
    return R;
  }

  // Comparisons ---------------------------------------------------------------
  case Op::CmpEq:
    R.Scalar = scalar(0) == scalar(1);
    return R;
  case Op::CmpNe:
    R.Scalar = scalar(0) != scalar(1);
    return R;
  case Op::CmpULt:
    R.Scalar = scalar(0) < scalar(1);
    return R;
  case Op::CmpULe:
    R.Scalar = scalar(0) <= scalar(1);
    return R;
  case Op::CmpUGt:
    R.Scalar = scalar(0) > scalar(1);
    return R;
  case Op::CmpUGe:
    R.Scalar = scalar(0) >= scalar(1);
    return R;
  case Op::CmpSLt:
  case Op::CmpSLe:
  case Op::CmpSGt:
  case Op::CmpSGe: {
    unsigned W = I->operand(0)->type().bits();
    int64_t A = signExtend(scalar(0), W), B = signExtend(scalar(1), W);
    switch (I->op()) {
    case Op::CmpSLt:
      R.Scalar = A < B;
      break;
    case Op::CmpSLe:
      R.Scalar = A <= B;
      break;
    case Op::CmpSGt:
      R.Scalar = A > B;
      break;
    default:
      R.Scalar = A >= B;
      break;
    }
    return R;
  }

  // Conversions ---------------------------------------------------------------
  case Op::ZExt:
    R.Scalar = scalar(0);
    return R;
  case Op::SExt: {
    unsigned W = I->operand(0)->type().bits();
    R.Scalar = maskTo(static_cast<uint64_t>(signExtend(scalar(0), W)), Bits);
    return R;
  }
  case Op::Trunc:
    R.Scalar = maskTo(scalar(0), Bits);
    return R;
  case Op::Select:
    return scalar(0) ? operandVal(FR, I->operand(1))
                     : operandVal(FR, I->operand(2));

  // Stack ----------------------------------------------------------------------
  case Op::Alloca:
    FR.Slots[I]; // Default-initialize.
    R.Scalar = 0;
    return R;
  case Op::Load: {
    auto *Slot = cast<ir::Instr>(I->operand(0));
    return FR.Slots[Slot];
  }
  case Op::Store: {
    auto *Slot = cast<ir::Instr>(I->operand(0));
    FR.Slots[Slot] = operandVal(FR, I->operand(1));
    return R;
  }

  // Globals --------------------------------------------------------------------
  case Op::GLoad: {
    auto &State = Globals[I->GlobalRef];
    uint64_t Idx = scalar(0);
    if (Idx >= State.size()) {
      fail("global '%s' index %llu out of range",
           I->GlobalRef->name().c_str(),
           static_cast<unsigned long long>(Idx));
      return R;
    }
    if (Hooks)
      Hooks->onGlobalAccess(I->GlobalRef, Idx, false);
    R.Scalar = State[Idx];
    return R;
  }
  case Op::GStore: {
    auto &State = Globals[I->GlobalRef];
    uint64_t Idx = scalar(0);
    if (Idx >= State.size()) {
      fail("global '%s' index %llu out of range",
           I->GlobalRef->name().c_str(),
           static_cast<unsigned long long>(Idx));
      return R;
    }
    if (Hooks)
      Hooks->onGlobalAccess(I->GlobalRef, Idx, true);
    State[Idx] = maskTo(scalar(1), I->GlobalRef->elemBits());
    return R;
  }

  // Calls ----------------------------------------------------------------------
  case Op::Call: {
    std::vector<IVal> Args;
    for (unsigned K = 0; K != I->numOperands(); ++K)
      Args.push_back(operandVal(FR, I->operand(K)));
    return callFunction(I->Callee, std::move(Args));
  }

  // Packet intrinsics ------------------------------------------------------------
  case Op::PktLoad: {
    Packet &P = Pkts.get(scalar(0));
    size_t AbsBit = size_t(P.HeadOff) * 8 + I->BitOff;
    if ((AbsBit + I->BitWidth + 7) / 8 > P.Data.size()) {
      fail("packet field read past end of packet");
      return R;
    }
    R.Scalar = readBitsBE(P.Data.data(), AbsBit, I->BitWidth);
    return R;
  }
  case Op::PktStore: {
    Packet &P = Pkts.get(scalar(0));
    size_t AbsBit = size_t(P.HeadOff) * 8 + I->BitOff;
    if ((AbsBit + I->BitWidth + 7) / 8 > P.Data.size()) {
      fail("packet field write past end of packet");
      return R;
    }
    writeBitsBE(P.Data.data(), AbsBit, I->BitWidth,
                maskTo(scalar(1), I->BitWidth));
    return R;
  }
  case Op::MetaLoad: {
    Packet &P = Pkts.get(scalar(0));
    R.Scalar = readBitsBE(P.Meta.data(), I->BitOff, I->BitWidth);
    return R;
  }
  case Op::MetaStore: {
    Packet &P = Pkts.get(scalar(0));
    writeBitsBE(P.Meta.data(), I->BitOff, I->BitWidth,
                maskTo(scalar(1), I->BitWidth));
    return R;
  }
  case Op::PktDecap: {
    uint64_t H = scalar(0);
    Packet &P = Pkts.get(H);
    uint64_t Size = scalar(1);
    if (P.HeadOff + Size > P.Data.size()) {
      fail("decap past end of packet");
      return R;
    }
    P.HeadOff += static_cast<uint32_t>(Size);
    R.Scalar = H;
    return R;
  }
  case Op::PktEncap: {
    uint64_t H = scalar(0);
    Packet &P = Pkts.get(H);
    if (P.HeadOff < I->SizeBytes) {
      fail("encap exceeds packet headroom");
      return R;
    }
    P.HeadOff -= I->SizeBytes;
    R.Scalar = H;
    return R;
  }
  case Op::PktCopy:
    R.Scalar = Pkts.clone(scalar(0));
    return R;
  case Op::PktDrop:
    Pkts.drop(scalar(0));
    return R;
  case Op::PktLength: {
    Packet &P = Pkts.get(scalar(0));
    R.Scalar = P.Data.size() - P.HeadOff;
    return R;
  }
  case Op::ChannelPut: {
    uint64_t H = scalar(0);
    if (Hooks)
      Hooks->onChannelPut(I->ChanId);
    if (I->ChanId == 0) {
      Packet &P = Pkts.get(H);
      TxPacket T;
      T.Frame = Pkts.payloadFrom(H);
      T.Meta = P.Meta;
      Cur->Tx.push_back(std::move(T));
      Pkts.drop(H);
    } else {
      Queue.push_back({I->ChanId, H});
    }
    return R;
  }
  case Op::LockAcquire:
  case Op::LockRelease:
    return R; // Single-threaded functional model.

  // Wide (PAC) operations ----------------------------------------------------------
  case Op::PktLoadWide: {
    Packet &P = Pkts.get(scalar(0));
    R.WideBytes.assign(size_t(I->Words) * 4, 0);
    if (I->Space == ir::WideSpace::PktData) {
      size_t Start = P.HeadOff + I->ByteOff;
      if (Start + R.WideBytes.size() > P.Data.size() + 3) {
        fail("wide packet read out of range");
        return R;
      }
      for (size_t K = 0; K != R.WideBytes.size(); ++K)
        R.WideBytes[K] = Start + K < P.Data.size() ? P.Data[Start + K] : 0;
    } else {
      for (size_t K = 0; K != R.WideBytes.size(); ++K)
        R.WideBytes[K] =
            I->ByteOff + K < P.Meta.size() ? P.Meta[I->ByteOff + K] : 0;
    }
    return R;
  }
  case Op::PktStoreWide: {
    Packet &P = Pkts.get(scalar(0));
    IVal W = operandVal(FR, I->operand(1));
    if (W.WideBytes.size() != size_t(I->Words) * 4) {
      fail("wide store size mismatch");
      return R;
    }
    if (I->Space == ir::WideSpace::PktData) {
      size_t Start = P.HeadOff + I->ByteOff;
      for (size_t K = 0; K != W.WideBytes.size(); ++K)
        if (Start + K < P.Data.size())
          P.Data[Start + K] = W.WideBytes[K];
    } else {
      for (size_t K = 0; K != W.WideBytes.size(); ++K)
        if (I->ByteOff + K < P.Meta.size())
          P.Meta[I->ByteOff + K] = W.WideBytes[K];
    }
    return R;
  }
  case Op::WideExtract: {
    IVal W = operandVal(FR, I->operand(0));
    R.Scalar = readBitsBE(W.WideBytes.data(), I->BitOff, I->BitWidth);
    return R;
  }
  case Op::WideInsert: {
    R = operandVal(FR, I->operand(0));
    writeBitsBE(R.WideBytes.data(), I->BitOff, I->BitWidth,
                maskTo(scalar(1), I->BitWidth));
    return R;
  }
  case Op::WideZero:
    R.WideBytes.assign(size_t(I->Words) * 4, 0);
    return R;

  case Op::Br:
  case Op::CondBr:
  case Op::Ret:
  case Op::Phi:
    assert(false && "handled by the block loop");
    return R;
  }
  assert(false && "unhandled opcode");
  return R;
}
