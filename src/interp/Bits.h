//===- interp/Bits.h - big-endian bit-string access ------------------------==//
//
// Packet headers are network-order bit strings: bit 0 is the MSB of byte 0.
// These helpers implement field reads/writes at arbitrary bit offsets and
// widths (1..64), shared by the interpreter and the simulator runtime.
//
//===----------------------------------------------------------------------===//

#ifndef SL_INTERP_BITS_H
#define SL_INTERP_BITS_H

#include <cassert>
#include <cstdint>
#include <cstddef>

namespace sl::interp {

/// Reads \p Width bits starting \p BitOff bits into \p Data, MSB-first.
inline uint64_t readBitsBE(const uint8_t *Data, size_t BitOff,
                           unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "width must be 1..64");
  uint64_t Out = 0;
  for (unsigned I = 0; I != Width; ++I) {
    size_t Bit = BitOff + I;
    unsigned Byte = static_cast<unsigned>(Bit >> 3);
    unsigned Shift = 7u - static_cast<unsigned>(Bit & 7);
    Out = (Out << 1) | ((Data[Byte] >> Shift) & 1u);
  }
  return Out;
}

/// Writes the low \p Width bits of \p Value at \p BitOff, MSB-first.
inline void writeBitsBE(uint8_t *Data, size_t BitOff, unsigned Width,
                        uint64_t Value) {
  assert(Width >= 1 && Width <= 64 && "width must be 1..64");
  for (unsigned I = 0; I != Width; ++I) {
    size_t Bit = BitOff + I;
    unsigned Byte = static_cast<unsigned>(Bit >> 3);
    unsigned Shift = 7u - static_cast<unsigned>(Bit & 7);
    uint8_t BitVal = (Value >> (Width - 1 - I)) & 1u;
    Data[Byte] = static_cast<uint8_t>((Data[Byte] & ~(1u << Shift)) |
                                      (BitVal << Shift));
  }
}

} // namespace sl::interp

#endif // SL_INTERP_BITS_H
