//===- interp/Interp.h - reference IR interpreter ---------------------------==//
//
// Executes lowered Baker programs functionally: one packet at a time through
// the PPF dataflow. Serves three roles:
//   1. golden model for compiler correctness tests (IR before/after passes
//      and the generated ME code must agree with it),
//   2. the engine of the Functional Profiler (via the Listener hooks),
//   3. a quick way for examples to show application behaviour.
//
//===----------------------------------------------------------------------===//

#ifndef SL_INTERP_INTERP_H
#define SL_INTERP_INTERP_H

#include "interp/PacketModel.h"
#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sl::interp {

/// Profiling hooks. All callbacks are optional.
class Listener {
public:
  virtual ~Listener() = default;
  virtual void onFuncEnter(const ir::Function *F) {}
  virtual void onInstr(const ir::Instr *I) {}
  virtual void onChannelPut(unsigned ChanId) {}
  virtual void onGlobalAccess(const ir::Global *G, uint64_t Index,
                              bool IsStore) {}
};

/// A packet delivered to Tx: remaining frame bytes plus the final metadata
/// block (bit-packed; rx_port at bit 0).
struct TxPacket {
  std::vector<uint8_t> Frame;
  std::vector<uint8_t> Meta;
};

/// Result of running one packet through the program.
struct RunResult {
  std::vector<TxPacket> Tx;
  bool Error = false;
  std::string ErrorMsg;
  uint64_t Steps = 0; ///< IR instructions executed.
};

/// The interpreter. Owns global-table state across packets (so control-plane
/// writes persist) and a fresh PacketStore per run batch.
class Interpreter {
public:
  explicit Interpreter(ir::Module &M);

  void setListener(Listener *L) { Hooks = L; }

  /// Control-plane access to global tables (the "store path" of SWC).
  void writeGlobal(const std::string &Name, uint64_t Index, uint64_t Value);
  uint64_t readGlobal(const std::string &Name, uint64_t Index) const;

  /// Runs one frame through the program from Rx.
  RunResult inject(const std::vector<uint8_t> &Frame, uint16_t RxPort);

  /// Step budget per injected packet (runaway-loop guard).
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }

private:
  struct IVal {
    uint64_t Scalar = 0;
    std::vector<uint8_t> WideBytes; ///< For wide (PAC) values.
  };

  struct Frame;

  IVal callFunction(ir::Function *F, std::vector<IVal> Args);
  IVal evalInstr(Frame &FR, ir::Instr *I);
  IVal operandVal(Frame &FR, ir::Value *V);
  void fail(const char *Fmt, ...) __attribute__((format(printf, 2, 3)));

  ir::Module &M;
  std::map<const ir::Global *, std::vector<uint64_t>> Globals;
  PacketStore Pkts;
  Listener *Hooks = nullptr;

  // Per-run state.
  RunResult *Cur = nullptr;
  std::vector<std::pair<unsigned, uint64_t>> Queue; ///< (chan, handle).
  uint64_t StepLimit = 2'000'000;
  unsigned CallDepth = 0;
};

} // namespace sl::interp

#endif // SL_INTERP_INTERP_H
