//===- analysis/Analysis.h - Baker safety analyses ----------------------------==//
//
// Shared types of the static safety analyses (paper Sec. 2.3: the Baker
// dialect is restricted — no recursion, no aliasing pointers, channel
// outputs release their packet — precisely so these analyses can be
// exact). Two checkers run as driver passes right after inlining, before
// the scalar ladder mutates the source-faithful IR:
//
//   * PacketLifetime.h — packet-handle linearity: use-after-release,
//     double-release, release-of-uninitialized, path-sensitive leaks.
//   * StateRace.h — shared-state access discipline: unlocked
//     read-modify-write sequences, lock-inconsistency, and a per-global
//     sharing classification consumed by the SWC legality check.
//
// Findings carry stable kebab-case reason codes (docs/analysis.md) and
// Baker source locations; the driver renders them as diagnostics, remarks
// and the opt-report's "analysis" section depending on --analyze mode.
//
//===----------------------------------------------------------------------===//

#ifndef SL_ANALYSIS_ANALYSIS_H
#define SL_ANALYSIS_ANALYSIS_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sl::ir {
class Global;
}

namespace sl::analysis {

/// Error findings gate compilation under --analyze=error; notes never do
/// (they record tolerated patterns like unlocked stat counters).
enum class Severity : uint8_t { Error, Note };

const char *severityName(Severity S);

/// One analysis finding.
struct Finding {
  std::string Analysis; ///< "pkt-lifetime" | "state-race".
  std::string Reason;   ///< Stable kebab-case reason code.
  Severity Sev = Severity::Error;
  std::string Function; ///< IR function the finding is in.
  SourceLoc Loc;        ///< Baker source position; invalid if synthetic IR.
  std::string Detail;   ///< Rendered human-readable message.

  bool operator==(const Finding &R) const {
    return Analysis == R.Analysis && Reason == R.Reason && Sev == R.Sev &&
           Function == R.Function && Loc == R.Loc && Detail == R.Detail;
  }
};

/// Who can touch a global, derived from the aggregate plan.
enum class GlobalScope : uint8_t {
  Unused,     ///< No data-plane access at all.
  XScaleOnly, ///< Touched only by the XScale aggregate.
  PerMe,      ///< One ME aggregate, single copy (still multi-threaded).
  CrossMe,    ///< Multiple aggregates and/or replicated copies.
};

const char *globalScopeName(GlobalScope S);

/// Everything the race checker learned about one global.
struct GlobalFacts {
  GlobalScope Scope = GlobalScope::Unused;
  /// Any GStore in the (pre-optimization) data-plane IR. This is the
  /// checked property SWC legality consumes: the scan is taken before the
  /// scalar ladder can delete stores it proves dead, so a global is only
  /// "read-only" if the source program never writes it.
  bool DataPlaneStores = false;
  bool UnlockedRmw = false;    ///< Non-benign RMW outside a critical.
  bool BenignCounter = false;  ///< Only self-feeding counter updates.
  bool LockInconsistent = false;
  int ConsistentLock = -1;     ///< Lock id guarding all accesses; -1 none.
};

/// Per-global classification exported to pktopt/Swc: delayed-update
/// caching is legal only for globals the checker proved free of
/// data-plane stores (keyed by global name; all module globals present).
struct GlobalClassification {
  bool Valid = false;
  std::map<std::string, GlobalFacts> Facts;

  const GlobalFacts *facts(const std::string &Name) const {
    auto It = Facts.find(Name);
    return It == Facts.end() ? nullptr : &It->second;
  }

  /// Safe for SWC to cache? Unknown globals are conservatively unsafe
  /// when the classification is valid.
  bool cacheSafe(const std::string &Name) const {
    if (!Valid)
      return true;
    const GlobalFacts *F = facts(Name);
    return F && !F->DataPlaneStores;
  }
};

} // namespace sl::analysis

#endif // SL_ANALYSIS_ANALYSIS_H
