//===- analysis/PacketLifetime.h - packet-handle linearity checker ----------==//

#ifndef SL_ANALYSIS_PACKETLIFETIME_H
#define SL_ANALYSIS_PACKETLIFETIME_H

#include "analysis/Analysis.h"

namespace sl::ir {
class Function;
class Module;
}

namespace sl::analysis {

/// Checks packet-handle linearity for every function in \p M (paper
/// Sec. 2.3: a channel output releases its packet; the program must not
/// touch, re-release, or leak a handle afterwards). Appends findings with
/// reason codes pkt-use-after-release / pkt-double-release /
/// pkt-release-uninitialized / pkt-leak.
void checkPacketLifetime(const ir::Module &M, std::vector<Finding> &Out);

/// Single-function variant (used by the module pass and tests).
void checkPacketLifetime(const ir::Function &F, std::vector<Finding> &Out);

} // namespace sl::analysis

#endif // SL_ANALYSIS_PACKETLIFETIME_H
