//===- analysis/StateRace.cpp - shared-state race checker -------------------==//
//
// Three cooperating pieces (SNAP-style shared-state discipline checking):
//
//  1. A per-function forward lockset dataflow: the set of locks certainly
//     held at each program point (intersection join over CFG paths;
//     LockAcquire adds, LockRelease removes). Baker's `critical` blocks
//     are structured, so the lattice is tiny and converges fast.
//
//  2. A per-global access census. Every GLoad/GStore site records its
//     function, direction, and lockset; the aggregate plan from src/map
//     then classifies the global's sharing scope: XScale-only (single
//     control core), per-ME (one aggregate, one copy — still shared by
//     that ME's threads), or cross-ME (multiple aggregates or replicated
//     copies).
//
//  3. Race detection on the census. A store whose value backward-slices
//     to a load of the same global is a read-modify-write; an RMW outside
//     any critical section on an ME-shared global races. The one
//     tolerated shape is the paper's fire-and-forget stat counter: if
//     every load of the global module-wide flows only back into stores of
//     the same global (never into a packet, another global, a branch, or
//     a channel), lost updates are unobservable and the RMW is demoted to
//     a benign-counter-rmw note. Lock inconsistency fires when all
//     accesses are locked but no single lock covers them all.
//
// The returned GlobalClassification (keyed by global name) is what turns
// SWC legality into a checked property: the DataPlaneStores bit is
// computed *before* the scalar ladder runs, so stores the optimizer later
// proves dead still count — pktopt/Swc consults it via cacheSafe().
//
//===----------------------------------------------------------------------===//

#include "analysis/StateRace.h"

#include "ir/Module.h"
#include "map/Aggregation.h"
#include "support/Casting.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace sl;
using namespace sl::analysis;
using namespace sl::ir;

namespace {

using LockSet = std::set<unsigned>;

/// One global access site, in deterministic module order.
struct Site {
  const Instr *I = nullptr;
  const Function *F = nullptr;
  bool IsStore = false;
  LockSet Locks; ///< Locks certainly held at the access.
};

/// Ops through which a value "stays a value" for slicing/taint purposes.
bool isFlowOp(Op O) {
  switch (O) {
  case Op::ZExt:
  case Op::SExt:
  case Op::Trunc:
  case Op::Phi:
  case Op::Select:
    return true;
  default:
    return isBinaryOp(O);
  }
}

class RaceChecker {
public:
  RaceChecker(const Module &M, const map::MappingPlan &Plan,
              std::vector<Finding> &Out)
      : M(M), Plan(Plan), Out(Out) {}

  GlobalClassification run() {
    for (const auto &F : M.functions())
      computeLocksets(*F);
    collectSites();
    GlobalClassification Cls;
    Cls.Valid = true;
    for (const auto &G : M.globals())
      Cls.Facts.emplace(G->name(), classify(G.get()));
    dedupFindings();
    return Cls;
  }

private:
  const Module &M;
  const map::MappingPlan &Plan;
  std::vector<Finding> &Out;

  std::map<const Instr *, LockSet> LocksAt; ///< At each GLoad/GStore.
  std::map<const Global *, std::vector<Site>> Sites;

  std::string lockName(unsigned Id) const {
    if (Id < M.LockNames.size() && !M.LockNames[Id].empty())
      return M.LockNames[Id];
    return "lock" + std::to_string(Id);
  }

  // -- Lockset dataflow -----------------------------------------------------

  static void apply(const Instr *I, LockSet &S) {
    if (I->op() == Op::LockAcquire)
      S.insert(I->LockId);
    else if (I->op() == Op::LockRelease)
      S.erase(I->LockId);
  }

  void computeLocksets(const Function &F) {
    if (F.numBlocks() == 0)
      return;
    std::map<const BasicBlock *, LockSet> In;
    std::deque<const BasicBlock *> Work;
    In[F.entry()] = {};
    Work.push_back(F.entry());
    while (!Work.empty()) {
      const BasicBlock *BB = Work.front();
      Work.pop_front();
      LockSet S = In[BB];
      for (const auto &IP : BB->instrs())
        apply(IP.get(), S);
      const Instr *T = BB->terminator();
      if (!T)
        continue;
      for (BasicBlock *Succ : T->succs()) {
        auto It = In.find(Succ);
        if (It == In.end()) {
          In[Succ] = S;
          Work.push_back(Succ);
          continue;
        }
        // Must-hold join: intersection.
        LockSet Merged;
        std::set_intersection(It->second.begin(), It->second.end(), S.begin(),
                              S.end(), std::inserter(Merged, Merged.begin()));
        if (Merged != It->second) {
          It->second = std::move(Merged);
          Work.push_back(Succ);
        }
      }
    }
    for (const auto &BB : F.blocks()) {
      auto It = In.find(BB.get());
      if (It == In.end())
        continue; // Unreachable.
      LockSet S = It->second;
      for (const auto &IP : BB->instrs()) {
        if (IP->op() == Op::GLoad || IP->op() == Op::GStore)
          LocksAt[IP.get()] = S;
        apply(IP.get(), S);
      }
    }
  }

  void collectSites() {
    for (const auto &F : M.functions())
      for (const auto &BB : F->blocks())
        for (const auto &IP : BB->instrs()) {
          const Instr *I = IP.get();
          if (I->op() != Op::GLoad && I->op() != Op::GStore)
            continue;
          auto It = LocksAt.find(I);
          if (It == LocksAt.end())
            continue; // Unreachable code.
          Sites[I->GlobalRef].push_back(
              {I, F.get(), I->op() == Op::GStore, It->second});
        }
  }

  // -- Sharing scope --------------------------------------------------------

  GlobalScope scopeOf(const std::vector<Site> &GS) const {
    if (GS.empty())
      return GlobalScope::Unused;
    std::set<unsigned> Aggs;
    for (const Site &S : GS) {
      unsigned A = Plan.aggregateOf(S.F);
      if (A == ~0u)
        return GlobalScope::CrossMe; // Unplanned helper: assume shared.
      Aggs.insert(A);
    }
    if (Aggs.size() > 1)
      return GlobalScope::CrossMe;
    const map::Aggregate &A = Plan.Aggregates[*Aggs.begin()];
    if (A.OnXScale)
      return GlobalScope::XScaleOnly;
    return A.Copies > 1 ? GlobalScope::CrossMe : GlobalScope::PerMe;
  }

  // -- RMW detection --------------------------------------------------------

  /// Does \p Root (a store's value operand) backward-slice to a load of
  /// \p G? Walks pure value flow and scalar stack slots, flow-insensitively.
  bool slicesToLoadOf(const Value *Root, const Global *G) const {
    std::set<const Value *> Visited;
    std::deque<const Value *> Work{Root};
    while (!Work.empty()) {
      const Value *V = Work.front();
      Work.pop_front();
      if (!Visited.insert(V).second)
        continue;
      const auto *I = dyn_cast<Instr>(V);
      if (!I)
        continue;
      if (I->op() == Op::GLoad) {
        if (I->GlobalRef == G)
          return true;
        continue;
      }
      if (I->op() == Op::Load) {
        // Pull in everything stored to the slot.
        for (const Instr *U : I->operand(0)->users())
          if (U->op() == Op::Store && U->operand(0) == I->operand(0))
            Work.push_back(U->operand(1));
        continue;
      }
      if (isFlowOp(I->op()) || isCompareOp(I->op()))
        for (unsigned K = 0; K != I->numOperands(); ++K)
          Work.push_back(I->operand(K));
    }
    return false;
  }

  /// The benign-counter test: true when no load of \p G anywhere in the
  /// module escapes — each one feeds (through arithmetic, phis, and stack
  /// slots) only value operands of stores back to \p G. Then the global
  /// is write-only state as far as packets, branches, and other globals
  /// can observe, and a lost update is invisible.
  bool loadsNeverEscape(const Global *G) const {
    std::set<const Value *> Taint;
    std::deque<const Value *> Work;
    for (const auto &F : M.functions())
      for (const auto &BB : F->blocks())
        for (const auto &IP : BB->instrs())
          if (IP->op() == Op::GLoad && IP->GlobalRef == G) {
            Taint.insert(IP.get());
            Work.push_back(IP.get());
          }
    while (!Work.empty()) {
      const Value *V = Work.front();
      Work.pop_front();
      for (const Instr *U : V->users()) {
        if (U->op() == Op::GStore && U->GlobalRef == G &&
            U->operand(1) == V && U->operand(0) != V)
          continue; // The one legal sink: stored back into G.
        if (U->op() == Op::Store && U->operand(1) == V) {
          // Through a stack slot: taint the slot's loads.
          for (const Instr *L : U->operand(0)->users())
            if (L->op() == Op::Load && Taint.insert(L).second)
              Work.push_back(L);
          continue;
        }
        if (isFlowOp(U->op())) {
          if (Taint.insert(U).second)
            Work.push_back(U);
          continue;
        }
        return false; // Packet store, branch, compare, index, call, ...
      }
    }
    return true;
  }

  // -- Per-global verdict ---------------------------------------------------

  GlobalFacts classify(const Global *G) {
    GlobalFacts Facts;
    auto SIt = Sites.find(G);
    const std::vector<Site> Empty;
    const std::vector<Site> &GS = SIt == Sites.end() ? Empty : SIt->second;
    Facts.Scope = scopeOf(GS);
    for (const Site &S : GS)
      Facts.DataPlaneStores |= S.IsStore;

    // Races need concurrency: XScale globals are touched by one control
    // core only, unused globals by nobody.
    bool Shared = Facts.Scope == GlobalScope::PerMe ||
                  Facts.Scope == GlobalScope::CrossMe;

    if (Shared) {
      bool Benign = false, BenignKnown = false;
      for (const Site &S : GS) {
        if (!S.IsStore || !S.Locks.empty())
          continue;
        if (!slicesToLoadOf(S.I->operand(1), G))
          continue; // Blind store: last-writer-wins by design.
        if (!BenignKnown) {
          Benign = loadsNeverEscape(G);
          BenignKnown = true;
        }
        if (Benign) {
          if (!Facts.BenignCounter) {
            Facts.BenignCounter = true;
            report("benign-counter-rmw", Severity::Note, *S.F, S.I->Loc,
                   "unlocked counter update of global '%s' (%s): value never "
                   "observed, lost increments are benign",
                   G->name().c_str(), globalScopeName(Facts.Scope));
          }
        } else {
          Facts.UnlockedRmw = true;
          report("race-unlocked-rmw", Severity::Error, *S.F, S.I->Loc,
                 "read-modify-write of %s global '%s' outside any critical "
                 "section",
                 globalScopeName(Facts.Scope), G->name().c_str());
        }
      }
    }

    // Lock-consistency: when every access is locked, some single lock
    // must cover them all.
    if (GS.size() >= 2 &&
        std::all_of(GS.begin(), GS.end(),
                    [](const Site &S) { return !S.Locks.empty(); })) {
      LockSet Inter = GS.front().Locks;
      for (const Site &S : GS) {
        LockSet Next;
        std::set_intersection(Inter.begin(), Inter.end(), S.Locks.begin(),
                              S.Locks.end(),
                              std::inserter(Next, Next.begin()));
        if (Next.empty()) {
          Facts.LockInconsistent = true;
          if (Shared)
            report("race-lock-inconsistency", Severity::Error, *S.F, S.I->Loc,
                   "global '%s' accessed under lock '%s' here but under lock "
                   "'%s' elsewhere",
                   G->name().c_str(), lockName(*S.Locks.begin()).c_str(),
                   lockName(*Inter.begin()).c_str());
          break;
        }
        Inter = std::move(Next);
      }
      if (!Facts.LockInconsistent)
        Facts.ConsistentLock = static_cast<int>(*Inter.begin());
    }
    return Facts;
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 6, 7)))
#endif
  void
  report(const char *Reason, Severity Sev, const Function &F, SourceLoc Loc,
         const char *Fmt, ...) {
    char Msg[256];
    va_list Ap;
    va_start(Ap, Fmt);
    std::vsnprintf(Msg, sizeof(Msg), Fmt, Ap);
    va_end(Ap);
    Out.push_back({"state-race", Reason, Sev, F.name(), Loc, Msg});
  }

  void dedupFindings() {
    // Inlined clones share source locations; report each (reason, loc)
    // once. Findings were appended by this run only when Out started
    // empty; dedup conservatively over the whole vector.
    std::set<std::tuple<std::string, unsigned, unsigned>> Seen;
    std::vector<Finding> Kept;
    Kept.reserve(Out.size());
    for (Finding &Fi : Out) {
      if (Fi.Analysis == "state-race" && Fi.Loc.isValid() &&
          !Seen.insert({Fi.Reason, Fi.Loc.Line, Fi.Loc.Col}).second)
        continue;
      Kept.push_back(std::move(Fi));
    }
    Out = std::move(Kept);
  }
};

} // namespace

const char *analysis::severityName(Severity S) {
  return S == Severity::Error ? "error" : "note";
}

const char *analysis::globalScopeName(GlobalScope S) {
  switch (S) {
  case GlobalScope::Unused:
    return "unused";
  case GlobalScope::XScaleOnly:
    return "xscale-only";
  case GlobalScope::PerMe:
    return "per-me";
  case GlobalScope::CrossMe:
    return "cross-me";
  }
  return "unknown";
}

GlobalClassification analysis::checkStateRace(const Module &M,
                                              const map::MappingPlan &Plan,
                                              std::vector<Finding> &Out) {
  return RaceChecker(M, Plan, Out).run();
}
