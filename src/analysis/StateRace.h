//===- analysis/StateRace.h - shared-state race checker ---------------------==//

#ifndef SL_ANALYSIS_STATERACE_H
#define SL_ANALYSIS_STATERACE_H

#include "analysis/Analysis.h"

namespace sl::ir {
class Module;
}
namespace sl::map {
struct MappingPlan;
}

namespace sl::analysis {

/// Classifies every module global by who touches it (using the aggregate
/// plan) and by access discipline (lockset dataflow over `critical`
/// sections). Emits race-unlocked-rmw / race-lock-inconsistency errors
/// and benign-counter-rmw notes into \p Out, and returns the per-global
/// classification pktopt/Swc consults for cache legality.
GlobalClassification checkStateRace(const ir::Module &M,
                                    const map::MappingPlan &Plan,
                                    std::vector<Finding> &Out);

} // namespace sl::analysis

#endif // SL_ANALYSIS_STATERACE_H
