//===- analysis/PacketLifetime.cpp - packet-handle linearity checker --------==//
//
// Flow-sensitive lifetime checking of packet handles. Handles that alias
// the same underlying packet (decap/encap results, phi/select merges,
// values moved through stack slots) are collapsed into one alias class
// with a union-find; a forward dataflow over the CFG then tracks, per
// class, the may-state {Uninit, Live, Released} with set-union join.
// Release operations (channel_put / packet_drop) perform a strong update
// to {Released} — Baker aliasing is exact (Sec. 2.3), so a release kills
// every alias of the handle.
//
// Reported:
//   pkt-use-after-release       touching a handle a release may have killed
//   pkt-double-release          releasing a handle twice
//   pkt-release-uninitialized   releasing a never-initialized handle
//   pkt-leak                    a PPF exit reachable with a live handle
//
// Handles that escape through a call boundary (call argument or result,
// or returned from a helper) are exempt from every check: the analysis
// runs after inlining, so remaining calls are opaque.
//
//===----------------------------------------------------------------------===//

#include "analysis/PacketLifetime.h"

#include "ir/Module.h"
#include "support/Casting.h"

#include <cstdarg>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace sl;
using namespace sl::analysis;
using namespace sl::ir;

namespace {

// May-state bits of one alias class.
enum : uint8_t { StUninit = 1, StLive = 2, StReleased = 4 };

/// True if \p V holds a packet handle: a packet-typed value, or a stack
/// slot whose element type is a packet (the alloca itself is i32-typed).
bool holdsPacket(const Value *V) {
  if (V->type().isPacket())
    return true;
  if (const auto *I = dyn_cast<Instr>(V))
    return I->op() == Op::Alloca && I->AllocTy.isPacket();
  return false;
}

bool isReleaseOp(Op O) { return O == Op::PktDrop || O == Op::ChannelPut; }

/// True for packet ops that read their handle operand (operand 0).
bool isHandleUseOp(Op O) {
  switch (O) {
  case Op::PktLoad:
  case Op::PktStore:
  case Op::MetaLoad:
  case Op::MetaStore:
  case Op::PktDecap:
  case Op::PktEncap:
  case Op::PktCopy:
  case Op::PktLength:
  case Op::PktLoadWide:
  case Op::PktStoreWide:
    return true;
  default:
    return false;
  }
}

class LifetimeChecker {
public:
  LifetimeChecker(const Function &F, std::vector<Finding> &Out)
      : F(F), Out(Out) {}

  void run() {
    if (F.numBlocks() == 0)
      return;
    collectClasses();
    if (Parent.empty())
      return;
    compress();
    markEscapes();
    solve();
    emitPass();
  }

private:
  const Function &F;
  std::vector<Finding> &Out;

  // Union-find over tracked values.
  std::map<const Value *, unsigned> Ids; ///< Value -> union-find node.
  std::vector<unsigned> Parent;
  std::vector<unsigned> Compact;      ///< UF root -> dense class id.
  unsigned NumClasses = 0;
  std::vector<bool> Escaped;          ///< Per dense class.
  std::vector<std::string> ClassName; ///< Representative handle name.
  std::vector<bool> HasArg;           ///< Class contains a function argument.

  using State = std::vector<uint8_t>; ///< Per dense class: may-state bits.
  std::map<const BasicBlock *, State> In;

  unsigned node(const Value *V) {
    auto It = Ids.find(V);
    if (It != Ids.end())
      return It->second;
    unsigned N = static_cast<unsigned>(Parent.size());
    Ids.emplace(V, N);
    Parent.push_back(N);
    return N;
  }

  unsigned find(unsigned N) {
    while (Parent[N] != N) {
      Parent[N] = Parent[Parent[N]];
      N = Parent[N];
    }
    return N;
  }

  void unite(const Value *A, const Value *B) {
    unsigned RA = find(node(A)), RB = find(node(B));
    if (RA != RB)
      Parent[RB] = RA;
  }

  void collectClasses() {
    for (unsigned I = 0; I != F.numArgs(); ++I)
      if (F.arg(I)->type().isPacket())
        node(F.arg(I));
    for (const auto &BB : F.blocks()) {
      for (const auto &IP : BB->instrs()) {
        const Instr *I = IP.get();
        if (holdsPacket(I))
          node(I);
        for (unsigned K = 0; K != I->numOperands(); ++K)
          if (Value *OpV = I->operand(K); OpV && holdsPacket(OpV))
            node(OpV);
        switch (I->op()) {
        case Op::PktDecap:
        case Op::PktEncap:
          // The result handle still designates the same packet.
          unite(I, I->operand(0));
          break;
        case Op::Phi:
          if (I->type().isPacket())
            for (unsigned K = 0; K != I->numOperands(); ++K)
              unite(I, I->operand(K));
          break;
        case Op::Select:
          if (I->type().isPacket()) {
            unite(I, I->operand(1));
            unite(I, I->operand(2));
          }
          break;
        case Op::Store:
          // Moving a handle through a stack slot aliases slot and value.
          if (holdsPacket(I->operand(1)))
            unite(I->operand(0), I->operand(1));
          break;
        case Op::Load:
          if (I->type().isPacket())
            unite(I, I->operand(0));
          break;
        default:
          // PktCopy deliberately NOT united with its operand: the copy is
          // a fresh packet with its own lifetime.
          break;
        }
      }
    }
  }

  void compress() {
    Compact.assign(Parent.size(), ~0u);
    for (const auto &[V, N] : Ids) {
      (void)V;
      unsigned R = find(N);
      if (Compact[R] == ~0u)
        Compact[R] = NumClasses++;
    }
    Escaped.assign(NumClasses, false);
    ClassName.assign(NumClasses, "");
    HasArg.assign(NumClasses, false);
    // Prefer argument names as the class representative; insertion into
    // Ids is deterministic only up to pointer order, so pick names by
    // walking args then blocks in program order.
    for (unsigned I = 0; I != F.numArgs(); ++I) {
      const Argument *A = F.arg(I);
      if (!A->type().isPacket())
        continue;
      unsigned C = classOf(A);
      HasArg[C] = true;
      if (ClassName[C].empty() && !A->name().empty())
        ClassName[C] = A->name();
    }
    for (const auto &BB : F.blocks())
      for (const auto &IP : BB->instrs())
        if (holdsPacket(IP.get())) {
          unsigned C = classOf(IP.get());
          if (ClassName[C].empty() && !IP->name().empty())
            ClassName[C] = IP->name();
        }
  }

  unsigned classOf(const Value *V) {
    auto It = Ids.find(V);
    assert(It != Ids.end() && "untracked packet value");
    return Compact[find(It->second)];
  }

  void markEscapes() {
    for (const auto &BB : F.blocks()) {
      for (const auto &IP : BB->instrs()) {
        const Instr *I = IP.get();
        if (I->op() == Op::Call) {
          for (unsigned K = 0; K != I->numOperands(); ++K)
            if (holdsPacket(I->operand(K)))
              Escaped[classOf(I->operand(K))] = true;
          if (I->type().isPacket())
            Escaped[classOf(I)] = true;
        } else if (I->op() == Op::Ret && I->numOperands() == 1 &&
                   holdsPacket(I->operand(0))) {
          Escaped[classOf(I->operand(0))] = true;
        }
      }
    }
  }

  State entryState() const {
    State S(NumClasses, StUninit);
    for (unsigned C = 0; C != NumClasses; ++C)
      if (HasArg[C])
        S[C] = StLive;
    return S;
  }

  /// Applies \p I to \p S. When \p Emit is set, reports findings.
  void step(const Instr *I, State &S, bool Emit) {
    Op O = I->op();
    if (isHandleUseOp(O) && I->operand(0)->type().isPacket()) {
      unsigned C = classOf(I->operand(0));
      if (!Escaped[C] && (S[C] & StReleased) && Emit)
        report("pkt-use-after-release", Severity::Error, I->Loc,
               "packet handle %s read by %s after %s release", nameOf(C).c_str(),
               opName(O), (S[C] & StLive) ? "a possible" : "its");
    }
    if (O == Op::PktCopy) {
      S[classOf(I)] = StLive;
      return;
    }
    if (isReleaseOp(O) && I->operand(0)->type().isPacket()) {
      unsigned C = classOf(I->operand(0));
      if (!Escaped[C] && Emit) {
        const char *What = O == Op::PktDrop ? "packet_drop" : "channel_put";
        if (S[C] & StReleased)
          report("pkt-double-release", Severity::Error, I->Loc,
                 "packet handle %s released again by %s", nameOf(C).c_str(), What);
        else if ((S[C] & StUninit) && !(S[C] & StLive))
          report("pkt-release-uninitialized", Severity::Error, I->Loc,
                 "%s releases packet handle %s which was never initialized",
                 What, nameOf(C).c_str());
      }
      S[C] = StReleased; // Strong update: kills every alias.
      return;
    }
    if (O == Op::Ret && F.isPpf() && Emit) {
      for (unsigned C = 0; C != NumClasses; ++C)
        if (!Escaped[C] && (S[C] & StLive))
          report("pkt-leak", Severity::Error, I->Loc,
                 "packet handle %s is still live at PPF exit%s", nameOf(C).c_str(),
                 (S[C] & StReleased) ? " on some path" : "");
    }
  }

  void solve() {
    std::deque<const BasicBlock *> Work;
    In[F.entry()] = entryState();
    Work.push_back(F.entry());
    while (!Work.empty()) {
      const BasicBlock *BB = Work.front();
      Work.pop_front();
      State S = In[BB];
      for (const auto &IP : BB->instrs())
        step(IP.get(), S, /*Emit=*/false);
      const Instr *T = BB->terminator();
      if (!T)
        continue;
      for (BasicBlock *Succ : T->succs()) {
        auto It = In.find(Succ);
        if (It == In.end()) {
          In[Succ] = S;
          Work.push_back(Succ);
          continue;
        }
        bool Changed = false;
        for (unsigned C = 0; C != NumClasses; ++C) {
          uint8_t Merged = static_cast<uint8_t>(It->second[C] | S[C]);
          if (Merged != It->second[C]) {
            It->second[C] = Merged;
            Changed = true;
          }
        }
        if (Changed)
          Work.push_back(Succ);
      }
    }
  }

  void emitPass() {
    // One deterministic reporting sweep with the fixpoint block-entry
    // states (unreachable blocks have no state and are skipped).
    for (const auto &BB : F.blocks()) {
      auto It = In.find(BB.get());
      if (It == In.end())
        continue;
      State S = It->second;
      for (const auto &IP : BB->instrs())
        step(IP.get(), S, /*Emit=*/true);
    }
  }

  std::string nameOf(unsigned C) const {
    return ClassName[C].empty() ? std::string("<packet>")
                                : "'" + ClassName[C] + "'";
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 5, 6)))
#endif
  void
  report(const char *Reason, Severity Sev, SourceLoc Loc, const char *Fmt,
         ...) {
    char Msg[256];
    va_list Ap;
    va_start(Ap, Fmt);
    std::vsnprintf(Msg, sizeof(Msg), Fmt, Ap);
    va_end(Ap);
    Out.push_back({"pkt-lifetime", Reason, Sev, F.name(), Loc, Msg});
  }
};

} // namespace

void analysis::checkPacketLifetime(const Function &F,
                                   std::vector<Finding> &Out) {
  LifetimeChecker(F, Out).run();
}

void analysis::checkPacketLifetime(const Module &M,
                                   std::vector<Finding> &Out) {
  std::vector<Finding> Raw;
  for (const auto &F : M.functions())
    checkPacketLifetime(*F, Raw);
  // The inliner clones instructions (source locations included), so the
  // same source defect can surface once per inlined copy. Report each
  // (reason, location) pair once; findings without a location (synthetic
  // IR) are kept as-is.
  std::set<std::tuple<std::string, unsigned, unsigned>> Seen;
  for (Finding &Fi : Raw) {
    if (Fi.Loc.isValid() &&
        !Seen.insert({Fi.Reason, Fi.Loc.Line, Fi.Loc.Col}).second)
      continue;
    Out.push_back(std::move(Fi));
  }
}
