//===- support/Rng.h - deterministic random numbers ----------------------===//
//
// Trace generators and property tests need reproducible randomness that is
// stable across platforms and standard-library versions, so we use an
// explicit xorshift64* generator instead of <random> engines.
//
//===----------------------------------------------------------------------===//

#ifndef SL_SUPPORT_RNG_H
#define SL_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace sl {

/// xorshift64* pseudo-random generator with a fixed, documented algorithm.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull)
      : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Bernoulli draw: true with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den != 0 && "zero denominator");
    return nextBelow(Den) < Num;
  }

private:
  uint64_t State;
};

} // namespace sl

#endif // SL_SUPPORT_RNG_H
