//===- support/Json.h - minimal streaming JSON writer ----------------------------==//
//
// A small, dependency-free JSON emitter used by the simulator telemetry
// exporters and the benchmark harness. It streams to a std::ostream and
// tracks nesting so commas and indentation are inserted automatically:
//
//   JsonWriter W(OS);
//   W.beginObject();
//   W.field("cycles", Cycles);
//   W.key("threads"); W.beginArray();
//   for (...) { W.beginObject(); ... W.endObject(); }
//   W.endArray();
//   W.endObject();
//
// Only what the telemetry schema needs: objects, arrays, strings, bools,
// integers and doubles (doubles are emitted with enough precision to
// round-trip).
//
//===----------------------------------------------------------------------===//

#ifndef SL_SUPPORT_JSON_H
#define SL_SUPPORT_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sl::support {

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included).
std::string jsonEscape(std::string_view S);

class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS, bool Pretty = true)
      : OS(OS), Pretty(Pretty) {}

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  /// Emits the key of the next member of the enclosing object.
  void key(std::string_view K);

  void value(std::string_view V);
  void value(const char *V) { value(std::string_view(V)); }
  void value(bool V);
  void value(double V);
  void value(uint64_t V);
  void value(int64_t V);
  void value(unsigned V) { value(uint64_t(V)); }
  void value(int V) { value(int64_t(V)); }

  template <typename T> void field(std::string_view K, T V) {
    key(K);
    value(V);
  }

private:
  void open(char C);
  void close(char C);
  void separate(); ///< Comma/newline before a sibling element.
  void indent();

  std::ostream &OS;
  bool Pretty;
  /// One frame per open container: true once a first element was written.
  std::vector<bool> HasElem;
  bool PendingKey = false;
};

} // namespace sl::support

#endif // SL_SUPPORT_JSON_H
