//===- support/SourceLoc.h - source positions ----------------------------===//

#ifndef SL_SUPPORT_SOURCELOC_H
#define SL_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace sl {

/// A 1-based (line, column) position in a Baker source buffer. Line 0 means
/// "unknown location" (compiler-synthesized constructs).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Col == RHS.Col;
  }
};

} // namespace sl

#endif // SL_SUPPORT_SOURCELOC_H
