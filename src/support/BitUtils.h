//===- support/BitUtils.h - bit and alignment helpers --------------------===//

#ifndef SL_SUPPORT_BITUTILS_H
#define SL_SUPPORT_BITUTILS_H

#include <cassert>
#include <cstdint>

namespace sl {

/// Returns a mask with the low \p Bits bits set. \p Bits may be 0..64.
inline uint64_t maskLow(unsigned Bits) {
  assert(Bits <= 64 && "mask wider than 64 bits");
  if (Bits == 64)
    return ~uint64_t(0);
  return (uint64_t(1) << Bits) - 1;
}

/// Rounds \p Value up to the next multiple of \p Align (a power of two).
inline uint64_t alignTo(uint64_t Value, uint64_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "align not a power of 2");
  return (Value + Align - 1) & ~(Align - 1);
}

/// Returns true if \p Value is a multiple of \p Align (a power of two).
inline bool isAligned(uint64_t Value, uint64_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "align not a power of 2");
  return (Value & (Align - 1)) == 0;
}

/// Largest power-of-two alignment dividing \p Value, capped at \p Cap.
/// alignmentOf(0) returns Cap.
inline uint64_t alignmentOf(uint64_t Value, uint64_t Cap = 8) {
  uint64_t A = 1;
  while (A < Cap && (Value & A) == 0)
    A <<= 1;
  if ((Value & (A - 1)) != 0)
    A = 1;
  while (A > 1 && (Value % A) != 0)
    A >>= 1;
  return A;
}

/// Ceiling division for unsigned integers.
inline uint64_t divideCeil(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "division by zero");
  return (Num + Den - 1) / Den;
}

} // namespace sl

#endif // SL_SUPPORT_BITUTILS_H
