//===- support/Diagnostics.h - error collection ---------------------------==//
//
// The compiler reports user errors through a DiagEngine rather than
// exceptions (the libraries are exception-free). Phases check
// DiagEngine::hasErrors() and bail out early.
//
//===----------------------------------------------------------------------===//

#ifndef SL_SUPPORT_DIAGNOSTICS_H
#define SL_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace sl {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diag {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while compiling one program.
class DiagEngine {
public:
  /// Reports an error at \p Loc. printf-style.
  void error(SourceLoc Loc, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));

  /// Reports a warning at \p Loc. printf-style.
  void warning(SourceLoc Loc, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));

  /// Reports a note at \p Loc. printf-style.
  void note(SourceLoc Loc, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diag> &diags() const { return Diags; }

  /// Renders every diagnostic as "line:col: severity: message\n".
  std::string str() const;

  /// Drops all collected diagnostics.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  void report(DiagKind Kind, SourceLoc Loc, const char *Fmt, va_list Args);

  std::vector<Diag> Diags;
  unsigned NumErrors = 0;
};

} // namespace sl

#endif // SL_SUPPORT_DIAGNOSTICS_H
