//===- support/Json.cpp ------------------------------------------------------------==//

#include "support/Json.h"

#include <cmath>
#include <cstdio>

using namespace sl::support;

std::string sl::support::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C & 0xFF);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::indent() {
  if (!Pretty)
    return;
  OS << '\n';
  for (size_t I = 0; I != HasElem.size(); ++I)
    OS << "  ";
}

void JsonWriter::separate() {
  if (PendingKey) {
    PendingKey = false;
    return; // The key already emitted the comma for this member.
  }
  if (!HasElem.empty()) {
    if (HasElem.back())
      OS << ',';
    HasElem.back() = true;
    indent();
  }
}

void JsonWriter::open(char C) {
  separate();
  OS << C;
  HasElem.push_back(false);
}

void JsonWriter::close(char C) {
  bool Had = HasElem.back();
  HasElem.pop_back();
  if (Had)
    indent();
  OS << C;
}

void JsonWriter::key(std::string_view K) {
  separate();
  OS << '"' << jsonEscape(K) << "\":";
  if (Pretty)
    OS << ' ';
  PendingKey = true;
}

void JsonWriter::value(std::string_view V) {
  separate();
  OS << '"' << jsonEscape(V) << '"';
}

void JsonWriter::value(bool V) {
  separate();
  OS << (V ? "true" : "false");
}

void JsonWriter::value(uint64_t V) {
  separate();
  OS << V;
}

void JsonWriter::value(int64_t V) {
  separate();
  OS << V;
}

void JsonWriter::value(double V) {
  separate();
  if (!std::isfinite(V)) {
    OS << "null"; // JSON has no Inf/NaN.
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  OS << Buf;
}
