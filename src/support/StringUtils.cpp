//===- support/StringUtils.cpp --------------------------------------------==//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>

using namespace sl;

std::string sl::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string sl::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = formatStringV(Fmt, Args);
  va_end(Args);
  return Out;
}

std::vector<std::string> sl::splitString(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(S.substr(Start));
      return Parts;
    }
    Parts.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string sl::trimString(const std::string &S) {
  size_t Begin = 0, End = S.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

bool sl::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

std::string sl::joinStrings(const std::vector<std::string> &Parts,
                            const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}
