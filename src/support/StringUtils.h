//===- support/StringUtils.h - string formatting helpers -----------------===//
//
// printf-style formatting into std::string, plus small parsing helpers used
// across the compiler. The library deliberately avoids <iostream>.
//
//===----------------------------------------------------------------------===//

#ifndef SL_SUPPORT_STRINGUTILS_H
#define SL_SUPPORT_STRINGUTILS_H

#include <cstdarg>
#include <string>
#include <vector>

namespace sl {

/// printf into a freshly allocated std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// vprintf into a freshly allocated std::string.
std::string formatStringV(const char *Fmt, va_list Args);

/// Splits \p S at each occurrence of \p Sep; keeps empty pieces.
std::vector<std::string> splitString(const std::string &S, char Sep);

/// Returns \p S with leading and trailing ASCII whitespace removed.
std::string trimString(const std::string &S);

/// Returns true if \p S begins with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

} // namespace sl

#endif // SL_SUPPORT_STRINGUTILS_H
