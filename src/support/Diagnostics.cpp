//===- support/Diagnostics.cpp --------------------------------------------==//

#include "support/Diagnostics.h"

#include "support/StringUtils.h"

#include <cstdarg>

using namespace sl;

void DiagEngine::report(DiagKind Kind, SourceLoc Loc, const char *Fmt,
                        va_list Args) {
  Diag D;
  D.Kind = Kind;
  D.Loc = Loc;
  D.Message = formatStringV(Fmt, Args);
  Diags.push_back(std::move(D));
  if (Kind == DiagKind::Error)
    ++NumErrors;
}

void DiagEngine::error(SourceLoc Loc, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  report(DiagKind::Error, Loc, Fmt, Args);
  va_end(Args);
}

void DiagEngine::warning(SourceLoc Loc, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  report(DiagKind::Warning, Loc, Fmt, Args);
  va_end(Args);
}

void DiagEngine::note(SourceLoc Loc, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  report(DiagKind::Note, Loc, Fmt, Args);
  va_end(Args);
}

std::string DiagEngine::str() const {
  std::string Out;
  for (const Diag &D : Diags) {
    const char *Sev = D.Kind == DiagKind::Error     ? "error"
                      : D.Kind == DiagKind::Warning ? "warning"
                                                    : "note";
    Out += formatString("%u:%u: %s: %s\n", D.Loc.Line, D.Loc.Col, Sev,
                        D.Message.c_str());
  }
  return Out;
}
