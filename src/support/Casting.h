//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the Shangri-La reproduction. Lightweight, classof-based RTTI in
// the style of llvm/Support/Casting.h: opt-in per class hierarchy, no
// v-table requirement beyond what the hierarchy already has.
//
//===----------------------------------------------------------------------===//

#ifndef SL_SUPPORT_CASTING_H
#define SL_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace sl {

/// Returns true if \p Val is an instance of type \p To. \p Val must be
/// non-null. \p To must provide `static bool classof(const From *)`.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From,
          typename = std::enable_if_t<!std::is_pointer_v<From>>>
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<>, but tolerates a null argument (propagates null).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace sl

#endif // SL_SUPPORT_CASTING_H
