//===- rts/MemoryMap.cpp --------------------------------------------------------==//

#include "rts/MemoryMap.h"

#include "support/BitUtils.h"

#include <cassert>

using namespace sl;
using namespace sl::rts;

MemoryMap sl::rts::buildMemoryMap(const ir::Module &M,
                                  unsigned NumPktHandles) {
  MemoryMap Map;
  Map.UserMetaBits = M.MetaBits;

  // SRAM: globals first (word aligned), then the metadata pool, then the
  // stack overflow region.
  uint32_t Sram = 64; // Keep address 0 unused; 0 is the "null handle".
  for (const auto &G : M.globals()) {
    if (G->Level == ir::MemLevel::Scratch)
      continue;
    Map.GlobalBase[G.get()] = Sram;
    Sram += static_cast<uint32_t>(G->count() * MemoryMap::elemWords(G.get()) *
                                  4);
    Sram = static_cast<uint32_t>(alignTo(Sram, 8));
  }
  Map.MetaBlockBytes = 12 + Map.userMetaWords() * 4;
  Map.MetaPoolBase = Sram;
  Map.NumPktHandles = NumPktHandles;
  Sram += NumPktHandles * Map.MetaBlockBytes;
  Sram = static_cast<uint32_t>(alignTo(Sram, 64));
  Map.StackSramBase = Sram;

  // Scratch: rings are modeled by index (no byte addressing needed); locks
  // and cache version words do use scratch addresses.
  unsigned MaxChan = 0;
  for (const ir::Channel &C : M.Channels)
    MaxChan = std::max(MaxChan, C.Id);
  Map.NumRings = 2 + MaxChan; // rx, tx, channels 1..MaxChan.
  uint32_t Scratch = 64;
  Map.LockBase = Scratch;
  Scratch += std::max(1u, M.NumLocks) * 4;
  Map.VersionBase = Scratch;

  // DRAM buffers.
  Map.BufBase = 0;

  // SWC cache partitions: split the 16 CAM entries evenly among cached
  // globals; lines live in Local Memory above the stacks.
  std::vector<const ir::Global *> Cached;
  for (const auto &G : M.globals())
    if (G->Cached)
      Cached.push_back(G.get());
  if (!Cached.empty()) {
    unsigned PerGlobal = 16 / static_cast<unsigned>(Cached.size());
    assert(PerGlobal >= 1 && "too many cached globals for the CAM");
    unsigned CamNext = 0;
    unsigned LmNext = Map.LmCacheBase;
    for (const ir::Global *G : Cached) {
      CacheCfg C;
      C.G = G;
      C.CamBase = CamNext;
      C.CamEntries = PerGlobal;
      C.LineWords = MemoryMap::elemWords(G);
      C.LmBase = LmNext;
      C.VersionAddr = Map.VersionBase +
                      static_cast<uint32_t>(Map.Caches.size()) * 4;
      C.CheckInterval = std::max(1u, G->CacheCheckInterval);
      CamNext += PerGlobal;
      LmNext += PerGlobal * C.LineWords;
      assert(LmNext <= 640 && "Local Memory cache overflow");
      Map.Caches.push_back(C);
    }
  }

  // Scratch-promoted globals live after the version words.
  uint32_t ScratchTop = Map.VersionBase +
                        static_cast<uint32_t>(Map.Caches.size() + 1) * 4;
  ScratchTop = static_cast<uint32_t>(alignTo(ScratchTop, 8));
  for (const auto &G : M.globals()) {
    if (G->Level != ir::MemLevel::Scratch)
      continue;
    Map.ScratchGlobalBase[G.get()] = ScratchTop;
    ScratchTop += static_cast<uint32_t>(
        G->count() * MemoryMap::elemWords(G.get()) * 4);
    ScratchTop = static_cast<uint32_t>(alignTo(ScratchTop, 8));
  }
  return Map;
}
