//===- rts/MemoryMap.h - runtime layout contract -------------------------------==//
//
// The runtime system fixes where everything lives; the code generator bakes
// these addresses into the ME code and the simulator's devices (Rx/Tx,
// control plane) honor the same layout.
//
// SRAM:    [globals][packet metadata pool][stack overflow area]
// Scratch: [rings][locks][cache version words]
// DRAM:    [packet buffers]
//
// A packet handle is the SRAM byte address of its metadata block:
//   word 0: buf_addr  — DRAM byte address of the packet data start
//   word 1: head_off  — signed byte offset of the current header
//   word 2: frame_len — bytes from the initial data start to the end
//   word 3+: user metadata (bit-packed, rx_port first)
//
//===----------------------------------------------------------------------===//

#ifndef SL_RTS_MEMORYMAP_H
#define SL_RTS_MEMORYMAP_H

#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <vector>

namespace sl::rts {

/// Ring indices: Rx delivers fresh handles on ring 0; Tx consumes ring 1;
/// user channel id c (>= 1) maps to ring 1 + c.
inline constexpr unsigned RxRing = 0;
inline constexpr unsigned TxRing = 1;
inline unsigned ringOfChannel(unsigned ChanId) { return 1 + ChanId; }

/// SWC per-global cache configuration (per ME; every ME gets the same
/// partitioning).
struct CacheCfg {
  const ir::Global *G = nullptr;
  unsigned CamBase = 0;    ///< First CAM entry of this global's partition.
  unsigned CamEntries = 0;
  unsigned LmBase = 0;     ///< Local Memory word where its lines start.
  unsigned LineWords = 1;  ///< Words per cached element.
  uint32_t VersionAddr = 0; ///< Scratch address of the version word.
  unsigned CheckInterval = 0;
};

struct MemoryMap {
  // --- SRAM ---------------------------------------------------------------
  std::map<const ir::Global *, uint32_t> GlobalBase; ///< SRAM byte address.
  std::map<const ir::Global *, uint32_t> ScratchGlobalBase;
  uint32_t MetaPoolBase = 0;
  unsigned MetaBlockBytes = 0; ///< 12 + user metadata words * 4.
  unsigned NumPktHandles = 0;  ///< Metadata pool entries.
  uint32_t StackSramBase = 0;  ///< Per-thread SRAM stack overflow region.
  unsigned StackSramBytesPerThread = 4096;

  // --- Scratch -------------------------------------------------------------
  unsigned NumRings = 0;
  uint32_t LockBase = 0;    ///< NumLocks words.
  uint32_t VersionBase = 0; ///< One word per cached global.

  // --- DRAM ---------------------------------------------------------------
  uint32_t BufBase = 0;
  unsigned BufBytes = 2048; ///< Per-packet buffer.
  unsigned Headroom = 64;   ///< Bytes reserved in front for encap.

  // --- Per-ME Local Memory ------------------------------------------------
  unsigned LmStackWordsPerThread = 48; ///< Sec. 5.4: 48 words per thread.
  unsigned LmCacheBase = 384;          ///< 8 threads * 48 words.

  std::vector<CacheCfg> Caches;

  /// Words one element of \p G occupies in SRAM (element-per-word layout,
  /// so index arithmetic stays cheap on the ME).
  static unsigned elemWords(const ir::Global *G) {
    return (G->elemBits() + 31) / 32;
  }

  unsigned userMetaWords() const { return (UserMetaBits + 31) / 32; }
  unsigned UserMetaBits = 16;

  /// Metadata word indices.
  static constexpr unsigned MetaWordBuf = 0;
  static constexpr unsigned MetaWordHead = 1;
  static constexpr unsigned MetaWordLen = 2;
  static constexpr unsigned MetaWordUser = 3;

  const CacheCfg *cacheFor(const ir::Global *G) const {
    for (const CacheCfg &C : Caches)
      if (C.G == G)
        return &C;
    return nullptr;
  }
};

/// Computes the layout for \p M. Cached globals (SWC annotations) get CAM
/// partitions and Local Memory lines.
MemoryMap buildMemoryMap(const ir::Module &M, unsigned NumPktHandles = 512);

} // namespace sl::rts

#endif // SL_RTS_MEMORYMAP_H
