//===- opt/Mem2Reg.cpp - SSA construction -------------------------------------==//
//
// Standard alloca promotion: phi insertion at iterated dominance frontiers
// followed by a dominator-tree renaming walk. Every Baker local qualifies
// (the language has no address-taken variables).
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Dominators.h"

#include <map>
#include <set>
#include <vector>

using namespace sl;
using namespace sl::ir;

namespace {

struct AllocaInfo {
  Instr *Slot = nullptr;
  std::set<BasicBlock *> DefBlocks;
  std::vector<Instr *> Loads, Stores;
};

} // namespace

bool sl::opt::mem2reg(Function &F) {
  // Collect promotable allocas. All uses must be Load/Store (true by
  // construction, but verify defensively).
  std::vector<AllocaInfo> Allocas;
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instrs()) {
      if (I->op() != Op::Alloca)
        continue;
      AllocaInfo Info;
      Info.Slot = I.get();
      bool Promotable = true;
      for (Instr *U : I->users()) {
        if (U->op() == Op::Load) {
          Info.Loads.push_back(U);
        } else if (U->op() == Op::Store && U->operand(0) == I.get()) {
          Info.Stores.push_back(U);
          Info.DefBlocks.insert(U->parent());
        } else {
          Promotable = false;
          break;
        }
      }
      if (Promotable)
        Allocas.push_back(std::move(Info));
    }
  }
  if (Allocas.empty())
    return false;

  DomTree DT(F);

  // Phase 1: insert (empty) phis at iterated dominance frontiers.
  // PhiFor[(block, allocaIdx)] -> phi instruction.
  std::map<std::pair<BasicBlock *, size_t>, Instr *> PhiFor;
  for (size_t A = 0; A != Allocas.size(); ++A) {
    std::vector<BasicBlock *> Work(Allocas[A].DefBlocks.begin(),
                                   Allocas[A].DefBlocks.end());
    std::set<BasicBlock *> HasPhi;
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!DT.reachable(BB))
        continue;
      for (BasicBlock *FB : DT.frontier(BB)) {
        if (!HasPhi.insert(FB).second)
          continue;
        auto *Phi = new Instr(Op::Phi, Allocas[A].Slot->AllocTy);
        Phi->setName(Allocas[A].Slot->name());
        FB->insertAt(0, std::unique_ptr<Instr>(Phi));
        PhiFor[{FB, A}] = Phi;
        if (!Allocas[A].DefBlocks.count(FB))
          Work.push_back(FB);
      }
    }
  }

  // Phase 2: renaming walk over the dominator tree.
  std::map<BasicBlock *, std::vector<BasicBlock *>> DomKids;
  for (BasicBlock *BB : DT.rpo())
    if (BasicBlock *Parent = DT.idom(BB))
      DomKids[Parent].push_back(BB);

  std::map<Instr *, size_t> SlotIndex;
  for (size_t A = 0; A != Allocas.size(); ++A)
    SlotIndex[Allocas[A].Slot] = A;

  // Current SSA value per alloca, maintained along the walk.
  std::vector<Value *> Cur(Allocas.size(), nullptr);
  for (size_t A = 0; A != Allocas.size(); ++A)
    Cur[A] = F.undef(Allocas[A].Slot->AllocTy);

  struct WalkFrame {
    BasicBlock *BB;
    std::vector<Value *> Saved;
    bool Visited = false;
  };
  std::vector<WalkFrame> Stack;
  Stack.push_back({F.entry(), {}, false});

  std::vector<Instr *> ToErase;

  while (!Stack.empty()) {
    WalkFrame &Frame = Stack.back();
    if (Frame.Visited) {
      Cur = std::move(Frame.Saved);
      Stack.pop_back();
      continue;
    }
    Frame.Visited = true;
    Frame.Saved = Cur;
    BasicBlock *BB = Frame.BB;

    for (size_t I = 0; I != BB->size(); ++I) {
      Instr *In = BB->instr(I);
      if (In->op() == Op::Phi) {
        // Phis we inserted define a new current value.
        for (size_t A = 0; A != Allocas.size(); ++A) {
          auto It = PhiFor.find({BB, A});
          if (It != PhiFor.end() && It->second == In) {
            Cur[A] = In;
            break;
          }
        }
        continue;
      }
      if (In->op() == Op::Load) {
        auto *Slot = cast<Instr>(In->operand(0));
        auto SIt = SlotIndex.find(Slot);
        if (SIt == SlotIndex.end())
          continue;
        In->replaceAllUsesWith(Cur[SIt->second]);
        In->dropOperands();
        ToErase.push_back(In);
        continue;
      }
      if (In->op() == Op::Store) {
        auto *Slot = cast<Instr>(In->operand(0));
        auto SIt = SlotIndex.find(Slot);
        if (SIt == SlotIndex.end())
          continue;
        Cur[SIt->second] = In->operand(1);
        In->dropOperands();
        ToErase.push_back(In);
        continue;
      }
    }

    // Fill phi operands in successors for the edge BB -> S.
    for (BasicBlock *S : BB->successors()) {
      for (size_t A = 0; A != Allocas.size(); ++A) {
        auto It = PhiFor.find({S, A});
        if (It != PhiFor.end())
          It->second->addPhiIncoming(Cur[A], BB);
      }
    }

    for (BasicBlock *Kid : DomKids[BB])
      Stack.push_back({Kid, {}, false});
  }

  for (Instr *I : ToErase)
    I->parent()->erase(I);
  for (AllocaInfo &Info : Allocas) {
    assert(!Info.Slot->hasUses() && "alloca still used after promotion");
    Info.Slot->parent()->erase(Info.Slot);
  }

  // Phis that ended up with no incoming entries (unreachable blocks kept
  // around) would be malformed; the CFG pass removes those blocks first,
  // so just assert here.
  return true;
}
