//===- opt/SimplifyCFG.cpp ---------------------------------------------------==//

#include "opt/Passes.h"

#include <algorithm>
#include <set>

using namespace sl;
using namespace sl::ir;

void sl::opt::replaceAndErase(Instr *I, Value *Replacement) {
  if (Replacement)
    I->replaceAllUsesWith(Replacement);
  I->dropOperands();
  I->parent()->erase(I);
}

namespace {

/// Removes incoming phi entries in \p BB for predecessor \p Pred.
void removePhiEdge(BasicBlock *BB, BasicBlock *Pred) {
  for (size_t I = 0; I != BB->size(); ++I) {
    Instr *In = BB->instr(I);
    if (In->op() != Op::Phi)
      break;
    for (unsigned K = 0; K != In->numOperands(); ++K) {
      if (In->phiBlocks()[K] == Pred) {
        In->removePhiIncoming(K);
        break;
      }
    }
  }
}

bool removeUnreachable(Function &F) {
  std::set<BasicBlock *> Reach;
  std::vector<BasicBlock *> Work{F.entry()};
  Reach.insert(F.entry());
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *S : BB->successors())
      if (Reach.insert(S).second)
        Work.push_back(S);
  }
  if (Reach.size() == F.numBlocks())
    return false;

  std::vector<BasicBlock *> Dead;
  for (const auto &BB : F.blocks())
    if (!Reach.count(BB.get()))
      Dead.push_back(BB.get());

  // Detach phi edges from dead predecessors, then break def-use links of
  // dead instructions so destruction order does not matter.
  for (BasicBlock *D : Dead)
    for (BasicBlock *S : D->successors())
      if (Reach.count(S))
        removePhiEdge(S, D);
  for (BasicBlock *D : Dead)
    for (size_t I = 0; I != D->size(); ++I)
      D->instr(I)->dropOperands();
  for (BasicBlock *D : Dead) {
    while (!D->empty())
      D->erase(D->size() - 1);
    F.eraseBlock(D);
  }
  return true;
}

bool foldConstBranches(Function &F) {
  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    Instr *T = BB->terminator();
    if (!T || T->op() != Op::CondBr)
      continue;
    BasicBlock *TrueBB = T->succ(0);
    BasicBlock *FalseBB = T->succ(1);
    const auto *C = dyn_cast<ConstInt>(T->operand(0));
    if (!C && TrueBB != FalseBB)
      continue;
    BasicBlock *Taken = C ? (C->value() ? TrueBB : FalseBB) : TrueBB;
    BasicBlock *NotTaken = Taken == TrueBB ? FalseBB : TrueBB;
    // When both arms targeted the same block, the phi there carried two
    // entries for this predecessor; exactly one must go either way.
    removePhiEdge(NotTaken, BB.get());
    T->dropOperands();
    T->succs().clear();
    T->addSucc(Taken);
    // Rewrite opcode by replacing the instruction in place.
    size_t Pos = BB->indexOf(T);
    auto Old = BB->detach(Pos);
    auto *NewBr = new Instr(Op::Br, Type::voidTy());
    NewBr->addSucc(Taken);
    BB->insertAt(Pos, std::unique_ptr<Instr>(NewBr));
    Changed = true;
  }
  return Changed;
}

bool simplifyPhis(Function &F) {
  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    for (size_t I = 0; I < BB->size();) {
      Instr *In = BB->instr(I);
      if (In->op() != Op::Phi) {
        ++I;
        continue;
      }
      Value *Same = nullptr;
      bool Uniform = true;
      for (unsigned K = 0; K != In->numOperands(); ++K) {
        Value *V = In->operand(K);
        if (V == In)
          continue; // Self-reference.
        if (Same && V != Same) {
          Uniform = false;
          break;
        }
        Same = V;
      }
      if (Uniform && Same) {
        opt::replaceAndErase(In, Same);
        Changed = true;
        continue;
      }
      ++I;
    }
  }
  return Changed;
}

bool mergeBlocks(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    auto Preds = F.predecessors();
    for (const auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      Instr *T = BB->terminator();
      if (!T || T->op() != Op::Br)
        continue;
      BasicBlock *Succ = T->succ(0);
      if (Succ == BB || Succ == F.entry())
        continue;
      if (Preds[Succ].size() != 1)
        continue;
      // Phis in Succ have exactly one incoming; fold them first.
      while (!Succ->empty() && Succ->instr(0)->op() == Op::Phi) {
        Instr *Phi = Succ->instr(0);
        assert(Phi->numOperands() == 1 && "single-pred block phi arity");
        opt::replaceAndErase(Phi, Phi->operand(0));
      }
      // Remove BB's branch, splice Succ's instructions into BB.
      T->dropOperands();
      BB->erase(T);
      while (!Succ->empty()) {
        auto I = Succ->detach(0);
        BB->append(std::move(I));
      }
      // Phis in the successors of the merged block must now name BB.
      for (BasicBlock *S2 : BB->successors()) {
        for (size_t K = 0; K != S2->size(); ++K) {
          Instr *Phi = S2->instr(K);
          if (Phi->op() != Op::Phi)
            break;
          for (auto &PB : Phi->phiBlocks())
            if (PB == Succ)
              PB = BB;
        }
      }
      F.eraseBlock(Succ);
      Changed = LocalChange = true;
      break; // Predecessor map is stale; recompute.
    }
  }
  return Changed;
}

} // namespace

bool sl::opt::simplifyCfg(Function &F) {
  bool Changed = false;
  Changed |= foldConstBranches(F);
  Changed |= removeUnreachable(F);
  Changed |= simplifyPhis(F);
  Changed |= mergeBlocks(F);
  return Changed;
}
