//===- opt/Pipeline.cpp - -O1 / -O2 drivers ------------------------------------==//

#include "obs/Remark.h"
#include "opt/Passes.h"

using namespace sl;
using namespace sl::ir;

unsigned sl::opt::runScalarPipeline(Function &F, obs::RemarkEmitter *Rem,
                                    unsigned MaxRounds) {
  // Iterate the pass sequence until nothing changes (bounded in practice;
  // the cap is a safety net against pass ping-pong).
  unsigned Round = 0;
  for (; Round != MaxRounds; ++Round) {
    bool Changed = false;
    Changed |= simplifyCfg(F);
    Changed |= mem2reg(F);
    Changed |= constantFold(F);
    Changed |= localCSE(F);
    Changed |= deadCodeElim(F);
    Changed |= simplifyCfg(F);
    if (!Changed)
      return Round + 1;
  }
  // The cap cut the iteration off while passes were still trading changes.
  // Surface it: silent exit here hides pass ping-pong from everyone.
  if (Rem)
    Rem->remark("pipeline", obs::RemarkKind::Note, "fixed-point-cap-hit",
                F.name())
        .arg("rounds", MaxRounds);
  return Round;
}

unsigned sl::opt::runO1(Module &M, obs::RemarkEmitter *Rem) {
  unsigned MaxRounds = 0;
  for (const auto &F : M.functions()) {
    unsigned R = runScalarPipeline(*F, Rem);
    MaxRounds = R > MaxRounds ? R : MaxRounds;
  }
  return MaxRounds;
}

unsigned sl::opt::runO2(Module &M, obs::RemarkEmitter *Rem) {
  inlineCalls(M);
  return runO1(M, Rem);
}
