//===- opt/Pipeline.cpp - -O1 / -O2 drivers ------------------------------------==//

#include "opt/Passes.h"

using namespace sl;
using namespace sl::ir;

void sl::opt::runScalarPipeline(Function &F) {
  // Iterate the pass sequence until nothing changes (bounded in practice;
  // the cap is a safety net against pass ping-pong).
  for (unsigned Round = 0; Round != 8; ++Round) {
    bool Changed = false;
    Changed |= simplifyCfg(F);
    Changed |= mem2reg(F);
    Changed |= constantFold(F);
    Changed |= localCSE(F);
    Changed |= deadCodeElim(F);
    Changed |= simplifyCfg(F);
    if (!Changed)
      return;
  }
}

void sl::opt::runO1(Module &M) {
  for (const auto &F : M.functions())
    runScalarPipeline(*F);
}

void sl::opt::runO2(Module &M) {
  inlineCalls(M);
  runO1(M);
}
