//===- opt/ConstFold.cpp - constant folding and algebraic identities ----------==//

#include "opt/Passes.h"

#include <cassert>

using namespace sl;
using namespace sl::ir;

namespace {

uint64_t maskTo(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return V;
  return V & ((uint64_t(1) << Bits) - 1);
}

int64_t signExtend(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t Sign = uint64_t(1) << (Bits - 1);
  return static_cast<int64_t>(((V & ((Sign << 1) - 1)) ^ Sign) - Sign);
}

/// Evaluates a binary opcode on constants. Returns false for trapping
/// cases (division by zero) which must not fold.
bool evalBinary(Op O, uint64_t A, uint64_t B, unsigned Bits, uint64_t &Out) {
  switch (O) {
  case Op::Add:
    Out = maskTo(A + B, Bits);
    return true;
  case Op::Sub:
    Out = maskTo(A - B, Bits);
    return true;
  case Op::Mul:
    Out = maskTo(A * B, Bits);
    return true;
  case Op::UDiv:
    if (!B)
      return false;
    Out = maskTo(A / B, Bits);
    return true;
  case Op::SDiv:
    if (!B)
      return false;
    Out = maskTo(static_cast<uint64_t>(signExtend(A, Bits) /
                                       signExtend(B, Bits)),
                 Bits);
    return true;
  case Op::URem:
    if (!B)
      return false;
    Out = maskTo(A % B, Bits);
    return true;
  case Op::SRem:
    if (!B)
      return false;
    Out = maskTo(static_cast<uint64_t>(signExtend(A, Bits) %
                                       signExtend(B, Bits)),
                 Bits);
    return true;
  case Op::And:
    Out = A & B;
    return true;
  case Op::Or:
    Out = A | B;
    return true;
  case Op::Xor:
    Out = maskTo(A ^ B, Bits);
    return true;
  case Op::Shl:
    Out = maskTo(A << (B & 63), Bits);
    return true;
  case Op::LShr:
    Out = A >> (B & 63);
    return true;
  case Op::AShr:
    Out = maskTo(static_cast<uint64_t>(signExtend(A, Bits) >> (B & 63)),
                 Bits);
    return true;
  case Op::CmpEq:
    Out = A == B;
    return true;
  case Op::CmpNe:
    Out = A != B;
    return true;
  case Op::CmpULt:
    Out = A < B;
    return true;
  case Op::CmpULe:
    Out = A <= B;
    return true;
  case Op::CmpUGt:
    Out = A > B;
    return true;
  case Op::CmpUGe:
    Out = A >= B;
    return true;
  case Op::CmpSLt:
    Out = signExtend(A, Bits) < signExtend(B, Bits);
    return true;
  case Op::CmpSLe:
    Out = signExtend(A, Bits) <= signExtend(B, Bits);
    return true;
  case Op::CmpSGt:
    Out = signExtend(A, Bits) > signExtend(B, Bits);
    return true;
  case Op::CmpSGe:
    Out = signExtend(A, Bits) >= signExtend(B, Bits);
    return true;
  default:
    return false;
  }
}

/// Algebraic identities with one constant operand. Returns the value the
/// instruction simplifies to, or null.
Value *simplifyIdentity(Instr *I, Function &F) {
  if (!isBinaryOp(I->op()) || isCompareOp(I->op()))
    return nullptr;
  Value *L = I->operand(0);
  Value *R = I->operand(1);
  const auto *RC = dyn_cast<ConstInt>(R);
  const auto *LC = dyn_cast<ConstInt>(L);
  unsigned Bits = I->type().bits();

  switch (I->op()) {
  case Op::Add:
    if (RC && RC->value() == 0)
      return L;
    if (LC && LC->value() == 0)
      return R;
    return nullptr;
  case Op::Sub:
    if (RC && RC->value() == 0)
      return L;
    if (L == R)
      return F.constInt(I->type(), 0);
    return nullptr;
  case Op::Mul:
    if (RC && RC->value() == 1)
      return L;
    if (LC && LC->value() == 1)
      return R;
    if ((RC && RC->value() == 0) || (LC && LC->value() == 0))
      return F.constInt(I->type(), 0);
    return nullptr;
  case Op::And:
    if (RC && RC->value() == maskTo(~uint64_t(0), Bits))
      return L;
    if ((RC && RC->value() == 0) || (LC && LC->value() == 0))
      return F.constInt(I->type(), 0);
    if (L == R)
      return L;
    return nullptr;
  case Op::Or:
    if (RC && RC->value() == 0)
      return L;
    if (LC && LC->value() == 0)
      return R;
    if (L == R)
      return L;
    return nullptr;
  case Op::Xor:
    if (RC && RC->value() == 0)
      return L;
    if (L == R)
      return F.constInt(I->type(), 0);
    return nullptr;
  case Op::Shl:
  case Op::LShr:
  case Op::AShr:
    if (RC && RC->value() == 0)
      return L;
    return nullptr;
  case Op::UDiv:
  case Op::SDiv:
    if (RC && RC->value() == 1)
      return L;
    return nullptr;
  default:
    return nullptr;
  }
}

} // namespace

bool sl::opt::constantFold(Function &F) {
  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    for (size_t Idx = 0; Idx < BB->size();) {
      Instr *I = BB->instr(Idx);
      Value *Repl = nullptr;

      if (isBinaryOp(I->op())) {
        const auto *A = dyn_cast<ConstInt>(I->operand(0));
        const auto *B = dyn_cast<ConstInt>(I->operand(1));
        if (A && B) {
          uint64_t Out;
          unsigned Bits = I->operand(0)->type().bits();
          if (evalBinary(I->op(), A->value(), B->value(), Bits, Out))
            Repl = F.constInt(I->type(), Out);
        }
        if (!Repl)
          Repl = simplifyIdentity(I, F);
      } else if (I->op() == Op::ZExt || I->op() == Op::Trunc) {
        if (const auto *C = dyn_cast<ConstInt>(I->operand(0)))
          Repl = F.constInt(I->type(), maskTo(C->value(), I->type().bits()));
      } else if (I->op() == Op::SExt) {
        if (const auto *C = dyn_cast<ConstInt>(I->operand(0))) {
          unsigned SrcBits = I->operand(0)->type().bits();
          Repl = F.constInt(
              I->type(),
              maskTo(static_cast<uint64_t>(signExtend(C->value(), SrcBits)),
                     I->type().bits()));
        }
      } else if (I->op() == Op::Select) {
        if (const auto *C = dyn_cast<ConstInt>(I->operand(0)))
          Repl = C->value() ? I->operand(1) : I->operand(2);
        else if (I->operand(1) == I->operand(2))
          Repl = I->operand(1);
      }

      if (Repl && Repl != I) {
        replaceAndErase(I, Repl);
        Changed = true;
        continue; // Same index now holds the next instruction.
      }
      ++Idx;
    }
  }
  return Changed;
}
