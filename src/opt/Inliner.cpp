//===- opt/Inliner.cpp - aggressive call inlining -----------------------------==//
//
// -O2 "inlines base packet handling routines": every call to a non-PPF
// helper under the size limit is expanded at the call site. Baker has no
// recursion, so iterating to a fixed point terminates. Aggressive inlining
// is also a prerequisite of the stack-layout optimization (Sec. 5.4):
// merged frames eliminate call overhead slots and let the whole stack fit
// in Local Memory.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Clone.h"

#include <cassert>
#include <vector>

using namespace sl;
using namespace sl::ir;

namespace {

unsigned InlineCounter = 0;

/// Expands one call site. Returns true on success.
bool inlineOneCall(Function &Caller, Instr *Call) {
  Function *Callee = Call->Callee;
  BasicBlock *CallBB = Call->parent();
  size_t CallPos = CallBB->indexOf(Call);
  std::string Suffix = ".inl" + std::to_string(InlineCounter++);

  // Split the call block: instructions after the call move to a new block.
  BasicBlock *Cont = Caller.addBlock(CallBB->name() + ".cont" + Suffix);
  while (CallBB->size() > CallPos + 1) {
    auto I = CallBB->detach(CallPos + 1);
    Cont->append(std::move(I));
  }
  // Successor phis must now refer to Cont (the block holding the old
  // terminator).
  for (BasicBlock *S : Cont->successors()) {
    for (size_t K = 0; K != S->size(); ++K) {
      Instr *Phi = S->instr(K);
      if (Phi->op() != Op::Phi)
        break;
      for (auto &PB : Phi->phiBlocks())
        if (PB == CallBB)
          PB = Cont;
    }
  }

  // Clone the callee body.
  CloneMap Map;
  for (unsigned I = 0; I != Callee->numArgs(); ++I)
    Map.Values[Callee->arg(I)] = Call->operand(I);
  BasicBlock *InlEntry = cloneBody(*Callee, Caller, Map, Suffix);

  // Rewrite cloned rets into branches to Cont, collecting return values.
  std::vector<std::pair<BasicBlock *, Value *>> Rets;
  for (const auto &BB : Callee->blocks()) {
    BasicBlock *NewBB = Map.Blocks.at(BB.get());
    Instr *T = NewBB->terminator();
    if (!T || T->op() != Op::Ret)
      continue;
    Value *RetVal = T->numOperands() ? T->operand(0) : nullptr;
    T->dropOperands();
    NewBB->erase(T);
    auto *Br = new Instr(Op::Br, Type::voidTy());
    Br->addSucc(Cont);
    NewBB->append(std::unique_ptr<Instr>(Br));
    Rets.push_back({NewBB, RetVal});
  }
  assert(!Rets.empty() && "callee had no return");

  // Replace the call's value with the merged return value.
  if (!Call->type().isVoid()) {
    if (Rets.size() == 1) {
      Call->replaceAllUsesWith(Rets[0].second);
    } else {
      auto *Phi = new Instr(Op::Phi, Call->type());
      Cont->insertAt(0, std::unique_ptr<Instr>(Phi));
      for (auto &[BB, V] : Rets)
        Phi->addPhiIncoming(V ? V : Caller.undef(Call->type()), BB);
      Call->replaceAllUsesWith(Phi);
    }
  }

  // Replace the call instruction with a branch into the inlined entry.
  Call->dropOperands();
  CallBB->erase(Call);
  auto *Enter = new Instr(Op::Br, Type::voidTy());
  Enter->addSucc(InlEntry);
  CallBB->append(std::unique_ptr<Instr>(Enter));
  return true;
}

} // namespace

void sl::opt::inlineCalls(Module &M, unsigned CalleeSizeLimit) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &F : M.functions()) {
      for (size_t B = 0; B != F->numBlocks() && !Changed; ++B) {
        BasicBlock *BB = F->block(B);
        for (size_t I = 0; I != BB->size(); ++I) {
          Instr *In = BB->instr(I);
          if (In->op() != Op::Call)
            continue;
          Function *Callee = In->Callee;
          // PPF-to-PPF calls exist only after aggregation collapsed a
          // channel; they are always inlined so the aggregate becomes one
          // body.
          if (Callee == F.get())
            continue;
          if (Callee->instrCount() > CalleeSizeLimit)
            continue;
          inlineOneCall(*F, In);
          Changed = true;
          break;
        }
      }
      if (Changed)
        break;
    }
  }

  // Drop helper functions that no longer have any callers.
  bool Removed = true;
  while (Removed) {
    Removed = false;
    for (const auto &F : M.functions()) {
      if (F->isPpf())
        continue;
      bool Called = false;
      for (const auto &Other : M.functions())
        for (const auto &BB : Other->blocks())
          for (const auto &In : BB->instrs())
            if (In->op() == Op::Call && In->Callee == F.get())
              Called = true;
      if (!Called) {
        M.eraseFunction(F.get());
        Removed = true;
        break;
      }
    }
  }
}
