//===- opt/DCE.cpp - dead code elimination -------------------------------------==//

#include "opt/Passes.h"

using namespace sl;
using namespace sl::ir;

namespace {

/// Instructions that may be deleted when their result is unused.
bool isRemovableWhenUnused(const Instr *I) {
  if (isPureOp(I->op()))
    return true;
  switch (I->op()) {
  case Op::Load:
  case Op::GLoad:
  case Op::PktLoad:
  case Op::MetaLoad:
  case Op::PktLoadWide:
  case Op::PktLength:
  case Op::Alloca:
    return true;
  default:
    return false;
  }
}

} // namespace

bool sl::opt::deadCodeElim(Function &F) {
  bool Changed = false;
  bool Local = true;
  while (Local) {
    Local = false;
    for (const auto &BB : F.blocks()) {
      for (size_t Idx = BB->size(); Idx-- > 0;) {
        Instr *I = BB->instr(Idx);
        if (I->isTerm())
          continue;
        if (!I->hasUses() && isRemovableWhenUnused(I)) {
          I->dropOperands();
          BB->erase(Idx);
          Changed = Local = true;
          continue;
        }
        // A slot that is only ever stored to is dead: delete the stores,
        // then the alloca itself falls out on the next sweep.
        if (I->op() == Op::Alloca) {
          bool OnlyStores = true;
          for (Instr *U : I->users())
            OnlyStores &= (U->op() == Op::Store && U->operand(0) == I);
          if (OnlyStores && I->hasUses()) {
            std::vector<Instr *> Stores(I->users().begin(), I->users().end());
            for (Instr *S : Stores) {
              S->dropOperands();
              S->parent()->erase(S);
            }
            Changed = Local = true;
          }
        }
      }
    }
  }
  return Changed;
}
