//===- opt/Passes.h - scalar optimization pipeline --------------------------==//
//
// The "traditional scalar optimizations" of the paper's -O1/-O2 ladder:
// CFG simplification, SSA construction (mem2reg), SSA-based constant
// folding, local redundancy elimination, dead code elimination, and the
// aggressive inliner enabled at -O2.
//
//===----------------------------------------------------------------------===//

#ifndef SL_OPT_PASSES_H
#define SL_OPT_PASSES_H

#include "ir/Module.h"

namespace sl::obs {
class RemarkEmitter;
}

namespace sl::opt {

/// Removes unreachable blocks, folds constant conditional branches, merges
/// straight-line block chains, and simplifies trivial phis.
/// Returns true if anything changed.
bool simplifyCfg(ir::Function &F);

/// Promotes allocas to SSA registers with phi insertion at iterated
/// dominance frontiers. Returns true if anything changed.
bool mem2reg(ir::Function &F);

/// Folds constant expressions and applies algebraic identities.
bool constantFold(ir::Function &F);

/// Block-local common subexpression elimination, including redundant
/// packet/metadata/global loads (with conservative invalidation at stores,
/// calls, encap/decap and lock boundaries).
bool localCSE(ir::Function &F);

/// Deletes unused side-effect-free instructions.
bool deadCodeElim(ir::Function &F);

/// Inlines calls to non-PPF helper functions whose size does not exceed
/// \p CalleeSizeLimit instructions. Runs to a fixed point (Baker has no
/// recursion). Fully-inlined helpers that became unreferenced are removed.
void inlineCalls(ir::Module &M, unsigned CalleeSizeLimit = 2048);

/// Runs the -O1 scalar pipeline on one function to a fixed point. Returns
/// the number of rounds executed. When the \p MaxRounds safety cap cuts
/// the iteration off before a fixed point (pass ping-pong), a "pipeline"
/// note remark with reason "fixed-point-cap-hit" is emitted into \p Rem
/// (when attached) instead of exiting silently.
unsigned runScalarPipeline(ir::Function &F,
                           obs::RemarkEmitter *Rem = nullptr,
                           unsigned MaxRounds = 8);

/// -O1 over the whole module. Returns the maximum fixed-point round count
/// any function needed.
unsigned runO1(ir::Module &M, obs::RemarkEmitter *Rem = nullptr);

/// -O2: aggressive inlining, then the scalar pipeline.
unsigned runO2(ir::Module &M, obs::RemarkEmitter *Rem = nullptr);

/// Shared helper: RAUW-and-erase an instruction that was replaced.
void replaceAndErase(ir::Instr *I, ir::Value *Replacement);

} // namespace sl::opt

#endif // SL_OPT_PASSES_H
