//===- opt/LocalCSE.cpp - block-local redundancy elimination ------------------==//
//
// Implements the redundancy-elimination half of the paper's -O1 scalar
// pipeline: repeated pure computations and repeated packet/metadata/global
// loads within a block collapse to the first occurrence. Loads are
// invalidated conservatively at stores, calls, locks, channel puts, and at
// encapsulation boundaries (decap/encap change what header-relative
// offsets mean).
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include <map>
#include <tuple>
#include <vector>

using namespace sl;
using namespace sl::ir;

namespace {

/// Structural key of an instruction: opcode + type + operands + immediates.
using Key = std::tuple<Op, std::string, std::vector<const Value *>, unsigned,
                       unsigned, unsigned, unsigned, const void *>;

Key keyOf(const Instr *I) {
  std::vector<const Value *> Ops;
  for (unsigned K = 0; K != I->numOperands(); ++K)
    Ops.push_back(I->operand(K));
  return Key(I->op(), I->type().str(), std::move(Ops), I->BitOff, I->BitWidth,
             I->ByteOff, I->Words,
             static_cast<const void *>(I->GlobalRef));
}

bool isCseableLoad(Op O) {
  switch (O) {
  case Op::PktLoad:
  case Op::MetaLoad:
  case Op::GLoad:
  case Op::PktLoadWide:
  case Op::PktLength:
    return true;
  default:
    return false;
  }
}

/// Does \p O invalidate previously seen loads?
bool killsLoads(Op O) {
  switch (O) {
  case Op::PktStore:
  case Op::MetaStore:
  case Op::GStore:
  case Op::PktStoreWide:
  case Op::Call:
  case Op::LockAcquire:
  case Op::LockRelease:
  case Op::ChannelPut:
  case Op::PktDecap:
  case Op::PktEncap:
  case Op::PktCopy:
  case Op::PktDrop:
  case Op::Store: // Alloca stores do not alias, but stay conservative.
    return true;
  default:
    return false;
  }
}

} // namespace

bool sl::opt::localCSE(Function &F) {
  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    std::map<Key, Instr *> Pure;
    std::map<Key, Instr *> Loads;
    for (size_t Idx = 0; Idx < BB->size();) {
      Instr *I = BB->instr(Idx);

      if (killsLoads(I->op()))
        Loads.clear();

      bool IsPure = isPureOp(I->op()) && I->op() != Op::Phi;
      bool IsLoad = isCseableLoad(I->op());
      if (!IsPure && !IsLoad) {
        ++Idx;
        continue;
      }

      auto &Table = IsPure ? Pure : Loads;
      Key K = keyOf(I);
      auto It = Table.find(K);
      if (It != Table.end()) {
        replaceAndErase(I, It->second);
        Changed = true;
        continue;
      }
      Table.emplace(std::move(K), I);
      ++Idx;
    }
  }
  return Changed;
}
