//===- ir/IRBuilder.h - instruction creation helpers -----------------------==//

#ifndef SL_IR_IRBUILDER_H
#define SL_IR_IRBUILDER_H

#include "ir/Function.h"
#include "ir/Module.h"

#include <memory>
#include <string>

namespace sl::ir {

/// Appends instructions to a basic block. All create* methods return the
/// new instruction after appending it at the current insertion block.
class IRBuilder {
public:
  explicit IRBuilder(Function *F) : F(F) {}

  Function *function() const { return F; }
  BasicBlock *insertBlock() const { return BB; }
  void setInsertBlock(BasicBlock *Block) { BB = Block; }

  /// True when the current block already has a terminator (further
  /// straight-line emission would be dead).
  bool terminated() const { return BB && BB->terminator() != nullptr; }

  ConstInt *constInt(Type Ty, uint64_t Val) { return F->constInt(Ty, Val); }
  ConstInt *i32(uint64_t Val) { return constInt(Type::intTy(32), Val); }
  ConstInt *i1(bool Val) { return constInt(Type::boolTy(), Val ? 1 : 0); }

  Instr *createBin(Op O, Value *L, Value *R) {
    assert(isBinaryOp(O) && "not a binary opcode");
    assert(L->type() == R->type() && "binary operand type mismatch");
    Type Ty = isCompareOp(O) ? Type::boolTy() : L->type();
    Instr *I = make(O, Ty);
    I->addOperand(L);
    I->addOperand(R);
    return append(I);
  }

  Instr *createZExt(Value *V, Type To) { return createCast(Op::ZExt, V, To); }
  Instr *createSExt(Value *V, Type To) { return createCast(Op::SExt, V, To); }
  Instr *createTrunc(Value *V, Type To) {
    return createCast(Op::Trunc, V, To);
  }

  Instr *createSelect(Value *C, Value *T, Value *E) {
    assert(C->type().isBool() && "select condition must be i1");
    assert(T->type() == E->type() && "select arm type mismatch");
    Instr *I = make(Op::Select, T->type());
    I->addOperand(C);
    I->addOperand(T);
    I->addOperand(E);
    return append(I);
  }

  Instr *createAlloca(Type ElemTy, const std::string &Name) {
    Instr *I = make(Op::Alloca, Type::intTy(32));
    I->AllocTy = ElemTy;
    I->setName(Name);
    return append(I);
  }

  Instr *createLoad(Instr *Slot) {
    assert(Slot->op() == Op::Alloca && "load from a non-alloca");
    Instr *I = make(Op::Load, Slot->AllocTy);
    I->addOperand(Slot);
    return append(I);
  }

  Instr *createStore(Instr *Slot, Value *V) {
    assert(Slot->op() == Op::Alloca && "store to a non-alloca");
    Instr *I = make(Op::Store, Type::voidTy());
    I->addOperand(Slot);
    I->addOperand(V);
    return append(I);
  }

  Instr *createGLoad(Global *G, Value *Index) {
    Instr *I = make(Op::GLoad, Type::intTy(G->elemBits()));
    I->GlobalRef = G;
    I->addOperand(Index);
    return append(I);
  }

  Instr *createGStore(Global *G, Value *Index, Value *V) {
    Instr *I = make(Op::GStore, Type::voidTy());
    I->GlobalRef = G;
    I->addOperand(Index);
    I->addOperand(V);
    return append(I);
  }

  Instr *createBr(BasicBlock *Target) {
    Instr *I = make(Op::Br, Type::voidTy());
    I->addSucc(Target);
    return append(I);
  }

  Instr *createCondBr(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    assert(Cond->type().isBool() && "condbr condition must be i1");
    Instr *I = make(Op::CondBr, Type::voidTy());
    I->addOperand(Cond);
    I->addSucc(TrueBB);
    I->addSucc(FalseBB);
    return append(I);
  }

  Instr *createRet(Value *V) {
    Instr *I = make(Op::Ret, Type::voidTy());
    if (V)
      I->addOperand(V);
    return append(I);
  }

  Instr *createCall(Function *Callee, const std::vector<Value *> &Args) {
    Instr *I = make(Op::Call, Callee->returnType());
    I->Callee = Callee;
    for (Value *A : Args)
      I->addOperand(A);
    return append(I);
  }

  Instr *createPhi(Type Ty) { return append(make(Op::Phi, Ty)); }

  Instr *createPktLoad(Value *Handle, unsigned BitOff, unsigned BitWidth,
                       Type Ty) {
    Instr *I = make(Op::PktLoad, Ty);
    I->addOperand(Handle);
    I->BitOff = BitOff;
    I->BitWidth = BitWidth;
    return append(I);
  }

  Instr *createPktStore(Value *Handle, unsigned BitOff, unsigned BitWidth,
                        Value *V) {
    Instr *I = make(Op::PktStore, Type::voidTy());
    I->addOperand(Handle);
    I->addOperand(V);
    I->BitOff = BitOff;
    I->BitWidth = BitWidth;
    return append(I);
  }

  Instr *createMetaLoad(Value *Handle, unsigned BitOff, unsigned BitWidth,
                        Type Ty) {
    Instr *I = make(Op::MetaLoad, Ty);
    I->addOperand(Handle);
    I->BitOff = BitOff;
    I->BitWidth = BitWidth;
    return append(I);
  }

  Instr *createMetaStore(Value *Handle, unsigned BitOff, unsigned BitWidth,
                         Value *V) {
    Instr *I = make(Op::MetaStore, Type::voidTy());
    I->addOperand(Handle);
    I->addOperand(V);
    I->BitOff = BitOff;
    I->BitWidth = BitWidth;
    return append(I);
  }

  Instr *createPktDecap(Value *Handle, Value *SizeBytes) {
    Instr *I = make(Op::PktDecap, Type::packetTy());
    I->addOperand(Handle);
    I->addOperand(SizeBytes);
    return append(I);
  }

  Instr *createPktEncap(Value *Handle, unsigned SizeBytes) {
    Instr *I = make(Op::PktEncap, Type::packetTy());
    I->addOperand(Handle);
    I->SizeBytes = SizeBytes;
    return append(I);
  }

  Instr *createPktCopy(Value *Handle) {
    Instr *I = make(Op::PktCopy, Type::packetTy());
    I->addOperand(Handle);
    return append(I);
  }

  Instr *createPktDrop(Value *Handle) {
    Instr *I = make(Op::PktDrop, Type::voidTy());
    I->addOperand(Handle);
    return append(I);
  }

  Instr *createPktLength(Value *Handle) {
    Instr *I = make(Op::PktLength, Type::intTy(32));
    I->addOperand(Handle);
    return append(I);
  }

  Instr *createChannelPut(unsigned ChanId, Value *Handle) {
    Instr *I = make(Op::ChannelPut, Type::voidTy());
    I->ChanId = ChanId;
    I->addOperand(Handle);
    return append(I);
  }

  Instr *createLockAcquire(unsigned LockId) {
    Instr *I = make(Op::LockAcquire, Type::voidTy());
    I->LockId = LockId;
    return append(I);
  }

  Instr *createLockRelease(unsigned LockId) {
    Instr *I = make(Op::LockRelease, Type::voidTy());
    I->LockId = LockId;
    return append(I);
  }

  Instr *createPktLoadWide(Value *Handle, unsigned ByteOff, unsigned Words,
                           WideSpace Space) {
    Instr *I = make(Op::PktLoadWide, Type::wideTy(Words));
    I->addOperand(Handle);
    I->ByteOff = ByteOff;
    I->Words = Words;
    I->Space = Space;
    return append(I);
  }

  Instr *createPktStoreWide(Value *Handle, unsigned ByteOff, unsigned Words,
                            WideSpace Space, Value *Wide) {
    Instr *I = make(Op::PktStoreWide, Type::voidTy());
    I->addOperand(Handle);
    I->addOperand(Wide);
    I->ByteOff = ByteOff;
    I->Words = Words;
    I->Space = Space;
    return append(I);
  }

  Instr *createWideExtract(Value *Wide, unsigned BitOff, unsigned BitWidth,
                           Type Ty) {
    Instr *I = make(Op::WideExtract, Ty);
    I->addOperand(Wide);
    I->BitOff = BitOff;
    I->BitWidth = BitWidth;
    return append(I);
  }

  Instr *createWideInsert(Value *Wide, Value *V, unsigned BitOff,
                          unsigned BitWidth) {
    Instr *I = make(Op::WideInsert, Wide->type());
    I->addOperand(Wide);
    I->addOperand(V);
    I->BitOff = BitOff;
    I->BitWidth = BitWidth;
    return append(I);
  }

  Instr *createWideZero(unsigned Words) {
    Instr *I = make(Op::WideZero, Type::wideTy(Words));
    I->Words = Words;
    return append(I);
  }

private:
  Instr *createCast(Op O, Value *V, Type To) {
    assert(V->type().isInt() && To.isInt() && "casts are integer-only");
    Instr *I = make(O, To);
    I->addOperand(V);
    return append(I);
  }

  static Instr *make(Op O, Type Ty) { return new Instr(O, Ty); }

  Instr *append(Instr *I) {
    assert(BB && "no insertion block");
    BB->append(std::unique_ptr<Instr>(I));
    return I;
  }

  Function *F;
  BasicBlock *BB = nullptr;
};

} // namespace sl::ir

#endif // SL_IR_IRBUILDER_H
