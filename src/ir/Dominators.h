//===- ir/Dominators.h - dominator tree and frontiers ---------------------==//
//
// Iterative dominator computation (Cooper-Harvey-Kennedy) plus dominance
// frontiers, used by SSA construction and by PAC's dominance checks.
//
//===----------------------------------------------------------------------===//

#ifndef SL_IR_DOMINATORS_H
#define SL_IR_DOMINATORS_H

#include "ir/Function.h"

#include <map>
#include <vector>

namespace sl::ir {

/// Dominator information for one function. Snapshot: rebuild after CFG
/// mutations.
class DomTree {
public:
  explicit DomTree(Function &F);

  /// Immediate dominator of \p BB (null for the entry block and for
  /// unreachable blocks).
  BasicBlock *idom(BasicBlock *BB) const {
    auto It = IDom.find(BB);
    return It == IDom.end() ? nullptr : It->second;
  }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(BasicBlock *A, BasicBlock *B) const;

  /// True if instruction \p A dominates instruction \p B: either A's block
  /// strictly dominates B's, or both share a block and A comes first.
  bool dominates(const Instr *A, const Instr *B) const;

  /// Blocks in the dominance frontier of \p BB.
  const std::vector<BasicBlock *> &frontier(BasicBlock *BB) const {
    static const std::vector<BasicBlock *> Empty;
    auto It = DF.find(BB);
    return It == DF.end() ? Empty : It->second;
  }

  /// True if \p BB is reachable from the entry block.
  bool reachable(BasicBlock *BB) const { return RpoIndex.count(BB) != 0; }

  /// Blocks in reverse postorder (reachable blocks only).
  const std::vector<BasicBlock *> &rpo() const { return Rpo; }

private:
  std::map<BasicBlock *, BasicBlock *> IDom;
  std::map<BasicBlock *, std::vector<BasicBlock *>> DF;
  std::map<BasicBlock *, unsigned> RpoIndex;
  std::vector<BasicBlock *> Rpo;
};

} // namespace sl::ir

#endif // SL_IR_DOMINATORS_H
