//===- ir/Value.h - IR values ---------------------------------------------==//

#ifndef SL_IR_VALUE_H
#define SL_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace sl::ir {

class Instr;
class Function;

/// Base of everything that can appear as an instruction operand.
/// Maintains a use list (the instructions currently using this value,
/// with multiplicity).
class Value {
public:
  enum class VKind : uint8_t { ConstInt, Argument, Instr };

  virtual ~Value() = default;

  VKind valueKind() const { return VK; }
  const Type &type() const { return Ty; }
  void setType(Type T) { Ty = T; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Users of this value (an instruction appears once per operand slot).
  const std::vector<Instr *> &users() const { return Users; }
  bool hasUses() const { return !Users.empty(); }
  unsigned numUses() const { return static_cast<unsigned>(Users.size()); }

  /// Rewrites every use of this value to \p New.
  void replaceAllUsesWith(Value *New);

protected:
  Value(VKind VK, Type Ty) : VK(VK), Ty(Ty) {}

private:
  friend class Instr;
  void addUser(Instr *I) { Users.push_back(I); }
  void removeUser(Instr *I) {
    auto It = std::find(Users.begin(), Users.end(), I);
    if (It != Users.end())
      Users.erase(It);
  }

  VKind VK;
  Type Ty;
  std::string Name;
  std::vector<Instr *> Users;
};

/// A compile-time integer constant. Stored zero-extended; signed
/// interpretation is per-operation.
class ConstInt : public Value {
public:
  ConstInt(Type Ty, uint64_t Val) : Value(VKind::ConstInt, Ty), Val(Val) {}
  static bool classof(const Value *V) {
    return V->valueKind() == VKind::ConstInt;
  }

  uint64_t value() const { return Val; }
  int64_t signedValue() const {
    unsigned Bits = type().bits();
    if (Bits == 64)
      return static_cast<int64_t>(Val);
    uint64_t Sign = uint64_t(1) << (Bits - 1);
    return static_cast<int64_t>((Val ^ Sign) - Sign);
  }

private:
  uint64_t Val;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type Ty, Function *Parent, unsigned Index)
      : Value(VKind::Argument, Ty), Parent(Parent), Index(Index) {}
  static bool classof(const Value *V) {
    return V->valueKind() == VKind::Argument;
  }

  Function *parent() const { return Parent; }
  unsigned index() const { return Index; }

private:
  Function *Parent;
  unsigned Index;
};

} // namespace sl::ir

#endif // SL_IR_VALUE_H
