//===- ir/BasicBlock.h - CFG nodes ----------------------------------------==//

#ifndef SL_IR_BASICBLOCK_H
#define SL_IR_BASICBLOCK_H

#include "ir/Instr.h"

#include <memory>
#include <string>
#include <vector>

namespace sl::ir {

class Function;

/// A straight-line sequence of instructions ending in a terminator.
/// Owns its instructions.
class BasicBlock {
public:
  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  Function *parent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  // Instruction list ----------------------------------------------------------
  size_t size() const { return Instrs.size(); }
  bool empty() const { return Instrs.empty(); }
  Instr *instr(size_t I) const { return Instrs[I].get(); }
  const std::vector<std::unique_ptr<Instr>> &instrs() const { return Instrs; }

  /// Appends \p I (taking ownership).
  Instr *append(std::unique_ptr<Instr> I) {
    I->setParent(this);
    Instrs.push_back(std::move(I));
    return Instrs.back().get();
  }

  /// Inserts \p I before position \p Pos (taking ownership).
  Instr *insertAt(size_t Pos, std::unique_ptr<Instr> I) {
    assert(Pos <= Instrs.size() && "insert position out of range");
    I->setParent(this);
    auto It = Instrs.begin() + static_cast<ptrdiff_t>(Pos);
    return Instrs.insert(It, std::move(I))->get();
  }

  /// Index of \p I within this block; asserts if absent.
  size_t indexOf(const Instr *I) const {
    for (size_t Idx = 0; Idx != Instrs.size(); ++Idx)
      if (Instrs[Idx].get() == I)
        return Idx;
    assert(false && "instruction not in block");
    return 0;
  }

  /// Unlinks and destroys the instruction at \p Pos. The instruction must
  /// have no remaining users.
  void erase(size_t Pos) {
    assert(Pos < Instrs.size() && "erase position out of range");
    assert(!Instrs[Pos]->hasUses() && "erasing an instruction with uses");
    Instrs.erase(Instrs.begin() + static_cast<ptrdiff_t>(Pos));
  }

  /// Unlinks and destroys \p I (which must have no users).
  void erase(Instr *I) { erase(indexOf(I)); }

  /// Detaches the instruction at \p Pos without destroying it.
  std::unique_ptr<Instr> detach(size_t Pos) {
    assert(Pos < Instrs.size() && "detach position out of range");
    std::unique_ptr<Instr> I = std::move(Instrs[Pos]);
    Instrs.erase(Instrs.begin() + static_cast<ptrdiff_t>(Pos));
    I->setParent(nullptr);
    return I;
  }

  /// The block terminator, or null if the block is still being built.
  Instr *terminator() const {
    if (Instrs.empty())
      return nullptr;
    Instr *Last = Instrs.back().get();
    return Last->isTerm() ? Last : nullptr;
  }

  /// Successor blocks (empty until terminated).
  std::vector<BasicBlock *> successors() const {
    if (Instr *T = terminator())
      return T->succs();
    return {};
  }

private:
  std::string Name;
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instr>> Instrs;
};

} // namespace sl::ir

#endif // SL_IR_BASICBLOCK_H
