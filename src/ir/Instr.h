//===- ir/Instr.h - IR instructions ---------------------------------------==//
//
// A single Instr class with an opcode enum and a small set of immediate
// attributes covers the whole instruction set: scalar ALU ops, stack and
// global memory, control flow, and the packet intrinsics that the
// specialized optimizations (PAC / SOAR / PHR / SWC) analyze and rewrite.
//
//===----------------------------------------------------------------------===//

#ifndef SL_IR_INSTR_H
#define SL_IR_INSTR_H

#include "ir/Value.h"
#include "support/SourceLoc.h"

#include <climits>
#include <cstdint>
#include <vector>

namespace sl::ir {

class BasicBlock;
class Function;
class Global;

/// IR opcodes.
enum class Op : uint8_t {
  // Integer arithmetic / logic. Two operands of identical integer type.
  Add,
  Sub,
  Mul,
  UDiv,
  SDiv,
  URem,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,

  // Comparisons: two identically typed integer operands, produce i1.
  CmpEq,
  CmpNe,
  CmpULt,
  CmpULe,
  CmpUGt,
  CmpUGe,
  CmpSLt,
  CmpSLe,
  CmpSGt,
  CmpSGe,

  // Width conversions.
  ZExt,
  SExt,
  Trunc,

  // Select(cond, a, b).
  Select,

  // Stack slots. Alloca produces a slot; Load/Store move scalar or packet
  // values through it. Baker has no address-taken locals, so the operand
  // of Load/Store is always the Alloca itself.
  Alloca,
  Load,
  Store,

  // Module globals (SRAM or Scratch): GLoad(index) / GStore(index, value),
  // with the Global referenced via the GlobalRef attribute.
  GLoad,
  GStore,

  // Control flow.
  Br,
  CondBr,
  Ret,
  Call,
  Phi,

  // Packet intrinsics. Offsets are bit offsets relative to the handle's
  // current header until SOAR resolves absolute positions.
  PktLoad,   ///< (handle) attrs{BitOff,BitWidth} -> iN
  PktStore,  ///< (handle, value) attrs{BitOff,BitWidth}
  MetaLoad,  ///< (handle) attrs{BitOff,BitWidth} -> iN
  MetaStore, ///< (handle, value) attrs{BitOff,BitWidth}
  PktDecap,  ///< (handle, sizeBytes:i32) -> pkt
  PktEncap,  ///< (handle) attrs{SizeBytes} -> pkt
  PktCopy,   ///< (handle) -> pkt
  PktDrop,   ///< (handle)
  PktLength, ///< (handle) -> i32
  ChannelPut, ///< (handle) attrs{ChanId}
  LockAcquire, ///< attrs{LockId}
  LockRelease, ///< attrs{LockId}

  // Wide accesses created by PAC. Space selects packet DRAM data vs the
  // SRAM metadata block. ByteOff is relative to the current header for
  // Space==PktData, or absolute within the metadata block for Space==Meta.
  PktLoadWide,  ///< (handle) attrs{ByteOff,Words,Space} -> wN
  PktStoreWide, ///< (handle, wide) attrs{ByteOff,Words,Space}
  WideExtract,  ///< (wide) attrs{BitOff,BitWidth} -> iN
  WideInsert,   ///< (wide, value) attrs{BitOff,BitWidth} -> wN
  WideZero,     ///< () attrs{Words} -> wN
};

/// Memory space of a wide (combined) access.
enum class WideSpace : uint8_t { PktData, Meta };

const char *opName(Op O);
bool isTerminator(Op O);
bool isBinaryOp(Op O);
bool isCompareOp(Op O);
/// True for instructions with no side effects whose results can be safely
/// removed when unused.
bool isPureOp(Op O);

/// One IR instruction. Owned by its BasicBlock.
class Instr : public Value {
public:
  Instr(Op O, Type Ty) : Value(VKind::Instr, Ty), Opcode(O) {}
  ~Instr() override { dropOperands(); }

  static bool classof(const Value *V) { return V->valueKind() == VKind::Instr; }

  Op op() const { return Opcode; }
  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  // Operands ---------------------------------------------------------------
  unsigned numOperands() const { return static_cast<unsigned>(Ops.size()); }
  Value *operand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  void addOperand(Value *V) {
    Ops.push_back(V);
    if (V)
      V->addUser(this);
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Ops.size() && "operand index out of range");
    if (Ops[I])
      Ops[I]->removeUser(this);
    Ops[I] = V;
    if (V)
      V->addUser(this);
  }
  /// Removes all operands (and this instr from their use lists).
  void dropOperands() {
    for (Value *V : Ops)
      if (V)
        V->removeUser(this);
    Ops.clear();
  }

  // Successors (Br: [0]; CondBr: [true, false]) -----------------------------
  unsigned numSuccs() const { return static_cast<unsigned>(Succs.size()); }
  BasicBlock *succ(unsigned I) const {
    assert(I < Succs.size() && "successor index out of range");
    return Succs[I];
  }
  void setSucc(unsigned I, BasicBlock *BB) {
    assert(I < Succs.size() && "successor index out of range");
    Succs[I] = BB;
  }
  void addSucc(BasicBlock *BB) { Succs.push_back(BB); }
  std::vector<BasicBlock *> &succs() { return Succs; }
  const std::vector<BasicBlock *> &succs() const { return Succs; }

  // Phi incoming blocks, parallel to operands --------------------------------
  std::vector<BasicBlock *> &phiBlocks() { return PhiBlocks; }
  const std::vector<BasicBlock *> &phiBlocks() const { return PhiBlocks; }
  void addPhiIncoming(Value *V, BasicBlock *BB) {
    addOperand(V);
    PhiBlocks.push_back(BB);
  }
  void removePhiIncoming(unsigned I);

  bool isTerm() const { return isTerminator(Opcode); }

  // Attributes ---------------------------------------------------------------
  // Interpretations depend on opcode; unused fields stay zero.
  unsigned BitOff = 0;     ///< Pkt/Meta field or WideExtract/Insert offset.
  unsigned BitWidth = 0;   ///< Field width in bits.
  unsigned ByteOff = 0;    ///< Wide access byte offset.
  unsigned Words = 0;      ///< Wide access word count.
  WideSpace Space = WideSpace::PktData;
  unsigned ChanId = 0;     ///< ChannelPut target.
  unsigned LockId = 0;     ///< LockAcquire/Release.
  unsigned SizeBytes = 0;  ///< PktEncap header size.
  Type AllocTy;            ///< Alloca element type.
  Global *GlobalRef = nullptr; ///< GLoad/GStore target.
  Function *Callee = nullptr;  ///< Call target.
  std::string ProtoName;   ///< Pkt intrinsics: protocol, for printing.
  std::string FieldName;   ///< Pkt/Meta field name, for printing.

  // Analysis annotations ------------------------------------------------------
  /// Sentinel for "offset not statically known" (INT64_MIN).
  static constexpr int64_t UnknownOff = INT64_MIN;
  /// SOAR: byte offset of the current header relative to the start of
  /// packet data, when statically known (UnknownOff otherwise; may be
  /// negative after packet_encap). For accesses this is the accessed
  /// handle's offset; for decap/encap it is the offset of the RESULT
  /// handle.
  int64_t StaticHdrOff = UnknownOff;
  /// SOAR: for decap/encap, the statically known offset of the INPUT
  /// handle (UnknownOff otherwise).
  int64_t StaticInOff = UnknownOff;
  /// SOAR: guaranteed alignment (bytes) of the current header; 0 unknown.
  unsigned StaticAlign = 0;
  /// PHR: head_ptr maintenance for this decap/encap was proven removable
  /// (paired within the aggregate or statically resolved end-to-end).
  bool HeadElided = false;
  /// PHR: this meta access was localized to a register; no SRAM traffic.
  bool MetaLocalized = false;

  SourceLoc Loc;

private:
  Op Opcode;
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Ops;
  std::vector<BasicBlock *> Succs;
  std::vector<BasicBlock *> PhiBlocks;
};

} // namespace sl::ir

#endif // SL_IR_INSTR_H
