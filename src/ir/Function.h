//===- ir/Function.h - IR functions ---------------------------------------==//

#ifndef SL_IR_FUNCTION_H
#define SL_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sl::ir {

class Module;

/// A Baker function or PPF lowered to a CFG. Owns its blocks, arguments,
/// and constants.
class Function {
public:
  Function(std::string Name, Type RetTy, bool IsPpf)
      : Name(std::move(Name)), RetTy(RetTy), IsPpf(IsPpf) {}

  ~Function() { dropAllReferences(); }

  /// Severs every def-use edge rooted in this function: clears each
  /// instruction's operand list (removing it from the operands' use
  /// lists). ~Instr would otherwise unlink from operands one instruction
  /// at a time, touching values (instructions in earlier blocks, earlier
  /// instructions in the same block) that were already destroyed.
  void dropAllReferences() {
    for (const auto &BB : Blocks)
      for (const auto &I : BB->instrs())
        I->dropOperands();
  }

  const std::string &name() const { return Name; }
  const Type &returnType() const { return RetTy; }
  bool isPpf() const { return IsPpf; }
  Module *parent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  // Arguments -----------------------------------------------------------------
  Argument *addArg(Type Ty, std::string ArgName) {
    auto A = std::make_unique<Argument>(Ty, this,
                                        static_cast<unsigned>(Args.size()));
    A->setName(std::move(ArgName));
    Args.push_back(std::move(A));
    return Args.back().get();
  }
  unsigned numArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *arg(unsigned I) const { return Args[I].get(); }

  // Blocks --------------------------------------------------------------------
  BasicBlock *addBlock(std::string BlockName) {
    auto BB = std::make_unique<BasicBlock>(std::move(BlockName));
    BB->setParent(this);
    Blocks.push_back(std::move(BB));
    return Blocks.back().get();
  }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }
  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *block(size_t I) const { return Blocks[I].get(); }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Removes (and destroys) block \p BB; it must be unreferenced.
  void eraseBlock(BasicBlock *BB) {
    for (size_t I = 0; I != Blocks.size(); ++I) {
      if (Blocks[I].get() == BB) {
        Blocks.erase(Blocks.begin() + static_cast<ptrdiff_t>(I));
        return;
      }
    }
    assert(false && "block not in function");
  }

  /// Predecessor map, computed fresh from the current CFG.
  std::map<BasicBlock *, std::vector<BasicBlock *>> predecessors() const {
    std::map<BasicBlock *, std::vector<BasicBlock *>> Preds;
    for (const auto &BB : Blocks)
      Preds[BB.get()]; // Ensure every block has an entry.
    for (const auto &BB : Blocks)
      for (BasicBlock *S : BB->successors())
        Preds[S].push_back(BB.get());
    return Preds;
  }

  // Constants -----------------------------------------------------------------
  /// Returns a (uniqued) integer constant of the given type.
  ConstInt *constInt(Type Ty, uint64_t Val);

  /// Returns an "undef" placeholder of \p Ty (used by SSA construction on
  /// paths where a variable was never assigned). Reads of it yield zero.
  Value *undef(Type Ty) {
    if (Ty.isInt())
      return constInt(Ty, 0);
    Undefs.push_back(std::make_unique<ConstInt>(Ty, 0));
    return Undefs.back().get();
  }

  /// Total instruction count (for size estimation).
  size_t instrCount() const {
    size_t N = 0;
    for (const auto &BB : Blocks)
      N += BB->size();
    return N;
  }

private:
  std::string Name;
  Type RetTy;
  bool IsPpf;
  Module *Parent = nullptr;
  // Keep Blocks declared last: members are destroyed in reverse
  // declaration order, and even though ~Function severs the use graph up
  // front, partially-destroyed passes (e.g. an exception mid-construction)
  // still destroy Blocks before the values its instructions reference.
  std::vector<std::unique_ptr<Argument>> Args;
  std::map<std::pair<uint8_t, uint64_t>, std::unique_ptr<ConstInt>> Consts;
  std::vector<std::unique_ptr<ConstInt>> Undefs;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace sl::ir

#endif // SL_IR_FUNCTION_H
