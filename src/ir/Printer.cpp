//===- ir/Printer.cpp -----------------------------------------------------==//

#include "ir/Printer.h"

#include "ir/Module.h"
#include "support/StringUtils.h"

#include <map>

using namespace sl;
using namespace sl::ir;

namespace {

/// Assigns stable printed names: %<name> if named, else %tN.
class NameMap {
public:
  explicit NameMap(const Function &F) {
    for (unsigned I = 0; I != F.numArgs(); ++I)
      nameOf(F.arg(I));
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instrs())
        if (!I->type().isVoid())
          nameOf(I.get());
  }

  std::string nameOf(const Value *V) {
    if (const auto *C = dyn_cast<ConstInt>(V))
      return formatString("%llu", static_cast<unsigned long long>(C->value()));
    auto It = Names.find(V);
    if (It != Names.end())
      return It->second;
    std::string N = V->name().empty()
                        ? formatString("%%t%u", Counter++)
                        : ("%" + V->name() + "." + std::to_string(Counter++));
    Names.emplace(V, N);
    return N;
  }

private:
  std::map<const Value *, std::string> Names;
  unsigned Counter = 0;
};

void printInstr(const Instr &I, NameMap &Names, std::string &Out) {
  Out += "  ";
  if (!I.type().isVoid())
    Out += Names.nameOf(&I) + " = ";
  Out += opName(I.op());
  Out += " ";
  if (!I.type().isVoid())
    Out += I.type().str() + " ";

  bool First = true;
  auto comma = [&] {
    if (!First)
      Out += ", ";
    First = false;
  };

  for (unsigned K = 0; K != I.numOperands(); ++K) {
    comma();
    Out += Names.nameOf(I.operand(K));
    if (I.op() == Op::Phi && K < I.phiBlocks().size())
      Out += " [" + I.phiBlocks()[K]->name() + "]";
  }
  for (unsigned K = 0; K != I.numSuccs(); ++K) {
    comma();
    Out += "^" + I.succ(K)->name();
  }
  if (I.Callee) {
    comma();
    Out += "@" + I.Callee->name();
  }
  if (I.GlobalRef) {
    comma();
    Out += "$" + I.GlobalRef->name();
  }
  switch (I.op()) {
  case Op::PktLoad:
  case Op::PktStore:
  case Op::MetaLoad:
  case Op::MetaStore:
  case Op::WideExtract:
  case Op::WideInsert:
    Out += formatString(" {bit %u, width %u}", I.BitOff, I.BitWidth);
    if (!I.FieldName.empty())
      Out += " ; " + I.ProtoName +
             (I.ProtoName.empty() ? "" : ".") + I.FieldName;
    break;
  case Op::PktLoadWide:
  case Op::PktStoreWide:
    Out += formatString(" {byte %u, words %u, %s}", I.ByteOff, I.Words,
                        I.Space == WideSpace::PktData ? "dram" : "meta");
    break;
  case Op::PktEncap:
    Out += formatString(" {size %u}", I.SizeBytes);
    break;
  case Op::ChannelPut:
    Out += formatString(" {chan %u}", I.ChanId);
    break;
  case Op::LockAcquire:
  case Op::LockRelease:
    Out += formatString(" {lock %u}", I.LockId);
    break;
  case Op::Alloca:
    Out += " {" + I.AllocTy.str() + "}";
    break;
  default:
    break;
  }
  if (I.StaticHdrOff != Instr::UnknownOff)
    Out += formatString(" !soar(off=%lld, align=%u)",
                        static_cast<long long>(I.StaticHdrOff), I.StaticAlign);
  Out += "\n";
}

} // namespace

std::string sl::ir::printFunction(const Function &F) {
  NameMap Names(F);
  std::string Out = (F.isPpf() ? "ppf @" : "func @") + F.name() + "(";
  for (unsigned I = 0; I != F.numArgs(); ++I) {
    if (I)
      Out += ", ";
    Out += F.arg(I)->type().str() + " " + Names.nameOf(F.arg(I));
  }
  Out += ") -> " + F.returnType().str() + " {\n";
  for (const auto &BB : F.blocks()) {
    Out += BB->name() + ":\n";
    for (const auto &I : BB->instrs())
      printInstr(*I, Names, Out);
  }
  Out += "}\n";
  return Out;
}

std::string sl::ir::printModule(const Module &M) {
  std::string Out;
  for (const auto &G : M.globals()) {
    Out += formatString("global $%s : i%u x %llu (%s%s)\n", G->name().c_str(),
                        G->elemBits(),
                        static_cast<unsigned long long>(G->count()),
                        G->Level == MemLevel::Sram ? "sram" : "scratch",
                        G->Cached ? ", cached" : "");
  }
  for (const Channel &C : M.Channels) {
    Out += formatString("channel #%u %s : %s -> %s\n", C.Id, C.Name.c_str(),
                        C.Proto.c_str(),
                        C.Dest ? C.Dest->name().c_str() : "<tx>");
  }
  if (M.EntryPpf)
    Out += "entry @" + M.EntryPpf->name() + "\n";
  Out += "\n";
  for (const auto &F : M.functions())
    Out += printFunction(*F) + "\n";
  return Out;
}
