//===- ir/Instr.cpp -------------------------------------------------------==//

#include "ir/Instr.h"

#include "ir/Function.h"

using namespace sl;
using namespace sl::ir;

const char *sl::ir::opName(Op O) {
  switch (O) {
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::UDiv:
    return "udiv";
  case Op::SDiv:
    return "sdiv";
  case Op::URem:
    return "urem";
  case Op::SRem:
    return "srem";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Xor:
    return "xor";
  case Op::Shl:
    return "shl";
  case Op::LShr:
    return "lshr";
  case Op::AShr:
    return "ashr";
  case Op::CmpEq:
    return "cmp.eq";
  case Op::CmpNe:
    return "cmp.ne";
  case Op::CmpULt:
    return "cmp.ult";
  case Op::CmpULe:
    return "cmp.ule";
  case Op::CmpUGt:
    return "cmp.ugt";
  case Op::CmpUGe:
    return "cmp.uge";
  case Op::CmpSLt:
    return "cmp.slt";
  case Op::CmpSLe:
    return "cmp.sle";
  case Op::CmpSGt:
    return "cmp.sgt";
  case Op::CmpSGe:
    return "cmp.sge";
  case Op::ZExt:
    return "zext";
  case Op::SExt:
    return "sext";
  case Op::Trunc:
    return "trunc";
  case Op::Select:
    return "select";
  case Op::Alloca:
    return "alloca";
  case Op::Load:
    return "load";
  case Op::Store:
    return "store";
  case Op::GLoad:
    return "gload";
  case Op::GStore:
    return "gstore";
  case Op::Br:
    return "br";
  case Op::CondBr:
    return "condbr";
  case Op::Ret:
    return "ret";
  case Op::Call:
    return "call";
  case Op::Phi:
    return "phi";
  case Op::PktLoad:
    return "pkt.load";
  case Op::PktStore:
    return "pkt.store";
  case Op::MetaLoad:
    return "meta.load";
  case Op::MetaStore:
    return "meta.store";
  case Op::PktDecap:
    return "pkt.decap";
  case Op::PktEncap:
    return "pkt.encap";
  case Op::PktCopy:
    return "pkt.copy";
  case Op::PktDrop:
    return "pkt.drop";
  case Op::PktLength:
    return "pkt.length";
  case Op::ChannelPut:
    return "chan.put";
  case Op::LockAcquire:
    return "lock.acquire";
  case Op::LockRelease:
    return "lock.release";
  case Op::PktLoadWide:
    return "pkt.load.wide";
  case Op::PktStoreWide:
    return "pkt.store.wide";
  case Op::WideExtract:
    return "wide.extract";
  case Op::WideInsert:
    return "wide.insert";
  case Op::WideZero:
    return "wide.zero";
  }
  return "<bad-op>";
}

bool sl::ir::isTerminator(Op O) {
  return O == Op::Br || O == Op::CondBr || O == Op::Ret;
}

bool sl::ir::isBinaryOp(Op O) {
  switch (O) {
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::UDiv:
  case Op::SDiv:
  case Op::URem:
  case Op::SRem:
  case Op::And:
  case Op::Or:
  case Op::Xor:
  case Op::Shl:
  case Op::LShr:
  case Op::AShr:
    return true;
  default:
    return isCompareOp(O);
  }
}

bool sl::ir::isCompareOp(Op O) {
  switch (O) {
  case Op::CmpEq:
  case Op::CmpNe:
  case Op::CmpULt:
  case Op::CmpULe:
  case Op::CmpUGt:
  case Op::CmpUGe:
  case Op::CmpSLt:
  case Op::CmpSLe:
  case Op::CmpSGt:
  case Op::CmpSGe:
    return true;
  default:
    return false;
  }
}

bool sl::ir::isPureOp(Op O) {
  if (isBinaryOp(O))
    return true;
  switch (O) {
  case Op::ZExt:
  case Op::SExt:
  case Op::Trunc:
  case Op::Select:
  case Op::Phi:
  case Op::WideExtract:
  case Op::WideInsert:
  case Op::WideZero:
    return true;
  default:
    return false;
  }
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "replacing a value with itself");
  // Users mutates while we rewrite, so iterate over a copy.
  std::vector<Instr *> Copy = Users;
  for (Instr *U : Copy)
    for (unsigned I = 0, E = U->numOperands(); I != E; ++I)
      if (U->operand(I) == this)
        U->setOperand(I, New);
  assert(Users.empty() && "stale uses after RAUW");
}

void Instr::removePhiIncoming(unsigned I) {
  assert(op() == Op::Phi && "not a phi");
  assert(I < numOperands() && "phi incoming index out of range");
  if (Value *V = operand(I))
    V->removeUser(this);
  // Manual erase from the operand list.
  // setOperand cannot shrink, so rebuild.
  std::vector<Value *> NewOps;
  std::vector<BasicBlock *> NewBlocks;
  for (unsigned K = 0, E = numOperands(); K != E; ++K) {
    if (K == I)
      continue;
    NewOps.push_back(operand(K));
    NewBlocks.push_back(PhiBlocks[K]);
  }
  // Drop remaining uses, then re-add.
  for (unsigned K = 0, E = numOperands(); K != E; ++K)
    if (K != I && operand(K))
      operand(K)->removeUser(this);
  Ops.clear();
  PhiBlocks.clear();
  for (Value *V : NewOps)
    addOperand(V);
  PhiBlocks = std::move(NewBlocks);
}

ConstInt *Function::constInt(Type Ty, uint64_t Val) {
  assert(Ty.isInt() && "constants must be integers");
  uint64_t Masked =
      Ty.bits() == 64 ? Val : (Val & ((uint64_t(1) << Ty.bits()) - 1));
  auto Key = std::make_pair(static_cast<uint8_t>(Ty.bits()), Masked);
  auto It = Consts.find(Key);
  if (It != Consts.end())
    return It->second.get();
  auto C = std::make_unique<ConstInt>(Ty, Masked);
  ConstInt *Ptr = C.get();
  Consts.emplace(Key, std::move(C));
  return Ptr;
}
