//===- ir/Dominators.cpp --------------------------------------------------==//

#include "ir/Dominators.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace sl;
using namespace sl::ir;

DomTree::DomTree(Function &F) {
  // Depth-first postorder from the entry block.
  std::vector<BasicBlock *> Post;
  std::set<BasicBlock *> Seen;
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  BasicBlock *Entry = F.entry();
  Stack.push_back({Entry, 0});
  Seen.insert(Entry);
  while (!Stack.empty()) {
    auto &[BB, Idx] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (Idx < Succs.size()) {
      BasicBlock *S = Succs[Idx++];
      if (Seen.insert(S).second)
        Stack.push_back({S, 0});
      continue;
    }
    Post.push_back(BB);
    Stack.pop_back();
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  for (unsigned I = 0; I != Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  auto Preds = F.predecessors();

  // Cooper-Harvey-Kennedy iterative idom computation.
  auto intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RpoIndex.at(A) > RpoIndex.at(B))
        A = IDom.at(A);
      while (RpoIndex.at(B) > RpoIndex.at(A))
        B = IDom.at(B);
    }
    return A;
  };

  IDom[Entry] = Entry;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Rpo) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : Preds[BB]) {
        if (!RpoIndex.count(P) || !IDom.count(P))
          continue; // Unreachable or not yet processed.
        NewIDom = NewIDom ? intersect(NewIDom, P) : P;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[Entry] = nullptr; // Entry has no idom; self-link was just for CHK.

  // Dominance frontiers.
  for (BasicBlock *BB : Rpo) {
    const auto &P = Preds[BB];
    if (P.size() < 2)
      continue;
    for (BasicBlock *Pred : P) {
      if (!RpoIndex.count(Pred))
        continue;
      BasicBlock *Runner = Pred;
      while (Runner && Runner != IDom[BB]) {
        auto &Front = DF[Runner];
        if (std::find(Front.begin(), Front.end(), BB) == Front.end())
          Front.push_back(BB);
        Runner = IDom[Runner];
      }
    }
  }
}

bool DomTree::dominates(BasicBlock *A, BasicBlock *B) const {
  if (!reachable(B))
    return false;
  while (B) {
    if (A == B)
      return true;
    auto It = IDom.find(B);
    B = It == IDom.end() ? nullptr : It->second;
  }
  return false;
}

bool DomTree::dominates(const Instr *A, const Instr *B) const {
  BasicBlock *ABlock = A->parent();
  BasicBlock *BBlock = B->parent();
  assert(ABlock && BBlock && "instructions must be in blocks");
  if (ABlock != BBlock)
    return dominates(ABlock, BBlock) && ABlock != BBlock;
  return ABlock->indexOf(A) < BBlock->indexOf(B);
}
