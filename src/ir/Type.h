//===- ir/Type.h - IR value types -----------------------------------------==//

#ifndef SL_IR_TYPE_H
#define SL_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace sl::ir {

/// IR-level type. Integers carry an explicit bit width (1 for booleans).
/// Packet is an opaque packet-handle. Wide is a contiguous group of 32-bit
/// words produced by combined (PAC) memory accesses; it maps to a transfer
/// register sequence in code generation.
class Type {
public:
  enum class Kind : uint8_t { Void, Int, Packet, Wide };

  Type() : K(Kind::Void) {}

  static Type voidTy() { return Type(); }
  static Type intTy(unsigned Bits) {
    assert((Bits == 1 || Bits == 8 || Bits == 16 || Bits == 32 ||
            Bits == 64) &&
           "unsupported IR integer width");
    Type T;
    T.K = Kind::Int;
    T.Bits = static_cast<uint8_t>(Bits);
    return T;
  }
  static Type boolTy() { return intTy(1); }
  static Type packetTy() {
    Type T;
    T.K = Kind::Packet;
    return T;
  }
  static Type wideTy(unsigned Words) {
    assert(Words >= 1 && Words <= 16 && "wide group of 1..16 words");
    Type T;
    T.K = Kind::Wide;
    T.Words = static_cast<uint8_t>(Words);
    return T;
  }

  Kind kind() const { return K; }
  bool isVoid() const { return K == Kind::Void; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return isInt() && Bits == 1; }
  bool isPacket() const { return K == Kind::Packet; }
  bool isWide() const { return K == Kind::Wide; }

  unsigned bits() const {
    assert(isInt() && "bits() on non-integer type");
    return Bits;
  }
  unsigned words() const {
    assert(isWide() && "words() on non-wide type");
    return Words;
  }

  bool operator==(const Type &RHS) const {
    return K == RHS.K && Bits == RHS.Bits && Words == RHS.Words;
  }
  bool operator!=(const Type &RHS) const { return !(*this == RHS); }

  std::string str() const {
    // Built up in place: `"i" + std::to_string(...)` selects
    // operator+(const char*, string&&), which GCC 12's -Wrestrict
    // misanalyzes into a spurious overlap error under -Werror.
    std::string S;
    switch (K) {
    case Kind::Void:
      return "void";
    case Kind::Int:
      S = "i";
      S += std::to_string(Bits);
      return S;
    case Kind::Packet:
      return "pkt";
    case Kind::Wide:
      S = "w";
      S += std::to_string(Words);
      return S;
    }
    return "<invalid>";
  }

private:
  Kind K;
  uint8_t Bits = 0;
  uint8_t Words = 0;
};

} // namespace sl::ir

#endif // SL_IR_TYPE_H
