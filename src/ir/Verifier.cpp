//===- ir/Verifier.cpp ----------------------------------------------------==//

#include "ir/Verifier.h"

#include "ir/Dominators.h"
#include "ir/Module.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdarg>
#include <set>

using namespace sl;
using namespace sl::ir;

namespace {

class Verifier {
public:
  explicit Verifier(Function &F) : F(F) {}

  std::vector<std::string> run();

private:
  void fail(const Instr *I, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));
  void checkBlock(BasicBlock &BB);
  void checkInstr(Instr &I);
  void checkTyping(Instr &I);
  void checkHandleProducer(Instr &I);
  void checkDominance(DomTree &DT);

  Function &F;
  std::vector<std::string> Problems;
};

void Verifier::fail(const Instr *I, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Msg = formatStringV(Fmt, Args);
  va_end(Args);
  std::string Where = F.name();
  if (I && I->parent())
    Where += ":" + I->parent()->name();
  Problems.push_back(Where + ": " + Msg);
}

void Verifier::checkBlock(BasicBlock &BB) {
  if (BB.empty()) {
    fail(nullptr, "block '%s' is empty", BB.name().c_str());
    return;
  }
  for (size_t I = 0; I != BB.size(); ++I) {
    Instr *In = BB.instr(I);
    if (In->parent() != &BB)
      fail(In, "instruction parent link is stale");
    bool IsLast = I + 1 == BB.size();
    if (In->isTerm() != IsLast)
      fail(In, IsLast ? "block '%s' does not end in a terminator"
                      : "terminator in the middle of block '%s'",
           BB.name().c_str());
    if (In->op() == Op::Phi && I != 0) {
      // Phis must be grouped at the top.
      if (BB.instr(I - 1)->op() != Op::Phi)
        fail(In, "phi is not at the start of its block");
    }
    checkInstr(*In);
  }
}

void Verifier::checkInstr(Instr &I) {
  // Use-list integrity: every operand must list this instruction as a user.
  for (unsigned K = 0; K != I.numOperands(); ++K) {
    Value *V = I.operand(K);
    if (!V) {
      fail(&I, "null operand %u of '%s'", K, opName(I.op()));
      continue;
    }
    const auto &Users = V->users();
    if (std::find(Users.begin(), Users.end(), &I) == Users.end())
      fail(&I, "operand of '%s' does not list it as user", opName(I.op()));
  }
  checkTyping(I);
}

// Packet handles have a closed set of producers: the PPF's packet
// argument, the SSA undef placeholder, decap/encap/copy results, handles
// merged by phis/selects, handles moved through stack slots, or a helper
// call's return value. Anything else (say a GLoad retyped as a packet)
// is malformed IR that must fail here instead of reaching the lifetime
// analyzer.
void Verifier::checkHandleProducer(Instr &I) {
  Value *H = I.operand(0);
  if (!H || !H->type().isPacket())
    return; // Typing check already reported it.
  if (isa<Argument>(H) || isa<ConstInt>(H))
    return;
  auto *P = cast<Instr>(H);
  switch (P->op()) {
  case Op::PktDecap:
  case Op::PktEncap:
  case Op::PktCopy:
  case Op::Phi:
  case Op::Select:
  case Op::Load:
  case Op::Call:
    return;
  default:
    fail(&I, "packet operand of '%s' produced by illegal '%s'",
         opName(I.op()), opName(P->op()));
  }
}

void Verifier::checkTyping(Instr &I) {
  auto opTy = [&](unsigned K) { return I.operand(K)->type(); };

  if (isBinaryOp(I.op())) {
    if (I.numOperands() != 2)
      return fail(&I, "'%s' needs two operands", opName(I.op()));
    if (!opTy(0).isInt() || opTy(0) != opTy(1))
      return fail(&I, "'%s' operand types differ", opName(I.op()));
    if (isCompareOp(I.op()) ? !I.type().isBool() : I.type() != opTy(0))
      return fail(&I, "'%s' result type mismatch", opName(I.op()));
    return;
  }

  switch (I.op()) {
  case Op::ZExt:
  case Op::SExt:
    if (I.numOperands() != 1 || !opTy(0).isInt() || !I.type().isInt() ||
        opTy(0).bits() > I.type().bits())
      fail(&I, "bad extension");
    return;
  case Op::Trunc:
    if (I.numOperands() != 1 || !opTy(0).isInt() || !I.type().isInt() ||
        opTy(0).bits() < I.type().bits())
      fail(&I, "bad truncation");
    return;
  case Op::Select:
    if (I.numOperands() != 3 || !opTy(0).isBool() || opTy(1) != opTy(2) ||
        I.type() != opTy(1))
      fail(&I, "bad select");
    return;
  case Op::Alloca:
    if (I.AllocTy.isVoid())
      fail(&I, "alloca of void");
    return;
  case Op::Load: {
    auto *Slot = dyn_cast<Instr>(I.operand(0));
    if (!Slot || Slot->op() != Op::Alloca)
      fail(&I, "load source is not an alloca");
    else if (I.type() != Slot->AllocTy)
      fail(&I, "load type differs from slot type");
    return;
  }
  case Op::Store: {
    auto *Slot = dyn_cast<Instr>(I.operand(0));
    if (!Slot || Slot->op() != Op::Alloca)
      fail(&I, "store target is not an alloca");
    else if (I.operand(1)->type() != Slot->AllocTy)
      fail(&I, "store value type differs from slot type");
    return;
  }
  case Op::GLoad:
    if (!I.GlobalRef)
      fail(&I, "gload without global");
    else if (!I.type().isInt() || I.type().bits() != I.GlobalRef->elemBits())
      fail(&I, "gload type mismatch");
    return;
  case Op::GStore:
    if (!I.GlobalRef)
      fail(&I, "gstore without global");
    else if (I.operand(1)->type() != Type::intTy(I.GlobalRef->elemBits()))
      fail(&I, "gstore value type mismatch");
    return;
  case Op::Br:
    if (I.numSuccs() != 1)
      fail(&I, "br must have one successor");
    return;
  case Op::CondBr:
    if (I.numSuccs() != 2 || I.numOperands() != 1 || !opTy(0).isBool())
      fail(&I, "bad condbr");
    return;
  case Op::Ret: {
    bool WantsValue = !F.returnType().isVoid();
    if (I.numOperands() != (WantsValue ? 1u : 0u))
      fail(&I, "ret operand count mismatch");
    else if (WantsValue && opTy(0) != F.returnType())
      fail(&I, "ret type mismatch");
    return;
  }
  case Op::Call: {
    if (!I.Callee)
      return fail(&I, "call without callee");
    if (I.numOperands() != I.Callee->numArgs())
      return fail(&I, "call argument count mismatch for '%s'",
                  I.Callee->name().c_str());
    for (unsigned K = 0; K != I.numOperands(); ++K)
      if (opTy(K) != I.Callee->arg(K)->type())
        fail(&I, "call argument %u type mismatch", K);
    if (I.type() != I.Callee->returnType())
      fail(&I, "call result type mismatch");
    return;
  }
  case Op::Phi:
    if (I.numOperands() != I.phiBlocks().size())
      return fail(&I, "phi operand/block count mismatch");
    for (unsigned K = 0; K != I.numOperands(); ++K)
      if (opTy(K) != I.type())
        fail(&I, "phi incoming %u type mismatch", K);
    return;
  case Op::PktLoad:
  case Op::MetaLoad:
    if (!opTy(0).isPacket() || !I.type().isInt() || I.BitWidth == 0 ||
        I.BitWidth > I.type().bits())
      fail(&I, "bad packet/meta load");
    checkHandleProducer(I);
    return;
  case Op::PktStore:
  case Op::MetaStore:
    if (!opTy(0).isPacket() || !opTy(1).isInt() || I.BitWidth == 0 ||
        I.BitWidth > opTy(1).bits())
      fail(&I, "bad packet/meta store");
    checkHandleProducer(I);
    return;
  case Op::PktDecap:
    if (!opTy(0).isPacket() || opTy(1) != Type::intTy(32) ||
        !I.type().isPacket())
      fail(&I, "bad decap");
    checkHandleProducer(I);
    return;
  case Op::PktEncap:
    if (!opTy(0).isPacket() || !I.type().isPacket() || I.SizeBytes == 0)
      fail(&I, "bad encap");
    checkHandleProducer(I);
    return;
  case Op::PktCopy:
    if (!opTy(0).isPacket() || !I.type().isPacket())
      fail(&I, "bad copy");
    checkHandleProducer(I);
    return;
  case Op::PktDrop:
  case Op::ChannelPut:
    if (!opTy(0).isPacket())
      fail(&I, "'%s' needs a packet handle", opName(I.op()));
    checkHandleProducer(I);
    return;
  case Op::PktLength:
    if (!opTy(0).isPacket() || I.type() != Type::intTy(32))
      fail(&I, "bad pkt.length");
    checkHandleProducer(I);
    return;
  case Op::LockAcquire:
  case Op::LockRelease:
    return;
  case Op::PktLoadWide:
    if (!opTy(0).isPacket() || !I.type().isWide() ||
        I.type().words() != I.Words || I.Words == 0)
      fail(&I, "bad wide load");
    checkHandleProducer(I);
    return;
  case Op::PktStoreWide:
    if (!opTy(0).isPacket() || !opTy(1).isWide() ||
        opTy(1).words() != I.Words)
      fail(&I, "bad wide store");
    checkHandleProducer(I);
    return;
  case Op::WideExtract:
    if (!opTy(0).isWide() || !I.type().isInt() || I.BitWidth == 0 ||
        I.BitWidth > I.type().bits() ||
        I.BitOff + I.BitWidth > opTy(0).words() * 32)
      fail(&I, "bad wide extract");
    return;
  case Op::WideInsert:
    if (!opTy(0).isWide() || I.type() != opTy(0) || !opTy(1).isInt() ||
        I.BitWidth == 0 || I.BitOff + I.BitWidth > opTy(0).words() * 32)
      fail(&I, "bad wide insert");
    return;
  case Op::WideZero:
    if (!I.type().isWide() || I.type().words() != I.Words)
      fail(&I, "bad wide zero");
    return;
  default:
    return;
  }
}

void Verifier::checkDominance(DomTree &DT) {
  auto Preds = F.predecessors();
  for (const auto &BB : F.blocks()) {
    if (!DT.reachable(BB.get()))
      continue;
    for (const auto &I : BB->instrs()) {
      if (I->op() == Op::Phi) {
        // Each incoming value must be available at the end of its block,
        // and incoming blocks must match the actual predecessors.
        auto &P = Preds[BB.get()];
        if (I->phiBlocks().size() != P.size())
          fail(I.get(), "phi incoming count (%zu) != predecessors (%zu)",
               I->phiBlocks().size(), P.size());
        for (unsigned K = 0; K != I->numOperands(); ++K) {
          BasicBlock *In = I->phiBlocks()[K];
          if (std::find(P.begin(), P.end(), In) == P.end())
            fail(I.get(), "phi incoming block '%s' is not a predecessor",
                 In->name().c_str());
          auto *DefI = dyn_cast<Instr>(I->operand(K));
          if (DefI && DT.reachable(In) &&
              !(DT.dominates(DefI->parent(), In)))
            fail(I.get(), "phi incoming value does not dominate edge");
        }
        continue;
      }
      for (unsigned K = 0; K != I->numOperands(); ++K) {
        auto *DefI = dyn_cast<Instr>(I->operand(K));
        if (DefI && !DT.dominates(DefI, I.get()))
          fail(I.get(), "operand %u of '%s' does not dominate its use", K,
               opName(I->op()));
      }
    }
  }
}

std::vector<std::string> Verifier::run() {
  if (F.numBlocks() == 0) {
    fail(nullptr, "function has no blocks");
    return std::move(Problems);
  }
  for (const auto &BB : F.blocks())
    checkBlock(*BB);
  if (Problems.empty()) {
    DomTree DT(F);
    checkDominance(DT);
  }
  return std::move(Problems);
}

} // namespace

std::vector<std::string> sl::ir::verifyFunction(Function &F) {
  Verifier V(F);
  return V.run();
}

std::vector<std::string> sl::ir::verifyModule(Module &M) {
  std::vector<std::string> All;
  for (const auto &F : M.functions()) {
    std::vector<std::string> P = verifyFunction(*F);
    All.insert(All.end(), P.begin(), P.end());
  }
  return All;
}
