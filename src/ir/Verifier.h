//===- ir/Verifier.h - IR well-formedness checks ---------------------------==//

#ifndef SL_IR_VERIFIER_H
#define SL_IR_VERIFIER_H

#include <string>
#include <vector>

namespace sl::ir {

class Function;
class Module;

/// Checks structural invariants of \p F: terminators, operand typing,
/// phi/predecessor consistency, SSA dominance of operand definitions, and
/// use-list integrity. Returns human-readable problem descriptions (empty
/// when the function is well-formed).
std::vector<std::string> verifyFunction(Function &F);

/// Verifies every function in \p M.
std::vector<std::string> verifyModule(Module &M);

} // namespace sl::ir

#endif // SL_IR_VERIFIER_H
