//===- ir/ASTLower.cpp ----------------------------------------------------==//

#include "ir/ASTLower.h"

#include "ir/IRBuilder.h"
#include "support/Casting.h"

#include <cassert>
#include <map>

using namespace sl;
using namespace sl::ir;

namespace {

ir::Type irType(const baker::Type &T) {
  switch (T.kind()) {
  case baker::Type::Kind::Void:
    return Type::voidTy();
  case baker::Type::Kind::Bool:
    return Type::boolTy();
  case baker::Type::Kind::Int:
    return Type::intTy(T.bits());
  case baker::Type::Kind::Packet:
    return Type::packetTy();
  }
  return Type::voidTy();
}

class Lowering {
public:
  Lowering(const baker::CompiledUnit &Unit, DiagEngine &Diags)
      : AST(*Unit.AST), Sema(Unit.Sema), Diags(Diags) {}

  std::unique_ptr<Module> run();

private:
  void declareModuleEntities();
  void lowerFunction(const baker::FuncDecl &FD);

  // Statements.
  void lowerStmt(const baker::Stmt *S);
  void lowerVarDecl(const baker::VarDeclStmt *D);

  // Expressions.
  Value *rvalue(const baker::Expr *E);
  Value *lowerCall(const baker::CallExpr *E, const baker::Type *HandleTy);
  Value *lowerPacketInit(const baker::VarDeclStmt *D);
  void lowerAssign(const baker::AssignExpr *A);
  void lowerCondBranch(const baker::Expr *E, BasicBlock *TrueBB,
                       BasicBlock *FalseBB);
  Value *toBool(Value *V);
  Value *convert(Value *V, const baker::Type &From, const baker::Type &To);
  Value *convertToIr(Value *V, bool SrcSigned, Type To);
  Value *demuxSize(const baker::ProtocolDecl &Proto, Value *Handle);
  Value *demuxExpr(const baker::Expr *E, const baker::ProtocolDecl &Proto,
                   Value *Handle);

  Instr *slotFor(const baker::VarDeclStmt *D);
  Instr *slotFor(const baker::ParamDecl *P);

  BasicBlock *newBlock(const char *Hint) {
    return B->function()->addBlock(Hint + std::to_string(BlockCounter++));
  }

  const baker::Program &AST;
  const baker::SemaResult &Sema;
  DiagEngine &Diags;

  std::unique_ptr<Module> M;
  std::unique_ptr<IRBuilder> B;
  std::map<const baker::VarDeclStmt *, Instr *> LocalSlots;
  std::map<const baker::ParamDecl *, Instr *> ParamSlots;
  std::map<const baker::FuncDecl *, Function *> FuncMap;
  std::map<const baker::GlobalDecl *, Global *> GlobalMap;
  std::vector<std::pair<BasicBlock *, BasicBlock *>> LoopStack; // brk, cont
  unsigned BlockCounter = 0;
  const baker::FuncDecl *CurFD = nullptr;
};

//===----------------------------------------------------------------------===//
// Module-level entities
//===----------------------------------------------------------------------===//

void Lowering::declareModuleEntities() {
  M = std::make_unique<Module>();
  M->MetaBits = Sema.MetaBits;
  M->NumLocks = static_cast<unsigned>(Sema.Locks.size());
  M->LockNames.resize(Sema.Locks.size());
  for (const auto &[LockName, LockId] : Sema.Locks)
    M->LockNames[LockId] = LockName;

  for (const auto &P : AST.Protocols) {
    ProtoInfo PI;
    PI.Name = P->Name;
    PI.HeaderBits = P->HeaderBits;
    PI.ConstSize = P->DemuxIsConst;
    PI.SizeBytes = P->DemuxConstBytes;
    M->Protos.push_back(std::move(PI));
  }

  for (const auto &G : AST.Globals) {
    unsigned Bits = G->ElemTy.isBool() ? 8 : G->ElemTy.bits();
    GlobalMap[G.get()] =
        M->addGlobal(G->Name, Bits, G->Count, G->Init);
  }

  for (const auto &F : AST.Funcs) {
    Function *Fn = M->addFunction(F->Name, irType(F->RetTy), F->IsPpf);
    for (const baker::ParamDecl &P : F->Params)
      Fn->addArg(irType(P.Ty), P.Name);
    FuncMap[F.get()] = Fn;
  }

  // Channel 0 is tx.
  Channel Tx;
  Tx.Id = baker::TxChannelId;
  Tx.Name = "tx";
  M->Channels.push_back(Tx);
  for (const baker::ChannelDecl *C : Sema.Channels) {
    Channel Ch;
    Ch.Id = C->Id;
    Ch.Name = C->Name;
    Ch.Proto = C->Proto;
    Ch.Dest = M->findFunction(C->DestPpf);
    assert(Ch.Dest && "wired PPF must exist");
    M->Channels.push_back(std::move(Ch));
  }
  if (Sema.EntryPpf)
    M->EntryPpf = M->findFunction(Sema.EntryPpf->Name);
}

//===----------------------------------------------------------------------===//
// Function lowering
//===----------------------------------------------------------------------===//

Instr *Lowering::slotFor(const baker::VarDeclStmt *D) {
  auto It = LocalSlots.find(D);
  assert(It != LocalSlots.end() && "local without slot");
  return It->second;
}

Instr *Lowering::slotFor(const baker::ParamDecl *P) {
  auto It = ParamSlots.find(P);
  assert(It != ParamSlots.end() && "param without slot");
  return It->second;
}

void Lowering::lowerFunction(const baker::FuncDecl &FD) {
  Function *Fn = FuncMap.at(&FD);
  CurFD = &FD;
  LocalSlots.clear();
  ParamSlots.clear();
  LoopStack.clear();
  BlockCounter = 0;

  B = std::make_unique<IRBuilder>(Fn);
  BasicBlock *Entry = Fn->addBlock("entry");
  B->setInsertBlock(Entry);

  // Spill parameters into stack slots (mem2reg recovers SSA form at -O1;
  // at BASE this is exactly the naive stack traffic the paper describes).
  for (unsigned I = 0; I != Fn->numArgs(); ++I) {
    const baker::ParamDecl &P = FD.Params[I];
    Instr *Slot = B->createAlloca(irType(P.Ty), P.Name);
    B->createStore(Slot, Fn->arg(I));
    ParamSlots[&P] = Slot;
  }

  lowerStmt(FD.Body.get());

  if (!B->terminated()) {
    if (Fn->returnType().isVoid())
      B->createRet(nullptr);
    else
      B->createRet(Fn->constInt(Fn->returnType(), 0));
  }
  CurFD = nullptr;
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

Value *Lowering::convertToIr(Value *V, bool SrcSigned, Type To) {
  Type From = V->type();
  if (From == To)
    return V;
  assert(From.isInt() && To.isInt() && "only integer conversions exist");
  if (From.bits() < To.bits())
    return SrcSigned ? B->createSExt(V, To) : B->createZExt(V, To);
  return B->createTrunc(V, To);
}

Value *Lowering::convert(Value *V, const baker::Type &From,
                         const baker::Type &To) {
  if (From == To)
    return V;
  if (!From.isScalar() || !To.isScalar())
    return V; // Packet handles never convert.
  return convertToIr(V, From.isInt() && From.isSigned(), irType(To));
}

Value *Lowering::toBool(Value *V) {
  if (V->type().isBool())
    return V;
  assert(V->type().isInt() && "condition must be scalar");
  return B->createBin(Op::CmpNe, V,
                      B->constInt(V->type(), 0));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Lowering::lowerStmt(const baker::Stmt *S) {
  if (B->terminated())
    return; // Dead code after return/break; skip.

  switch (S->kind()) {
  case baker::Stmt::Kind::Block: {
    for (const auto &Child : cast<baker::BlockStmt>(S)->Body) {
      lowerStmt(Child.get());
      if (B->terminated())
        return;
    }
    return;
  }
  case baker::Stmt::Kind::If: {
    const auto *I = cast<baker::IfStmt>(S);
    BasicBlock *ThenBB = newBlock("if.then");
    BasicBlock *ElseBB = I->Else ? newBlock("if.else") : nullptr;
    BasicBlock *EndBB = newBlock("if.end");
    lowerCondBranch(I->Cond.get(), ThenBB, ElseBB ? ElseBB : EndBB);
    B->setInsertBlock(ThenBB);
    lowerStmt(I->Then.get());
    if (!B->terminated())
      B->createBr(EndBB);
    if (ElseBB) {
      B->setInsertBlock(ElseBB);
      lowerStmt(I->Else.get());
      if (!B->terminated())
        B->createBr(EndBB);
    }
    B->setInsertBlock(EndBB);
    return;
  }
  case baker::Stmt::Kind::While: {
    const auto *W = cast<baker::WhileStmt>(S);
    BasicBlock *CondBB = newBlock("while.cond");
    BasicBlock *BodyBB = newBlock("while.body");
    BasicBlock *EndBB = newBlock("while.end");
    B->createBr(CondBB);
    B->setInsertBlock(CondBB);
    lowerCondBranch(W->Cond.get(), BodyBB, EndBB);
    LoopStack.push_back({EndBB, CondBB});
    B->setInsertBlock(BodyBB);
    lowerStmt(W->Body.get());
    if (!B->terminated())
      B->createBr(CondBB);
    LoopStack.pop_back();
    B->setInsertBlock(EndBB);
    return;
  }
  case baker::Stmt::Kind::For: {
    const auto *F = cast<baker::ForStmt>(S);
    if (F->Init)
      lowerStmt(F->Init.get());
    BasicBlock *CondBB = newBlock("for.cond");
    BasicBlock *BodyBB = newBlock("for.body");
    BasicBlock *StepBB = newBlock("for.step");
    BasicBlock *EndBB = newBlock("for.end");
    B->createBr(CondBB);
    B->setInsertBlock(CondBB);
    if (F->Cond)
      lowerCondBranch(F->Cond.get(), BodyBB, EndBB);
    else
      B->createBr(BodyBB);
    LoopStack.push_back({EndBB, StepBB});
    B->setInsertBlock(BodyBB);
    lowerStmt(F->Body.get());
    if (!B->terminated())
      B->createBr(StepBB);
    LoopStack.pop_back();
    B->setInsertBlock(StepBB);
    if (F->Step)
      rvalue(F->Step.get());
    B->createBr(CondBB);
    B->setInsertBlock(EndBB);
    return;
  }
  case baker::Stmt::Kind::Return: {
    const auto *Ret = cast<baker::ReturnStmt>(S);
    if (Ret->Value) {
      Value *V = rvalue(Ret->Value.get());
      V = convert(V, Ret->Value->Ty, CurFD->RetTy);
      B->createRet(V);
    } else {
      B->createRet(nullptr);
    }
    return;
  }
  case baker::Stmt::Kind::Break:
    assert(!LoopStack.empty() && "break outside loop");
    B->createBr(LoopStack.back().first);
    return;
  case baker::Stmt::Kind::Continue:
    assert(!LoopStack.empty() && "continue outside loop");
    B->createBr(LoopStack.back().second);
    return;
  case baker::Stmt::Kind::VarDecl:
    lowerVarDecl(cast<baker::VarDeclStmt>(S));
    return;
  case baker::Stmt::Kind::Expr:
    rvalue(cast<baker::ExprStmt>(S)->E.get());
    return;
  case baker::Stmt::Kind::Critical: {
    const auto *C = cast<baker::CriticalStmt>(S);
    B->createLockAcquire(C->LockId)->Loc = C->Loc;
    lowerStmt(C->Body.get());
    if (!B->terminated())
      B->createLockRelease(C->LockId)->Loc = C->Loc;
    return;
  }
  }
  assert(false && "unhandled statement kind");
}

void Lowering::lowerVarDecl(const baker::VarDeclStmt *D) {
  Instr *Slot = B->createAlloca(irType(D->DeclTy), D->Name);
  LocalSlots[D] = Slot;
  if (D->DeclTy.isPacket()) {
    Value *Handle = lowerPacketInit(D);
    B->createStore(Slot, Handle);
    return;
  }
  if (D->Init) {
    Value *V = rvalue(D->Init.get());
    V = convert(V, D->Init->Ty, D->DeclTy);
    B->createStore(Slot, V);
  } else {
    B->createStore(Slot, B->constInt(irType(D->DeclTy), 0));
  }
}

//===----------------------------------------------------------------------===//
// Packet primitives
//===----------------------------------------------------------------------===//

Value *Lowering::demuxExpr(const baker::Expr *E,
                           const baker::ProtocolDecl &Proto, Value *Handle) {
  Type I32 = Type::intTy(32);
  if (const auto *I = dyn_cast<baker::IntLitExpr>(E))
    return B->constInt(I32, I->Value);
  if (const auto *V = dyn_cast<baker::VarRefExpr>(E)) {
    for (const baker::BitField &F : Proto.Fields) {
      if (F.Name == V->Name) {
        unsigned Store = F.Bits <= 8 ? 8 : F.Bits <= 16 ? 16 : 32;
        Instr *L = B->createPktLoad(Handle, F.BitOff, F.Bits,
                                    Type::intTy(Store));
        L->ProtoName = Proto.Name;
        L->FieldName = F.Name;
        return convertToIr(L, false, I32);
      }
    }
    assert(false && "demux field missing (sema validated)");
  }
  if (const auto *Bin = dyn_cast<baker::BinaryExpr>(E)) {
    Value *L = demuxExpr(Bin->LHS.get(), Proto, Handle);
    Value *R = demuxExpr(Bin->RHS.get(), Proto, Handle);
    switch (Bin->Op) {
    case baker::BinOp::Add:
      return B->createBin(Op::Add, L, R);
    case baker::BinOp::Sub:
      return B->createBin(Op::Sub, L, R);
    case baker::BinOp::Mul:
      return B->createBin(Op::Mul, L, R);
    case baker::BinOp::Shl:
      return B->createBin(Op::Shl, L, R);
    case baker::BinOp::Shr:
      return B->createBin(Op::LShr, L, R);
    default:
      break;
    }
  }
  assert(false && "unsupported demux construct (sema validated)");
  return B->constInt(I32, 0);
}

Value *Lowering::demuxSize(const baker::ProtocolDecl &Proto, Value *Handle) {
  if (Proto.DemuxIsConst)
    return B->constInt(Type::intTy(32), Proto.DemuxConstBytes);
  return demuxExpr(Proto.Demux.get(), Proto, Handle);
}

Value *Lowering::lowerPacketInit(const baker::VarDeclStmt *D) {
  const auto *CE = cast<baker::CallExpr>(D->Init.get());
  Value *Handle = rvalue(CE->Args[0].get());
  switch (CE->BI) {
  case baker::Builtin::Decap: {
    const std::string &OuterName = CE->Args[0]->Ty.protocol();
    const baker::ProtocolDecl *Outer = Sema.Protocols.at(OuterName);
    Value *Size = demuxSize(*Outer, Handle);
    Instr *I = B->createPktDecap(Handle, Size);
    I->ProtoName = OuterName;
    I->Loc = CE->Loc;
    return I;
  }
  case baker::Builtin::Encap: {
    const baker::ProtocolDecl *Target = Sema.Protocols.at(CE->EncapProto);
    Instr *I = B->createPktEncap(
        Handle, static_cast<unsigned>(Target->DemuxConstBytes));
    I->ProtoName = CE->EncapProto;
    I->Loc = CE->Loc;
    return I;
  }
  case baker::Builtin::Copy: {
    Instr *I = B->createPktCopy(Handle);
    I->Loc = CE->Loc;
    return I;
  }
  default:
    assert(false && "packet init must be decap/encap/copy");
    return Handle;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

void Lowering::lowerCondBranch(const baker::Expr *E, BasicBlock *TrueBB,
                               BasicBlock *FalseBB) {
  if (const auto *Bin = dyn_cast<baker::BinaryExpr>(E)) {
    if (Bin->Op == baker::BinOp::LogAnd) {
      BasicBlock *Mid = newBlock("and.rhs");
      lowerCondBranch(Bin->LHS.get(), Mid, FalseBB);
      B->setInsertBlock(Mid);
      lowerCondBranch(Bin->RHS.get(), TrueBB, FalseBB);
      return;
    }
    if (Bin->Op == baker::BinOp::LogOr) {
      BasicBlock *Mid = newBlock("or.rhs");
      lowerCondBranch(Bin->LHS.get(), TrueBB, Mid);
      B->setInsertBlock(Mid);
      lowerCondBranch(Bin->RHS.get(), TrueBB, FalseBB);
      return;
    }
  }
  if (const auto *U = dyn_cast<baker::UnaryExpr>(E)) {
    if (U->Op == baker::UnOp::Not) {
      lowerCondBranch(U->Sub.get(), FalseBB, TrueBB);
      return;
    }
  }
  Value *V = toBool(rvalue(E));
  B->createCondBr(V, TrueBB, FalseBB);
}

void Lowering::lowerAssign(const baker::AssignExpr *A) {
  const baker::Expr *L = A->LHS.get();
  Value *R = rvalue(A->RHS.get());
  R = convert(R, A->RHS->Ty, L->Ty);

  switch (L->kind()) {
  case baker::Expr::Kind::VarRef: {
    const auto *V = cast<baker::VarRefExpr>(L);
    if (V->LocalDecl) {
      B->createStore(slotFor(V->LocalDecl), R);
      return;
    }
    if (V->Param) {
      B->createStore(slotFor(V->Param), R);
      return;
    }
    assert(V->Global && "unresolved variable");
    Global *G = GlobalMap.at(V->Global);
    Value *Conv = convertToIr(R, false, Type::intTy(G->elemBits()));
    B->createGStore(G, B->i32(0), Conv)->Loc = V->Loc;
    return;
  }
  case baker::Expr::Kind::Index: {
    const auto *I = cast<baker::IndexExpr>(L);
    const auto *BaseRef = cast<baker::VarRefExpr>(I->Base.get());
    Global *G = GlobalMap.at(BaseRef->Global);
    Value *Idx = rvalue(I->Index.get());
    Idx = convertToIr(Idx, I->Index->Ty.isSigned(), Type::intTy(32));
    Value *Conv = convertToIr(R, false, Type::intTy(G->elemBits()));
    B->createGStore(G, Idx, Conv)->Loc = I->Loc;
    return;
  }
  case baker::Expr::Kind::PktField: {
    const auto *P = cast<baker::PktFieldExpr>(L);
    Value *Handle = rvalue(P->Handle.get());
    Instr *St = B->createPktStore(Handle, P->BitOff, P->BitWidth, R);
    St->ProtoName = P->Handle->Ty.protocol();
    St->FieldName = P->Field;
    St->Loc = P->Loc;
    return;
  }
  case baker::Expr::Kind::MetaField: {
    const auto *MF = cast<baker::MetaFieldExpr>(L);
    Value *Handle = rvalue(MF->Handle.get());
    Instr *St = B->createMetaStore(Handle, MF->BitOff, MF->BitWidth, R);
    St->FieldName = MF->Field;
    St->Loc = MF->Loc;
    return;
  }
  default:
    assert(false && "not an lvalue (sema validated)");
  }
}

Value *Lowering::lowerCall(const baker::CallExpr *E,
                           const baker::Type *HandleTy) {
  switch (E->BI) {
  case baker::Builtin::Drop: {
    Value *H = rvalue(E->Args[0].get());
    Instr *I = B->createPktDrop(H);
    I->Loc = E->Loc;
    return I;
  }
  case baker::Builtin::PktLength: {
    Value *H = rvalue(E->Args[0].get());
    return B->createPktLength(H);
  }
  case baker::Builtin::ChannelPut: {
    Value *H = rvalue(E->Args[1].get());
    Instr *I = B->createChannelPut(E->ChannelId, H);
    I->Loc = E->Loc;
    return I;
  }
  case baker::Builtin::Decap:
  case baker::Builtin::Encap:
  case baker::Builtin::Copy:
    assert(false && "handled via lowerPacketInit");
    return nullptr;
  case baker::Builtin::None: {
    Function *Callee = FuncMap.at(E->CalleeDecl);
    std::vector<Value *> Args;
    for (size_t I = 0; I != E->Args.size(); ++I) {
      Value *A = rvalue(E->Args[I].get());
      A = convert(A, E->Args[I]->Ty, E->CalleeDecl->Params[I].Ty);
      Args.push_back(A);
    }
    Instr *C = B->createCall(Callee, Args);
    C->Loc = E->Loc;
    return C;
  }
  }
  return nullptr;
}

Value *Lowering::rvalue(const baker::Expr *E) {
  switch (E->kind()) {
  case baker::Expr::Kind::IntLit:
    return B->constInt(irType(E->Ty), cast<baker::IntLitExpr>(E)->Value);
  case baker::Expr::Kind::BoolLit:
    return B->i1(cast<baker::BoolLitExpr>(E)->Value);

  case baker::Expr::Kind::VarRef: {
    const auto *V = cast<baker::VarRefExpr>(E);
    if (V->LocalDecl)
      return B->createLoad(slotFor(V->LocalDecl));
    if (V->Param)
      return B->createLoad(slotFor(V->Param));
    assert(V->Global && "unresolved variable");
    Global *G = GlobalMap.at(V->Global);
    Instr *L = B->createGLoad(G, B->i32(0));
    L->Loc = E->Loc;
    return convertToIr(L, false, irType(E->Ty));
  }

  case baker::Expr::Kind::Unary: {
    const auto *U = cast<baker::UnaryExpr>(E);
    switch (U->Op) {
    case baker::UnOp::Not: {
      Value *V = toBool(rvalue(U->Sub.get()));
      return B->createBin(Op::CmpEq, V, B->i1(false));
    }
    case baker::UnOp::Neg: {
      Value *V = rvalue(U->Sub.get());
      V = convert(V, U->Sub->Ty, E->Ty);
      return B->createBin(Op::Sub, B->constInt(irType(E->Ty), 0), V);
    }
    case baker::UnOp::BitNot: {
      Value *V = rvalue(U->Sub.get());
      V = convert(V, U->Sub->Ty, E->Ty);
      return B->createBin(Op::Xor, V,
                          B->constInt(irType(E->Ty), ~uint64_t(0)));
    }
    }
    break;
  }

  case baker::Expr::Kind::Binary: {
    const auto *Bin = cast<baker::BinaryExpr>(E);
    baker::BinOp O = Bin->Op;

    if (O == baker::BinOp::LogAnd || O == baker::BinOp::LogOr) {
      // Short-circuit via a temporary slot (promoted to SSA later).
      Instr *Slot = B->createAlloca(Type::boolTy(), "logtmp");
      BasicBlock *TrueBB = newBlock("log.true");
      BasicBlock *FalseBB = newBlock("log.false");
      BasicBlock *EndBB = newBlock("log.end");
      lowerCondBranch(E, TrueBB, FalseBB);
      B->setInsertBlock(TrueBB);
      B->createStore(Slot, B->i1(true));
      B->createBr(EndBB);
      B->setInsertBlock(FalseBB);
      B->createStore(Slot, B->i1(false));
      B->createBr(EndBB);
      B->setInsertBlock(EndBB);
      return B->createLoad(Slot);
    }

    Value *L = rvalue(Bin->LHS.get());
    Value *R = rvalue(Bin->RHS.get());

    // Comparisons compare at the wider of the two operand types; arithmetic
    // is performed at the result type chosen by Sema.
    baker::Type OpTy = E->Ty;
    bool Signed = false;
    if (O >= baker::BinOp::Eq && O <= baker::BinOp::Ge) {
      const baker::Type &LT = Bin->LHS->Ty;
      const baker::Type &RT = Bin->RHS->Ty;
      unsigned Bits = 32;
      if (LT.isInt() && RT.isInt())
        Bits = std::max(LT.bits(), RT.bits());
      else if (LT.isInt())
        Bits = LT.bits();
      else if (RT.isInt())
        Bits = RT.bits();
      else
        Bits = 8; // bool vs bool: compare as i8 to keep widths uniform.
      Signed = LT.isInt() && LT.isSigned() && RT.isInt() && RT.isSigned();
      OpTy = baker::Type::makeInt(Bits, Signed);
    } else {
      Signed = OpTy.isInt() && OpTy.isSigned();
    }
    L = convert(L, Bin->LHS->Ty, OpTy);
    R = convert(R, Bin->RHS->Ty, OpTy);

    Op IrOp;
    switch (O) {
    case baker::BinOp::Add:
      IrOp = Op::Add;
      break;
    case baker::BinOp::Sub:
      IrOp = Op::Sub;
      break;
    case baker::BinOp::Mul:
      IrOp = Op::Mul;
      break;
    case baker::BinOp::Div:
      IrOp = Signed ? Op::SDiv : Op::UDiv;
      break;
    case baker::BinOp::Rem:
      IrOp = Signed ? Op::SRem : Op::URem;
      break;
    case baker::BinOp::And:
      IrOp = Op::And;
      break;
    case baker::BinOp::Or:
      IrOp = Op::Or;
      break;
    case baker::BinOp::Xor:
      IrOp = Op::Xor;
      break;
    case baker::BinOp::Shl:
      IrOp = Op::Shl;
      break;
    case baker::BinOp::Shr:
      IrOp = Signed ? Op::AShr : Op::LShr;
      break;
    case baker::BinOp::Eq:
      IrOp = Op::CmpEq;
      break;
    case baker::BinOp::Ne:
      IrOp = Op::CmpNe;
      break;
    case baker::BinOp::Lt:
      IrOp = Signed ? Op::CmpSLt : Op::CmpULt;
      break;
    case baker::BinOp::Le:
      IrOp = Signed ? Op::CmpSLe : Op::CmpULe;
      break;
    case baker::BinOp::Gt:
      IrOp = Signed ? Op::CmpSGt : Op::CmpUGt;
      break;
    case baker::BinOp::Ge:
      IrOp = Signed ? Op::CmpSGe : Op::CmpUGe;
      break;
    default:
      assert(false && "unhandled binary op");
      IrOp = Op::Add;
    }
    return B->createBin(IrOp, L, R);
  }

  case baker::Expr::Kind::Cond: {
    const auto *C = cast<baker::CondExpr>(E);
    Instr *Slot = B->createAlloca(irType(E->Ty), "condtmp");
    BasicBlock *TrueBB = newBlock("cond.true");
    BasicBlock *FalseBB = newBlock("cond.false");
    BasicBlock *EndBB = newBlock("cond.end");
    lowerCondBranch(C->Cond.get(), TrueBB, FalseBB);
    B->setInsertBlock(TrueBB);
    Value *TV = rvalue(C->TrueE.get());
    B->createStore(Slot, convert(TV, C->TrueE->Ty, E->Ty));
    B->createBr(EndBB);
    B->setInsertBlock(FalseBB);
    Value *FV = rvalue(C->FalseE.get());
    B->createStore(Slot, convert(FV, C->FalseE->Ty, E->Ty));
    B->createBr(EndBB);
    B->setInsertBlock(EndBB);
    return B->createLoad(Slot);
  }

  case baker::Expr::Kind::Assign: {
    const auto *A = cast<baker::AssignExpr>(E);
    lowerAssign(A);
    // Baker assignments in expression position re-read the destination —
    // but our programs never chain them, so return the stored value type's
    // zero to keep this simple and assert it is unused.
    return B->constInt(Type::intTy(32), 0);
  }

  case baker::Expr::Kind::Call:
    return lowerCall(cast<baker::CallExpr>(E), nullptr);

  case baker::Expr::Kind::Index: {
    const auto *I = cast<baker::IndexExpr>(E);
    const auto *BaseRef = cast<baker::VarRefExpr>(I->Base.get());
    Global *G = GlobalMap.at(BaseRef->Global);
    Value *Idx = rvalue(I->Index.get());
    Idx = convertToIr(Idx, I->Index->Ty.isSigned(), Type::intTy(32));
    Instr *L = B->createGLoad(G, Idx);
    L->Loc = E->Loc;
    return convertToIr(L, false, irType(E->Ty));
  }

  case baker::Expr::Kind::PktField: {
    const auto *P = cast<baker::PktFieldExpr>(E);
    Value *Handle = rvalue(P->Handle.get());
    Instr *L = B->createPktLoad(Handle, P->BitOff, P->BitWidth,
                                irType(E->Ty));
    L->ProtoName = P->Handle->Ty.protocol();
    L->FieldName = P->Field;
    L->Loc = P->Loc;
    return L;
  }

  case baker::Expr::Kind::MetaField: {
    const auto *MF = cast<baker::MetaFieldExpr>(E);
    Value *Handle = rvalue(MF->Handle.get());
    Instr *L = B->createMetaLoad(Handle, MF->BitOff, MF->BitWidth,
                                 irType(E->Ty));
    L->FieldName = MF->Field;
    L->Loc = MF->Loc;
    return L;
  }
  }
  assert(false && "unhandled expression kind");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<Module> Lowering::run() {
  declareModuleEntities();
  for (const auto &F : AST.Funcs)
    lowerFunction(*F);
  return std::move(M);
}

} // namespace

std::unique_ptr<Module> sl::ir::lowerProgram(const baker::CompiledUnit &Unit,
                                             DiagEngine &Diags) {
  Lowering L(Unit, Diags);
  return L.run();
}
