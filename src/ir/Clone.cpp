//===- ir/Clone.cpp ---------------------------------------------------------==//

#include "ir/Clone.h"

#include <cassert>

using namespace sl;
using namespace sl::ir;

namespace {

/// Copies opcode, type, and immediate attributes (not operands/successors).
Instr *shallowCloneInstr(const Instr &I) {
  auto *C = new Instr(I.op(), I.type());
  C->setName(I.name());
  C->BitOff = I.BitOff;
  C->BitWidth = I.BitWidth;
  C->ByteOff = I.ByteOff;
  C->Words = I.Words;
  C->Space = I.Space;
  C->ChanId = I.ChanId;
  C->LockId = I.LockId;
  C->SizeBytes = I.SizeBytes;
  C->AllocTy = I.AllocTy;
  C->GlobalRef = I.GlobalRef;
  C->Callee = I.Callee;
  C->ProtoName = I.ProtoName;
  C->FieldName = I.FieldName;
  C->StaticHdrOff = I.StaticHdrOff;
  C->StaticInOff = I.StaticInOff;
  C->StaticAlign = I.StaticAlign;
  C->HeadElided = I.HeadElided;
  C->MetaLocalized = I.MetaLocalized;
  C->Loc = I.Loc;
  return C;
}

Value *mapValue(const Value *V, Function &Dst, CloneMap &Map) {
  auto It = Map.Values.find(V);
  if (It != Map.Values.end())
    return It->second;
  if (const auto *C = dyn_cast<ConstInt>(V)) {
    Value *NewC = C->type().isInt() ? Dst.constInt(C->type(), C->value())
                                    : Dst.undef(C->type());
    Map.Values.emplace(V, NewC);
    return NewC;
  }
  assert(false && "unmapped non-constant value in clone");
  return nullptr;
}

} // namespace

BasicBlock *sl::ir::cloneBody(const Function &Src, Function &Dst,
                              CloneMap &Map, const std::string &Suffix) {
  // Pass 1: create blocks and instruction shells.
  for (const auto &BB : Src.blocks()) {
    BasicBlock *NewBB = Dst.addBlock(BB->name() + Suffix);
    Map.Blocks[BB.get()] = NewBB;
    for (const auto &I : BB->instrs()) {
      Instr *C = shallowCloneInstr(*I);
      // Stack slots carry their inline frame in the name: the stack
      // layout pass groups frames from it (Sec. 5.4).
      if (C->op() == Op::Alloca && !Suffix.empty())
        C->setName(C->name() + Suffix);
      NewBB->append(std::unique_ptr<Instr>(C));
      Map.Values[I.get()] = C;
    }
  }

  // Pass 2: wire operands, successors, and phi blocks.
  for (const auto &BB : Src.blocks()) {
    BasicBlock *NewBB = Map.Blocks[BB.get()];
    for (size_t K = 0; K != BB->size(); ++K) {
      const Instr *I = BB->instr(K);
      Instr *C = NewBB->instr(K);
      for (unsigned OpIdx = 0; OpIdx != I->numOperands(); ++OpIdx)
        C->addOperand(mapValue(I->operand(OpIdx), Dst, Map));
      for (unsigned S = 0; S != I->numSuccs(); ++S)
        C->addSucc(Map.Blocks.at(I->succ(S)));
      for (BasicBlock *PB : I->phiBlocks())
        C->phiBlocks().push_back(Map.Blocks.at(PB));
    }
  }
  return Map.Blocks.at(Src.entry());
}

Function *sl::ir::cloneFunction(Module &M, const Function &F,
                                const std::string &NewName) {
  Function *NewF = M.addFunction(NewName, F.returnType(), F.isPpf());
  CloneMap Map;
  for (unsigned I = 0; I != F.numArgs(); ++I) {
    Argument *A = NewF->addArg(F.arg(I)->type(), F.arg(I)->name());
    Map.Values[F.arg(I)] = A;
  }
  cloneBody(F, *NewF, Map, "");
  return NewF;
}
