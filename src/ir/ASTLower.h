//===- ir/ASTLower.h - Baker AST to IR lowering ----------------------------==//

#ifndef SL_IR_ASTLOWER_H
#define SL_IR_ASTLOWER_H

#include "baker/Frontend.h"
#include "ir/Module.h"

#include <memory>

namespace sl::ir {

/// Lowers an analyzed Baker program to IR. Locals become allocas (promoted
/// to SSA later by mem2reg); packet primitives become intrinsics carrying
/// header-relative bit offsets.
std::unique_ptr<Module> lowerProgram(const baker::CompiledUnit &Unit,
                                     DiagEngine &Diags);

} // namespace sl::ir

#endif // SL_IR_ASTLOWER_H
