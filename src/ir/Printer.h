//===- ir/Printer.h - textual IR dump -------------------------------------==//

#ifndef SL_IR_PRINTER_H
#define SL_IR_PRINTER_H

#include <string>

namespace sl::ir {

class Function;
class Module;

/// Renders \p F as readable text (for tests and the IR explorer example).
std::string printFunction(const Function &F);

/// Renders the whole module: globals, channels, then functions.
std::string printModule(const Module &M);

} // namespace sl::ir

#endif // SL_IR_PRINTER_H
