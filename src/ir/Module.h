//===- ir/Module.h - IR translation unit ----------------------------------==//

#ifndef SL_IR_MODULE_H
#define SL_IR_MODULE_H

#include "ir/Function.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sl::ir {

/// Which physical memory a global lives in. Decided by the IPA/global
/// optimizer from profile data (SRAM by default; hot, small tables can be
/// promoted to Scratch).
enum class MemLevel : uint8_t { Sram, Scratch };

/// A module-scope global scalar or array.
class Global {
public:
  Global(std::string Name, unsigned ElemBits, uint64_t Count,
         std::vector<uint64_t> Init)
      : Name(std::move(Name)), ElemBits(ElemBits), Count(Count),
        Init(std::move(Init)) {}

  const std::string &name() const { return Name; }
  unsigned elemBits() const { return ElemBits; }
  uint64_t count() const { return Count; }
  const std::vector<uint64_t> &init() const { return Init; }
  uint64_t sizeBytes() const { return Count * (ElemBits / 8); }

  MemLevel Level = MemLevel::Sram;

  // SWC annotations (set by the software-caching pass).
  bool Cached = false;
  unsigned CacheCheckInterval = 0; ///< Check home location every N packets.

private:
  std::string Name;
  unsigned ElemBits;
  uint64_t Count;
  std::vector<uint64_t> Init;
};

/// A communication channel. Id 0 is the implicit transmit (tx) channel.
struct Channel {
  unsigned Id = 0;
  std::string Name;
  std::string Proto;
  Function *Dest = nullptr; ///< Null for tx.
};

/// Protocol summary retained for the runtime/interpreter (sizes only; field
/// offsets were resolved into the instructions during lowering).
struct ProtoInfo {
  std::string Name;
  unsigned HeaderBits = 0;
  bool ConstSize = false;
  uint64_t SizeBytes = 0; ///< Valid when ConstSize.
};

/// A whole lowered program.
class Module {
public:
  /// Sever every def-use edge in the module before any Function is
  /// destroyed: after inlining/cloning an instruction may still hold an
  /// operand owned by a different function, and ~Instr would touch that
  /// operand's use list after its owner was freed.
  ~Module() {
    for (const auto &F : Funcs)
      F->dropAllReferences();
  }

  Function *addFunction(std::string Name, Type RetTy, bool IsPpf) {
    auto F = std::make_unique<Function>(std::move(Name), RetTy, IsPpf);
    F->setParent(this);
    Funcs.push_back(std::move(F));
    return Funcs.back().get();
  }
  Function *findFunction(const std::string &Name) const {
    for (const auto &F : Funcs)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }
  /// Removes (and destroys) \p F; no calls to it may remain.
  void eraseFunction(Function *F) {
    for (size_t I = 0; I != Funcs.size(); ++I) {
      if (Funcs[I].get() == F) {
        Funcs.erase(Funcs.begin() + static_cast<ptrdiff_t>(I));
        return;
      }
    }
    assert(false && "function not in module");
  }

  Global *addGlobal(std::string Name, unsigned ElemBits, uint64_t Count,
                    std::vector<uint64_t> Init) {
    Globals.push_back(std::make_unique<Global>(std::move(Name), ElemBits,
                                               Count, std::move(Init)));
    return Globals.back().get();
  }
  Global *findGlobal(const std::string &Name) const {
    for (const auto &G : Globals)
      if (G->name() == Name)
        return G.get();
    return nullptr;
  }
  const std::vector<std::unique_ptr<Global>> &globals() const {
    return Globals;
  }

  std::vector<Channel> Channels; ///< Channels[0] is tx.
  Function *EntryPpf = nullptr;  ///< Receives packets from Rx.
  unsigned MetaBits = 16;        ///< User metadata block size (incl rx_port).
  unsigned NumLocks = 0;
  /// Source names of the locks, indexed by lock id (parallel to the ids
  /// Sema assigned). Diagnostics only; may be empty for synthetic IR.
  std::vector<std::string> LockNames;

  /// Metadata bit ranges visible outside the PPF dataflow (written by Rx or
  /// consumed by Tx); PHR must not localize accesses to these. rx_port
  /// [0,16) is always present; the driver adds the app's tx-consumed
  /// fields.
  std::vector<std::pair<unsigned, unsigned>> ExternMetaRanges = {{0, 16}};

  bool isExternMeta(unsigned BitOff, unsigned BitWidth) const {
    for (auto [Lo, Width] : ExternMetaRanges)
      if (BitOff < Lo + Width && Lo < BitOff + BitWidth)
        return true;
    return false;
  }
  std::vector<ProtoInfo> Protos;

  const ProtoInfo *findProto(const std::string &Name) const {
    for (const ProtoInfo &P : Protos)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }

  const Channel *findChannel(unsigned Id) const {
    for (const Channel &C : Channels)
      if (C.Id == Id)
        return &C;
    return nullptr;
  }

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<std::unique_ptr<Global>> Globals;
};

} // namespace sl::ir

#endif // SL_IR_MODULE_H
