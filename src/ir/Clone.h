//===- ir/Clone.h - function and block cloning -----------------------------==//
//
// Cloning is used by the inliner (-O2) and by aggregate formation, which
// duplicates hot PPFs across processing elements (Sec. 5.1 of the paper).
//
//===----------------------------------------------------------------------===//

#ifndef SL_IR_CLONE_H
#define SL_IR_CLONE_H

#include "ir/Module.h"

#include <map>
#include <string>
#include <vector>

namespace sl::ir {

/// Maps original values/blocks to their clones.
struct CloneMap {
  std::map<const Value *, Value *> Values;
  std::map<const BasicBlock *, BasicBlock *> Blocks;
};

/// Clones every block of \p Src into \p Dst (appending), rewriting operands
/// through \p Map. Callers must pre-seed Map.Values for Src's arguments.
/// Block names get \p Suffix appended. Returns the clone of Src's entry.
BasicBlock *cloneBody(const Function &Src, Function &Dst, CloneMap &Map,
                      const std::string &Suffix);

/// Clones \p F into a new function \p NewName in module \p M.
Function *cloneFunction(Module &M, const Function &F,
                        const std::string &NewName);

} // namespace sl::ir

#endif // SL_IR_CLONE_H
