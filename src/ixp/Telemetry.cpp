//===- ixp/Telemetry.cpp - telemetry JSON / Chrome-trace exporters ----------------==//

#include "ixp/Telemetry.h"

#include "ixp/Simulator.h"
#include "support/Json.h"

#include <ostream>
#include <string>

using namespace sl;
using namespace sl::ixp;
using support::JsonWriter;

namespace {

const char *memClassName(unsigned C) {
  static const char *Names[7] = {"pktData", "pktMeta", "pktRing", "app",
                                 "appCache", "stack", "lock"};
  return C < 7 ? Names[C] : "?";
}

} // namespace

void sl::ixp::writeTelemetryJson(std::ostream &OS, const SimStats &Stats,
                                 const SimTelemetry &Telem) {
  JsonWriter W(OS);
  writeTelemetry(W, Stats, Telem);
  OS << '\n';
}

void sl::ixp::writeTelemetry(JsonWriter &W, const SimStats &Stats,
                             const SimTelemetry &Telem) {
  W.beginObject();
  W.field("cycles", Telem.Cycles);

  // Aggregate chip-wide stats (the pre-existing SimStats).
  W.key("stats");
  W.beginObject();
  W.field("instrs", Stats.Instrs);
  W.field("txPackets", Stats.TxPackets);
  W.field("txBytes", Stats.TxBytes);
  W.field("rxInjected", Stats.RxInjected);
  W.field("rxDroppedFull", Stats.RxDroppedFull);
  W.key("accesses");
  W.beginObject();
  for (unsigned S = 0; S != 3; ++S) {
    W.key(SimTelemetry::unitName(S));
    W.beginObject();
    for (unsigned C = 0; C != 7; ++C)
      if (Stats.Accesses[S][C])
        W.field(memClassName(C), Stats.Accesses[S][C]);
    W.endObject();
  }
  W.endObject();
  W.endObject();

  // Per-ME / per-thread cycle accounting.
  W.key("mes");
  W.beginArray();
  for (const METelemetry &ME : Telem.MEs) {
    W.beginObject();
    W.field("index", ME.Index);
    W.field("xscale", ME.XScale);
    W.field("cycles", ME.Cycles);
    W.field("utilization", ME.utilization());
    W.field("idleCycles", ME.IdleCycles);
    W.key("threads");
    W.beginArray();
    for (const ThreadTelemetry &T : ME.Threads) {
      W.beginObject();
      W.field("busy", T.Busy);
      W.field("memStall", T.MemStall);
      W.field("ringWait", T.RingWait);
      W.field("idle", T.Idle);
      W.field("instrs", T.Instrs);
      W.field("aborts", T.Aborts);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();

  // Memory controllers.
  W.key("units");
  W.beginArray();
  for (unsigned S = 0; S != 3; ++S) {
    const MemUnitTelemetry &U = Telem.Units[S];
    W.beginObject();
    W.field("name", SimTelemetry::unitName(S));
    W.field("accesses", U.Accesses);
    W.field("waitCycles", U.WaitCycles);
    W.field("serviceCycles", U.ServiceCycles);
    W.field("queueHighWater", U.QueueHighWater);
    W.field("banks", U.Banks);
    W.field("avgWaitCycles", U.avgWait());
    W.field("saturation", U.saturation(Telem.Cycles));
    W.key("latencyHistBounds");
    W.beginArray();
    for (uint64_t B : MemUnitTelemetry::BucketBound)
      W.value(B);
    W.endArray();
    W.key("latencyHist");
    W.beginArray();
    for (uint64_t H : U.LatencyHist)
      W.value(H);
    W.endArray();
    W.endObject();
  }
  W.endArray();

  // Rings.
  W.key("rings");
  W.beginArray();
  for (size_t R = 0; R != Telem.Rings.size(); ++R) {
    const RingTelemetry &T = Telem.Rings[R];
    W.beginObject();
    W.field("index", uint64_t(R));
    W.field("name", T.Name.c_str());
    W.field("kind", ringImplName(T.Impl));
    W.field("producer", T.Producer.c_str());
    W.field("consumer", T.Consumer.c_str());
    W.field("capacity", T.Capacity);
    W.field("enqueues", T.Enqueues);
    W.field("dequeues", T.Dequeues);
    W.field("maxDepth", T.MaxDepth);
    W.field("fullStalls", T.FullStalls);
    W.field("emptyGets", T.EmptyGets);
    W.field("waitCycles", T.WaitCycles);
    W.endObject();
  }
  W.endArray();

  W.field("traceEventsDropped", Telem.TraceEventsDropped);
  W.endObject();
}

//===----------------------------------------------------------------------===//
// Chrome trace format
//===----------------------------------------------------------------------===//

void Tracer::exportChromeTrace(std::ostream &OS) const {
  // Compact output (no pretty-printing): traces are large and tooling
  // only cares about validity.
  JsonWriter W(OS, /*Pretty=*/false);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();

  // Name the ME "processes" so Perfetto shows readable tracks. Rx/Tx
  // device events use pid 1000/1001.
  auto metaName = [&](unsigned Pid, const char *Name) {
    W.beginObject();
    W.field("name", "process_name");
    W.field("ph", "M");
    W.field("pid", uint64_t(Pid));
    W.key("args");
    W.beginObject();
    W.field("name", Name);
    W.endObject();
    W.endObject();
  };
  // Ring events issued by the Rx/Tx devices carry the device pseudo-ME
  // (pid 1000/1001); exclude those or we would name a thousand fake MEs.
  unsigned MaxME = 0;
  for (const TraceEvent &E : Events)
    if ((E.K == TraceEvent::Exec || E.K == TraceEvent::Mem ||
         E.K == TraceEvent::Ring) &&
        E.ME < 1000)
      MaxME = E.ME > MaxME ? E.ME : MaxME;
  for (unsigned M = 0; M <= MaxME; ++M) {
    std::string N = "ME" + std::to_string(M);
    metaName(M, N.c_str());
  }
  metaName(1000, "RxDevice");
  metaName(1001, "TxDevice");

  for (const TraceEvent &E : Events) {
    W.beginObject();
    const char *Name = "?";
    const char *Cat = "sim";
    unsigned Pid = E.ME;
    switch (E.K) {
    case TraceEvent::Exec:
      Name = "exec";
      Cat = "sched";
      break;
    case TraceEvent::Mem:
      Name = SimTelemetry::unitName(E.Space);
      Cat = "mem";
      break;
    case TraceEvent::Ring:
      Name = E.Space == 0 ? "ring:rx" : E.Space == 1 ? "ring:tx" : "ring";
      Cat = "ring";
      break;
    case TraceEvent::Rx:
      Name = "rx";
      Cat = "pkt";
      Pid = 1000;
      break;
    case TraceEvent::Tx:
      Name = "tx";
      Cat = "pkt";
      Pid = 1001;
      break;
    }
    W.field("name", Name);
    W.field("cat", Cat);
    // Instant events use ph "i" (with scope), spans use complete events.
    if (E.Dur == 0) {
      W.field("ph", "i");
      W.field("s", "t");
    } else {
      W.field("ph", "X");
      W.field("dur", uint64_t(E.Dur));
    }
    W.field("ts", E.Start);
    W.field("pid", uint64_t(Pid));
    W.field("tid", uint64_t(E.Thread));
    W.key("args");
    W.beginObject();
    switch (E.K) {
    case TraceEvent::Exec:
      W.field("instrs", uint64_t(E.Arg));
      break;
    case TraceEvent::Mem:
      W.field("addr", uint64_t(E.Arg));
      break;
    case TraceEvent::Ring:
      W.field("ring", uint64_t(E.Space));
      W.field("depth", uint64_t(E.Arg));
      break;
    case TraceEvent::Rx:
      W.field("handle", uint64_t(E.Arg));
      break;
    case TraceEvent::Tx:
      W.field("bytes", uint64_t(E.Arg));
      break;
    }
    W.endObject();
    W.endObject();
  }
  W.endArray();
  // Timestamps are ME cycles, not microseconds; the unit hint keeps
  // viewers from rescaling them confusingly.
  W.field("displayTimeUnit", "ns");
  W.key("otherData");
  W.beginObject();
  W.field("timestampUnit", "cycles");
  W.field("droppedEvents", Dropped);
  W.endObject();
  W.endObject();
  OS << '\n';
}
