//===- ixp/Attribution.cpp -----------------------------------------------------==//

#include "ixp/Attribution.h"

using namespace sl;
using namespace sl::ixp;

std::vector<GroupTelemetry>
sl::ixp::attributeToGroups(const SimTelemetry &T,
                           const std::vector<CoreGroup> &Groups) {
  std::vector<GroupTelemetry> Out;
  Out.reserve(Groups.size());
  size_t Core = 0;
  for (const CoreGroup &G : Groups) {
    GroupTelemetry GT;
    GT.Name = G.Name;
    GT.OnXScale = G.OnXScale;
    unsigned N = G.OnXScale ? 1 : G.NumCores;
    for (unsigned K = 0; K != N && Core != T.MEs.size(); ++K, ++Core) {
      const METelemetry &ME = T.MEs[Core];
      ++GT.Cores;
      GT.Cycles += ME.Cycles;
      for (const ThreadTelemetry &Th : ME.Threads) {
        GT.Busy += Th.Busy;
        GT.MemStall += Th.MemStall;
        GT.RingWait += Th.RingWait;
        GT.Idle += Th.Idle;
        GT.Instrs += Th.Instrs;
      }
    }
    Out.push_back(std::move(GT));
  }
  return Out;
}
