//===- ixp/Simulator.cpp -----------------------------------------------------------==//

#include "ixp/Simulator.h"

#include "interp/Bits.h"

#include <algorithm>
#include <cassert>

using namespace sl;
using namespace sl::ixp;
using cg::MCond;
using cg::MemClass;
using cg::MInstr;
using cg::MOp;

namespace {

constexpr unsigned SpScratch = 0, SpSram = 1, SpDram = 2;

int64_t signed32(uint32_t V) { return static_cast<int32_t>(V); }

bool evalCond(MCond C, uint32_t A, uint32_t B) {
  switch (C) {
  case MCond::Eq:
    return A == B;
  case MCond::Ne:
    return A != B;
  case MCond::Ult:
    return A < B;
  case MCond::Ule:
    return A <= B;
  case MCond::Ugt:
    return A > B;
  case MCond::Uge:
    return A >= B;
  case MCond::Slt:
    return signed32(A) < signed32(B);
  case MCond::Sle:
    return signed32(A) <= signed32(B);
  case MCond::Sgt:
    return signed32(A) > signed32(B);
  case MCond::Sge:
    return signed32(A) >= signed32(B);
  }
  return false;
}

} // namespace

Simulator::Simulator(const ChipParams &P, const rts::MemoryMap &Map)
    : P(P), Map(Map) {
  Scratch.assign(1 << 16, 0);
  // SRAM: globals + metadata pool + per-thread stack overflow for every
  // possible thread.
  size_t SramSize = Map.StackSramBase +
                    size_t(P.ProgrammableMEs + 1) * P.ThreadsPerME *
                        Map.StackSramBytesPerThread +
                    4096;
  Sram.assign(SramSize, 0);
  Dram.assign(size_t(Map.NumPktHandles + 1) * Map.BufBytes + 64, 0);

  Units[SpScratch].P = P.Scratch;
  Units[SpScratch].BankNextFree.assign(std::max(1u, P.ScratchBanks), 0);
  Units[SpSram].P = P.Sram;
  Units[SpSram].BankNextFree.assign(std::max(1u, P.SramBanks), 0);
  Units[SpDram].P = P.Dram;
  Units[SpDram].BankNextFree.assign(std::max(1u, P.DramBanks), 0);

  Rings.resize(std::max(Map.NumRings, 2u));
  RingStats.resize(Rings.size());
  RingCap.assign(Rings.size(), P.RingCapacity);
  for (size_t R = 0; R != RingStats.size(); ++R) {
    RingStats[R].Capacity = P.RingCapacity;
    RingStats[R].Name = R == rts::RxRing   ? "rx"
                        : R == rts::TxRing ? "tx"
                                           : "ring" + std::to_string(R);
  }
  RingStats[rts::RxRing].Producer = "rx-device";
  RingStats[rts::TxRing].Consumer = "tx-device";
  // Handle 0 is the null handle; pool entries start at index 0 but we skip
  // the one whose address would be 0 (MetaPoolBase is never 0).
  for (unsigned I = 0; I != Map.NumPktHandles; ++I)
    FreeHandles.push_back(Map.MetaPoolBase + I * Map.MetaBlockBytes);
}

bool Simulator::configureRing(unsigned Ring, const RingConfig &C) {
  if (Ring >= Rings.size())
    return false;
  unsigned Cap = C.Capacity;
  if (C.Impl == RingImpl::NextNeighbor) {
    // NN rings are the one-hop register path: they exist only from ME i
    // to ME i+1 and hold at most the NN register file.
    if (C.ProducerME < 0 || C.ConsumerME != C.ProducerME + 1 ||
        static_cast<unsigned>(C.ConsumerME) >= P.ProgrammableMEs)
      return false;
    if (Cap == 0)
      Cap = P.NNRingWords;
    if (Cap > P.NNRingWords)
      return false;
  } else if (Cap == 0) {
    Cap = P.RingCapacity;
  }
  RingCap[Ring] = Cap;
  RingTelemetry &RS = RingStats[Ring];
  RS.Impl = C.Impl;
  RS.Capacity = Cap;
  if (!C.Name.empty())
    RS.Name = C.Name;
  if (!C.Producer.empty())
    RS.Producer = C.Producer;
  if (!C.Consumer.empty())
    RS.Consumer = C.Consumer;
  return true;
}

unsigned Simulator::threadsLoaded() const {
  unsigned N = 0;
  for (const auto &C : Cores)
    N += static_cast<unsigned>(C->Threads.size());
  return N;
}

bool Simulator::loadAggregate(const cg::FlatCode &Code,
                              const std::vector<unsigned> &InputRings,
                              unsigned Copies, bool OnXScale) {
  (void)InputRings; // The code itself polls its rings.
  if (!OnXScale && Code.CodeSlots > P.CodeStoreSlots)
    return false; // Aggregate exceeds the ME instruction store.
  unsigned N = OnXScale ? 1 : Copies;
  if (!OnXScale && MEsUsed + N > P.ProgrammableMEs)
    return false; // ME budget exceeded; load nothing.
  OwnedCode.push_back(std::make_unique<cg::FlatCode>(Code));
  const cg::FlatCode *Stored = OwnedCode.back().get();
  for (unsigned K = 0; K != N; ++K) {
    if (!OnXScale)
      ++MEsUsed;
    auto C = std::make_unique<Core>();
    C->Code = Stored;
    C->Threads.resize(OnXScale ? 1 : P.ThreadsPerME);
    C->LocalMem.assign(P.LocalMemWords, 0);
    C->XScale = OnXScale;
    C->Index = static_cast<unsigned>(Cores.size());
    Cores.push_back(std::move(C));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

std::vector<uint8_t> &Simulator::spaceBytes(unsigned Space) {
  return Space == SpScratch ? Scratch : Space == SpSram ? Sram : Dram;
}
const std::vector<uint8_t> &Simulator::spaceBytes(unsigned Space) const {
  return Space == SpScratch ? Scratch : Space == SpSram ? Sram : Dram;
}

uint32_t Simulator::readWord(unsigned Space, uint32_t Addr) const {
  const auto &B = spaceBytes(Space);
  assert(Addr % 4 == 0 && "unaligned word access");
  assert(Addr + 4 <= B.size() && "memory access out of range");
  return (uint32_t(B[Addr]) << 24) | (uint32_t(B[Addr + 1]) << 16) |
         (uint32_t(B[Addr + 2]) << 8) | uint32_t(B[Addr + 3]);
}

void Simulator::writeWord(unsigned Space, uint32_t Addr, uint32_t Val) {
  auto &B = spaceBytes(Space);
  assert(Addr % 4 == 0 && "unaligned word access");
  assert(Addr + 4 <= B.size() && "memory access out of range");
  B[Addr] = uint8_t(Val >> 24);
  B[Addr + 1] = uint8_t(Val >> 16);
  B[Addr + 2] = uint8_t(Val >> 8);
  B[Addr + 3] = uint8_t(Val);
}

uint64_t Simulator::memAccess(unsigned Space, unsigned Words,
                              MemClass Class, uint32_t Addr, bool Charged) {
  if (!Charged)
    return Now + 1; // XScale path: cached, uncounted (Table 1 counts MEs).
  ++Stats.Accesses[Space][static_cast<unsigned>(Class)];
  MemUnit &U = Units[Space];
  // Address-hashed bank selection (XOR-folded so strided buffers spread).
  size_t NB = U.BankNextFree.size();
  size_t Bank =
      NB == 1 ? 0
              : ((Addr >> 6) ^ (Addr >> 8) ^ (Addr >> 11)) & (NB - 1);
  uint64_t &NextFree = U.BankNextFree[Bank];
  uint64_t Start = std::max(Now, NextFree);
  double Occ = U.P.occupancy(Words);
  uint64_t Svc = static_cast<uint64_t>(Occ + 0.5);
  NextFree = Start + Svc;
  uint64_t Done = Start + Svc + U.P.LatencyCycles;

  // Controller telemetry: queueing delay, occupancy, issue-to-data
  // latency histogram and a backlog-derived queue-depth high-water mark
  // (requests ahead ~= backlog cycles / minimal occupancy).
  MemUnitTelemetry &MT = U.Telem;
  ++MT.Accesses;
  uint64_t Wait = Start - Now;
  MT.WaitCycles += Wait;
  MT.ServiceCycles += Svc;
  if (Wait) {
    uint64_t Ahead = static_cast<uint64_t>(double(Wait) / U.P.OccBase) + 1;
    MT.QueueHighWater = std::max(MT.QueueHighWater, Ahead);
  }
  uint64_t Lat = Done - Now;
  unsigned B = 0;
  while (B < MemUnitTelemetry::NumBuckets - 1 &&
         Lat >= MemUnitTelemetry::BucketBound[B])
    ++B;
  ++MT.LatencyHist[B];

  if (Trace) {
    TraceEvent E;
    E.Start = Now;
    E.Dur = static_cast<uint32_t>(Lat);
    E.Arg = Addr;
    E.ME = CurME;
    E.Thread = CurThread;
    E.K = TraceEvent::Mem;
    E.Space = static_cast<uint8_t>(Space);
    Trace->record(E);
  }
  return Done;
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

void Simulator::ringEnqueued(unsigned Ring, unsigned ME, unsigned Th) {
  RingTelemetry &RS = RingStats[Ring];
  ++RS.Enqueues;
  uint64_t Depth = Rings[Ring].size();
  RS.MaxDepth = std::max(RS.MaxDepth, Depth);
  if (Trace) {
    TraceEvent E;
    E.Start = Now;
    E.Arg = static_cast<uint32_t>(Depth);
    E.ME = static_cast<uint16_t>(ME);
    E.Thread = static_cast<uint16_t>(Th);
    E.K = TraceEvent::Ring;
    E.Space = static_cast<uint8_t>(Ring);
    Trace->record(E);
  }
}

void Simulator::ringDequeued(unsigned Ring, unsigned ME, unsigned Th) {
  RingTelemetry &RS = RingStats[Ring];
  ++RS.Dequeues;
  if (Trace) {
    TraceEvent E;
    E.Start = Now;
    E.Arg = static_cast<uint32_t>(Rings[Ring].size());
    E.ME = static_cast<uint16_t>(ME);
    E.Thread = static_cast<uint16_t>(Th);
    E.K = TraceEvent::Ring;
    E.Space = static_cast<uint8_t>(Ring);
    Trace->record(E);
  }
}

void Simulator::flushSlice(Core &C) {
  if (!Trace || C.SliceThread < 0)
    return;
  TraceEvent E;
  E.Start = C.SliceStart;
  E.Dur = static_cast<uint32_t>(C.SliceLast + 1 - C.SliceStart);
  E.Arg = C.SliceInstrs;
  E.ME = static_cast<uint16_t>(C.Index);
  E.Thread = static_cast<uint16_t>(C.SliceThread);
  E.K = TraceEvent::Exec;
  Trace->record(E);
  C.SliceThread = -1;
  C.SliceInstrs = 0;
}

SimTelemetry Simulator::telemetry() const {
  SimTelemetry T;
  T.Cycles = Now;
  T.MEs.reserve(Cores.size());
  for (const auto &CP : Cores) {
    const Core &C = *CP;
    METelemetry ME;
    ME.Index = C.Index;
    ME.XScale = C.XScale;
    ME.Cycles = Now;
    ME.IdleCycles = C.IdleCycles;
    ME.Threads.reserve(C.Threads.size());
    for (const Thread &Th : C.Threads) {
      ThreadTelemetry TT;
      TT.Busy = Th.Busy;
      TT.MemStall = Th.MemStall;
      TT.RingWait = Th.RingWait;
      TT.Instrs = Th.Instrs;
      TT.Aborts = Th.Aborts;
      // Stalls are attributed eagerly when ReadyAt is set; if the thread
      // is still blocked, the tail past the current cycle has not been
      // simulated yet — take it back so buckets cover exactly [0, Now).
      if (Th.ReadyAt > Now) {
        uint64_t Over = Th.ReadyAt - Now;
        uint64_t *Bucket = Th.LastStall == StallKind::Mem    ? &TT.MemStall
                           : Th.LastStall == StallKind::Ring ? &TT.RingWait
                                                             : &TT.Busy;
        *Bucket -= std::min(*Bucket, Over);
      }
      uint64_t Acct = TT.Busy + TT.MemStall + TT.RingWait;
      TT.Idle = Now >= Acct ? Now - Acct : 0;
      ME.Threads.push_back(TT);
    }
    T.MEs.push_back(std::move(ME));
  }
  for (unsigned S = 0; S != 3; ++S) {
    T.Units[S] = Units[S].Telem;
    T.Units[S].Banks = Units[S].BankNextFree.size();
  }
  T.Rings = RingStats;
  T.TraceEventsDropped = Trace ? Trace->dropped() : 0;
  return T;
}

//===----------------------------------------------------------------------===//
// Rx / Tx
//===----------------------------------------------------------------------===//

uint32_t Simulator::allocHandle() {
  if (FreeHandles.empty())
    return 0;
  uint32_t H = FreeHandles.back();
  FreeHandles.pop_back();
  return H;
}

void Simulator::freeHandle(uint32_t H) { FreeHandles.push_back(H); }

uint32_t Simulator::bufBaseOf(uint32_t H) const {
  unsigned Index = (H - Map.MetaPoolBase) / Map.MetaBlockBytes;
  return Map.BufBase + Index * Map.BufBytes;
}

void Simulator::rxInject() {
  if (!Traffic)
    return;
  auto &Ring = Rings[rts::RxRing];
  for (unsigned K = 0; K != P.RxBatchPerCycle; ++K) {
    if (Ring.size() >= RingCap[rts::RxRing]) {
      ++RingStats[rts::RxRing].FullStalls;
      return;
    }
    if (MaxInjected && Stats.RxInjected >= MaxInjected)
      return;
    const SimPacket *Pkt = Traffic(TrafficIndex);
    if (!Pkt)
      return;
    uint32_t H = allocHandle();
    if (!H)
      return; // All buffers in flight; try next cycle.
    ++TrafficIndex;

    uint32_t Buf = bufBaseOf(H) + Map.Headroom;
    assert(Pkt->Frame.size() + Map.Headroom <= Map.BufBytes &&
           "frame exceeds the packet buffer");
    // DMA the frame (Rx hardware path; not charged to the ME budget).
    std::copy(Pkt->Frame.begin(), Pkt->Frame.end(), Dram.begin() + Buf);
    writeWord(SpSram, H + 0, Buf);
    writeWord(SpSram, H + 4, 0);
    writeWord(SpSram, H + 8, static_cast<uint32_t>(Pkt->Frame.size()));
    // Zero user metadata, then stamp rx_port (bit 0, width 16).
    for (unsigned W = 0; W != Map.userMetaWords(); ++W)
      writeWord(SpSram, H + 12 + W * 4, 0);
    interp::writeBitsBE(&Sram[H + 12], 0, 16, Pkt->Port);
    Ring.push_back(H);
    ++Stats.RxInjected;
    ringEnqueued(rts::RxRing, RxDeviceId, 0);
    if (Trace) {
      TraceEvent E;
      E.Start = Now;
      E.Arg = H;
      E.ME = RxDeviceId;
      E.K = TraceEvent::Rx;
      Trace->record(E);
    }
  }
}

void Simulator::txDrain() {
  auto &Ring = Rings[rts::TxRing];
  while (!Ring.empty()) {
    uint32_t H = Ring.front();
    Ring.pop_front();
    ringDequeued(rts::TxRing, TxDeviceId, 0);
    uint32_t Buf = readWord(SpSram, H + 0);
    int32_t Head = static_cast<int32_t>(readWord(SpSram, H + 4));
    uint32_t Len = readWord(SpSram, H + 8);
    int64_t Bytes = int64_t(Len) - Head;
    if (Bytes < 0)
      Bytes = 0;
    ++Stats.TxPackets;
    Stats.TxBytes += static_cast<uint64_t>(Bytes);
    if (Trace) {
      TraceEvent E;
      E.Start = Now;
      E.Arg = static_cast<uint32_t>(Bytes);
      E.ME = TxDeviceId;
      E.K = TraceEvent::Tx;
      Trace->record(E);
    }
    if (Capture) {
      SimTxRecord R;
      int64_t Start = int64_t(Buf) + Head;
      R.Frame.assign(Dram.begin() + Start, Dram.begin() + Start + Bytes);
      R.Meta.assign(Sram.begin() + H + 12,
                    Sram.begin() + H + 12 + Map.userMetaWords() * 4);
      R.Cycle = Now;
      Captured.push_back(std::move(R));
    }
    freeHandle(H);
  }
}

//===----------------------------------------------------------------------===//
// RTS macros
//===----------------------------------------------------------------------===//

uint32_t Simulator::rtsPktCopy(Core &C, Thread &T, uint32_t H) {
  uint32_t NewH = allocHandle();
  if (!NewH)
    return 0; // Out of buffers; the copy is dropped.
  uint32_t SrcBuf = readWord(SpSram, H + 0);
  uint32_t NewBuf = bufBaseOf(NewH) + Map.Headroom;
  // Clone buffer bytes (whole used region incl. headroom).
  uint32_t SrcBase = bufBaseOf(H);
  uint32_t NewBase = bufBaseOf(NewH);
  std::copy(Dram.begin() + SrcBase, Dram.begin() + SrcBase + Map.BufBytes,
            Dram.begin() + NewBase);
  // Metadata: copy, then retarget buf_addr.
  for (unsigned W = 0; W * 4 < Map.MetaBlockBytes; ++W)
    writeWord(SpSram, NewH + W * 4, readWord(SpSram, H + W * 4));
  writeWord(SpSram, NewH + 0, NewBuf + (SrcBuf - (SrcBase + Map.Headroom)));
  // Charge: freelist pop/push (2 scratch) + buffer copy DMA (2 dram).
  uint64_t Done = memAccess(SpScratch, 1, MemClass::PktRing, 0);
  Done = std::max(Done, memAccess(SpScratch, 1, MemClass::PktRing, 0));
  Done = std::max(Done, memAccess(SpDram, 16, MemClass::PktData, SrcBase));
  Done = std::max(Done, memAccess(SpDram, 16, MemClass::PktData, NewBase));
  T.ReadyAt = Done;
  (void)C;
  return NewH;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

bool Simulator::execInstr(Core &C, Thread &T) {
  const MInstr &I = C.Code->Code[T.PC];
  ++Stats.Instrs;
  ++T.Instrs;
  ++T.Busy; // The issue cycle; blocked cycles are attributed below.
  StallKind SK = StallKind::None;
  int StallRing = -1; ///< Ring charged for a StallKind::Ring wait.
  unsigned NextPC = T.PC + 1;
  bool Block = false;

  auto gpr = [&](int R) -> uint32_t {
    assert(R >= 0 && R < 32 && "bad register");
    return T.Gpr[R];
  };
  auto setGpr = [&](int R, uint32_t V) {
    assert(R >= 0 && R < 32 && "bad register");
    T.Gpr[R] = V;
  };
  auto srcB = [&]() -> uint32_t {
    return I.SrcB >= 0 ? gpr(I.SrcB) : static_cast<uint32_t>(I.Imm);
  };

  // Thread-relative stack addressing.
  unsigned GlobalThread =
      C.Index * P.ThreadsPerME + (&T - C.Threads.data());

  switch (I.Op) {
  case MOp::Add:
    setGpr(I.Dst, gpr(I.SrcA) + srcB());
    break;
  case MOp::Sub:
    setGpr(I.Dst, gpr(I.SrcA) - srcB());
    break;
  case MOp::Mul:
    setGpr(I.Dst, gpr(I.SrcA) * srcB());
    T.ReadyAt = Now + 3;
    break;
  case MOp::And:
    setGpr(I.Dst, gpr(I.SrcA) & srcB());
    break;
  case MOp::Or:
    setGpr(I.Dst, gpr(I.SrcA) | srcB());
    break;
  case MOp::Xor:
    setGpr(I.Dst, gpr(I.SrcA) ^ srcB());
    break;
  case MOp::Shl: {
    uint32_t S = srcB();
    setGpr(I.Dst, S >= 32 ? 0 : gpr(I.SrcA) << S);
    break;
  }
  case MOp::Shr: {
    uint32_t S = srcB();
    setGpr(I.Dst, S >= 32 ? 0 : gpr(I.SrcA) >> S);
    break;
  }
  case MOp::Asr: {
    uint32_t S = srcB();
    int32_t V = static_cast<int32_t>(gpr(I.SrcA));
    setGpr(I.Dst, static_cast<uint32_t>(S >= 31 ? V >> 31 : V >> S));
    break;
  }
  case MOp::Mov:
    setGpr(I.Dst, gpr(I.SrcA));
    break;
  case MOp::MovImm:
    setGpr(I.Dst, static_cast<uint32_t>(I.Imm));
    break;
  case MOp::Set:
    setGpr(I.Dst, evalCond(I.Cond, gpr(I.SrcA), srcB()) ? 1 : 0);
    break;

  case MOp::Br:
    NextPC = static_cast<unsigned>(I.Target);
    T.ReadyAt = Now + 1 + P.BranchPenaltyCycles;
    ++T.Aborts;
    break;
  case MOp::BrCond:
    if (evalCond(I.Cond, gpr(I.SrcA), srcB())) {
      NextPC = static_cast<unsigned>(I.Target);
      T.ReadyAt = Now + 1 + P.BranchPenaltyCycles;
      ++T.Aborts;
    }
    break;
  case MOp::Halt:
    T.Halted = true;
    return true;

  case MOp::MemRead:
  case MOp::MemWrite: {
    unsigned Space = I.Space == cg::MSpace::Scratch  ? SpScratch
                     : I.Space == cg::MSpace::Sram   ? SpSram
                                                     : SpDram;
    int64_t Addr = I.SrcA >= 0 ? int64_t(gpr(I.SrcA)) : 0;
    Addr += I.Imm;
    if (I.ThreadStack)
      Addr += Map.StackSramBase +
              int64_t(GlobalThread) * Map.StackSramBytesPerThread;
    assert(Addr >= 0 && "negative memory address");
    assert(I.Xfer + I.Words <= 24 && "transfer register file overflow");
    if (I.Op == MOp::MemRead) {
      for (unsigned W = 0; W != I.Words; ++W)
        T.XferIn[I.Xfer + W] =
            readWord(Space, static_cast<uint32_t>(Addr) + W * 4);
    } else {
      for (unsigned W = 0; W != I.Words; ++W)
        writeWord(Space, static_cast<uint32_t>(Addr) + W * 4,
                  T.XferOut[I.Xfer + W]);
    }
    T.ReadyAt = memAccess(Space, I.Words, I.Class,
                          static_cast<uint32_t>(Addr), !C.XScale);
    SK = StallKind::Mem;
    Block = true;
    break;
  }

  case MOp::XferToGpr:
    setGpr(I.Dst, T.XferIn[I.Xfer]);
    break;
  case MOp::GprToXfer:
    T.XferOut[I.Xfer] = gpr(I.SrcA);
    break;

  case MOp::LmRead: {
    assert(I.StackSlot < 0 && "stack layout must run before simulation");
    int64_t W = I.SrcB >= 0 ? int64_t(gpr(I.SrcB)) : 0;
    W += I.Imm;
    if (I.ThreadStack)
      W += int64_t(&T - C.Threads.data()) * Map.LmStackWordsPerThread;
    assert(W >= 0 && W < int64_t(C.LocalMem.size()) && "LM out of range");
    setGpr(I.Dst, C.LocalMem[static_cast<size_t>(W)]);
    if (!I.LmFast)
      T.ReadyAt = Now + P.LmSlowCycles;
    break;
  }
  case MOp::LmWrite: {
    assert(I.StackSlot < 0 && "stack layout must run before simulation");
    int64_t W = I.SrcB >= 0 ? int64_t(gpr(I.SrcB)) : 0;
    W += I.Imm;
    if (I.ThreadStack)
      W += int64_t(&T - C.Threads.data()) * Map.LmStackWordsPerThread;
    assert(W >= 0 && W < int64_t(C.LocalMem.size()) && "LM out of range");
    C.LocalMem[static_cast<size_t>(W)] = gpr(I.SrcA);
    if (!I.LmFast)
      T.ReadyAt = Now + P.LmSlowCycles;
    break;
  }

  case MOp::CamLookup: {
    uint32_t Key = gpr(I.SrcA);
    unsigned Victim = 0;
    uint64_t Oldest = ~uint64_t(0);
    bool Hit = false;
    unsigned HitEntry = 0;
    for (unsigned E = 0; E != I.CamSize; ++E) {
      CamEntry &CE = C.Cam[I.CamBase + E];
      if (CE.Valid && CE.Tag == Key) {
        Hit = true;
        HitEntry = E;
        CE.Lru = LruTick++;
        break;
      }
      uint64_t Age = CE.Valid ? CE.Lru : 0;
      if (Age < Oldest) {
        Oldest = Age;
        Victim = E;
      }
    }
    setGpr(I.Dst, Hit ? (1u << 8) | HitEntry : Victim);
    break;
  }
  case MOp::CamWrite: {
    unsigned E = gpr(I.SrcB) & 0xFF;
    assert(E < I.CamSize && "CAM entry outside partition");
    CamEntry &CE = C.Cam[I.CamBase + E];
    CE.Tag = gpr(I.SrcA);
    CE.Valid = true;
    CE.Lru = LruTick++;
    break;
  }
  case MOp::CamFlush:
    for (unsigned E = 0; E != I.CamSize; ++E)
      C.Cam[I.CamBase + E].Valid = false;
    break;

  case MOp::RingGet: {
    auto &Ring = Rings[I.Ring];
    uint32_t H = 0;
    if (!Ring.empty()) {
      H = Ring.front();
      Ring.pop_front();
      ringDequeued(I.Ring, CurME, CurThread);
    } else {
      ++RingStats[I.Ring].EmptyGets;
    }
    setGpr(I.Dst, H);
    // Next-neighbor rings are register reads: a few cycles, no shared
    // scratch-controller transaction (and no Table-1 access counted).
    if (RingStats[I.Ring].Impl == RingImpl::NextNeighbor)
      T.ReadyAt = C.XScale ? Now + 1 : Now + P.NNRingAccessCycles;
    else
      T.ReadyAt = memAccess(SpScratch, 1, I.Class, I.Ring * 64, !C.XScale);
    SK = StallKind::Ring;
    StallRing = static_cast<int>(I.Ring);
    Block = true;
    break;
  }
  case MOp::RingPut: {
    auto &Ring = Rings[I.Ring];
    if (Ring.size() < RingCap[I.Ring]) {
      Ring.push_back(gpr(I.SrcA));
      ringEnqueued(I.Ring, CurME, CurThread);
    } else {
      freeHandle(gpr(I.SrcA)); // Back-pressure drop (rare; counted).
      ++Stats.RxDroppedFull;
      ++RingStats[I.Ring].FullStalls;
    }
    if (RingStats[I.Ring].Impl == RingImpl::NextNeighbor)
      T.ReadyAt = C.XScale ? Now + 1 : Now + P.NNRingAccessCycles;
    else
      T.ReadyAt = memAccess(SpScratch, 1, I.Class, I.Ring * 64, !C.XScale);
    SK = StallKind::Ring;
    StallRing = static_cast<int>(I.Ring);
    Block = true;
    break;
  }

  case MOp::AtomicTestSet: {
    uint32_t Addr = static_cast<uint32_t>(I.Imm);
    uint32_t Old = readWord(SpScratch, Addr);
    writeWord(SpScratch, Addr, 1);
    setGpr(I.Dst, Old);
    T.ReadyAt = memAccess(SpScratch, 1, I.Class, Addr, !C.XScale);
    SK = StallKind::Mem;
    Block = true;
    break;
  }
  case MOp::AtomicClear:
    writeWord(SpScratch, static_cast<uint32_t>(I.Imm), 0);
    T.ReadyAt = memAccess(SpScratch, 1, I.Class,
                          static_cast<uint32_t>(I.Imm), !C.XScale);
    SK = StallKind::Mem;
    Block = true;
    break;

  case MOp::RtsPktCopy:
    setGpr(I.Dst, rtsPktCopy(C, T, gpr(I.SrcA)));
    SK = StallKind::Mem;
    Block = true;
    break;
  case MOp::RtsPktDrop:
    freeHandle(gpr(I.SrcA));
    T.ReadyAt = memAccess(SpScratch, 1, MemClass::PktRing, 0, !C.XScale);
    SK = StallKind::Mem;
    Block = true;
    break;

  case MOp::CtxArb:
    T.ReadyAt = Now + 1;
    Block = true;
    break;
  }

  // Attribute the cycles this thread will now spend blocked. The tail
  // past the end of the run is clamped back out in telemetry().
  if (T.ReadyAt > Now + 1) {
    uint64_t StallCycles = T.ReadyAt - (Now + 1);
    if (SK == StallKind::Mem) {
      T.MemStall += StallCycles;
    } else if (SK == StallKind::Ring) {
      T.RingWait += StallCycles;
      if (StallRing >= 0)
        RingStats[StallRing].WaitCycles += StallCycles;
    } else {
      T.Busy += StallCycles; // Execution latency (mul, branch, slow LM).
    }
  }
  T.LastStall = SK;

  T.PC = NextPC;
  assert(T.PC < C.Code->Code.size() && "PC ran off the end");
  return Block;
}

void Simulator::stepCore(Core &C) {
  // Non-preemptive: run the current thread if it is ready; otherwise
  // rotate round-robin to the next ready thread.
  unsigned N = static_cast<unsigned>(C.Threads.size());
  for (unsigned Tried = 0; Tried != N; ++Tried) {
    Thread &T = C.Threads[C.Cur];
    if (!T.Halted && T.ReadyAt <= Now) {
      CurME = static_cast<uint16_t>(C.Index);
      CurThread = static_cast<uint16_t>(C.Cur);
      if (Trace) {
        // Extend or open this thread's execution slice.
        if (C.SliceThread == static_cast<int>(C.Cur) &&
            C.SliceLast + 1 == Now) {
          C.SliceLast = Now;
          ++C.SliceInstrs;
        } else {
          flushSlice(C);
          C.SliceThread = static_cast<int>(C.Cur);
          C.SliceStart = C.SliceLast = Now;
          C.SliceInstrs = 1;
        }
      }
      bool Blocked = execInstr(C, T);
      if (Blocked)
        C.Cur = (C.Cur + 1) % N; // Voluntary swap point.
      return;
    }
    C.Cur = (C.Cur + 1) % N;
  }
  // Everyone waiting: idle cycle.
  ++C.IdleCycles;
}

SimStats Simulator::run(uint64_t Cycles) {
  uint64_t End = Now + Cycles;
  while (Now < End) {
    rxInject();
    for (auto &C : Cores)
      stepCore(*C);
    txDrain();
    ++Now;
    if (MaxInjected && Stats.RxInjected >= MaxInjected && drained())
      break;
  }
  if (Trace)
    for (auto &C : Cores)
      flushSlice(*C);
  Stats.Cycles = Now;
  return Stats;
}

bool Simulator::drained() const {
  for (const auto &R : Rings)
    if (!R.empty())
      return false;
  return FreeHandles.size() == Map.NumPktHandles;
}

//===----------------------------------------------------------------------===//
// Control plane
//===----------------------------------------------------------------------===//

void Simulator::initGlobals(const ir::Module &M) {
  for (const auto &G : M.globals()) {
    const auto &Init = G->init();
    for (size_t I = 0; I != Init.size(); ++I)
      writeGlobal(G.get(), I, Init[I]);
  }
}

void Simulator::writeGlobal(const ir::Global *G, uint64_t Index,
                            uint64_t Value) {
  unsigned EW = rts::MemoryMap::elemWords(G);
  bool IsScratch = G->Level == ir::MemLevel::Scratch;
  uint32_t Base = IsScratch ? Map.ScratchGlobalBase.at(G)
                            : Map.GlobalBase.at(G);
  unsigned Space = IsScratch ? SpScratch : SpSram;
  uint32_t Addr = Base + static_cast<uint32_t>(Index) * EW * 4;
  if (EW == 2) {
    writeWord(Space, Addr, static_cast<uint32_t>(Value >> 32));
    writeWord(Space, Addr + 4, static_cast<uint32_t>(Value));
  } else {
    writeWord(Space, Addr, static_cast<uint32_t>(Value));
  }
  // Delayed-update store path for cached tables: bump the version word.
  if (const rts::CacheCfg *CC = Map.cacheFor(G))
    writeWord(SpScratch, CC->VersionAddr,
              readWord(SpScratch, CC->VersionAddr) + 1);
}

uint64_t Simulator::readGlobal(const ir::Global *G, uint64_t Index) const {
  unsigned EW = rts::MemoryMap::elemWords(G);
  bool IsScratch = G->Level == ir::MemLevel::Scratch;
  uint32_t Base = IsScratch ? Map.ScratchGlobalBase.at(G)
                            : Map.GlobalBase.at(G);
  unsigned Space = IsScratch ? SpScratch : SpSram;
  uint32_t Addr = Base + static_cast<uint32_t>(Index) * EW * 4;
  if (EW == 2)
    return (uint64_t(readWord(Space, Addr)) << 32) |
           readWord(Space, Addr + 4);
  return readWord(Space, Addr);
}
