//===- ixp/Attribution.h - aggregate-level telemetry attribution -------------==//
//
// The simulator reports telemetry per core (per ME), but the compiler
// reasons in aggregates. loadAggregate creates cores in call order — one
// per replicated copy — so a loaded plan induces a partition of the core
// list into contiguous groups. attributeToGroups() folds a SimTelemetry
// snapshot over that partition, giving per-aggregate cycle buckets
// (busy / memory stall / ring wait / idle) that the driver's feedback
// loop turns into a MeasuredCosts overlay (driver/Feedback.h).
//
//===----------------------------------------------------------------------===//

#ifndef SL_IXP_ATTRIBUTION_H
#define SL_IXP_ATTRIBUTION_H

#include "ixp/Telemetry.h"

#include <string>
#include <vector>

namespace sl::ixp {

/// One loaded aggregate's claim on the core list: the next \p NumCores
/// simulated cores (in load order) belong to it.
struct CoreGroup {
  std::string Name;      ///< Aggregate label (root PPF name).
  unsigned NumCores = 1; ///< Copies loaded (always 1 for XScale).
  bool OnXScale = false;
};

/// Cycle accounting summed over one group's cores and threads.
struct GroupTelemetry {
  std::string Name;
  bool OnXScale = false;
  unsigned Cores = 0;
  uint64_t Cycles = 0; ///< Summed simulated cycles (Cores x elapsed).
  uint64_t Busy = 0;
  uint64_t MemStall = 0;
  uint64_t RingWait = 0;
  uint64_t Idle = 0;
  uint64_t Instrs = 0;

  /// Fraction of the group's cycle budget spent issuing instructions.
  double utilization() const {
    return Cycles ? double(Busy) / double(Cycles) : 0.0;
  }
};

/// Partitions \p T.MEs over \p Groups in order. Groups beyond the number
/// of simulated cores get zeroed entries; surplus cores are ignored (the
/// caller's plan must match what was actually loaded).
std::vector<GroupTelemetry>
attributeToGroups(const SimTelemetry &T, const std::vector<CoreGroup> &Groups);

} // namespace sl::ixp

#endif // SL_IXP_ATTRIBUTION_H
