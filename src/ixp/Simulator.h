//===- ixp/Simulator.h - cycle-approximate IXP2400 simulator ---------------------==//
//
// Executes MEIR aggregates on a model of the IXP2400: multithreaded MEs
// with non-preemptive round-robin arbitration, shared Scratch/SRAM/DRAM
// controllers with queueing (the source of the paper's bandwidth
// saturation), per-ME Local Memory and CAM, scratch rings, and ideal
// Rx/Tx devices on their two dedicated MEs.
//
//===----------------------------------------------------------------------===//

#ifndef SL_IXP_SIMULATOR_H
#define SL_IXP_SIMULATOR_H

#include "cg/MEIR.h"
#include "ixp/ChipParams.h"
#include "ixp/Telemetry.h"
#include "rts/MemoryMap.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sl::ixp {

/// One frame offered by the traffic generator.
struct SimPacket {
  std::vector<uint8_t> Frame;
  uint16_t Port = 0;
};

/// A transmitted packet captured for functional comparison.
struct SimTxRecord {
  std::vector<uint8_t> Frame;
  std::vector<uint8_t> Meta;
  uint64_t Cycle = 0; ///< Transmit time.
};

struct SimStats {
  uint64_t Cycles = 0;
  uint64_t Instrs = 0;
  uint64_t TxPackets = 0;
  uint64_t TxBytes = 0;
  uint64_t RxInjected = 0;
  uint64_t RxDroppedFull = 0;

  /// [space 0=Scratch 1=Sram 2=Dram][MemClass] access counts.
  uint64_t Accesses[3][7] = {};

  double forwardingGbps(double ClockGHz) const {
    if (Cycles == 0)
      return 0.0;
    return double(TxBytes) * 8.0 * ClockGHz / double(Cycles);
  }
  /// Per processed packet (received; drops do the work too).
  double perPacket(unsigned Space, cg::MemClass Class) const {
    if (RxInjected == 0)
      return 0.0;
    return double(Accesses[Space][static_cast<unsigned>(Class)]) /
           double(RxInjected);
  }
  double perPacketSpace(unsigned Space) const {
    double N = 0;
    for (unsigned C = 0; C != 7; ++C)
      N += double(Accesses[Space][C]);
    return RxInjected ? N / double(RxInjected) : 0.0;
  }
};

/// How one ring is realized and labelled. Applied by configureRing();
/// rings default to anonymous scratch rings at ChipParams::RingCapacity.
struct RingConfig {
  RingImpl Impl = RingImpl::Scratch;
  unsigned Capacity = 0; ///< 0 = implementation default (scratch ring
                         ///< capacity, or NNRingWords for NN).
  std::string Name;
  std::string Producer;
  std::string Consumer;
  // Physical ME slots of the endpoints. NN rings exist only between
  // physically adjacent MEs (producer slot + 1 == consumer slot); a
  // configureRing() request violating that is rejected.
  int ProducerME = -1;
  int ConsumerME = -1;
};

/// The simulated chip.
class Simulator {
public:
  Simulator(const ChipParams &P, const rts::MemoryMap &Map);

  /// Declares \p Ring's implementation, capacity and labels. Returns
  /// false without changing anything when the request is invalid — in
  /// particular a next-neighbor ring whose endpoints are not physically
  /// adjacent MEs (ME i -> ME i+1) or that exceeds the NN register file.
  bool configureRing(unsigned Ring, const RingConfig &C);

  /// Loads \p Code onto \p Copies MEs. XScale aggregates run on a
  /// dedicated management core instead. Returns false (loading nothing)
  /// when the ME budget or the per-ME instruction store would be
  /// exceeded — callers decide whether that is fatal.
  bool loadAggregate(const cg::FlatCode &Code,
                     const std::vector<unsigned> &InputRings, unsigned Copies,
                     bool OnXScale = false);

  /// Installs the traffic source. Infinite backlog: the generator is
  /// consulted whenever Rx has room. Return null to stop offering.
  void setTraffic(std::function<const SimPacket *(uint64_t Index)> Gen) {
    Traffic = std::move(Gen);
  }

  /// Limits Rx to at most \p N injected packets (0 = unlimited).
  void setMaxInjected(uint64_t N) { MaxInjected = N; }

  /// Records transmitted frames for functional comparison.
  void enableCapture() { Capture = true; }
  const std::vector<SimTxRecord> &captured() const { return Captured; }

  // Control-plane (XScale / host) access to global tables. Writes to SWC
  // cached globals bump the scratch version word (delayed-update store
  // path).
  void writeGlobal(const ir::Global *G, uint64_t Index, uint64_t Value);
  uint64_t readGlobal(const ir::Global *G, uint64_t Index) const;
  void initGlobals(const ir::Module &M);

  /// Runs for \p Cycles cycles (or until Rx exhausted and pipeline idle in
  /// finite mode).
  SimStats run(uint64_t Cycles);

  /// True when no packets are in flight and all rings are empty.
  bool drained() const;

  unsigned threadsLoaded() const;

  /// Builds a consistent snapshot of the per-component counters (stall
  /// attribution is clamped to the current cycle, idle derived so each
  /// thread's buckets sum to the ME's cycle count). Cheap; callable
  /// mid-run.
  SimTelemetry telemetry() const;

  /// Enables event tracing into a bounded buffer (recording costs one
  /// branch per event when enabled and nothing when disabled; simulated
  /// behavior and SimStats are unaffected either way).
  void enableTrace(size_t MaxEvents = 1u << 20) {
    Trace = std::make_unique<Tracer>(MaxEvents);
  }
  Tracer *tracer() { return Trace.get(); }
  const Tracer *tracer() const { return Trace.get(); }

private:
  struct Thread {
    unsigned PC = 0;
    uint32_t Gpr[32] = {};
    uint32_t XferIn[24] = {};
    uint32_t XferOut[24] = {};
    uint64_t ReadyAt = 0;
    bool Halted = false;

    // Cycle accounting (see Telemetry.h). Stalls are attributed eagerly
    // when ReadyAt is set; telemetry() clamps the tail that lies beyond
    // the current cycle using LastStall.
    uint64_t Busy = 0;
    uint64_t MemStall = 0;
    uint64_t RingWait = 0;
    uint64_t Instrs = 0;
    uint64_t Aborts = 0;
    StallKind LastStall = StallKind::None;
  };

  struct CamEntry {
    uint32_t Tag = 0;
    bool Valid = false;
    uint64_t Lru = 0;
  };

  struct Core {
    const cg::FlatCode *Code = nullptr;
    std::vector<Thread> Threads;
    unsigned Cur = 0;
    CamEntry Cam[16];
    std::vector<uint32_t> LocalMem;
    bool XScale = false;
    unsigned Index = 0;

    uint64_t IdleCycles = 0; ///< Cycles with no runnable thread.
    // Open execution slice for the tracer (contiguous instructions by one
    // thread); flushed on thread switch, gap, or trace export.
    int SliceThread = -1;
    uint64_t SliceStart = 0;
    uint64_t SliceLast = 0;
    uint32_t SliceInstrs = 0;
  };

  struct MemUnit {
    MemUnitParams P;
    std::vector<uint64_t> BankNextFree;
    MemUnitTelemetry Telem;
  };

  // Execution.
  void stepCore(Core &C);
  bool execInstr(Core &C, Thread &T);
  uint64_t memAccess(unsigned Space, unsigned Words, cg::MemClass Class,
                     uint32_t Addr, bool Charged = true);
  uint32_t readWord(unsigned Space, uint32_t Addr) const;
  void writeWord(unsigned Space, uint32_t Addr, uint32_t Val);
  std::vector<uint8_t> &spaceBytes(unsigned Space);
  const std::vector<uint8_t> &spaceBytes(unsigned Space) const;

  // Rx / Tx devices.
  void rxInject();
  void txDrain();
  uint32_t allocHandle();
  void freeHandle(uint32_t H);
  uint32_t bufBaseOf(uint32_t H) const;

  // RTS macros.
  uint32_t rtsPktCopy(Core &C, Thread &T, uint32_t H);

  ChipParams P;
  rts::MemoryMap Map;

  std::vector<uint8_t> Scratch, Sram, Dram;
  MemUnit Units[3];

  std::vector<std::unique_ptr<Core>> Cores;
  std::vector<std::unique_ptr<cg::FlatCode>> OwnedCode;
  std::vector<std::deque<uint32_t>> Rings;
  std::vector<RingTelemetry> RingStats; ///< Holds per-ring identity too.
  std::vector<unsigned> RingCap;        ///< Effective capacity per ring.
  std::vector<uint32_t> FreeHandles;

  std::function<const SimPacket *(uint64_t)> Traffic;
  uint64_t TrafficIndex = 0;
  uint64_t MaxInjected = 0;
  bool Capture = false;
  std::vector<SimTxRecord> Captured;

  uint64_t Now = 0;
  SimStats Stats;
  uint64_t LruTick = 1;
  unsigned MEsUsed = 0;

  std::unique_ptr<Tracer> Trace;
  // Issuing context, so memAccess can stamp trace events with the ME /
  // thread that initiated the transaction. Device-initiated work (Rx/Tx
  // DMA) uses the pseudo-IDs below.
  uint16_t CurME = RxDeviceId;
  uint16_t CurThread = 0;
  static constexpr uint16_t RxDeviceId = 1000;
  static constexpr uint16_t TxDeviceId = 1001;

  void flushSlice(Core &C);
  void ringEnqueued(unsigned Ring, unsigned ME, unsigned Th);
  void ringDequeued(unsigned Ring, unsigned ME, unsigned Th);
};

} // namespace sl::ixp

#endif // SL_IXP_SIMULATOR_H
