//===- ixp/Telemetry.h - simulator observability layer ---------------------------==//
//
// Structured per-component counters for the IXP model, answering the
// questions the paper's evaluation turns on (Figs. 6, 13-15, Table 1):
// which ME stalls and on what, which memory controller saturates, where
// rings back up. Three pieces:
//
//  * SimTelemetry — a consistent snapshot of per-ME/per-thread cycle
//    accounting (busy / memory-stall / ring-wait / idle buckets),
//    per-memory-unit queueing telemetry with a fixed-bucket latency
//    histogram, and per-ring occupancy counters. Returned by
//    Simulator::telemetry() alongside the existing SimStats.
//
//  * Tracer — an optional bounded in-memory event recorder (scheduling
//    slices, memory transactions, ring operations, Rx/Tx). The simulator
//    only touches it behind `if (Trace)` so the hot path is unaffected
//    when tracing is off. Events export as Chrome trace format JSON
//    (loadable in chrome://tracing or Perfetto) where each ME is a
//    process and each thread a track.
//
//  * JSON exporters — writeTelemetryJson() for the counter snapshot
//    (schema documented in docs/observability.md).
//
//===----------------------------------------------------------------------===//

#ifndef SL_IXP_TELEMETRY_H
#define SL_IXP_TELEMETRY_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sl::support {
class JsonWriter;
}

namespace sl::ixp {

struct SimStats;

/// What a blocked thread is waiting on; selects the stall bucket that
/// accumulates the wait cycles.
enum class StallKind : uint8_t {
  None, ///< Not blocked (or execution latency, charged to Busy).
  Mem,  ///< Outstanding Scratch/SRAM/DRAM transaction.
  Ring, ///< Scratch-ring get/put in flight.
};

/// Cycle accounting for one hardware thread. Every simulated cycle of the
/// owning ME lands in exactly one bucket, so
///   Busy + MemStall + RingWait + Idle == METelemetry::Cycles.
struct ThreadTelemetry {
  uint64_t Busy = 0;     ///< Issued an instruction (incl. exec latency).
  uint64_t MemStall = 0; ///< Waiting on a memory controller.
  uint64_t RingWait = 0; ///< Waiting on a scratch-ring operation.
  uint64_t Idle = 0;     ///< Ready-but-unscheduled or halted.
  uint64_t Instrs = 0;   ///< Instructions executed.
  uint64_t Aborts = 0;   ///< Taken branches (pipeline aborts on the ME).

  uint64_t total() const { return Busy + MemStall + RingWait + Idle; }
};

/// One microengine (or the XScale management core).
struct METelemetry {
  unsigned Index = 0;
  bool XScale = false;
  uint64_t Cycles = 0;     ///< Cycles this core was simulated.
  uint64_t IdleCycles = 0; ///< Cycles with no runnable thread at all.
  std::vector<ThreadTelemetry> Threads;

  /// Fraction of cycles the ME issued an instruction (one thread can
  /// issue per cycle, so this is the classic "ME utilization").
  double utilization() const {
    if (Cycles == 0)
      return 0.0;
    uint64_t Busy = 0;
    for (const ThreadTelemetry &T : Threads)
      Busy += T.Busy;
    return double(Busy) / double(Cycles);
  }
};

/// One memory controller (Scratch / SRAM / DRAM).
struct MemUnitTelemetry {
  /// Latency histogram bucket upper bounds, in cycles; the last bucket is
  /// open-ended. Fixed so exports are comparable across runs.
  static constexpr unsigned NumBuckets = 8;
  static constexpr uint64_t BucketBound[NumBuckets - 1] = {
      32, 64, 128, 256, 512, 1024, 2048};

  uint64_t Accesses = 0;       ///< Requests issued to this unit.
  uint64_t WaitCycles = 0;     ///< Total queueing delay before service.
  uint64_t ServiceCycles = 0;  ///< Total occupancy consumed (all banks).
  uint64_t QueueHighWater = 0; ///< Max requests ahead of an issue (est.).
  uint64_t Banks = 1;          ///< Parallel banks behind the controller.
  uint64_t LatencyHist[NumBuckets] = {}; ///< Issue-to-data latency.

  double avgWait() const {
    return Accesses ? double(WaitCycles) / double(Accesses) : 0.0;
  }
  /// Fraction of available bank-time spent serving; ~1.0 means the
  /// controller is the bottleneck (the paper's memory wall).
  double saturation(uint64_t Cycles) const {
    if (Cycles == 0 || Banks == 0)
      return 0.0;
    return double(ServiceCycles) / (double(Cycles) * double(Banks));
  }
};

/// How a ring is realized on the chip. Scratch rings go through the shared
/// scratch controller; next-neighbor rings are per-adjacent-ME-pair
/// register files with no shared-unit occupancy.
enum class RingImpl : uint8_t {
  Scratch,
  NextNeighbor,
};

inline const char *ringImplName(RingImpl I) {
  return I == RingImpl::NextNeighbor ? "nn" : "scratch";
}

/// One ring (scratch or next-neighbor).
struct RingTelemetry {
  uint64_t Enqueues = 0;
  uint64_t Dequeues = 0;
  uint64_t MaxDepth = 0;    ///< High-water occupancy.
  uint64_t FullStalls = 0;  ///< Enqueue attempts refused: ring at capacity.
  uint64_t EmptyGets = 0;   ///< Gets that returned the null handle.
  uint64_t WaitCycles = 0;  ///< Thread cycles stalled on this ring's ops.

  // Identity (filled by Simulator::configureRing; defaults for the two
  // device rings and any unconfigured channel ring).
  RingImpl Impl = RingImpl::Scratch;
  uint64_t Capacity = 0; ///< Handles the ring holds before refusing puts.
  std::string Name;      ///< Channel name ("rx"/"tx" for device rings).
  std::string Producer;  ///< Producing aggregate (or device) label.
  std::string Consumer;  ///< Consuming aggregate (or device) label.
};

/// Snapshot of everything above. Cheap to copy; taken on demand so the
/// simulator can keep running afterwards.
struct SimTelemetry {
  uint64_t Cycles = 0;
  std::vector<METelemetry> MEs;
  MemUnitTelemetry Units[3]; ///< [0]=Scratch [1]=SRAM [2]=DRAM.
  std::vector<RingTelemetry> Rings;
  uint64_t TraceEventsDropped = 0; ///< Tracer buffer overflow count.

  static const char *unitName(unsigned Space) {
    return Space == 0 ? "scratch" : Space == 1 ? "sram" : "dram";
  }
};

//===----------------------------------------------------------------------===//
// Event tracing
//===----------------------------------------------------------------------===//

/// A single trace event. Compact (32 bytes) because traces hold millions.
struct TraceEvent {
  enum Kind : uint8_t {
    Exec, ///< Contiguous run of instructions by one thread. Arg = instrs.
    Mem,  ///< Memory transaction. Space = unit, Arg = address.
    Ring, ///< Ring get/put. Space = ring index, Arg = depth after.
    Rx,   ///< Packet injected. Arg = handle.
    Tx,   ///< Packet transmitted. Arg = bytes.
  };
  uint64_t Start = 0; ///< Cycle the event began.
  uint32_t Dur = 0;   ///< Duration in cycles (0 = instant).
  uint32_t Arg = 0;
  uint16_t ME = 0;
  uint16_t Thread = 0;
  Kind K = Exec;
  uint8_t Space = 0;
};

/// Bounded in-memory event buffer. Recording is a bounds check plus a
/// push_back; events past the cap are counted but dropped (the trace
/// stays a prefix of the run rather than a random sample).
class Tracer {
public:
  explicit Tracer(size_t MaxEvents = 1u << 20) : Cap(MaxEvents) {
    Events.reserve(Cap < 4096 ? Cap : 4096);
  }

  void record(const TraceEvent &E) {
    if (Events.size() < Cap)
      Events.push_back(E);
    else
      ++Dropped;
  }

  const std::vector<TraceEvent> &events() const { return Events; }
  uint64_t dropped() const { return Dropped; }

  /// Writes the whole buffer as Chrome trace format JSON: one "process"
  /// per ME (plus pseudo-processes for Rx/Tx devices), one "thread" track
  /// per hardware thread, "X" complete events with ts/dur in cycles.
  void exportChromeTrace(std::ostream &OS) const;

private:
  size_t Cap;
  std::vector<TraceEvent> Events;
  uint64_t Dropped = 0;
};

/// Writes the telemetry snapshot (plus the aggregate SimStats) as JSON.
/// Schema: docs/observability.md.
void writeTelemetryJson(std::ostream &OS, const SimStats &Stats,
                        const SimTelemetry &Telem);

/// Same, but emits the object through an in-flight writer so callers
/// (e.g. the benchmark harness) can nest it inside a larger document.
void writeTelemetry(support::JsonWriter &W, const SimStats &Stats,
                    const SimTelemetry &Telem);

} // namespace sl::ixp

#endif // SL_IXP_TELEMETRY_H
