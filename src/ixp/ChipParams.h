//===- ixp/ChipParams.h - IXP2400 model parameters ------------------------------==//
//
// Calibration. The paper's Figure 6 measures the maximum forwarding rate
// of six MEs running access-only loops on a real IXP2400: ~2.5 Gbps with
// 64B packets is sustained at 64 Scratch, 8 SRAM, or 2 DRAM accesses per
// packet, with fractionally lower rates at the widest access sizes. With
// a 600 MHz clock and 64B packets, 2.5 Gbps is ~4.88 Mpps, so the
// controller occupancies below are chosen as
//     occ = 600e6 / (4.88e6 * accesses_per_packet)
// Scratch: 600/312.5 = 1.92, SRAM: 600/39.1 = 15.4, DRAM: 600/9.77 = 61.4
// cycles per access, plus a per-extra-word term for wide accesses.
//
//===----------------------------------------------------------------------===//

#ifndef SL_IXP_CHIPPARAMS_H
#define SL_IXP_CHIPPARAMS_H

namespace sl::ixp {

/// One memory controller's service model: a request occupies the unit for
/// occupancy(words) cycles and its data returns occupancy + latency cycles
/// after service starts.
struct MemUnitParams {
  unsigned LatencyCycles = 90;
  double OccBase = 15.4;        ///< Cycles for a minimal access.
  double OccPerExtraUnit = 1.5; ///< Per additional transfer unit.
  unsigned WordsPerUnit = 1;    ///< Transfer unit in 32-bit words.

  double occupancy(unsigned Words) const {
    unsigned Units = (Words + WordsPerUnit - 1) / WordsPerUnit;
    unsigned Extra = Units > 1 ? Units - 1 : 0;
    return OccBase + OccPerExtraUnit * Extra;
  }
};

struct ChipParams {
  unsigned ProgrammableMEs = 6; ///< Of 8; Rx and Tx own the other two.
  unsigned ThreadsPerME = 8;
  double ClockGHz = 0.6;
  unsigned CodeStoreSlots = 4096;
  unsigned LocalMemWords = 640;

  MemUnitParams Scratch{60, 1.92, 0.10, 1};
  MemUnitParams Sram{90, 15.36, 0.50, 1};
  MemUnitParams Dram{120, 61.44, 2.00, 2}; // Unit = one 8-byte dword.

  // Bank-level parallelism: the IXP2400 DRAM is banked DDR and there are
  // two SRAM channels. A fixed-address loop (the Figure 6 microbenchmark)
  // saturates a single bank at the occupancies above; real applications
  // spread packet buffers and tables across banks — the paper's
  // observation that the access-count/forwarding-rate relationship is
  // "only rough".
  unsigned DramBanks = 4;
  unsigned SramBanks = 2;
  unsigned ScratchBanks = 1;

  unsigned RingCapacity = 128;
  unsigned RxBatchPerCycle = 8;
  unsigned BranchPenaltyCycles = 1;
  unsigned LmSlowCycles = 3; ///< Non-offset-addressed Local Memory access.

  // Next-neighbor registers: each ME's 128-word register file is writable
  // by the physically previous ME only (ME i -> ME i+1). Used as a ring,
  // a put/get is a plain register access — a few cycles, no shared
  // controller, no occupancy charged to the scratch unit.
  unsigned NNRingWords = 128;      ///< NN register file, words per ME pair.
  unsigned NNRingAccessCycles = 3; ///< Put or get completion latency.
};

} // namespace sl::ixp

#endif // SL_IXP_CHIPPARAMS_H
