//===- map/Aggregation.h - aggregate formation (paper Sec. 5.1) --------------==//
//
// Aggregation maps PPFs onto processing elements to maximize the packet
// forwarding rate. The throughput model is Equation 1:
//
//     t  ∝  n * k / p
//
// with n MEs, p pipeline stages (aggregates) and k the throughput of the
// slowest stage. The formation algorithm follows the paper's Fig. 7
// pseudo-code: repeatedly duplicate a dominating stage or merge the
// aggregate pair with the highest channel cost, subject to the per-ME code
// store limit; map infrequently executed aggregates to the XScale; then
// replicate the whole pipeline over the remaining MEs.
//
//===----------------------------------------------------------------------===//

#ifndef SL_MAP_AGGREGATION_H
#define SL_MAP_AGGREGATION_H

#include "ir/Module.h"
#include "profile/Profiler.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace sl::map {

class CostModel;

/// Pseudo channel id used for the Rx input in aggregate wiring.
inline constexpr unsigned RxChanId = 0xFFFFFFFFu;

struct MapParams {
  unsigned NumMEs = 6;              ///< Programmable MEs (2 of 8 are Rx/Tx).
  unsigned CodeStoreInstrs = 4096;  ///< ME instruction store entries.
  double CodeStoreBudget = 0.85;    ///< Fraction usable by one aggregate.
  double MeInstrsPerIrInstr = 3.0;  ///< Lowering expansion estimate.
  double MemAccessCycles = 90.0;    ///< Avg memory latency for cost model.
  // Per-kind channel costs (ring put + get per crossing). Defaults match
  // deriveChannelCosts(ixp::ChipParams{}) — a scratch crossing pays the
  // scratch latency on each side, an NN crossing a register access each
  // side. Formation prices crossings at the scratch cost (adjacency is
  // unknown until placement); placement re-prices the NN winners.
  double ScratchChannelCostCycles = 120.0;
  double NNChannelCostCycles = 6.0;
  double XScaleFreqThreshold = 0.02; ///< Colder PPFs go to the XScale.
  double DominanceRatio = 1.8;      ///< EXEC_TIME(dom) >> next threshold.
  bool AllowDuplication = true;     ///< Ablation knobs.
  bool AllowMerging = true;
  /// Replicate the final pipeline over all remaining MEs. Disable for
  /// deterministic single-copy runs (functional comparisons).
  bool Replicate = true;
  /// Channel specialization: place aggregates on physical ME slots and
  /// lower adjacent single-producer/single-consumer channels to
  /// next-neighbor rings. Off = every crossing is a scratch ring and
  /// placement is the identity (pre-specialization behavior).
  bool EnableNN = true;
  unsigned NNRingWords = 128; ///< NN register file capacity (handles).
};

/// One aggregate: a set of PPFs (and the helpers they call) co-located on
/// a processing element.
struct Aggregate {
  std::vector<ir::Function *> Funcs;
  /// External inputs: RxChanId and/or ids of channels whose producer lives
  /// in another aggregate.
  std::vector<unsigned> InputChans;
  bool OnXScale = false;
  unsigned Copies = 1; ///< MEs this aggregate is loaded onto.
  double CostPerPacket = 0.0; ///< Estimated cycles per packet.
  double EstMeInstrs = 0.0;   ///< Estimated code-store footprint.
  /// Physical ME slot of the first copy (copies occupy consecutive
  /// slots). ~0u until the placement pass runs; XScale aggregates keep it.
  unsigned Slot = ~0u;
};

/// Channel implementation chosen by the placement pass.
enum class ChannelKind : uint8_t {
  Scratch,      ///< Shared scratch ring.
  NextNeighbor, ///< Per-adjacent-ME-pair NN register ring.
};

/// One cross-aggregate channel's lowering decision, with the reason in
/// remark-taxonomy form ("channel-lowered-nn", "nn-missed-non-adjacent",
/// "nn-missed-multi-consumer", ...).
struct ChannelDecision {
  unsigned ChanId = 0;
  std::string Name;
  ChannelKind Kind = ChannelKind::Scratch;
  std::string Reason;
  unsigned Producer = ~0u; ///< Producing aggregate index (~0u = none/Rx).
  unsigned Consumer = ~0u; ///< Consuming aggregate index.
  unsigned Capacity = 0;   ///< Ring capacity granted (handles).
  double Freq = 0.0;       ///< Traversals per packet (profile).
};

struct MappingPlan {
  std::vector<Aggregate> Aggregates; ///< ME aggregates first, then XScale.
  double PredictedThroughput = 0.0;  ///< Relative (packets per cycle).
  std::string Log;                   ///< Human-readable decision trail.
  /// Per-channel implementation decisions (filled by placeAggregates;
  /// empty means every channel is a scratch ring).
  std::vector<ChannelDecision> Channels;

  /// The aggregate containing \p F, or ~0u. applyPlan calls this per
  /// instruction, so the membership index is built lazily on first use
  /// and memoized. Call invalidateIndex() after mutating Aggregates.
  unsigned aggregateOf(const ir::Function *F) const {
    if (FuncToAgg.empty())
      for (unsigned I = 0; I != Aggregates.size(); ++I)
        for (const ir::Function *G : Aggregates[I].Funcs)
          FuncToAgg.emplace(G, I);
    auto It = FuncToAgg.find(F);
    return It == FuncToAgg.end() ? ~0u : It->second;
  }

  void invalidateIndex() { FuncToAgg.clear(); }

private:
  mutable std::unordered_map<const ir::Function *, unsigned> FuncToAgg;
};

/// Forms aggregates from profile data with the paper's static estimates
/// (equivalent to passing a StaticCostModel below).
MappingPlan formAggregates(ir::Module &M, const profile::ProfileData &Prof,
                           const MapParams &P = MapParams());

/// Forms aggregates pricing every decision through \p CM — the feedback
/// loop passes a MeasuredCostModel here to re-plan from telemetry.
MappingPlan formAggregates(ir::Module &M, const profile::ProfileData &Prof,
                           const MapParams &P, const CostModel &CM);

/// Rewrites the module for the plan: a channel_put whose destination PPF
/// lives in the same aggregate becomes a direct call (the inliner then
/// merges the bodies). Returns the number of converted puts.
unsigned applyPlan(ir::Module &M, const MappingPlan &Plan);

} // namespace sl::map

#endif // SL_MAP_AGGREGATION_H
