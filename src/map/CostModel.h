//===- map/CostModel.h - pricing interface for aggregate formation -----------==//
//
// Aggregate formation (Fig. 7) prices three things: the cycles a PPF
// costs per packet, the ring cycles a channel crossing costs, and the
// code-store footprint of an aggregate (via the ME-instructions-per-
// IR-instruction expansion). The CostModel interface abstracts those
// three quantities so the same formation algorithm can run from
//
//  * StaticCostModel — the paper's a-priori estimates (profile counts
//    priced with MapParams constants), used on the first compile, and
//
//  * MeasuredCostModel — a telemetry overlay (MeasuredCosts) produced by
//    attributing a calibration simulation back to aggregates, used by the
//    driver's closed feedback loop (driver/Feedback.h). Functions the
//    calibration never ran on an ME (e.g. XScale-mapped slow paths) fall
//    back to the static estimate.
//
//===----------------------------------------------------------------------===//

#ifndef SL_MAP_COSTMODEL_H
#define SL_MAP_COSTMODEL_H

#include "map/Aggregation.h"

#include <map>
#include <string>

namespace sl::map {

/// Pricing oracle for aggregate formation. All costs are cycles per
/// packet except meInstrsPerIrInstr (a dimensionless expansion factor).
class CostModel {
public:
  virtual ~CostModel() = default;

  /// Execution cycles per packet spent inside \p F (instruction issue
  /// plus memory stalls; channel crossings are priced separately).
  virtual double funcCycles(const ir::Function *F) const = 0;

  /// Ring put + get cycles per channel crossing between aggregates, for
  /// a shared scratch ring. Formation prices every crossing at this
  /// (conservative) rate; placement re-prices next-neighbor winners.
  virtual double channelCostCycles() const = 0;

  /// Ring put + get cycles per crossing over a next-neighbor ring.
  virtual double nnChannelCostCycles() const = 0;

  /// Lowered ME instructions per IR instruction (code-store estimate).
  virtual double meInstrsPerIrInstr() const = 0;

  virtual const char *name() const = 0;
};

/// The paper's a-priori model: profile counts priced with the MapParams
/// constants (MemAccessCycles, ChannelCostCycles, MeInstrsPerIrInstr).
class StaticCostModel final : public CostModel {
public:
  StaticCostModel(const profile::ProfileData &Prof, const MapParams &P)
      : Prof(Prof), P(P) {}

  double funcCycles(const ir::Function *F) const override {
    return Prof.instrsPerPacket(F) + Prof.memPerPacket(F) * P.MemAccessCycles;
  }
  double channelCostCycles() const override {
    return P.ScratchChannelCostCycles;
  }
  double nnChannelCostCycles() const override {
    return P.NNChannelCostCycles;
  }
  double meInstrsPerIrInstr() const override { return P.MeInstrsPerIrInstr; }
  const char *name() const override { return "static"; }

private:
  const profile::ProfileData &Prof;
  const MapParams &P;
};

/// Telemetry-derived replacement costs, attributed from a calibration
/// simulation (driver::attributeCosts). Keyed by function *name* so the
/// overlay survives recompilation of the same source (each compile builds
/// a fresh ir::Module with fresh Function pointers).
struct MeasuredCosts {
  /// Cycles per packet per PPF (thread-cycles: issue + memory stall).
  /// Helper costs are folded into the PPFs that call them.
  std::map<std::string, double> FuncCycles;
  /// Measured ring put+get cycles per crossing, split by channel
  /// implementation (0 = that kind was not observed; the model falls
  /// back to the static constant).
  double ScratchChannelCostCycles = 0.0;
  double NNChannelCostCycles = 0.0;
  /// Measured lowering expansion from the actual flattened images.
  double MeInstrsPerIrInstr = 0.0;
  /// Measured average memory-stall cycles per (non-ring) access.
  double MemAccessCycles = 0.0;
  /// Packets forwarded during the calibration slice.
  uint64_t CalibPackets = 0;

  bool valid() const {
    return CalibPackets > 0 && !FuncCycles.empty() && MeInstrsPerIrInstr > 0.0;
  }
};

/// Prices formation from a MeasuredCosts overlay with static fallbacks:
/// unmeasured PPFs use the a-priori formula, helpers cost zero (their
/// cycles are already folded into the measured PPF costs).
class MeasuredCostModel final : public CostModel {
public:
  /// \p ExpansionScale multiplies the measured expansion; the driver's
  /// oversize-retry loop passes its cumulative growth factor here so
  /// code-store misses still force splits under the measured model.
  MeasuredCostModel(const profile::ProfileData &Prof, const MapParams &P,
                    const MeasuredCosts &MC, double ExpansionScale = 1.0)
      : Fallback(Prof, P), MC(MC), ExpansionScale(ExpansionScale) {}

  double funcCycles(const ir::Function *F) const override;
  double channelCostCycles() const override {
    return MC.ScratchChannelCostCycles > 0.0 ? MC.ScratchChannelCostCycles
                                             : Fallback.channelCostCycles();
  }
  double nnChannelCostCycles() const override {
    return MC.NNChannelCostCycles > 0.0 ? MC.NNChannelCostCycles
                                        : Fallback.nnChannelCostCycles();
  }
  double meInstrsPerIrInstr() const override {
    return MC.MeInstrsPerIrInstr * ExpansionScale;
  }
  const char *name() const override { return "measured"; }

private:
  StaticCostModel Fallback;
  const MeasuredCosts &MC;
  double ExpansionScale;
};

} // namespace sl::map

#endif // SL_MAP_COSTMODEL_H
