//===- map/CostModel.cpp -------------------------------------------------------==//

#include "map/CostModel.h"

#include "ir/Function.h"

using namespace sl;
using namespace sl::map;

double MeasuredCostModel::funcCycles(const ir::Function *F) const {
  auto It = MC.FuncCycles.find(F->name());
  if (It != MC.FuncCycles.end())
    return It->second;
  // Helpers: measured PPF costs already include the helpers they call
  // (attribution distributes whole-aggregate cycles over member PPFs), so
  // pricing them again would double-count.
  if (!F->isPpf())
    return 0.0;
  // A PPF the calibration never ran on an ME (XScale-mapped, or newly
  // reachable): fall back to the a-priori estimate.
  return Fallback.funcCycles(F);
}
