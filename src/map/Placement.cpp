//===- map/Placement.cpp - physical ME placement + channel selection ---------==//

#include "map/Placement.h"

#include "map/CostModel.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <numeric>
#include <set>

using namespace sl;
using namespace sl::map;
using ir::Function;
using ir::Op;

namespace {

/// All functions an aggregate executes: its PPFs plus the helpers they
/// transitively call (puts can live in helpers).
std::set<const Function *> memberClosure(const Aggregate &A) {
  std::set<const Function *> Seen(A.Funcs.begin(), A.Funcs.end());
  std::vector<const Function *> Work(A.Funcs.begin(), A.Funcs.end());
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instrs())
        if (I->op() == Op::Call && Seen.insert(I->Callee).second)
          Work.push_back(I->Callee);
  }
  return Seen;
}

/// One surviving cross-aggregate channel.
struct ChanEdge {
  unsigned ChanId = 0;
  const ir::Channel *Chan = nullptr;
  unsigned Consumer = ~0u;
  std::vector<unsigned> Producers; ///< Aggregates with put sites (sorted).
  double Freq = 0.0;
};

double chanFreq(const profile::ProfileData &Prof, unsigned Id) {
  auto It = Prof.ChannelPuts.find(Id);
  if (It == Prof.ChannelPuts.end() || Prof.Packets == 0)
    return 0.0;
  return double(It->second) / double(Prof.Packets);
}

} // namespace

void sl::map::placeAggregates(const ir::Module &M,
                              const profile::ProfileData &Prof,
                              const MapParams &P, const CostModel &CM,
                              MappingPlan &Plan) {
  Plan.Channels.clear();

  // ME aggregates, in plan order (the plan keeps MEs first, XScale last).
  std::vector<unsigned> MEAggs;
  for (unsigned I = 0; I != Plan.Aggregates.size(); ++I)
    if (!Plan.Aggregates[I].OnXScale)
      MEAggs.push_back(I);

  // Identity placement: slot = prefix sum of copies in plan order. This
  // is both the EnableNN=false answer and the tie-break baseline, so a
  // module with no NN opportunity keeps the pre-specialization load
  // order exactly.
  auto assignSlots = [&](const std::vector<unsigned> &Order) {
    for (Aggregate &A : Plan.Aggregates)
      A.Slot = ~0u;
    unsigned Next = 0;
    for (unsigned I : Order) {
      Plan.Aggregates[I].Slot = Next;
      Next += Plan.Aggregates[I].Copies;
    }
  };
  assignSlots(MEAggs);

  // Surviving cross-aggregate channels (run after applyPlan, so any put
  // whose destination shares the aggregate is already a direct call).
  std::vector<std::set<const Function *>> Members;
  Members.reserve(Plan.Aggregates.size());
  for (const Aggregate &A : Plan.Aggregates)
    Members.push_back(memberClosure(A));

  std::vector<ChanEdge> Edges;
  for (const ir::Channel &C : M.Channels) {
    if (C.Id == 0 || !C.Dest)
      continue;
    ChanEdge E;
    E.ChanId = C.Id;
    E.Chan = &C;
    E.Consumer = Plan.aggregateOf(C.Dest);
    E.Freq = chanFreq(Prof, C.Id);
    for (unsigned A = 0; A != Plan.Aggregates.size(); ++A) {
      if (A == E.Consumer)
        continue; // Intra-aggregate puts are calls by now.
      bool Puts = false;
      for (const Function *F : Members[A])
        for (const auto &BB : F->blocks())
          for (const auto &I : BB->instrs())
            Puts |= (I->op() == Op::ChannelPut && I->ChanId == C.Id);
      if (Puts)
        E.Producers.push_back(A);
    }
    if (E.Consumer == ~0u || E.Producers.empty())
      continue; // Dead or fully internalized channel: no ring needed.
    Edges.push_back(std::move(E));
  }

  // Capacity allocation order: hottest first, id as the deterministic
  // tie-break.
  std::sort(Edges.begin(), Edges.end(),
            [](const ChanEdge &A, const ChanEdge &B) {
              if (A.Freq != B.Freq)
                return A.Freq > B.Freq;
              return A.ChanId < B.ChanId;
            });

  // Walks the edges under a slot assignment; returns the total NN-lowered
  // traffic and (optionally) records the per-channel decisions.
  auto evaluate = [&](std::vector<ChannelDecision> *Out) {
    double Score = 0.0;
    std::set<unsigned> LinkUsed; // Producer slot of each granted NN ring.
    for (const ChanEdge &E : Edges) {
      ChannelDecision D;
      D.ChanId = E.ChanId;
      D.Name = E.Chan->Name;
      D.Consumer = E.Consumer;
      D.Producer = E.Producers.front();
      D.Freq = E.Freq;
      D.Kind = ChannelKind::Scratch;

      const Aggregate &Cons = Plan.Aggregates[E.Consumer];
      const Aggregate &Prod = Plan.Aggregates[D.Producer];
      if (!P.EnableNN) {
        D.Reason = "nn-disabled";
      } else if (Cons.OnXScale || Prod.OnXScale) {
        D.Reason = "nn-missed-xscale";
      } else if (E.Producers.size() > 1 || Prod.Copies > 1) {
        D.Reason = "nn-missed-multi-producer";
      } else if (Cons.Copies > 1) {
        // The consumer is replicated over several MEs: every copy must
        // poll the ring, which only a shared scratch ring allows.
        D.Reason = "nn-missed-multi-consumer";
      } else if (Cons.Slot != Prod.Slot + 1) {
        D.Reason = "nn-missed-non-adjacent";
      } else if (LinkUsed.count(Prod.Slot)) {
        // One NN register file per adjacent ME pair; a second channel on
        // the same hop keeps the scratch ring.
        D.Reason = "nn-missed-capacity";
      } else {
        D.Kind = ChannelKind::NextNeighbor;
        D.Reason = "channel-lowered-nn";
        D.Capacity = P.NNRingWords;
        LinkUsed.insert(Prod.Slot);
        Score += E.Freq;
      }
      if (Out)
        Out->push_back(std::move(D));
    }
    return Score;
  };

  if (P.EnableNN && !MEAggs.empty() && MEAggs.size() <= 8 && !Edges.empty()) {
    // Exhaustive order search (<= 6 ME aggregates, <= 720 orders). The
    // first order visited is the identity, and strict improvement is
    // required to move off it, so a module with no NN win keeps the
    // baseline placement.
    std::vector<unsigned> Order = MEAggs;
    std::vector<unsigned> Best = Order;
    double BestScore = evaluate(nullptr);
    while (std::next_permutation(Order.begin(), Order.end())) {
      assignSlots(Order);
      double S = evaluate(nullptr);
      if (S > BestScore + 1e-12) {
        BestScore = S;
        Best = Order;
      }
    }
    assignSlots(Best);
  }

  evaluate(&Plan.Channels);

  // Re-price the NN winners: the consumer-side aggregate cost charged a
  // scratch crossing for each external input; an NN crossing is cheaper
  // by the cost-model delta. Skipped entirely when nothing was lowered,
  // so scratch-only plans keep their numbers bit for bit.
  double Delta = CM.channelCostCycles() - CM.nnChannelCostCycles();
  bool AnyNN = false;
  for (const ChannelDecision &D : Plan.Channels) {
    if (D.Kind != ChannelKind::NextNeighbor)
      continue;
    AnyNN = true;
    Aggregate &Cons = Plan.Aggregates[D.Consumer];
    Cons.CostPerPacket = std::max(0.0, Cons.CostPerPacket - D.Freq * Delta);
  }
  if (AnyNN) {
    double T = 1e30;
    for (const Aggregate &A : Plan.Aggregates)
      if (!A.OnXScale)
        T = std::min(T, double(A.Copies) / std::max(A.CostPerPacket, 1e-9));
    if (T < 1e30)
      Plan.PredictedThroughput = T;
  }

  // Decision trail.
  for (const Aggregate &A : Plan.Aggregates)
    if (!A.OnXScale)
      Plan.Log += formatString(
          "place: %s -> slot %u (x%u)\n", A.Funcs.front()->name().c_str(),
          A.Slot, A.Copies);
  for (const ChannelDecision &D : Plan.Channels)
    Plan.Log += formatString(
        "channel %s: %s (%s, freq %.3f)\n", D.Name.c_str(),
        D.Kind == ChannelKind::NextNeighbor ? "next-neighbor" : "scratch",
        D.Reason.c_str(), D.Freq);
}
