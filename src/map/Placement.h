//===- map/Placement.h - physical ME placement + channel selection -----------==//
//
// The runtime offers two channel implementations: shared scratch rings
// and next-neighbor (NN) registers between physically adjacent MEs.
// Aggregate formation decides *what* runs together; this pass decides
// *where* — it orders the ME aggregates onto physical ME slots to
// maximize producer->consumer adjacency, then picks an implementation
// per surviving cross-aggregate channel:
//
//   next-neighbor  when the producer sits on slot i and the consumer on
//                  slot i+1, both ends are single-copy ME aggregates,
//                  the channel has a single producing aggregate, and the
//                  NN register file (one per adjacent pair) is free;
//   scratch ring   otherwise.
//
// Every decision carries a kebab-case reason code that the driver turns
// into a structured remark (channel-lowered-nn, nn-missed-non-adjacent,
// nn-missed-multi-consumer, ...). With MapParams::EnableNN off the pass
// assigns the identity placement and scratch everywhere, preserving
// pre-specialization behavior bit for bit.
//
//===----------------------------------------------------------------------===//

#ifndef SL_MAP_PLACEMENT_H
#define SL_MAP_PLACEMENT_H

#include "ixp/ChipParams.h"
#include "map/Aggregation.h"

namespace sl::map {

class CostModel;

/// Derives the per-kind channel costs (and the NN capacity) in \p P from
/// the chip model — the single source of truth replacing the old
/// 120-cycle literal. A scratch crossing pays the scratch latency on the
/// put and on the get; an NN crossing pays a register access each side.
inline void deriveChannelCosts(MapParams &P, const ixp::ChipParams &Chip) {
  P.ScratchChannelCostCycles = 2.0 * double(Chip.Scratch.LatencyCycles);
  P.NNChannelCostCycles = 2.0 * double(Chip.NNRingAccessCycles);
  P.NNRingWords = Chip.NNRingWords;
}

/// Places \p Plan's ME aggregates onto physical slots (Aggregate::Slot),
/// selects a channel implementation per cross-aggregate channel
/// (MappingPlan::Channels), and re-prices the NN winners through \p CM
/// (CostPerPacket / PredictedThroughput). Deterministic: same module,
/// profile and options produce the same slots and decisions. Run after
/// applyPlan() so intra-aggregate puts are already gone.
void placeAggregates(const ir::Module &M, const profile::ProfileData &Prof,
                     const MapParams &P, const CostModel &CM,
                     MappingPlan &Plan);

} // namespace sl::map

#endif // SL_MAP_PLACEMENT_H
