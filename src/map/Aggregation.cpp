//===- map/Aggregation.cpp -----------------------------------------------------==//

#include "map/Aggregation.h"

#include "map/CostModel.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdarg>
#include <cassert>
#include <set>

using namespace sl;
using namespace sl::map;
using ir::Function;
using ir::Op;

namespace {

/// Helper functions transitively callable from \p Roots.
std::set<Function *> reachableHelpers(const std::vector<Function *> &Roots) {
  std::set<Function *> Seen;
  std::vector<Function *> Work(Roots.begin(), Roots.end());
  std::set<Function *> Out;
  for (Function *R : Roots)
    Seen.insert(R);
  while (!Work.empty()) {
    Function *F = Work.back();
    Work.pop_back();
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instrs())
        if (I->op() == Op::Call && Seen.insert(I->Callee).second) {
          Out.insert(I->Callee);
          Work.push_back(I->Callee);
        }
  }
  return Out;
}

/// Channels whose producers include a put site in some function of \p Set.
std::set<unsigned> putChannels(const std::set<Function *> &Set) {
  std::set<unsigned> Out;
  for (Function *F : Set)
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instrs())
        if (I->op() == Op::ChannelPut)
          Out.insert(I->ChanId);
  return Out;
}

class Former {
public:
  Former(ir::Module &M, const profile::ProfileData &Prof, const MapParams &P,
         const CostModel &CM)
      : M(M), Prof(Prof), P(P), CM(CM) {}

  MappingPlan run();

private:
  double ppfCost(Function *F) const;
  double aggregateCost(const Aggregate &A) const;
  double estMeInstrs(const Aggregate &A) const;
  double planThroughput(const std::vector<Aggregate> &Aggs,
                        std::vector<unsigned> *CopiesOut = nullptr) const;
  /// Per-packet frequency of channel \p Id.
  double chanFreq(unsigned Id) const {
    auto It = Prof.ChannelPuts.find(Id);
    if (It == Prof.ChannelPuts.end() || Prof.Packets == 0)
      return 0.0;
    return double(It->second) / double(Prof.Packets);
  }
  /// Total channel traffic (per packet) crossing between A and B.
  double crossingCost(const Aggregate &A, const Aggregate &B) const;
  Aggregate merged(const Aggregate &A, const Aggregate &B) const;
  void computeInputs(Aggregate &A) const;
  void log(const char *Fmt, ...) __attribute__((format(printf, 2, 3)));

  ir::Module &M;
  const profile::ProfileData &Prof;
  const MapParams &P;
  const CostModel &CM;
  std::string LogBuf;
};

void Former::log(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  LogBuf += formatStringV(Fmt, Args);
  va_end(Args);
  LogBuf += "\n";
}

double Former::ppfCost(Function *F) const { return CM.funcCycles(F); }

double Former::aggregateCost(const Aggregate &A) const {
  double Cost = 0.0;
  std::set<Function *> Helpers = reachableHelpers(A.Funcs);
  for (Function *F : A.Funcs)
    Cost += ppfCost(F);
  for (Function *H : Helpers)
    Cost += ppfCost(H);

  // External input channels cost a ring get (plus producer-side put) per
  // arriving packet.
  std::set<Function *> Members(A.Funcs.begin(), A.Funcs.end());
  for (const ir::Channel &C : M.Channels) {
    if (C.Id == 0 || !C.Dest || !Members.count(C.Dest))
      continue;
    // Does any producer live outside the aggregate?
    bool External = false;
    for (const auto &F : M.functions()) {
      if (Members.count(F.get()))
        continue;
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instrs())
          External |= (I->op() == Op::ChannelPut && I->ChanId == C.Id);
    }
    if (External)
      Cost += chanFreq(C.Id) * CM.channelCostCycles();
  }
  if (M.EntryPpf && Members.count(M.EntryPpf))
    Cost += CM.channelCostCycles() / 2.0; // Rx ring get.
  return Cost;
}

double Former::estMeInstrs(const Aggregate &A) const {
  double N = 0.0;
  for (Function *F : A.Funcs)
    N += double(F->instrCount());
  for (Function *H : reachableHelpers(A.Funcs))
    N += double(H->instrCount());
  return N * CM.meInstrsPerIrInstr();
}

double Former::crossingCost(const Aggregate &A, const Aggregate &B) const {
  std::set<Function *> SetA(A.Funcs.begin(), A.Funcs.end());
  std::set<Function *> SetB(B.Funcs.begin(), B.Funcs.end());
  std::set<unsigned> PutsA = putChannels(SetA);
  std::set<unsigned> PutsB = putChannels(SetB);
  double Cost = 0.0;
  for (const ir::Channel &C : M.Channels) {
    if (C.Id == 0 || !C.Dest)
      continue;
    if (SetB.count(C.Dest) && PutsA.count(C.Id))
      Cost += chanFreq(C.Id) * CM.channelCostCycles();
    if (SetA.count(C.Dest) && PutsB.count(C.Id))
      Cost += chanFreq(C.Id) * CM.channelCostCycles();
  }
  return Cost;
}

Aggregate Former::merged(const Aggregate &A, const Aggregate &B) const {
  Aggregate R;
  R.Funcs = A.Funcs;
  R.Funcs.insert(R.Funcs.end(), B.Funcs.begin(), B.Funcs.end());
  R.Copies = std::max(A.Copies, B.Copies);
  R.CostPerPacket = aggregateCost(R);
  R.EstMeInstrs = estMeInstrs(R);
  return R;
}

double Former::planThroughput(const std::vector<Aggregate> &Aggs,
                              std::vector<unsigned> *CopiesOut) const {
  // MAP_TO_MES model: every ME aggregate needs at least one ME; remaining
  // MEs go one at a time to the bottleneck stage (stage duplication /
  // pipeline replication both fall out of this greedy fill).
  std::vector<unsigned> Copies;
  std::vector<double> Costs;
  unsigned Used = 0;
  for (const Aggregate &A : Aggs) {
    if (A.OnXScale)
      continue;
    Copies.push_back(1);
    Costs.push_back(std::max(A.CostPerPacket, 1e-9));
    ++Used;
  }
  if (Copies.empty() || Used > P.NumMEs) {
    if (CopiesOut)
      CopiesOut->clear();
    return 0.0;
  }
  while (Used < P.NumMEs) {
    size_t Worst = 0;
    for (size_t I = 1; I != Copies.size(); ++I)
      if (double(Copies[I]) / Costs[I] < double(Copies[Worst]) / Costs[Worst])
        Worst = I;
    ++Copies[Worst];
    ++Used;
  }
  double T = 1e30;
  for (size_t I = 0; I != Copies.size(); ++I)
    T = std::min(T, double(Copies[I]) / Costs[I]);
  if (CopiesOut)
    *CopiesOut = std::move(Copies);
  return T;
}

void Former::computeInputs(Aggregate &A) const {
  A.InputChans.clear();
  std::set<Function *> Members(A.Funcs.begin(), A.Funcs.end());
  if (M.EntryPpf && Members.count(M.EntryPpf))
    A.InputChans.push_back(RxChanId);
  for (const ir::Channel &C : M.Channels) {
    if (C.Id == 0 || !C.Dest || !Members.count(C.Dest))
      continue;
    bool External = false;
    for (const auto &F : M.functions()) {
      if (Members.count(F.get()))
        continue;
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instrs())
          External |= (I->op() == Op::ChannelPut && I->ChanId == C.Id);
    }
    if (External)
      A.InputChans.push_back(C.Id);
  }
}

MappingPlan Former::run() {
  std::vector<Aggregate> Aggs;

  log("cost model: %s (channel %.1f cyc/crossing, expansion %.2fx)",
      CM.name(), CM.channelCostCycles(), CM.meInstrsPerIrInstr());

  // One aggregate per PPF; cold PPFs go straight to the XScale.
  for (const auto &F : M.functions()) {
    if (!F->isPpf())
      continue;
    Aggregate A;
    A.Funcs.push_back(F.get());
    A.CostPerPacket = aggregateCost(A);
    A.EstMeInstrs = estMeInstrs(A);
    double Freq = Prof.callFrequency(F.get());
    double Limit = double(P.CodeStoreInstrs) * P.CodeStoreBudget;
    if (F.get() != M.EntryPpf &&
        (Freq < P.XScaleFreqThreshold || A.EstMeInstrs > Limit)) {
      A.OnXScale = true;
      log("xscale: %s (freq %.4f, est %.0f instrs)", F->name().c_str(), Freq,
          A.EstMeInstrs);
    }
    Aggs.push_back(std::move(A));
  }

  double Limit = double(P.CodeStoreInstrs) * P.CodeStoreBudget;
  bool Done = false;
  unsigned Guard = 0;
  while (!Done && ++Guard < 256) {
    Done = true;

    // DUPLICATE the dominating stage when it is much slower than the rest.
    // (With the greedy-fill model this mostly confirms what MAP_TO_MES
    // would do anyway, but it biases the merge loop's comparisons.)
    if (P.AllowDuplication) {
      int Dom = -1, Next = -1;
      for (unsigned I = 0; I != Aggs.size(); ++I) {
        if (Aggs[I].OnXScale)
          continue;
        double C = Aggs[I].CostPerPacket / double(Aggs[I].Copies);
        if (Dom < 0 || C > Aggs[Dom].CostPerPacket / Aggs[Dom].Copies) {
          Next = Dom;
          Dom = int(I);
        } else if (Next < 0 ||
                   C > Aggs[Next].CostPerPacket / Aggs[Next].Copies) {
          Next = int(I);
        }
      }
      // The greedy fill in planThroughput() already duplicates the
      // dominating stage onto spare MEs, so no explicit state change is
      // needed here; the check remains for the ablation log.
      if (Dom >= 0 && Next >= 0) {
        double DomC = Aggs[Dom].CostPerPacket / Aggs[Dom].Copies;
        double NextC = Aggs[Next].CostPerPacket / Aggs[Next].Copies;
        if (DomC > P.DominanceRatio * NextC && Aggs.size() > 1)
          log("dominating stage: %s (%.0f vs %.0f cycles/pkt)",
              Aggs[Dom].Funcs.front()->name().c_str(), DomC, NextC);
      }
    }

    // MERGE the pair with the highest channel cost that improves (or at
    // least preserves) throughput and fits the code store.
    if (P.AllowMerging) {
      struct Pair {
        unsigned A, B;
        double Cost;
      };
      std::vector<Pair> Pairs;
      for (unsigned I = 0; I != Aggs.size(); ++I)
        for (unsigned J = I + 1; J != Aggs.size(); ++J) {
          if (Aggs[I].OnXScale || Aggs[J].OnXScale)
            continue;
          double C = crossingCost(Aggs[I], Aggs[J]);
          if (C > 0.0)
            Pairs.push_back({I, J, C});
        }
      std::sort(Pairs.begin(), Pairs.end(),
                [](const Pair &X, const Pair &Y) { return X.Cost > Y.Cost; });
      for (const Pair &Pr : Pairs) {
        Aggregate Merged = merged(Aggs[Pr.A], Aggs[Pr.B]);
        if (Merged.EstMeInstrs > Limit)
          continue;
        std::vector<Aggregate> Trial;
        for (unsigned K = 0; K != Aggs.size(); ++K)
          if (K != Pr.A && K != Pr.B)
            Trial.push_back(Aggs[K]);
        Trial.push_back(Merged);
        if (planThroughput(Trial) + 1e-12 >= planThroughput(Aggs)) {
          log("merge: %s + %s (channel cost %.2f)",
              Aggs[Pr.A].Funcs.front()->name().c_str(),
              Aggs[Pr.B].Funcs.front()->name().c_str(), Pr.Cost);
          Aggs = std::move(Trial);
          Done = false;
          break;
        }
      }
      if (!Done)
        continue;
    }

    // RELAX: if more stages than MEs remain, force the cheapest merge that
    // fits, accepting a throughput loss.
    unsigned Slots = 0;
    for (const Aggregate &A : Aggs)
      if (!A.OnXScale)
        Slots += A.Copies;
    if (Slots > P.NumMEs) {
      bool Merged2 = false;
      for (unsigned I = 0; I != Aggs.size() && !Merged2; ++I)
        for (unsigned J = I + 1; J != Aggs.size() && !Merged2; ++J) {
          if (Aggs[I].OnXScale || Aggs[J].OnXScale)
            continue;
          Aggregate Try = merged(Aggs[I], Aggs[J]);
          if (Try.EstMeInstrs > Limit)
            continue;
          log("relax-merge: %s + %s",
              Aggs[I].Funcs.front()->name().c_str(),
              Aggs[J].Funcs.front()->name().c_str());
          std::vector<Aggregate> Trial;
          for (unsigned K = 0; K != Aggs.size(); ++K)
            if (K != I && K != J)
              Trial.push_back(Aggs[K]);
          Trial.push_back(Try);
          Aggs = std::move(Trial);
          Merged2 = true;
          Done = false;
        }
      // If nothing fits we fall through and ship an over-committed plan;
      // the loader time-multiplexes in that case.
    }
  }

  // MAP_TO_MES: greedy fill of the remaining MEs (stage duplication and
  // pipeline replication combined).
  std::vector<unsigned> FinalCopies;
  double T = planThroughput(Aggs, &FinalCopies);
  if (P.Replicate && !FinalCopies.empty()) {
    size_t K = 0;
    for (Aggregate &A : Aggs) {
      if (A.OnXScale)
        continue;
      A.Copies = FinalCopies[K++];
      if (A.Copies > 1)
        log("map: %s x%u MEs", A.Funcs.front()->name().c_str(), A.Copies);
    }
  } else {
    for (Aggregate &A : Aggs)
      if (!A.OnXScale)
        A.Copies = 1;
  }

  MappingPlan Plan;
  for (Aggregate &A : Aggs) {
    A.CostPerPacket = aggregateCost(A);
    A.EstMeInstrs = estMeInstrs(A);
    computeInputs(A);
    Plan.Aggregates.push_back(std::move(A));
  }
  // MEs first, XScale last, hot first (stable cosmetic order).
  std::stable_sort(Plan.Aggregates.begin(), Plan.Aggregates.end(),
                   [](const Aggregate &A, const Aggregate &B) {
                     return A.OnXScale < B.OnXScale;
                   });
  Plan.PredictedThroughput = T;
  Plan.Log = std::move(LogBuf);
  return Plan;
}

} // namespace

MappingPlan sl::map::formAggregates(ir::Module &M,
                                    const profile::ProfileData &Prof,
                                    const MapParams &P) {
  StaticCostModel CM(Prof, P);
  Former F(M, Prof, P, CM);
  return F.run();
}

MappingPlan sl::map::formAggregates(ir::Module &M,
                                    const profile::ProfileData &Prof,
                                    const MapParams &P, const CostModel &CM) {
  Former F(M, Prof, P, CM);
  return F.run();
}

unsigned sl::map::applyPlan(ir::Module &M, const MappingPlan &Plan) {
  unsigned Converted = 0;
  for (const auto &F : M.functions()) {
    unsigned FAgg = Plan.aggregateOf(F.get());
    for (const auto &BB : F->blocks()) {
      for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
        ir::Instr *I = BB->instr(Idx);
        if (I->op() != Op::ChannelPut || I->ChanId == 0)
          continue;
        const ir::Channel *C = M.findChannel(I->ChanId);
        assert(C && C->Dest && "wired channel expected");
        unsigned DestAgg = Plan.aggregateOf(C->Dest);
        if (FAgg == ~0u || DestAgg != FAgg)
          continue;
        // Same aggregate: the channel collapses into a direct call.
        ir::Value *Handle = I->operand(0);
        auto *Call = new ir::Instr(Op::Call, C->Dest->returnType());
        Call->Callee = C->Dest;
        Call->addOperand(Handle);
        Call->Loc = I->Loc;
        BB->insertAt(Idx, std::unique_ptr<ir::Instr>(Call));
        I->dropOperands();
        BB->erase(I);
        ++Converted;
      }
    }
  }
  return Converted;
}
