//===- cg/RegAlloc.cpp -------------------------------------------------------------==//

#include "cg/RegAlloc.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <vector>

using namespace sl;
using namespace sl::cg;

namespace {

/// True if the instruction's SrcA/SrcB pair feeds the ALU's two read
/// ports (the dual-bank restriction applies).
bool needsBankSplit(const MInstr &I) {
  if (I.SrcA < 0 || I.SrcB < 0)
    return false;
  switch (I.Op) {
  case MOp::Add:
  case MOp::Sub:
  case MOp::Mul:
  case MOp::And:
  case MOp::Or:
  case MOp::Xor:
  case MOp::Shl:
  case MOp::Shr:
  case MOp::Asr:
  case MOp::Set:
  case MOp::BrCond:
    return true;
  default:
    return false;
  }
}

struct Interval {
  int Start = -1;
  int End = -1;
  double Weight = 0.0; ///< Loop-depth-weighted use count (spill cost).
  void extend(int P) {
    if (Start < 0 || P < Start)
      Start = P;
    if (P > End)
      End = P;
  }
};

class Allocator {
public:
  explicit Allocator(LoweredAggregate &Agg) : Agg(Agg), C(Agg.Code) {}

  RegAllocStats run();

private:
  void assignBanks();
  bool tryAllocate();
  void spill(const std::set<int> &Victims);
  void computeIntervals();
  void renumber(const std::map<int, int> &PhysOf);

  LoweredAggregate &Agg;
  MCode &C;
  RegAllocStats Stats;
  std::map<int, int> Bank; ///< vreg -> 0 (A) / 1 (B).
  std::map<int, Interval> Live;
  /// Registers created by spill rewriting: minimal intervals already, so
  /// spilling them again can only regress (and once looped forever).
  std::set<int> NoSpill;
};

void Allocator::assignBanks() {
  // Greedy: walk the code; when a two-source instruction has both operands
  // in the same bank (or would force it), copy the second source into a
  // fresh register of the opposite bank.
  for (MBlock &B : C.Blocks) {
    for (size_t K = 0; K != B.Instrs.size(); ++K) {
      MInstr &I = B.Instrs[K];
      if (!needsBankSplit(I))
        continue;
      int &BA = Bank.emplace(I.SrcA, -1).first->second;
      if (BA < 0)
        BA = 0;
      int &BB = Bank.emplace(I.SrcB, -1).first->second;
      if (BB < 0) {
        BB = 1 - BA;
        continue;
      }
      if (BB != BA)
        continue;
      if (I.SrcA == I.SrcB) {
        // Same register on both ports: a copy is mandatory.
      }
      // Conflict: copy SrcB into the opposite bank.
      int Fresh = static_cast<int>(C.NumVRegs++);
      Bank[Fresh] = 1 - BA;
      MInstr Copy;
      Copy.Op = MOp::Mov;
      Copy.Dst = Fresh;
      Copy.SrcA = I.SrcB;
      Copy.Comment = "bank split";
      B.Instrs.insert(B.Instrs.begin() + static_cast<ptrdiff_t>(K),
                      std::move(Copy));
      ++K; // Skip the copy; I reference is stale, reacquire.
      B.Instrs[K].SrcB = Fresh;
      ++Stats.BankCopies;
    }
  }
  // Any register never constrained joins the emptier bank (balance).
  unsigned CountA = 0, CountB = 0;
  for (auto &[R, Bk] : Bank) {
    if (Bk == 0)
      ++CountA;
    else if (Bk == 1)
      ++CountB;
  }
  for (unsigned R = 0; R != C.NumVRegs; ++R) {
    auto It = Bank.find(static_cast<int>(R));
    if (It == Bank.end() || It->second < 0) {
      int Bk = CountA <= CountB ? 0 : 1;
      Bank[static_cast<int>(R)] = Bk;
      (Bk == 0 ? CountA : CountB)++;
    }
  }
}

void Allocator::computeIntervals() {
  Live.clear();

  // Per-block liveness (backward dataflow), then positional intervals:
  // a register's interval is the [min, max] envelope of every position
  // where it is live. Registers genuinely live across the dispatch
  // loop's back edge (loop counters, the zero register, SWC version
  // registers) keep whole-loop intervals; everything created and consumed
  // within one packet iteration stays short.
  size_t NB = C.Blocks.size();
  std::vector<int> BlockStart(NB, 0), BlockEnd(NB, 0);
  int Pos = 0;
  for (size_t B = 0; B != NB; ++B) {
    BlockStart[B] = Pos;
    Pos += static_cast<int>(C.Blocks[B].Instrs.size());
    BlockEnd[B] = Pos - 1;
  }

  std::map<int, size_t> StartToBlock;
  for (size_t B = 0; B != NB; ++B)
    StartToBlock[BlockStart[B]] = B;

  // Successors: branch targets plus fallthrough when a block does not end
  // in an unconditional branch or halt.
  std::vector<std::vector<size_t>> Succ(NB);
  for (size_t B = 0; B != NB; ++B) {
    bool Falls = true;
    for (const MInstr &I : C.Blocks[B].Instrs) {
      if (I.Op == MOp::Br || I.Op == MOp::BrCond) {
        assert(I.Target >= 0 && static_cast<size_t>(I.Target) < NB &&
               "branch target out of range");
        Succ[B].push_back(static_cast<size_t>(I.Target));
      }
    }
    if (!C.Blocks[B].Instrs.empty()) {
      const MInstr &Last = C.Blocks[B].Instrs.back();
      if (Last.Op == MOp::Br || Last.Op == MOp::Halt)
        Falls = false;
    }
    if (Falls && B + 1 < NB)
      Succ[B].push_back(B + 1);
  }

  // UEVar / VarKill per block.
  std::vector<std::set<int>> UE(NB), Kill(NB), LiveOut(NB);
  for (size_t B = 0; B != NB; ++B) {
    for (const MInstr &I : C.Blocks[B].Instrs) {
      if (I.SrcA >= 0 && !Kill[B].count(I.SrcA))
        UE[B].insert(I.SrcA);
      if (I.SrcB >= 0 && !Kill[B].count(I.SrcB))
        UE[B].insert(I.SrcB);
      if (I.Dst >= 0)
        Kill[B].insert(I.Dst);
    }
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = NB; B-- > 0;) {
      std::set<int> Out;
      for (size_t S : Succ[B]) {
        // LiveIn(S) = UE(S) u (LiveOut(S) - Kill(S)).
        for (int V : UE[S])
          Out.insert(V);
        for (int V : LiveOut[S])
          if (!Kill[S].count(V))
            Out.insert(V);
      }
      if (Out != LiveOut[B]) {
        LiveOut[B] = std::move(Out);
        Changed = true;
      }
    }
  }

  // Loop nesting depth per position (from back-edge spans), used to
  // weight spill costs: evicting a register touched inside a loop pays on
  // every iteration.
  int TotalPos = Pos;
  std::vector<unsigned> Depth(static_cast<size_t>(TotalPos), 0);
  for (size_t B = 0; B != NB; ++B)
    for (size_t S : Succ[B])
      if (BlockStart[S] <= BlockStart[B])
        for (int P2 = BlockStart[S]; P2 <= BlockEnd[B]; ++P2)
          ++Depth[static_cast<size_t>(P2)];

  // Build intervals.
  Pos = 0;
  for (size_t B = 0; B != NB; ++B) {
    for (const MInstr &I : C.Blocks[B].Instrs) {
      double W = 1.0;
      for (unsigned D = 0; D != std::min(Depth[static_cast<size_t>(Pos)],
                                         4u);
           ++D)
        W *= 10.0;
      if (I.Dst >= 0) {
        Live[I.Dst].extend(Pos);
        Live[I.Dst].Weight += W;
      }
      if (I.SrcA >= 0) {
        Live[I.SrcA].extend(Pos);
        Live[I.SrcA].Weight += W;
      }
      if (I.SrcB >= 0) {
        Live[I.SrcB].extend(Pos);
        Live[I.SrcB].Weight += W;
      }
      ++Pos;
    }
    for (int V : LiveOut[B])
      Live[V].extend(BlockEnd[B]);
    // Live into the block (live-out of a predecessor edge reaching here).
    for (size_t S : Succ[B]) {
      for (int V : UE[S])
        Live[V].extend(BlockStart[S]);
      for (int V : LiveOut[S])
        if (!Kill[S].count(V))
          Live[V].extend(BlockStart[S]);
    }
  }

  // Loop extension: an interval partially overlapping a back-edge span and
  // live across it must cover the whole span. With real liveness this
  // applies exactly to the registers in LiveOut of the back-edge source
  // toward an earlier block.
  for (size_t B = 0; B != NB; ++B) {
    for (size_t S : Succ[B]) {
      if (BlockStart[S] > BlockStart[B])
        continue; // Forward edge.
      for (int V : UE[S])
        if (Live.count(V)) {
          Live[V].extend(BlockStart[S]);
          Live[V].extend(BlockEnd[B]);
        }
      for (int V : LiveOut[S])
        if (!Kill[S].count(V) && Live.count(V)) {
          Live[V].extend(BlockStart[S]);
          Live[V].extend(BlockEnd[B]);
        }
    }
  }
}

bool Allocator::tryAllocate() {
  computeIntervals();

  // Linear scan per bank.
  std::map<int, int> PhysOf;
  std::set<int> ToSpill;
  for (int Bk = 0; Bk != 2; ++Bk) {
    std::vector<std::pair<Interval, int>> Order;
    for (auto &[R, Iv] : Live)
      if (Bank[R] == Bk)
        Order.push_back({Iv, R});
    std::sort(Order.begin(), Order.end(),
              [](const auto &A, const auto &B) {
                return A.first.Start < B.first.Start;
              });
    struct ActiveReg {
      int End;
      int Phys;
      int VReg;
    };
    std::vector<ActiveReg> Active;
    std::set<int> FreePhys;
    for (int P = 0; P != 16; ++P)
      FreePhys.insert(Bk * 16 + P);

    for (auto &[Iv, R] : Order) {
      // Expire.
      for (size_t K = Active.size(); K-- > 0;) {
        if (Active[K].End < Iv.Start) {
          FreePhys.insert(Active[K].Phys);
          Active.erase(Active.begin() + static_cast<ptrdiff_t>(K));
        }
      }
      if (!FreePhys.empty()) {
        int P = *FreePhys.begin();
        FreePhys.erase(FreePhys.begin());
        Active.push_back({Iv.End, P, R});
        PhysOf[R] = P;
        continue;
      }
      // Spill the cheapest candidate by loop-weighted use DENSITY:
      // long-lived rarely-used values go to the stack; loop-carried and
      // freshly-created spill temporaries stay in registers.
      auto density = [this](int VReg) {
        const Interval &I2 = Live[VReg];
        double Len = std::max(1, I2.End - I2.Start);
        return I2.Weight / Len;
      };
      auto Victim = Active.end();
      for (auto It = Active.begin(); It != Active.end(); ++It) {
        if (NoSpill.count(It->VReg))
          continue;
        if (Victim == Active.end() ||
            density(It->VReg) < density(Victim->VReg))
          Victim = It;
      }
      bool CurSpillable = !NoSpill.count(R);
      if (Victim != Active.end() &&
          (!CurSpillable || density(Victim->VReg) <= density(R))) {
        ToSpill.insert(Victim->VReg);
        PhysOf[R] = Victim->Phys;
        PhysOf.erase(Victim->VReg);
        Victim->End = Iv.End;
        Victim->VReg = R;
      } else {
        assert(CurSpillable && "register file exhausted by unspillables");
        ToSpill.insert(R);
      }
    }
  }

  if (!ToSpill.empty()) {
    spill(ToSpill);
    return false;
  }
  renumber(PhysOf);
  return true;
}

void Allocator::spill(const std::set<int> &Victims) {
  Stats.SpilledRegs += static_cast<unsigned>(Victims.size());
  // One stack slot per victim; every use loads into a fresh register,
  // every def stores from a fresh register.
  std::map<int, int> SlotOf;
  for (int R : Victims) {
    Agg.Slots.push_back({1, 0, /*IsSpill=*/true});
    SlotOf[R] = static_cast<int>(Agg.Slots.size() - 1);
  }
  for (MBlock &B : C.Blocks) {
    for (size_t K = 0; K < B.Instrs.size(); ++K) {
      MInstr I = B.Instrs[K]; // Copy; the vector may reallocate.
      bool Changed = false;

      auto reloadOperand = [&](int &Src) {
        if (Src < 0 || !SlotOf.count(Src))
          return;
        int Fresh = static_cast<int>(C.NumVRegs++);
        Bank[Fresh] = Bank[Src];
        NoSpill.insert(Fresh);
        MInstr L;
        L.Op = MOp::LmRead;
        L.Class = MemClass::Stack;
        L.Dst = Fresh;
        L.StackSlot = SlotOf[Src];
        L.Comment = "spill reload";
        B.Instrs.insert(B.Instrs.begin() + static_cast<ptrdiff_t>(K),
                        std::move(L));
        ++K;
        Src = Fresh;
        Changed = true;
      };
      reloadOperand(I.SrcA);
      reloadOperand(I.SrcB);

      if (I.Dst >= 0 && SlotOf.count(I.Dst)) {
        int Fresh = static_cast<int>(C.NumVRegs++);
        Bank[Fresh] = Bank[I.Dst];
        NoSpill.insert(Fresh);
        int Slot = SlotOf[I.Dst];
        I.Dst = Fresh;
        B.Instrs[K] = I;
        MInstr S;
        S.Op = MOp::LmWrite;
        S.Class = MemClass::Stack;
        S.SrcA = Fresh;
        S.StackSlot = Slot;
        S.Comment = "spill store";
        B.Instrs.insert(B.Instrs.begin() + static_cast<ptrdiff_t>(K + 1),
                        std::move(S));
        ++K;
        continue;
      }
      if (Changed)
        B.Instrs[K] = I;
    }
  }
}

void Allocator::renumber(const std::map<int, int> &PhysOf) {
  for (MBlock &B : C.Blocks) {
    for (MInstr &I : B.Instrs) {
      auto remap = [&](int &R) {
        if (R < 0)
          return;
        auto It = PhysOf.find(R);
        assert(It != PhysOf.end() && "register without assignment");
        R = It->second;
      };
      remap(I.Dst);
      remap(I.SrcA);
      remap(I.SrcB);
    }
  }
}

RegAllocStats Allocator::run() {
  assignBanks();
  for (unsigned Round = 0; Round != 16; ++Round) {
    ++Stats.Rounds;
    if (tryAllocate())
      return Stats;
  }
  assert(false && "register allocation did not converge");
  return Stats;
}

} // namespace

RegAllocStats sl::cg::allocateRegisters(LoweredAggregate &Agg) {
  Allocator A(Agg);
  return A.run();
}
