//===- cg/Wcet.cpp -----------------------------------------------------------------==//

#include "cg/Wcet.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <vector>

using namespace sl;
using namespace sl::cg;

namespace {

/// Worst-case cycles one instruction can cost a thread (its own issue plus
/// the longest stall it can take, with an uncontended memory unit).
double instrCost(const MInstr &I, const ixp::ChipParams &Chip) {
  auto memCost = [&](const ixp::MemUnitParams &U, unsigned Words) {
    return 1.0 + U.occupancy(Words) + U.LatencyCycles;
  };
  switch (I.Op) {
  case MOp::MemRead:
  case MOp::MemWrite:
    switch (I.Space) {
    case MSpace::Scratch:
      return memCost(Chip.Scratch, I.Words);
    case MSpace::Sram:
      return memCost(Chip.Sram, I.Words);
    case MSpace::Dram:
      return memCost(Chip.Dram, I.Words);
    }
    return 1.0;
  case MOp::RingGet:
  case MOp::RingPut:
    // Next-neighbor rings are a register access; scratch rings pay a
    // full scratch transaction.
    if (I.NNRing)
      return 1.0 + double(Chip.NNRingAccessCycles);
    return memCost(Chip.Scratch, 1);
  case MOp::AtomicTestSet:
  case MOp::AtomicClear:
  case MOp::RtsPktDrop:
    return memCost(Chip.Scratch, 1);
  case MOp::RtsPktCopy:
    return 2.0 * memCost(Chip.Scratch, 1) + 2.0 * memCost(Chip.Dram, 16);
  case MOp::LmRead:
  case MOp::LmWrite:
    return I.LmFast ? 1.0 : double(Chip.LmSlowCycles);
  case MOp::Mul:
    return 3.0;
  case MOp::Br:
  case MOp::BrCond: // Taken path assumed: worst case.
    return 1.0 + Chip.BranchPenaltyCycles;
  case MOp::CtxArb:
    return 1.0;
  default:
    return 1.0;
  }
}

} // namespace

WcetResult sl::cg::analyzeWcet(const FlatCode &Code,
                               const ixp::ChipParams &Chip,
                               const WcetParams &P) {
  WcetResult R;
  size_t N = Code.Code.size();
  if (N == 0)
    return R;

  // Build the instruction-level CFG: successors of i are i+1 (unless an
  // unconditional branch/halt) plus the branch target.
  std::vector<std::vector<size_t>> Succ(N);
  for (size_t I = 0; I != N; ++I) {
    const MInstr &In = Code.Code[I];
    bool Falls = In.Op != MOp::Br && In.Op != MOp::Halt;
    if (Falls && I + 1 < N)
      Succ[I].push_back(I + 1);
    if ((In.Op == MOp::Br || In.Op == MOp::BrCond) && In.Target >= 0)
      Succ[I].push_back(static_cast<size_t>(In.Target));
  }

  // The dispatch loop's own back edge delimits packets: the largest-target
  // backward branch whose target is near the start of the code is treated
  // as "end of packet". Concretely: any edge to an instruction index <=
  // the first RingGet is a dispatch edge, not an application loop.
  size_t DispatchHead = 0;
  for (size_t I = 0; I != N; ++I)
    if (Code.Code[I].Op == MOp::RingGet) {
      DispatchHead = I;
      break;
    }

  // Tarjan-free SCC via iterative DFS would be overkill: identify natural
  // loops by back edges (target <= source) above the dispatch head and
  // collapse each loop's span, charging its longest internal path times
  // the loop bound. Nested spans merge into their enclosing span.
  struct Span {
    size_t Lo, Hi;
  };
  std::vector<Span> Loops;
  for (size_t I = 0; I != N; ++I)
    for (size_t S : Succ[I])
      if (S <= I) {
        if (S <= DispatchHead)
          continue; // Dispatch edge: next packet.
        Loops.push_back({S, I});
        ++R.Loops;
      }
  // Merge overlapping spans.
  std::sort(Loops.begin(), Loops.end(),
            [](const Span &A, const Span &B) { return A.Lo < B.Lo; });
  std::vector<Span> Merged;
  for (const Span &L : Loops) {
    if (!Merged.empty() && L.Lo <= Merged.back().Hi)
      Merged.back().Hi = std::max(Merged.back().Hi, L.Hi);
    else
      Merged.push_back(L);
  }

  // Longest path by position: cost[i] = worst cycles from i to the next
  // dispatch-edge, computed backward. A merged loop span is treated as
  // one super-node costing (span's straight-line worst cost) * bound —
  // a sound over-approximation for the reducible loops the compiler
  // emits (the span contains complete iterations).
  std::vector<double> SpanCost(Merged.size(), 0.0);
  for (size_t K = 0; K != Merged.size(); ++K) {
    double C = 0.0;
    for (size_t I = Merged[K].Lo; I <= Merged[K].Hi; ++I)
      C += instrCost(Code.Code[I], Chip);
    SpanCost[K] = C * P.DefaultLoopBound;
  }

  auto spanOf = [&](size_t I) -> int {
    for (size_t K = 0; K != Merged.size(); ++K)
      if (I >= Merged[K].Lo && I <= Merged[K].Hi)
        return static_cast<int>(K);
    return -1;
  };

  // Backward DP over the acyclic skeleton (loops collapsed).
  std::vector<double> Cost(N, 0.0);
  for (size_t I = N; I-- > 0;) {
    int Sp = spanOf(I);
    if (Sp >= 0) {
      // Inside a loop span: jump to the span summary — cost from entering
      // the span is its bound-weighted cost plus the exit continuation.
      size_t Exit = Merged[static_cast<size_t>(Sp)].Hi + 1;
      double Cont = Exit < N ? Cost[Exit] : 0.0;
      Cost[I] = SpanCost[static_cast<size_t>(Sp)] + Cont;
      continue;
    }
    double Best = 0.0;
    for (size_t S : Succ[I]) {
      if (S <= I) {
        if (S <= DispatchHead)
          continue; // Packet boundary.
        continue;   // Back edges inside spans handled above.
      }
      Best = std::max(Best, Cost[S]);
    }
    Cost[I] = instrCost(Code.Code[I], Chip) + Best;
  }

  R.CyclesPerPacket = Cost[DispatchHead];
  return R;
}
