//===- cg/StackLayout.h - Sec. 5.4 stack layout --------------------------------==//
//
// Assigns final locations to stack slots (locals and spills):
//   - with the optimization ON, frames are packed tightly and share one
//     aligned region per thread (the $pSP/$vSP scheme), so nearly all of
//     the stack fits the 48 Local Memory words a thread owns;
//   - with it OFF (the paper's initial implementation), every source
//     frame occupies a 16-word-aligned, minimum-16-word area, so larger
//     programs overflow into SRAM — the paper observed >100 SRAM stack
//     accesses per packet on L3-Switch in that mode.
// Slots beyond the Local Memory budget land in the per-thread SRAM
// overflow region.
//
//===----------------------------------------------------------------------===//

#ifndef SL_CG_STACKLAYOUT_H
#define SL_CG_STACKLAYOUT_H

#include "cg/Lowering.h"
#include "rts/MemoryMap.h"

namespace sl::cg {

struct StackLayoutStats {
  unsigned TotalWords = 0;
  unsigned LmWords = 0;
  unsigned SramWords = 0;
  unsigned FastAccesses = 0; ///< 1-cycle offset-addressed LM accesses.
  unsigned SlowAccesses = 0; ///< 3-cycle LM accesses.
  unsigned SramAccesses = 0; ///< Static count of SRAM stack access sites.
};

/// Rewrites slot-relative stack accesses in \p Agg.Code into final
/// thread-relative Local Memory or SRAM accesses.
StackLayoutStats layoutStack(LoweredAggregate &Agg,
                             const rts::MemoryMap &Map, bool StackOpt);

} // namespace sl::cg

#endif // SL_CG_STACKLAYOUT_H
