//===- cg/Wcet.h - worst-case execution time analysis ---------------------------==//
//
// Paper Sec. 5.1: "An important consideration in real-time applications
// like packet processing is worst case execution time (WCET) analysis.
// Computing bounds on task execution ... ensures that the network
// processor can maintain a minimum line rate. This analysis can be
// incorporated into our current compilation framework through an
// iterative compilation design."
//
// This analyzer bounds the cycles one dispatch iteration (one packet) can
// cost on an ME thread: the longest acyclic path through the dispatch
// body, with natural loops collapsed and charged for a caller-supplied
// iteration bound, and memory operations charged their worst-case
// (uncontended latency + occupancy) service time. From the bound and the
// thread count it derives the guaranteed forwarding rate floor of one ME.
//
//===----------------------------------------------------------------------===//

#ifndef SL_CG_WCET_H
#define SL_CG_WCET_H

#include "cg/MEIR.h"
#include "ixp/ChipParams.h"

namespace sl::cg {

struct WcetParams {
  /// Bound assumed for every loop the analysis cannot bound itself
  /// (e.g. the restoring-division loop runs exactly 32 times; rule-scan
  /// loops are bounded by the table size).
  unsigned DefaultLoopBound = 32;
};

struct WcetResult {
  double CyclesPerPacket = 0.0; ///< Worst-case thread cycles per packet.
  unsigned Loops = 0;           ///< Natural loops collapsed (excl. dispatch).
  bool Bounded = true;          ///< False if irreducible flow forced a cap.

  /// Guaranteed minimum forwarding rate of one ME in packets/second:
  /// with T threads covering memory stalls, an ME retires at least
  /// T / WCET packets per WCET window in the worst case, clamped by
  /// one-instruction-per-cycle issue.
  double minPacketsPerSecond(const ixp::ChipParams &Chip,
                             unsigned Threads) const {
    if (CyclesPerPacket <= 0.0)
      return 0.0;
    double PerThread = Chip.ClockGHz * 1e9 / CyclesPerPacket;
    return PerThread * Threads;
  }
};

/// Analyzes one flattened aggregate. The dispatch loop itself (the back
/// edge to the poll block) delimits packets and is not charged as a loop.
WcetResult analyzeWcet(const FlatCode &Code, const ixp::ChipParams &Chip,
                       const WcetParams &P = WcetParams());

} // namespace sl::cg

#endif // SL_CG_WCET_H
