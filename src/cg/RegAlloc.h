//===- cg/RegAlloc.h - dual-bank register allocation ----------------------------==//
//
// The ME's 32 GPRs are split into two banks and an ALU instruction with two
// register sources must draw them from different banks (paper Sec. 4.1).
// Allocation proceeds in three steps:
//   1. bank assignment — greedy 2-coloring of the source-pair conflict
//      graph, breaking conflicts with copies,
//   2. per-bank linear scan over live intervals,
//   3. spill-everywhere rewriting for intervals that do not fit, with
//      fresh stack slots (placed by the stack layout pass), iterated to a
//      fixed point.
//
//===----------------------------------------------------------------------===//

#ifndef SL_CG_REGALLOC_H
#define SL_CG_REGALLOC_H

#include "cg/Lowering.h"
#include "cg/MEIR.h"

namespace sl::cg {

struct RegAllocStats {
  unsigned BankCopies = 0;   ///< Copies inserted to satisfy bank rules.
  unsigned SpilledRegs = 0;  ///< Virtual registers sent to the stack.
  unsigned Rounds = 0;
};

/// Allocates \p Agg.Code in place (virtual ids become physical 0..31:
/// 0..15 bank A, 16..31 bank B). Spill slots are appended to Agg.Slots.
RegAllocStats allocateRegisters(LoweredAggregate &Agg);

} // namespace sl::cg

#endif // SL_CG_REGALLOC_H
