//===- cg/Lowering.cpp ------------------------------------------------------------==//
//
// Expansion strategy per packet primitive (see CgConfig for the knobs):
//
//  PktLoad/PktStore/PktLoadWide/PktStoreWide
//    1. obtain buf_addr (+head_off unless the offset is static): one
//       SRAM metadata read per access, or the per-packet context
//       registers under PHR;
//    2. address arithmetic — constant when SOAR resolved the offset,
//       register arithmetic otherwise; unknown alignment reads one slack
//       word and realigns in registers with variable shifts;
//    3. extraction/insertion via shift/mask sequences (constant shifts
//       when SOAR resolved offset or alignment).
//    Scalar stores read-modify-write their word region unless the field
//    covers it exactly.
//
//  PktDecap/PktEncap: head_off register update under PHR; SRAM
//    read-modify-write of the head word otherwise.
//
//  ChannelPut: head_off write-back (PHR) + scratch ring put.
//
//  GLoad/GStore: SRAM/Scratch access; SWC-cached globals expand to
//    cam_lookup + Local-Memory hit path with miss fill and delayed-update
//    version checks in the dispatch loop.
//
//===----------------------------------------------------------------------===//

#include "cg/Lowering.h"

#include "obs/Remark.h"
#include "support/BitUtils.h"
#include "support/Casting.h"

#include <cassert>
#include <map>
#include <memory>
#include <set>

using namespace sl;
using namespace sl::cg;
using ir::Op;

namespace {

/// Where an IR value lives: one vreg, or two for i64 (Hi set).
struct ValLoc {
  int Lo = -1;
  int Hi = -1;
  bool is64() const { return Hi >= 0; }
};

/// Per-packet context registers (shared by every handle aliasing the same
/// packet through decap/encap).
struct HandleCtx {
  int HReg = -1; ///< Metadata block address (the handle value).
  int Buf = -1;  ///< buf_addr register (PHR).
  int Head = -1; ///< head_off register (PHR).
  int Len = -1;  ///< frame_len register (PHR).
  bool Loaded = false;
};

class Lowerer {
public:
  Lowerer(ir::Module &M, const rts::MemoryMap &Map, const CgConfig &Cfg)
      : M(M), Map(Map), Cfg(Cfg) {}

  LoweredAggregate run(const std::vector<RootInput> &Roots,
                       const std::string &Name);

private:
  // --- MEIR emission -------------------------------------------------------
  int newBlock(const std::string &N) {
    Code.Blocks.push_back(MBlock{N, {}});
    return static_cast<int>(Code.Blocks.size() - 1);
  }
  void setBlock(int B) { CurBlock = B; }
  MInstr &emit(MInstr I) {
    Code.Blocks[CurBlock].Instrs.push_back(std::move(I));
    return Code.Blocks[CurBlock].Instrs.back();
  }
  int reg() { return NextReg++; }

  int movImm(int64_t V, const char *Why = "") {
    MInstr I;
    I.Op = MOp::MovImm;
    I.Dst = reg();
    I.Imm = V;
    I.Comment = Why;
    return emit(std::move(I)).Dst;
  }
  int alu(MOp O, int A, int B) {
    MInstr I;
    I.Op = O;
    I.Dst = reg();
    I.SrcA = A;
    I.SrcB = B;
    return emit(std::move(I)).Dst;
  }
  int aluImm(MOp O, int A, int64_t Imm) {
    MInstr I;
    I.Op = O;
    I.Dst = reg();
    I.SrcA = A;
    I.Imm = Imm;
    return emit(std::move(I)).Dst;
  }
  int mov(int A) {
    MInstr I;
    I.Op = MOp::Mov;
    I.Dst = reg();
    I.SrcA = A;
    return emit(std::move(I)).Dst;
  }
  void movTo(int Dst, int A) {
    MInstr I;
    I.Op = MOp::Mov;
    I.Dst = Dst;
    I.SrcA = A;
    emit(std::move(I));
  }
  void movImmTo(int Dst, int64_t V) {
    MInstr I;
    I.Op = MOp::MovImm;
    I.Dst = Dst;
    I.Imm = V;
    emit(std::move(I));
  }
  int setCond(MCond C, int A, int B, int64_t Imm = 0) {
    MInstr I;
    I.Op = MOp::Set;
    I.Cond = C;
    I.Dst = reg();
    I.SrcA = A;
    I.SrcB = B;
    I.Imm = Imm;
    return emit(std::move(I)).Dst;
  }
  void brCond(MCond C, int A, int B, int64_t Imm, int Target) {
    MInstr I;
    I.Op = MOp::BrCond;
    I.Cond = C;
    I.SrcA = A;
    I.SrcB = B;
    I.Imm = Imm;
    I.Target = Target;
    emit(std::move(I));
  }
  void br(int Target) {
    MInstr I;
    I.Op = MOp::Br;
    I.Target = Target;
    emit(std::move(I));
  }

  /// Memory access. AddrReg < 0 means absolute address Imm.
  MInstr &memOp(MOp O, MSpace Space, MemClass Class, int AddrReg,
                int64_t Imm, unsigned XferBase, unsigned Words) {
    MInstr I;
    I.Op = O;
    I.Space = Space;
    I.Class = Class;
    I.SrcA = AddrReg;
    I.Imm = Imm;
    I.Xfer = XferBase;
    I.Words = Words;
    return emit(std::move(I));
  }
  int xferToGpr(unsigned Slot) {
    MInstr I;
    I.Op = MOp::XferToGpr;
    I.Dst = reg();
    I.Xfer = Slot;
    return emit(std::move(I)).Dst;
  }
  void gprToXfer(unsigned Slot, int Src) {
    MInstr I;
    I.Op = MOp::GprToXfer;
    I.Xfer = Slot;
    I.SrcA = Src;
    emit(std::move(I));
  }

  // --- stack slots -----------------------------------------------------------
  int newSlot(unsigned Words, unsigned FrameId) {
    Result.Slots.push_back({Words, FrameId, /*IsSpill=*/false});
    return static_cast<int>(Result.Slots.size() - 1);
  }
  int slotRead(int Slot, unsigned Word) {
    MInstr I;
    I.Op = MOp::LmRead;
    I.Class = MemClass::Stack;
    I.Dst = reg();
    I.StackSlot = Slot;
    I.SlotWord = Word;
    return emit(std::move(I)).Dst;
  }
  void slotWrite(int Slot, unsigned Word, int Src) {
    MInstr I;
    I.Op = MOp::LmWrite;
    I.Class = MemClass::Stack;
    I.SrcA = Src;
    I.StackSlot = Slot;
    I.SlotWord = Word;
    emit(std::move(I));
  }

  // --- values ------------------------------------------------------------------
  ValLoc val(ir::Value *V);
  void bind(const ir::Value *V, ValLoc L) { VMap[V] = L; }
  std::shared_ptr<HandleCtx> ctxOf(ir::Value *Handle);
  void ensureCtx(HandleCtx &Ctx);
  void fetchBufHead(HandleCtx &Ctx, bool NeedHead);
  void syncHead(ir::Instr *Site, HandleCtx &Ctx);

  // --- bit helpers ----------------------------------------------------------------
  int zero() {
    if (ZeroReg < 0)
      ZeroReg = movImm(0, "zero");
    return ZeroReg;
  }
  int maskValue(int R, unsigned Bits) {
    if (Bits >= 32)
      return R;
    return aluImm(MOp::And, R, (int64_t(1) << Bits) - 1);
  }
  int signExtendReg(int R, unsigned Bits) {
    if (Bits >= 32)
      return R;
    int S = aluImm(MOp::Shl, R, 32 - Bits);
    return aluImm(MOp::Asr, S, 32 - Bits);
  }
  ValLoc extractConst(const std::vector<int> &Words, unsigned StartBit,
                      unsigned Width);
  int extract32(const std::vector<int> &Words, unsigned StartBit,
                unsigned Width);
  void insert32(std::vector<int> &Words, unsigned StartBit, unsigned Width,
                int Val);
  void insertConst(std::vector<int> &Words, unsigned StartBit,
                   unsigned Width, ValLoc Val);
  std::vector<int> realignIn(const std::vector<int> &Raw, int LoBits,
                             unsigned OutWords);
  std::vector<int> realignOut(const std::vector<int> &W,
                              const std::vector<int> &Raw, int LoBits);
  int emitUDiv(int A, int B, bool WantRem);
  void emitGenericOverhead(const char *What);

  // --- packet regions -----------------------------------------------------------
  struct Region {
    int AddrReg = -1;     ///< Base register (buf_addr or computed address).
    int64_t AddrImm = 0;  ///< Constant byte displacement.
    int LoBits = -1;      ///< Dynamic realignment shift register, or -1.
    unsigned Words = 0;   ///< Logical payload words.
    unsigned FieldShift = 0; ///< Constant bit offset of payload in region.
  };
  Region pktRegion(ir::Instr *I, HandleCtx &Ctx, int64_t RelBitOff,
                   unsigned BitWidth);
  std::vector<int> readRegion(const Region &R, MemClass Class);
  void writeRegion(const Region &R, MemClass Class,
                   const std::vector<int> &W);

  // --- IR lowering -----------------------------------------------------------------
  void lowerRoot(ir::Function *F, int HandleReg);
  void lowerInstr(ir::Instr *I);
  void lowerBinary(ir::Instr *I);
  void lowerCompare(ir::Instr *I);
  void lowerPktAccess(ir::Instr *I);
  void lowerMetaAccess(ir::Instr *I);
  void lowerWideAccess(ir::Instr *I);
  void lowerGlobalLoad(ir::Instr *I);
  void lowerGlobalStore(ir::Instr *I);
  using BasicBlockPtrConst = ir::BasicBlock *;
  bool edgeHasPhiWork(ir::BasicBlock *Pred, ir::BasicBlock *Succ) const;
  void emitPhiMoves(ir::BasicBlock *Pred, ir::BasicBlock *Succ,
                    int PredBlockId);
  void emitSwcDispatchCheck();

  ir::Module &M;
  const rts::MemoryMap &Map;
  CgConfig Cfg;

  MCode Code;
  LoweredAggregate Result;
  int NextReg = 0;
  int CurBlock = 0;
  int ZeroReg = -1;
  int DispatchBlock = -1;

  // Per-root lowering state (cleared between roots).
  std::map<const ir::Value *, ValLoc> VMap;
  std::map<const ir::Value *, std::vector<int>> WMap;
  std::map<const ir::Value *, std::shared_ptr<HandleCtx>> HMap;
  std::map<const ir::BasicBlock *, int> BlockMap;
  std::map<const ir::Instr *, int> SlotMap;
  /// Pre-created phi destination registers.
  std::map<const ir::Instr *, ValLoc> PhiRegs;

  std::vector<int> HandleRegs; ///< Handle register per root input.

  // SWC state (per aggregate).
  std::map<const ir::Global *, int> SwcVersionReg;
  int SwcCounter = -1;
  unsigned SwcInterval = 0;
};

//===----------------------------------------------------------------------===//
// Bit manipulation helpers
//===----------------------------------------------------------------------===//

int Lowerer::extract32(const std::vector<int> &Words, unsigned StartBit,
                       unsigned Width) {
  assert(Width >= 1 && Width <= 32 && "extract32 range");
  unsigned W0 = StartBit / 32;
  unsigned Sh = StartBit % 32;
  assert(W0 < Words.size() && "extract out of region");
  if (Sh + Width <= 32) {
    unsigned Right = 32 - Sh - Width;
    int R = Words[W0];
    if (Right)
      R = aluImm(MOp::Shr, R, Right);
    if (Sh != 0 && Width < 32)
      R = maskValue(R, Width);
    else if (Right == 0 && Sh != 0)
      R = maskValue(R, Width);
    return R;
  }
  unsigned Upper = 32 - Sh;        // Bits taken from word W0.
  unsigned LowerW = Width - Upper; // Bits taken from word W0+1.
  assert(W0 + 1 < Words.size() && "extract spans past region");
  int A = Words[W0];
  if (Sh != 0)
    A = maskValue(A, Upper);
  A = aluImm(MOp::Shl, A, LowerW);
  int B = aluImm(MOp::Shr, Words[W0 + 1], 32 - LowerW);
  return alu(MOp::Or, A, B);
}

ValLoc Lowerer::extractConst(const std::vector<int> &Words,
                             unsigned StartBit, unsigned Width) {
  ValLoc L;
  if (Width <= 32) {
    L.Lo = extract32(Words, StartBit, Width);
    return L;
  }
  L.Hi = extract32(Words, StartBit, Width - 32);
  L.Lo = extract32(Words, StartBit + Width - 32, 32);
  return L;
}

void Lowerer::insert32(std::vector<int> &Words, unsigned StartBit,
                       unsigned Width, int Val) {
  assert(Width >= 1 && Width <= 32 && "insert32 range");
  unsigned W0 = StartBit / 32;
  unsigned Sh = StartBit % 32;
  assert(W0 < Words.size() && "insert out of region");
  uint64_t Mask = Width == 32 ? 0xFFFFFFFFull : ((1ull << Width) - 1);
  if (Sh + Width <= 32) {
    unsigned Right = 32 - Sh - Width;
    if (Sh == 0 && Width == 32) {
      Words[W0] = Val;
      return;
    }
    int V = maskValue(Val, Width);
    if (Right)
      V = aluImm(MOp::Shl, V, Right);
    uint64_t Keep = ~(Mask << Right) & 0xFFFFFFFFull;
    int K = aluImm(MOp::And, Words[W0], static_cast<int64_t>(Keep));
    Words[W0] = alu(MOp::Or, K, V);
    return;
  }
  unsigned Upper = 32 - Sh;
  unsigned LowerW = Width - Upper;
  assert(W0 + 1 < Words.size() && "insert spans past region");
  // Word W0: keep the top Sh bits, low Upper bits come from Val's top.
  int Hi = aluImm(MOp::Shr, Val, LowerW);
  Hi = maskValue(Hi, Upper);
  uint64_t Keep0 = ~((1ull << Upper) - 1) & 0xFFFFFFFFull;
  int K0 = aluImm(MOp::And, Words[W0], static_cast<int64_t>(Keep0));
  Words[W0] = alu(MOp::Or, K0, Hi);
  // Word W0+1: replace the top LowerW bits.
  int LoPart = maskValue(Val, LowerW);
  LoPart = aluImm(MOp::Shl, LoPart, 32 - LowerW);
  uint64_t Keep1 = (1ull << (32 - LowerW)) - 1;
  int K1 = aluImm(MOp::And, Words[W0 + 1], static_cast<int64_t>(Keep1));
  Words[W0 + 1] = alu(MOp::Or, K1, LoPart);
}

void Lowerer::insertConst(std::vector<int> &Words, unsigned StartBit,
                          unsigned Width, ValLoc Val) {
  if (Width <= 32) {
    insert32(Words, StartBit, Width, Val.Lo);
    return;
  }
  assert(Val.is64() && "wide insert needs a 64-bit value");
  insert32(Words, StartBit, Width - 32, Val.Hi);
  insert32(Words, StartBit + Width - 32, 32, Val.Lo);
}

std::vector<int> Lowerer::realignIn(const std::vector<int> &Raw, int LoBits,
                                    unsigned OutWords) {
  // w[i] = (raw[i] << lo) | (raw[i+1] >> (32-lo)); shifts >= 32 yield 0.
  int Inv = alu(MOp::Sub, movImm(32, "realign"), LoBits);
  std::vector<int> W(OutWords);
  for (unsigned I = 0; I != OutWords; ++I) {
    int A = alu(MOp::Shl, Raw[I], LoBits);
    int B = I + 1 < Raw.size() ? alu(MOp::Shr, Raw[I + 1], Inv) : zero();
    W[I] = alu(MOp::Or, A, B);
  }
  return W;
}

std::vector<int> Lowerer::realignOut(const std::vector<int> &W,
                                     const std::vector<int> &Raw,
                                     int LoBits) {
  unsigned N = static_cast<unsigned>(W.size());
  assert(Raw.size() == N + 1 && "realignOut region shape");
  int Inv = alu(MOp::Sub, movImm(32, "realign-out"), LoBits);
  int AllOnes = movImm(0xFFFFFFFFll);
  std::vector<int> Out(N + 1);
  // First word keeps the top lo bits of raw[0].
  int Low = alu(MOp::Shr, AllOnes, LoBits); // ones in the low 32-lo bits.
  int KeepTop = alu(MOp::Xor, Low, AllOnes);
  int First = alu(MOp::And, Raw[0], KeepTop);
  Out[0] = alu(MOp::Or, First, alu(MOp::Shr, W[0], LoBits));
  for (unsigned I = 1; I < N; ++I) {
    int A = alu(MOp::Shl, W[I - 1], Inv);
    int B = alu(MOp::Shr, W[I], LoBits);
    Out[I] = alu(MOp::Or, A, B);
  }
  // Last word keeps the low 32-lo bits of raw[N].
  int LastKeep = alu(MOp::And, Raw[N], Low);
  Out[N] = alu(MOp::Or, alu(MOp::Shl, W[N - 1], Inv), LastKeep);
  return Out;
}

int Lowerer::emitUDiv(int A, int B, bool WantRem) {
  // Restoring division (the ME has no divide unit).
  int Q = mov(zero());
  int R = mov(zero());
  int I = movImm(31, "udiv");
  int LoopBB = newBlock("udiv.loop");
  int SubBB = newBlock("udiv.sub");
  int NextBB = newBlock("udiv.next");
  int DoneBB = newBlock("udiv.done");
  br(LoopBB);

  setBlock(LoopBB);
  int Bit = alu(MOp::Shr, A, I);
  Bit = aluImm(MOp::And, Bit, 1);
  int R2 = aluImm(MOp::Shl, R, 1);
  R2 = alu(MOp::Or, R2, Bit);
  movTo(R, R2);
  brCond(MCond::Ult, R, B, 0, NextBB);
  br(SubBB);

  setBlock(SubBB);
  movTo(R, alu(MOp::Sub, R, B));
  int One = movImm(1);
  movTo(Q, alu(MOp::Or, Q, alu(MOp::Shl, One, I)));
  br(NextBB);

  setBlock(NextBB);
  movTo(I, aluImm(MOp::Sub, I, 1));
  brCond(MCond::Sge, I, -1, 0, LoopBB);
  br(DoneBB);

  setBlock(DoneBB);
  return WantRem ? R : Q;
}

void Lowerer::emitGenericOverhead(const char *What) {
  if (Cfg.InlineExpansion)
    return;
  // BASE / -O1: packet primitives route through generic out-of-line
  // routines; model their linkage and genericity bookkeeping (the paper
  // measures ~38 + 5*words instructions per access).
  int T = mov(zero());
  for (int K = 0; K != 5; ++K)
    T = aluImm(MOp::Add, T, 1);
  for (int K = 0; K != 4; ++K)
    T = aluImm(MOp::Shl, T, 1);
  T = aluImm(MOp::And, T, 0xFF);
  Code.Blocks[CurBlock].Instrs.back().Comment =
      std::string("generic-routine overhead: ") + What;
}

//===----------------------------------------------------------------------===//
// Handle context
//===----------------------------------------------------------------------===//

std::shared_ptr<HandleCtx> Lowerer::ctxOf(ir::Value *Handle) {
  auto It = HMap.find(Handle);
  if (It != HMap.end())
    return It->second;
  auto Ctx = std::make_shared<HandleCtx>();
  ValLoc L = val(Handle);
  Ctx->HReg = L.Lo;
  HMap[Handle] = Ctx;
  return Ctx;
}

void Lowerer::ensureCtx(HandleCtx &Ctx) {
  if (!Cfg.Phr || Ctx.Loaded)
    return;
  memOp(MOp::MemRead, MSpace::Sram, MemClass::PktMeta, Ctx.HReg, 0, 0, 3)
      .Comment = "load packet context";
  Ctx.Buf = xferToGpr(0);
  Ctx.Head = xferToGpr(1);
  Ctx.Len = xferToGpr(2);
  Ctx.Loaded = true;
}

void Lowerer::fetchBufHead(HandleCtx &Ctx, bool NeedHead) {
  if (Cfg.Phr) {
    ensureCtx(Ctx);
    return;
  }
  // One SRAM metadata read per access (buf_addr + head_off).
  memOp(MOp::MemRead, MSpace::Sram, MemClass::PktMeta, Ctx.HReg, 0, 0,
        NeedHead ? 2u : 1u)
      .Comment = "buf_addr/head_off fetch";
  Ctx.Buf = xferToGpr(0);
  if (NeedHead)
    Ctx.Head = xferToGpr(1);
}

void Lowerer::syncHead(ir::Instr *Site, HandleCtx &Ctx) {
  if (!Cfg.Phr)
    return; // Non-PHR code keeps SRAM current at every decap/encap.
  int HeadVal;
  if (Cfg.UseSoar && Site->StaticHdrOff != ir::Instr::UnknownOff)
    HeadVal = movImm(Site->StaticHdrOff, "head = static offset");
  else if (Ctx.Loaded)
    HeadVal = Ctx.Head;
  else
    return; // Context never touched: the SRAM copy is still current.
  gprToXfer(0, HeadVal);
  memOp(MOp::MemWrite, MSpace::Sram, MemClass::PktMeta, Ctx.HReg,
        /*word1*/ 4, 0, 1)
      .Comment = "head_off write-back";
}

//===----------------------------------------------------------------------===//
// Packet data regions
//===----------------------------------------------------------------------===//

Lowerer::Region Lowerer::pktRegion(ir::Instr *I, HandleCtx &Ctx,
                                   int64_t RelBitOff, unsigned BitWidth) {
  Region R;
  bool StaticOff = Cfg.UseSoar && I->StaticHdrOff != ir::Instr::UnknownOff;

  if (StaticOff) {
    fetchBufHead(Ctx, /*NeedHead=*/false);
    int64_t AbsBit = I->StaticHdrOff * 8 + RelBitOff;
    int64_t RegionBit = AbsBit >= 0 ? (AbsBit & ~int64_t(31))
                                    : -((-AbsBit + 31) & ~int64_t(31));
    R.AddrReg = Ctx.Buf;
    R.AddrImm = RegionBit / 8;
    R.FieldShift = static_cast<unsigned>(AbsBit - RegionBit);
    R.Words =
        static_cast<unsigned>((AbsBit + BitWidth - RegionBit + 31) / 32);
    return R;
  }

  fetchBufHead(Ctx, /*NeedHead=*/true);
  bool Align4 = Cfg.UseSoar && I->StaticAlign >= 4;
  if (Align4) {
    // Word boundaries are static relative to the header; only the base
    // address is a register.
    int64_t RegionBit = RelBitOff & ~int64_t(31);
    R.FieldShift = static_cast<unsigned>(RelBitOff - RegionBit);
    R.Words =
        static_cast<unsigned>((RelBitOff + BitWidth - RegionBit + 31) / 32);
    R.AddrReg = alu(MOp::Add, Ctx.Buf, Ctx.Head);
    R.AddrImm = RegionBit / 8;
    return R;
  }

  // Fully dynamic: realignment with one slack word.
  int ByteOff = aluImm(MOp::Add, Ctx.Head, RelBitOff / 8);
  int Addr = alu(MOp::Add, Ctx.Buf, ByteOff);
  R.AddrReg = aluImm(MOp::And, Addr, ~int64_t(3));
  int LoB = aluImm(MOp::And, Addr, 3);
  int Lo = aluImm(MOp::Shl, LoB, 3);
  if (RelBitOff % 8)
    Lo = aluImm(MOp::Add, Lo, RelBitOff % 8);
  R.LoBits = Lo;
  R.FieldShift = static_cast<unsigned>(0);
  R.Words = static_cast<unsigned>((RelBitOff % 8 + BitWidth + 31) / 32);
  return R;
}

std::vector<int> Lowerer::readRegion(const Region &R, MemClass Class) {
  unsigned RawWords = R.LoBits >= 0 ? R.Words + 1 : R.Words;
  memOp(MOp::MemRead, MSpace::Dram, Class, R.AddrReg, R.AddrImm, 0,
        RawWords);
  std::vector<int> Raw(RawWords);
  for (unsigned K = 0; K != RawWords; ++K)
    Raw[K] = xferToGpr(K);
  if (R.LoBits >= 0)
    return realignIn(Raw, R.LoBits, R.Words);
  return Raw;
}

void Lowerer::writeRegion(const Region &R, MemClass Class,
                          const std::vector<int> &W) {
  if (R.LoBits >= 0) {
    unsigned RawWords = R.Words + 1;
    memOp(MOp::MemRead, MSpace::Dram, Class, R.AddrReg, R.AddrImm, 0,
          RawWords)
        .Comment = "unaligned store RMW";
    std::vector<int> Raw(RawWords);
    for (unsigned K = 0; K != RawWords; ++K)
      Raw[K] = xferToGpr(K);
    std::vector<int> Out = realignOut(W, Raw, R.LoBits);
    for (unsigned K = 0; K != RawWords; ++K)
      gprToXfer(K, Out[K]);
    memOp(MOp::MemWrite, MSpace::Dram, Class, R.AddrReg, R.AddrImm, 0,
          RawWords);
    return;
  }
  for (unsigned K = 0; K != R.Words; ++K)
    gprToXfer(K, W[K]);
  memOp(MOp::MemWrite, MSpace::Dram, Class, R.AddrReg, R.AddrImm, 0,
        R.Words);
}

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

ValLoc Lowerer::val(ir::Value *V) {
  auto It = VMap.find(V);
  if (It != VMap.end())
    return It->second;
  if (auto *C = dyn_cast<ir::ConstInt>(V)) {
    ValLoc L;
    if (C->type().isInt() && C->type().bits() == 64) {
      L.Lo = movImm(static_cast<int64_t>(C->value() & 0xFFFFFFFFull));
      L.Hi = movImm(static_cast<int64_t>(C->value() >> 32));
    } else {
      L.Lo = movImm(static_cast<int64_t>(C->value()));
    }
    return L;
  }
  assert(false && "value used before definition during lowering");
  return ValLoc();
}

//===----------------------------------------------------------------------===//
// Scalar instructions
//===----------------------------------------------------------------------===//

void Lowerer::lowerCompare(ir::Instr *I) {
  unsigned Bits = I->operand(0)->type().bits();
  ValLoc A = val(I->operand(0));
  ValLoc B = val(I->operand(1));
  MCond C;
  bool Signed = false;
  switch (I->op()) {
  case Op::CmpEq:
    C = MCond::Eq;
    break;
  case Op::CmpNe:
    C = MCond::Ne;
    break;
  case Op::CmpULt:
    C = MCond::Ult;
    break;
  case Op::CmpULe:
    C = MCond::Ule;
    break;
  case Op::CmpUGt:
    C = MCond::Ugt;
    break;
  case Op::CmpUGe:
    C = MCond::Uge;
    break;
  case Op::CmpSLt:
    C = MCond::Slt;
    Signed = true;
    break;
  case Op::CmpSLe:
    C = MCond::Sle;
    Signed = true;
    break;
  case Op::CmpSGt:
    C = MCond::Sgt;
    Signed = true;
    break;
  default:
    C = MCond::Sge;
    Signed = true;
    break;
  }

  ValLoc R;
  if (Bits == 64) {
    switch (C) {
    case MCond::Eq:
    case MCond::Ne: {
      int XorLo = alu(MOp::Xor, A.Lo, B.Lo);
      int XorHi = alu(MOp::Xor, A.Hi, B.Hi);
      int OrAll = alu(MOp::Or, XorLo, XorHi);
      R.Lo = setCond(C, OrAll, -1, 0);
      break;
    }
    default: {
      // lt = (a.hi < b.hi) | (a.hi == b.hi & a.lo < b.lo); derive the
      // requested relation from lt/eq.
      MCond HiRel = Signed ? MCond::Slt : MCond::Ult;
      bool Swap = C == MCond::Ugt || C == MCond::Sgt || C == MCond::Uge ||
                  C == MCond::Sge;
      int ALo = Swap ? B.Lo : A.Lo, AHi = Swap ? B.Hi : A.Hi;
      int BLo = Swap ? A.Lo : B.Lo, BHi = Swap ? A.Hi : B.Hi;
      int HiLt = setCond(HiRel, AHi, BHi);
      int HiEq = setCond(MCond::Eq, AHi, BHi);
      int LoLt = setCond(MCond::Ult, ALo, BLo);
      int Lt = alu(MOp::Or, HiLt, alu(MOp::And, HiEq, LoLt));
      bool OrEqual = C == MCond::Ule || C == MCond::Sle || C == MCond::Uge ||
                     C == MCond::Sge;
      if (OrEqual) {
        int EqLo = setCond(MCond::Eq, A.Lo, B.Lo);
        int EqHi = setCond(MCond::Eq, A.Hi, B.Hi);
        int Eq = alu(MOp::And, EqLo, EqHi);
        R.Lo = alu(MOp::Or, Lt, Eq);
      } else {
        R.Lo = Lt;
      }
      break;
    }
    }
    bind(I, R);
    return;
  }

  int AReg = A.Lo, BReg = B.Lo;
  if (Signed && Bits < 32) {
    AReg = signExtendReg(AReg, Bits);
    BReg = signExtendReg(BReg, Bits);
  }
  R.Lo = setCond(C, AReg, BReg);
  bind(I, R);
}

void Lowerer::lowerBinary(ir::Instr *I) {
  if (ir::isCompareOp(I->op())) {
    lowerCompare(I);
    return;
  }
  unsigned Bits = I->type().bits();
  ValLoc A = val(I->operand(0));
  ValLoc B = val(I->operand(1));
  ValLoc R;

  if (Bits == 64) {
    switch (I->op()) {
    case Op::Add: {
      R.Lo = alu(MOp::Add, A.Lo, B.Lo);
      int Carry = setCond(MCond::Ult, R.Lo, A.Lo);
      int Hi = alu(MOp::Add, A.Hi, B.Hi);
      R.Hi = alu(MOp::Add, Hi, Carry);
      break;
    }
    case Op::Sub: {
      int Borrow = setCond(MCond::Ult, A.Lo, B.Lo);
      R.Lo = alu(MOp::Sub, A.Lo, B.Lo);
      int Hi = alu(MOp::Sub, A.Hi, B.Hi);
      R.Hi = alu(MOp::Sub, Hi, Borrow);
      break;
    }
    case Op::And:
      R.Lo = alu(MOp::And, A.Lo, B.Lo);
      R.Hi = alu(MOp::And, A.Hi, B.Hi);
      break;
    case Op::Or:
      R.Lo = alu(MOp::Or, A.Lo, B.Lo);
      R.Hi = alu(MOp::Or, A.Hi, B.Hi);
      break;
    case Op::Xor:
      R.Lo = alu(MOp::Xor, A.Lo, B.Lo);
      R.Hi = alu(MOp::Xor, A.Hi, B.Hi);
      break;
    case Op::Shl:
    case Op::LShr: {
      // The amount must be compile-time constant; peek through the width
      // conversions unoptimized (BASE) code leaves around literals.
      ir::Value *Amt = I->operand(1);
      while (auto *Cast = dyn_cast<ir::Instr>(Amt)) {
        if (Cast->op() != Op::ZExt && Cast->op() != Op::SExt &&
            Cast->op() != Op::Trunc)
          break;
        Amt = Cast->operand(0);
      }
      const auto *Sh = dyn_cast<ir::ConstInt>(Amt);
      assert(Sh && "64-bit shifts require constant amounts");
      unsigned K = static_cast<unsigned>(Sh->value() & 63);
      bool Left = I->op() == Op::Shl;
      if (K == 0) {
        R = A;
      } else if (K >= 32) {
        if (Left) {
          R.Hi = aluImm(MOp::Shl, A.Lo, K - 32);
          R.Lo = zero();
        } else {
          R.Lo = aluImm(MOp::Shr, A.Hi, K - 32);
          R.Hi = zero();
        }
      } else if (Left) {
        int HiShift = aluImm(MOp::Shl, A.Hi, K);
        int Carry = aluImm(MOp::Shr, A.Lo, 32 - K);
        R.Hi = alu(MOp::Or, HiShift, Carry);
        R.Lo = aluImm(MOp::Shl, A.Lo, K);
      } else {
        int LoShift = aluImm(MOp::Shr, A.Lo, K);
        int Carry = aluImm(MOp::Shl, A.Hi, 32 - K);
        R.Lo = alu(MOp::Or, LoShift, Carry);
        R.Hi = aluImm(MOp::Shr, A.Hi, K);
      }
      break;
    }
    default:
      assert(false && "unsupported 64-bit operation in ME lowering");
      R.Lo = zero();
      R.Hi = zero();
    }
    bind(I, R);
    return;
  }

  switch (I->op()) {
  case Op::Add:
    R.Lo = maskValue(alu(MOp::Add, A.Lo, B.Lo), Bits);
    break;
  case Op::Sub:
    R.Lo = maskValue(alu(MOp::Sub, A.Lo, B.Lo), Bits);
    break;
  case Op::Mul:
    R.Lo = maskValue(alu(MOp::Mul, A.Lo, B.Lo), Bits);
    break;
  case Op::And:
    R.Lo = alu(MOp::And, A.Lo, B.Lo);
    break;
  case Op::Or:
    R.Lo = alu(MOp::Or, A.Lo, B.Lo);
    break;
  case Op::Xor:
    R.Lo = alu(MOp::Xor, A.Lo, B.Lo);
    break;
  case Op::Shl:
    R.Lo = maskValue(alu(MOp::Shl, A.Lo, B.Lo), Bits);
    break;
  case Op::LShr:
    R.Lo = alu(MOp::Shr, A.Lo, B.Lo);
    break;
  case Op::AShr: {
    int S = Bits < 32 ? signExtendReg(A.Lo, Bits) : A.Lo;
    R.Lo = maskValue(alu(MOp::Asr, S, B.Lo), Bits);
    break;
  }
  case Op::UDiv:
    R.Lo = emitUDiv(A.Lo, B.Lo, /*WantRem=*/false);
    break;
  case Op::URem:
    R.Lo = emitUDiv(A.Lo, B.Lo, /*WantRem=*/true);
    break;
  case Op::SDiv:
  case Op::SRem: {
    // |a| / |b| with sign fixups, branch-free.
    int SA = Bits < 32 ? signExtendReg(A.Lo, Bits) : A.Lo;
    int SB = Bits < 32 ? signExtendReg(B.Lo, Bits) : B.Lo;
    int SignA = aluImm(MOp::Asr, SA, 31);
    int SignB = aluImm(MOp::Asr, SB, 31);
    int AbsA = alu(MOp::Sub, alu(MOp::Xor, SA, SignA), SignA);
    int AbsB = alu(MOp::Sub, alu(MOp::Xor, SB, SignB), SignB);
    int Res = emitUDiv(AbsA, AbsB, I->op() == Op::SRem);
    int Sign = I->op() == Op::SRem ? SignA : alu(MOp::Xor, SignA, SignB);
    int Fixed = alu(MOp::Sub, alu(MOp::Xor, Res, Sign), Sign);
    R.Lo = maskValue(Fixed, Bits);
    break;
  }
  default:
    assert(false && "unhandled binary opcode");
    R.Lo = zero();
  }
  bind(I, R);
}

//===----------------------------------------------------------------------===//
// Packet / metadata / global accesses
//===----------------------------------------------------------------------===//

void Lowerer::lowerPktAccess(ir::Instr *I) {
  auto Ctx = ctxOf(I->operand(0));
  bool IsLoad = I->op() == Op::PktLoad;
  emitGenericOverhead(IsLoad ? "pkt.load" : "pkt.store");
  Region R = pktRegion(I, *Ctx, I->BitOff, I->BitWidth);

  if (IsLoad) {
    std::vector<int> W = readRegion(R, MemClass::PktData);
    ValLoc V = extractConst(W, R.FieldShift, I->BitWidth);
    // Widen to the IR result type.
    if (I->type().bits() == 64 && !V.is64())
      V.Hi = zero();
    bind(I, V);
    return;
  }

  ValLoc V = val(I->operand(1));
  bool Covers = R.FieldShift == 0 && I->BitWidth == R.Words * 32 &&
                R.LoBits < 0;
  std::vector<int> W;
  if (Covers) {
    W.resize(R.Words);
    if (I->BitWidth <= 32) {
      W[0] = V.Lo;
    } else {
      W[0] = V.Hi;
      W[1] = V.Lo;
    }
  } else {
    W = readRegion(R, MemClass::PktData); // RMW.
    insertConst(W, R.FieldShift, I->BitWidth, V);
  }
  writeRegion(R, MemClass::PktData, W);
}

void Lowerer::lowerMetaAccess(ir::Instr *I) {
  auto Ctx = ctxOf(I->operand(0));
  bool IsLoad = I->op() == Op::MetaLoad;
  emitGenericOverhead(IsLoad ? "meta.load" : "meta.store");

  unsigned StartWord = I->BitOff / 32;
  unsigned EndWord = (I->BitOff + I->BitWidth + 31) / 32;
  unsigned Words = EndWord - StartWord;
  unsigned Shift = I->BitOff - StartWord * 32;
  int64_t ByteOff = 12 + StartWord * 4; // After buf/head/len words.

  if (IsLoad) {
    memOp(MOp::MemRead, MSpace::Sram, MemClass::PktMeta, Ctx->HReg, ByteOff,
          0, Words);
    std::vector<int> W(Words);
    for (unsigned K = 0; K != Words; ++K)
      W[K] = xferToGpr(K);
    ValLoc V = extractConst(W, Shift, I->BitWidth);
    if (I->type().bits() == 64 && !V.is64())
      V.Hi = zero();
    bind(I, V);
    return;
  }

  ValLoc V = val(I->operand(1));
  bool Covers = Shift == 0 && I->BitWidth == Words * 32;
  std::vector<int> W(Words);
  if (!Covers) {
    memOp(MOp::MemRead, MSpace::Sram, MemClass::PktMeta, Ctx->HReg, ByteOff,
          0, Words)
        .Comment = "meta RMW";
    for (unsigned K = 0; K != Words; ++K)
      W[K] = xferToGpr(K);
    insertConst(W, Shift, I->BitWidth, V);
  } else {
    W[0] = V.Lo;
    if (Words > 1)
      W[1] = V.is64() ? V.Hi : zero();
  }
  for (unsigned K = 0; K != Words; ++K)
    gprToXfer(K, W[K]);
  memOp(MOp::MemWrite, MSpace::Sram, MemClass::PktMeta, Ctx->HReg, ByteOff,
        0, Words);
}

void Lowerer::lowerWideAccess(ir::Instr *I) {
  auto Ctx = ctxOf(I->operand(0));
  bool IsLoad = I->op() == Op::PktLoadWide;
  emitGenericOverhead(IsLoad ? "pkt.load.wide" : "pkt.store.wide");

  if (I->Space == ir::WideSpace::Meta) {
    int64_t ByteOff = 12 + I->ByteOff;
    if (IsLoad) {
      memOp(MOp::MemRead, MSpace::Sram, MemClass::PktMeta, Ctx->HReg,
            ByteOff, 0, I->Words);
      std::vector<int> W(I->Words);
      for (unsigned K = 0; K != I->Words; ++K)
        W[K] = xferToGpr(K);
      WMap[I] = std::move(W);
    } else {
      const std::vector<int> &W = WMap.at(I->operand(1));
      for (unsigned K = 0; K != I->Words; ++K)
        gprToXfer(K, W[K]);
      memOp(MOp::MemWrite, MSpace::Sram, MemClass::PktMeta, Ctx->HReg,
            ByteOff, 0, I->Words);
    }
    return;
  }

  Region R = pktRegion(I, *Ctx, int64_t(I->ByteOff) * 8, I->Words * 32);
  // With a static offset the header need not be word-aligned in DRAM: the
  // logical wide value then sits FieldShift bits into the raw region.
  if (IsLoad) {
    std::vector<int> Raw = readRegion(R, MemClass::PktData);
    if (R.LoBits < 0 && R.FieldShift != 0) {
      std::vector<int> W(I->Words);
      for (unsigned K = 0; K != I->Words; ++K)
        W[K] = extract32(Raw, R.FieldShift + 32 * K, 32);
      WMap[I] = std::move(W);
    } else {
      Raw.resize(I->Words, zero());
      WMap[I] = std::move(Raw);
    }
  } else {
    const std::vector<int> &W = WMap.at(I->operand(1));
    if (R.LoBits < 0 && R.FieldShift != 0) {
      std::vector<int> Raw = readRegion(R, MemClass::PktData); // RMW.
      for (unsigned K = 0; K != I->Words; ++K)
        insert32(Raw, R.FieldShift + 32 * K, 32, W[K]);
      writeRegion(R, MemClass::PktData, Raw);
    } else {
      writeRegion(R, MemClass::PktData, W);
    }
  }
}

void Lowerer::lowerGlobalLoad(ir::Instr *I) {
  const ir::Global *G = I->GlobalRef;
  unsigned EW = rts::MemoryMap::elemWords(G);
  ValLoc Idx = val(I->operand(0));
  bool Cached = Cfg.Swc && G->Cached && Map.cacheFor(G);

  MSpace Space =
      G->Level == ir::MemLevel::Scratch ? MSpace::Scratch : MSpace::Sram;
  int64_t Base = Space == MSpace::Scratch ? Map.ScratchGlobalBase.at(G)
                                          : Map.GlobalBase.at(G);

  auto homeRead = [&](MemClass Class) {
    int Off = EW == 1 ? aluImm(MOp::Shl, Idx.Lo, 2)
                      : aluImm(MOp::Shl, Idx.Lo, 3);
    memOp(MOp::MemRead, Space, Class, Off, Base, 0, EW);
    ValLoc V;
    if (EW == 2) {
      V.Hi = xferToGpr(0);
      V.Lo = xferToGpr(1);
    } else {
      V.Lo = xferToGpr(0);
    }
    return V;
  };

  if (!Cached) {
    ValLoc V = homeRead(MemClass::App);
    if (I->type().bits() == 64 && !V.is64())
      V.Hi = zero();
    if (I->type().bits() < 32)
      V.Lo = maskValue(V.Lo, I->type().bits());
    bind(I, V);
    return;
  }

  const rts::CacheCfg *CC = Map.cacheFor(G);
  // cam_lookup; hit -> Local Memory; miss -> home + fill.
  MInstr LK;
  LK.Op = MOp::CamLookup;
  LK.Dst = reg();
  LK.SrcA = Idx.Lo;
  LK.CamBase = CC->CamBase;
  LK.CamSize = CC->CamEntries;
  int LkRes = emit(std::move(LK)).Dst;
  int Hit = aluImm(MOp::Shr, LkRes, 8);
  int Entry = aluImm(MOp::And, LkRes, 0xFF);

  int HitBB = newBlock("swc.hit");
  int MissBB = newBlock("swc.miss");
  int JoinBB = newBlock("swc.join");
  ValLoc Out;
  Out.Lo = reg();
  if (EW == 2)
    Out.Hi = reg();
  brCond(MCond::Ne, Hit, -1, 0, HitBB);
  br(MissBB);

  setBlock(MissBB);
  {
    ValLoc V = homeRead(MemClass::AppCache);
    MInstr CW;
    CW.Op = MOp::CamWrite;
    CW.SrcA = Idx.Lo;  // Tag.
    CW.SrcB = Entry;   // Entry index.
    CW.CamBase = CC->CamBase;
    CW.CamSize = CC->CamEntries;
    emit(std::move(CW));
    // Fill the Local Memory line.
    int LineOff = EW == 1 ? Entry : aluImm(MOp::Shl, Entry, 1);
    MInstr LW;
    LW.Op = MOp::LmWrite;
    LW.Class = MemClass::AppCache;
    LW.SrcA = V.Lo;
    LW.SrcB = LineOff;
    LW.Imm = CC->LmBase;
    emit(std::move(LW));
    if (EW == 2) {
      MInstr LW2;
      LW2.Op = MOp::LmWrite;
      LW2.Class = MemClass::AppCache;
      LW2.SrcA = V.Hi;
      LW2.SrcB = LineOff;
      LW2.Imm = CC->LmBase + 1;
      emit(std::move(LW2));
    }
    movTo(Out.Lo, V.Lo);
    if (EW == 2)
      movTo(Out.Hi, V.Hi);
    br(JoinBB);
  }

  setBlock(HitBB);
  {
    int LineOff = EW == 1 ? Entry : aluImm(MOp::Shl, Entry, 1);
    MInstr LR;
    LR.Op = MOp::LmRead;
    LR.Class = MemClass::AppCache;
    LR.Dst = reg();
    LR.SrcB = LineOff;
    LR.Imm = CC->LmBase;
    int Lo = emit(std::move(LR)).Dst;
    movTo(Out.Lo, Lo);
    if (EW == 2) {
      MInstr LR2;
      LR2.Op = MOp::LmRead;
      LR2.Class = MemClass::AppCache;
      LR2.Dst = reg();
      LR2.SrcB = LineOff;
      LR2.Imm = CC->LmBase + 1;
      movTo(Out.Hi, emit(std::move(LR2)).Dst);
    }
    br(JoinBB);
  }

  setBlock(JoinBB);
  if (I->type().bits() == 64 && !Out.is64())
    Out.Hi = zero();
  if (I->type().bits() < 32)
    Out.Lo = maskValue(Out.Lo, I->type().bits());
  bind(I, Out);
}

void Lowerer::lowerGlobalStore(ir::Instr *I) {
  const ir::Global *G = I->GlobalRef;
  unsigned EW = rts::MemoryMap::elemWords(G);
  ValLoc Idx = val(I->operand(0));
  ValLoc V = val(I->operand(1));
  MSpace Space =
      G->Level == ir::MemLevel::Scratch ? MSpace::Scratch : MSpace::Sram;
  int64_t Base = Space == MSpace::Scratch ? Map.ScratchGlobalBase.at(G)
                                          : Map.GlobalBase.at(G);
  int Off = EW == 1 ? aluImm(MOp::Shl, Idx.Lo, 2)
                    : aluImm(MOp::Shl, Idx.Lo, 3);
  if (EW == 2) {
    gprToXfer(0, V.is64() ? V.Hi : zero());
    gprToXfer(1, V.Lo);
  } else {
    gprToXfer(0, V.Lo);
  }
  memOp(MOp::MemWrite, Space, MemClass::App, Off, Base, 0, EW);

  // Delayed-update store path: bump the version word so caching MEs
  // eventually notice (Fig. 8 of the paper).
  if (Cfg.Swc && G->Cached && Map.cacheFor(G)) {
    const rts::CacheCfg *CC = Map.cacheFor(G);
    memOp(MOp::MemRead, MSpace::Scratch, MemClass::AppCache, -1,
          CC->VersionAddr, 0, 1)
        .Comment = "version bump (read)";
    int Ver = xferToGpr(0);
    int NewVer = aluImm(MOp::Add, Ver, 1);
    gprToXfer(0, NewVer);
    memOp(MOp::MemWrite, MSpace::Scratch, MemClass::AppCache, -1,
          CC->VersionAddr, 0, 1)
        .Comment = "version bump (write)";
  }
}

//===----------------------------------------------------------------------===//
// Instruction dispatch
//===----------------------------------------------------------------------===//

void Lowerer::lowerInstr(ir::Instr *I) {
  if (ir::isBinaryOp(I->op())) {
    lowerBinary(I);
    return;
  }
  switch (I->op()) {
  case Op::ZExt: {
    ValLoc A = val(I->operand(0));
    ValLoc R;
    if (I->type().bits() == 64) {
      R.Lo = A.Lo;
      R.Hi = zero();
    } else {
      R.Lo = A.Lo; // Already masked to the narrower width.
    }
    bind(I, R);
    return;
  }
  case Op::SExt: {
    unsigned SrcBits = I->operand(0)->type().bits();
    ValLoc A = val(I->operand(0));
    ValLoc R;
    if (I->type().bits() == 64) {
      int S = SrcBits < 32 ? signExtendReg(A.Lo, SrcBits) : A.Lo;
      R.Lo = S;
      R.Hi = aluImm(MOp::Asr, S, 31);
    } else {
      int S = signExtendReg(A.Lo, SrcBits);
      R.Lo = maskValue(S, I->type().bits());
    }
    bind(I, R);
    return;
  }
  case Op::Trunc: {
    ValLoc A = val(I->operand(0));
    ValLoc R;
    R.Lo = maskValue(A.Lo, I->type().bits());
    bind(I, R);
    return;
  }
  case Op::Select: {
    ValLoc C = val(I->operand(0));
    ValLoc A = val(I->operand(1));
    ValLoc B = val(I->operand(2));
    // mask = 0 - c; r = (a & mask) | (b & ~mask).
    int Mask = alu(MOp::Sub, zero(), C.Lo);
    int NotMask = aluImm(MOp::Xor, Mask, 0xFFFFFFFFll);
    ValLoc R;
    R.Lo = alu(MOp::Or, alu(MOp::And, A.Lo, Mask),
               alu(MOp::And, B.Lo, NotMask));
    if (I->type().isInt() && I->type().bits() == 64)
      R.Hi = alu(MOp::Or, alu(MOp::And, A.Hi, Mask),
                 alu(MOp::And, B.Hi, NotMask));
    bind(I, R);
    return;
  }
  case Op::Alloca: {
    unsigned Words = 1;
    if (I->AllocTy.isInt() && I->AllocTy.bits() == 64)
      Words = 2;
    // Frame id comes from the inliner's block suffix bookkeeping: names
    // like "x.inl7" belong to inline frame 7.
    unsigned Frame = 0;
    const std::string &N = I->name();
    size_t Pos = N.rfind(".inl");
    if (Pos != std::string::npos)
      Frame = static_cast<unsigned>(
          std::atoi(N.c_str() + Pos + 4) % 1024) + 1;
    SlotMap[I] = newSlot(Words, Frame);
    bind(I, ValLoc{zero(), -1});
    return;
  }
  case Op::Load: {
    auto *Slot = cast<ir::Instr>(I->operand(0));
    int S = SlotMap.at(Slot);
    ValLoc R;
    R.Lo = slotRead(S, 0);
    if (I->type().isInt() && I->type().bits() == 64)
      R.Hi = slotRead(S, 1);
    bind(I, R);
    // A packet handle reloaded from the stack needs a fresh context.
    return;
  }
  case Op::Store: {
    auto *Slot = cast<ir::Instr>(I->operand(0));
    int S = SlotMap.at(Slot);
    ValLoc V = val(I->operand(1));
    slotWrite(S, 0, V.Lo);
    if (V.is64())
      slotWrite(S, 1, V.Hi);
    return;
  }
  case Op::GLoad:
    lowerGlobalLoad(I);
    return;
  case Op::GStore:
    lowerGlobalStore(I);
    return;
  case Op::PktLoad:
  case Op::PktStore:
    lowerPktAccess(I);
    return;
  case Op::MetaLoad:
  case Op::MetaStore:
    lowerMetaAccess(I);
    return;
  case Op::PktLoadWide:
  case Op::PktStoreWide:
    lowerWideAccess(I);
    return;
  case Op::WideExtract: {
    const std::vector<int> &W = WMap.at(I->operand(0));
    ValLoc V = extractConst(W, I->BitOff, I->BitWidth);
    if (I->type().bits() == 64 && !V.is64())
      V.Hi = zero();
    bind(I, V);
    return;
  }
  case Op::WideInsert: {
    std::vector<int> W = WMap.at(I->operand(0)); // Copy (SSA).
    insertConst(W, I->BitOff, I->BitWidth, val(I->operand(1)));
    WMap[I] = std::move(W);
    return;
  }
  case Op::WideZero: {
    std::vector<int> W(I->Words, zero());
    WMap[I] = std::move(W);
    return;
  }
  case Op::PktDecap: {
    auto Ctx = ctxOf(I->operand(0));
    emitGenericOverhead("pkt.decap");
    ValLoc Size = val(I->operand(1));
    if (Cfg.Phr) {
      // One ALU op keeps the register current; static-offset consumers use
      // their constants and boundary sites materialize from annotations,
      // but a later dynamic decap must still see the true head.
      ensureCtx(*Ctx);
      movTo(Ctx->Head, alu(MOp::Add, Ctx->Head, Size.Lo));
      if (Cfg.Rem)
        Cfg.Rem->remark("phr", obs::RemarkKind::Fired,
                        "head-update-in-register",
                        I->parent()->parent()->name(), I->Loc)
            .arg("site", "decap")
            .arg("savedAccesses", 2u);
    } else {
      // SRAM read-modify-write of head_off.
      memOp(MOp::MemRead, MSpace::Sram, MemClass::PktMeta, Ctx->HReg, 4, 0,
            1)
          .Comment = "decap: head RMW read";
      int Head = xferToGpr(0);
      int NewHead = alu(MOp::Add, Head, Size.Lo);
      gprToXfer(0, NewHead);
      memOp(MOp::MemWrite, MSpace::Sram, MemClass::PktMeta, Ctx->HReg, 4, 0,
            1)
          .Comment = "decap: head RMW write";
    }
    bind(I, ValLoc{Ctx->HReg, -1});
    HMap[I] = Ctx; // Aliases the same packet.
    return;
  }
  case Op::PktEncap: {
    auto Ctx = ctxOf(I->operand(0));
    emitGenericOverhead("pkt.encap");
    if (Cfg.Phr) {
      ensureCtx(*Ctx);
      movTo(Ctx->Head, aluImm(MOp::Sub, Ctx->Head, I->SizeBytes));
      if (Cfg.Rem)
        Cfg.Rem->remark("phr", obs::RemarkKind::Fired,
                        "head-update-in-register",
                        I->parent()->parent()->name(), I->Loc)
            .arg("site", "encap")
            .arg("savedAccesses", 2u);
    } else {
      memOp(MOp::MemRead, MSpace::Sram, MemClass::PktMeta, Ctx->HReg, 4, 0,
            1)
          .Comment = "encap: head RMW read";
      int Head = xferToGpr(0);
      int NewHead = aluImm(MOp::Sub, Head, I->SizeBytes);
      gprToXfer(0, NewHead);
      memOp(MOp::MemWrite, MSpace::Sram, MemClass::PktMeta, Ctx->HReg, 4, 0,
            1)
          .Comment = "encap: head RMW write";
    }
    bind(I, ValLoc{Ctx->HReg, -1});
    HMap[I] = Ctx;
    return;
  }
  case Op::PktCopy: {
    auto Ctx = ctxOf(I->operand(0));
    syncHead(I, *Ctx); // The RTS clones SRAM metadata; keep it current.
    MInstr C;
    C.Op = MOp::RtsPktCopy;
    C.Dst = reg();
    C.SrcA = Ctx->HReg;
    int NewH = emit(std::move(C)).Dst;
    bind(I, ValLoc{NewH, -1});
    // Fresh context for the clone (loaded lazily on first access).
    auto NewCtx = std::make_shared<HandleCtx>();
    NewCtx->HReg = NewH;
    HMap[I] = NewCtx;
    return;
  }
  case Op::PktDrop: {
    auto Ctx = ctxOf(I->operand(0));
    MInstr D;
    D.Op = MOp::RtsPktDrop;
    D.SrcA = Ctx->HReg;
    emit(std::move(D));
    return;
  }
  case Op::PktLength: {
    auto Ctx = ctxOf(I->operand(0));
    ValLoc R;
    if (Cfg.Phr) {
      ensureCtx(*Ctx);
      R.Lo = alu(MOp::Sub, Ctx->Len, Ctx->Head);
    } else {
      memOp(MOp::MemRead, MSpace::Sram, MemClass::PktMeta, Ctx->HReg, 4, 0,
            2)
          .Comment = "length fetch";
      int Head = xferToGpr(0);
      int Len = xferToGpr(1);
      R.Lo = alu(MOp::Sub, Len, Head);
    }
    bind(I, R);
    return;
  }
  case Op::ChannelPut: {
    auto Ctx = ctxOf(I->operand(0));
    syncHead(I, *Ctx);
    MInstr P;
    P.Op = MOp::RingPut;
    P.Class = MemClass::PktRing;
    P.SrcA = Ctx->HReg;
    P.Ring = I->ChanId == 0 ? rts::TxRing : rts::ringOfChannel(I->ChanId);
    if (I->ChanId != 0 && Cfg.NNChannels.count(I->ChanId)) {
      P.NNRing = true;
      P.Comment = "nn ring";
    }
    emit(std::move(P));
    return;
  }
  case Op::LockAcquire: {
    int Spin = newBlock("lock.spin");
    int Got = newBlock("lock.got");
    br(Spin);
    setBlock(Spin);
    MInstr T;
    T.Op = MOp::AtomicTestSet;
    T.Class = MemClass::Lock;
    T.Dst = reg();
    T.Imm = Map.LockBase + I->LockId * 4;
    int Old = emit(std::move(T)).Dst;
    brCond(MCond::Eq, Old, -1, 0, Got);
    MInstr Y;
    Y.Op = MOp::CtxArb;
    emit(std::move(Y));
    br(Spin);
    setBlock(Got);
    return;
  }
  case Op::LockRelease: {
    MInstr C;
    C.Op = MOp::AtomicClear;
    C.Class = MemClass::Lock;
    C.Imm = Map.LockBase + I->LockId * 4;
    emit(std::move(C));
    return;
  }
  case Op::Call:
    assert(false && "calls must be inlined before lowering");
    return;
  case Op::Phi:
    // Handled via PhiRegs + edge moves.
    bind(I, PhiRegs.at(I));
    if (I->type().isPacket() && !HMap.count(I)) {
      auto Ctx = std::make_shared<HandleCtx>();
      Ctx->HReg = PhiRegs.at(I).Lo;
      HMap[I] = Ctx;
    }
    return;
  default:
    assert(false && "unhandled IR opcode in lowering");
  }
}

//===----------------------------------------------------------------------===//
// Control flow / roots / dispatch
//===----------------------------------------------------------------------===//

bool Lowerer::edgeHasPhiWork(ir::BasicBlock *Pred,
                             ir::BasicBlock *Succ) const {
  for (size_t K = 0; K != Succ->size(); ++K) {
    ir::Instr *Phi = Succ->instr(K);
    if (Phi->op() != Op::Phi)
      break;
    for (BasicBlockPtrConst PB : Phi->phiBlocks())
      if (PB == Pred)
        return true;
  }
  return false;
}

void Lowerer::emitPhiMoves(ir::BasicBlock *Pred, ir::BasicBlock *Succ,
                           int PredBlockId) {
  setBlock(PredBlockId);
  // Gather the edge's parallel copy as word-level (src, dst) pairs.
  std::vector<std::pair<int, int>> Moves;
  for (size_t K = 0; K != Succ->size(); ++K) {
    ir::Instr *Phi = Succ->instr(K);
    if (Phi->op() != Op::Phi)
      break;
    for (unsigned In = 0; In != Phi->numOperands(); ++In) {
      if (Phi->phiBlocks()[In] != Pred)
        continue;
      // Packet-typed phi: sync the incoming context's head first so a
      // reload after the merge observes current state.
      if (Phi->type().isPacket() && Cfg.Phr) {
        auto It = HMap.find(Phi->operand(In));
        if (It != HMap.end() && It->second->Loaded) {
          gprToXfer(0, It->second->Head);
          memOp(MOp::MemWrite, MSpace::Sram, MemClass::PktMeta,
                It->second->HReg, 4, 0, 1)
              .Comment = "phi head sync";
        }
      }
      ValLoc Src = val(Phi->operand(In));
      ValLoc Dst = PhiRegs.at(Phi);
      if (Src.Lo != Dst.Lo)
        Moves.push_back({Src.Lo, Dst.Lo});
      if (Dst.Hi >= 0)
        Moves.push_back({Src.is64() ? Src.Hi : zero(), Dst.Hi});
      break;
    }
  }

  // Sequentialize the parallel copy: emit moves whose destination no
  // other pending move still reads; break cycles by saving one
  // destination into a temporary.
  while (!Moves.empty()) {
    bool Progress = false;
    for (size_t K = 0; K != Moves.size(); ++K) {
      int Dst = Moves[K].second;
      bool Read = false;
      for (size_t J = 0; J != Moves.size(); ++J)
        if (J != K && Moves[J].first == Dst)
          Read = true;
      if (Read)
        continue;
      movTo(Dst, Moves[K].first);
      Moves.erase(Moves.begin() + static_cast<ptrdiff_t>(K));
      Progress = true;
      break;
    }
    if (Progress)
      continue;
    // Cycle: save the first move's destination, retarget readers.
    int Saved = mov(Moves[0].second);
    for (auto &[SrcR, DstR] : Moves)
      if (SrcR == Moves[0].second)
        SrcR = Saved;
  }
}

void Lowerer::lowerRoot(ir::Function *F, int HandleReg) {
  VMap.clear();
  WMap.clear();
  HMap.clear();
  BlockMap.clear();
  SlotMap.clear();
  PhiRegs.clear();

  assert(F->numArgs() == 1 && F->arg(0)->type().isPacket() &&
         "roots are PPFs");
  bind(F->arg(0), ValLoc{HandleReg, -1});
  auto Ctx = std::make_shared<HandleCtx>();
  Ctx->HReg = HandleReg;
  HMap[F->arg(0)] = Ctx;
  if (Cfg.Phr)
    ensureCtx(*Ctx); // Per-packet context load, once per dispatch.

  // Pre-create MEIR blocks and phi registers.
  for (const auto &BB : F->blocks()) {
    BlockMap[BB.get()] = newBlock(F->name() + "." + BB->name());
    for (const auto &I : BB->instrs()) {
      if (I->op() != Op::Phi)
        break;
      ValLoc L;
      L.Lo = reg();
      if (I->type().isInt() && I->type().bits() == 64)
        L.Hi = reg();
      PhiRegs[I.get()] = L;
    }
  }

  br(BlockMap.at(F->entry()));

  for (const auto &BB : F->blocks()) {
    setBlock(BlockMap.at(BB.get()));
    for (const auto &I : BB->instrs()) {
      switch (I->op()) {
      case Op::Br: {
        emitPhiMoves(BB.get(), I->succ(0), CurBlock);
        br(BlockMap.at(I->succ(0)));
        break;
      }
      case Op::CondBr: {
        ValLoc C = val(I->operand(0));
        ir::BasicBlock *TB = I->succ(0);
        ir::BasicBlock *FB = I->succ(1);
        bool TWork = edgeHasPhiWork(BB.get(), TB);
        bool FWork = edgeHasPhiWork(BB.get(), FB);
        // Edge blocks only where an edge carries phi moves.
        int TrueTarget = BlockMap.at(TB);
        if (TWork)
          TrueTarget = newBlock("edge.t");
        brCond(MCond::Ne, C.Lo, -1, 0, TrueTarget);
        if (FWork) {
          emitPhiMoves(BB.get(), FB, CurBlock);
          br(BlockMap.at(FB));
        } else {
          br(BlockMap.at(FB));
        }
        if (TWork) {
          emitPhiMoves(BB.get(), TB, TrueTarget);
          setBlock(TrueTarget);
          br(BlockMap.at(TB));
        }
        break;
      }
      case Op::Ret:
        br(DispatchBlock);
        break;
      default:
        lowerInstr(I.get());
        break;
      }
      if (I->isTerm())
        break;
    }
  }
}

void Lowerer::emitSwcDispatchCheck() {
  if (!Cfg.Swc || Map.Caches.empty())
    return;
  // counter++; if (counter >= interval) { counter = 0; check versions }.
  int CheckBB = newBlock("swc.check");
  int AfterBB = newBlock("swc.after");
  movTo(SwcCounter, aluImm(MOp::Add, SwcCounter, 1));
  brCond(MCond::Uge, SwcCounter, -1, SwcInterval, CheckBB);
  br(AfterBB);

  setBlock(CheckBB);
  movImmTo(SwcCounter, 0);
  for (const rts::CacheCfg &CC : Map.Caches) {
    memOp(MOp::MemRead, MSpace::Scratch, MemClass::AppCache, -1,
          CC.VersionAddr, 0, 1)
        .Comment = "delayed-update version check";
    int Ver = xferToGpr(0);
    int SameBB = newBlock("swc.same");
    int FlushBB = newBlock("swc.flush");
    brCond(MCond::Eq, Ver, SwcVersionReg.at(CC.G), 0, SameBB);
    br(FlushBB);
    setBlock(FlushBB);
    MInstr FL;
    FL.Op = MOp::CamFlush;
    FL.CamBase = CC.CamBase;
    FL.CamSize = CC.CamEntries;
    emit(std::move(FL));
    movTo(SwcVersionReg.at(CC.G), Ver);
    br(SameBB);
    setBlock(SameBB);
  }
  br(AfterBB);
  setBlock(AfterBB);
}

LoweredAggregate Lowerer::run(const std::vector<RootInput> &Roots,
                              const std::string &Name) {
  Code.Name = Name;

  int Entry = newBlock("entry");
  DispatchBlock = newBlock("dispatch");

  setBlock(Entry);
  // SWC init: seed version registers and the check counter.
  if (Cfg.Swc && !Map.Caches.empty()) {
    SwcCounter = movImm(0, "swc counter");
    SwcInterval = ~0u;
    for (const rts::CacheCfg &CC : Map.Caches) {
      memOp(MOp::MemRead, MSpace::Scratch, MemClass::AppCache, -1,
            CC.VersionAddr, 0, 1)
          .Comment = "initial version";
      SwcVersionReg[CC.G] = mov(xferToGpr(0));
      SwcInterval = std::min(SwcInterval, CC.CheckInterval);
    }
  }
  br(DispatchBlock);

  setBlock(DispatchBlock);

  // Poll each input ring; on a packet fall into that root's body.
  std::vector<std::pair<int, unsigned>> Gots; // (block, root index)
  int IdleBB = newBlock("idle");
  for (unsigned K = 0; K != Roots.size(); ++K) {
    MInstr G;
    G.Op = MOp::RingGet;
    G.Class = MemClass::PktRing;
    G.Dst = reg();
    G.Ring = Roots[K].Ring;
    if (Roots[K].NN) {
      G.NNRing = true;
      G.Comment = "nn ring";
    }
    int H = emit(std::move(G)).Dst;
    int GotBB = newBlock("got." + Roots[K].Root->name());
    int NextBB = newBlock("poll.next");
    brCond(MCond::Ne, H, -1, 0, GotBB);
    br(NextBB);
    Gots.push_back({GotBB, K});
    // Stash the handle register id inside the Gots entry via map below.
    HandleRegs.push_back(H);
    setBlock(NextBB);
    Result.InputRings.push_back(Roots[K].Ring);
  }
  // Nothing available: yield and try again.
  br(IdleBB);
  setBlock(IdleBB);
  MInstr Y;
  Y.Op = MOp::CtxArb;
  emit(std::move(Y));
  br(DispatchBlock);

  for (unsigned K = 0; K != Roots.size(); ++K) {
    setBlock(Gots[K].first);
    // The delayed-update coherency check runs per received packet
    // ("only checks on every ith packet", Sec. 5.2).
    emitSwcDispatchCheck();
    lowerRoot(Roots[K].Root, HandleRegs[K]);
  }

  Code.NumVRegs = static_cast<unsigned>(NextReg);
  Result.Code = std::move(Code);
  return std::move(Result);
}

} // namespace

LoweredAggregate sl::cg::lowerAggregate(ir::Module &M,
                                        const rts::MemoryMap &Map,
                                        const CgConfig &Cfg,
                                        const std::vector<RootInput> &Roots,
                                        const std::string &Name) {
  Lowerer L(M, Map, Cfg);
  return L.run(Roots, Name);
}
