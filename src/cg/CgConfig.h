//===- cg/CgConfig.h - code generation configuration ---------------------------==//

#ifndef SL_CG_CGCONFIG_H
#define SL_CG_CGCONFIG_H

#include <set>

namespace sl::obs {
class RemarkEmitter;
}

namespace sl::cg {

/// Controls which paper optimizations the code generator applies. The
/// driver arranges these along the evaluation ladder BASE, -O1, -O2, +PAC,
/// +SOAR, +PHR, +SWC (IR-level passes — scalar pipeline, PAC rewriting,
/// SOAR annotation — run before lowering; these flags steer the expansion
/// of packet primitives and globals).
struct CgConfig {
  /// -O2: packet primitives expand to short, width-specialized inline
  /// sequences. Off (BASE/-O1): every access pays the generic
  /// out-of-line-routine overhead the paper describes (~38+5w instrs).
  bool InlineExpansion = false;

  /// SOAR: honor StaticHdrOff/StaticAlign annotations (constant address
  /// arithmetic and constant extraction shifts).
  bool UseSoar = false;

  /// PHR: keep buf_addr/head_off/frame_len in registers for the packet's
  /// lifetime inside the aggregate; sync SRAM metadata only at channel
  /// boundaries. Off: every primitive does its own SRAM traffic.
  bool Phr = false;

  /// SWC: expand loads of Cached globals into CAM + Local Memory lookups
  /// with delayed-update coherency checks.
  bool Swc = false;

  /// Sec. 5.4 stack layout: packed, aligned frames; off = 16-word minimum
  /// frame granularity (the paper's initial implementation).
  bool StackOpt = true;

  /// Observation-only remark sink. When set and Phr is on, lowering emits
  /// "phr" fired remarks at decap/encap sites whose SRAM head_ptr
  /// read-modify-write was replaced by a register update (PHR part 2 —
  /// the half of packet handling removal that lives in code generation).
  /// Null disables; codegen decisions never depend on it. Not owned.
  obs::RemarkEmitter *Rem = nullptr;

  /// Channel ids lowered to next-neighbor rings (placement decisions);
  /// channel_put on one of these emits a RingPut marked NNRing so WCET
  /// and the simulator price it as a register access, not a scratch
  /// transaction. Empty = every channel is a scratch ring.
  std::set<unsigned> NNChannels;
};

} // namespace sl::cg

#endif // SL_CG_CGCONFIG_H
