//===- cg/StackLayout.cpp ----------------------------------------------------------==//

#include "cg/StackLayout.h"

#include "support/BitUtils.h"

#include <cassert>
#include <map>
#include <vector>

using namespace sl;
using namespace sl::cg;

StackLayoutStats sl::cg::layoutStack(LoweredAggregate &Agg,
                                     const rts::MemoryMap &Map,
                                     bool StackOpt) {
  StackLayoutStats Stats;
  const unsigned LmWords = Map.LmStackWordsPerThread;

  // Assign a word offset to every slot.
  std::vector<unsigned> SlotOff(Agg.Slots.size(), 0);
  if (StackOpt) {
    // Packed: frame-major order, no padding, no minimum frame size.
    std::map<unsigned, std::vector<size_t>> ByFrame;
    for (size_t S = 0; S != Agg.Slots.size(); ++S)
      ByFrame[Agg.Slots[S].FrameId].push_back(S);
    unsigned Off = 0;
    for (auto &[Frame, Slots] : ByFrame) {
      for (size_t S : Slots) {
        SlotOff[S] = Off;
        Off += Agg.Slots[S].Words;
      }
    }
    Stats.TotalWords = Off;
  } else {
    // 16-word aligned frames with a 16-word minimum (the IXP offset
    // addressing mode constraint the paper describes).
    std::map<unsigned, std::vector<size_t>> ByFrame;
    for (size_t S = 0; S != Agg.Slots.size(); ++S)
      ByFrame[Agg.Slots[S].FrameId].push_back(S);
    unsigned Off = 0;
    for (auto &[Frame, Slots] : ByFrame) {
      unsigned FrameBase = Off;
      unsigned Within = 0;
      for (size_t S : Slots) {
        SlotOff[S] = FrameBase + Within;
        Within += Agg.Slots[S].Words;
      }
      Off = FrameBase + static_cast<unsigned>(alignTo(std::max(Within, 16u),
                                                      16));
    }
    Stats.TotalWords = Off;
  }
  Stats.LmWords = std::min(Stats.TotalWords, LmWords);
  Stats.SramWords =
      Stats.TotalWords > LmWords ? Stats.TotalWords - LmWords : 0;

  // Rewrite the accesses.
  for (MBlock &B : Agg.Code.Blocks) {
    for (size_t K = 0; K < B.Instrs.size(); ++K) {
      MInstr &I = B.Instrs[K];
      if (I.StackSlot < 0)
        continue;
      assert((I.Op == MOp::LmRead || I.Op == MOp::LmWrite) &&
             "stack access must be a local-memory op before layout");
      unsigned Off = SlotOff[static_cast<size_t>(I.StackSlot)] + I.SlotWord;
      if (Off < LmWords) {
        // Stays in Local Memory. Offset addressing reaches the first 16
        // words of the (aligned) frame in a single cycle.
        unsigned FrameRel = StackOpt ? Off : Off % 16;
        I.ThreadStack = true;
        I.Imm = Off;
        I.LmFast = FrameRel < 16;
        I.StackSlot = -1;
        (I.LmFast ? Stats.FastAccesses : Stats.SlowAccesses)++;
        continue;
      }
      // Overflow to SRAM: expand into a memory-unit access.
      unsigned SramOff = (Off - LmWords) * 4;
      bool IsRead = I.Op == MOp::LmRead;
      MInstr Mem;
      Mem.Op = IsRead ? MOp::MemRead : MOp::MemWrite;
      Mem.Space = MSpace::Sram;
      Mem.Class = MemClass::Stack;
      Mem.SrcA = -1;
      Mem.Imm = SramOff;
      Mem.ThreadStack = true;
      Mem.Xfer = 12; // Keep clear of packet data transfers.
      Mem.Words = 1;
      Mem.Comment = "stack overflow (SRAM)";
      ++Stats.SramAccesses;
      if (IsRead) {
        MInstr Move;
        Move.Op = MOp::XferToGpr;
        Move.Dst = I.Dst;
        Move.Xfer = 12;
        B.Instrs[K] = Mem;
        B.Instrs.insert(B.Instrs.begin() + static_cast<ptrdiff_t>(K + 1),
                        std::move(Move));
      } else {
        MInstr Move;
        Move.Op = MOp::GprToXfer;
        Move.Xfer = 12;
        Move.SrcA = I.SrcA;
        B.Instrs[K] = Mem;
        B.Instrs.insert(B.Instrs.begin() + static_cast<ptrdiff_t>(K),
                        std::move(Move));
      }
      ++K;
    }
  }
  return Stats;
}
