//===- cg/Lowering.h - IR aggregate -> MEIR --------------------------------==//
//
// Lowers one aggregate (a set of root PPFs fed by rings) into MEIR: a
// dispatch loop that polls the aggregate's input rings, loads per-packet
// context, and falls into the inlined PPF bodies. All calls must have been
// inlined before lowering (the ME has no call hardware; the paper's
// compilers convert calls into branches).
//
//===----------------------------------------------------------------------===//

#ifndef SL_CG_LOWERING_H
#define SL_CG_LOWERING_H

#include "cg/CgConfig.h"
#include "cg/MEIR.h"
#include "ir/Module.h"
#include "rts/MemoryMap.h"

#include <vector>

namespace sl::cg {

/// A root PPF with the ring that feeds it.
struct RootInput {
  ir::Function *Root = nullptr;
  unsigned Ring = 0;
  bool NN = false; ///< The feeding ring is a next-neighbor ring.
};

/// Stack slot descriptor produced by lowering / register allocation and
/// consumed by the stack layout pass.
struct StackSlotInfo {
  unsigned Words = 1;
  unsigned FrameId = 0; ///< Source frame (0 = root; N = inline frame N).
  bool IsSpill = false;
};

struct LoweredAggregate {
  MCode Code;
  std::vector<StackSlotInfo> Slots;
  std::vector<unsigned> InputRings;
};

/// Lowers the given roots into one MEIR aggregate.
LoweredAggregate lowerAggregate(ir::Module &M, const rts::MemoryMap &Map,
                                const CgConfig &Cfg,
                                const std::vector<RootInput> &Roots,
                                const std::string &Name);

} // namespace sl::cg

#endif // SL_CG_LOWERING_H
