//===- cg/MEIR.cpp --------------------------------------------------------------==//

#include "cg/MEIR.h"

#include "support/StringUtils.h"

#include <cassert>
#include <map>

using namespace sl;
using namespace sl::cg;

const char *sl::cg::mopName(MOp Op) {
  switch (Op) {
  case MOp::Add:
    return "add";
  case MOp::Sub:
    return "sub";
  case MOp::Mul:
    return "mul";
  case MOp::And:
    return "and";
  case MOp::Or:
    return "or";
  case MOp::Xor:
    return "xor";
  case MOp::Shl:
    return "shl";
  case MOp::Shr:
    return "shr";
  case MOp::Asr:
    return "asr";
  case MOp::Mov:
    return "mov";
  case MOp::MovImm:
    return "immed";
  case MOp::Set:
    return "set";
  case MOp::Br:
    return "br";
  case MOp::BrCond:
    return "br.cond";
  case MOp::Halt:
    return "halt";
  case MOp::MemRead:
    return "mem.read";
  case MOp::MemWrite:
    return "mem.write";
  case MOp::XferToGpr:
    return "xfer2gpr";
  case MOp::GprToXfer:
    return "gpr2xfer";
  case MOp::LmRead:
    return "lm.read";
  case MOp::LmWrite:
    return "lm.write";
  case MOp::CamLookup:
    return "cam.lookup";
  case MOp::CamWrite:
    return "cam.write";
  case MOp::CamFlush:
    return "cam.flush";
  case MOp::RingGet:
    return "ring.get";
  case MOp::RingPut:
    return "ring.put";
  case MOp::AtomicTestSet:
    return "scratch.test_and_set";
  case MOp::AtomicClear:
    return "scratch.clear";
  case MOp::RtsPktCopy:
    return "rts.pkt_copy";
  case MOp::RtsPktDrop:
    return "rts.pkt_drop";
  case MOp::CtxArb:
    return "ctx_arb";
  }
  return "<bad-mop>";
}

namespace {

const char *condName(MCond C) {
  switch (C) {
  case MCond::Eq:
    return "eq";
  case MCond::Ne:
    return "ne";
  case MCond::Ult:
    return "ult";
  case MCond::Ule:
    return "ule";
  case MCond::Ugt:
    return "ugt";
  case MCond::Uge:
    return "uge";
  case MCond::Slt:
    return "slt";
  case MCond::Sle:
    return "sle";
  case MCond::Sgt:
    return "sgt";
  case MCond::Sge:
    return "sge";
  }
  return "?";
}

const char *spaceName(MSpace S) {
  switch (S) {
  case MSpace::Scratch:
    return "scratch";
  case MSpace::Sram:
    return "sram";
  case MSpace::Dram:
    return "dram";
  }
  return "?";
}

std::string regName(int R) {
  if (R < 0)
    return "_";
  if (R < 16)
    return formatString("a%d", R);
  if (R < 32)
    return formatString("b%d", R - 16);
  return formatString("v%d", R);
}

} // namespace

std::string sl::cg::printMCode(const MCode &C) {
  std::string Out = "; aggregate " + C.Name + "\n";
  for (size_t B = 0; B != C.Blocks.size(); ++B) {
    Out += formatString(".L%zu_%s:\n", B, C.Blocks[B].Name.c_str());
    for (const MInstr &I : C.Blocks[B].Instrs) {
      Out += formatString("  %-22s", mopName(I.Op));
      switch (I.Op) {
      case MOp::BrCond:
        Out += formatString("%s %s, ", condName(I.Cond),
                            regName(I.SrcA).c_str());
        Out += I.SrcB >= 0 ? regName(I.SrcB)
                           : formatString("%lld", (long long)I.Imm);
        Out += formatString(" -> .L%d", I.Target);
        break;
      case MOp::Br:
        Out += formatString("-> .L%d", I.Target);
        break;
      case MOp::Set:
        Out += formatString("%s = %s %s, ", regName(I.Dst).c_str(),
                            condName(I.Cond), regName(I.SrcA).c_str());
        Out += I.SrcB >= 0 ? regName(I.SrcB)
                           : formatString("%lld", (long long)I.Imm);
        break;
      case MOp::MemRead:
      case MOp::MemWrite:
        Out += formatString("%s[%s+%lld], $x%u, ref_cnt=%u",
                            spaceName(I.Space), regName(I.SrcA).c_str(),
                            (long long)I.Imm, I.Xfer, I.Words);
        break;
      case MOp::XferToGpr:
        Out += formatString("%s = $x%u", regName(I.Dst).c_str(), I.Xfer);
        break;
      case MOp::GprToXfer:
        Out += formatString("$x%u = %s", I.Xfer, regName(I.SrcA).c_str());
        break;
      case MOp::LmRead:
        Out += formatString("%s = lm[%s+%lld]%s", regName(I.Dst).c_str(),
                            regName(I.SrcB).c_str(), (long long)I.Imm,
                            I.LmFast ? " (fast)" : "");
        break;
      case MOp::LmWrite:
        Out += formatString("lm[%s+%lld] = %s%s", regName(I.SrcB).c_str(),
                            (long long)I.Imm, regName(I.SrcA).c_str(),
                            I.LmFast ? " (fast)" : "");
        break;
      case MOp::RingGet:
        Out += formatString("%s = ring[%u]", regName(I.Dst).c_str(), I.Ring);
        break;
      case MOp::RingPut:
        Out += formatString("ring[%u] <- %s", I.Ring,
                            regName(I.SrcA).c_str());
        break;
      case MOp::CamLookup:
        Out += formatString("%s = cam[%u..%u](%s)", regName(I.Dst).c_str(),
                            I.CamBase, I.CamBase + I.CamSize,
                            regName(I.SrcA).c_str());
        break;
      default:
        if (I.Dst >= 0)
          Out += regName(I.Dst) + " = ";
        if (I.SrcA >= 0)
          Out += regName(I.SrcA);
        if (I.SrcB >= 0)
          Out += ", " + regName(I.SrcB);
        else if (I.Op != MOp::Mov && I.Op != MOp::CtxArb &&
                 I.Op != MOp::Halt)
          Out += formatString(", %lld", (long long)I.Imm);
        break;
      }
      if (!I.Comment.empty())
        Out += "   ; " + I.Comment;
      Out += "\n";
    }
  }
  return Out;
}

FlatCode sl::cg::flatten(const MCode &C) {
  FlatCode F;
  F.Name = C.Name;
  // Block id -> first instruction index.
  std::map<int, int> BlockStart;
  int Idx = 0;
  for (size_t B = 0; B != C.Blocks.size(); ++B) {
    BlockStart[static_cast<int>(B)] = Idx;
    Idx += static_cast<int>(C.Blocks[B].Instrs.size());
  }
  for (const MBlock &B : C.Blocks)
    for (const MInstr &I : B.Instrs)
      F.Code.push_back(I);
  for (MInstr &I : F.Code) {
    if (I.Op == MOp::Br || I.Op == MOp::BrCond) {
      auto It = BlockStart.find(I.Target);
      assert(It != BlockStart.end() && "branch to unknown block");
      I.Target = It->second;
    }
    F.CodeSlots += I.slots();
  }
  return F;
}
