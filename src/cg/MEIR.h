//===- cg/MEIR.h - microengine-level IR ----------------------------------------==//
//
// MEIR is the code-generation IR (the paper's CGIR), a close model of the
// IXP2400 microengine ISA:
//   - 32 GPRs per thread in two banks; an ALU instruction with two register
//     sources must draw them from different banks (register allocation
//     enforces this),
//   - explicit transfer registers between the core and the memory units;
//     wide accesses (ref_cnt) move 1..16 words per instruction,
//   - explicit memory spaces (Scratch / SRAM / DRAM) plus per-ME Local
//     Memory and a 16-entry CAM,
//   - cooperative multithreading: memory operations park the issuing
//     thread; ctx_arb yields voluntarily.
//
// Before register allocation operands are virtual register ids; afterwards
// they are physical ids 0..15 (bank A) and 16..31 (bank B).
//
//===----------------------------------------------------------------------===//

#ifndef SL_CG_MEIR_H
#define SL_CG_MEIR_H

#include <cstdint>
#include <string>
#include <vector>

namespace sl::cg {

/// MEIR opcodes.
enum class MOp : uint8_t {
  // ALU: Dst = SrcA op (SrcB | Imm). One cycle.
  Add,
  Sub,
  Mul, // The ME multiplier; modeled at 3 cycles.
  And,
  Or,
  Xor,
  Shl,
  Shr, // Logical right shift.
  Asr,
  Mov,    // Dst = SrcA.
  MovImm, // Dst = Imm (occupies 2 slots when Imm needs >16 bits).
  Set,    // Dst = Cond(SrcA, SrcB|Imm) ? 1 : 0.

  // Control flow. Branches cost an extra pipeline-bubble cycle.
  Br,     // Unconditional, to Target.
  BrCond, // if Cond(SrcA, SrcB|Imm) goto Target.
  Halt,

  // Memory unit operations (asynchronous; thread parks until done).
  // Address = SrcA + Imm. Data moves through xfer slots [Xfer, Xfer+Words).
  MemRead,
  MemWrite,

  // Transfer-register file moves (synchronous, 1 cycle).
  XferToGpr, // Dst = xfer[Xfer].
  GprToXfer, // xfer[Xfer] = SrcA.

  // Local Memory: Dst/SrcA(data); address = SrcB + Imm words. 3 cycles, or
  // 1 cycle when the encoder proved the offset-addressing form applies
  // (LmFast flag).
  LmRead,
  LmWrite,

  // CAM. Lookup: Dst = (hit << 8) | entry, for Key = SrcA, within the
  // partition [CamBase, CamBase+CamSize). Write: entry SrcB gets tag SrcA.
  CamLookup,
  CamWrite,
  CamFlush, // Invalidate the partition.

  // Scratch rings (atomic through the scratch unit; one scratch access).
  RingGet, // Dst = head of ring Imm, or 0 when empty.
  RingPut, // Push SrcA onto ring Imm. Full ring drops (counted).

  // Scratch atomics for critical sections (one scratch access each).
  AtomicTestSet, // Dst = old value of lock word Imm; sets it to 1.
  AtomicClear,   // Clear lock word Imm.

  // Runtime-system macros (buffer management; see rts/).
  RtsPktCopy, // Dst = fresh handle cloned from SrcA.
  RtsPktDrop, // Release handle SrcA.

  CtxArb, // Yield to the next ready thread.
};

enum class MCond : uint8_t { Eq, Ne, Ult, Ule, Ugt, Uge, Slt, Sle, Sgt, Sge };

enum class MSpace : uint8_t { Scratch, Sram, Dram };

/// Accounting class for Table-1 style reporting.
enum class MemClass : uint8_t {
  PktData,  ///< Packet bytes in DRAM.
  PktMeta,  ///< Packet metadata block in SRAM (buf/head/len + user meta).
  PktRing,  ///< Handle movement through scratch rings.
  App,      ///< Application globals.
  AppCache, ///< SWC miss/check traffic for cached globals.
  Stack,    ///< Spills / stack frames.
  Lock,     ///< Critical-section atomics.
};

/// One MEIR instruction.
struct MInstr {
  MOp Op = MOp::CtxArb;
  MCond Cond = MCond::Eq;
  MSpace Space = MSpace::Sram;
  MemClass Class = MemClass::App;

  int Dst = -1;  ///< Register operand (virtual, then physical).
  int SrcA = -1;
  int SrcB = -1; ///< -1 means Imm is the second operand.
  int64_t Imm = 0;

  unsigned Xfer = 0;  ///< First xfer slot.
  unsigned Words = 0; ///< Xfer word count for MemRead/MemWrite.

  int Target = -1; ///< Block id (pre-layout) / instr index (post-layout).

  unsigned CamBase = 0, CamSize = 0;
  unsigned Ring = 0;
  /// RingGet/RingPut: the ring is a next-neighbor register ring (one-hop
  /// ME-to-ME path; a register access, not a scratch transaction).
  bool NNRing = false;

  bool LmFast = false; ///< Offset-addressable Local Memory access.

  /// Stack-slot references (before StackLayout runs): LmRead/LmWrite or
  /// MemRead/MemWrite with StackSlot >= 0 address logical slot word
  /// (StackSlot, SlotWord). StackLayout turns them into final
  /// thread-relative offsets (ThreadStack addressing) in Local Memory or
  /// the SRAM overflow area.
  int StackSlot = -1;
  unsigned SlotWord = 0;
  /// Address is relative to the executing thread's stack base.
  bool ThreadStack = false;

  std::string Comment; ///< For listings.

  /// Instruction-store slots this instruction occupies. Immediates wider
  /// than 16 bits need an extra immed word on the real ME.
  unsigned slots() const {
    bool BigImm = SrcB < 0 && (Imm < -32768 || Imm > 0xFFFF);
    switch (Op) {
    case MOp::MovImm:
    case MOp::Add:
    case MOp::Sub:
    case MOp::And:
    case MOp::Or:
    case MOp::Xor:
    case MOp::Set:
    case MOp::BrCond:
      return BigImm ? 2 : 1;
    default:
      return 1;
    }
  }
};

/// A basic block of MEIR.
struct MBlock {
  std::string Name;
  std::vector<MInstr> Instrs;
};

/// One compiled aggregate: dispatch loop plus inlined PPF bodies.
struct MCode {
  std::string Name;
  std::vector<MBlock> Blocks; ///< Blocks[0] is the entry.
  unsigned NumVRegs = 0;      ///< Virtual register count before RA.

  unsigned codeSlots() const {
    unsigned N = 0;
    for (const MBlock &B : Blocks)
      for (const MInstr &I : B.Instrs)
        N += I.slots();
    return N;
  }
};

/// Flattened, branch-resolved form executed by the simulator.
struct FlatCode {
  std::string Name;
  std::vector<MInstr> Code; ///< Target fields are instruction indices.
  unsigned CodeSlots = 0;
};

/// Renders MEIR as an assembly-like listing.
std::string printMCode(const MCode &C);

/// Lays blocks out in order and resolves branch targets.
FlatCode flatten(const MCode &C);

const char *mopName(MOp Op);

} // namespace sl::cg

#endif // SL_CG_MEIR_H
