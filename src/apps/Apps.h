//===- apps/Apps.h - the paper's three benchmark applications --------------------==//
//
// Baker implementations of the PLDI'05 evaluation workloads:
//   L3-Switch — NPF IP forwarding: L2 classification, MAC-table bridging,
//               trie route lookup, TTL/checksum update, re-encapsulation.
//   Firewall  — ordered-rule 5-tuple classifier between two networks, with
//               an options/slow path handled off the fast path.
//   MPLS      — NPF MPLS forwarding: ingress label push, LSR swap /
//               swap+push / pop (incl. stacked labels), egress to IP.
//
// Each bundle packages the Baker source, a deterministic control-plane
// table configuration, the metadata fields Tx consumes, and an NPF-like
// synthetic trace generator.
//
//===----------------------------------------------------------------------===//

#ifndef SL_APPS_APPS_H
#define SL_APPS_APPS_H

#include "driver/Compiler.h"
#include "profile/Profiler.h"

#include <string>
#include <vector>

namespace sl::apps {

struct AppBundle {
  std::string Name;
  const char *Source = nullptr;
  std::vector<driver::TableInit> Tables;
  std::vector<std::string> TxMetaFields;

  /// Generates a representative trace of \p N frames (64-byte minimum
  /// frames unless the app needs larger).
  profile::Trace makeTrace(uint64_t Seed, unsigned N) const;
};

AppBundle l3switch();
AppBundle firewall();
AppBundle mpls();

/// All three, in paper order.
std::vector<AppBundle> allApps();

} // namespace sl::apps

#endif // SL_APPS_APPS_H
