//===- apps/Apps.h - the paper's three benchmark applications --------------------==//
//
// Baker implementations of the PLDI'05 evaluation workloads:
//   L3-Switch — NPF IP forwarding: L2 classification, MAC-table bridging,
//               trie route lookup, TTL/checksum update, re-encapsulation.
//   Firewall  — ordered-rule 5-tuple classifier between two networks, with
//               an options/slow path handled off the fast path.
//   MPLS      — NPF MPLS forwarding: ingress label push, LSR swap /
//               swap+push / pop (incl. stacked labels), egress to IP.
//
// Each bundle packages the Baker source, a deterministic control-plane
// table configuration, the metadata fields Tx consumes, and an NPF-like
// synthetic trace generator.
//
//===----------------------------------------------------------------------===//

#ifndef SL_APPS_APPS_H
#define SL_APPS_APPS_H

#include "driver/Compiler.h"
#include "profile/Profiler.h"
#include "traffic/Traffic.h"

#include <memory>
#include <string>
#include <vector>

namespace sl::interp {
class Interpreter;
}

namespace sl::apps {

struct AppBundle {
  std::string Name;
  const char *Source = nullptr;
  std::vector<driver::TableInit> Tables;
  std::vector<std::string> TxMetaFields;

  /// Globals counting dropped packets, one per drop site, so harnesses
  /// can check conservation: injected == tx + sum of these. Empty for
  /// the paper apps (their drop accounting predates this contract).
  std::vector<std::string> DropCounters;

  /// Generates a representative trace of \p N frames (64-byte minimum
  /// frames unless the app needs larger).
  profile::Trace makeTrace(uint64_t Seed, unsigned N) const;
};

AppBundle l3switch();
AppBundle firewall();
AppBundle mpls();

/// All three, in paper order.
std::vector<AppBundle> allApps();

//===----------------------------------------------------------------------===//
// Stateful workload tier (NAT / SLB / SYN-Flood)
//===----------------------------------------------------------------------===//

AppBundle nat();      ///< Source NAT with dynamic port allocation.
AppBundle slb();      ///< Consistent-hash load balancer with flow affinity.
AppBundle synflood(); ///< Per-source token-bucket SYN-flood mitigator.

/// The stateful tier, in docs order.
std::vector<AppBundle> statefulApps();

/// Frame builders keyed by abstract flow id, for the traffic generators.
/// \p InboundPct of NAT frames are replies arriving on the outside port.
traffic::FrameBuilder natFrames(unsigned InboundPct = 20);
traffic::FrameBuilder slbFrames();
/// Flows below \p AttackersBelow send pure SYN floods; the rest open one
/// connection per eight packets.
traffic::FrameBuilder synfloodFrames(uint64_t AttackersBelow = 4);

/// Builds an \p N-packet trace for \p App under adversarial profile \p P.
/// Deterministic in (App.Name, P, Seed). For the paper apps (which have
/// no flow-keyed builder) this falls back to their native makeTrace.
profile::Trace adversarialTrace(const AppBundle &App, traffic::Profile P,
                                uint64_t Seed, unsigned N);

//===----------------------------------------------------------------------===//
// Reference-interpreter plumbing + per-app oracles
//===----------------------------------------------------------------------===//

/// A compiled app plus a live interpreter with its tables installed.
/// On failure \p I is null and \p Error holds the diagnostics.
struct AppInterp {
  std::unique_ptr<baker::CompiledUnit> Unit;
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<interp::Interpreter> I;
  std::string Error;
};

AppInterp makeAppInterp(const AppBundle &App);

/// Outcome of one oracle run: Ok plus a human-readable account that
/// benches embed in their JSON and tests print on failure.
struct OracleResult {
  bool Ok = true;
  std::string Log;
};

/// NAT translation consistency: stable distinct bindings, reverse-map
/// round trip, no eviction below capacity, unbound ports dropped.
OracleResult natOracle(uint64_t Seed);
/// SLB flow affinity under backend death + consistent-hash remap bound.
OracleResult slbOracle(uint64_t Seed);
/// SYN-flood FP/FN bounds: flood throttled but not blackholed, light
/// sources admitted, established traffic untouched.
OracleResult synfloodOracle(uint64_t Seed);
/// Packet conservation over an arbitrary trace:
/// injected == tx + sum(App.DropCounters).
OracleResult conservationOracle(const AppBundle &App,
                                const profile::Trace &T);

} // namespace sl::apps

#endif // SL_APPS_APPS_H
