//===- apps/StatefulApps.cpp - the stateful workload tier --------------------==//
//
// Three Baker applications whose correctness depends on mutable per-flow
// state surviving across packets — the workload class the paper's three
// benchmarks deliberately avoid, and the one that stresses every shared-
// state subsystem at once (SWC legality, StateRace classification, lock
// lowering, cross-ME table placement):
//
//   NAT       — source NAT with dynamic port allocation. A critical
//               section guards the forward/reverse map pair; the hit path
//               probes lock-free and falls back to the locked allocator.
//   SLB       — stateful load balancer: consistent-hash ring (read-only)
//               plus a flow-affinity cache (mutable) so established flows
//               stick to their backend even when the ring changes.
//   SYN-Flood — per-source token buckets over a virtual clock that ticks
//               once per SYN, so heavy SYN sources starve themselves while
//               light sources refill fully between their own SYNs.
//
// Each app keeps one named lock, routes every read-modify-write of shared
// tables through it, and counts every drop in a dedicated counter so the
// acceptance harness can check packet conservation:
//   injected == transmitted + sum(DropCounters).
//
// The oracles at the bottom are the per-app correctness checks shared by
// tests/StatefulAppsTest.cpp and the bench/fig_{nat,slb,synflood}
// acceptance guards: they run small deterministic scenarios through the
// reference interpreter and validate the app-level contract (translation
// consistency, flow affinity + bounded remap, FP/FN bounds).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include "interp/Bits.h"
#include "interp/Interp.h"
#include "ir/ASTLower.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

using namespace sl;
using namespace sl::apps;

using interp::readBitsBE;
using interp::writeBitsBE;

//===----------------------------------------------------------------------===//
// Shared frame constants and builders
//===----------------------------------------------------------------------===//

namespace {

// Addressing plan shared by builders and oracles.
constexpr uint64_t kGwMac = 0x00DD00000001ull;   ///< The appliance itself.
constexpr uint64_t kHostMacBase = 0x00CC00000000ull;
constexpr uint32_t kNatIp = 0xC0A80001;          ///< 192.168.0.1
constexpr uint32_t kInsideBase = 0x0A640000;     ///< 10.100.0.0/16
constexpr uint32_t kServerIp = 0x08080808;       ///< 8.8.8.8
constexpr uint32_t kVip = 0x0A0A0A0A;            ///< 10.10.10.10
constexpr uint32_t kClientBase = 0x0A640000;
constexpr uint32_t kSynBase = 0x0A000000;        ///< SYN-flood sources.
constexpr uint32_t kProtectedIp = 0xAC100050;    ///< Server behind mitigator.
constexpr unsigned kNumBackends = 8;

std::vector<uint8_t> ether(uint64_t Dst, uint64_t Src, uint16_t Type,
                           size_t Len = 64) {
  std::vector<uint8_t> F(Len, 0);
  writeBitsBE(F.data(), 0, 48, Dst);
  writeBitsBE(F.data(), 48, 48, Src);
  writeBitsBE(F.data(), 96, 16, Type);
  return F;
}

void ipv4At(std::vector<uint8_t> &F, size_t ByteOff, uint32_t Saddr,
            uint32_t Daddr, uint8_t Ttl, uint8_t Proto) {
  size_t B = ByteOff * 8;
  writeBitsBE(F.data(), B + 0, 4, 4);
  writeBitsBE(F.data(), B + 4, 4, 5);
  writeBitsBE(F.data(), B + 16, 16,
              static_cast<uint64_t>(F.size() - ByteOff));
  writeBitsBE(F.data(), B + 64, 8, Ttl);
  writeBitsBE(F.data(), B + 72, 8, Proto);
  writeBitsBE(F.data(), B + 80, 16, 0xBEEF); // Pseudo checksum.
  writeBitsBE(F.data(), B + 96, 32, Saddr);
  writeBitsBE(F.data(), B + 128, 32, Daddr);
}

void portsAt(std::vector<uint8_t> &F, size_t ByteOff, uint16_t Sport,
             uint16_t Dport) {
  writeBitsBE(F.data(), ByteOff * 8, 16, Sport);
  writeBitsBE(F.data(), ByteOff * 8 + 16, 16, Dport);
}

void tcpAt(std::vector<uint8_t> &F, size_t ByteOff, uint16_t Sport,
           uint16_t Dport, uint8_t Flags) {
  portsAt(F, ByteOff, Sport, Dport);
  size_t B = ByteOff * 8;
  writeBitsBE(F.data(), B + 96, 4, 5); // doff = 5 (20-byte header).
  writeBitsBE(F.data(), B + 104, 8, Flags);
  writeBitsBE(F.data(), B + 112, 16, 0x2000); // window
}

} // namespace

//===----------------------------------------------------------------------===//
// NAT: source NAT with dynamic port allocation
//===----------------------------------------------------------------------===//

static const char *NatSource = R"BAKER(
// NAT: rewrites outbound (inside -> outside) flows to (nat_ip, allocated
// port) and reverses inbound replies through the reverse map. The forward
// map is a direct-hash table with bounded linear probing; the allocator
// and both maps are guarded by one lock, while the forward hit path
// probes lock-free and re-checks under the lock before allocating.
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

protocol ip5 {
  ver : 4;
  hlen : 4;
  tos : 8;
  total_len : 16;
  id : 16;
  fl : 16;
  ttl : 8;
  proto : 8;
  checksum : 16;
  saddr : 32;
  daddr : 32;
  sport : 16;
  dport : 16;
  demux { 24 };
};

metadata {
  tx_port : 16;
};

module nat {
  u32 nat_ip;          // This box's external address (control-plane set).
  u64 fwd_key[1024];   // (saddr << 16 | sport) per slot; 0 = empty.
  u32 fwd_port[1024];  // Allocated external port for that slot.
  u64 rev_key[4096];   // External port - 32768 -> original (saddr<<16|sport).
  u32 next_port;       // Allocation cursor (wraps through 4096 ports).
  u32 evictions;       // Probe window full: an old binding was replaced.
  u32 alloc_calls;     // Slow-path entries (stat only).
  u32 non_ip;          // Drop counters, one per drop site.
  u32 malformed;
  u32 bad_dst;
  u32 rev_miss;

  channel out_cc : ip5;
  channel in_cc : ip5;

  ppf nat_clsfr(ether_pkt * ph) {
    if (ph->type != 0x0800) {
      non_ip = non_ip + 1;
      packet_drop(ph);
      return;
    }
    if (packet_length(ph) < 38) {
      malformed = malformed + 1;
      packet_drop(ph);
      return;
    }
    ip5_pkt * iph = packet_decap(ph);
    if (iph->ver != 4 || iph->hlen != 5) {
      malformed = malformed + 1;
      packet_drop(iph);
      return;
    }
    if (iph->meta.rx_port == 0) {
      channel_put(out_cc, iph);
      return;
    }
    channel_put(in_cc, iph);
  }

  ppf nat_out(ip5_pkt * iph) {
    u64 key = iph->saddr;
    key = (key << 16) | iph->sport;
    // Multiplicative mix: saddr and sport are correlated in real traffic
    // (sequential hosts, sequential ports), so plain xor-folding degrades
    // to massive clustering.
    u32 h = key ^ (key >> 32);
    h = h * 0x9E3779B1;
    h = (h ^ (h >> 16)) & 1023;
    u32 p = 0;
    u32 i = h;
    u32 tries = 0;
    // Lock-free forward probe: established flows never take the lock.
    while (tries < 8) {
      if (fwd_key[i & 1023] == key) {
        p = fwd_port[i & 1023];
        break;
      }
      i = i + 1;
      tries = tries + 1;
    }
    if (p == 0) {
      alloc_calls = alloc_calls + 1;
      critical (nat_lock) {
        // Re-probe under the lock: another thread may have allocated
        // this flow between our probe and the acquire.
        u32 j = h;
        u32 t = 0;
        u32 slot = 65535;
        while (t < 8) {
          u64 k2 = fwd_key[j & 1023];
          if (k2 == key) {
            p = fwd_port[j & 1023];
            slot = 65534;
            t = 8;
          } else {
            if (k2 == 0 && slot == 65535) {
              slot = j & 1023;
            }
            j = j + 1;
            t = t + 1;
          }
        }
        if (slot != 65534) {
          if (slot == 65535) {
            slot = h;
            evictions = evictions + 1;
          }
          u32 np = next_port;
          next_port = np + 1;
          p = 32768 + (np & 4095);
          fwd_port[slot] = p;
          fwd_key[slot] = key;
          rev_key[(p - 32768) & 4095] = key;
        }
      }
    }
    iph->saddr = nat_ip;
    iph->sport = p;
    ether_pkt * eph = packet_encap(iph);
    eph->meta.tx_port = 1;
    channel_put(tx, eph);
  }

  ppf nat_in(ip5_pkt * iph) {
    if (iph->daddr != nat_ip) {
      bad_dst = bad_dst + 1;
      packet_drop(iph);
      return;
    }
    u32 dp = iph->dport;
    if (dp < 32768) {
      rev_miss = rev_miss + 1;
      packet_drop(iph);
      return;
    }
    u64 key = rev_key[(dp - 32768) & 4095];
    if (key == 0) {
      rev_miss = rev_miss + 1;
      packet_drop(iph);
      return;
    }
    iph->daddr = key >> 16;
    iph->dport = key & 0xFFFF;
    ether_pkt * eph = packet_encap(iph);
    eph->meta.tx_port = 0;
    channel_put(tx, eph);
  }

  wire rx -> nat_clsfr;
  wire out_cc -> nat_out;
  wire in_cc -> nat_in;
}
)BAKER";

AppBundle sl::apps::nat() {
  AppBundle B;
  B.Name = "NAT";
  B.Source = NatSource;
  B.TxMetaFields = {"tx_port"};
  B.DropCounters = {"non_ip", "malformed", "bad_dst", "rev_miss"};
  B.Tables.push_back({"nat_ip", 0, kNatIp});
  return B;
}

//===----------------------------------------------------------------------===//
// SLB: stateful load balancer with consistent hashing
//===----------------------------------------------------------------------===//

static const char *SlbSource = R"BAKER(
// SLB: flows to the VIP are spread over backends via a consistent-hash
// ring (read-only; control-plane built) and pinned by a flow-affinity
// cache so established flows survive ring changes. Backend health
// (be_up) is control-plane toggled; a cached backend that went down
// forces a fresh ring walk and re-pin.
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

protocol ip5 {
  ver : 4;
  hlen : 4;
  tos : 8;
  total_len : 16;
  id : 16;
  fl : 16;
  ttl : 8;
  proto : 8;
  checksum : 16;
  saddr : 32;
  daddr : 32;
  sport : 16;
  dport : 16;
  demux { 24 };
};

metadata {
  tx_port : 16;
};

module slb {
  u32 vip;             // The virtual IP this balancer answers for.
  u32 ring[256];       // Consistent-hash ring: backend id (1-based); 0 = hole.
  u32 be_up[16];       // Health per backend (control-plane toggled).
  u32 be_ip[16];       // Rewrite target per backend.
  u64 aff_key[2048];   // Affinity cache: (saddr<<16|sport); 0 = empty.
  u32 aff_be[2048];    // Pinned backend id for that slot.
  u32 be_pkts[16];     // Per-backend packet counters (stats only).
  u32 new_flows;       // Ring-walk path entries (stat only).
  u32 evictions;       // Affinity probe window full.
  u32 non_ip;          // Drop counters, one per drop site.
  u32 malformed;
  u32 not_vip;
  u32 no_backend;

  channel lb_cc : ip5;

  ppf slb_clsfr(ether_pkt * ph) {
    if (ph->type != 0x0800) {
      non_ip = non_ip + 1;
      packet_drop(ph);
      return;
    }
    if (packet_length(ph) < 38) {
      malformed = malformed + 1;
      packet_drop(ph);
      return;
    }
    ip5_pkt * iph = packet_decap(ph);
    if (iph->ver != 4 || iph->hlen != 5) {
      malformed = malformed + 1;
      packet_drop(iph);
      return;
    }
    if (iph->daddr != vip) {
      not_vip = not_vip + 1;
      packet_drop(iph);
      return;
    }
    channel_put(lb_cc, iph);
  }

  ppf slb_fwd(ip5_pkt * iph) {
    u64 key = iph->saddr;
    key = (key << 16) | iph->sport;
    // Same multiplicative mix as NAT: correlated 5-tuples must spread
    // over both the affinity slots and the ring arc space.
    u32 h = key ^ (key >> 32);
    h = h * 0x9E3779B1;
    h = h ^ (h >> 16);
    u32 slot = h & 2047;
    u32 be = 0;
    u32 i = slot;
    u32 tries = 0;
    // Affinity hit path: lock-free probe.
    while (tries < 8) {
      if (aff_key[i & 2047] == key) {
        be = aff_be[i & 2047];
        break;
      }
      i = i + 1;
      tries = tries + 1;
    }
    if (be != 0) {
      if (be_up[(be - 1) & 15] == 0) {
        be = 0;    // Pinned backend died: fall through to the ring.
      }
    }
    if (be == 0) {
      u32 k = 0;
      while (k < 16) {
        u32 cand = ring[(h + k) & 255];
        u32 live = 0;
        if (cand != 0) {
          live = be_up[(cand - 1) & 15];
        }
        if (live == 1) {
          be = cand;
          k = 16;
        } else {
          k = k + 1;
        }
      }
      if (be == 0) {
        no_backend = no_backend + 1;
        packet_drop(iph);
        return;
      }
      new_flows = new_flows + 1;
      critical (slb_lock) {
        u32 j = slot;
        u32 t = 0;
        u32 w = 65535;
        while (t < 8) {
          u64 k2 = aff_key[j & 2047];
          if (k2 == key) {
            w = 65534;   // Raced: another thread pinned this flow.
            t = 8;
          } else {
            if (k2 == 0 && w == 65535) {
              w = j & 2047;
            }
            j = j + 1;
            t = t + 1;
          }
        }
        if (w != 65534) {
          if (w == 65535) {
            w = slot;
            evictions = evictions + 1;
          }
          aff_be[w] = be;
          aff_key[w] = key;
        }
      }
    }
    u32 bi = (be - 1) & 15;
    be_pkts[bi] = be_pkts[bi] + 1;
    iph->daddr = be_ip[bi];
    ether_pkt * eph = packet_encap(iph);
    eph->meta.tx_port = bi & 3;
    channel_put(tx, eph);
  }

  wire rx -> slb_clsfr;
  wire lb_cc -> slb_fwd;
}
)BAKER";

AppBundle sl::apps::slb() {
  AppBundle B;
  B.Name = "SLB";
  B.Source = SlbSource;
  B.TxMetaFields = {"tx_port"};
  B.DropCounters = {"non_ip", "malformed", "not_vip", "no_backend"};
  B.Tables.push_back({"vip", 0, kVip});

  // Consistent-hash ring: each backend hashes 32 virtual nodes onto the
  // 256-slot ring; empty slots inherit the next clockwise owner so every
  // slot resolves in one read. Removing a backend (be_up toggle) only
  // remaps the flows that hashed to its arcs.
  uint32_t Ring[256] = {};
  for (unsigned Be = 1; Be <= kNumBackends; ++Be) {
    uint64_t H = Be * 0x9E3779B97F4A7C15ull;
    for (unsigned V = 0; V != 32; ++V) {
      H ^= H >> 33;
      H *= 0xFF51AFD7ED558CCDull;
      H ^= H >> 29;
      Ring[H & 255] = Be;
    }
  }
  // Fill holes clockwise (walk backwards twice so wrap-around resolves).
  for (int Pass = 0; Pass != 2; ++Pass)
    for (int S = 255; S >= 0; --S)
      if (Ring[S] == 0)
        Ring[S] = Ring[(S + 1) & 255];
  for (unsigned S = 0; S != 256; ++S)
    B.Tables.push_back({"ring", S, Ring[S]});
  for (unsigned Be = 0; Be != kNumBackends; ++Be) {
    B.Tables.push_back({"be_up", Be, 1});
    B.Tables.push_back({"be_ip", Be, 0xAC100001u + Be});
  }
  return B;
}

//===----------------------------------------------------------------------===//
// SYN-Flood mitigator: per-source token buckets
//===----------------------------------------------------------------------===//

static const char *SynFloodSource = R"BAKER(
// SYN-flood mitigator: every TCP SYN spends syn_cost tokens from its
// source's bucket; buckets refill syn_rate per tick of a virtual clock
// that advances once per SYN seen. A source whose SYN share exceeds
// syn_rate/syn_cost of the total SYN stream starves; light sources
// refill fully between their own SYNs. Non-SYN TCP and non-TCP traffic
// forwards untouched with no state access.
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

protocol ip20 {
  ver : 4;
  hlen : 4;
  tos : 8;
  total_len : 16;
  id : 16;
  fl : 16;
  ttl : 8;
  proto : 8;
  checksum : 16;
  saddr : 32;
  daddr : 32;
  demux { 20 };
};

protocol tcp20 {
  sport : 16;
  dport : 16;
  seqno : 32;
  ackno : 32;
  doff : 4;
  rsvd : 4;
  flags : 8;
  win : 16;
  cksum : 16;
  urg : 16;
  demux { 20 };
};

metadata {
  tx_port : 16;
};

module synflood {
  u32 tb_tokens[1024]; // Token bucket per source-hash.
  u32 tb_tick[1024];   // Virtual-clock stamp of the bucket's last update.
  u32 now;             // Virtual clock: ticks once per SYN inspected.
  u32 syn_cost;        // Tokens one SYN spends (control-plane set).
  u32 syn_rate;        // Tokens refilled per clock tick.
  u32 syn_cap;         // Bucket capacity (burst allowance).
  u32 syn_pass;        // Admitted SYNs (stat only).
  u32 non_tcp;         // Pass-through non-TCP frames (stat only).
  u32 non_ip;          // Drop counters, one per drop site.
  u32 malformed;
  u32 syn_drop;

  channel tcp_cc : ip20;

  ppf syn_clsfr(ether_pkt * ph) {
    if (ph->type != 0x0800) {
      non_ip = non_ip + 1;
      packet_drop(ph);
      return;
    }
    if (packet_length(ph) < 54) {
      malformed = malformed + 1;
      packet_drop(ph);
      return;
    }
    ip20_pkt * iph = packet_decap(ph);
    if (iph->ver != 4 || iph->hlen != 5) {
      malformed = malformed + 1;
      packet_drop(iph);
      return;
    }
    if (iph->proto != 6) {
      non_tcp = non_tcp + 1;
      ether_pkt * e0 = packet_encap(iph);
      e0->meta.tx_port = e0->meta.rx_port ^ 1;
      channel_put(tx, e0);
      return;
    }
    channel_put(tcp_cc, iph);
  }

  ppf syn_gate(ip20_pkt * iph) {
    u32 src = iph->saddr;
    tcp20_pkt * tp = packet_decap(iph);
    u32 fl = tp->flags;
    if ((fl & 0x12) != 0x02) {
      // Established / non-SYN TCP: stateless forward.
      ip20_pkt * i1 = packet_encap(tp);
      ether_pkt * e1 = packet_encap(i1);
      e1->meta.tx_port = e1->meta.rx_port ^ 1;
      channel_put(tx, e1);
      return;
    }
    u32 hh = src ^ (src >> 16);
    hh = (hh ^ (hh >> 8)) & 1023;
    u32 allow = 0;
    critical (tb_lock) {
      u32 t = now;
      now = t + 1;
      u32 tok = tb_tokens[hh];
      u32 dt = t - tb_tick[hh];
      if (dt > 4096) {
        dt = 4096;       // Clamp: fresh/idle buckets refill to cap.
      }
      tok = tok + dt * syn_rate;
      u32 cap = syn_cap;
      if (tok > cap) {
        tok = cap;
      }
      tb_tick[hh] = t;
      u32 cost = syn_cost;
      if (tok >= cost) {
        tok = tok - cost;
        allow = 1;
      }
      tb_tokens[hh] = tok;
    }
    if (allow == 0) {
      syn_drop = syn_drop + 1;
      packet_drop(tp);
      return;
    }
    syn_pass = syn_pass + 1;
    ip20_pkt * i2 = packet_encap(tp);
    ether_pkt * e2 = packet_encap(i2);
    e2->meta.tx_port = e2->meta.rx_port ^ 1;
    channel_put(tx, e2);
  }

  wire rx -> syn_clsfr;
  wire tcp_cc -> syn_gate;
}
)BAKER";

AppBundle sl::apps::synflood() {
  AppBundle B;
  B.Name = "SYN-Flood";
  B.Source = SynFloodSource;
  B.TxMetaFields = {"tx_port"};
  B.DropCounters = {"non_ip", "malformed", "syn_drop"};
  B.Tables.push_back({"syn_cost", 0, 16});
  B.Tables.push_back({"syn_rate", 0, 1});
  B.Tables.push_back({"syn_cap", 0, 96});
  // Start the virtual clock past the refill clamp so untouched buckets
  // (tick 0) read as full: a source's very first SYN is always admitted.
  B.Tables.push_back({"now", 0, 4096});
  return B;
}

std::vector<AppBundle> sl::apps::statefulApps() {
  return {nat(), slb(), synflood()};
}

//===----------------------------------------------------------------------===//
// Frame builders
//===----------------------------------------------------------------------===//

traffic::FrameBuilder sl::apps::natFrames(unsigned InboundPct) {
  return [InboundPct](uint64_t Flow, uint64_t Seq,
                      Rng &R) -> profile::TracePacket {
    (void)Seq;
    if (R.nextBelow(100) < InboundPct) {
      // Inbound reply: external server to a guessed allocated port. Hits
      // rev_key when the port is bound, rev_miss otherwise.
      std::vector<uint8_t> F = ether(kGwMac, kHostMacBase + 0xEE, 0x0800);
      ipv4At(F, 14, kServerIp, kNatIp, 64, 6);
      portsAt(F, 34, 80,
              static_cast<uint16_t>(32768 + R.nextBelow(4096)));
      return {std::move(F), 1};
    }
    std::vector<uint8_t> F =
        ether(kGwMac, kHostMacBase + (Flow & 0xFF), 0x0800);
    ipv4At(F, 14, kInsideBase | static_cast<uint32_t>(Flow & 0xFFFF),
           kServerIp, 64, 6);
    portsAt(F, 34, static_cast<uint16_t>(10000 + ((Flow >> 16) & 0x3FFF)),
            80);
    return {std::move(F), 0};
  };
}

traffic::FrameBuilder sl::apps::slbFrames() {
  return [](uint64_t Flow, uint64_t Seq, Rng &R) -> profile::TracePacket {
    (void)Seq;
    std::vector<uint8_t> F =
        ether(kGwMac, kHostMacBase + (Flow & 0xFF), 0x0800);
    ipv4At(F, 14, kClientBase | static_cast<uint32_t>(Flow & 0xFFFF), kVip,
           64, 6);
    portsAt(F, 34, static_cast<uint16_t>(10000 + ((Flow >> 16) & 0x3FFF)),
            80);
    return {std::move(F), static_cast<uint16_t>(R.nextBelow(4))};
  };
}

traffic::FrameBuilder sl::apps::synfloodFrames(uint64_t AttackersBelow) {
  return [AttackersBelow](uint64_t Flow, uint64_t Seq,
                          Rng &R) -> profile::TracePacket {
    uint32_t Src = kSynBase | static_cast<uint32_t>(Flow & 0xFFFF);
    // Attackers blast pure SYNs; normal sources open one connection per
    // eight packets and send established traffic otherwise.
    bool Syn = Flow < AttackersBelow || (Seq % 8) == 0;
    uint8_t Flags = Syn ? 0x02 : 0x10;
    uint16_t Sport = Syn ? static_cast<uint16_t>(1024 + R.nextBelow(60000))
                         : static_cast<uint16_t>(1024 + (Flow & 0x7FFF));
    std::vector<uint8_t> F =
        ether(kGwMac, kHostMacBase + (Flow & 0xFF), 0x0800);
    ipv4At(F, 14, Src, kProtectedIp, 64, 6);
    tcpAt(F, 34, Sport, 80, Flags);
    return {std::move(F), 0};
  };
}

//===----------------------------------------------------------------------===//
// Adversarial profile dispatch
//===----------------------------------------------------------------------===//

profile::Trace sl::apps::adversarialTrace(const AppBundle &App,
                                          traffic::Profile P, uint64_t Seed,
                                          unsigned N) {
  traffic::FrameBuilder Build;
  if (App.Name == "NAT")
    Build = natFrames();
  else if (App.Name == "SLB")
    Build = slbFrames();
  else if (App.Name == "SYN-Flood")
    Build = synfloodFrames();
  else {
    // Paper apps have no flow-keyed builder; reuse their native traces.
    return App.makeTrace(Seed, N);
  }

  switch (P) {
  case traffic::Profile::Benign: {
    // Uniform flows over a table-friendly universe (Zipf with skew 0).
    traffic::ZipfParams Z;
    Z.NumFlows = 256;
    Z.Skew = 0.0;
    return traffic::makeZipf(Seed, N, Z, Build);
  }
  case traffic::Profile::Zipf: {
    traffic::ZipfParams Z;
    Z.NumFlows = 1024;
    Z.Skew = 1.2;
    return traffic::makeZipf(Seed, N, Z, Build);
  }
  case traffic::Profile::Bursty: {
    traffic::BurstParams BP;
    BP.NumFlows = 64;
    BP.MinBurst = 8;
    BP.MaxBurst = 48;
    return traffic::makeBursty(Seed, N, BP, Build);
  }
  case traffic::Profile::Thrash: {
    traffic::ThrashParams TP;
    TP.FlowUniverse = 1ull << 15; // Far above every app's table capacity.
    TP.PacketsPerFlow = 1;
    return traffic::makeThrash(Seed, N, TP, Build);
  }
  case traffic::Profile::Malformed: {
    traffic::ZipfParams Z;
    Z.NumFlows = 256;
    Z.Skew = 0.0;
    profile::Trace T = traffic::makeZipf(Seed, N, Z, Build);
    traffic::MalformParams MP;
    MP.Fraction = 0.3;
    T = traffic::truncateFrames(Seed + 1, T, MP);
    return traffic::corruptHeaders(Seed + 2, T, MP);
  }
  }
  return {};
}

//===----------------------------------------------------------------------===//
// Reference-interpreter plumbing
//===----------------------------------------------------------------------===//

AppInterp sl::apps::makeAppInterp(const AppBundle &App) {
  AppInterp AI;
  DiagEngine Diags;
  AI.Unit = baker::parseAndAnalyze(App.Source, Diags);
  if (!AI.Unit) {
    AI.Error = Diags.str();
    return AI;
  }
  AI.M = ir::lowerProgram(*AI.Unit, Diags);
  if (!AI.M || Diags.hasErrors()) {
    AI.Error = Diags.str();
    AI.M.reset();
    return AI;
  }
  AI.I = std::make_unique<interp::Interpreter>(*AI.M);
  for (const driver::TableInit &T : App.Tables)
    AI.I->writeGlobal(T.Global, T.Index, T.Value);
  return AI;
}

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

namespace {

/// Fails \p O with a formatted message; returns false for chaining.
bool oracleFail(OracleResult &O, const std::string &Msg) {
  O.Ok = false;
  if (!O.Log.empty())
    O.Log += "; ";
  O.Log += Msg;
  return false;
}

std::vector<uint8_t> natOutFrame(uint32_t Fl) {
  std::vector<uint8_t> F = ether(kGwMac, kHostMacBase + (Fl & 0xFF), 0x0800);
  ipv4At(F, 14, kInsideBase | Fl, kServerIp, 64, 6);
  portsAt(F, 34, static_cast<uint16_t>(10000 + (Fl & 0xFF)), 80);
  return F;
}

std::vector<uint8_t> slbFrame(uint32_t Fl) {
  std::vector<uint8_t> F = ether(kGwMac, kHostMacBase + (Fl & 0xFF), 0x0800);
  ipv4At(F, 14, kClientBase | Fl, kVip, 64, 6);
  portsAt(F, 34, static_cast<uint16_t>(10000 + (Fl & 0xFF)), 80);
  return F;
}

std::vector<uint8_t> synFrame(uint32_t Fl, uint16_t Sport, uint8_t Flags) {
  std::vector<uint8_t> F = ether(kGwMac, kHostMacBase + (Fl & 0xFF), 0x0800);
  ipv4At(F, 14, kSynBase | Fl, kProtectedIp, 64, 6);
  tcpAt(F, 34, Sport, 80, Flags);
  return F;
}

uint32_t frameSaddr(const std::vector<uint8_t> &F) {
  return static_cast<uint32_t>(readBitsBE(F.data(), 26 * 8, 32));
}
uint32_t frameDaddr(const std::vector<uint8_t> &F) {
  return static_cast<uint32_t>(readBitsBE(F.data(), 30 * 8, 32));
}
uint16_t frameSport(const std::vector<uint8_t> &F) {
  return static_cast<uint16_t>(readBitsBE(F.data(), 34 * 8, 16));
}
uint16_t frameDport(const std::vector<uint8_t> &F) {
  return static_cast<uint16_t>(readBitsBE(F.data(), 36 * 8, 16));
}

} // namespace

OracleResult sl::apps::natOracle(uint64_t Seed) {
  OracleResult O;
  (void)Seed; // The scenario is fully deterministic.
  AppBundle App = nat();
  AppInterp AI = makeAppInterp(App);
  if (!AI.I) {
    oracleFail(O, "NAT failed to compile: " + AI.Error);
    return O;
  }

  // Translation consistency: every flow's (external ip, port) binding must
  // be identical on every packet, and distinct across flows.
  const unsigned NumFlows = 96;
  std::map<uint32_t, uint16_t> Binding;
  std::set<uint16_t> Ports;
  for (unsigned Round = 0; Round != 3; ++Round) {
    for (unsigned Fl = 0; Fl != NumFlows; ++Fl) {
      interp::RunResult R = AI.I->inject(natOutFrame(Fl), 0);
      if (R.Error || R.Tx.size() != 1) {
        oracleFail(O, "outbound flow " + std::to_string(Fl) + " round " +
                          std::to_string(Round) + ": " +
                          (R.Error ? R.ErrorMsg : "no output"));
        return O;
      }
      const auto &F = R.Tx[0].Frame;
      if (frameSaddr(F) != kNatIp) {
        oracleFail(O, "outbound not rewritten to nat_ip");
        return O;
      }
      uint16_t Pt = frameSport(F);
      if (Round == 0) {
        if (!Ports.insert(Pt).second) {
          oracleFail(O, "port " + std::to_string(Pt) +
                            " allocated to two flows");
          return O;
        }
        Binding[Fl] = Pt;
      } else if (Binding[Fl] != Pt) {
        oracleFail(O, "flow " + std::to_string(Fl) + " rebound: port " +
                          std::to_string(Binding[Fl]) + " -> " +
                          std::to_string(Pt));
        return O;
      }
    }
  }

  // The scenario is far below table capacity: nothing may be evicted.
  if (AI.I->readGlobal("evictions", 0) != 0) {
    oracleFail(O, "evictions on an underfull table");
    return O;
  }

  // Reverse consistency: a reply to each allocated port must come back
  // translated to exactly the original (inside ip, port).
  for (const auto &[Fl, Pt] : Binding) {
    std::vector<uint8_t> In = ether(kGwMac, kHostMacBase + 0xEE, 0x0800);
    ipv4At(In, 14, kServerIp, kNatIp, 64, 6);
    portsAt(In, 34, 80, Pt);
    interp::RunResult R = AI.I->inject(In, 1);
    if (R.Error || R.Tx.size() != 1) {
      oracleFail(O, "inbound to port " + std::to_string(Pt) + " dropped");
      return O;
    }
    const auto &F = R.Tx[0].Frame;
    if (frameDaddr(F) != (kInsideBase | Fl) ||
        frameDport(F) != static_cast<uint16_t>(10000 + (Fl & 0xFF))) {
      oracleFail(O, "reverse translation mismatch for flow " +
                        std::to_string(Fl));
      return O;
    }
  }

  // An unbound port must be dropped and counted, not forwarded.
  {
    std::vector<uint8_t> In = ether(kGwMac, kHostMacBase + 0xEE, 0x0800);
    ipv4At(In, 14, kServerIp, kNatIp, 64, 6);
    portsAt(In, 34, 80, 36000); // next_port never reached this.
    interp::RunResult R = AI.I->inject(In, 1);
    if (R.Error || !R.Tx.empty() || AI.I->readGlobal("rev_miss", 0) == 0) {
      oracleFail(O, "unbound inbound port was not dropped");
      return O;
    }
  }

  O.Log = "NAT: " + std::to_string(NumFlows) +
          " flows stable over 3 rounds, reverse map consistent, 0 evictions";
  return O;
}

OracleResult sl::apps::slbOracle(uint64_t Seed) {
  OracleResult O;
  (void)Seed;
  AppBundle App = slb();
  const unsigned NumFlows = 160;
  const uint32_t DeadBe = 3; // 0-based index; id 4 on the ring.

  // Maps each flow to the backend index chosen by a given interpreter.
  auto mapFlows = [&](interp::Interpreter &I,
                      std::map<uint32_t, uint32_t> &Out) -> bool {
    for (unsigned Fl = 0; Fl != NumFlows; ++Fl) {
      interp::RunResult R = I.inject(slbFrame(Fl), 0);
      if (R.Error || R.Tx.size() != 1)
        return oracleFail(O, "flow " + std::to_string(Fl) + ": " +
                                 (R.Error ? R.ErrorMsg : "dropped"));
      uint32_t Da = frameDaddr(R.Tx[0].Frame);
      if (Da < 0xAC100001u || Da >= 0xAC100001u + kNumBackends)
        return oracleFail(O, "rewritten daddr is not a backend");
      Out[Fl] = Da - 0xAC100001u;
    }
    return true;
  };

  // Affinity: with all backends up, the mapping must be stable across
  // repeated packets of the same flows.
  AppInterp A = makeAppInterp(App);
  if (!A.I) {
    oracleFail(O, "SLB failed to compile: " + A.Error);
    return O;
  }
  std::map<uint32_t, uint32_t> MapA, MapA2;
  if (!mapFlows(*A.I, MapA) || !mapFlows(*A.I, MapA2))
    return O;
  if (MapA != MapA2) {
    oracleFail(O, "mapping changed between rounds with stable backends");
    return O;
  }

  // Kill one backend in the SAME interpreter: established flows pinned
  // elsewhere must keep their backend; flows pinned to the dead one must
  // move to a live backend.
  A.I->writeGlobal("be_up", DeadBe, 0);
  std::map<uint32_t, uint32_t> MapDown;
  if (!mapFlows(*A.I, MapDown))
    return O;
  unsigned OnDead = 0, Moved = 0;
  for (const auto &[Fl, Be] : MapA) {
    if (Be == DeadBe) {
      ++OnDead;
      if (MapDown[Fl] == DeadBe)
        return (void)oracleFail(O, "flow still on dead backend"), O;
    } else if (MapDown[Fl] != Be) {
      ++Moved;
    }
  }
  if (OnDead == 0) {
    oracleFail(O, "scenario too small: no flow hit the dead backend");
    return O;
  }
  if (Moved != 0) {
    oracleFail(O, std::to_string(Moved) +
                      " flows lost affinity though their backend stayed up");
    return O;
  }

  // Consistent-hash remap bound: a FRESH balancer without that backend
  // must agree with the all-up mapping on every flow that was not on it.
  AppInterp B = makeAppInterp(App);
  if (!B.I) {
    oracleFail(O, "SLB failed to compile: " + B.Error);
    return O;
  }
  B.I->writeGlobal("be_up", DeadBe, 0);
  std::map<uint32_t, uint32_t> MapB;
  if (!mapFlows(*B.I, MapB))
    return O;
  unsigned Remapped = 0;
  for (const auto &[Fl, Be] : MapA) {
    if (MapB[Fl] != Be)
      ++Remapped;
    if (Be != DeadBe && MapB[Fl] != Be)
      return (void)oracleFail(
                 O, "consistent hashing violated: flow " +
                        std::to_string(Fl) + " moved off a live backend"),
             O;
  }
  if (Remapped != OnDead) {
    oracleFail(O, "remap count " + std::to_string(Remapped) +
                      " != dead-backend flow count " +
                      std::to_string(OnDead));
    return O;
  }

  O.Log = "SLB: affinity stable, " + std::to_string(OnDead) + "/" +
          std::to_string(NumFlows) +
          " flows remapped on backend death (consistent-hash bound holds)";
  return O;
}

OracleResult sl::apps::synfloodOracle(uint64_t Seed) {
  OracleResult O;
  AppBundle App = synflood();
  AppInterp AI = makeAppInterp(App);
  if (!AI.I) {
    oracleFail(O, "SYN-Flood failed to compile: " + AI.Error);
    return O;
  }

  Rng R(Seed ^ 0x5F00D5EEDull);
  // Mix: 2 attackers each sending 2 SYNs per round (40% of the SYN
  // stream each), 16 normal sources taking turns opening one connection
  // per round, plus established traffic that must never be touched.
  const unsigned Rounds = 400;
  const uint32_t Attackers[2] = {0x100, 0x101};
  const unsigned NumBenign = 16;
  uint64_t AtkSyn = 0, AtkPass = 0, BenSyn = 0, BenPass = 0, AckDrop = 0;

  auto injectSyn = [&](uint32_t Fl) -> bool {
    auto Sport = static_cast<uint16_t>(1024 + R.nextBelow(60000));
    interp::RunResult RR = AI.I->inject(synFrame(Fl, Sport, 0x02), 0);
    if (RR.Error)
      return oracleFail(O, "interp error: " + RR.ErrorMsg), false;
    return !RR.Tx.empty();
  };

  for (unsigned Rd = 0; Rd != Rounds; ++Rd) {
    for (unsigned Rep = 0; Rep != 2; ++Rep)
      for (uint32_t A : Attackers) {
        ++AtkSyn;
        AtkPass += injectSyn(A);
        if (!O.Ok)
          return O;
      }
    uint32_t Ben = 0x200 + (Rd % NumBenign);
    ++BenSyn;
    BenPass += injectSyn(Ben);
    if (!O.Ok)
      return O;
    // Established traffic: forwarded statelessly, never rate-limited.
    for (unsigned K = 0; K != 4; ++K) {
      uint32_t Src = 0x200 + ((Rd + K) % NumBenign);
      interp::RunResult RR = AI.I->inject(
          synFrame(Src, static_cast<uint16_t>(2048 + Src), 0x10), 0);
      if (RR.Error || RR.Tx.empty())
        ++AckDrop;
    }
  }

  double AtkRate = double(AtkPass) / double(AtkSyn);
  double BenRate = double(BenPass) / double(BenSyn);
  std::ostringstream SS;
  SS << "SYN-Flood: attacker admit " << AtkPass << "/" << AtkSyn << " ("
     << AtkRate << "), benign admit " << BenPass << "/" << BenSyn << " ("
     << BenRate << "), established drops " << AckDrop;
  // FN bound: the flood must be squeezed to its fair sustained share.
  if (AtkRate > 0.35)
    oracleFail(O, "flood under-throttled: " + SS.str());
  // The mitigator is a limiter, not a blackhole.
  if (AtkPass == 0)
    oracleFail(O, "flood fully blackholed: " + SS.str());
  // FP bound: light sources refill fully between their own SYNs.
  if (BenRate < 0.9)
    oracleFail(O, "benign SYNs over-dropped: " + SS.str());
  if (AckDrop != 0)
    oracleFail(O, "established traffic was rate-limited: " + SS.str());
  if (O.Ok)
    O.Log = SS.str();
  return O;
}

OracleResult sl::apps::conservationOracle(const AppBundle &App,
                                          const profile::Trace &T) {
  OracleResult O;
  AppInterp AI = makeAppInterp(App);
  if (!AI.I) {
    oracleFail(O, App.Name + " failed to compile: " + AI.Error);
    return O;
  }
  uint64_t Tx = 0;
  for (const auto &P : T) {
    interp::RunResult R = AI.I->inject(P.Frame, P.Port);
    if (R.Error) {
      oracleFail(O, App.Name + " interp error: " + R.ErrorMsg);
      return O;
    }
    Tx += R.Tx.size();
  }
  uint64_t Dropped = 0;
  for (const std::string &C : App.DropCounters)
    Dropped += AI.I->readGlobal(C, 0);
  if (Tx + Dropped != T.size()) {
    oracleFail(O, App.Name + " conservation violated: " +
                      std::to_string(T.size()) + " injected != " +
                      std::to_string(Tx) + " tx + " +
                      std::to_string(Dropped) + " dropped");
    return O;
  }
  O.Log = App.Name + ": " + std::to_string(T.size()) + " injected = " +
          std::to_string(Tx) + " tx + " + std::to_string(Dropped) +
          " dropped";
  return O;
}
