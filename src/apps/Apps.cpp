//===- apps/Apps.cpp ---------------------------------------------------------------==//

#include "apps/Apps.h"

#include "interp/Bits.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>

using namespace sl;
using namespace sl::apps;
using driver::TableInit;
using interp::writeBitsBE;

//===----------------------------------------------------------------------===//
// Shared frame builders
//===----------------------------------------------------------------------===//

namespace {

std::vector<uint8_t> etherFrame(uint64_t Dst, uint64_t Src, uint16_t Type,
                                size_t Len = 64) {
  std::vector<uint8_t> F(Len, 0);
  writeBitsBE(F.data(), 0, 48, Dst);
  writeBitsBE(F.data(), 48, 48, Src);
  writeBitsBE(F.data(), 96, 16, Type);
  return F;
}

void putIpv4At(std::vector<uint8_t> &F, size_t ByteOff, uint32_t Saddr,
               uint32_t Daddr, uint8_t Ttl, uint8_t Proto,
               unsigned Hlen = 5) {
  size_t B = ByteOff * 8;
  writeBitsBE(F.data(), B + 0, 4, 4);
  writeBitsBE(F.data(), B + 4, 4, Hlen);
  writeBitsBE(F.data(), B + 16, 16,
              static_cast<uint16_t>(F.size() - ByteOff));
  writeBitsBE(F.data(), B + 64, 8, Ttl);
  writeBitsBE(F.data(), B + 72, 8, Proto);
  writeBitsBE(F.data(), B + 80, 16, 0xBEEF); // Pseudo checksum.
  writeBitsBE(F.data(), B + 96, 32, Saddr);
  writeBitsBE(F.data(), B + 128, 32, Daddr);
}

void putPortsAt(std::vector<uint8_t> &F, size_t ByteOff, uint16_t Sport,
                uint16_t Dport) {
  writeBitsBE(F.data(), ByteOff * 8, 16, Sport);
  writeBitsBE(F.data(), ByteOff * 8 + 16, 16, Dport);
}

void putMplsAt(std::vector<uint8_t> &F, size_t ByteOff, uint32_t Label,
               bool Bottom, uint8_t Ttl) {
  size_t B = ByteOff * 8;
  writeBitsBE(F.data(), B + 0, 20, Label);
  writeBitsBE(F.data(), B + 20, 3, 0);
  writeBitsBE(F.data(), B + 23, 1, Bottom ? 1 : 0);
  writeBitsBE(F.data(), B + 24, 8, Ttl);
}

uint64_t portMac(unsigned Port) { return 0x00AA00000000ull + Port; }
uint64_t hostMac(unsigned Id) { return 0x00CC00000000ull + Id; }
uint64_t nhMac(unsigned Nh) { return 0x00BB00000000ull + Nh; }

} // namespace

//===----------------------------------------------------------------------===//
// L3-Switch
//===----------------------------------------------------------------------===//

static const char *L3SwitchSource = R"BAKER(
// L3-Switch: bridges and routes IP packets (NPF IP forwarding benchmark).
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

protocol ipv4 {
  ver : 4;
  hlen : 4;
  tos : 8;
  total_len : 16;
  id : 16;
  flags : 3;
  frag : 13;
  ttl : 8;
  proto : 8;
  checksum : 16;
  saddr : 32;
  daddr : 32;
  demux { hlen << 2 };
};

metadata {
  tx_port : 16;
  nexthop : 16;
};

module l3_switch {
  u64 port_mac[16];   // This router's MAC per port.
  u64 mac_key[256];   // Bridging table: direct-hash with linear probing.
  u32 mac_port[256];
  u32 trie16[65536];  // Route trie root: bit31 = leaf, low 16 = nh/block.
  u32 trie8[8192];    // 32 second-level blocks of 256 entries.
  u64 nh_dmac[256];   // Next-hop rewrite info.
  u32 nh_port[256];
  u32 arp_count;
  u32 drops;

  channel l3_cc : ipv4;
  channel enc_cc : ipv4;
  channel bridge_cc : ether;
  channel arp_cc : ether;

  ppf l2_clsfr(ether_pkt * ph) {
    if (ph->type == 0x0806) {
      channel_put(arp_cc, ph);
      return;
    }
    if (ph->type == 0x0800 && ph->dst == port_mac[ph->meta.rx_port & 15]) {
      ipv4_pkt * iph = packet_decap(ph);
      channel_put(l3_cc, iph);
      return;
    }
    channel_put(bridge_cc, ph);
  }

  // Control traffic is rare: this lands on the XScale.
  ppf arp_handler(ether_pkt * ph) {
    arp_count = arp_count + 1;
    packet_drop(ph);
  }

  ppf l2_bridge(ether_pkt * ph) {
    u32 h = ph->dst ^ (ph->dst >> 32);
    h = (h ^ (h >> 16)) & 255;
    u32 i = h;
    u32 tries = 0;
    u32 out = 0xFFFF;
    while (tries < 4) {
      if (mac_key[i & 255] == ph->dst) {
        out = mac_port[i & 255];
        break;
      }
      i = i + 1;
      tries = tries + 1;
    }
    if (out == 0xFFFF) {
      drops = drops + 1;
      packet_drop(ph);
      return;
    }
    ph->meta.tx_port = out;
    channel_put(tx, ph);
  }

  ppf l3_fwdr(ipv4_pkt * iph) {
    if (iph->ver != 4 || iph->ttl <= 1) {
      drops = drops + 1;
      packet_drop(iph);
      return;
    }
    u32 d = iph->daddr;
    u32 e = trie16[d >> 16];
    if (e == 0) {
      drops = drops + 1;
      packet_drop(iph);
      return;
    }
    u32 nh = e & 0xFFFF;
    if ((e & 0x80000000) == 0) {
      u32 e2 = trie8[(e & 0xFFFF) * 256 + ((d >> 8) & 255)];
      if (e2 == 0) {
        drops = drops + 1;
        packet_drop(iph);
        return;
      }
      nh = e2 & 0xFFFF;
    }
    iph->ttl = iph->ttl - 1;
    u32 sum = iph->checksum + 0x100;    // Incremental update for TTL-1.
    sum = (sum & 0xFFFF) + (sum >> 16);
    iph->checksum = sum;
    iph->meta.nexthop = nh;
    channel_put(enc_cc, iph);
  }

  ppf eth_encap(ipv4_pkt * iph) {
    u32 nh = iph->meta.nexthop & 255;
    ether_pkt * eph = packet_encap(iph);
    eph->dst = nh_dmac[nh];
    eph->src = port_mac[nh_port[nh] & 15];
    eph->type = 0x0800;
    eph->meta.tx_port = nh_port[nh];
    channel_put(tx, eph);
  }

  wire rx -> l2_clsfr;
  wire arp_cc -> arp_handler;
  wire bridge_cc -> l2_bridge;
  wire l3_cc -> l3_fwdr;
  wire enc_cc -> eth_encap;
}
)BAKER";

AppBundle sl::apps::l3switch() {
  AppBundle B;
  B.Name = "L3-Switch";
  B.Source = L3SwitchSource;
  B.TxMetaFields = {"tx_port"};

  // Port MACs.
  for (unsigned Pt = 0; Pt != 16; ++Pt)
    B.Tables.push_back({"port_mac", Pt, portMac(Pt & 3)});

  // Bridging table: 64 learned hosts at their hash positions.
  for (unsigned Id = 0; Id != 64; ++Id) {
    uint64_t Mac = hostMac(Id);
    uint32_t H = static_cast<uint32_t>(Mac ^ (Mac >> 32));
    H = (H ^ (H >> 16)) & 255;
    B.Tables.push_back({"mac_key", H, Mac});
    B.Tables.push_back({"mac_port", H, Id & 3});
  }

  // Routes: 48 /16 prefixes as root leaves, plus 8 /24 blocks.
  for (unsigned K = 0; K != 48; ++K) {
    uint32_t Idx = 0x0A00 + K * 37;
    B.Tables.push_back({"trie16", Idx, 0x80000000u | (1 + K % 64)});
  }
  for (unsigned Blk = 0; Blk != 8; ++Blk) {
    uint32_t Idx = 0xC000 + Blk; // 192.x/16 roots pointing at blocks 1..8.
    B.Tables.push_back({"trie16", Idx, Blk + 1});
    for (unsigned Sub = 0; Sub != 256; Sub += 2) // /24s, half populated.
      B.Tables.push_back(
          {"trie8", (Blk + 1) * 256 + Sub, 1 + (Blk * 31 + Sub) % 64});
  }

  // Next hops.
  for (unsigned Nh = 1; Nh != 65; ++Nh) {
    B.Tables.push_back({"nh_dmac", Nh, nhMac(Nh)});
    B.Tables.push_back({"nh_port", Nh, Nh & 3});
  }
  return B;
}

//===----------------------------------------------------------------------===//
// Firewall
//===----------------------------------------------------------------------===//

static const char *FirewallSource = R"BAKER(
// Firewall: ordered-rule 5-tuple classifier between an internal and an
// external network. The fast path assumes option-less IPv4 (hlen == 5);
// anything else goes to the slow path.
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

// IPv4 (no options) + L4 ports viewed as one fast-path header.
protocol ip5 {
  ver : 4;
  hlen : 4;
  tos : 8;
  total_len : 16;
  id : 16;
  fl : 16;
  ttl : 8;
  proto : 8;
  checksum : 16;
  saddr : 32;
  daddr : 32;
  sport : 16;
  dport : 16;
  demux { 24 };
};

protocol ipv4opt {
  ver : 4;
  hlen : 4;
  rest : 24;
  demux { hlen << 2 };
};

metadata {
  tx_port : 16;
  flow_id : 16;
};

module firewall {
  // Rules are packed two fields per 64-bit word so each check costs one
  // wide SRAM read instead of two narrow ones (the style hand-written ME
  // classifiers use).
  u64 rule_src[64];    // saddr << 32 | smask.
  u64 rule_dst[64];    // daddr << 32 | dmask.
  u64 rule_sport[64];  // lo << 32 | hi.
  u64 rule_dport[64];  // lo << 32 | hi.
  u64 rule_pa[64];     // proto << 32 | action+1 (0 = unused slot).
  u32 num_rules;
  u32 denied;
  u32 slow_count;

  channel slow_cc : ether;

  ppf fw_clsfr(ether_pkt * ph) {
    if (ph->type != 0x0800) {
      // Non-IP passes through transparently to the peer port.
      ph->meta.tx_port = ph->meta.rx_port ^ 1;
      channel_put(tx, ph);
      return;
    }
    ip5_pkt * iph = packet_decap(ph);
    if (iph->ver != 4 || iph->hlen != 5) {
      ether_pkt * back = packet_encap(iph);
      channel_put(slow_cc, back);
      return;
    }

    u32 sa = iph->saddr;
    u32 da = iph->daddr;
    u32 sp = iph->sport;
    u32 dp = iph->dport;
    u32 proto = iph->proto;

    u32 action = 0;       // Default deny.
    u32 flow = 0xFFFF;
    u32 n = num_rules;
    for (u32 i = 0; i < n; i = i + 1) {
      // Most discriminating field first: almost every non-matching rule
      // is rejected after a single wide table read.
      u64 rdp = rule_dport[i];
      u32 dlo = rdp >> 32;
      u32 dhi = rdp;
      if (dp < dlo || dp > dhi) { continue; }
      u64 rpa = rule_pa[i];
      u32 rproto = rpa >> 32;
      if (rproto != 0 && rproto != proto) { continue; }
      u64 rd = rule_dst[i];
      u32 dmask = rd;
      if ((da & dmask) != (rd >> 32)) { continue; }
      u64 rs = rule_src[i];
      u32 smask = rs;
      if ((sa & smask) != (rs >> 32)) { continue; }
      u64 rsp = rule_sport[i];
      u32 slo = rsp >> 32;
      u32 shi = rsp;
      if (sp < slo || sp > shi) { continue; }
      action = rpa & 0xFFFF;  // Stored as action+1.
      flow = i;
      break;
    }
    if (flow != 0xFFFF) { action = action - 1; }

    if (action == 0) {
      denied = denied + 1;
      packet_drop(iph);
      return;
    }
    iph->meta.flow_id = flow;
    ether_pkt * out = packet_encap(iph);
    out->meta.tx_port = out->meta.rx_port ^ 1;
    channel_put(tx, out);
  }

  // IP options / malformed headers: rare, handled off the fast path.
  ppf fw_slow(ether_pkt * ph) {
    slow_count = slow_count + 1;
    packet_drop(ph);
  }

  wire rx -> fw_clsfr;
  wire slow_cc -> fw_slow;
}
)BAKER";

AppBundle sl::apps::firewall() {
  AppBundle B;
  B.Name = "Firewall";
  B.Source = FirewallSource;
  B.TxMetaFields = {"tx_port"};

  auto rule = [&](unsigned I, uint32_t Sa, uint32_t Sm, uint32_t Da,
                  uint32_t Dm, uint32_t SpLo, uint32_t SpHi, uint32_t DpLo,
                  uint32_t DpHi, uint32_t Proto, uint32_t Action) {
    B.Tables.push_back({"rule_src", I, (uint64_t(Sa) << 32) | Sm});
    B.Tables.push_back({"rule_dst", I, (uint64_t(Da) << 32) | Dm});
    B.Tables.push_back({"rule_sport", I, (uint64_t(SpLo) << 32) | SpHi});
    B.Tables.push_back({"rule_dport", I, (uint64_t(DpLo) << 32) | DpHi});
    B.Tables.push_back(
        {"rule_pa", I, (uint64_t(Proto) << 32) | (Action + 1)});
  };

  unsigned N = 0;
  // Real rule sets order by hit frequency with blanket denies up front:
  // the noisy-subnet drop goes first, then the hot web allows (distinct
  // service ports 80..95 from distinct /16 client subnets).
  rule(N++, 0x0A050000, 0xFFFF0000, 0x00000000, 0x00000000, 0, 65535, 0,
       65535, 0, 0);
  for (unsigned K = 0; K != 16; ++K)
    rule(N++, 0x0A000000 + (K << 16), 0xFFFF0000, 0xAC100000, 0xFFF00000, 0,
         65535, 80 + K, 80 + K, 6, 1);
  // DNS.
  for (unsigned K = 0; K != 8; ++K)
    rule(N++, 0x0A000000, 0xFF000000, 0xAC100000 + (K << 12), 0xFFFFF000, 0,
         65535, 53, 53, 17, 1);
  // Block telnet into specific service subnets from the outside.
  for (unsigned K = 0; K != 8; ++K)
    rule(N++, 0x0A000000, 0xFF000000, 0xAC100000 + (K << 8), 0xFFFFFF00, 0,
         65535, 23, 23, 6, /*deny*/ 0);
  // Catch-all allow for internal-to-external traffic.
  rule(N++, 0xAC100000, 0xFFF00000, 0x00000000, 0x00000000, 0, 65535, 0,
       65535, 0, 1);
  // Catch-all allow high ports.
  rule(N++, 0x00000000, 0x00000000, 0x00000000, 0x00000000, 1024, 65535,
       1024, 65535, 0, 1);
  B.Tables.push_back({"num_rules", 0, N});
  return B;
}

//===----------------------------------------------------------------------===//
// MPLS
//===----------------------------------------------------------------------===//

static const char *MplsSource = R"BAKER(
// MPLS forwarding (NPF benchmark): label swap, swap+push, pop (incl.
// penultimate-hop pop) and IP ingress (label push).
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
};

protocol mpls {
  label : 20;
  exp : 3;
  s : 1;
  ttl : 8;
  demux { 4 };
};

protocol ipv4 {
  ver : 4;
  hlen : 4;
  tos : 8;
  total_len : 16;
  id : 16;
  flags : 3;
  frag : 13;
  ttl : 8;
  proto : 8;
  checksum : 16;
  saddr : 32;
  daddr : 32;
  demux { hlen << 2 };
};

metadata {
  tx_port : 16;
};

module mpls_fwd {
  u32 ilm_op[4096];   // 0 invalid, 1 swap, 2 swap+push, 3 pop.
  u32 ilm_out[4096];  // Swap label / pop next-hop.
  u32 ilm_push[4096]; // Outer label for swap+push.
  u32 ilm_port[4096];
  u32 fec16[65536];   // Ingress FEC: (port << 20) | label; 0 = no entry.
  u64 port_mac[16];
  u64 nh_dmac[64];
  u32 drops;

  channel lbl_cc : mpls;
  channel ing_cc : ipv4;

  ppf clsfr(ether_pkt * ph) {
    if (ph->type == 0x8847) {
      mpls_pkt * mp = packet_decap(ph);
      channel_put(lbl_cc, mp);
      return;
    }
    if (ph->type == 0x0800) {
      ipv4_pkt * iph = packet_decap(ph);
      channel_put(ing_cc, iph);
      return;
    }
    drops = drops + 1;
    packet_drop(ph);
  }

  ppf lsr(mpls_pkt * mp) {
    u32 idx = mp->label & 4095;
    u32 op = ilm_op[idx];
    if (op == 0 || mp->ttl <= 1) {
      drops = drops + 1;
      packet_drop(mp);
      return;
    }
    u32 outp = ilm_port[idx];

    if (op == 1) {
      // Swap in place.
      mp->label = ilm_out[idx];
      mp->ttl = mp->ttl - 1;
      ether_pkt * eph = packet_encap(mp);
      eph->dst = nh_dmac[outp & 63];
      eph->src = port_mac[outp & 15];
      eph->type = 0x8847;
      eph->meta.tx_port = outp;
      channel_put(tx, eph);
      return;
    }

    if (op == 2) {
      // Swap, then push a tunnel label on top.
      mp->label = ilm_out[idx];
      u32 t = mp->ttl - 1;
      mp->ttl = t;
      mpls_pkt * outer = packet_encap(mp);
      outer->label = ilm_push[idx];
      outer->exp = 0;
      outer->s = 0;
      outer->ttl = t;
      ether_pkt * eph = packet_encap(outer);
      eph->dst = nh_dmac[outp & 63];
      eph->src = port_mac[outp & 15];
      eph->type = 0x8847;
      eph->meta.tx_port = outp;
      channel_put(tx, eph);
      return;
    }

    // op == 3: pop. Penultimate-hop pop for bottom-of-stack.
    if (mp->s == 1) {
      ipv4_pkt * iph = packet_decap(mp);
      ether_pkt * eph = packet_encap(iph);
      eph->dst = nh_dmac[outp & 63];
      eph->src = port_mac[outp & 15];
      eph->type = 0x0800;
      eph->meta.tx_port = outp;
      channel_put(tx, eph);
      return;
    }
    mpls_pkt * inner = packet_decap(mp);
    inner->ttl = inner->ttl - 1;
    ether_pkt * eph = packet_encap(inner);
    eph->dst = nh_dmac[outp & 63];
    eph->src = port_mac[outp & 15];
    eph->type = 0x8847;
    eph->meta.tx_port = outp;
    channel_put(tx, eph);
  }

  ppf ingress(ipv4_pkt * iph) {
    u32 e = fec16[iph->daddr >> 16];
    if (e == 0 || iph->ttl <= 1) {
      drops = drops + 1;
      packet_drop(iph);
      return;
    }
    u32 outp = e >> 20;
    iph->ttl = iph->ttl - 1;
    mpls_pkt * mp = packet_encap(iph);
    mp->label = e & 0xFFFFF;
    mp->exp = 0;
    mp->s = 1;
    mp->ttl = 63;
    ether_pkt * eph = packet_encap(mp);
    eph->dst = nh_dmac[outp & 63];
    eph->src = port_mac[outp & 15];
    eph->type = 0x8847;
    eph->meta.tx_port = outp;
    channel_put(tx, eph);
  }

  wire rx -> clsfr;
  wire lbl_cc -> lsr;
  wire ing_cc -> ingress;
}
)BAKER";

AppBundle sl::apps::mpls() {
  AppBundle B;
  B.Name = "MPLS";
  B.Source = MplsSource;
  B.TxMetaFields = {"tx_port"};

  for (unsigned Pt = 0; Pt != 16; ++Pt)
    B.Tables.push_back({"port_mac", Pt, portMac(Pt & 3)});
  for (unsigned Nh = 0; Nh != 64; ++Nh)
    B.Tables.push_back({"nh_dmac", Nh, nhMac(Nh)});

  // ILM: labels 16..1039 cycle through swap / swap+push / pop.
  for (unsigned L = 16; L != 1040; ++L) {
    unsigned Op = 1 + (L % 3);
    B.Tables.push_back({"ilm_op", L, Op});
    B.Tables.push_back({"ilm_out", L, 1040 + (L * 7) % 1000});
    B.Tables.push_back({"ilm_push", L, 2040 + (L * 13) % 1000});
    B.Tables.push_back({"ilm_port", L, L & 3});
  }
  // FEC: 32 /16s map to labels.
  for (unsigned K = 0; K != 32; ++K) {
    uint32_t Idx = 0x0B00 + K * 11;
    uint32_t Entry = ((K & 3) << 20) | (16 + (K * 29) % 1024);
    B.Tables.push_back({"fec16", Idx, Entry});
  }
  return B;
}

//===----------------------------------------------------------------------===//
// Traces
//===----------------------------------------------------------------------===//

profile::Trace AppBundle::makeTrace(uint64_t Seed, unsigned N) const {
  // The stateful tier's representative traces are its benign adversarial
  // profile (uniform flows through the app's flow-keyed builder).
  if (Name == "NAT" || Name == "SLB" || Name == "SYN-Flood")
    return adversarialTrace(*this, traffic::Profile::Benign, Seed, N);

  profile::Trace T;
  Rng R(Seed ^ 0x5EED0000);

  if (Name == "L3-Switch") {
    for (unsigned I = 0; I != N; ++I) {
      uint16_t Port = static_cast<uint16_t>(R.nextBelow(4));
      unsigned Kind = static_cast<unsigned>(R.nextBelow(100));
      if (Kind < 70) {
        // Routed: to this router's MAC, dst IP in an installed prefix.
        uint32_t Dst;
        if (R.chance(3, 4))
          Dst = ((0x0A00u + static_cast<uint32_t>(R.nextBelow(48)) * 37)
                 << 16) |
                static_cast<uint32_t>(R.nextBelow(0x10000));
        else
          Dst = ((0xC000u + static_cast<uint32_t>(R.nextBelow(8))) << 16) |
                (static_cast<uint32_t>(R.nextBelow(128)) * 2 << 8) |
                static_cast<uint32_t>(R.nextBelow(256));
        std::vector<uint8_t> F =
            etherFrame(portMac(Port), hostMac(R.nextBelow(64)), 0x0800);
        putIpv4At(F, 14, 0x0A000001 + static_cast<uint32_t>(R.nextBelow(9999)),
                  Dst, 32 + static_cast<uint8_t>(R.nextBelow(32)), 6);
        T.push_back({std::move(F), Port});
      } else if (Kind < 95) {
        // Bridged: to a learned host MAC.
        std::vector<uint8_t> F =
            etherFrame(hostMac(R.nextBelow(64)), hostMac(R.nextBelow(64)),
                       0x0800);
        putIpv4At(F, 14, 1, 2, 64, 17);
        T.push_back({std::move(F), Port});
      } else {
        // ARP (control; exercised on the XScale path).
        std::vector<uint8_t> F =
            etherFrame(0xFFFFFFFFFFFFull, hostMac(R.nextBelow(64)), 0x0806);
        T.push_back({std::move(F), Port});
      }
    }
    return T;
  }

  if (Name == "Firewall") {
    for (unsigned I = 0; I != N; ++I) {
      uint16_t Port = static_cast<uint16_t>(R.nextBelow(2));
      unsigned Kind = static_cast<unsigned>(R.nextBelow(100));
      uint32_t Sa, Da;
      uint16_t Sp, Dp;
      uint8_t Proto = 6;
      if (Kind < 60) {
        // Outside -> inside web (mostly allowed; subnet K uses port
        // 80+K). Popularity is strongly skewed toward the first rules,
        // as in real rule sets ordered by hit frequency.
        uint32_t K = static_cast<uint32_t>(std::min(
            {R.nextBelow(16), R.nextBelow(16), R.nextBelow(16)}));
        Sa = 0x0A000000 | (K << 16) |
             static_cast<uint32_t>(R.nextBelow(0xFFFF));
        Da = 0xAC100000 | static_cast<uint32_t>(R.nextBelow(0xFFFF));
        Sp = static_cast<uint16_t>(1024 + R.nextBelow(60000));
        Dp = static_cast<uint16_t>(80 + K);
      } else if (Kind < 68) {
        // Inside -> outside (catch-all allow).
        Sa = 0xAC100000 | static_cast<uint32_t>(R.nextBelow(0xFFFFF));
        Da = static_cast<uint32_t>(R.next());
        Sp = static_cast<uint16_t>(1024 + R.nextBelow(60000));
        Dp = static_cast<uint16_t>(R.nextBelow(65536));
      } else if (Kind < 76) {
        // Telnet probes (denied).
        Sa = 0x0A000000 | static_cast<uint32_t>(R.nextBelow(0xFFFFFF));
        Da = 0xAC100000 + (static_cast<uint32_t>(R.nextBelow(8)) << 8);
        Sp = static_cast<uint16_t>(30000 + R.nextBelow(1000));
        Dp = 23;
      } else if (Kind < 88) {
        // Noisy subnet (denied by rule 0).
        Sa = 0x0A050000 | static_cast<uint32_t>(R.nextBelow(0xFFFF));
        Da = static_cast<uint32_t>(R.next());
        Sp = static_cast<uint16_t>(R.nextBelow(65536));
        Dp = static_cast<uint16_t>(R.nextBelow(65536));
      } else if (Kind < 95) {
        // DNS (allowed).
        Sa = 0x0A000000 | static_cast<uint32_t>(R.nextBelow(0xFFFFFF));
        Da = 0xAC100000 | static_cast<uint32_t>(R.nextBelow(0xFFFFF));
        Sp = static_cast<uint16_t>(1024 + R.nextBelow(60000));
        Dp = 53;
        Proto = 17;
      } else {
        // High-port peer traffic (allowed by the last rule).
        Sa = static_cast<uint32_t>(R.next());
        Da = static_cast<uint32_t>(R.next());
        Sp = static_cast<uint16_t>(1024 + R.nextBelow(60000));
        Dp = static_cast<uint16_t>(1024 + R.nextBelow(60000));
      }
      std::vector<uint8_t> F = etherFrame(portMac(Port), hostMac(I & 63),
                                          0x0800);
      putIpv4At(F, 14, Sa, Da, 64, Proto);
      putPortsAt(F, 34, Sp, Dp);
      T.push_back({std::move(F), Port});
    }
    return T;
  }

  assert(Name == "MPLS" && "unknown app");
  for (unsigned I = 0; I != N; ++I) {
    uint16_t Port = static_cast<uint16_t>(R.nextBelow(4));
    unsigned Kind = static_cast<unsigned>(R.nextBelow(100));
    if (Kind < 60) {
      // Labeled packet with a stack of 1..3 labels.
      unsigned Depth = 1 + static_cast<unsigned>(R.nextBelow(3));
      std::vector<uint8_t> F = etherFrame(portMac(Port), hostMac(I & 63),
                                          0x8847);
      for (unsigned D = 0; D != Depth; ++D) {
        uint32_t Label = 16 + static_cast<uint32_t>(R.nextBelow(1024));
        putMplsAt(F, 14 + D * 4, Label, D + 1 == Depth,
                  16 + static_cast<uint8_t>(R.nextBelow(48)));
      }
      putIpv4At(F, 14 + Depth * 4, 0x0A000001, 0x0B010203, 64, 6);
      T.push_back({std::move(F), Port});
    } else if (Kind < 90) {
      // Plain IP for the ingress LER.
      uint32_t Dst = ((0x0B00u + static_cast<uint32_t>(R.nextBelow(32)) * 11)
                      << 16) |
                     static_cast<uint32_t>(R.nextBelow(0x10000));
      std::vector<uint8_t> F = etherFrame(portMac(Port), hostMac(I & 63),
                                          0x0800);
      putIpv4At(F, 14, 0x0A000001, Dst, 64, 6);
      T.push_back({std::move(F), Port});
    } else {
      // Unknown ethertype (dropped).
      std::vector<uint8_t> F = etherFrame(portMac(Port), hostMac(I & 63),
                                          0x86DD);
      T.push_back({std::move(F), Port});
    }
  }
  return T;
}

std::vector<AppBundle> sl::apps::allApps() {
  return {l3switch(), firewall(), mpls()};
}
