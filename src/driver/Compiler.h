//===- driver/Compiler.h - the Shangri-La compiler facade ------------------------==//
//
// Runs the full pipeline of Figure 5:
//
//   Baker source -> AST -> IR -> Functional Profiler -> aggregate
//   formation (IPA) -> scalar optimizations -> PHR metadata localization
//   -> PAC -> SOAR -> SWC selection -> MEIR lowering -> register
//   allocation -> stack layout -> loadable images.
//
// Code-store fitting is iterative (the paper's feedback design): if a
// lowered aggregate exceeds the 4K instruction store, aggregate formation
// reruns with a larger size estimate until everything fits or becomes a
// pipeline.
//
//===----------------------------------------------------------------------===//

#ifndef SL_DRIVER_COMPILER_H
#define SL_DRIVER_COMPILER_H

#include "analysis/Analysis.h"
#include "baker/Frontend.h"
#include "cg/CgConfig.h"
#include "cg/RegAlloc.h"
#include "cg/StackLayout.h"
#include "cg/Wcet.h"
#include "ixp/Simulator.h"
#include "map/CostModel.h"
#include "obs/OptReport.h"
#include "pktopt/Swc.h"
#include "profile/Profiler.h"

#include <memory>
#include <string>
#include <vector>

namespace sl::driver {

/// The evaluation ladder of the paper (each level includes the previous).
enum class OptLevel : uint8_t { Base, O1, O2, Pac, Soar, Phr, Swc };

const char *optLevelName(OptLevel L);

/// How the Baker safety analyses (src/analysis) gate the build.
///   Off   — analyses do not run; SWC falls back to its own legality scan.
///   Warn  — analyses run; error findings become warnings; the race
///           classification feeds SWC legality. The default.
///   Error — like Warn, but any error-severity finding fails the compile.
enum class AnalyzeMode : uint8_t { Off, Warn, Error };

const char *analyzeModeName(AnalyzeMode M);

/// Initial contents of an application table (applied before profiling and
/// before simulation — the control-plane configuration).
struct TableInit {
  std::string Global;
  uint64_t Index = 0;
  uint64_t Value = 0;
};

struct CompileOptions {
  OptLevel Level = OptLevel::Swc;
  bool StackOpt = true;
  /// Metadata fields consumed by Tx (extern to PHR), e.g. "tx_port".
  std::vector<std::string> TxMetaFields;
  pktopt::SwcParams Swc;
  /// Mapping model parameters. Map.NumMEs and Map.CodeStoreInstrs are the
  /// single source of truth for the ME budget and instruction store: the
  /// mapper, the oversize check, and makeSimulator() all read them here.
  map::MapParams Map;
  /// Telemetry-derived cost overlay. When valid() the mapper prices
  /// formation with a MeasuredCostModel instead of the static estimates;
  /// compileWithFeedback (driver/Feedback.h) fills this per round.
  map::MeasuredCosts Measured;
  /// Compile observer: when attached, every pipeline phase records wall
  /// time + before/after IR deltas into it and the optimization passes
  /// emit structured remarks into Observer->Remarks. Strictly
  /// observation-only — attaching an observer changes no codegen decision
  /// and the produced images are bit-identical. Not owned.
  obs::CompileObserver *Observer = nullptr;
  /// Debug aid: dump the IR (ir::Printer, to stderr) after the named
  /// pipeline phase ("o1", "pac", "soar", ... — any phase name the
  /// observer would record). Empty disables; "*" dumps after every phase.
  std::string PrintIrAfter;
  /// Safety-analysis gate (packet lifetime + shared-state races).
  AnalyzeMode Analyze = AnalyzeMode::Warn;
};

/// One loadable ME (or XScale) image.
struct AggregateBinary {
  cg::FlatCode Code;
  std::vector<unsigned> Rings;
  unsigned Copies = 1;
  bool OnXScale = false;
  std::string Name;         ///< Root PPF name (aggregate label).
  unsigned PlanIndex = ~0u; ///< Index into CompiledApp::Plan.Aggregates.
  cg::StackLayoutStats Stack;
  cg::RegAllocStats RegAlloc;
  cg::WcetResult Wcet; ///< Worst-case cycles per packet (Sec. 5.1).
};

/// Everything the compiler produced for one application build.
struct CompiledApp {
  std::unique_ptr<baker::CompiledUnit> Unit;
  std::unique_ptr<ir::Module> IR;
  rts::MemoryMap Map;
  map::MappingPlan Plan;
  profile::ProfileData Prof;
  std::vector<AggregateBinary> Images;
  std::vector<TableInit> Tables;
  CompileOptions Opts;
  /// Findings and per-global race classification from the safety
  /// analyses (empty / !Races.Valid when Analyze == Off).
  std::vector<analysis::Finding> Findings;
  analysis::GlobalClassification Races;
  unsigned PlanIterations = 0;
  /// Expansion factor the final plan was formed with (measured or static,
  /// including oversize-retry growth) — needed to recover per-aggregate
  /// IR sizes from Aggregate::EstMeInstrs when attributing telemetry.
  double MeInstrsPerIrInstrUsed = 0.0;

  /// Bit offset/width of a user metadata field (for decoding Tx records).
  const baker::BitField *metaField(const std::string &Name) const {
    for (const baker::BitField &F : Unit->Sema.MetaFields)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// Compiles \p Source at the given level. \p ProfTrace drives the
/// Functional Profiler. Returns null on error (details in \p Diags).
std::unique_ptr<CompiledApp> compile(const std::string &Source,
                                     const profile::Trace &ProfTrace,
                                     const std::vector<TableInit> &Tables,
                                     const CompileOptions &Opts,
                                     DiagEngine &Diags);

/// Builds a simulator with the app's images loaded, globals initialized,
/// and tables applied.
std::unique_ptr<ixp::Simulator> makeSimulator(const CompiledApp &App,
                                              ixp::ChipParams Chip);

} // namespace sl::driver

#endif // SL_DRIVER_COMPILER_H
