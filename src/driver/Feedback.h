//===- driver/Feedback.h - closed-loop mapping tuner ---------------------------==//
//
// The paper's compiler is a feedback design: aggregate formation runs on
// estimates, and lowered reality feeds back into re-planning. compile()
// already iterates on one signal (code-store misses). This header closes
// the loop on the other one — performance:
//
//   compile (static costs) -> simulate a short calibration slice ->
//   attribute telemetry to aggregates -> re-form aggregates with a
//   MeasuredCosts overlay -> repeat (bounded) until the plan reaches a
//   fixed point or stops improving.
//
// The attribution step turns SimTelemetry into per-function cycle costs:
// each loaded aggregate's busy + memory-stall thread-cycles (minus an
// estimate of empty-ring polling) are divided by the packets that
// traversed its input rings and split over member PPFs by profiled work
// share. Ring-wait cycles per ring operation give the measured channel
// crossing cost, and the flattened images give the real lowering
// expansion — the three quantities the CostModel interface prices.
//
// Everything here is deterministic: the same source, profile trace and
// calibration trace produce the same final MappingPlan.
//
//===----------------------------------------------------------------------===//

#ifndef SL_DRIVER_FEEDBACK_H
#define SL_DRIVER_FEEDBACK_H

#include "driver/Compiler.h"
#include "ixp/Attribution.h"

#include <memory>
#include <string>
#include <vector>

namespace sl::driver {

struct FeedbackOptions {
  /// Total simulate/remap rounds, including the static baseline's
  /// calibration run. Bounded by design (paper-style feedback, not a
  /// search): at most MaxRounds simulations and MaxRounds - 1 re-plans.
  unsigned MaxRounds = 4;
  /// Calibration slice length in cycles per round.
  uint64_t CalibCycles = 120'000;
  /// A re-planned mapping must beat the incumbent's measured throughput
  /// by this relative margin to be adopted (hysteresis: keeps marginal,
  /// noise-level flips from churning the plan).
  double MinGain = 0.01;
  /// Chip model for calibration runs. ProgrammableMEs / CodeStoreSlots
  /// are overwritten from CompileOptions::Map (single source of truth).
  ixp::ChipParams Chip;
};

/// One simulate/remap round's record, kept for --stats-json surfacing.
struct FeedbackRound {
  unsigned Round = 0;              ///< 0 = static baseline.
  double PredictedThroughput = 0;  ///< Formation model's relative estimate.
  double MeasuredPktPerKCycle = 0; ///< Calibration: Tx packets / kcycle.
  map::MeasuredCosts Costs;  ///< Overlay used to FORM this round's plan
                             ///< (empty/invalid for the static round 0).
  std::string PlanSignature; ///< Canonical plan text (see planSignature).
  std::string MapLog;        ///< Formation decision trail.
  std::vector<ixp::GroupTelemetry> Groups; ///< Per-aggregate buckets.
};

struct FeedbackResult {
  std::unique_ptr<CompiledApp> App; ///< Best measured candidate (null on
                                    ///< compile error; see Diags).
  std::vector<FeedbackRound> Rounds;
  unsigned BestRound = 0;
  bool FixedPoint = false; ///< Re-planning reproduced the previous plan.
};

/// Canonical text of a plan's shape: one line per aggregate (sorted
/// member names, placement, copies), lines sorted. Two plans with equal
/// signatures lower to identical images.
std::string planSignature(const map::MappingPlan &Plan);

/// Derives a MeasuredCosts overlay from one calibration run of \p App.
/// \p Telem / \p Stats must come from the same simulator after the run.
map::MeasuredCosts attributeCosts(const CompiledApp &App,
                                  const ixp::SimTelemetry &Telem,
                                  const ixp::SimStats &Stats);

/// Compiles \p Source, then iterates calibration + re-planning as
/// described above. \p CalibTraffic drives the calibration simulations
/// (cycled under infinite offered load). Returns the best-measured
/// candidate plus the per-round records.
FeedbackResult compileWithFeedback(const std::string &Source,
                                   const profile::Trace &ProfTrace,
                                   const profile::Trace &CalibTraffic,
                                   const std::vector<TableInit> &Tables,
                                   const CompileOptions &Opts,
                                   const FeedbackOptions &FB,
                                   DiagEngine &Diags);

} // namespace sl::driver

#endif // SL_DRIVER_FEEDBACK_H
