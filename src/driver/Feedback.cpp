//===- driver/Feedback.cpp - closed-loop mapping tuner -------------------------==//

#include "driver/Feedback.h"

#include "rts/MemoryMap.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <memory>

using namespace sl;
using namespace sl::driver;

std::string sl::driver::planSignature(const map::MappingPlan &Plan) {
  std::vector<std::string> Lines;
  for (const map::Aggregate &A : Plan.Aggregates) {
    std::vector<std::string> Names;
    for (const ir::Function *F : A.Funcs)
      Names.push_back(F->name());
    std::sort(Names.begin(), Names.end());
    // Appended piecewise: `"@" + std::to_string(...)` selects
    // operator+(const char*, string&&), which GCC 12's -Wrestrict
    // misanalyzes into a spurious overlap error under -Werror.
    std::string L = A.OnXScale ? "XS" : "ME";
    if (!A.OnXScale && A.Slot != ~0u) {
      L += '@'; // Physical placement is plan state.
      L += std::to_string(A.Slot);
    }
    L += " x";
    L += std::to_string(A.OnXScale ? 1u : A.Copies);
    L += ':';
    for (const std::string &N : Names) {
      L += ' ';
      L += N;
    }
    Lines.push_back(std::move(L));
  }
  std::sort(Lines.begin(), Lines.end());
  std::string Sig;
  for (const std::string &L : Lines) {
    Sig += L;
    Sig += '\n';
  }
  return Sig;
}

namespace {

std::vector<ixp::CoreGroup> coreGroupsOf(const CompiledApp &App) {
  std::vector<ixp::CoreGroup> Groups;
  for (const AggregateBinary &B : App.Images)
    Groups.push_back({B.Name, B.OnXScale ? 1u : B.Copies, B.OnXScale});
  return Groups;
}

/// Approximate ME issue cycles burned per empty-ring poll: the get, the
/// result test, and the taken loop-back branch (the scratch access wait
/// itself lands in the RingWait bucket, which attribution excludes).
constexpr double SpinBusyPerEmptyGet = 3.0;

struct CalibRun {
  ixp::SimStats Stats;
  ixp::SimTelemetry Telem;
  std::vector<ixp::GroupTelemetry> Groups;
  double PktPerKCycle = 0.0;
};

CalibRun calibrate(const CompiledApp &App, const profile::Trace &Traffic,
                   const FeedbackOptions &FB) {
  CalibRun R;
  auto Sim = makeSimulator(App, FB.Chip);
  auto Pkt = std::make_shared<ixp::SimPacket>();
  Sim->setTraffic(
      [&Traffic, Pkt](uint64_t I) -> const ixp::SimPacket * {
        if (Traffic.empty())
          return nullptr;
        const profile::TracePacket &T = Traffic[I % Traffic.size()];
        Pkt->Frame = T.Frame;
        Pkt->Port = T.Port;
        return Pkt.get();
      });
  R.Stats = Sim->run(FB.CalibCycles);
  R.Telem = Sim->telemetry();
  R.Groups = ixp::attributeToGroups(R.Telem, coreGroupsOf(App));
  R.PktPerKCycle = R.Stats.Cycles ? 1000.0 * double(R.Stats.TxPackets) /
                                        double(R.Stats.Cycles)
                                  : 0.0;
  return R;
}

} // namespace

map::MeasuredCosts sl::driver::attributeCosts(const CompiledApp &App,
                                              const ixp::SimTelemetry &Telem,
                                              const ixp::SimStats &Stats) {
  map::MeasuredCosts MC;
  std::vector<ixp::GroupTelemetry> GT =
      ixp::attributeToGroups(Telem, coreGroupsOf(App));

  // Ring operations issued by MEs, split by ring implementation: both
  // ends of every successful transfer minus the Rx/Tx devices'
  // (uncharged) ends, plus empty polls and full puts — those pay the
  // access and its wait all the same. Each ring's WaitCycles already
  // counts only thread stalls, so per-kind costs fall out directly.
  uint64_t ScratchOps = 0, NNOps = 0;
  uint64_t ScratchWait = 0, NNWait = 0;
  for (size_t Ri = 0; Ri != Telem.Rings.size(); ++Ri) {
    const ixp::RingTelemetry &RT = Telem.Rings[Ri];
    uint64_t Ops = RT.Enqueues + RT.Dequeues + RT.EmptyGets + RT.FullStalls;
    uint64_t DeviceOps = 0;
    if (Ri == rts::RxRing) // Rx enqueues + full-stalls are the device's.
      DeviceOps = RT.Enqueues + RT.FullStalls;
    else if (Ri == rts::TxRing) // Tx dequeues are the device's.
      DeviceOps = RT.Dequeues;
    Ops -= std::min(Ops, DeviceOps);
    if (RT.Impl == ixp::RingImpl::NextNeighbor) {
      NNOps += Ops;
      NNWait += RT.WaitCycles;
    } else {
      ScratchOps += Ops;
      ScratchWait += RT.WaitCycles;
    }
  }
  if (ScratchOps > 0) // A crossing is one put plus one get.
    MC.ScratchChannelCostCycles =
        2.0 * double(ScratchWait) / double(ScratchOps);
  if (NNOps > 0)
    MC.NNChannelCostCycles = 2.0 * double(NNWait) / double(NNOps);

  uint64_t MemStallTotal = 0;
  for (const ixp::GroupTelemetry &G : GT)
    if (!G.OnXScale)
      MemStallTotal += G.MemStall;

  uint64_t Accesses = 0;
  for (unsigned Sp = 0; Sp != 3; ++Sp)
    Accesses += Telem.Units[Sp].Accesses;
  // Non-ring accesses: NN ring ops never touch a controller, so only the
  // scratch-ring ops are subtracted from the unit totals.
  int64_t MemOps = int64_t(Accesses) - int64_t(ScratchOps);
  if (MemOps > 0)
    MC.MemAccessCycles = double(MemStallTotal) / double(MemOps);

  // Per-aggregate thread-cycles -> per-PPF cycles per packet, split by
  // profiled work share. Also fold the flattened images into a measured
  // lowering-expansion factor (actual slots over formation-time IR size).
  double PreIrInstrs = 0.0;
  uint64_t Slots = 0;
  for (size_t I = 0; I != App.Images.size(); ++I) {
    const AggregateBinary &B = App.Images[I];
    if (B.OnXScale)
      continue; // Uncharged core; nothing to price for the ME model.
    const map::Aggregate &A = App.Plan.Aggregates[B.PlanIndex];
    Slots += B.Code.CodeSlots;
    if (App.MeInstrsPerIrInstrUsed > 0.0)
      PreIrInstrs += A.EstMeInstrs / App.MeInstrsPerIrInstrUsed;

    uint64_t Pkts = 0;
    double Spin = 0.0;
    for (unsigned Ring : B.Rings) {
      Pkts += Telem.Rings[Ring].Dequeues;
      Spin += SpinBusyPerEmptyGet * double(Telem.Rings[Ring].EmptyGets);
    }
    if (!Pkts)
      continue;
    double Cycles = double(GT[I].Busy + GT[I].MemStall) - Spin;
    if (Cycles < 0.0)
      Cycles = 0.0;
    double PerPkt = Cycles / double(Pkts);

    double WSum = 0.0;
    for (const ir::Function *F : A.Funcs)
      WSum += App.Prof.workWeight(F, App.Opts.Map.MemAccessCycles);
    for (const ir::Function *F : A.Funcs) {
      double W = WSum > 0.0
                     ? App.Prof.workWeight(F, App.Opts.Map.MemAccessCycles) /
                           WSum
                     : 1.0 / double(A.Funcs.size());
      MC.FuncCycles[F->name()] += PerPkt * W;
    }
  }
  if (PreIrInstrs > 0.0)
    MC.MeInstrsPerIrInstr = double(Slots) / PreIrInstrs;
  MC.CalibPackets = Stats.TxPackets;
  return MC;
}

FeedbackResult sl::driver::compileWithFeedback(
    const std::string &Source, const profile::Trace &ProfTrace,
    const profile::Trace &CalibTraffic, const std::vector<TableInit> &Tables,
    const CompileOptions &Opts, const FeedbackOptions &FB,
    DiagEngine &Diags) {
  FeedbackResult R;
  CompileOptions O = Opts;
  O.Measured = map::MeasuredCosts{}; // Round 0 is always the static plan.

  obs::CompileObserver *Obs = Opts.Observer;
  auto calibrateObserved = [&](const CompiledApp &App) {
    // Calibration is compile time too: record it like a pass so the
    // compile-time trace shows where feedback rounds actually go.
    size_t Tok = Obs ? Obs->beginPass("calibrate") : 0;
    CalibRun CR = calibrate(App, CalibTraffic, FB);
    if (Obs)
      Obs->endPass(Tok);
    return CR;
  };
  auto noteRound = [&](const FeedbackRound &FR, bool FixedPoint) {
    if (!Obs)
      return;
    obs::FeedbackRoundRecord Rec;
    Rec.Round = FR.Round;
    Rec.PredictedThroughput = FR.PredictedThroughput;
    Rec.MeasuredPktPerKCycle = FR.MeasuredPktPerKCycle;
    Rec.FixedPoint = FixedPoint;
    Rec.PlanSignature = FR.PlanSignature;
    Obs->noteFeedbackRound(std::move(Rec));
  };

  std::vector<std::unique_ptr<CompiledApp>> Candidates;
  if (Obs)
    Obs->setRound(0);
  Candidates.push_back(compile(Source, ProfTrace, Tables, O, Diags));
  if (!Candidates.back()) {
    if (Obs)
      Obs->setRound(-1);
    return R;
  }

  CalibRun C = calibrateObserved(*Candidates.back());
  {
    FeedbackRound FR;
    FR.Round = 0;
    FR.PredictedThroughput = Candidates.back()->Plan.PredictedThroughput;
    FR.MeasuredPktPerKCycle = C.PktPerKCycle;
    FR.PlanSignature = planSignature(Candidates.back()->Plan);
    FR.MapLog = Candidates.back()->Plan.Log;
    FR.Groups = C.Groups;
    noteRound(FR, false);
    R.Rounds.push_back(std::move(FR));
  }
  double BestMeasured = C.PktPerKCycle;
  size_t BestCandidate = 0;
  map::MeasuredCosts MC =
      attributeCosts(*Candidates.back(), C.Telem, C.Stats);

  for (unsigned Round = 1; Round < FB.MaxRounds && MC.valid(); ++Round) {
    O.Measured = MC;
    if (Obs)
      Obs->setRound(static_cast<int>(Round));
    DiagEngine RoundDiags; // A failed re-plan keeps the incumbent.
    auto Next = compile(Source, ProfTrace, Tables, O, RoundDiags);
    if (!Next)
      break;

    std::string Sig = planSignature(Next->Plan);
    if (Sig == R.Rounds.back().PlanSignature) {
      // Fixed point: measured costs reproduce the plan they came from.
      // Identical plans lower to identical images, so re-measuring would
      // return the previous round's numbers verbatim.
      FeedbackRound FR;
      FR.Round = Round;
      FR.PredictedThroughput = Next->Plan.PredictedThroughput;
      FR.MeasuredPktPerKCycle = R.Rounds.back().MeasuredPktPerKCycle;
      FR.Costs = MC;
      FR.PlanSignature = std::move(Sig);
      FR.MapLog = Next->Plan.Log;
      noteRound(FR, true);
      R.Rounds.push_back(std::move(FR));
      R.FixedPoint = true;
      break;
    }

    C = calibrateObserved(*Next);
    FeedbackRound FR;
    FR.Round = Round;
    FR.PredictedThroughput = Next->Plan.PredictedThroughput;
    FR.MeasuredPktPerKCycle = C.PktPerKCycle;
    FR.Costs = MC;
    FR.PlanSignature = std::move(Sig);
    FR.MapLog = Next->Plan.Log;
    FR.Groups = C.Groups;
    noteRound(FR, false);
    R.Rounds.push_back(std::move(FR));

    MC = attributeCosts(*Next, C.Telem, C.Stats);
    Candidates.push_back(std::move(Next));
    if (C.PktPerKCycle > BestMeasured * (1.0 + FB.MinGain)) {
      BestMeasured = C.PktPerKCycle;
      BestCandidate = Candidates.size() - 1;
      R.BestRound = Round;
    }
  }
  if (Obs)
    Obs->setRound(-1);

  R.App = std::move(Candidates[BestCandidate]);
  return R;
}
