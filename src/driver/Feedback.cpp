//===- driver/Feedback.cpp - closed-loop mapping tuner -------------------------==//

#include "driver/Feedback.h"

#include "rts/MemoryMap.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <memory>

using namespace sl;
using namespace sl::driver;

std::string sl::driver::planSignature(const map::MappingPlan &Plan) {
  std::vector<std::string> Lines;
  for (const map::Aggregate &A : Plan.Aggregates) {
    std::vector<std::string> Names;
    for (const ir::Function *F : A.Funcs)
      Names.push_back(F->name());
    std::sort(Names.begin(), Names.end());
    std::string L = A.OnXScale ? "XS" : "ME";
    L += " x" + std::to_string(A.OnXScale ? 1u : A.Copies) + ":";
    for (const std::string &N : Names)
      L += " " + N;
    Lines.push_back(std::move(L));
  }
  std::sort(Lines.begin(), Lines.end());
  std::string Sig;
  for (const std::string &L : Lines) {
    Sig += L;
    Sig += '\n';
  }
  return Sig;
}

namespace {

std::vector<ixp::CoreGroup> coreGroupsOf(const CompiledApp &App) {
  std::vector<ixp::CoreGroup> Groups;
  for (const AggregateBinary &B : App.Images)
    Groups.push_back({B.Name, B.OnXScale ? 1u : B.Copies, B.OnXScale});
  return Groups;
}

/// Approximate ME issue cycles burned per empty-ring poll: the get, the
/// result test, and the taken loop-back branch (the scratch access wait
/// itself lands in the RingWait bucket, which attribution excludes).
constexpr double SpinBusyPerEmptyGet = 3.0;

struct CalibRun {
  ixp::SimStats Stats;
  ixp::SimTelemetry Telem;
  std::vector<ixp::GroupTelemetry> Groups;
  double PktPerKCycle = 0.0;
};

CalibRun calibrate(const CompiledApp &App, const profile::Trace &Traffic,
                   const FeedbackOptions &FB) {
  CalibRun R;
  auto Sim = makeSimulator(App, FB.Chip);
  auto Pkt = std::make_shared<ixp::SimPacket>();
  Sim->setTraffic(
      [&Traffic, Pkt](uint64_t I) -> const ixp::SimPacket * {
        if (Traffic.empty())
          return nullptr;
        const profile::TracePacket &T = Traffic[I % Traffic.size()];
        Pkt->Frame = T.Frame;
        Pkt->Port = T.Port;
        return Pkt.get();
      });
  R.Stats = Sim->run(FB.CalibCycles);
  R.Telem = Sim->telemetry();
  R.Groups = ixp::attributeToGroups(R.Telem, coreGroupsOf(App));
  R.PktPerKCycle = R.Stats.Cycles ? 1000.0 * double(R.Stats.TxPackets) /
                                        double(R.Stats.Cycles)
                                  : 0.0;
  return R;
}

} // namespace

map::MeasuredCosts sl::driver::attributeCosts(const CompiledApp &App,
                                              const ixp::SimTelemetry &Telem,
                                              const ixp::SimStats &Stats) {
  map::MeasuredCosts MC;
  std::vector<ixp::GroupTelemetry> GT =
      ixp::attributeToGroups(Telem, coreGroupsOf(App));

  // Ring operations issued by MEs: both ends of every successful transfer
  // minus the Rx/Tx devices' (uncharged) ends, plus empty polls and full
  // puts — those pay the scratch access and its wait all the same.
  uint64_t Enq = 0, Deq = 0, Empty = 0, Full = 0;
  for (size_t Ri = 0; Ri != Telem.Rings.size(); ++Ri) {
    Enq += Telem.Rings[Ri].Enqueues;
    Deq += Telem.Rings[Ri].Dequeues;
    Empty += Telem.Rings[Ri].EmptyGets;
    if (Ri != rts::RxRing) // Rx-ring full-stalls are the Rx device's.
      Full += Telem.Rings[Ri].FullStalls;
  }
  int64_t MEOps = int64_t(Enq + Deq + Empty + Full) -
                  int64_t(Stats.RxInjected + Stats.TxPackets);
  if (MEOps < 0)
    MEOps = 0;

  uint64_t RingWaitTotal = 0, MemStallTotal = 0;
  for (const ixp::GroupTelemetry &G : GT)
    if (!G.OnXScale) {
      RingWaitTotal += G.RingWait;
      MemStallTotal += G.MemStall;
    }
  if (MEOps > 0) // A crossing is one put plus one get.
    MC.ChannelCostCycles = 2.0 * double(RingWaitTotal) / double(MEOps);

  uint64_t Accesses = 0;
  for (unsigned Sp = 0; Sp != 3; ++Sp)
    Accesses += Telem.Units[Sp].Accesses;
  int64_t MemOps = int64_t(Accesses) - MEOps; // Non-ring accesses.
  if (MemOps > 0)
    MC.MemAccessCycles = double(MemStallTotal) / double(MemOps);

  // Per-aggregate thread-cycles -> per-PPF cycles per packet, split by
  // profiled work share. Also fold the flattened images into a measured
  // lowering-expansion factor (actual slots over formation-time IR size).
  double PreIrInstrs = 0.0;
  uint64_t Slots = 0;
  for (size_t I = 0; I != App.Images.size(); ++I) {
    const AggregateBinary &B = App.Images[I];
    if (B.OnXScale)
      continue; // Uncharged core; nothing to price for the ME model.
    const map::Aggregate &A = App.Plan.Aggregates[B.PlanIndex];
    Slots += B.Code.CodeSlots;
    if (App.MeInstrsPerIrInstrUsed > 0.0)
      PreIrInstrs += A.EstMeInstrs / App.MeInstrsPerIrInstrUsed;

    uint64_t Pkts = 0;
    double Spin = 0.0;
    for (unsigned Ring : B.Rings) {
      Pkts += Telem.Rings[Ring].Dequeues;
      Spin += SpinBusyPerEmptyGet * double(Telem.Rings[Ring].EmptyGets);
    }
    if (!Pkts)
      continue;
    double Cycles = double(GT[I].Busy + GT[I].MemStall) - Spin;
    if (Cycles < 0.0)
      Cycles = 0.0;
    double PerPkt = Cycles / double(Pkts);

    double WSum = 0.0;
    for (const ir::Function *F : A.Funcs)
      WSum += App.Prof.workWeight(F, App.Opts.Map.MemAccessCycles);
    for (const ir::Function *F : A.Funcs) {
      double W = WSum > 0.0
                     ? App.Prof.workWeight(F, App.Opts.Map.MemAccessCycles) /
                           WSum
                     : 1.0 / double(A.Funcs.size());
      MC.FuncCycles[F->name()] += PerPkt * W;
    }
  }
  if (PreIrInstrs > 0.0)
    MC.MeInstrsPerIrInstr = double(Slots) / PreIrInstrs;
  MC.CalibPackets = Stats.TxPackets;
  return MC;
}

FeedbackResult sl::driver::compileWithFeedback(
    const std::string &Source, const profile::Trace &ProfTrace,
    const profile::Trace &CalibTraffic, const std::vector<TableInit> &Tables,
    const CompileOptions &Opts, const FeedbackOptions &FB,
    DiagEngine &Diags) {
  FeedbackResult R;
  CompileOptions O = Opts;
  O.Measured = map::MeasuredCosts{}; // Round 0 is always the static plan.

  obs::CompileObserver *Obs = Opts.Observer;
  auto calibrateObserved = [&](const CompiledApp &App) {
    // Calibration is compile time too: record it like a pass so the
    // compile-time trace shows where feedback rounds actually go.
    size_t Tok = Obs ? Obs->beginPass("calibrate") : 0;
    CalibRun CR = calibrate(App, CalibTraffic, FB);
    if (Obs)
      Obs->endPass(Tok);
    return CR;
  };
  auto noteRound = [&](const FeedbackRound &FR, bool FixedPoint) {
    if (!Obs)
      return;
    obs::FeedbackRoundRecord Rec;
    Rec.Round = FR.Round;
    Rec.PredictedThroughput = FR.PredictedThroughput;
    Rec.MeasuredPktPerKCycle = FR.MeasuredPktPerKCycle;
    Rec.FixedPoint = FixedPoint;
    Rec.PlanSignature = FR.PlanSignature;
    Obs->noteFeedbackRound(std::move(Rec));
  };

  std::vector<std::unique_ptr<CompiledApp>> Candidates;
  if (Obs)
    Obs->setRound(0);
  Candidates.push_back(compile(Source, ProfTrace, Tables, O, Diags));
  if (!Candidates.back()) {
    if (Obs)
      Obs->setRound(-1);
    return R;
  }

  CalibRun C = calibrateObserved(*Candidates.back());
  {
    FeedbackRound FR;
    FR.Round = 0;
    FR.PredictedThroughput = Candidates.back()->Plan.PredictedThroughput;
    FR.MeasuredPktPerKCycle = C.PktPerKCycle;
    FR.PlanSignature = planSignature(Candidates.back()->Plan);
    FR.MapLog = Candidates.back()->Plan.Log;
    FR.Groups = C.Groups;
    noteRound(FR, false);
    R.Rounds.push_back(std::move(FR));
  }
  double BestMeasured = C.PktPerKCycle;
  size_t BestCandidate = 0;
  map::MeasuredCosts MC =
      attributeCosts(*Candidates.back(), C.Telem, C.Stats);

  for (unsigned Round = 1; Round < FB.MaxRounds && MC.valid(); ++Round) {
    O.Measured = MC;
    if (Obs)
      Obs->setRound(static_cast<int>(Round));
    DiagEngine RoundDiags; // A failed re-plan keeps the incumbent.
    auto Next = compile(Source, ProfTrace, Tables, O, RoundDiags);
    if (!Next)
      break;

    std::string Sig = planSignature(Next->Plan);
    if (Sig == R.Rounds.back().PlanSignature) {
      // Fixed point: measured costs reproduce the plan they came from.
      // Identical plans lower to identical images, so re-measuring would
      // return the previous round's numbers verbatim.
      FeedbackRound FR;
      FR.Round = Round;
      FR.PredictedThroughput = Next->Plan.PredictedThroughput;
      FR.MeasuredPktPerKCycle = R.Rounds.back().MeasuredPktPerKCycle;
      FR.Costs = MC;
      FR.PlanSignature = std::move(Sig);
      FR.MapLog = Next->Plan.Log;
      noteRound(FR, true);
      R.Rounds.push_back(std::move(FR));
      R.FixedPoint = true;
      break;
    }

    C = calibrateObserved(*Next);
    FeedbackRound FR;
    FR.Round = Round;
    FR.PredictedThroughput = Next->Plan.PredictedThroughput;
    FR.MeasuredPktPerKCycle = C.PktPerKCycle;
    FR.Costs = MC;
    FR.PlanSignature = std::move(Sig);
    FR.MapLog = Next->Plan.Log;
    FR.Groups = C.Groups;
    noteRound(FR, false);
    R.Rounds.push_back(std::move(FR));

    MC = attributeCosts(*Next, C.Telem, C.Stats);
    Candidates.push_back(std::move(Next));
    if (C.PktPerKCycle > BestMeasured * (1.0 + FB.MinGain)) {
      BestMeasured = C.PktPerKCycle;
      BestCandidate = Candidates.size() - 1;
      R.BestRound = Round;
    }
  }
  if (Obs)
    Obs->setRound(-1);

  R.App = std::move(Candidates[BestCandidate]);
  return R;
}
